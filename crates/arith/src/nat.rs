//! Arbitrary-precision natural numbers.
//!
//! [`Nat`] is an unsigned integer of unbounded size. It provides the exact
//! arithmetic required by the discrete Laplace and Gaussian samplers: the
//! Canonne–Kamath–Steinke algorithms manipulate rationals whose numerators
//! and denominators (for example `(|Y|·t·den − num)²`) grow without bound
//! in the scale parameter — while the *typical* operand in the sampler hot
//! loops (`bernoulli_exp_neg`, `uniform_below`, the geometric trials) fits
//! in a single machine word.
//!
//! # Representation
//!
//! `Nat` is a two-variant enum:
//!
//! - `Small(u64)` — any value `≤ u64::MAX`, stored inline. The dominant
//!   sampler case: construction, `Clone`, add, sub, mul, cmp, div_rem and
//!   gcd on this variant perform **zero heap allocations** whenever the
//!   result also fits in one limb.
//! - `Big(Vec<u64>)` — little-endian limbs for everything larger.
//!
//! The representation invariant (checked by every constructor) is:
//!
//! 1. `Big` vectors have length ≥ 2 and a nonzero top limb — so every
//!    value has exactly one representation and the derived `Eq`/`Hash`
//!    are value equality;
//! 2. viewed through [`Nat::limbs`], the limb sequence never has trailing
//!    zeros, and zero is the empty sequence (exactly as in the previous
//!    `Vec`-only representation).
//!
//! # Complexity
//!
//! | operation | small × small | n-limb × m-limb |
//! |---|---|---|
//! | add / sub / cmp | O(1), no alloc | O(max(n, m)) |
//! | mul | O(1), alloc only on 2-limb result | O(n·m) schoolbook below [`KARATSUBA_THRESHOLD`] limbs, O(max(n,m)^1.585) Karatsuba above |
//! | div_rem | O(1), no alloc | O(n) per quotient limb (Knuth D) |
//! | gcd | O(log) word ops, no alloc | Euclid on limbs until both fit u64 |

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Rem, Shl, Shr, Sub, SubAssign};
use std::str::FromStr;

/// Number of bits per limb.
const LIMB_BITS: u32 = 64;

/// Limb count below which multiplication stays schoolbook.
///
/// Karatsuba's 3-multiplies-of-half-size recursion only wins once the
/// savings outweigh the extra additions and allocations; measured on this
/// implementation (see `BENCH_arith.json`) the crossover sits around 64
/// limbs (4096 bits), so that is the cutoff.
const KARATSUBA_THRESHOLD: usize = 64;

/// The two storage variants; see the module-level docs above.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Repr {
    /// Inline single-limb value (covers zero).
    Small(u64),
    /// Little-endian limbs: `len ≥ 2`, top limb nonzero.
    Big(Vec<u64>),
}

/// An arbitrary-precision natural number (unsigned integer).
///
/// # Examples
///
/// ```
/// use sampcert_arith::Nat;
///
/// let a = Nat::from(10u64).pow(30);
/// let b = Nat::from(7u64);
/// let (q, r) = a.div_rem(&b);
/// assert_eq!(&(&q * &b) + &r, a);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Nat {
    repr: Repr,
}

impl Default for Nat {
    fn default() -> Self {
        Nat::zero()
    }
}

// ---------------------------------------------------------------------------
// Slice helpers: variant-agnostic little-endian limb arithmetic.
// ---------------------------------------------------------------------------

fn cmp_slices(a: &[u64], b: &[u64]) -> Ordering {
    if a.len() != b.len() {
        return a.len().cmp(&b.len());
    }
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            Ordering::Equal => continue,
            ord => return ord,
        }
    }
    Ordering::Equal
}

fn add_slices(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry = 0u64;
    for i in 0..long.len() {
        let b = short.get(i).copied().unwrap_or(0);
        let (s1, c1) = long[i].overflowing_add(b);
        let (s2, c2) = s1.overflowing_add(carry);
        out.push(s2);
        carry = (c1 as u64) + (c2 as u64);
    }
    if carry > 0 {
        out.push(carry);
    }
    out
}

/// `a -= b` in place; `a` must be numerically `≥ b`.
///
/// Both slices may carry trailing zeros (Karatsuba intermediates do); the
/// result is trimmed.
fn sub_assign_slices(a: &mut Vec<u64>, b: &[u64]) {
    let mut borrow = 0u64;
    for i in 0..a.len() {
        let rhs = b.get(i).copied().unwrap_or(0);
        if borrow == 0 && rhs == 0 && i >= b.len() {
            break;
        }
        let (d1, u1) = a[i].overflowing_sub(rhs);
        let (d2, u2) = d1.overflowing_sub(borrow);
        a[i] = d2;
        borrow = (u1 as u64) + (u2 as u64);
    }
    debug_assert_eq!(borrow, 0, "slice subtraction underflow");
    while a.last() == Some(&0) {
        a.pop();
    }
}

fn sub_slices(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = a.to_vec();
    sub_assign_slices(&mut out, b);
    out
}

/// Adds `src` into `out[offset..]`, propagating the carry within `out`.
///
/// The caller guarantees the running total fits in `out` (true whenever
/// `out` was sized for the full product being accumulated).
fn add_at(out: &mut [u64], src: &[u64], offset: usize) {
    let mut carry = 0u64;
    for (i, &s) in src.iter().enumerate() {
        let (s1, c1) = out[offset + i].overflowing_add(s);
        let (s2, c2) = s1.overflowing_add(carry);
        out[offset + i] = s2;
        carry = (c1 as u64) + (c2 as u64);
    }
    let mut k = offset + src.len();
    while carry > 0 {
        let (s, c) = out[k].overflowing_add(carry);
        out[k] = s;
        carry = c as u64;
        k += 1;
    }
}

/// Schoolbook product, O(n·m).
fn mul_schoolbook(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &x) in a.iter().enumerate() {
        if x == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &y) in b.iter().enumerate() {
            let cur = out[i + j] as u128 + (x as u128) * (y as u128) + carry;
            out[i + j] = cur as u64;
            carry = cur >> 64;
        }
        let mut k = i + b.len();
        while carry > 0 {
            let cur = out[k] as u128 + carry;
            out[k] = cur as u64;
            carry = cur >> 64;
            k += 1;
        }
    }
    out
}

/// Product dispatcher: schoolbook below [`KARATSUBA_THRESHOLD`], Karatsuba
/// above. Returns unnormalized limbs (may carry trailing zeros).
fn mul_slices(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    if a.len().min(b.len()) < KARATSUBA_THRESHOLD {
        return mul_schoolbook(a, b);
    }
    mul_karatsuba(a, b)
}

/// Karatsuba recursion: split at `m = ⌈max(n, len)/2⌉ limbs so
/// `x = x1·B^m + x0`, `y = y1·B^m + y0`, then
///
/// ```text
/// x·y = z2·B^{2m} + z1·B^m + z0
/// z0 = x0·y0,  z2 = x1·y1,  z1 = (x0+x1)(y0+y1) − z0 − z2
/// ```
///
/// Three half-size products instead of four gives the O(n^log2(3)) bound.
/// Empty high halves (when one operand is much shorter than the other)
/// degenerate gracefully: `z2` is empty and the recursion halves `b` only.
fn mul_karatsuba(a: &[u64], b: &[u64]) -> Vec<u64> {
    let m = a.len().max(b.len()).div_ceil(2);
    let (a0, a1) = a.split_at(m.min(a.len()));
    let (b0, b1) = b.split_at(m.min(b.len()));
    let trim = |s: &[u64]| {
        let mut end = s.len();
        while end > 0 && s[end - 1] == 0 {
            end -= 1;
        }
        s[..end].to_vec()
    };
    let a0 = trim(a0);
    let b0 = trim(b0);

    let z0 = mul_slices(&a0, b0.as_slice());
    let z2 = mul_slices(a1, b1);
    let sa = add_slices(&a0, a1);
    let sb = add_slices(&b0, b1);
    let mut z1 = mul_slices(&sa, &sb);
    sub_assign_slices(&mut z1, &z0);
    sub_assign_slices(&mut z1, &z2);

    let mut out = vec![0u64; a.len() + b.len()];
    let clip = |z: &[u64]| {
        let mut end = z.len();
        while end > 0 && z[end - 1] == 0 {
            end -= 1;
        }
        end
    };
    add_at(&mut out, &z0[..clip(&z0)], 0);
    add_at(&mut out, &z1[..clip(&z1)], m);
    add_at(&mut out, &z2[..clip(&z2)], 2 * m);
    out
}

/// Euclid's algorithm on machine words (shared with `Rat::from_ratio`).
pub(crate) fn gcd_u64(a: u64, b: u64) -> u64 {
    note_gcd_call();
    gcd_u64_inner(a, b)
}

/// [`gcd_u64`] without the counter bump, for use inside [`Nat::gcd`]
/// (which already counted its own invocation).
fn gcd_u64_inner(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

#[cfg(debug_assertions)]
thread_local! {
    /// Per-thread count of gcd invocations; see [`gcd_call_count`].
    static GCD_CALLS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Bumps the per-thread gcd counter (debug builds only; free in release).
#[inline]
fn note_gcd_call() {
    #[cfg(debug_assertions)]
    GCD_CALLS.with(|c| c.set(c.get() + 1));
}

/// Number of gcd invocations ([`Nat::gcd`] or the internal word-sized
/// Euclid used by `Rat::from_ratio`) performed by the **current thread**
/// since it started.
///
/// Only counts in debug builds — release builds always report `0`, so the
/// counter costs nothing on the sampler hot paths. Tests use snapshots of
/// this counter to prove that gcd-free code paths (the `Dyadic` budget
/// lattice in particular) really perform no reductions; such tests must be
/// gated on `cfg(debug_assertions)`.
pub fn gcd_call_count() -> u64 {
    #[cfg(debug_assertions)]
    {
        GCD_CALLS.with(std::cell::Cell::get)
    }
    #[cfg(not(debug_assertions))]
    {
        0
    }
}

impl Nat {
    /// The natural number zero.
    ///
    /// ```
    /// use sampcert_arith::Nat;
    /// assert!(Nat::zero().is_zero());
    /// ```
    pub fn zero() -> Self {
        Nat {
            repr: Repr::Small(0),
        }
    }

    /// The natural number one.
    ///
    /// ```
    /// use sampcert_arith::Nat;
    /// assert_eq!(Nat::one(), Nat::from(1u64));
    /// ```
    pub fn one() -> Self {
        Nat {
            repr: Repr::Small(1),
        }
    }

    /// Returns `true` when this number is zero.
    pub fn is_zero(&self) -> bool {
        matches!(self.repr, Repr::Small(0))
    }

    /// Returns `true` when this number is one.
    pub fn is_one(&self) -> bool {
        matches!(self.repr, Repr::Small(1))
    }

    /// Returns `true` when the value is stored inline (fits in one limb).
    ///
    /// Exposed so tests and benchmarks can pin down the allocation
    /// behaviour of the hot paths; algorithms should not branch on it.
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Small(_))
    }

    /// Returns `true` when the low bit is zero (zero is even).
    ///
    /// ```
    /// use sampcert_arith::Nat;
    /// assert!(Nat::from(4u64).is_even());
    /// assert!(!Nat::from(9u64).is_even());
    /// ```
    pub fn is_even(&self) -> bool {
        match &self.repr {
            Repr::Small(v) => v & 1 == 0,
            Repr::Big(v) => v[0] & 1 == 0,
        }
    }

    /// Constructs a `Nat` from raw little-endian limbs, normalizing
    /// (trailing zero limbs are dropped, so any limb vector is accepted).
    ///
    /// The inverse of [`limbs`](Self::limbs) — the limb-level export pair
    /// the serialization layer is built on.
    ///
    /// ```
    /// use sampcert_arith::Nat;
    /// let x = &(&Nat::from(7u64) << 64u32) + &Nat::from(5u64);
    /// assert_eq!(Nat::from_limbs(x.limbs().to_vec()), x);
    /// assert_eq!(Nat::from_limbs(vec![0, 0]), Nat::zero());
    /// ```
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        match limbs.len() {
            0 => Nat::zero(),
            1 => Nat {
                repr: Repr::Small(limbs[0]),
            },
            _ => Nat {
                repr: Repr::Big(limbs),
            },
        }
    }

    /// A view of the little-endian limbs (no trailing zeros; zero is the
    /// empty slice).
    pub fn limbs(&self) -> &[u64] {
        match &self.repr {
            Repr::Small(0) => &[],
            Repr::Small(v) => std::slice::from_ref(v),
            Repr::Big(v) => v,
        }
    }

    /// Serializes as minimal little-endian bytes: no trailing zero bytes,
    /// and zero is the empty sequence. The canonical wire form — exactly
    /// one byte string per value, so byte equality is value equality.
    ///
    /// ```
    /// use sampcert_arith::Nat;
    /// assert_eq!(Nat::from(0x0102u64).to_le_bytes(), vec![0x02, 0x01]);
    /// assert!(Nat::zero().to_le_bytes().is_empty());
    /// ```
    pub fn to_le_bytes(&self) -> Vec<u8> {
        let limbs = self.limbs();
        let mut out = Vec::with_capacity(limbs.len() * 8);
        for limb in limbs {
            out.extend_from_slice(&limb.to_le_bytes());
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    /// Reconstructs from little-endian bytes, normalizing (trailing zero
    /// bytes are tolerated — the inverse of [`to_le_bytes`](Self::to_le_bytes)
    /// on any input, canonical or not).
    ///
    /// ```
    /// use sampcert_arith::Nat;
    /// let x = Nat::from(10u64).pow(30);
    /// assert_eq!(Nat::from_le_bytes(&x.to_le_bytes()), x);
    /// ```
    pub fn from_le_bytes(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len().div_ceil(8));
        for chunk in bytes.chunks(8) {
            let mut limb = [0u8; 8];
            limb[..chunk.len()].copy_from_slice(chunk);
            limbs.push(u64::from_le_bytes(limb));
        }
        Nat::from_limbs(limbs)
    }

    /// Consumes the value into owned limbs (no trailing zeros), reusing the
    /// heap buffer of `Big` values.
    fn into_limbs(self) -> Vec<u64> {
        match self.repr {
            Repr::Small(0) => Vec::new(),
            Repr::Small(v) => vec![v],
            Repr::Big(v) => v,
        }
    }

    /// Number of significant bits; zero has zero bits.
    ///
    /// ```
    /// use sampcert_arith::Nat;
    /// assert_eq!(Nat::from(255u64).bit_length(), 8);
    /// assert_eq!(Nat::from(256u64).bit_length(), 9);
    /// assert_eq!(Nat::zero().bit_length(), 0);
    /// ```
    pub fn bit_length(&self) -> u64 {
        match &self.repr {
            Repr::Small(v) => (LIMB_BITS - v.leading_zeros()) as u64,
            Repr::Big(v) => {
                let top = v[v.len() - 1];
                (v.len() as u64 - 1) * LIMB_BITS as u64 + (LIMB_BITS - top.leading_zeros()) as u64
            }
        }
    }

    /// Number of trailing zero bits; zero has zero trailing zeros (by the
    /// convention that makes `n >> n.trailing_zeros()` total).
    ///
    /// ```
    /// use sampcert_arith::Nat;
    /// assert_eq!(Nat::from(24u64).trailing_zeros(), 3);
    /// assert_eq!(Nat::from(1u64).trailing_zeros(), 0);
    /// assert_eq!(Nat::zero().trailing_zeros(), 0);
    /// ```
    pub fn trailing_zeros(&self) -> u64 {
        match &self.repr {
            Repr::Small(0) => 0,
            Repr::Small(v) => v.trailing_zeros() as u64,
            Repr::Big(v) => {
                // Invariant: some limb is nonzero.
                let i = v.iter().position(|&l| l != 0).expect("normalized Big");
                i as u64 * LIMB_BITS as u64 + v[i].trailing_zeros() as u64
            }
        }
    }

    /// Value of bit `i` (little-endian bit order).
    pub fn bit(&self, i: u64) -> bool {
        let limb = (i / LIMB_BITS as u64) as usize;
        let off = (i % LIMB_BITS as u64) as u32;
        self.limbs().get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Keeps only the low `bits` bits (i.e. reduces modulo `2^bits`).
    ///
    /// ```
    /// use sampcert_arith::Nat;
    /// assert_eq!(Nat::from(0b110101u64).low_bits(3), Nat::from(0b101u64));
    /// assert_eq!(Nat::from(7u64).low_bits(0), Nat::zero());
    /// ```
    pub fn low_bits(&self, bits: u64) -> Nat {
        if bits >= self.bit_length() {
            return self.clone();
        }
        if let Repr::Small(v) = self.repr {
            // bits < bit_length <= 64 here.
            return Nat {
                repr: Repr::Small(v & ((1u64 << bits) - 1)),
            };
        }
        let limbs = self.limbs();
        let whole = (bits / LIMB_BITS as u64) as usize;
        let rem = (bits % LIMB_BITS as u64) as u32;
        let mut out = limbs[..whole.min(limbs.len())].to_vec();
        if rem > 0 {
            if let Some(&l) = limbs.get(whole) {
                out.push(l & ((1u64 << rem) - 1));
            }
        }
        Nat::from_limbs(out)
    }

    /// Converts to `u64` when the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match &self.repr {
            Repr::Small(v) => Some(*v),
            Repr::Big(_) => None,
        }
    }

    /// Converts to `u128` when the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        match &self.repr {
            Repr::Small(v) => Some(*v as u128),
            Repr::Big(v) if v.len() == 2 => Some((v[1] as u128) << 64 | v[0] as u128),
            Repr::Big(_) => None,
        }
    }

    /// Converts to `f64`, rounding; very large values map to `f64::INFINITY`.
    ///
    /// ```
    /// use sampcert_arith::Nat;
    /// assert_eq!(Nat::from(12u64).to_f64(), 12.0);
    /// ```
    pub fn to_f64(&self) -> f64 {
        let limbs = self.limbs();
        match limbs.len() {
            0 => 0.0,
            1 => limbs[0] as f64,
            2 => (limbs[1] as f64) * 2f64.powi(64) + limbs[0] as f64,
            n => {
                // Use the top two limbs for the mantissa and scale by the rest.
                let hi = limbs[n - 1] as f64 * 2f64.powi(64) + limbs[n - 2] as f64;
                hi * 2f64.powi(((n - 2) as i32) * 64)
            }
        }
    }

    /// Builds a `Nat` from big-endian bytes.
    ///
    /// Single pass, one allocation at most: the bytes are packed into
    /// limbs directly rather than folded through repeated shifts.
    ///
    /// ```
    /// use sampcert_arith::Nat;
    /// assert_eq!(Nat::from_be_bytes(&[1, 0]), Nat::from(256u64));
    /// ```
    pub fn from_be_bytes(bytes: &[u8]) -> Self {
        let first = bytes.iter().position(|&b| b != 0).unwrap_or(bytes.len());
        let bytes = &bytes[first..];
        if bytes.len() <= 8 {
            let mut v = 0u64;
            for &b in bytes {
                v = (v << 8) | b as u64;
            }
            return Nat {
                repr: Repr::Small(v),
            };
        }
        let n_limbs = bytes.len().div_ceil(8);
        let mut limbs = Vec::with_capacity(n_limbs);
        let mut end = bytes.len();
        while end > 0 {
            let start = end.saturating_sub(8);
            let mut v = 0u64;
            for &b in &bytes[start..end] {
                v = (v << 8) | b as u64;
            }
            limbs.push(v);
            end = start;
        }
        Nat::from_limbs(limbs)
    }

    /// `self · 256 + b`: appends one big-endian byte.
    ///
    /// This is the per-byte step of the uniform sampler's accumulation
    /// loop; for values below `2^56` it is branch-cheap and allocation
    /// free.
    pub fn push_be_byte(&self, b: u8) -> Nat {
        match &self.repr {
            Repr::Small(v) if *v >> 56 == 0 => Nat {
                repr: Repr::Small((v << 8) | b as u64),
            },
            _ => {
                let limbs = self.limbs();
                let mut out = Vec::with_capacity(limbs.len() + 1);
                let mut carry = b as u64;
                for &l in limbs {
                    out.push((l << 8) | carry);
                    carry = l >> 56;
                }
                if carry != 0 {
                    out.push(carry);
                }
                Nat::from_limbs(out)
            }
        }
    }

    /// Multiplies by a machine word, allocation-free when the result fits
    /// in one limb.
    pub fn mul_u64(&self, m: u64) -> Nat {
        match &self.repr {
            Repr::Small(v) => {
                let p = *v as u128 * m as u128;
                Nat::from(p)
            }
            Repr::Big(v) => {
                if m == 0 {
                    return Nat::zero();
                }
                let mut out = Vec::with_capacity(v.len() + 1);
                let mut carry = 0u128;
                for &l in v {
                    let cur = l as u128 * m as u128 + carry;
                    out.push(cur as u64);
                    carry = cur >> 64;
                }
                if carry != 0 {
                    out.push(carry as u64);
                }
                Nat::from_limbs(out)
            }
        }
    }

    /// Compares two naturals.
    fn cmp_nat(&self, other: &Nat) -> Ordering {
        match (&self.repr, &other.repr) {
            (Repr::Small(a), Repr::Small(b)) => a.cmp(b),
            (Repr::Small(_), Repr::Big(_)) => Ordering::Less,
            (Repr::Big(_), Repr::Small(_)) => Ordering::Greater,
            (Repr::Big(a), Repr::Big(b)) => cmp_slices(a, b),
        }
    }

    /// Adds two naturals.
    fn add_nat(&self, other: &Nat) -> Nat {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &other.repr) {
            let (s, carry) = a.overflowing_add(*b);
            return if carry {
                Nat {
                    repr: Repr::Big(vec![s, 1]),
                }
            } else {
                Nat {
                    repr: Repr::Small(s),
                }
            };
        }
        Nat::from_limbs(add_slices(self.limbs(), other.limbs()))
    }

    /// Subtracts `other` from `self`, returning `None` on underflow.
    ///
    /// ```
    /// use sampcert_arith::Nat;
    /// assert_eq!(Nat::from(5u64).checked_sub(&Nat::from(7u64)), None);
    /// assert_eq!(Nat::from(7u64).checked_sub(&Nat::from(5u64)), Some(Nat::from(2u64)));
    /// ```
    pub fn checked_sub(&self, other: &Nat) -> Option<Nat> {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &other.repr) {
            return a.checked_sub(*b).map(|d| Nat {
                repr: Repr::Small(d),
            });
        }
        if self.cmp_nat(other) == Ordering::Less {
            return None;
        }
        Some(Nat::from_limbs(sub_slices(self.limbs(), other.limbs())))
    }

    /// Saturating subtraction: `max(self - other, 0)`.
    ///
    /// This mirrors Lean's truncated natural subtraction, which the SampCert
    /// sources use pervasively (for example `v - 1` in the Laplace loop).
    ///
    /// ```
    /// use sampcert_arith::Nat;
    /// assert_eq!(Nat::from(3u64).saturating_sub(&Nat::from(8u64)), Nat::zero());
    /// ```
    pub fn saturating_sub(&self, other: &Nat) -> Nat {
        self.checked_sub(other).unwrap_or_else(Nat::zero)
    }

    /// Multiplies two naturals.
    fn mul_nat(&self, other: &Nat) -> Nat {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &other.repr) {
            return Nat::from(*a as u128 * *b as u128);
        }
        if self.is_zero() || other.is_zero() {
            return Nat::zero();
        }
        Nat::from_limbs(mul_slices(self.limbs(), other.limbs()))
    }

    /// Multiplies two naturals forcing the schoolbook path (test hook for
    /// differential checks against Karatsuba).
    #[doc(hidden)]
    pub fn mul_schoolbook_for_tests(&self, other: &Nat) -> Nat {
        if self.is_zero() || other.is_zero() {
            return Nat::zero();
        }
        Nat::from_limbs(mul_schoolbook(self.limbs(), other.limbs()))
    }

    /// Divides by a single limb, returning `(quotient, remainder)`.
    fn div_rem_limb(&self, d: u64) -> (Nat, u64) {
        assert!(d != 0, "division by zero");
        match &self.repr {
            Repr::Small(v) => (
                Nat {
                    repr: Repr::Small(v / d),
                },
                v % d,
            ),
            Repr::Big(v) => {
                let mut out = vec![0u64; v.len()];
                let mut rem = 0u128;
                for i in (0..v.len()).rev() {
                    let cur = (rem << 64) | v[i] as u128;
                    out[i] = (cur / d as u128) as u64;
                    rem = cur % d as u128;
                }
                (Nat::from_limbs(out), rem as u64)
            }
        }
    }

    /// Euclidean division, returning `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    ///
    /// ```
    /// use sampcert_arith::Nat;
    /// let (q, r) = Nat::from(100u64).div_rem(&Nat::from(7u64));
    /// assert_eq!((q, r), (Nat::from(14u64), Nat::from(2u64)));
    /// ```
    pub fn div_rem(&self, divisor: &Nat) -> (Nat, Nat) {
        assert!(!divisor.is_zero(), "division by zero");
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &divisor.repr) {
            return (
                Nat {
                    repr: Repr::Small(a / b),
                },
                Nat {
                    repr: Repr::Small(a % b),
                },
            );
        }
        match self.cmp_nat(divisor) {
            Ordering::Less => return (Nat::zero(), self.clone()),
            Ordering::Equal => return (Nat::one(), Nat::zero()),
            Ordering::Greater => {}
        }
        if let Repr::Small(d) = divisor.repr {
            let (q, r) = self.div_rem_limb(d);
            return (q, Nat::from(r));
        }
        self.div_rem_knuth(divisor)
    }

    /// Knuth Algorithm D for multi-limb divisors.
    fn div_rem_knuth(&self, divisor: &Nat) -> (Nat, Nat) {
        let dl = divisor.limbs();
        let n = dl.len();
        let m = self.limbs().len() - n;
        let shift = dl[n - 1].leading_zeros();

        // Normalized copies: u has one extra high limb.
        let v = (divisor << shift).into_limbs();
        let mut u = (self << shift).into_limbs();
        u.resize(self.limbs().len() + 1, 0);

        let mut q = vec![0u64; m + 1];
        let b = 1u128 << 64;
        for j in (0..=m).rev() {
            let top = ((u[j + n] as u128) << 64) | u[j + n - 1] as u128;
            let mut qhat = top / v[n - 1] as u128;
            let mut rhat = top % v[n - 1] as u128;
            while qhat >= b || qhat * v[n - 2] as u128 > ((rhat << 64) | u[j + n - 2] as u128) {
                qhat -= 1;
                rhat += v[n - 1] as u128;
                if rhat >= b {
                    break;
                }
            }
            // Multiply and subtract: u[j..j+n+1] -= qhat * v.
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * v[i] as u128 + carry;
                carry = p >> 64;
                let sub = (u[j + i] as i128) - ((p as u64) as i128) - borrow;
                u[j + i] = sub as u64;
                borrow = if sub < 0 { 1 } else { 0 };
            }
            let sub = (u[j + n] as i128) - (carry as i128) - borrow;
            u[j + n] = sub as u64;

            if sub < 0 {
                // qhat was one too large: add back.
                qhat -= 1;
                let mut carry2 = 0u128;
                for i in 0..n {
                    let s = u[j + i] as u128 + v[i] as u128 + carry2;
                    u[j + i] = s as u64;
                    carry2 = s >> 64;
                }
                u[j + n] = (u[j + n] as u128).wrapping_add(carry2) as u64;
            }
            q[j] = qhat as u64;
        }
        let rem = Nat::from_limbs(u[..n].to_vec()) >> shift;
        (Nat::from_limbs(q), rem)
    }

    /// Greatest common divisor.
    ///
    /// Both-small operands run a word-sized Euclid loop with no heap
    /// traffic; larger operands take Euclid steps on limbs until both
    /// sides fit in a word.
    ///
    /// ```
    /// use sampcert_arith::Nat;
    /// assert_eq!(Nat::from(48u64).gcd(&Nat::from(36u64)), Nat::from(12u64));
    /// assert_eq!(Nat::from(5u64).gcd(&Nat::zero()), Nat::from(5u64));
    /// ```
    pub fn gcd(&self, other: &Nat) -> Nat {
        note_gcd_call();
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &other.repr) {
            return Nat {
                repr: Repr::Small(gcd_u64_inner(*a, *b)),
            };
        }
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            if let (Some(x), Some(y)) = (a.to_u64(), b.to_u64()) {
                return Nat {
                    repr: Repr::Small(gcd_u64_inner(x, y)),
                };
            }
            let (_, r) = a.div_rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Raises to the power `exp` by repeated squaring.
    ///
    /// ```
    /// use sampcert_arith::Nat;
    /// assert_eq!(Nat::from(3u64).pow(5), Nat::from(243u64));
    /// assert_eq!(Nat::from(0u64).pow(0), Nat::one());
    /// ```
    pub fn pow(&self, mut exp: u32) -> Nat {
        let mut base = self.clone();
        let mut acc = Nat::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.mul_nat(&base);
            }
            exp >>= 1;
            if exp > 0 {
                base = base.mul_nat(&base);
            }
        }
        acc
    }

    /// Integer square root: the largest `r` with `r² ≤ self`.
    ///
    /// ```
    /// use sampcert_arith::Nat;
    /// assert_eq!(Nat::from(99u64).isqrt(), Nat::from(9u64));
    /// assert_eq!(Nat::from(100u64).isqrt(), Nat::from(10u64));
    /// ```
    pub fn isqrt(&self) -> Nat {
        if self.is_zero() {
            return Nat::zero();
        }
        // Newton's method with an initial guess from the bit length.
        let mut x = Nat::one() << ((self.bit_length() / 2 + 1) as u32);
        loop {
            // y = (x + self / x) / 2
            let (d, _) = self.div_rem(&x);
            let y = (&x + &d).div_rem(&Nat::from(2u64)).0;
            if y.cmp_nat(&x) != Ordering::Less {
                return x;
            }
            x = y;
        }
    }
}

impl Ord for Nat {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_nat(other)
    }
}

impl PartialOrd for Nat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

macro_rules! impl_from_word {
    ($($t:ty),*) => {$(
        impl From<$t> for Nat {
            fn from(v: $t) -> Self {
                Nat { repr: Repr::Small(v as u64) }
            }
        }
    )*};
}
impl_from_word!(u8, u16, u32, u64, usize);

impl From<u128> for Nat {
    fn from(v: u128) -> Self {
        if v <= u64::MAX as u128 {
            Nat {
                repr: Repr::Small(v as u64),
            }
        } else {
            Nat {
                repr: Repr::Big(vec![v as u64, (v >> 64) as u64]),
            }
        }
    }
}

impl Add for &Nat {
    type Output = Nat;
    fn add(self, rhs: &Nat) -> Nat {
        self.add_nat(rhs)
    }
}

impl Add for Nat {
    type Output = Nat;
    fn add(self, rhs: Nat) -> Nat {
        self.add_nat(&rhs)
    }
}

impl AddAssign<&Nat> for Nat {
    fn add_assign(&mut self, rhs: &Nat) {
        match (&mut self.repr, &rhs.repr) {
            (Repr::Small(a), Repr::Small(b)) => {
                let (s, carry) = a.overflowing_add(*b);
                if carry {
                    self.repr = Repr::Big(vec![s, 1]);
                } else {
                    *a = s;
                }
            }
            (Repr::Big(a), _) if a.len() >= rhs.limbs().len() => {
                // True in-place add: no reallocation unless a carry limb
                // must be appended.
                let b = rhs.limbs();
                let mut carry = 0u64;
                for i in 0..a.len() {
                    let rhs_l = b.get(i).copied().unwrap_or(0);
                    if carry == 0 && i >= b.len() {
                        break;
                    }
                    let (s1, c1) = a[i].overflowing_add(rhs_l);
                    let (s2, c2) = s1.overflowing_add(carry);
                    a[i] = s2;
                    carry = (c1 as u64) + (c2 as u64);
                }
                if carry > 0 {
                    a.push(carry);
                }
            }
            _ => *self = self.add_nat(rhs),
        }
    }
}

impl Sub for &Nat {
    type Output = Nat;
    /// # Panics
    /// Panics on underflow; use [`Nat::checked_sub`] or
    /// [`Nat::saturating_sub`] for non-panicking variants.
    fn sub(self, rhs: &Nat) -> Nat {
        self.checked_sub(rhs).expect("Nat subtraction underflow")
    }
}

impl Sub for Nat {
    type Output = Nat;
    fn sub(self, rhs: Nat) -> Nat {
        &self - &rhs
    }
}

impl SubAssign<&Nat> for Nat {
    fn sub_assign(&mut self, rhs: &Nat) {
        match (&mut self.repr, &rhs.repr) {
            (Repr::Small(a), Repr::Small(b)) => {
                *a = a.checked_sub(*b).expect("Nat subtraction underflow");
            }
            (Repr::Big(a), _) if cmp_slices(a, rhs.limbs()) != Ordering::Less => {
                sub_assign_slices(a, rhs.limbs());
                if a.len() < 2 {
                    self.repr = Repr::Small(a.first().copied().unwrap_or(0));
                }
            }
            _ => *self = &*self - rhs,
        }
    }
}

impl Mul for &Nat {
    type Output = Nat;
    fn mul(self, rhs: &Nat) -> Nat {
        self.mul_nat(rhs)
    }
}

impl Mul for Nat {
    type Output = Nat;
    fn mul(self, rhs: Nat) -> Nat {
        self.mul_nat(&rhs)
    }
}

impl MulAssign<&Nat> for Nat {
    fn mul_assign(&mut self, rhs: &Nat) {
        if let (Repr::Small(a), Repr::Small(b)) = (&mut self.repr, &rhs.repr) {
            let p = *a as u128 * *b as u128;
            if p <= u64::MAX as u128 {
                *a = p as u64;
                return;
            }
        }
        *self = self.mul_nat(rhs);
    }
}

impl Div for &Nat {
    type Output = Nat;
    fn div(self, rhs: &Nat) -> Nat {
        self.div_rem(rhs).0
    }
}

impl Div for Nat {
    type Output = Nat;
    fn div(self, rhs: Nat) -> Nat {
        self.div_rem(&rhs).0
    }
}

impl Rem for &Nat {
    type Output = Nat;
    fn rem(self, rhs: &Nat) -> Nat {
        self.div_rem(rhs).1
    }
}

impl Rem for Nat {
    type Output = Nat;
    fn rem(self, rhs: Nat) -> Nat {
        self.div_rem(&rhs).1
    }
}

impl Shl<u32> for &Nat {
    type Output = Nat;
    fn shl(self, bits: u32) -> Nat {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        if let Repr::Small(v) = self.repr {
            if bits < LIMB_BITS && v.leading_zeros() >= bits {
                return Nat {
                    repr: Repr::Small(v << bits),
                };
            }
        }
        let limbs = self.limbs();
        let limb_shift = (bits / LIMB_BITS) as usize;
        let bit_shift = bits % LIMB_BITS;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(limbs);
        } else {
            let mut carry = 0u64;
            for &l in limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (LIMB_BITS - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        Nat::from_limbs(out)
    }
}

impl Shl<u32> for Nat {
    type Output = Nat;
    fn shl(self, bits: u32) -> Nat {
        &self << bits
    }
}

impl Shr<u32> for &Nat {
    type Output = Nat;
    fn shr(self, bits: u32) -> Nat {
        if let Repr::Small(v) = self.repr {
            return Nat {
                repr: Repr::Small(if bits >= LIMB_BITS { 0 } else { v >> bits }),
            };
        }
        let limbs = self.limbs();
        let limb_shift = (bits / LIMB_BITS) as usize;
        if limb_shift >= limbs.len() {
            return Nat::zero();
        }
        let bit_shift = bits % LIMB_BITS;
        let src = &limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                out.push((src[i] >> bit_shift) | (hi << (LIMB_BITS - bit_shift)));
            }
        }
        Nat::from_limbs(out)
    }
}

impl Shr<u32> for Nat {
    type Output = Nat;
    fn shr(self, bits: u32) -> Nat {
        &self >> bits
    }
}

impl fmt::Display for Nat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "", "0");
        }
        if let Repr::Small(v) = self.repr {
            return f.pad_integral(true, "", &v.to_string());
        }
        // Peel off 19 decimal digits at a time (10^19 fits in a u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut n = self.clone();
        let mut chunks = Vec::new();
        while !n.is_zero() {
            let (q, r) = n.div_rem_limb(CHUNK);
            chunks.push(r);
            n = q;
        }
        let mut s = chunks.pop().map(|c| c.to_string()).unwrap_or_default();
        for c in chunks.iter().rev() {
            s.push_str(&format!("{c:019}"));
        }
        f.pad_integral(true, "", &s)
    }
}

impl fmt::Debug for Nat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Nat({self})")
    }
}

/// Error returned when parsing a [`Nat`] from a malformed string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNatError;

impl fmt::Display for ParseNatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid natural number literal")
    }
}

impl std::error::Error for ParseNatError {}

impl FromStr for Nat {
    type Err = ParseNatError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseNatError);
        }
        let mut n = Nat::zero();
        let bytes = s.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let take = (bytes.len() - i).min(19);
            let chunk: u64 = s[i..i + take].parse().map_err(|_| ParseNatError)?;
            let scale = if take == 19 {
                10_000_000_000_000_000_000u64
            } else {
                10u64.pow(take as u32)
            };
            n = &n.mul_u64(scale) + &Nat::from(chunk);
            i += take;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u128) -> Nat {
        Nat::from(v)
    }

    #[test]
    fn zero_and_one() {
        assert!(Nat::zero().is_zero());
        assert!(Nat::one().is_one());
        assert_eq!(Nat::default(), Nat::zero());
        assert_eq!(Nat::zero().bit_length(), 0);
    }

    #[test]
    fn representation_invariant() {
        // Values at and around the limb boundary take the right variant.
        assert!(n(0).is_inline());
        assert!(n(u64::MAX as u128).is_inline());
        assert!(!n(u64::MAX as u128 + 1).is_inline());
        // Operations that shrink a Big value re-inline it.
        let big = n(1u128 << 64);
        assert!((&big - &Nat::one()).is_inline());
        assert!((&big >> 64u32).is_inline());
        assert!(big.div_rem(&n(2)).0.is_inline()); // 2^63 fits one limb
        assert!(!(&big * &big).is_inline());
        assert!(big.div_rem(&big).0.is_inline());
        assert_eq!(Nat::from_limbs(vec![7, 0, 0]), n(7));
        assert!(Nat::from_limbs(vec![7, 0, 0]).is_inline());
    }

    #[test]
    fn add_basic_and_carry() {
        assert_eq!(&n(2) + &n(3), n(5));
        assert_eq!(&n(u64::MAX as u128) + &n(1), n(1u128 << 64));
        let big = n(u128::MAX);
        let sum = &big + &big;
        assert_eq!(sum, &n(u128::MAX) * &n(2));
    }

    #[test]
    fn add_assign_in_place() {
        let mut a = n(40);
        a += &n(2);
        assert_eq!(a, n(42));
        // Small overflowing into Big.
        let mut b = n(u64::MAX as u128);
        b += &Nat::one();
        assert_eq!(b, n(1u128 << 64));
        // Big += Small in place, with carry limb growth.
        let mut c = n(u128::MAX);
        c += &Nat::one();
        assert_eq!(c, &n(u128::MAX) + &Nat::one());
        // Small += Big promotes.
        let mut d = n(5);
        d += &n(1u128 << 100);
        assert_eq!(d, &n(5) + &n(1u128 << 100));
    }

    #[test]
    fn sub_and_underflow() {
        assert_eq!(&n(10) - &n(4), n(6));
        assert_eq!(n(4).checked_sub(&n(10)), None);
        assert_eq!(n(4).saturating_sub(&n(10)), Nat::zero());
        assert_eq!(&n(1u128 << 64) - &n(1), n(u64::MAX as u128));
    }

    #[test]
    fn sub_assign_in_place() {
        let mut a = n(10);
        a -= &n(4);
        assert_eq!(a, n(6));
        // Big shrinking back to Small.
        let mut b = n(1u128 << 64);
        b -= &Nat::one();
        assert_eq!(b, n(u64::MAX as u128));
        assert!(b.is_inline());
        let mut c = n(u128::MAX);
        c -= &n(u128::MAX - 7);
        assert_eq!(c, n(7));
        assert!(c.is_inline());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_panics_on_underflow() {
        let _ = &n(1) - &n(2);
    }

    #[test]
    fn mul_cross_limb() {
        assert_eq!(&n(0) * &n(123), Nat::zero());
        let a = n(u64::MAX as u128);
        assert_eq!(&a * &a, n((u64::MAX as u128) * (u64::MAX as u128)));
        let big = Nat::from(10u64).pow(40);
        let sq = &big * &big;
        assert_eq!(sq, Nat::from(10u64).pow(80));
    }

    #[test]
    fn mul_assign_in_place() {
        let mut a = n(6);
        a *= &n(7);
        assert_eq!(a, n(42));
        assert!(a.is_inline());
        let mut b = n(1u128 << 40);
        b *= &n(1u128 << 40);
        assert_eq!(b, n(1u128 << 80));
    }

    #[test]
    fn mul_u64_matches_general_mul() {
        for v in [0u128, 1, 7, u64::MAX as u128, 1u128 << 90, u128::MAX] {
            for m in [0u64, 1, 255, u64::MAX] {
                assert_eq!(n(v).mul_u64(m), &n(v) * &Nat::from(m), "{v} * {m}");
            }
        }
        let huge = Nat::from(10u64).pow(50);
        assert_eq!(huge.mul_u64(10), &huge * &n(10));
    }

    #[test]
    fn push_be_byte_matches_shift_or() {
        for v in [
            0u128,
            1,
            0xFF,
            1 << 55,
            1 << 56,
            u64::MAX as u128,
            1u128 << 90,
        ] {
            for b in [0u8, 1, 0xAB, 0xFF] {
                let expect = &(&n(v) << 8u32) + &Nat::from(b);
                assert_eq!(n(v).push_be_byte(b), expect, "v={v} b={b}");
            }
        }
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        // Dense operands straddling the threshold.
        let mk = |limbs: usize, seed: u64| {
            let mut v = Vec::with_capacity(limbs);
            let mut state = seed;
            for _ in 0..limbs {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                v.push(state);
            }
            Nat::from_limbs(v)
        };
        for (la, lb) in [
            (KARATSUBA_THRESHOLD, KARATSUBA_THRESHOLD),
            (KARATSUBA_THRESHOLD + 1, KARATSUBA_THRESHOLD),
            (2 * KARATSUBA_THRESHOLD + 3, KARATSUBA_THRESHOLD + 1),
            (97, 61),
            (130, 130),
        ] {
            let a = mk(la, la as u64 ^ 0xA5);
            let b = mk(lb, lb as u64 ^ 0x5A);
            assert_eq!(&a * &b, a.mul_schoolbook_for_tests(&b), "{la}x{lb}");
            // And against the all-ones closed form where easy to build.
        }
        // Highly asymmetric: Karatsuba degenerate split.
        let a = mk(200, 9);
        let b = mk(KARATSUBA_THRESHOLD, 10);
        assert_eq!(&a * &b, a.mul_schoolbook_for_tests(&b));
    }

    #[test]
    fn karatsuba_all_ones_closed_form() {
        // (B^n - 1)(B^m - 1) = B^{n+m} - B^n - B^m + 1.
        let pow = |k: u32| Nat::one() << (64 * k);
        for (nn, mm) in [(64u32, 64u32), (100, 40), (129, 77)] {
            let a = &pow(nn) - &Nat::one();
            let b = &pow(mm) - &Nat::one();
            let expect = &(&(&pow(nn + mm) - &pow(nn)) - &pow(mm)) + &Nat::one();
            assert_eq!(&a * &b, expect, "{nn}x{mm}");
        }
    }

    #[test]
    fn div_rem_small_divisor() {
        let (q, r) = n(1000).div_rem(&n(7));
        assert_eq!((q, r), (n(142), n(6)));
        let (q, r) = n(5).div_rem(&n(9));
        assert_eq!((q, r), (Nat::zero(), n(5)));
        let (q, r) = n(9).div_rem(&n(9));
        assert_eq!((q, r), (Nat::one(), Nat::zero()));
    }

    #[test]
    fn div_rem_multi_limb() {
        let a = Nat::from(10u64).pow(50);
        let b = Nat::from(10u64).pow(21); // multi-limb divisor
        let (q, r) = a.div_rem(&b);
        assert_eq!(q, Nat::from(10u64).pow(29));
        assert!(r.is_zero());

        let a2 = &a + &n(12345);
        let (q2, r2) = a2.div_rem(&b);
        assert_eq!(q2, Nat::from(10u64).pow(29));
        assert_eq!(r2, n(12345));
    }

    #[test]
    fn div_rem_knuth_addback_path() {
        // Exercise the rare add-back branch: divisor with top limb just above
        // B/2 and dividend engineered so qhat overestimates.
        let v = Nat::from_limbs(vec![0, 0x8000_0000_0000_0001]);
        let u = Nat::from_limbs(vec![u64::MAX, u64::MAX, 0x8000_0000_0000_0000]);
        let (q, r) = u.div_rem(&v);
        assert_eq!(&(&q * &v) + &r, u);
        assert!(r < v);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = n(1).div_rem(&Nat::zero());
    }

    #[test]
    fn shifts() {
        assert_eq!(&n(1) << 70u32, Nat::from(1u128 << 70));
        assert_eq!(&Nat::from(1u128 << 70) >> 70u32, Nat::one());
        assert_eq!(&n(0) << 10u32, Nat::zero());
        assert_eq!(&n(12345) >> 200u32, Nat::zero());
        let a = Nat::from(10u64).pow(30);
        assert_eq!(&(&a << 64u32) >> 64u32, a);
        assert_eq!(&(&a << 13u32) >> 13u32, a);
        // Small-path boundaries.
        assert_eq!(&n(1) << 63u32, n(1u128 << 63));
        assert_eq!(&n(1) << 64u32, n(1u128 << 64));
        assert_eq!(&n(3) << 63u32, n(3u128 << 63));
        assert_eq!(&n(0xFFFF) >> 64u32, Nat::zero());
    }

    #[test]
    fn gcd_cases() {
        assert_eq!(n(48).gcd(&n(36)), n(12));
        assert_eq!(n(0).gcd(&n(7)), n(7));
        assert_eq!(n(7).gcd(&n(0)), n(7));
        assert_eq!(n(17).gcd(&n(13)), Nat::one());
        let a = Nat::from(2u64).pow(100);
        let b = Nat::from(2u64).pow(60) * Nat::from(3u64);
        assert_eq!(a.gcd(&b), Nat::from(2u64).pow(60));
        // Mixed small/big.
        let big = Nat::from(2u64).pow(100);
        assert_eq!(big.gcd(&n(1u128 << 10)), n(1u128 << 10));
        assert_eq!(n(1u128 << 10).gcd(&big), n(1u128 << 10));
    }

    #[test]
    fn pow_and_isqrt() {
        assert_eq!(n(2).pow(10), n(1024));
        assert_eq!(n(7).pow(0), Nat::one());
        for v in [0u128, 1, 2, 3, 4, 8, 9, 15, 16, 17, 1 << 40, (1 << 40) + 1] {
            let r = n(v).isqrt();
            let r2 = &r * &r;
            assert!(r2 <= n(v));
            let r1 = &r + &Nat::one();
            assert!(&r1 * &r1 > n(v));
        }
        let big = Nat::from(10u64).pow(60);
        assert_eq!(big.isqrt(), Nat::from(10u64).pow(30));
    }

    #[test]
    fn display_and_parse_roundtrip() {
        for s in [
            "0",
            "1",
            "42",
            "18446744073709551616",
            "123456789012345678901234567890",
        ] {
            let v: Nat = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
        assert!("".parse::<Nat>().is_err());
        assert!("12a".parse::<Nat>().is_err());
        assert!("-3".parse::<Nat>().is_err());
    }

    #[test]
    fn ordering() {
        assert!(n(3) < n(4));
        assert!(Nat::from(1u128 << 64) > n(u64::MAX as u128));
        assert_eq!(n(5).cmp(&n(5)), Ordering::Equal);
    }

    #[test]
    fn conversions() {
        assert_eq!(n(12).to_u64(), Some(12));
        assert_eq!(Nat::from(1u128 << 64).to_u64(), None);
        assert_eq!(Nat::from(1u128 << 64).to_u128(), Some(1u128 << 64));
        assert_eq!(Nat::from(10u64).pow(40).to_u128(), None);
        assert!((Nat::from(10u64).pow(25).to_f64() - 1e25).abs() / 1e25 < 1e-9);
    }

    #[test]
    fn from_be_bytes() {
        assert_eq!(Nat::from_be_bytes(&[]), Nat::zero());
        assert_eq!(Nat::from_be_bytes(&[0x12, 0x34]), n(0x1234));
        let bytes = [0xffu8; 16];
        assert_eq!(Nat::from_be_bytes(&bytes), n(u128::MAX));
        // Leading zeros are insignificant; long inputs hit the limb-packing
        // path.
        assert_eq!(Nat::from_be_bytes(&[0, 0, 0x12, 0x34]), n(0x1234));
        let mut long = vec![0u8; 3];
        long.extend_from_slice(&[0xAB; 23]);
        let expect = (0..23).fold(Nat::zero(), |acc, _| acc.push_be_byte(0xAB));
        assert_eq!(Nat::from_be_bytes(&long), expect);
    }

    #[test]
    fn bits() {
        let v = n(0b1011);
        assert!(v.bit(0) && v.bit(1) && !v.bit(2) && v.bit(3) && !v.bit(4));
        assert!(!v.bit(1000));
        assert!(!v.is_even());
    }

    #[test]
    fn low_bits_boundaries() {
        assert_eq!(n(0b110101).low_bits(3), n(0b101));
        assert_eq!(n(7).low_bits(0), Nat::zero());
        assert_eq!(n(u128::MAX).low_bits(64), n(u64::MAX as u128));
        assert_eq!(n(u128::MAX).low_bits(65), n((1u128 << 65) - 1));
        let big = Nat::from(10u64).pow(40);
        assert_eq!(big.low_bits(big.bit_length()), big);
        assert_eq!(big.low_bits(10_000), big);
    }
}
