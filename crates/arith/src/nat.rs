//! Arbitrary-precision natural numbers.
//!
//! [`Nat`] is an unsigned integer of unbounded size, stored as little-endian
//! `u64` limbs. It provides the exact arithmetic required by the discrete
//! Laplace and Gaussian samplers: the Canonne–Kamath–Steinke algorithms
//! manipulate rationals whose numerators and denominators (for example
//! `(|Y|·t·den − num)²`) grow without bound in the scale parameter.
//!
//! The representation invariant is that `limbs` never has trailing zero
//! limbs; zero is the empty limb vector. All public constructors and
//! operations preserve this invariant.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Rem, Shl, Shr, Sub, SubAssign};
use std::str::FromStr;

/// Number of bits per limb.
const LIMB_BITS: u32 = 64;

/// An arbitrary-precision natural number (unsigned integer).
///
/// # Examples
///
/// ```
/// use sampcert_arith::Nat;
///
/// let a = Nat::from(10u64).pow(30);
/// let b = Nat::from(7u64);
/// let (q, r) = a.div_rem(&b);
/// assert_eq!(&(&q * &b) + &r, a);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Nat {
    /// Little-endian limbs with no trailing zeros.
    limbs: Vec<u64>,
}

impl Nat {
    /// The natural number zero.
    ///
    /// ```
    /// use sampcert_arith::Nat;
    /// assert!(Nat::zero().is_zero());
    /// ```
    pub fn zero() -> Self {
        Nat { limbs: Vec::new() }
    }

    /// The natural number one.
    ///
    /// ```
    /// use sampcert_arith::Nat;
    /// assert_eq!(Nat::one(), Nat::from(1u64));
    /// ```
    pub fn one() -> Self {
        Nat { limbs: vec![1] }
    }

    /// Returns `true` when this number is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` when this number is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Returns `true` when the low bit is zero (zero is even).
    ///
    /// ```
    /// use sampcert_arith::Nat;
    /// assert!(Nat::from(4u64).is_even());
    /// assert!(!Nat::from(9u64).is_even());
    /// ```
    pub fn is_even(&self) -> bool {
        self.limbs.first().map_or(true, |l| l & 1 == 0)
    }

    /// Constructs a `Nat` from raw little-endian limbs, normalizing.
    pub(crate) fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        Nat { limbs }
    }

    /// A view of the little-endian limbs (no trailing zeros).
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Number of significant bits; zero has zero bits.
    ///
    /// ```
    /// use sampcert_arith::Nat;
    /// assert_eq!(Nat::from(255u64).bit_length(), 8);
    /// assert_eq!(Nat::from(256u64).bit_length(), 9);
    /// assert_eq!(Nat::zero().bit_length(), 0);
    /// ```
    pub fn bit_length(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(top) => {
                (self.limbs.len() as u64 - 1) * LIMB_BITS as u64
                    + (LIMB_BITS - top.leading_zeros()) as u64
            }
        }
    }

    /// Value of bit `i` (little-endian bit order).
    pub fn bit(&self, i: u64) -> bool {
        let limb = (i / LIMB_BITS as u64) as usize;
        let off = (i % LIMB_BITS as u64) as u32;
        self.limbs.get(limb).map_or(false, |l| (l >> off) & 1 == 1)
    }

    /// Keeps only the low `bits` bits (i.e. reduces modulo `2^bits`).
    ///
    /// ```
    /// use sampcert_arith::Nat;
    /// assert_eq!(Nat::from(0b110101u64).low_bits(3), Nat::from(0b101u64));
    /// assert_eq!(Nat::from(7u64).low_bits(0), Nat::zero());
    /// ```
    pub fn low_bits(&self, bits: u64) -> Nat {
        if bits >= self.bit_length() {
            return self.clone();
        }
        let whole = (bits / LIMB_BITS as u64) as usize;
        let rem = (bits % LIMB_BITS as u64) as u32;
        let mut limbs = self.limbs[..whole.min(self.limbs.len())].to_vec();
        if rem > 0 {
            if let Some(&l) = self.limbs.get(whole) {
                limbs.push(l & ((1u64 << rem) - 1));
            }
        }
        Nat::from_limbs(limbs)
    }

    /// Converts to `u64` when the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `u128` when the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some((self.limbs[1] as u128) << 64 | self.limbs[0] as u128),
            _ => None,
        }
    }

    /// Converts to `f64`, rounding; very large values map to `f64::INFINITY`.
    ///
    /// ```
    /// use sampcert_arith::Nat;
    /// assert_eq!(Nat::from(12u64).to_f64(), 12.0);
    /// ```
    pub fn to_f64(&self) -> f64 {
        match self.limbs.len() {
            0 => 0.0,
            1 => self.limbs[0] as f64,
            2 => (self.limbs[1] as f64) * 2f64.powi(64) + self.limbs[0] as f64,
            n => {
                // Use the top two limbs for the mantissa and scale by the rest.
                let hi = self.limbs[n - 1] as f64 * 2f64.powi(64) + self.limbs[n - 2] as f64;
                hi * 2f64.powi(((n - 2) as i32) * 64)
            }
        }
    }

    /// Builds a `Nat` from big-endian bytes.
    ///
    /// ```
    /// use sampcert_arith::Nat;
    /// assert_eq!(Nat::from_be_bytes(&[1, 0]), Nat::from(256u64));
    /// ```
    pub fn from_be_bytes(bytes: &[u8]) -> Self {
        let mut n = Nat::zero();
        for &b in bytes {
            n = &(&n << 8u32) + &Nat::from(b as u64);
        }
        n
    }

    /// Compares two naturals.
    fn cmp_nat(&self, other: &Nat) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Adds two naturals.
    fn add_nat(&self, other: &Nat) -> Nat {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.len() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = long[i].overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            out.push(carry);
        }
        Nat::from_limbs(out)
    }

    /// Subtracts `other` from `self`, returning `None` on underflow.
    ///
    /// ```
    /// use sampcert_arith::Nat;
    /// assert_eq!(Nat::from(5u64).checked_sub(&Nat::from(7u64)), None);
    /// assert_eq!(Nat::from(7u64).checked_sub(&Nat::from(5u64)), Some(Nat::from(2u64)));
    /// ```
    pub fn checked_sub(&self, other: &Nat) -> Option<Nat> {
        if self.cmp_nat(other) == Ordering::Less {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, u1) = self.limbs[i].overflowing_sub(b);
            let (d2, u2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (u1 as u64) + (u2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        Some(Nat::from_limbs(out))
    }

    /// Saturating subtraction: `max(self - other, 0)`.
    ///
    /// This mirrors Lean's truncated natural subtraction, which the SampCert
    /// sources use pervasively (for example `v - 1` in the Laplace loop).
    ///
    /// ```
    /// use sampcert_arith::Nat;
    /// assert_eq!(Nat::from(3u64).saturating_sub(&Nat::from(8u64)), Nat::zero());
    /// ```
    pub fn saturating_sub(&self, other: &Nat) -> Nat {
        self.checked_sub(other).unwrap_or_else(Nat::zero)
    }

    /// Multiplies two naturals (schoolbook).
    fn mul_nat(&self, other: &Nat) -> Nat {
        if self.is_zero() || other.is_zero() {
            return Nat::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        Nat::from_limbs(out)
    }

    /// Divides by a single limb, returning `(quotient, remainder)`.
    fn div_rem_limb(&self, d: u64) -> (Nat, u64) {
        assert!(d != 0, "division by zero");
        let mut out = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            out[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        (Nat::from_limbs(out), rem as u64)
    }

    /// Euclidean division, returning `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    ///
    /// ```
    /// use sampcert_arith::Nat;
    /// let (q, r) = Nat::from(100u64).div_rem(&Nat::from(7u64));
    /// assert_eq!((q, r), (Nat::from(14u64), Nat::from(2u64)));
    /// ```
    pub fn div_rem(&self, divisor: &Nat) -> (Nat, Nat) {
        assert!(!divisor.is_zero(), "division by zero");
        match self.cmp_nat(divisor) {
            Ordering::Less => return (Nat::zero(), self.clone()),
            Ordering::Equal => return (Nat::one(), Nat::zero()),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_limb(divisor.limbs[0]);
            return (q, Nat::from(r));
        }
        self.div_rem_knuth(divisor)
    }

    /// Knuth Algorithm D for multi-limb divisors.
    fn div_rem_knuth(&self, divisor: &Nat) -> (Nat, Nat) {
        let n = divisor.limbs.len();
        let m = self.limbs.len() - n;
        let shift = divisor.limbs[n - 1].leading_zeros();

        // Normalized copies: u has one extra high limb.
        let v = (divisor << shift).limbs;
        let mut u = (self << shift).limbs;
        u.resize(self.limbs.len() + 1, 0);

        let mut q = vec![0u64; m + 1];
        let b = 1u128 << 64;
        for j in (0..=m).rev() {
            let top = ((u[j + n] as u128) << 64) | u[j + n - 1] as u128;
            let mut qhat = top / v[n - 1] as u128;
            let mut rhat = top % v[n - 1] as u128;
            while qhat >= b
                || qhat * v[n - 2] as u128 > ((rhat << 64) | u[j + n - 2] as u128)
            {
                qhat -= 1;
                rhat += v[n - 1] as u128;
                if rhat >= b {
                    break;
                }
            }
            // Multiply and subtract: u[j..j+n+1] -= qhat * v.
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * v[i] as u128 + carry;
                carry = p >> 64;
                let sub = (u[j + i] as i128) - ((p as u64) as i128) - borrow;
                u[j + i] = sub as u64;
                borrow = if sub < 0 { 1 } else { 0 };
            }
            let sub = (u[j + n] as i128) - (carry as i128) - borrow;
            u[j + n] = sub as u64;

            if sub < 0 {
                // qhat was one too large: add back.
                qhat -= 1;
                let mut carry2 = 0u128;
                for i in 0..n {
                    let s = u[j + i] as u128 + v[i] as u128 + carry2;
                    u[j + i] = s as u64;
                    carry2 = s >> 64;
                }
                u[j + n] = (u[j + n] as u128).wrapping_add(carry2) as u64;
            }
            q[j] = qhat as u64;
        }
        let rem = Nat::from_limbs(u[..n].to_vec()) >> shift;
        (Nat::from_limbs(q), rem)
    }

    /// Greatest common divisor (Euclid's algorithm).
    ///
    /// ```
    /// use sampcert_arith::Nat;
    /// assert_eq!(Nat::from(48u64).gcd(&Nat::from(36u64)), Nat::from(12u64));
    /// assert_eq!(Nat::from(5u64).gcd(&Nat::zero()), Nat::from(5u64));
    /// ```
    pub fn gcd(&self, other: &Nat) -> Nat {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let (_, r) = a.div_rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Raises to the power `exp` by repeated squaring.
    ///
    /// ```
    /// use sampcert_arith::Nat;
    /// assert_eq!(Nat::from(3u64).pow(5), Nat::from(243u64));
    /// assert_eq!(Nat::from(0u64).pow(0), Nat::one());
    /// ```
    pub fn pow(&self, mut exp: u32) -> Nat {
        let mut base = self.clone();
        let mut acc = Nat::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.mul_nat(&base);
            }
            exp >>= 1;
            if exp > 0 {
                base = base.mul_nat(&base);
            }
        }
        acc
    }

    /// Integer square root: the largest `r` with `r² ≤ self`.
    ///
    /// ```
    /// use sampcert_arith::Nat;
    /// assert_eq!(Nat::from(99u64).isqrt(), Nat::from(9u64));
    /// assert_eq!(Nat::from(100u64).isqrt(), Nat::from(10u64));
    /// ```
    pub fn isqrt(&self) -> Nat {
        if self.is_zero() {
            return Nat::zero();
        }
        // Newton's method with an initial guess from the bit length.
        let mut x = Nat::one() << ((self.bit_length() / 2 + 1) as u32);
        loop {
            // y = (x + self / x) / 2
            let (d, _) = self.div_rem(&x);
            let y = (&x + &d).div_rem(&Nat::from(2u64)).0;
            if y.cmp_nat(&x) != Ordering::Less {
                return x;
            }
            x = y;
        }
    }
}

impl Ord for Nat {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_nat(other)
    }
}

impl PartialOrd for Nat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

macro_rules! impl_from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Nat {
            fn from(v: $t) -> Self {
                let v = v as u128;
                Nat::from_limbs(vec![v as u64, (v >> 64) as u64])
            }
        }
    )*};
}
impl_from_unsigned!(u8, u16, u32, u64, u128, usize);

impl Add for &Nat {
    type Output = Nat;
    fn add(self, rhs: &Nat) -> Nat {
        self.add_nat(rhs)
    }
}

impl Add for Nat {
    type Output = Nat;
    fn add(self, rhs: Nat) -> Nat {
        self.add_nat(&rhs)
    }
}

impl AddAssign<&Nat> for Nat {
    fn add_assign(&mut self, rhs: &Nat) {
        *self = self.add_nat(rhs);
    }
}

impl Sub for &Nat {
    type Output = Nat;
    /// # Panics
    /// Panics on underflow; use [`Nat::checked_sub`] or
    /// [`Nat::saturating_sub`] for non-panicking variants.
    fn sub(self, rhs: &Nat) -> Nat {
        self.checked_sub(rhs).expect("Nat subtraction underflow")
    }
}

impl Sub for Nat {
    type Output = Nat;
    fn sub(self, rhs: Nat) -> Nat {
        &self - &rhs
    }
}

impl SubAssign<&Nat> for Nat {
    fn sub_assign(&mut self, rhs: &Nat) {
        *self = &*self - rhs;
    }
}

impl Mul for &Nat {
    type Output = Nat;
    fn mul(self, rhs: &Nat) -> Nat {
        self.mul_nat(rhs)
    }
}

impl Mul for Nat {
    type Output = Nat;
    fn mul(self, rhs: Nat) -> Nat {
        self.mul_nat(&rhs)
    }
}

impl MulAssign<&Nat> for Nat {
    fn mul_assign(&mut self, rhs: &Nat) {
        *self = self.mul_nat(rhs);
    }
}

impl Div for &Nat {
    type Output = Nat;
    fn div(self, rhs: &Nat) -> Nat {
        self.div_rem(rhs).0
    }
}

impl Div for Nat {
    type Output = Nat;
    fn div(self, rhs: Nat) -> Nat {
        self.div_rem(&rhs).0
    }
}

impl Rem for &Nat {
    type Output = Nat;
    fn rem(self, rhs: &Nat) -> Nat {
        self.div_rem(rhs).1
    }
}

impl Rem for Nat {
    type Output = Nat;
    fn rem(self, rhs: Nat) -> Nat {
        self.div_rem(&rhs).1
    }
}

impl Shl<u32> for &Nat {
    type Output = Nat;
    fn shl(self, bits: u32) -> Nat {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = (bits / LIMB_BITS) as usize;
        let bit_shift = bits % LIMB_BITS;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (LIMB_BITS - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        Nat::from_limbs(out)
    }
}

impl Shl<u32> for Nat {
    type Output = Nat;
    fn shl(self, bits: u32) -> Nat {
        &self << bits
    }
}

impl Shr<u32> for &Nat {
    type Output = Nat;
    fn shr(self, bits: u32) -> Nat {
        let limb_shift = (bits / LIMB_BITS) as usize;
        if limb_shift >= self.limbs.len() {
            return Nat::zero();
        }
        let bit_shift = bits % LIMB_BITS;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                out.push((src[i] >> bit_shift) | (hi << (LIMB_BITS - bit_shift)));
            }
        }
        Nat::from_limbs(out)
    }
}

impl Shr<u32> for Nat {
    type Output = Nat;
    fn shr(self, bits: u32) -> Nat {
        &self >> bits
    }
}

impl fmt::Display for Nat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "", "0");
        }
        // Peel off 19 decimal digits at a time (10^19 fits in a u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut n = self.clone();
        let mut chunks = Vec::new();
        while !n.is_zero() {
            let (q, r) = n.div_rem_limb(CHUNK);
            chunks.push(r);
            n = q;
        }
        let mut s = chunks.pop().map(|c| c.to_string()).unwrap_or_default();
        for c in chunks.iter().rev() {
            s.push_str(&format!("{c:019}"));
        }
        f.pad_integral(true, "", &s)
    }
}

impl fmt::Debug for Nat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Nat({self})")
    }
}

/// Error returned when parsing a [`Nat`] from a malformed string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNatError;

impl fmt::Display for ParseNatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid natural number literal")
    }
}

impl std::error::Error for ParseNatError {}

impl FromStr for Nat {
    type Err = ParseNatError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseNatError);
        }
        let mut n = Nat::zero();
        let ten19 = Nat::from(10_000_000_000_000_000_000u64);
        let bytes = s.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let take = (bytes.len() - i).min(19);
            let chunk: u64 = s[i..i + take].parse().map_err(|_| ParseNatError)?;
            let scale = if take == 19 {
                ten19.clone()
            } else {
                Nat::from(10u64.pow(take as u32))
            };
            n = &(&n * &scale) + &Nat::from(chunk);
            i += take;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u128) -> Nat {
        Nat::from(v)
    }

    #[test]
    fn zero_and_one() {
        assert!(Nat::zero().is_zero());
        assert!(Nat::one().is_one());
        assert_eq!(Nat::default(), Nat::zero());
        assert_eq!(Nat::zero().bit_length(), 0);
    }

    #[test]
    fn add_basic_and_carry() {
        assert_eq!(&n(2) + &n(3), n(5));
        assert_eq!(&n(u64::MAX as u128) + &n(1), n(1u128 << 64));
        let big = n(u128::MAX);
        let sum = &big + &big;
        assert_eq!(sum, &n(u128::MAX) * &n(2));
    }

    #[test]
    fn sub_and_underflow() {
        assert_eq!(&n(10) - &n(4), n(6));
        assert_eq!(n(4).checked_sub(&n(10)), None);
        assert_eq!(n(4).saturating_sub(&n(10)), Nat::zero());
        assert_eq!(&n(1u128 << 64) - &n(1), n(u64::MAX as u128));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_panics_on_underflow() {
        let _ = &n(1) - &n(2);
    }

    #[test]
    fn mul_cross_limb() {
        assert_eq!(&n(0) * &n(123), Nat::zero());
        let a = n(u64::MAX as u128);
        assert_eq!(&a * &a, n((u64::MAX as u128) * (u64::MAX as u128)));
        let big = Nat::from(10u64).pow(40);
        let sq = &big * &big;
        assert_eq!(sq, Nat::from(10u64).pow(80));
    }

    #[test]
    fn div_rem_small_divisor() {
        let (q, r) = n(1000).div_rem(&n(7));
        assert_eq!((q, r), (n(142), n(6)));
        let (q, r) = n(5).div_rem(&n(9));
        assert_eq!((q, r), (Nat::zero(), n(5)));
        let (q, r) = n(9).div_rem(&n(9));
        assert_eq!((q, r), (Nat::one(), Nat::zero()));
    }

    #[test]
    fn div_rem_multi_limb() {
        let a = Nat::from(10u64).pow(50);
        let b = Nat::from(10u64).pow(21); // multi-limb divisor
        let (q, r) = a.div_rem(&b);
        assert_eq!(q, Nat::from(10u64).pow(29));
        assert!(r.is_zero());

        let a2 = &a + &n(12345);
        let (q2, r2) = a2.div_rem(&b);
        assert_eq!(q2, Nat::from(10u64).pow(29));
        assert_eq!(r2, n(12345));
    }

    #[test]
    fn div_rem_knuth_addback_path() {
        // Exercise the rare add-back branch: divisor with top limb just above
        // B/2 and dividend engineered so qhat overestimates.
        let v = Nat::from_limbs(vec![0, 0x8000_0000_0000_0001]);
        let u = Nat::from_limbs(vec![u64::MAX, u64::MAX, 0x8000_0000_0000_0000]);
        let (q, r) = u.div_rem(&v);
        assert_eq!(&(&q * &v) + &r, u);
        assert!(r < v);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = n(1).div_rem(&Nat::zero());
    }

    #[test]
    fn shifts() {
        assert_eq!(&n(1) << 70u32, Nat::from(1u128 << 70));
        assert_eq!(&Nat::from(1u128 << 70) >> 70u32, Nat::one());
        assert_eq!(&n(0) << 10u32, Nat::zero());
        assert_eq!(&n(12345) >> 200u32, Nat::zero());
        let a = Nat::from(10u64).pow(30);
        assert_eq!(&(&a << 64u32) >> 64u32, a);
        assert_eq!(&(&a << 13u32) >> 13u32, a);
    }

    #[test]
    fn gcd_cases() {
        assert_eq!(n(48).gcd(&n(36)), n(12));
        assert_eq!(n(0).gcd(&n(7)), n(7));
        assert_eq!(n(7).gcd(&n(0)), n(7));
        assert_eq!(n(17).gcd(&n(13)), Nat::one());
        let a = Nat::from(2u64).pow(100);
        let b = Nat::from(2u64).pow(60) * Nat::from(3u64);
        assert_eq!(a.gcd(&b), Nat::from(2u64).pow(60));
    }

    #[test]
    fn pow_and_isqrt() {
        assert_eq!(n(2).pow(10), n(1024));
        assert_eq!(n(7).pow(0), Nat::one());
        for v in [0u128, 1, 2, 3, 4, 8, 9, 15, 16, 17, 1 << 40, (1 << 40) + 1] {
            let r = n(v).isqrt();
            let r2 = &r * &r;
            assert!(r2 <= n(v));
            let r1 = &r + &Nat::one();
            assert!(&r1 * &r1 > n(v));
        }
        let big = Nat::from(10u64).pow(60);
        assert_eq!(big.isqrt(), Nat::from(10u64).pow(30));
    }

    #[test]
    fn display_and_parse_roundtrip() {
        for s in ["0", "1", "42", "18446744073709551616", "123456789012345678901234567890"] {
            let v: Nat = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
        assert!("".parse::<Nat>().is_err());
        assert!("12a".parse::<Nat>().is_err());
        assert!("-3".parse::<Nat>().is_err());
    }

    #[test]
    fn ordering() {
        assert!(n(3) < n(4));
        assert!(Nat::from(1u128 << 64) > n(u64::MAX as u128));
        assert_eq!(n(5).cmp(&n(5)), Ordering::Equal);
    }

    #[test]
    fn conversions() {
        assert_eq!(n(12).to_u64(), Some(12));
        assert_eq!(Nat::from(1u128 << 64).to_u64(), None);
        assert_eq!(Nat::from(1u128 << 64).to_u128(), Some(1u128 << 64));
        assert_eq!(Nat::from(10u64).pow(40).to_u128(), None);
        assert!((Nat::from(10u64).pow(25).to_f64() - 1e25).abs() / 1e25 < 1e-9);
    }

    #[test]
    fn from_be_bytes() {
        assert_eq!(Nat::from_be_bytes(&[]), Nat::zero());
        assert_eq!(Nat::from_be_bytes(&[0x12, 0x34]), n(0x1234));
        let bytes = [0xffu8; 16];
        assert_eq!(Nat::from_be_bytes(&bytes), n(u128::MAX));
    }

    #[test]
    fn bits() {
        let v = n(0b1011);
        assert!(v.bit(0) && v.bit(1) && !v.bit(2) && v.bit(3) && !v.bit(4));
        assert!(!v.bit(1000));
        assert!(v.is_even() == false);
    }
}
