//! Arbitrary-precision signed integers.
//!
//! [`Int`] wraps a [`Nat`] magnitude with a sign, maintaining the invariant
//! that zero is never negative. It is the output type of the discrete noise
//! samplers (a Laplace or Gaussian sample lives in ℤ) and the coefficient
//! type of the exact rationals in [`crate::Rat`].

use crate::nat::Nat;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Rem, Sub};
use std::str::FromStr;

/// An arbitrary-precision signed integer.
///
/// # Examples
///
/// ```
/// use sampcert_arith::Int;
///
/// let a = Int::from(-7i64);
/// let b = Int::from(3i64);
/// assert_eq!(&a * &b, Int::from(-21i64));
/// assert_eq!(a.abs().to_string(), "7");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Int {
    /// Sign; `true` means strictly negative. Zero is always non-negative.
    negative: bool,
    /// Magnitude.
    mag: Nat,
}

impl Int {
    /// The integer zero.
    pub fn zero() -> Self {
        Int {
            negative: false,
            mag: Nat::zero(),
        }
    }

    /// The integer one.
    pub fn one() -> Self {
        Int {
            negative: false,
            mag: Nat::one(),
        }
    }

    /// Builds an integer from a sign and magnitude, normalizing zero.
    ///
    /// ```
    /// use sampcert_arith::{Int, Nat};
    /// assert_eq!(Int::from_sign_mag(true, Nat::zero()), Int::zero());
    /// assert_eq!(Int::from_sign_mag(true, Nat::from(3u64)), Int::from(-3i64));
    /// ```
    pub fn from_sign_mag(negative: bool, mag: Nat) -> Self {
        if mag.is_zero() {
            Int::zero()
        } else {
            Int { negative, mag }
        }
    }

    /// Builds a non-negative integer from a natural number.
    pub fn from_nat(mag: Nat) -> Self {
        Int {
            negative: false,
            mag,
        }
    }

    /// Returns `true` when this integer is zero.
    pub fn is_zero(&self) -> bool {
        self.mag.is_zero()
    }

    /// Returns `true` when this integer is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.negative
    }

    /// The magnitude `|self|` as a natural number.
    pub fn magnitude(&self) -> &Nat {
        &self.mag
    }

    /// The absolute value.
    pub fn abs(&self) -> Int {
        Int {
            negative: false,
            mag: self.mag.clone(),
        }
    }

    /// Sign as `-1`, `0` or `1`.
    ///
    /// ```
    /// use sampcert_arith::Int;
    /// assert_eq!(Int::from(-9i64).signum(), -1);
    /// assert_eq!(Int::zero().signum(), 0);
    /// ```
    pub fn signum(&self) -> i32 {
        if self.mag.is_zero() {
            0
        } else if self.negative {
            -1
        } else {
            1
        }
    }

    /// Converts to `i64` when the value fits.
    pub fn to_i64(&self) -> Option<i64> {
        let m = self.mag.to_u128()?;
        if self.negative {
            if m <= i64::MAX as u128 + 1 {
                Some((m as i128).wrapping_neg() as i64)
            } else {
                None
            }
        } else if m <= i64::MAX as u128 {
            Some(m as i64)
        } else {
            None
        }
    }

    /// Converts to `f64` (rounding; huge values saturate to infinities).
    pub fn to_f64(&self) -> f64 {
        let m = self.mag.to_f64();
        if self.negative {
            -m
        } else {
            m
        }
    }

    /// Euclidean division: quotient rounds toward negative infinity and the
    /// remainder is always in `[0, |divisor|)`. This matches Lean/Mathlib's
    /// `Int.ediv`/`Int.emod`, which the SampCert sources rely on (for example
    /// `X / den` in the Laplace sampling loop).
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    ///
    /// ```
    /// use sampcert_arith::Int;
    /// let (q, r) = Int::from(-7i64).div_rem_euclid(&Int::from(3i64));
    /// assert_eq!((q, r), (Int::from(-3i64), Int::from(2i64)));
    /// ```
    pub fn div_rem_euclid(&self, divisor: &Int) -> (Int, Int) {
        assert!(!divisor.is_zero(), "division by zero");
        let (q, r) = self.mag.div_rem(&divisor.mag);
        match (self.negative, divisor.negative) {
            (false, false) => (Int::from_nat(q), Int::from_nat(r)),
            (false, true) => (Int::from_sign_mag(true, q), Int::from_nat(r)),
            (true, neg_d) => {
                if r.is_zero() {
                    (Int::from_sign_mag(!neg_d, q), Int::zero())
                } else {
                    let q1 = &q + &Nat::one();
                    (
                        Int::from_sign_mag(!neg_d, q1),
                        Int::from_nat(&divisor.mag - &r),
                    )
                }
            }
        }
    }

    /// Multiplies by ten to the `k` (decimal shift), used by formatting.
    pub fn pow_mag(&self, exp: u32) -> Int {
        Int::from_sign_mag(self.negative && exp % 2 == 1, self.mag.pow(exp))
    }
}

impl From<&Nat> for Int {
    fn from(n: &Nat) -> Self {
        Int::from_nat(n.clone())
    }
}

impl From<Nat> for Int {
    fn from(n: Nat) -> Self {
        Int::from_nat(n)
    }
}

macro_rules! impl_from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Int {
            fn from(v: $t) -> Self {
                let neg = v < 0;
                let mag = (v as i128).unsigned_abs();
                Int::from_sign_mag(neg, Nat::from(mag))
            }
        }
    )*};
}
impl_from_signed!(i8, i16, i32, i64, i128, isize);

macro_rules! impl_from_unsigned_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Int {
            fn from(v: $t) -> Self {
                Int::from_nat(Nat::from(v))
            }
        }
    )*};
}
impl_from_unsigned_int!(u8, u16, u32, u64, u128, usize);

impl Neg for &Int {
    type Output = Int;
    fn neg(self) -> Int {
        Int::from_sign_mag(!self.negative, self.mag.clone())
    }
}

impl Neg for Int {
    type Output = Int;
    fn neg(self) -> Int {
        Int::from_sign_mag(!self.negative, self.mag)
    }
}

impl Add for &Int {
    type Output = Int;
    fn add(self, rhs: &Int) -> Int {
        if self.negative == rhs.negative {
            Int::from_sign_mag(self.negative, &self.mag + &rhs.mag)
        } else {
            match self.mag.cmp(&rhs.mag) {
                Ordering::Equal => Int::zero(),
                Ordering::Greater => Int::from_sign_mag(self.negative, &self.mag - &rhs.mag),
                Ordering::Less => Int::from_sign_mag(rhs.negative, &rhs.mag - &self.mag),
            }
        }
    }
}

impl Add for Int {
    type Output = Int;
    fn add(self, rhs: Int) -> Int {
        &self + &rhs
    }
}

impl AddAssign<&Int> for Int {
    fn add_assign(&mut self, rhs: &Int) {
        if self.negative == rhs.negative {
            // Same sign: magnitude addition happens in place (no
            // reallocation for the dominant single-limb case).
            self.mag += &rhs.mag;
        } else {
            *self = &*self + rhs;
        }
    }
}

impl Sub for &Int {
    type Output = Int;
    fn sub(self, rhs: &Int) -> Int {
        self + &(-rhs)
    }
}

impl Sub for Int {
    type Output = Int;
    fn sub(self, rhs: Int) -> Int {
        &self - &rhs
    }
}

impl Mul for &Int {
    type Output = Int;
    fn mul(self, rhs: &Int) -> Int {
        Int::from_sign_mag(self.negative != rhs.negative, &self.mag * &rhs.mag)
    }
}

impl Mul for Int {
    type Output = Int;
    fn mul(self, rhs: Int) -> Int {
        &self * &rhs
    }
}

impl Div for &Int {
    type Output = Int;
    /// Euclidean quotient; see [`Int::div_rem_euclid`].
    fn div(self, rhs: &Int) -> Int {
        self.div_rem_euclid(rhs).0
    }
}

impl Rem for &Int {
    type Output = Int;
    /// Euclidean remainder in `[0, |rhs|)`; see [`Int::div_rem_euclid`].
    fn rem(self, rhs: &Int) -> Int {
        self.div_rem_euclid(rhs).1
    }
}

impl Ord for Int {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.negative, other.negative) {
            (false, true) => Ordering::Greater,
            (true, false) => Ordering::Less,
            (false, false) => self.mag.cmp(&other.mag),
            (true, true) => other.mag.cmp(&self.mag),
        }
    }
}

impl PartialOrd for Int {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad_integral(!self.negative, "", &self.mag.to_string())
    }
}

impl fmt::Debug for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Int({self})")
    }
}

impl FromStr for Int {
    type Err = crate::nat::ParseNatError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(rest) = s.strip_prefix('-') {
            Ok(Int::from_sign_mag(true, rest.parse()?))
        } else {
            let rest = s.strip_prefix('+').unwrap_or(s);
            Ok(Int::from_nat(rest.parse()?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(v: i128) -> Int {
        Int::from(v)
    }

    #[test]
    fn signs_and_zero() {
        assert_eq!(Int::from_sign_mag(true, Nat::zero()), Int::zero());
        assert!(!Int::zero().is_negative());
        assert_eq!(i(-5).signum(), -1);
        assert_eq!(i(5).signum(), 1);
        assert_eq!((-&i(-5)), i(5));
        assert_eq!((-&Int::zero()), Int::zero());
    }

    #[test]
    fn add_mixed_signs() {
        assert_eq!(&i(5) + &i(-3), i(2));
        assert_eq!(&i(3) + &i(-5), i(-2));
        assert_eq!(&i(-3) + &i(-4), i(-7));
        assert_eq!(&i(4) + &i(-4), Int::zero());
    }

    #[test]
    fn sub_and_mul() {
        assert_eq!(&i(5) - &i(9), i(-4));
        assert_eq!(&i(-5) - &i(-9), i(4));
        assert_eq!(&i(-5) * &i(3), i(-15));
        assert_eq!(&i(-5) * &i(-3), i(15));
        assert_eq!(&i(0) * &i(-3), Int::zero());
    }

    #[test]
    fn euclidean_division_all_sign_combos() {
        // (a, b) -> q rounds to -inf of a/b in euclidean sense, 0 <= r < |b|.
        for (a, b) in [(7, 3), (-7, 3), (7, -3), (-7, -3), (6, 3), (-6, 3), (6, -2)] {
            let (q, r) = i(a).div_rem_euclid(&i(b));
            assert_eq!(&(&q * &i(b)) + &r, i(a), "a={a} b={b}");
            assert!(r >= Int::zero() && r < i(b).abs(), "a={a} b={b} r={r}");
        }
        let (q, r) = i(-7).div_rem_euclid(&i(3));
        assert_eq!((q, r), (i(-3), i(2)));
        let (q, r) = i(-7).div_rem_euclid(&i(-3));
        assert_eq!((q, r), (i(3), i(2)));
    }

    #[test]
    fn ordering() {
        assert!(i(-2) < i(1));
        assert!(i(-5) < i(-2));
        assert!(i(3) > i(2));
        assert!(Int::zero() > i(-1));
    }

    #[test]
    fn conversions() {
        assert_eq!(i(i64::MIN as i128).to_i64(), Some(i64::MIN));
        assert_eq!(i(i64::MAX as i128).to_i64(), Some(i64::MAX));
        assert_eq!(i(i64::MAX as i128 + 1).to_i64(), None);
        assert_eq!(i(i64::MIN as i128 - 1).to_i64(), None);
        assert_eq!(i(-42).to_f64(), -42.0);
    }

    #[test]
    fn parse_and_display() {
        for s in ["0", "-1", "42", "-123456789012345678901234567890"] {
            let v: Int = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
        assert_eq!("+7".parse::<Int>().unwrap(), i(7));
        assert!("--3".parse::<Int>().is_err());
        assert_eq!("-0".parse::<Int>().unwrap(), Int::zero());
    }
}
