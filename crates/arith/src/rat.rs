//! Arbitrary-precision rational numbers.
//!
//! [`Rat`] is a fraction of an [`Int`] numerator over a strictly positive
//! [`Nat`] denominator, always in lowest terms. Exact rationals are the value
//! space of the paper's probability mass functions in the `Mass` semantics'
//! exact mode, and the parameter space of every sampler (privacy parameters
//! are `γ₁/γ₂` pairs of positive naturals — never floating point).

use crate::{Int, Nat};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// An exact rational number in lowest terms with positive denominator.
///
/// # Examples
///
/// ```
/// use sampcert_arith::Rat;
///
/// let half = Rat::new(1.into(), 2u64.into());
/// let third = Rat::new(1.into(), 3u64.into());
/// assert_eq!((&half + &third).to_string(), "5/6");
/// assert!(half > third);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rat {
    /// Numerator, carrying the sign.
    num: Int,
    /// Denominator, always strictly positive and coprime with `|num|`.
    den: Nat,
}

impl Rat {
    /// The rational zero.
    pub fn zero() -> Self {
        Rat {
            num: Int::zero(),
            den: Nat::one(),
        }
    }

    /// The rational one.
    pub fn one() -> Self {
        Rat {
            num: Int::one(),
            den: Nat::one(),
        }
    }

    /// Creates a rational from a numerator and denominator, reducing to
    /// lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    ///
    /// ```
    /// use sampcert_arith::{Int, Nat, Rat};
    /// let r = Rat::new(Int::from(-4i64), Nat::from(6u64));
    /// assert_eq!(r.to_string(), "-2/3");
    /// ```
    pub fn new(num: Int, den: Nat) -> Self {
        assert!(!den.is_zero(), "zero denominator");
        if num.is_zero() {
            return Rat::zero();
        }
        let g = num.magnitude().gcd(&den);
        if g.is_one() {
            Rat { num, den }
        } else {
            Rat {
                num: Int::from_sign_mag(num.is_negative(), num.magnitude() / &g),
                den: &den / &g,
            }
        }
    }

    /// Internal constructor for numerator/denominator pairs already known
    /// to be coprime (skips the gcd).
    ///
    /// The arithmetic operators use this together with the classic
    /// denominator-gcd factorizations (Knuth, TAOCP 4.5.1), so `Rat`
    /// addition and multiplication never run a gcd over the full
    /// cross-products — only over the (much smaller) inputs.
    fn from_reduced(num: Int, den: Nat) -> Self {
        debug_assert!(!den.is_zero(), "zero denominator");
        debug_assert!(
            num.is_zero() && den.is_one() || num.magnitude().gcd(&den).is_one(),
            "from_reduced: {num}/{den} not in lowest terms"
        );
        Rat { num, den }
    }

    /// Creates a rational from two unsigned machine integers.
    ///
    /// Runs a word-sized gcd — no big-integer traffic at all — making this
    /// the cheapest way to build sampler parameters.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn from_ratio(num: u64, den: u64) -> Self {
        assert!(den != 0, "zero denominator");
        if num == 0 {
            return Rat::zero();
        }
        let g = crate::nat::gcd_u64(num, den);
        Rat::from_reduced(Int::from(num / g), Nat::from(den / g))
    }

    /// Creates an integer-valued rational.
    pub fn from_int(v: impl Into<Int>) -> Self {
        Rat {
            num: v.into(),
            den: Nat::one(),
        }
    }

    /// The numerator (sign-carrying, lowest terms).
    pub fn numer(&self) -> &Int {
        &self.num
    }

    /// The denominator (positive, lowest terms).
    pub fn denom(&self) -> &Nat {
        &self.den
    }

    /// Returns `true` when the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Returns `true` when the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// The absolute value.
    pub fn abs(&self) -> Rat {
        Rat {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// The multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(&self) -> Rat {
        assert!(!self.is_zero(), "reciprocal of zero");
        Rat {
            num: Int::from_sign_mag(self.num.is_negative(), self.den.clone()),
            den: self.num.magnitude().clone(),
        }
    }

    /// Floor: the greatest integer `≤ self`.
    ///
    /// ```
    /// use sampcert_arith::{Int, Nat, Rat};
    /// assert_eq!(Rat::new(Int::from(-7i64), Nat::from(2u64)).floor(), Int::from(-4i64));
    /// assert_eq!(Rat::new(Int::from(7i64), Nat::from(2u64)).floor(), Int::from(3i64));
    /// ```
    pub fn floor(&self) -> Int {
        self.num.div_rem_euclid(&Int::from_nat(self.den.clone())).0
    }

    /// Ceiling: the least integer `≥ self`.
    pub fn ceil(&self) -> Int {
        -&((-&self.num)
            .div_rem_euclid(&Int::from_nat(self.den.clone()))
            .0)
    }

    /// Raises to an integer power (negative powers invert).
    ///
    /// # Panics
    ///
    /// Panics when raising zero to a negative power.
    pub fn powi(&self, exp: i32) -> Rat {
        if exp >= 0 {
            Rat {
                num: Int::from_sign_mag(
                    self.num.is_negative() && exp % 2 == 1,
                    self.num.magnitude().pow(exp as u32),
                ),
                den: self.den.pow(exp as u32),
            }
        } else {
            self.recip().powi(-exp)
        }
    }

    /// Approximates as `f64` with one correctly-scaled division.
    ///
    /// The conversion is exact when numerator and denominator fit in the
    /// `f64` mantissa; otherwise accurate to a few ulps, which is sufficient
    /// for the statistical checks (exact comparisons use `Rat` directly).
    pub fn to_f64(&self) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        // Scale so both parts carry ~100 significant bits into the division.
        let nb = self.num.magnitude().bit_length() as i64;
        let db = self.den.bit_length() as i64;
        let shift_n = (nb - 100).max(0) as u32;
        let shift_d = (db - 100).max(0) as u32;
        let n = (self.num.magnitude() >> shift_n).to_f64();
        let d = (&self.den >> shift_d).to_f64();
        let v = n / d * 2f64.powi(shift_n as i32 - shift_d as i32);
        if self.num.is_negative() {
            -v
        } else {
            v
        }
    }

    /// Compares with another rational by cross-multiplication (exact).
    ///
    /// Signs are compared first so the (unsigned) cross-products are only
    /// formed when both sides share a sign — no sign-carrying clones.
    fn cmp_rat(&self, other: &Rat) -> Ordering {
        let (sa, sb) = (self.num.signum(), other.num.signum());
        if sa != sb {
            return sa.cmp(&sb);
        }
        if sa == 0 {
            return Ordering::Equal;
        }
        let lhs = self.num.magnitude() * &other.den;
        let rhs = other.num.magnitude() * &self.den;
        if sa > 0 {
            lhs.cmp(&rhs)
        } else {
            rhs.cmp(&lhs)
        }
    }
}

impl Default for Rat {
    fn default() -> Self {
        Rat::zero()
    }
}

impl From<u64> for Rat {
    fn from(v: u64) -> Self {
        Rat::from_int(v)
    }
}

impl From<i64> for Rat {
    fn from(v: i64) -> Self {
        Rat::from_int(v)
    }
}

impl From<Int> for Rat {
    fn from(v: Int) -> Self {
        Rat::from_int(v)
    }
}

impl From<Nat> for Rat {
    fn from(v: Nat) -> Self {
        Rat {
            num: Int::from_nat(v),
            den: Nat::one(),
        }
    }
}

impl Add for &Rat {
    type Output = Rat;
    /// Denominator-gcd addition: with `g = gcd(b, d)`,
    /// `a/b + c/d = t / (b·(d/g))` where `t = a·(d/g) + c·(b/g)` shares
    /// only factors of `g` with the denominator — so the final reduction
    /// is `gcd(t, g)`, never a gcd over the full cross-products.
    fn add(self, rhs: &Rat) -> Rat {
        if self.num.is_zero() {
            return rhs.clone();
        }
        if rhs.num.is_zero() {
            return self.clone();
        }
        let g = self.den.gcd(&rhs.den);
        if g.is_one() {
            // b ⊥ d: the sum a·d + c·b is coprime with b·d (any prime of b
            // would have to divide a·d, impossible as a ⊥ b and b ⊥ d).
            let num = &(&self.num * &Int::from_nat(rhs.den.clone()))
                + &(&rhs.num * &Int::from_nat(self.den.clone()));
            return Rat::from_reduced(num, &self.den * &rhs.den);
        }
        let d_g = &rhs.den / &g;
        let b_g = &self.den / &g;
        let t = &(&self.num * &Int::from_nat(d_g.clone())) + &(&rhs.num * &Int::from_nat(b_g));
        if t.is_zero() {
            return Rat::zero();
        }
        let g2 = t.magnitude().gcd(&g);
        if g2.is_one() {
            Rat::from_reduced(t, &self.den * &d_g)
        } else {
            Rat::from_reduced(
                Int::from_sign_mag(t.is_negative(), t.magnitude() / &g2),
                &(&self.den / &g2) * &d_g,
            )
        }
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, rhs: Rat) -> Rat {
        &self + &rhs
    }
}

impl AddAssign<&Rat> for Rat {
    fn add_assign(&mut self, rhs: &Rat) {
        *self = &*self + rhs;
    }
}

impl Sub for &Rat {
    type Output = Rat;
    fn sub(self, rhs: &Rat) -> Rat {
        self + &(-rhs)
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, rhs: Rat) -> Rat {
        &self - &rhs
    }
}

impl SubAssign<&Rat> for Rat {
    fn sub_assign(&mut self, rhs: &Rat) {
        *self = &*self - rhs;
    }
}

impl Mul for &Rat {
    type Output = Rat;
    /// Cross-gcd multiplication: `(a/g1)·(c/g2) / ((b/g2)·(d/g1))` with
    /// `g1 = gcd(|a|, d)`, `g2 = gcd(|c|, b)` is already in lowest terms,
    /// so the product needs no gcd over the (large) result.
    fn mul(self, rhs: &Rat) -> Rat {
        if self.num.is_zero() || rhs.num.is_zero() {
            return Rat::zero();
        }
        let g1 = self.num.magnitude().gcd(&rhs.den);
        let g2 = rhs.num.magnitude().gcd(&self.den);
        let a = if g1.is_one() {
            self.num.magnitude().clone()
        } else {
            self.num.magnitude() / &g1
        };
        let c = if g2.is_one() {
            rhs.num.magnitude().clone()
        } else {
            rhs.num.magnitude() / &g2
        };
        let b = if g2.is_one() {
            self.den.clone()
        } else {
            &self.den / &g2
        };
        let d = if g1.is_one() {
            rhs.den.clone()
        } else {
            &rhs.den / &g1
        };
        Rat::from_reduced(
            Int::from_sign_mag(self.num.is_negative() != rhs.num.is_negative(), &a * &c),
            &b * &d,
        )
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, rhs: Rat) -> Rat {
        &self * &rhs
    }
}

impl MulAssign<&Rat> for Rat {
    fn mul_assign(&mut self, rhs: &Rat) {
        *self = &*self * rhs;
    }
}

impl Div for &Rat {
    type Output = Rat;
    /// # Panics
    /// Panics when dividing by zero.
    fn div(self, rhs: &Rat) -> Rat {
        self * &rhs.recip()
    }
}

impl Div for Rat {
    type Output = Rat;
    fn div(self, rhs: Rat) -> Rat {
        &self / &rhs
    }
}

impl Neg for &Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -&self.num,
            den: self.den.clone(),
        }
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_rat(other)
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rat({self})")
    }
}

/// Error returned when parsing a [`Rat`] from a malformed string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRatError;

impl fmt::Display for ParseRatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid rational literal (expected `a` or `a/b`)")
    }
}

impl std::error::Error for ParseRatError {}

impl FromStr for Rat {
    type Err = ParseRatError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.split_once('/') {
            None => Ok(Rat::from_int(s.parse::<Int>().map_err(|_| ParseRatError)?)),
            Some((n, d)) => {
                let num: Int = n.parse().map_err(|_| ParseRatError)?;
                let den: Nat = d.parse().map_err(|_| ParseRatError)?;
                if den.is_zero() {
                    return Err(ParseRatError);
                }
                Ok(Rat::new(num, den))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: u64) -> Rat {
        Rat::new(Int::from(n), Nat::from(d))
    }

    #[test]
    fn reduction_and_sign() {
        assert_eq!(r(4, 6), r(2, 3));
        assert_eq!(r(-4, 6).to_string(), "-2/3");
        assert_eq!(r(0, 5), Rat::zero());
        assert_eq!(r(6, 3).to_string(), "2");
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(Int::one(), Nat::zero());
    }

    #[test]
    fn field_ops() {
        assert_eq!(&r(1, 2) + &r(1, 3), r(5, 6));
        assert_eq!(&r(1, 2) - &r(1, 3), r(1, 6));
        assert_eq!(&r(2, 3) * &r(3, 4), r(1, 2));
        assert_eq!(&r(1, 2) / &r(1, 4), r(2, 1));
        assert_eq!(-&r(1, 2), r(-1, 2));
        assert_eq!(r(-2, 5).recip(), r(-5, 2));
    }

    #[test]
    fn ordering_cross_mul() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(7, 7) == Rat::one());
        assert!(r(-1, 2) < Rat::zero());
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(r(7, 2).floor(), Int::from(3i64));
        assert_eq!(r(7, 2).ceil(), Int::from(4i64));
        assert_eq!(r(-7, 2).floor(), Int::from(-4i64));
        assert_eq!(r(-7, 2).ceil(), Int::from(-3i64));
        assert_eq!(r(6, 2).floor(), Int::from(3i64));
        assert_eq!(r(6, 2).ceil(), Int::from(3i64));
    }

    #[test]
    fn powers() {
        assert_eq!(r(2, 3).powi(3), r(8, 27));
        assert_eq!(r(2, 3).powi(-2), r(9, 4));
        assert_eq!(r(-2, 3).powi(2), r(4, 9));
        assert_eq!(r(-2, 3).powi(3), r(-8, 27));
        assert_eq!(r(5, 7).powi(0), Rat::one());
    }

    #[test]
    fn f64_conversion() {
        assert_eq!(r(1, 2).to_f64(), 0.5);
        assert_eq!(r(-3, 4).to_f64(), -0.75);
        let big = Rat::new(
            Int::from_nat(Nat::from(10u64).pow(40)),
            Nat::from(10u64).pow(39),
        );
        assert!((big.to_f64() - 10.0).abs() < 1e-9);
        // Ratio of two huge coprime numbers.
        let a = Nat::from(2u64).pow(200);
        let b = &Nat::from(3u64).pow(120) + &Nat::one();
        let q = Rat::new(Int::from_nat(a), b);
        let approx = q.to_f64();
        let expect = 2f64.powi(200) / 3f64.powi(120);
        assert!((approx - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn parse_and_display() {
        assert_eq!("3/4".parse::<Rat>().unwrap(), r(3, 4));
        assert_eq!("-6/8".parse::<Rat>().unwrap(), r(-3, 4));
        assert_eq!("5".parse::<Rat>().unwrap(), r(5, 1));
        assert!("1/0".parse::<Rat>().is_err());
        assert!("a/b".parse::<Rat>().is_err());
    }
}
