//! Dyadic rationals: exact arithmetic on a power-of-two denominator
//! lattice, with **shift-only** normalization.
//!
//! [`Dyadic`] represents `± m · 2^e` with an odd mantissa `m` (a [`Nat`])
//! and a signed exponent `e`. Every operation keeps the representation
//! canonical by shifting trailing zero bits out of the mantissa — there is
//! **no gcd anywhere** in this module's arithmetic, which is the point:
//! the privacy accountant's charge path (`add`, `mul`, `cmp`,
//! small-integer scaling) composes budgets exactly without ever paying the
//! rational reduction that dominates a [`Rat`]-based ledger. Tests pin
//! this with the debug-mode [`gcd_call_count`](crate::gcd_call_count)
//! counter.
//!
//! # Rounding contract
//!
//! Not every value is dyadic (`1/3` is not), and `f64` inputs below the
//! lattice floor [`Dyadic::MIN_EXP`] are quantized — so the constructors
//! come in *directed* pairs with a conservative-accounting orientation:
//!
//! - [`Dyadic::from_f64_ceil`] / [`Dyadic::from_rat_ceil`] round **up**:
//!   use them for *charges*, so the exact ledger never under-counts
//!   spending;
//! - [`Dyadic::from_f64_floor`] / [`Dyadic::from_rat_floor`] round
//!   **down**: use them for *budgets*, so the exact ledger never grants
//!   more than the stated allowance.
//!
//! Both directions are exact whenever the input is representable on the
//! lattice (for `f64`, whenever the value's least significant bit sits at
//! or above `2^MIN_EXP` — which covers every realistic privacy parameter);
//! the bracketing law `floor ≤ x ≤ ceil` holds always.
//!
//! # Example
//!
//! ```
//! use sampcert_arith::{Dyadic, Rat};
//!
//! let eighth = Dyadic::from_f64_ceil(0.125); // exactly 1·2^-3
//! let three_eighths = &eighth + &(&eighth + &eighth);
//! assert_eq!(three_eighths.to_rat(), Rat::from_ratio(3, 8));
//! assert_eq!(three_eighths.to_string(), "0.375");
//! ```

use crate::{Int, Nat, Rat};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// An exact dyadic rational `± mantissa · 2^exponent` with odd mantissa.
///
/// The canonical form (odd mantissa, and `+0 · 2^0` for zero) makes the
/// derived equality and hashing value equality. All arithmetic is exact
/// and gcd-free; see the module-level docs above for the rounding contract of
/// the lossy constructors.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Dyadic {
    /// Sign; `false` for zero.
    neg: bool,
    /// Odd mantissa (zero only for the value zero).
    mant: Nat,
    /// Power-of-two exponent (zero for the value zero).
    exp: i64,
}

impl Dyadic {
    /// Lattice floor for directed `f64` conversion: inputs whose least
    /// significant bit lies below `2^MIN_EXP` are quantized onto the
    /// `2^MIN_EXP` grid (up or down per the chosen direction).
    ///
    /// The floor bounds mantissa growth in long-running ledgers: the
    /// mantissa of any sum of converted charges spans at most
    /// `log₂(total) − MIN_EXP` bits (a few limbs for any realistic
    /// budget), so exact accounting stays word-cheap forever. At `2^-127`
    /// (≈ 5.9·10⁻³⁹) the quantization is far below any meaningful privacy
    /// resolution and conservative in direction by construction.
    pub const MIN_EXP: i64 = -127;

    /// The dyadic zero.
    pub fn zero() -> Self {
        Dyadic {
            neg: false,
            mant: Nat::zero(),
            exp: 0,
        }
    }

    /// The dyadic one.
    pub fn one() -> Self {
        Dyadic {
            neg: false,
            mant: Nat::one(),
            exp: 0,
        }
    }

    /// Canonicalizes `± mant · 2^exp` by shifting out trailing zeros.
    fn normalized(neg: bool, mant: Nat, exp: i64) -> Self {
        if mant.is_zero() {
            return Dyadic::zero();
        }
        let tz = mant.trailing_zeros();
        let shift = u32::try_from(tz).expect("dyadic mantissa beyond 2^32 bits");
        Dyadic {
            neg,
            mant: &mant >> shift,
            exp: exp + tz as i64,
        }
    }

    /// Creates `mant · 2^exp` from a signed integer mantissa.
    ///
    /// ```
    /// use sampcert_arith::{Dyadic, Int};
    /// assert_eq!(Dyadic::new(Int::from(-12i64), -2).to_string(), "-3");
    /// ```
    pub fn new(mant: Int, exp: i64) -> Self {
        Dyadic::normalized(mant.is_negative(), mant.magnitude().clone(), exp)
    }

    /// The odd mantissa (zero for the value zero).
    pub fn mantissa(&self) -> &Nat {
        &self.mant
    }

    /// The power-of-two exponent (zero for the value zero).
    pub fn exponent(&self) -> i64 {
        self.exp
    }

    /// Returns `true` when the value is zero.
    pub fn is_zero(&self) -> bool {
        self.mant.is_zero()
    }

    /// Returns `true` when the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.neg
    }

    /// Sign as `-1`, `0` or `1`.
    pub fn signum(&self) -> i32 {
        if self.mant.is_zero() {
            0
        } else if self.neg {
            -1
        } else {
            1
        }
    }

    /// The absolute value.
    pub fn abs(&self) -> Dyadic {
        Dyadic {
            neg: false,
            ..self.clone()
        }
    }

    /// Multiplies by a machine-word count — the vectorized ledger charge
    /// `n · γ`, exactly equal to folding `n` additions (and, like them,
    /// gcd-free).
    pub fn mul_u64(&self, n: u64) -> Dyadic {
        Dyadic::normalized(self.neg, self.mant.mul_u64(n), self.exp)
    }

    /// `max(self − other, 0)`: the exact "remaining budget" subtraction.
    pub fn saturating_sub(&self, other: &Dyadic) -> Dyadic {
        let d = self - other;
        if d.is_negative() {
            Dyadic::zero()
        } else {
            d
        }
    }

    /// Exact conversion to a rational (always possible; never lossy).
    ///
    /// Not part of the charge path: building the [`Rat`] runs its usual
    /// lowest-terms constructor.
    pub fn to_rat(&self) -> Rat {
        if self.exp >= 0 {
            let shift = u32::try_from(self.exp).expect("dyadic exponent beyond 2^32 bits");
            Rat::from_int(Int::from_sign_mag(self.neg, &self.mant << shift))
        } else {
            let shift = u32::try_from(-self.exp).expect("dyadic exponent beyond 2^32 bits");
            Rat::new(
                Int::from_sign_mag(self.neg, self.mant.clone()),
                Nat::one() << shift,
            )
        }
    }

    /// Exact conversion from a rational, when the rational is dyadic
    /// (its denominator is a power of two); `None` otherwise.
    ///
    /// ```
    /// use sampcert_arith::{Dyadic, Rat};
    /// assert!(Dyadic::try_from_rat(&Rat::from_ratio(3, 8)).is_some());
    /// assert!(Dyadic::try_from_rat(&Rat::from_ratio(1, 3)).is_none());
    /// ```
    pub fn try_from_rat(r: &Rat) -> Option<Dyadic> {
        let den = r.denom();
        let tz = den.trailing_zeros();
        let shift = u32::try_from(tz).expect("denominator beyond 2^32 bits");
        if !(den >> shift).is_one() {
            return None;
        }
        Some(Dyadic::normalized(
            r.is_negative(),
            r.numer().magnitude().clone(),
            -(tz as i64),
        ))
    }

    /// The greatest multiple of `2^-frac_bits` that is `≤ r` (round
    /// toward −∞) — the budget-direction rational conversion.
    pub fn from_rat_floor(r: &Rat, frac_bits: u32) -> Dyadic {
        let scaled = Int::from_sign_mag(r.is_negative(), r.numer().magnitude() << frac_bits);
        let (q, _) = scaled.div_rem_euclid(&Int::from_nat(r.denom().clone()));
        Dyadic::new(q, -(frac_bits as i64))
    }

    /// The least multiple of `2^-frac_bits` that is `≥ r` (round toward
    /// +∞) — the charge-direction rational conversion.
    pub fn from_rat_ceil(r: &Rat, frac_bits: u32) -> Dyadic {
        -Dyadic::from_rat_floor(&-r, frac_bits)
    }

    /// Splits a strictly positive finite `f64` into `(mantissa, exponent)`
    /// with `value = mantissa · 2^exponent` exactly.
    fn decompose_f64(x: f64) -> (u64, i64) {
        debug_assert!(x.is_finite() && x > 0.0);
        let bits = x.to_bits();
        let biased = ((bits >> 52) & 0x7ff) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        if biased == 0 {
            (frac, -1074) // subnormal
        } else {
            (frac | (1 << 52), biased - 1075)
        }
    }

    /// Quantizes a positive decomposed `f64` onto the `2^MIN_EXP` lattice,
    /// rounding the mantissa down (`ceil = false`) or up (`ceil = true`).
    fn quantize_positive(m: u64, e: i64, ceil: bool) -> Dyadic {
        if e >= Dyadic::MIN_EXP {
            return Dyadic::normalized(false, Nat::from(m), e);
        }
        let shift = (Dyadic::MIN_EXP - e) as u64;
        let (q, exact) = if shift >= 64 {
            (0u64, m == 0)
        } else {
            let q = m >> shift;
            (q, q << shift == m)
        };
        let q = if !exact && ceil { q + 1 } else { q };
        Dyadic::normalized(false, Nat::from(q), Dyadic::MIN_EXP)
    }

    /// The greatest lattice value `≤ x` (round toward −∞): the
    /// **budget-direction** conversion, so a converted budget never grants
    /// more than `x`. Exact (`floor = ceil = x`) whenever `x` is
    /// representable on the [`MIN_EXP`](Self::MIN_EXP) lattice.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN or infinite.
    pub fn from_f64_floor(x: f64) -> Dyadic {
        assert!(x.is_finite(), "dyadic conversion of non-finite {x}");
        if x == 0.0 {
            Dyadic::zero()
        } else if x < 0.0 {
            -Dyadic::from_f64_ceil(-x)
        } else {
            let (m, e) = Dyadic::decompose_f64(x);
            Dyadic::quantize_positive(m, e, false)
        }
    }

    /// The least lattice value `≥ x` (round toward +∞): the
    /// **charge-direction** conversion, so a converted charge never
    /// under-counts `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN or infinite.
    pub fn from_f64_ceil(x: f64) -> Dyadic {
        assert!(x.is_finite(), "dyadic conversion of non-finite {x}");
        if x == 0.0 {
            Dyadic::zero()
        } else if x < 0.0 {
            -Dyadic::from_f64_floor(-x)
        } else {
            let (m, e) = Dyadic::decompose_f64(x);
            Dyadic::quantize_positive(m, e, true)
        }
    }

    /// Approximates as `f64` (a few ulps for huge mantissas; exact when
    /// the mantissa fits the `f64` mantissa and the exponent is in range).
    pub fn to_f64(&self) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        // Pre-scale so the mantissa conversion keeps ~100 significant bits.
        let drop = (self.mant.bit_length() as i64 - 100).max(0) as u32;
        let m = (&self.mant >> drop).to_f64();
        let e = self.exp + drop as i64;
        let v = m * 2f64.powi(e.clamp(i32::MIN as i64, i32::MAX as i64) as i32);
        if self.neg {
            -v
        } else {
            v
        }
    }

    /// Serializes losslessly: one flags byte (bit 0 = sign), the exponent
    /// as 8 little-endian bytes, then the mantissa in minimal
    /// little-endian bytes ([`Nat::to_le_bytes`]).
    ///
    /// The encoding is **canonical** — exactly one byte string per value,
    /// decoded only by [`from_bytes`](Self::from_bytes) — which is what
    /// lets a write-ahead charge journal recover exact dyadic budgets
    /// byte-for-byte (and lets a checksum over the bytes stand in for a
    /// checksum over the value).
    ///
    /// ```
    /// use sampcert_arith::Dyadic;
    /// let x = Dyadic::from_f64_ceil(-2.75);
    /// assert_eq!(Dyadic::from_bytes(&x.to_bytes()), Some(x));
    /// assert_eq!(Dyadic::zero().to_bytes().len(), 9);
    /// ```
    pub fn to_bytes(&self) -> Vec<u8> {
        let mant = self.mant.to_le_bytes();
        let mut out = Vec::with_capacity(9 + mant.len());
        out.push(u8::from(self.neg));
        out.extend_from_slice(&self.exp.to_le_bytes());
        out.extend_from_slice(&mant);
        out
    }

    /// Decodes [`to_bytes`](Self::to_bytes), strictly: any byte string
    /// that is not the canonical encoding of some value — an unknown flag
    /// bit, a padded (non-minimal) mantissa, an even nonzero mantissa, a
    /// non-canonical zero — returns `None` rather than a nearby value, so
    /// a corrupted journal record can never silently decode.
    pub fn from_bytes(bytes: &[u8]) -> Option<Dyadic> {
        if bytes.len() < 9 || bytes[0] > 1 {
            return None;
        }
        let neg = bytes[0] == 1;
        let exp = i64::from_le_bytes(bytes[1..9].try_into().expect("8 exponent bytes"));
        let mant_bytes = &bytes[9..];
        // Canonical mantissa: minimal (no trailing zero byte) …
        if mant_bytes.last() == Some(&0) {
            return None;
        }
        let mant = Nat::from_le_bytes(mant_bytes);
        if mant.is_zero() {
            // … with zero spelled exactly one way: +0 · 2^0, no bytes.
            if neg || exp != 0 {
                return None;
            }
            return Some(Dyadic::zero());
        }
        // … and odd, as the normalized representation requires.
        if mant.is_even() {
            return None;
        }
        Some(Dyadic { neg, mant, exp })
    }

    /// Compares magnitudes (ignoring signs).
    fn cmp_mag(&self, other: &Dyadic) -> Ordering {
        // The top bit of `m·2^e` sits at `bit_length + e`; different
        // positions decide without any shifting.
        let ta = self.mant.bit_length() as i64 + self.exp;
        let tb = other.mant.bit_length() as i64 + other.exp;
        if ta != tb {
            return ta.cmp(&tb);
        }
        let e = self.exp.min(other.exp);
        let sa = u32::try_from(self.exp - e).expect("dyadic exponent gap beyond 2^32 bits");
        let sb = u32::try_from(other.exp - e).expect("dyadic exponent gap beyond 2^32 bits");
        (&self.mant << sa).cmp(&(&other.mant << sb))
    }
}

impl Default for Dyadic {
    fn default() -> Self {
        Dyadic::zero()
    }
}

impl From<u64> for Dyadic {
    fn from(v: u64) -> Self {
        Dyadic::normalized(false, Nat::from(v), 0)
    }
}

impl From<i64> for Dyadic {
    fn from(v: i64) -> Self {
        Dyadic::normalized(v < 0, Nat::from(v.unsigned_abs()), 0)
    }
}

impl Add for &Dyadic {
    type Output = Dyadic;
    /// Exact addition: align exponents by a left shift, add or subtract
    /// mantissas, shift trailing zeros back out. No gcd, ever.
    fn add(self, rhs: &Dyadic) -> Dyadic {
        if self.is_zero() {
            return rhs.clone();
        }
        if rhs.is_zero() {
            return self.clone();
        }
        let e = self.exp.min(rhs.exp);
        let sa = u32::try_from(self.exp - e).expect("dyadic exponent gap beyond 2^32 bits");
        let sb = u32::try_from(rhs.exp - e).expect("dyadic exponent gap beyond 2^32 bits");
        let ma = &self.mant << sa;
        let mb = &rhs.mant << sb;
        if self.neg == rhs.neg {
            return Dyadic::normalized(self.neg, &ma + &mb, e);
        }
        match ma.cmp(&mb) {
            Ordering::Equal => Dyadic::zero(),
            Ordering::Greater => Dyadic::normalized(self.neg, &ma - &mb, e),
            Ordering::Less => Dyadic::normalized(rhs.neg, &mb - &ma, e),
        }
    }
}

impl Add for Dyadic {
    type Output = Dyadic;
    fn add(self, rhs: Dyadic) -> Dyadic {
        &self + &rhs
    }
}

impl AddAssign<&Dyadic> for Dyadic {
    fn add_assign(&mut self, rhs: &Dyadic) {
        *self = &*self + rhs;
    }
}

impl Sub for &Dyadic {
    type Output = Dyadic;
    fn sub(self, rhs: &Dyadic) -> Dyadic {
        self + &(-rhs)
    }
}

impl Sub for Dyadic {
    type Output = Dyadic;
    fn sub(self, rhs: Dyadic) -> Dyadic {
        &self - &rhs
    }
}

impl SubAssign<&Dyadic> for Dyadic {
    fn sub_assign(&mut self, rhs: &Dyadic) {
        *self = &*self - rhs;
    }
}

impl Mul for &Dyadic {
    type Output = Dyadic;
    /// Exact multiplication; odd × odd is odd, so the product is already
    /// canonical with no normalization shift at all.
    fn mul(self, rhs: &Dyadic) -> Dyadic {
        if self.is_zero() || rhs.is_zero() {
            return Dyadic::zero();
        }
        let mant = &self.mant * &rhs.mant;
        debug_assert!(!mant.is_even(), "odd×odd must be odd");
        Dyadic {
            neg: self.neg != rhs.neg,
            mant,
            exp: self.exp + rhs.exp,
        }
    }
}

impl Mul for Dyadic {
    type Output = Dyadic;
    fn mul(self, rhs: Dyadic) -> Dyadic {
        &self * &rhs
    }
}

impl Neg for &Dyadic {
    type Output = Dyadic;
    fn neg(self) -> Dyadic {
        if self.is_zero() {
            return Dyadic::zero();
        }
        Dyadic {
            neg: !self.neg,
            ..self.clone()
        }
    }
}

impl Neg for Dyadic {
    type Output = Dyadic;
    fn neg(self) -> Dyadic {
        -&self
    }
}

impl Ord for Dyadic {
    fn cmp(&self, other: &Self) -> Ordering {
        let (sa, sb) = (self.signum(), other.signum());
        if sa != sb {
            return sa.cmp(&sb);
        }
        match sa {
            0 => Ordering::Equal,
            s if s > 0 => self.cmp_mag(other),
            _ => other.cmp_mag(self),
        }
    }
}

impl PartialOrd for Dyadic {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Dyadic {
    /// Exact finite decimal: every dyadic `m·2^-k` equals
    /// `m·5^k / 10^k`, so the expansion terminates — budget-exceeded
    /// errors can report the exact requested/remaining values with no
    /// rounding at all.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        let sign = if self.neg { "-" } else { "" };
        if self.exp >= 0 {
            let shift = u32::try_from(self.exp).expect("dyadic exponent beyond 2^32 bits");
            return write!(f, "{sign}{}", &self.mant << shift);
        }
        let k = u32::try_from(-self.exp).expect("dyadic exponent beyond 2^32 bits");
        let digits = (&self.mant * &Nat::from(5u64).pow(k)).to_string();
        let k = k as usize;
        if digits.len() > k {
            let (int, frac) = digits.split_at(digits.len() - k);
            write!(f, "{sign}{int}.{frac}")
        } else {
            write!(f, "{sign}0.{}{digits}", "0".repeat(k - digits.len()))
        }
    }
}

impl fmt::Debug for Dyadic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("Dyadic(0)");
        }
        let sign = if self.neg { "-" } else { "" };
        write!(f, "Dyadic({sign}{}*2^{})", self.mant, self.exp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(m: i64, e: i64) -> Dyadic {
        Dyadic::new(Int::from(m), e)
    }

    #[test]
    fn canonical_form() {
        let x = d(24, -3); // 24/8 = 3
        assert_eq!(x.mantissa(), &Nat::from(3u64));
        assert_eq!(x.exponent(), 0);
        assert_eq!(d(0, 17), Dyadic::zero());
        assert_eq!(Dyadic::zero().exponent(), 0);
        assert!(!Dyadic::zero().is_negative());
    }

    #[test]
    fn field_ops_exact() {
        let half = d(1, -1);
        let three_quarters = d(3, -2);
        assert_eq!(&half + &three_quarters, d(5, -2));
        assert_eq!(&half - &three_quarters, d(-1, -2));
        assert_eq!(&half * &three_quarters, d(3, -3));
        assert_eq!(-&half, d(-1, -1));
        assert_eq!(&half + &d(-1, -1), Dyadic::zero());
        assert_eq!(half.mul_u64(6), d(3, 0));
    }

    #[test]
    fn ordering() {
        assert!(d(1, -2) < d(1, -1));
        assert!(d(-1, -1) < d(-1, -2));
        assert!(d(-5, 3) < Dyadic::zero());
        assert!(d(3, 0) > d(5, -1));
        assert_eq!(d(4, -2).cmp(&d(1, 0)), Ordering::Equal);
        // Equal top-bit positions, different values: forces the aligned
        // mantissa comparison.
        assert!(d(5, -2) > d(9, -3));
    }

    #[test]
    fn rat_roundtrip_exact() {
        for (m, e) in [(3i64, -5i64), (-7, 2), (1, 0), (255, -8), (-1, -60)] {
            let x = d(m, e);
            let back = Dyadic::try_from_rat(&x.to_rat()).expect("dyadic rat");
            assert_eq!(back, x, "{m}*2^{e}");
        }
        assert!(Dyadic::try_from_rat(&Rat::from_ratio(1, 3)).is_none());
        assert!(Dyadic::try_from_rat(&Rat::from_ratio(5, 6)).is_none());
        assert_eq!(
            Dyadic::try_from_rat(&Rat::from_ratio(0, 7)),
            Some(Dyadic::zero())
        );
    }

    #[test]
    fn rat_directed_rounding_brackets() {
        let third = Rat::from_ratio(1, 3);
        let lo = Dyadic::from_rat_floor(&third, 8);
        let hi = Dyadic::from_rat_ceil(&third, 8);
        assert!(lo.to_rat() < third && third < hi.to_rat());
        assert_eq!(&hi - &lo, d(1, -8));
        // Negative operand: floor moves toward −∞.
        let neg = -&third;
        let nlo = Dyadic::from_rat_floor(&neg, 8);
        let nhi = Dyadic::from_rat_ceil(&neg, 8);
        assert!(nlo.to_rat() < neg && neg < nhi.to_rat());
        // Representable values convert exactly in both directions.
        let r = Rat::from_ratio(5, 16);
        assert_eq!(Dyadic::from_rat_floor(&r, 8), Dyadic::from_rat_ceil(&r, 8));
        assert_eq!(Dyadic::from_rat_floor(&r, 8).to_rat(), r);
    }

    #[test]
    fn f64_conversion_exact_on_lattice() {
        for x in [0.0, 0.5, -0.75, 1.0, 123456.0, 0.1, 1e-12, 1e30] {
            let lo = Dyadic::from_f64_floor(x);
            let hi = Dyadic::from_f64_ceil(x);
            assert!(lo.to_f64() <= x && x <= hi.to_f64(), "{x}");
            // Every f64 with lsb ≥ 2^MIN_EXP is exactly representable.
            assert_eq!(lo, hi, "{x}");
        }
        assert_eq!(Dyadic::from_f64_ceil(0.125), d(1, -3));
        assert_eq!(Dyadic::from_f64_floor(-2.5), d(-5, -1));
    }

    #[test]
    fn f64_conversion_quantizes_below_lattice() {
        let tiny = 2f64.powi(-300);
        let lo = Dyadic::from_f64_floor(tiny);
        let hi = Dyadic::from_f64_ceil(tiny);
        assert_eq!(lo, Dyadic::zero());
        assert_eq!(hi, d(1, Dyadic::MIN_EXP));
        assert!(lo.to_f64() <= tiny && tiny <= hi.to_f64());
        // Negative mirror: directions flip.
        assert_eq!(Dyadic::from_f64_ceil(-tiny), Dyadic::zero());
        assert_eq!(Dyadic::from_f64_floor(-tiny), d(-1, Dyadic::MIN_EXP));
        // Partially representable: lsb below the lattice, top bit above it
        // (note 1.0 + 2^-140 would just round to 1.0 inside the f64).
        let x = 2f64.powi(-100) + 2f64.powi(-140);
        let lo = Dyadic::from_f64_floor(x);
        let hi = Dyadic::from_f64_ceil(x);
        assert_eq!(lo, d(1, -100));
        assert_eq!(&hi - &lo, d(1, Dyadic::MIN_EXP));
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan() {
        let _ = Dyadic::from_f64_ceil(f64::NAN);
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(d(3, -1).saturating_sub(&d(1, -1)), d(1, 0));
        assert_eq!(d(1, -1).saturating_sub(&d(3, -1)), Dyadic::zero());
    }

    #[test]
    fn display_is_exact_decimal() {
        assert_eq!(d(3, -2).to_string(), "0.75");
        assert_eq!(d(-3, -2).to_string(), "-0.75");
        assert_eq!(d(5, 2).to_string(), "20");
        assert_eq!(d(1, -7).to_string(), "0.0078125");
        assert_eq!(Dyadic::zero().to_string(), "0");
        assert_eq!(format!("{:?}", d(-3, -2)), "Dyadic(-3*2^-2)");
    }

    #[test]
    fn byte_roundtrip_is_exact() {
        for (m, e) in [(3i64, -5i64), (-7, 2), (1, 0), (255, -8), (-1, -60)] {
            let x = d(m, e);
            assert_eq!(Dyadic::from_bytes(&x.to_bytes()), Some(x), "{m}*2^{e}");
        }
        assert_eq!(
            Dyadic::from_bytes(&Dyadic::zero().to_bytes()),
            Some(Dyadic::zero())
        );
    }

    #[test]
    fn non_canonical_bytes_are_rejected() {
        // Too short, unknown flags.
        assert_eq!(Dyadic::from_bytes(&[]), None);
        assert_eq!(Dyadic::from_bytes(&[0; 8]), None);
        assert_eq!(Dyadic::from_bytes(&[2; 9]), None);
        // Padded mantissa (trailing zero byte).
        let mut padded = d(3, -2).to_bytes();
        padded.push(0);
        assert_eq!(Dyadic::from_bytes(&padded), None);
        // Even nonzero mantissa is not normalized.
        let mut even = d(3, -2).to_bytes();
        even[9] = 4;
        assert_eq!(Dyadic::from_bytes(&even), None);
        // Zero spelled any way but +0·2^0.
        let mut neg_zero = Dyadic::zero().to_bytes();
        neg_zero[0] = 1;
        assert_eq!(Dyadic::from_bytes(&neg_zero), None);
        let mut shifted_zero = Dyadic::zero().to_bytes();
        shifted_zero[1] = 3;
        assert_eq!(Dyadic::from_bytes(&shifted_zero), None);
    }

    #[test]
    fn display_roundtrips_through_rat() {
        // The printed decimal re-parses (as a fraction over 10^k) to the
        // same exact value.
        for (m, e) in [(123i64, -9i64), (-5, -11), (7, 4)] {
            let x = d(m, e);
            let s = x.to_string();
            let parsed: Rat = match s.split_once('.') {
                None => s.parse().expect("integer"),
                Some((int, frac)) => {
                    let scale = Nat::from(10u64).pow(frac.len() as u32);
                    let whole: Rat = format!("{int}{frac}").parse().expect("digits");
                    whole * Rat::new(Int::one(), scale)
                }
            };
            assert_eq!(parsed, x.to_rat(), "{s}");
        }
    }
}
