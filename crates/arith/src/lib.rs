//! # sampcert-arith
//!
//! Arbitrary-precision exact arithmetic: [`Nat`] (naturals), [`Int`]
//! (integers), [`Rat`] (rationals in lowest terms) and [`Dyadic`]
//! (rationals on the power-of-two lattice, normalized by shifts alone —
//! the gcd-free substrate of the exact privacy ledger).
//!
//! This crate is the numeric substrate of the SampCert reproduction. The
//! paper's discrete Laplace and Gaussian samplers (Canonne, Kamath & Steinke,
//! NeurIPS 2020) are *exact*: every Bernoulli trial compares uniform draws
//! against rationals whose numerators and denominators grow with the noise
//! scale, so fixed-width machine integers cannot implement them faithfully
//! for all parameters. Lean obtains this arithmetic from `Nat`/`Int`/`Rat`
//! in its prelude and Mathlib; here it is built from scratch on `u64` limbs
//! with Knuth's Algorithm D for division.
//!
//! Floating point appears nowhere in this crate — a deliberate echo of the
//! paper's central design constraint (Mironov's attack, Section 3 of the
//! paper).
//!
//! ## Performance model
//!
//! The sampler hot loops (`bernoulli_exp_neg`, `uniform_below`, the
//! geometric/Laplace trials) overwhelmingly operate on values below 2⁶⁴,
//! so [`Nat`] uses a small-value-inlined representation: a single inline
//! limb for anything word-sized (zero heap allocation for construction,
//! `Clone`, add/sub/mul/cmp/div/gcd whenever the result also fits) and a
//! limb vector beyond that, with Karatsuba multiplication above a measured
//! ~64-limb threshold. [`Rat`] keeps the lowest-terms invariant using
//! word-sized gcds for machine-integer constructors and the classic
//! denominator/cross gcd factorizations for `+`/`×`, so reduction never
//! runs over full cross-products. See the [`nat`-module docs](Nat) for the
//! exact representation invariant and complexity table, and
//! `BENCH_arith.json` at the repository root for the tracked before/after
//! measurements.
//!
//! ## Example
//!
//! ```
//! use sampcert_arith::{Int, Nat, Rat};
//!
//! // (|Y|·t·den − num)² / (2·num·t²·den): the Bernoulli parameter from the
//! // discrete Gaussian sampling loop, exact at any scale.
//! let (y, t, num, den) = (
//!     Int::from(12_345i64),
//!     Nat::from(1_000_001u64),
//!     Nat::from(10u64).pow(12),
//!     Nat::from(1u64),
//! );
//! let lhs = &(&y.abs() * &Int::from_nat(&t * &den)) - &Int::from_nat(num.clone());
//! let p = Rat::new(
//!     &lhs * &lhs,
//!     &(&Nat::from(2u64) * &num) * &(&t.pow(2) * &den),
//! );
//! assert!(p > Rat::zero());
//! ```

mod dyadic;
mod int;
mod nat;
mod rat;

pub use dyadic::Dyadic;
pub use int::Int;
pub use nat::{gcd_call_count, Nat, ParseNatError};
pub use rat::{ParseRatError, Rat};
