//! Property-based tests for the bignum substrate.
//!
//! Every algebraic law the samplers rely on is checked against `u128`
//! reference semantics on random inputs, plus laws stated directly on
//! multi-limb values (ring axioms, Euclidean division, ordered-field laws
//! for rationals).

use proptest::prelude::*;
use sampcert_arith::{Int, Nat, Rat};

fn nat_of(v: u128) -> Nat {
    Nat::from(v)
}

/// Strategy for naturals spanning one to four limbs.
fn arb_nat() -> impl Strategy<Value = Nat> {
    prop::collection::vec(any::<u64>(), 0..4).prop_map(|ls| {
        ls.iter()
            .fold(Nat::zero(), |acc, &l| &(&acc << 64u32) + &Nat::from(l))
    })
}

fn arb_int() -> impl Strategy<Value = Int> {
    (arb_nat(), any::<bool>()).prop_map(|(m, neg)| Int::from_sign_mag(neg, m))
}

fn arb_rat() -> impl Strategy<Value = Rat> {
    (arb_int(), arb_nat()).prop_map(|(n, d)| {
        let d = if d.is_zero() { Nat::one() } else { d };
        Rat::new(n, d)
    })
}

proptest! {
    #[test]
    fn add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(&nat_of(a as u128) + &nat_of(b as u128), nat_of(a as u128 + b as u128));
    }

    #[test]
    fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(&nat_of(a as u128) * &nat_of(b as u128), nat_of(a as u128 * b as u128));
    }

    #[test]
    fn div_rem_matches_u128(a in any::<u128>(), b in 1u64..) {
        let (q, r) = nat_of(a).div_rem(&nat_of(b as u128));
        prop_assert_eq!(q, nat_of(a / b as u128));
        prop_assert_eq!(r, nat_of(a % b as u128));
    }

    #[test]
    fn add_commutes(a in arb_nat(), b in arb_nat()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_associates(a in arb_nat(), b in arb_nat(), c in arb_nat()) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn mul_distributes(a in arb_nat(), b in arb_nat(), c in arb_nat()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn sub_inverts_add(a in arb_nat(), b in arb_nat()) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn div_rem_reconstructs(a in arb_nat(), b in arb_nat()) {
        let b = if b.is_zero() { Nat::one() } else { b };
        let (q, r) = a.div_rem(&b);
        prop_assert_eq!(&(&q * &b) + &r, a);
        prop_assert!(r < b);
    }

    #[test]
    fn shifts_roundtrip(a in arb_nat(), s in 0u32..200) {
        prop_assert_eq!(&(&a << s) >> s, a);
    }

    #[test]
    fn shift_is_pow2_mul(a in arb_nat(), s in 0u32..100) {
        prop_assert_eq!(&a << s, &a * &Nat::from(2u64).pow(s));
    }

    #[test]
    fn gcd_divides_both(a in arb_nat(), b in arb_nat()) {
        let g = a.gcd(&b);
        if !g.is_zero() {
            prop_assert!((&a % &g).is_zero());
            prop_assert!((&b % &g).is_zero());
        } else {
            prop_assert!(a.is_zero() && b.is_zero());
        }
    }

    #[test]
    fn isqrt_bounds(a in arb_nat()) {
        let r = a.isqrt();
        prop_assert!(&r * &r <= a);
        let r1 = &r + &Nat::one();
        prop_assert!(&r1 * &r1 > a);
    }

    #[test]
    fn nat_display_parse_roundtrip(a in arb_nat()) {
        let s = a.to_string();
        prop_assert_eq!(s.parse::<Nat>().unwrap(), a);
    }

    #[test]
    fn int_ring_laws(a in arb_int(), b in arb_int(), c in arb_int()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        prop_assert_eq!(&a + &(-&a), Int::zero());
    }

    #[test]
    fn int_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let (ia, ib) = (Int::from(a), Int::from(b));
        prop_assert_eq!(&ia + &ib, Int::from(a as i128 + b as i128));
        prop_assert_eq!(&ia * &ib, Int::from(a as i128 * b as i128));
        prop_assert_eq!(&ia - &ib, Int::from(a as i128 - b as i128));
        prop_assert_eq!(ia.cmp(&ib), a.cmp(&b));
    }

    #[test]
    fn int_euclid_division(a in arb_int(), b in arb_int()) {
        let b = if b.is_zero() { Int::one() } else { b };
        let (q, r) = a.div_rem_euclid(&b);
        prop_assert_eq!(&(&q * &b) + &r, a);
        prop_assert!(r >= Int::zero());
        prop_assert!(r < b.abs());
    }

    #[test]
    fn int_euclid_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        prop_assume!(b != 0);
        let (q, r) = Int::from(a).div_rem_euclid(&Int::from(b));
        prop_assert_eq!(q, Int::from((a as i128).div_euclid(b as i128)));
        prop_assert_eq!(r, Int::from((a as i128).rem_euclid(b as i128)));
    }

    #[test]
    fn rat_field_laws(a in arb_rat(), b in arb_rat(), c in arb_rat()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        prop_assert_eq!(&a - &a, Rat::zero());
        if !a.is_zero() {
            prop_assert_eq!(&a * &a.recip(), Rat::one());
        }
    }

    #[test]
    fn rat_is_reduced(a in arb_rat()) {
        prop_assert!(a.numer().magnitude().gcd(a.denom()).is_one()
            || a.is_zero() && a.denom().is_one());
    }

    #[test]
    fn rat_order_translation_invariant(a in arb_rat(), b in arb_rat(), c in arb_rat()) {
        if a < b {
            prop_assert!(&a + &c < &b + &c);
        }
    }

    #[test]
    fn rat_floor_ceil(a in arb_rat()) {
        let f = a.floor();
        let c = a.ceil();
        prop_assert!(Rat::from_int(f.clone()) <= a);
        prop_assert!(Rat::from_int(c.clone()) >= a);
        let diff = &c - &f;
        prop_assert!(diff == Int::zero() || diff == Int::one());
    }

    #[test]
    fn rat_to_f64_close(n in any::<i32>(), d in 1u32..) {
        let r = Rat::new(Int::from(n as i64), Nat::from(d as u64));
        let expect = n as f64 / d as f64;
        prop_assert!((r.to_f64() - expect).abs() <= expect.abs() * 1e-12 + 1e-300);
    }

    #[test]
    fn rat_display_parse_roundtrip(a in arb_rat()) {
        let s = a.to_string();
        prop_assert_eq!(s.parse::<Rat>().unwrap(), a);
    }
}

/// Strategy for naturals wide enough to straddle the Karatsuba threshold
/// (a few limbs up to ~160 limbs).
fn arb_nat_wide() -> impl Strategy<Value = Nat> {
    prop::collection::vec(any::<u64>(), 0..160).prop_map(|ls| {
        ls.iter()
            .fold(Nat::zero(), |acc, &l| &(&acc << 64u32) + &Nat::from(l))
    })
}

/// Strategy for values hugging the inline/heap boundary: `2^(64k) ± δ` for
/// small `δ`, where carries, borrows and re-normalization all trigger.
fn arb_nat_boundary() -> impl Strategy<Value = Nat> {
    (0u32..3, 0u64..3, any::<bool>()).prop_map(|(k, delta, below)| {
        let base = Nat::one() << (64 * (k + 1));
        if below {
            base.saturating_sub(&Nat::from(delta))
        } else {
            &base + &Nat::from(delta)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Karatsuba and schoolbook multiplication agree on random operands
    /// spanning the threshold in both directions (including the highly
    /// asymmetric splits where one recursion half is empty).
    #[test]
    fn karatsuba_matches_schoolbook_differential(a in arb_nat_wide(), b in arb_nat_wide()) {
        prop_assert_eq!(&a * &b, a.mul_schoolbook_for_tests(&b));
    }

    /// The inline (Small) and heap (Big) code paths compute the same
    /// function: lifting both operands by a limb moves the identical
    /// operation onto the multi-limb path, and shifting back must agree.
    #[test]
    fn inline_vs_heap_add_sub_mul_cmp(a in any::<u64>(), b in any::<u64>()) {
        let (na, nb) = (Nat::from(a), Nat::from(b));
        let (ha, hb) = (&na << 64u32, &nb << 64u32);
        prop_assert_eq!(&(&ha + &hb) >> 64u32, &na + &nb);
        prop_assert_eq!(&(&ha * &hb) >> 128u32, &na * &nb);
        prop_assert_eq!(ha.cmp(&hb), na.cmp(&nb));
        if a >= b {
            prop_assert_eq!(&(&ha - &hb) >> 64u32, &na - &nb);
        }
        // Division through the multi-limb path against u128 reference.
        let (q, r) = ha.div_rem(&(&nb + &Nat::one()));
        let lifted = (a as u128) << 64;
        prop_assert_eq!(q, Nat::from(lifted / (b as u128 + 1)));
        prop_assert_eq!(r, Nat::from(lifted % (b as u128 + 1)));
    }

    /// Carry/borrow/normalization edges: exact `u128` reference semantics
    /// at the limb boundary.
    #[test]
    fn boundary_ops_match_u128(a in arb_nat_boundary(), b in arb_nat_boundary()) {
        if let (Some(x), Some(y)) = (a.to_u128(), b.to_u128()) {
            if let Some(s) = x.checked_add(y) {
                prop_assert_eq!(&a + &b, Nat::from(s));
            }
            if x >= y {
                let d = &a - &b;
                prop_assert_eq!(&d, &Nat::from(x - y));
                // Results that shrink below one limb must re-inline.
                prop_assert_eq!(d.is_inline(), x - y <= u64::MAX as u128);
            }
            if let Some(p) = x.checked_mul(y) {
                prop_assert_eq!(&a * &b, Nat::from(p));
            }
            prop_assert_eq!(a.cmp(&b), x.cmp(&y));
        }
    }

    /// In-place assignment operators agree with the by-value operators on
    /// operands straddling the boundary.
    #[test]
    fn assign_ops_match_operators(a in arb_nat_boundary(), b in arb_nat_boundary()) {
        let mut s = a.clone();
        s += &b;
        prop_assert_eq!(s, &a + &b);
        if a >= b {
            let mut d = a.clone();
            d -= &b;
            prop_assert_eq!(d, &a - &b);
        }
        let mut m = a.clone();
        m *= &b;
        prop_assert_eq!(m, &a * &b);
    }

    /// Scalar helpers agree with their general-purpose equivalents.
    #[test]
    fn scalar_helpers_match_general(a in arb_nat_wide(), m in any::<u64>(), byte in any::<u8>()) {
        prop_assert_eq!(a.mul_u64(m), &a * &Nat::from(m));
        prop_assert_eq!(a.push_be_byte(byte), &(&a << 8u32) + &Nat::from(byte));
    }

    /// The gcd-free `Rat` operator fast paths agree with the reference
    /// construction through `Rat::new`'s full reduction.
    #[test]
    fn rat_fast_paths_match_reference(a in arb_rat(), b in arb_rat()) {
        let cross = &(a.numer() * &Int::from_nat(b.denom().clone()))
            + &(b.numer() * &Int::from_nat(a.denom().clone()));
        prop_assert_eq!(&a + &b, Rat::new(cross, a.denom() * b.denom()));
        prop_assert_eq!(&a * &b, Rat::new(a.numer() * b.numer(), a.denom() * b.denom()));
    }

    /// `from_ratio`'s word-sized reduction agrees with the big-number path.
    #[test]
    fn rat_from_ratio_matches_new(n in any::<u64>(), d in 1u64..) {
        prop_assert_eq!(Rat::from_ratio(n, d), Rat::new(Int::from(n), Nat::from(d)));
    }
}

/// Deterministic spot-checks of the exact boundary values (no randomness:
/// these are the cases the strategies above are aimed at, pinned down).
#[test]
fn limb_boundary_pinned_cases() {
    let b64 = Nat::one() << 64u32;
    let b128 = Nat::one() << 128u32;
    // Carry in: u64::MAX + 1 crosses into two limbs.
    assert_eq!(&Nat::from(u64::MAX) + &Nat::one(), b64);
    assert!(!(&Nat::from(u64::MAX) + &Nat::one()).is_inline());
    // Borrow out: 2^64 - 1 comes back inline.
    assert!((&b64 - &Nat::one()).is_inline());
    assert_eq!(&b64 - &Nat::one(), Nat::from(u64::MAX));
    // Two-limb borrow cascade: 2^128 - 1 has exactly two limbs.
    assert_eq!((&b128 - &Nat::one()).limbs(), &[u64::MAX, u64::MAX]);
    // Multiplication crossing one limb exactly.
    let r = &Nat::from(1u64 << 32) * &Nat::from(1u64 << 32);
    assert_eq!(r, b64);
    assert!(!r.is_inline());
    // Division collapsing back to inline.
    assert_eq!(&b128 / &b64, b64);
    assert!((&b64 / &b64).is_inline());
    assert!((&(&b64 * &Nat::from(3u64)) / &b64).is_inline());
}
