//! Property-based tests for the bignum substrate.
//!
//! Every algebraic law the samplers rely on is checked against `u128`
//! reference semantics on random inputs, plus laws stated directly on
//! multi-limb values (ring axioms, Euclidean division, ordered-field laws
//! for rationals).

use proptest::prelude::*;
use sampcert_arith::{Int, Nat, Rat};

fn nat_of(v: u128) -> Nat {
    Nat::from(v)
}

/// Strategy for naturals spanning one to four limbs.
fn arb_nat() -> impl Strategy<Value = Nat> {
    prop::collection::vec(any::<u64>(), 0..4).prop_map(|ls| {
        ls.iter()
            .fold(Nat::zero(), |acc, &l| &(&acc << 64u32) + &Nat::from(l))
    })
}

fn arb_int() -> impl Strategy<Value = Int> {
    (arb_nat(), any::<bool>()).prop_map(|(m, neg)| Int::from_sign_mag(neg, m))
}

fn arb_rat() -> impl Strategy<Value = Rat> {
    (arb_int(), arb_nat()).prop_map(|(n, d)| {
        let d = if d.is_zero() { Nat::one() } else { d };
        Rat::new(n, d)
    })
}

proptest! {
    #[test]
    fn add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(&nat_of(a as u128) + &nat_of(b as u128), nat_of(a as u128 + b as u128));
    }

    #[test]
    fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(&nat_of(a as u128) * &nat_of(b as u128), nat_of(a as u128 * b as u128));
    }

    #[test]
    fn div_rem_matches_u128(a in any::<u128>(), b in 1u64..) {
        let (q, r) = nat_of(a).div_rem(&nat_of(b as u128));
        prop_assert_eq!(q, nat_of(a / b as u128));
        prop_assert_eq!(r, nat_of(a % b as u128));
    }

    #[test]
    fn add_commutes(a in arb_nat(), b in arb_nat()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_associates(a in arb_nat(), b in arb_nat(), c in arb_nat()) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn mul_distributes(a in arb_nat(), b in arb_nat(), c in arb_nat()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn sub_inverts_add(a in arb_nat(), b in arb_nat()) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn div_rem_reconstructs(a in arb_nat(), b in arb_nat()) {
        let b = if b.is_zero() { Nat::one() } else { b };
        let (q, r) = a.div_rem(&b);
        prop_assert_eq!(&(&q * &b) + &r, a);
        prop_assert!(r < b);
    }

    #[test]
    fn shifts_roundtrip(a in arb_nat(), s in 0u32..200) {
        prop_assert_eq!(&(&a << s) >> s, a);
    }

    #[test]
    fn shift_is_pow2_mul(a in arb_nat(), s in 0u32..100) {
        prop_assert_eq!(&a << s, &a * &Nat::from(2u64).pow(s));
    }

    #[test]
    fn gcd_divides_both(a in arb_nat(), b in arb_nat()) {
        let g = a.gcd(&b);
        if !g.is_zero() {
            prop_assert!((&a % &g).is_zero());
            prop_assert!((&b % &g).is_zero());
        } else {
            prop_assert!(a.is_zero() && b.is_zero());
        }
    }

    #[test]
    fn isqrt_bounds(a in arb_nat()) {
        let r = a.isqrt();
        prop_assert!(&r * &r <= a);
        let r1 = &r + &Nat::one();
        prop_assert!(&r1 * &r1 > a);
    }

    #[test]
    fn nat_display_parse_roundtrip(a in arb_nat()) {
        let s = a.to_string();
        prop_assert_eq!(s.parse::<Nat>().unwrap(), a);
    }

    #[test]
    fn int_ring_laws(a in arb_int(), b in arb_int(), c in arb_int()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        prop_assert_eq!(&a + &(-&a), Int::zero());
    }

    #[test]
    fn int_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let (ia, ib) = (Int::from(a), Int::from(b));
        prop_assert_eq!(&ia + &ib, Int::from(a as i128 + b as i128));
        prop_assert_eq!(&ia * &ib, Int::from(a as i128 * b as i128));
        prop_assert_eq!(&ia - &ib, Int::from(a as i128 - b as i128));
        prop_assert_eq!(ia.cmp(&ib), a.cmp(&b));
    }

    #[test]
    fn int_euclid_division(a in arb_int(), b in arb_int()) {
        let b = if b.is_zero() { Int::one() } else { b };
        let (q, r) = a.div_rem_euclid(&b);
        prop_assert_eq!(&(&q * &b) + &r, a);
        prop_assert!(r >= Int::zero());
        prop_assert!(r < b.abs());
    }

    #[test]
    fn int_euclid_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        prop_assume!(b != 0);
        let (q, r) = Int::from(a).div_rem_euclid(&Int::from(b));
        prop_assert_eq!(q, Int::from((a as i128).div_euclid(b as i128)));
        prop_assert_eq!(r, Int::from((a as i128).rem_euclid(b as i128)));
    }

    #[test]
    fn rat_field_laws(a in arb_rat(), b in arb_rat(), c in arb_rat()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        prop_assert_eq!(&a - &a, Rat::zero());
        if !a.is_zero() {
            prop_assert_eq!(&a * &a.recip(), Rat::one());
        }
    }

    #[test]
    fn rat_is_reduced(a in arb_rat()) {
        prop_assert!(a.numer().magnitude().gcd(a.denom()).is_one()
            || a.is_zero() && a.denom().is_one());
    }

    #[test]
    fn rat_order_translation_invariant(a in arb_rat(), b in arb_rat(), c in arb_rat()) {
        if a < b {
            prop_assert!(&a + &c < &b + &c);
        }
    }

    #[test]
    fn rat_floor_ceil(a in arb_rat()) {
        let f = a.floor();
        let c = a.ceil();
        prop_assert!(Rat::from_int(f.clone()) <= a);
        prop_assert!(Rat::from_int(c.clone()) >= a);
        let diff = &c - &f;
        prop_assert!(diff == Int::zero() || diff == Int::one());
    }

    #[test]
    fn rat_to_f64_close(n in any::<i32>(), d in 1u32..) {
        let r = Rat::new(Int::from(n as i64), Nat::from(d as u64));
        let expect = n as f64 / d as f64;
        prop_assert!((r.to_f64() - expect).abs() <= expect.abs() * 1e-12 + 1e-300);
    }

    #[test]
    fn rat_display_parse_roundtrip(a in arb_rat()) {
        let s = a.to_string();
        prop_assert_eq!(s.parse::<Rat>().unwrap(), a);
    }
}
