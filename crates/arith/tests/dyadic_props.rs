//! Differential property tests for [`Dyadic`] against the [`Rat`]
//! reference semantics.
//!
//! `Rat` is the trusted exact-arithmetic layer (itself pinned against
//! `u128` semantics in `properties.rs`), so every dyadic operation is
//! checked by mapping into it: `to_rat` is a homomorphism for `+`, `−`,
//! `×`, negation, scaling and comparison, normalization round-trips
//! through `Rat` losslessly, and the directed `f64`/`Rat` conversions
//! bracket their inputs. A final (debug-build) property pins the module's
//! defining claim: dyadic arithmetic never calls a gcd.

use proptest::prelude::*;
use sampcert_arith::{Dyadic, Int, Nat, Rat};

/// Dyadics over one-or-two-limb mantissas and a wide exponent range —
/// enough to exercise multi-limb alignment shifts in `add`/`cmp`.
fn arb_dyadic() -> impl Strategy<Value = Dyadic> {
    (any::<u64>(), any::<u64>(), any::<bool>(), -300i64..300).prop_map(|(lo, hi, neg, exp)| {
        let mant = &(&Nat::from(hi) << 64u32) + &Nat::from(lo);
        Dyadic::new(Int::from_sign_mag(neg, mant), exp)
    })
}

/// Finite `f64`s over the full bit pattern space (NaN/∞ re-drawn).
fn arb_finite_f64() -> impl Strategy<Value = f64> {
    any::<u64>()
        .prop_map(f64::from_bits)
        .prop_filter("finite", |x| x.is_finite())
}

/// The exact rational value of a finite `f64` (every finite float is a
/// dyadic rational, hence exactly representable as a `Rat`).
fn rat_of_f64(x: f64) -> Rat {
    if x == 0.0 {
        return Rat::zero();
    }
    let bits = x.abs().to_bits();
    let biased = ((bits >> 52) & 0x7ff) as i64;
    let frac = bits & ((1u64 << 52) - 1);
    let (m, e) = if biased == 0 {
        (frac, -1074i64)
    } else {
        (frac | (1 << 52), biased - 1075)
    };
    let mag = if e >= 0 {
        Rat::from_int(Int::from_nat(Nat::from(m) << e as u32))
    } else {
        Rat::new(Int::from(m), Nat::one() << (-e) as u32)
    };
    if x < 0.0 {
        -mag
    } else {
        mag
    }
}

proptest! {
    #[test]
    fn add_matches_rat(a in arb_dyadic(), b in arb_dyadic()) {
        prop_assert_eq!((&a + &b).to_rat(), &a.to_rat() + &b.to_rat());
    }

    #[test]
    fn sub_matches_rat(a in arb_dyadic(), b in arb_dyadic()) {
        prop_assert_eq!((&a - &b).to_rat(), &a.to_rat() - &b.to_rat());
    }

    #[test]
    fn mul_matches_rat(a in arb_dyadic(), b in arb_dyadic()) {
        prop_assert_eq!((&a * &b).to_rat(), &a.to_rat() * &b.to_rat());
    }

    #[test]
    fn neg_and_abs_match_rat(a in arb_dyadic()) {
        prop_assert_eq!((-&a).to_rat(), -&a.to_rat());
        prop_assert_eq!(a.abs().to_rat(), a.to_rat().abs());
    }

    #[test]
    fn cmp_matches_rat(a in arb_dyadic(), b in arb_dyadic()) {
        prop_assert_eq!(a.cmp(&b), a.to_rat().cmp(&b.to_rat()));
    }

    #[test]
    fn scaling_equals_repeated_addition(a in arb_dyadic(), n in 0u64..200) {
        let mut folded = Dyadic::zero();
        for _ in 0..n {
            folded += &a;
        }
        prop_assert_eq!(a.mul_u64(n), folded);
    }

    /// Normalization round-trip: the canonical form survives the trip
    /// through `Rat` bit-for-bit (odd mantissa, same exponent, same sign).
    #[test]
    fn rat_roundtrip_is_identity(a in arb_dyadic()) {
        let back = Dyadic::try_from_rat(&a.to_rat()).expect("dyadic Rat is dyadic");
        prop_assert_eq!(&back, &a);
        prop_assert!(back.mantissa().is_zero() || !back.mantissa().is_even());
    }

    /// Construction is insensitive to un-normalized input: shifting the
    /// mantissa up while shifting the exponent down is the same value.
    #[test]
    fn normalization_quotients_representations(
        m in any::<i64>(), e in -200i64..200, extra in 0u32..40,
    ) {
        let a = Dyadic::new(Int::from(m), e);
        let shifted = Dyadic::new(
            Int::from_sign_mag(m < 0, Nat::from(m.unsigned_abs()) << extra),
            e - extra as i64,
        );
        prop_assert_eq!(a, shifted);
    }

    /// `from_rat` directed rounding: floor ≤ r ≤ ceil with a gap of at
    /// most one lattice step, and exactness exactly when `r` is on the
    /// lattice.
    #[test]
    fn rat_conversions_bracket(
        num in any::<i64>(), den in 1u64.., frac_bits in 0u32..64,
    ) {
        let r = Rat::new(Int::from(num), Nat::from(den));
        let lo = Dyadic::from_rat_floor(&r, frac_bits);
        let hi = Dyadic::from_rat_ceil(&r, frac_bits);
        prop_assert!(lo.to_rat() <= r && r <= hi.to_rat());
        let step = Dyadic::new(Int::one(), -(frac_bits as i64));
        prop_assert!(&hi - &lo <= step);
        // floor = ceil exactly when r is a multiple of the lattice step.
        let on_lattice = (&r * &Rat::from_int(Int::from_nat(Nat::one() << frac_bits)))
            .denom()
            .is_one();
        prop_assert_eq!(lo == hi, on_lattice);
        if on_lattice {
            prop_assert_eq!(lo.to_rat(), r);
        }
    }

    /// `from_f64` directed rounding: floor ≤ x ≤ ceil (compared through
    /// the exact rational value of the float), gap at most one lattice
    /// quantum, and both sides exact whenever the float's least
    /// significant bit sits on the lattice.
    #[test]
    fn f64_conversions_bracket(x in arb_finite_f64()) {
        let exact = rat_of_f64(x);
        let lo = Dyadic::from_f64_floor(x);
        let hi = Dyadic::from_f64_ceil(x);
        prop_assert!(lo.to_rat() <= exact, "floor {lo:?} above {x}");
        prop_assert!(hi.to_rat() >= exact, "ceil {hi:?} below {x}");
        let step = Dyadic::new(Int::one(), Dyadic::MIN_EXP);
        prop_assert!(&hi - &lo <= step);
        // Representable values convert exactly, in both directions.
        if x == 0.0 || rat_of_f64(x).denom().bit_length() as i64 - 1 <= -Dyadic::MIN_EXP {
            prop_assert_eq!(&lo, &hi, "representable {x} not exact");
            prop_assert_eq!(lo.to_rat(), exact);
        }
    }

    /// The mirror symmetry of directed rounding: floor(−x) = −ceil(x).
    #[test]
    fn f64_directions_mirror(x in arb_finite_f64()) {
        prop_assert_eq!(Dyadic::from_f64_floor(-x), -Dyadic::from_f64_ceil(x));
    }

    /// Byte serialization round-trips exactly — including multi-limb
    /// mantissas and both signs — and the encoding is canonical: equal
    /// values encode to equal bytes (the journal's checksum-over-bytes
    /// soundness argument).
    #[test]
    fn bytes_roundtrip(a in arb_dyadic()) {
        let bytes = a.to_bytes();
        let back = Dyadic::from_bytes(&bytes);
        prop_assert_eq!(back.as_ref(), Some(&a));
        prop_assert_eq!(back.unwrap().to_bytes(), bytes);
    }

    /// `Nat` little-endian byte export round-trips, agrees with the limb
    /// view, and is minimal (no trailing zero byte; zero is empty).
    #[test]
    fn nat_bytes_roundtrip(lo in any::<u64>(), hi in any::<u64>()) {
        let n = &(&Nat::from(hi) << 64u32) + &Nat::from(lo);
        let bytes = n.to_le_bytes();
        prop_assert_eq!(&Nat::from_le_bytes(&bytes), &n);
        prop_assert!(bytes.last() != Some(&0u8), "padded encoding");
        prop_assert_eq!(Nat::from_limbs(n.limbs().to_vec()), n);
    }

    /// Serialization respects arithmetic across a decode/encode boundary:
    /// the byte images of `a` and `b` decode to values whose sum, product
    /// and ordering equal the originals' — i.e. a journal replay composing
    /// decoded charges reconstructs exactly the composition of the live
    /// charges.
    #[test]
    fn decoded_values_compose_exactly(a in arb_dyadic(), b in arb_dyadic()) {
        let da = Dyadic::from_bytes(&a.to_bytes()).expect("canonical");
        let db = Dyadic::from_bytes(&b.to_bytes()).expect("canonical");
        prop_assert_eq!(&da + &db, &a + &b);
        prop_assert_eq!(&da * &db, &a * &b);
        prop_assert_eq!(da.cmp(&db), a.cmp(&b));
    }

    /// Cross-carrier agreement: an f64 charge shuttled through the dyadic
    /// wire form (exact ceil conversion, encode, decode, back to f64)
    /// loses nothing whenever the float is representable on the lattice —
    /// which every realistic privacy parameter is.
    #[test]
    fn f64_through_dyadic_wire_is_lossless_on_lattice(x in arb_finite_f64()) {
        let on_lattice =
            x == 0.0 || rat_of_f64(x).denom().bit_length() as i64 - 1 <= -Dyadic::MIN_EXP;
        prop_assume!(on_lattice);
        let d = Dyadic::from_f64_ceil(x);
        let back = Dyadic::from_bytes(&d.to_bytes()).expect("canonical");
        prop_assert_eq!(back.to_rat(), rat_of_f64(x));
    }
}

/// The defining claim, as a property: dyadic arithmetic (construction from
/// `f64`, add, sub, mul, scaling, comparison, remaining-budget
/// subtraction) performs **zero** gcd calls. Debug builds only — the
/// counter compiles to a constant `0` in release, which would make the
/// assertion vacuous.
#[cfg(debug_assertions)]
#[test]
fn dyadic_arithmetic_is_gcd_free() {
    use proptest::{Strategy, TestRng};
    let mut rng = TestRng::deterministic("dyadic_arithmetic_is_gcd_free");
    let strat = arb_dyadic();
    for _ in 0..256 {
        let a = strat.generate(&mut rng);
        let b = strat.generate(&mut rng);
        let x = f64::from_bits(rng.next_u64());
        let before = sampcert_arith::gcd_call_count();
        let sum = &a + &b;
        let _ = &a - &b;
        let _ = &a * &b;
        let _ = a.cmp(&b);
        let _ = sum.mul_u64(1000);
        let _ = a.saturating_sub(&b);
        if x.is_finite() {
            let _ = Dyadic::from_f64_ceil(x);
            let _ = Dyadic::from_f64_floor(x);
        }
        assert_eq!(
            sampcert_arith::gcd_call_count(),
            before,
            "dyadic op ran a gcd (a={a:?}, b={b:?})"
        );
    }
}
