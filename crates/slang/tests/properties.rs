//! Property-based tests for the mass-function semantics: the monad and
//! measure laws the paper's Lean development proves once and for all,
//! checked here on randomized finite distributions.

use proptest::prelude::*;
use sampcert_arith::Rat;
use sampcert_slang::{Interp, Mass, MassCtx, SubPmf, Weight};

/// Strategy: a small random sub-PMF over u8 with rational weights summing
/// to at most 1.
fn arb_subpmf() -> impl Strategy<Value = SubPmf<u8, Rat>> {
    prop::collection::vec((any::<u8>(), 1u64..100), 1..8).prop_map(|entries| {
        let total: u64 = entries.iter().map(|(_, w)| *w).sum();
        let denom = total.max(1) * 2; // total mass ≤ 1/2
        SubPmf::from_entries(
            entries
                .into_iter()
                .map(move |(v, w)| (v, Rat::from_ratio(w, denom))),
        )
    })
}

proptest! {
    #[test]
    fn bind_left_identity(v in any::<u8>(), shift in any::<u8>()) {
        let f = move |x: &u8| SubPmf::<u8, Rat>::dirac(x.wrapping_add(shift));
        prop_assert_eq!(SubPmf::dirac(v).bind(f), f(&v));
    }

    #[test]
    fn bind_right_identity(p in arb_subpmf()) {
        prop_assert_eq!(p.bind(|x| SubPmf::dirac(*x)), p);
    }

    #[test]
    fn bind_associativity(p in arb_subpmf(), s1 in any::<u8>(), s2 in any::<u8>()) {
        let f = move |x: &u8| -> SubPmf<u8, Rat> {
            SubPmf::from_entries(vec![
                (x.wrapping_add(s1), Rat::from_ratio(1, 3)),
                (x.wrapping_mul(2), Rat::from_ratio(1, 3)),
            ])
        };
        let g = move |x: &u8| SubPmf::<u8, Rat>::dirac(x.wrapping_add(s2));
        let lhs = p.bind(f).bind(g);
        let rhs = p.bind(|x| f(x).bind(g));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn bind_preserves_total_mass_for_stochastic_kernels(p in arb_subpmf()) {
        // A kernel mapping each point to a *probability* distribution
        // preserves total mass exactly.
        let f = |x: &u8| -> SubPmf<u8, Rat> {
            SubPmf::from_entries(vec![
                (*x, Rat::from_ratio(1, 2)),
                (x.wrapping_add(1), Rat::from_ratio(1, 2)),
            ])
        };
        prop_assert_eq!(p.bind(f).total_mass(), p.total_mass());
    }

    #[test]
    fn map_preserves_total_mass(p in arb_subpmf(), k in any::<u8>()) {
        prop_assert_eq!(p.map(|x| x.wrapping_mul(k)).total_mass(), p.total_mass());
    }

    #[test]
    fn partition_splits_mass(p in arb_subpmf(), cut in any::<u8>()) {
        let (yes, no) = p.partition(|x| *x < cut);
        prop_assert_eq!(yes.total_mass().add(&no.total_mass()), p.total_mass());
        prop_assert_eq!(yes.add(&no), p);
    }

    #[test]
    fn scale_is_linear(p in arb_subpmf(), n in 1u64..10, d in 10u64..20) {
        let c = Rat::from_ratio(n, d);
        let scaled = p.scale(&c);
        prop_assert_eq!(scaled.total_mass(), p.total_mass().mul(&c));
        for (v, w) in p.iter() {
            prop_assert_eq!(scaled.mass(v), w.mul(&c));
        }
    }

    #[test]
    fn tv_distance_is_a_metric(p in arb_subpmf(), q in arb_subpmf(), r in arb_subpmf()) {
        let pf = p.to_f64_pmf();
        let qf = q.to_f64_pmf();
        let rf = r.to_f64_pmf();
        prop_assert!(pf.tv_distance(&qf) >= 0.0);
        prop_assert!((pf.tv_distance(&qf) - qf.tv_distance(&pf)).abs() < 1e-12);
        prop_assert!(pf.tv_distance(&pf) < 1e-15);
        // Triangle inequality.
        prop_assert!(pf.tv_distance(&rf) <= pf.tv_distance(&qf) + qf.tv_distance(&rf) + 1e-12);
    }

    #[test]
    fn normalize_then_total_is_one(p in arb_subpmf()) {
        prop_assume!(!p.total_mass().is_zero());
        prop_assert_eq!(p.normalize().total_mass(), Rat::one());
    }

    #[test]
    fn trim_only_removes_small_mass(p in arb_subpmf()) {
        let trimmed = p.trim(1e-3);
        for (v, w) in trimmed.iter() {
            prop_assert!(w.to_f64() >= 1e-3);
            prop_assert_eq!(p.mass(v), w.clone());
        }
        prop_assert!(trimmed.le(&p));
    }

    #[test]
    fn while_cut_monotone_in_fuel(bias in 1u64..255, fuels in prop::collection::vec(1usize..24, 2..5)) {
        // A random until-style loop: redraw a byte until it is below `bias`.
        let prog = sampcert_slang::until::<Mass<f64>, _>(
            Mass::<f64>::uniform_byte(),
            move |b| (*b as u64) < bias,
        );
        let mut fuels = fuels;
        fuels.sort_unstable();
        let mut prev = prog.eval(&MassCtx::new(fuels[0]));
        for f in &fuels[1..] {
            let next = prog.eval(&MassCtx::new(*f));
            prop_assert!(prev.le(&next), "cut monotonicity violated at fuel {f}");
            prev = next;
        }
    }

    #[test]
    fn accelerated_limit_dominates_every_cut(bias in 1u64..255) {
        let prog = sampcert_slang::until::<Mass<f64>, _>(
            Mass::<f64>::uniform_byte(),
            move |b| (*b as u64) < bias,
        );
        let limit = prog.eval(&MassCtx::limit(64));
        for fuel in [1usize, 3, 9] {
            let cut = prog.eval(&MassCtx::new(fuel));
            // Domination up to f64 rounding: the closed-form tail sum and
            // the cut's running sums round differently by a few ulps.
            for (v, w) in cut.iter() {
                prop_assert!(
                    *w <= limit.mass(v) + 1e-12,
                    "cut mass {w} exceeds limit {} at {v:?}",
                    limit.mass(v)
                );
            }
        }
        prop_assert!((limit.total_mass() - 1.0).abs() < 1e-9);
    }
}
