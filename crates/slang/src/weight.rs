//! Mass-function weights: the semiring ℝ≥0 in which `SLang` denotations live.
//!
//! The paper embeds `SLang τ` as `τ → ℝ∞≥0` — functions into the *extended*
//! nonnegative reals, where every series converges. A Rust reproduction
//! evaluates mass functions on finite supports, so plain nonnegative values
//! suffice; [`Weight`] abstracts over the two carriers used here:
//!
//! - `f64`: fast approximate weights for large analyses, and
//! - [`Rat`](sampcert_arith::Rat): exact rational weights, with which the
//!   "sampler PMF = closed form" checks hold *with equality*, not just up
//!   to tolerance — the executable stand-in for the Lean proofs.

use sampcert_arith::Rat;
use std::fmt::Debug;

/// A nonnegative weight carrier for mass functions.
///
/// Implementors form the subsemiring of ℝ≥0 reachable from dyadic rationals
/// (`probUniformByte` contributes mass `1/256` per point; the four `SLang`
/// operators only add and multiply). `Send + Sync` rides along so that
/// denotations can inhabit the `Send`-safe program representations shared
/// with the concurrent serving layer.
pub trait Weight: Clone + PartialEq + PartialOrd + Debug + Send + Sync + 'static {
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// The weight `n / d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    fn from_ratio(n: u64, d: u64) -> Self;
    /// Addition.
    fn add(&self, other: &Self) -> Self;
    /// Multiplication.
    fn mul(&self, other: &Self) -> Self;
    /// Division.
    ///
    /// # Panics
    ///
    /// May panic (or yield a non-finite value for `f64`) when `other` is zero.
    fn div(&self, other: &Self) -> Self;
    /// Truncated subtraction: `max(self − other, 0)`.
    fn sub_sat(&self, other: &Self) -> Self;
    /// Equality up to the carrier's intrinsic precision: exact for `Rat`,
    /// relative `1e-12` for `f64`. Used by the loop-limit accelerator to
    /// detect proportional frontiers.
    fn almost_eq(&self, other: &Self) -> bool;
    /// Conversion to `f64` for reporting and statistics.
    fn to_f64(&self) -> f64;
    /// Returns `true` for the additive identity.
    fn is_zero(&self) -> bool;
}

impl Weight for f64 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn from_ratio(n: u64, d: u64) -> Self {
        assert!(d != 0, "zero denominator");
        n as f64 / d as f64
    }
    fn add(&self, other: &Self) -> Self {
        self + other
    }
    fn mul(&self, other: &Self) -> Self {
        self * other
    }
    fn div(&self, other: &Self) -> Self {
        self / other
    }
    fn sub_sat(&self, other: &Self) -> Self {
        (self - other).max(0.0)
    }
    fn almost_eq(&self, other: &Self) -> bool {
        (self - other).abs() <= 1e-12 * self.abs().max(other.abs())
    }
    fn to_f64(&self) -> f64 {
        *self
    }
    fn is_zero(&self) -> bool {
        *self == 0.0
    }
}

impl Weight for Rat {
    fn zero() -> Self {
        Rat::zero()
    }
    fn one() -> Self {
        Rat::one()
    }
    fn from_ratio(n: u64, d: u64) -> Self {
        Rat::from_ratio(n, d)
    }
    fn add(&self, other: &Self) -> Self {
        self + other
    }
    fn mul(&self, other: &Self) -> Self {
        self * other
    }
    fn div(&self, other: &Self) -> Self {
        self / other
    }
    fn sub_sat(&self, other: &Self) -> Self {
        if self <= other {
            Rat::zero()
        } else {
            self - other
        }
    }
    fn almost_eq(&self, other: &Self) -> bool {
        self == other
    }
    fn to_f64(&self) -> f64 {
        Rat::to_f64(self)
    }
    fn is_zero(&self) -> bool {
        Rat::is_zero(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn semiring_laws<W: Weight>() {
        let half = W::from_ratio(1, 2);
        let third = W::from_ratio(1, 3);
        assert_eq!(half.add(&W::zero()), half);
        assert_eq!(half.mul(&W::one()), half);
        assert!(W::zero().is_zero());
        assert!(!W::one().is_zero());
        assert!(half.mul(&third).almost_eq(&W::from_ratio(1, 6)));
        assert!(half.add(&third).almost_eq(&W::from_ratio(5, 6)));
        assert!(W::from_ratio(5, 6)
            .div(&half)
            .almost_eq(&W::from_ratio(5, 3)));
        assert!(half.sub_sat(&third).almost_eq(&W::from_ratio(1, 6)));
        assert_eq!(third.sub_sat(&half), W::zero());
        assert!(half.almost_eq(&W::from_ratio(2, 4)));
        assert!(!half.almost_eq(&third));
    }

    #[test]
    fn f64_laws() {
        semiring_laws::<f64>();
        assert_eq!(0.5f64.to_f64(), 0.5);
    }

    #[test]
    fn rat_laws() {
        semiring_laws::<Rat>();
        assert_eq!(Rat::from_ratio(1, 3).to_f64(), 1.0 / 3.0);
    }
}
