//! Unnormalized mass functions over countable types.
//!
//! [`SubPmf<T, W>`] is the denotation domain of `SLang`: a finitely
//! supported map `T → W` with nonnegative weights summing to *at most* one
//! (sub-probability), or in intermediate analyses to anything at all — the
//! paper's key move is to work in the **unnormalized** Giry monad so that
//! loop cuts compose without normalizing factors (Section 3.1). Promotion
//! to a true PMF is a *check* ([`SubPmf::total_mass`] ≈ 1), performed after
//! functional correctness is established, exactly mirroring the paper's
//! ordering of normalization proofs after correctness proofs.

use crate::weight::Weight;
use std::collections::HashMap;
use std::fmt::Debug;
use std::hash::Hash;

/// Marker for values that can inhabit a `SLang` program.
///
/// Blanket-implemented; the bounds are what a finitely-supported mass
/// function (hash map keys) and the sampling interpreter (owned results)
/// require. `Send + Sync` is part of the contract so that compiled
/// programs — whose closures capture values of these types — can be
/// shared across the worker threads of the concurrent serving layer.
pub trait Value: Clone + Eq + Hash + Debug + Send + Sync + 'static {}
impl<T: Clone + Eq + Hash + Debug + Send + Sync + 'static> Value for T {}

/// A finitely-supported unnormalized mass function.
///
/// # Examples
///
/// ```
/// use sampcert_slang::SubPmf;
///
/// let coin: SubPmf<bool, f64> = SubPmf::from_entries(vec![(true, 0.5), (false, 0.5)]);
/// assert_eq!(coin.total_mass(), 1.0);
/// assert_eq!(coin.mass(&true), 0.5);
/// ```
#[derive(Clone, Debug)]
pub struct SubPmf<T: Value, W: Weight = f64> {
    map: HashMap<T, W>,
}

impl<T: Value, W: Weight> SubPmf<T, W> {
    /// The zero mass function (the denotation of a non-terminating loop cut).
    pub fn zero() -> Self {
        SubPmf {
            map: HashMap::new(),
        }
    }

    /// The Dirac mass function at `v` (the denotation of `probPure v`).
    pub fn dirac(v: T) -> Self {
        let mut map = HashMap::new();
        map.insert(v, W::one());
        SubPmf { map }
    }

    /// Builds a mass function from `(value, weight)` entries, summing
    /// duplicate keys and dropping zero weights.
    pub fn from_entries(entries: impl IntoIterator<Item = (T, W)>) -> Self {
        let mut out = SubPmf::zero();
        for (v, w) in entries {
            out.add_mass(v, w);
        }
        out
    }

    /// Adds `w` to the mass at `v`.
    pub fn add_mass(&mut self, v: T, w: W) {
        if w.is_zero() {
            return;
        }
        match self.map.get_mut(&v) {
            Some(cur) => *cur = cur.add(&w),
            None => {
                self.map.insert(v, w);
            }
        }
    }

    /// The mass at `v` (zero off the support).
    pub fn mass(&self, v: &T) -> W {
        self.map.get(v).cloned().unwrap_or_else(W::zero)
    }

    /// The total mass `Σ_v m(v)`.
    ///
    /// A complete `SLang` program denotes a PMF exactly when this is one;
    /// the shortfall of a loop cut below one is the mass still "inside" the
    /// loop (or lost to non-termination in the limit).
    pub fn total_mass(&self) -> W {
        self.map.values().fold(W::zero(), |acc, w| acc.add(w))
    }

    /// Number of support points.
    pub fn support_len(&self) -> usize {
        self.map.len()
    }

    /// Iterates over `(value, weight)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&T, &W)> {
        self.map.iter()
    }

    /// The support as a vector (unspecified order).
    pub fn support(&self) -> Vec<T> {
        self.map.keys().cloned().collect()
    }

    /// Scales every weight by `w`.
    pub fn scale(&self, w: &W) -> Self {
        if w.is_zero() {
            return SubPmf::zero();
        }
        SubPmf {
            map: self
                .map
                .iter()
                .map(|(v, m)| (v.clone(), m.mul(w)))
                .collect(),
        }
    }

    /// Pointwise sum of two mass functions.
    pub fn add(&self, other: &Self) -> Self {
        let mut out = self.clone();
        for (v, w) in other.iter() {
            out.add_mass(v.clone(), w.clone());
        }
        out
    }

    /// Monadic bind: `(p >>= f)(v) = Σ_t f(t)(v) · p(t)` — Eq. (3) of the
    /// paper, evaluated over the finite support.
    pub fn bind<U: Value>(&self, mut f: impl FnMut(&T) -> SubPmf<U, W>) -> SubPmf<U, W> {
        let mut out = SubPmf::zero();
        for (t, w) in self.map.iter() {
            let inner = f(t);
            for (u, wu) in inner.map {
                out.add_mass(u, w.mul(&wu));
            }
        }
        out
    }

    /// Pushes the mass function forward along `f` (postprocessing).
    pub fn map<U: Value>(&self, mut f: impl FnMut(&T) -> U) -> SubPmf<U, W> {
        let mut out = SubPmf::zero();
        for (t, w) in self.map.iter() {
            out.add_mass(f(t), w.clone());
        }
        out
    }

    /// Keeps only the mass at points satisfying `pred`.
    pub fn filter(&self, mut pred: impl FnMut(&T) -> bool) -> Self {
        SubPmf {
            map: self
                .map
                .iter()
                .filter(|(t, _)| pred(t))
                .map(|(t, w)| (t.clone(), w.clone()))
                .collect(),
        }
    }

    /// Drops support points whose weight is below `floor` (as `f64`).
    ///
    /// Analytic distributions in this workspace are truncations of
    /// infinite-support closed forms; comparing two truncations built
    /// around different centers leaves mismatched edge points carrying
    /// only truncation-artifact mass. Trimming at a floor far below the
    /// truncation tail bound (e.g. `1e-13` against an `e^{−40}` tail)
    /// removes exactly those artifacts before divergence computations.
    pub fn trim(&self, floor: f64) -> Self {
        SubPmf {
            map: self
                .map
                .iter()
                .filter(|(_, w)| w.to_f64() >= floor)
                .map(|(t, w)| (t.clone(), w.clone()))
                .collect(),
        }
    }

    /// Splits into `(mass where pred, mass where !pred)`.
    pub fn partition(&self, mut pred: impl FnMut(&T) -> bool) -> (Self, Self) {
        let mut yes = SubPmf::zero();
        let mut no = SubPmf::zero();
        for (t, w) in self.map.iter() {
            if pred(t) {
                yes.add_mass(t.clone(), w.clone());
            } else {
                no.add_mass(t.clone(), w.clone());
            }
        }
        (yes, no)
    }

    /// Normalizes to total mass one.
    ///
    /// # Panics
    ///
    /// Panics if the total mass is zero.
    pub fn normalize(&self) -> Self {
        let total = self.total_mass();
        assert!(!total.is_zero(), "cannot normalize the zero mass function");
        SubPmf {
            map: self
                .map
                .iter()
                .map(|(v, w)| (v.clone(), w.div(&total)))
                .collect(),
        }
    }

    /// Pointwise monotone comparison: `self(v) ≤ other(v)` everywhere.
    ///
    /// The cuts `probWhileCut c f n i` are pointwise monotone in `n`
    /// (paper, Section 3.1); the tests use this to check that property of
    /// the executable semantics.
    pub fn le(&self, other: &Self) -> bool {
        self.map.iter().all(|(v, w)| *w <= other.mass(v))
    }

    /// The largest absolute pointwise difference, as `f64`.
    pub fn linf_distance<W2: Weight>(&self, other: &SubPmf<T, W2>) -> f64 {
        let mut worst: f64 = 0.0;
        for (v, w) in self.map.iter() {
            worst = worst.max((w.to_f64() - other.mass(v).to_f64()).abs());
        }
        for (v, w) in other.map.iter() {
            worst = worst.max((self.mass(v).to_f64() - w.to_f64()).abs());
        }
        worst
    }

    /// Total-variation distance `½ Σ_v |p(v) − q(v)|`, as `f64`.
    pub fn tv_distance<W2: Weight>(&self, other: &SubPmf<T, W2>) -> f64 {
        let mut sum = 0.0;
        for (v, w) in self.map.iter() {
            sum += (w.to_f64() - other.mass(v).to_f64()).abs();
        }
        for (v, w) in other.map.iter() {
            if !self.map.contains_key(v) {
                sum += w.to_f64().abs();
            }
        }
        sum / 2.0
    }

    /// Converts the weights to `f64`.
    pub fn to_f64_pmf(&self) -> SubPmf<T, f64> {
        SubPmf {
            map: self
                .map
                .iter()
                .map(|(v, w)| (v.clone(), w.to_f64()))
                .collect(),
        }
    }
}

impl<T: Value, W: Weight> PartialEq for SubPmf<T, W> {
    /// Exact pointwise equality of mass functions (zero-mass points are
    /// never stored, so map equality is pointwise equality).
    fn eq(&self, other: &Self) -> bool {
        self.map.len() == other.map.len() && self.map.iter().all(|(v, w)| other.mass(v) == *w)
    }
}

impl<T: Value + Ord, W: Weight> SubPmf<T, W> {
    /// Entries sorted by value, for deterministic reporting.
    pub fn sorted_entries(&self) -> Vec<(T, W)> {
        let mut v: Vec<(T, W)> = self
            .map
            .iter()
            .map(|(t, w)| (t.clone(), w.clone()))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }
}

impl SubPmf<i64, f64> {
    /// Expectation `Σ_v v · m(v)` of an integer-valued mass function.
    pub fn expectation(&self) -> f64 {
        self.map.iter().map(|(v, w)| *v as f64 * w).sum()
    }

    /// Raw second moment `Σ_v v² · m(v)`.
    pub fn second_moment(&self) -> f64 {
        self.map.iter().map(|(v, w)| (*v as f64).powi(2) * w).sum()
    }

    /// Variance of the normalized distribution.
    ///
    /// # Panics
    ///
    /// Panics if the total mass is zero.
    pub fn variance(&self) -> f64 {
        let n = self.normalize();
        let mean = n.expectation();
        n.second_moment() - mean * mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sampcert_arith::Rat;

    #[test]
    fn dirac_and_zero() {
        let d: SubPmf<u8> = SubPmf::dirac(3);
        assert_eq!(d.mass(&3), 1.0);
        assert_eq!(d.mass(&4), 0.0);
        assert_eq!(d.total_mass(), 1.0);
        let z: SubPmf<u8> = SubPmf::zero();
        assert_eq!(z.total_mass(), 0.0);
        assert_eq!(z.support_len(), 0);
    }

    #[test]
    fn bind_is_eq3() {
        // p = uniform on {0,1}; f(x) = dirac(x+10) with weight 1/2 else zero.
        let p: SubPmf<u8> = SubPmf::from_entries(vec![(0u8, 0.5), (1u8, 0.5)]);
        let q = p.bind(|&x| {
            if x == 0 {
                SubPmf::from_entries(vec![(10u8, 0.5)])
            } else {
                SubPmf::dirac(11)
            }
        });
        assert_eq!(q.mass(&10), 0.25);
        assert_eq!(q.mass(&11), 0.5);
        assert!((q.total_mass() - 0.75).abs() < 1e-15);
    }

    #[test]
    fn bind_monad_laws_exact() {
        // Left identity and associativity with exact rational weights.
        type P = SubPmf<u8, Rat>;
        let h = Rat::from_ratio(1, 2);
        let p: P = SubPmf::from_entries(vec![(0u8, h.clone()), (1u8, h)]);
        let f = |x: &u8| -> P { SubPmf::dirac(x.wrapping_add(1)) };
        let g = |x: &u8| -> P {
            SubPmf::from_entries(vec![
                (*x, Rat::from_ratio(1, 3)),
                (x + 10, Rat::from_ratio(1, 3)),
            ])
        };
        // left identity: dirac(a) >>= f == f(a)
        assert_eq!(SubPmf::dirac(5u8).bind(f), f(&5));
        // associativity
        let lhs = p.bind(f).bind(g);
        let rhs = p.bind(|x| f(x).bind(g));
        assert_eq!(lhs, rhs);
        // right identity
        assert_eq!(p.bind(|x| SubPmf::dirac(*x)), p);
    }

    #[test]
    fn partition_and_filter() {
        let p: SubPmf<i64> = SubPmf::from_entries(vec![(1, 0.2), (2, 0.3), (3, 0.5)]);
        let (even, odd) = p.partition(|v| v % 2 == 0);
        assert!((even.total_mass() - 0.3).abs() < 1e-15);
        assert!((odd.total_mass() - 0.7).abs() < 1e-15);
        assert_eq!(p.filter(|v| *v > 2).support(), vec![3]);
    }

    #[test]
    fn normalize_and_moments() {
        let p: SubPmf<i64> = SubPmf::from_entries(vec![(0, 0.25), (2, 0.25)]);
        let n = p.normalize();
        assert!((n.total_mass() - 1.0).abs() < 1e-15);
        assert_eq!(n.expectation(), 1.0);
        assert_eq!(p.variance(), 1.0);
    }

    #[test]
    #[should_panic(expected = "zero mass function")]
    fn normalize_zero_panics() {
        let _ = SubPmf::<u8, f64>::zero().normalize();
    }

    #[test]
    fn distances() {
        let p: SubPmf<u8> = SubPmf::from_entries(vec![(0u8, 0.5), (1u8, 0.5)]);
        let q: SubPmf<u8> = SubPmf::from_entries(vec![(0u8, 0.25), (2u8, 0.75)]);
        assert!((p.tv_distance(&q) - 0.75).abs() < 1e-15);
        assert!((p.linf_distance(&q) - 0.75).abs() < 1e-15);
        assert_eq!(p.tv_distance(&p), 0.0);
    }

    #[test]
    fn pointwise_le() {
        let small: SubPmf<u8> = SubPmf::from_entries(vec![(0u8, 0.2)]);
        let big: SubPmf<u8> = SubPmf::from_entries(vec![(0u8, 0.3), (1u8, 0.1)]);
        assert!(small.le(&big));
        assert!(!big.le(&small));
    }

    #[test]
    fn exact_rational_masses() {
        // 1/3 + 1/6 = 1/2 exactly; f64 would be fine here but the point is
        // the carrier is exact.
        let p: SubPmf<u8, Rat> = SubPmf::from_entries(vec![
            (0u8, Rat::from_ratio(1, 3)),
            (0u8, Rat::from_ratio(1, 6)),
        ]);
        assert_eq!(p.mass(&0), Rat::from_ratio(1, 2));
    }

    #[test]
    fn sorted_entries_deterministic() {
        let p: SubPmf<i64> = SubPmf::from_entries(vec![(3, 0.1), (-1, 0.2), (2, 0.3)]);
        let keys: Vec<i64> = p.sorted_entries().into_iter().map(|e| e.0).collect();
        assert_eq!(keys, vec![-1, 2, 3]);
    }

    #[test]
    fn zero_weights_not_stored() {
        let mut p: SubPmf<u8> = SubPmf::zero();
        p.add_mass(1, 0.0);
        assert_eq!(p.support_len(), 0);
    }
}
