//! The denotational interpreter: `SLang` programs as unnormalized mass
//! functions.
//!
//! This interpreter implements the semantics of the paper's Fig. 3
//! literally:
//!
//! - `probPure v` is the Dirac mass at `v` (Eq. 2),
//! - `probBind p f` is `Σ_t f(t)(v)·p(t)` (Eq. 3),
//! - `probUniformByte` puts mass `2⁻⁸` on each of the 256 bytes,
//! - `probWhile c f init` is `sup_n probWhileCut c f n init` — here
//!   evaluated at a finite fuel `n`, with [`eval_to_stability`] providing
//!   the executable version of the paper's **cut reachability / cut
//!   stability** proof technique (Section 3.2): increase the cut until the
//!   mass function stops changing, then report the stable cut.
//!
//! Because the semantics is *unnormalized* (total mass of a cut is < 1
//! while mass is still "inside" the loop), cuts are pointwise monotone and
//! stabilize pointwise — the property the paper's proofs rely on and which
//! [`cut_curve`] lets tests observe directly.

use crate::interp::Interp;
use crate::subpmf::{SubPmf, Value};
use crate::weight::Weight;
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::{Arc, Mutex};

/// Evaluation context for the mass semantics.
///
/// `fuel` is the loop cut: every `probWhile` in the program is truncated to
/// at most this many unrollings (each unrolling is one guard check, exactly
/// as in the paper's `probWhileCut`).
///
/// With `accelerate` set, the evaluator additionally detects when
/// consecutive loop frontiers become *proportional* (the situation the
/// paper's cut-stability lemmas formalize: after some cut, each further
/// unrolling scales the in-loop mass by a constant factor `c < 1`) and sums
/// the remaining geometric series `Σ c^k` in closed form — yielding the
/// exact supremum `probWhile = sup_n probWhileCut n` instead of a
/// truncation. With `Rat` weights this limit is exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MassCtx {
    /// Loop cut applied to every `while_loop` during evaluation.
    pub fuel: usize,
    /// Enable closed-form summation of geometrically decaying loop tails.
    pub accelerate: bool,
    /// Mass floor: support points carrying less than this weight are
    /// dropped during `bind` and loop stepping. Zero (the default) keeps
    /// the semantics exact; a tiny positive floor (e.g. `1e-12`) makes
    /// deep-tail analyses tractable at a quantified accuracy cost — the
    /// dropped mass is bounded by `prune × (number of pruned points)`,
    /// and the result remains a pointwise *lower* bound on the true
    /// denotation (the same one-sided guarantee a finite cut gives).
    pub prune: f64,
}

impl MassCtx {
    /// Pure `probWhileCut` semantics at the given cut (no acceleration,
    /// no pruning).
    pub fn new(fuel: usize) -> Self {
        MassCtx {
            fuel,
            accelerate: false,
            prune: 0.0,
        }
    }

    /// Limit semantics: acceleration on, with `fuel` as a safety cap.
    pub fn limit(fuel: usize) -> Self {
        MassCtx {
            fuel,
            accelerate: true,
            prune: 0.0,
        }
    }

    /// Returns this context with the given mass floor.
    pub fn with_prune(self, prune: f64) -> Self {
        MassCtx { prune, ..self }
    }
}

/// A lazily-evaluated mass function: the denotation of a `SLang` program.
///
/// Evaluate with [`MassFn::eval`] at a chosen cut. Cheap to clone.
///
/// Denotations are **memoized per context**: programs are built by cloning
/// shared subterms (a geometric loop clones its trial program into every
/// unrolling), so without sharing, evaluation cost would grow with the
/// *syntactic* number of subterm occurrences rather than the number of
/// distinct subprograms — exponential for the nested rejection loops of
/// the Gaussian sampler. The cache holds the most recent `(ctx, result)`
/// pair, which suffices because an evaluation pass uses one context
/// throughout.
pub struct MassFn<T: Value, W: Weight> {
    f: Arc<dyn Fn(&MassCtx) -> SubPmf<T, W> + Send + Sync>,
    cache: Arc<Mutex<Option<(MassCtx, SubPmf<T, W>)>>>,
}

impl<T: Value, W: Weight> Clone for MassFn<T, W> {
    fn clone(&self) -> Self {
        MassFn {
            f: Arc::clone(&self.f),
            cache: Arc::clone(&self.cache),
        }
    }
}

impl<T: Value, W: Weight> MassFn<T, W> {
    fn from_fn(f: impl Fn(&MassCtx) -> SubPmf<T, W> + Send + Sync + 'static) -> Self {
        MassFn {
            f: Arc::new(f),
            cache: Arc::new(Mutex::new(None)),
        }
    }

    /// Evaluates the denotation at the cut in `ctx` (memoized; see the
    /// type docs).
    pub fn eval(&self, ctx: &MassCtx) -> SubPmf<T, W> {
        if let Some((cached_ctx, result)) = self.cache.lock().expect("cache poisoned").as_ref() {
            if cached_ctx == ctx {
                return result.clone();
            }
        }
        let result = (self.f)(ctx);
        *self.cache.lock().expect("cache poisoned") = Some((*ctx, result.clone()));
        result
    }

    /// Evaluates at cut `fuel`.
    pub fn eval_with_fuel(&self, fuel: usize) -> SubPmf<T, W> {
        self.eval(&MassCtx::new(fuel))
    }

    /// Evaluates the loop-limit semantics (`probWhile` as the supremum of
    /// its cuts), using geometric-tail acceleration with `max_fuel` as a
    /// safety cap. With `Rat` weights the result is the exact limit
    /// whenever every loop's residual eventually decays proportionally.
    pub fn eval_limit(&self, max_fuel: usize) -> SubPmf<T, W> {
        self.eval(&MassCtx::limit(max_fuel))
    }
}

/// Returns `c` when `next = c · prev` pointwise (same support, constant
/// ratio), the precondition for closed-form tail summation.
fn proportional<T: Value, W: Weight>(prev: &SubPmf<T, W>, next: &SubPmf<T, W>) -> Option<W> {
    if prev.support_len() != next.support_len() || prev.support_len() == 0 {
        return None;
    }
    let mut ratio: Option<W> = None;
    for (v, w) in next.iter() {
        let pw = prev.mass(v);
        if pw.is_zero() {
            return None;
        }
        let r = w.div(&pw);
        match &ratio {
            None => ratio = Some(r),
            Some(r0) => {
                if !r0.almost_eq(&r) {
                    return None;
                }
            }
        }
    }
    ratio
}

/// The mass-function interpreter (marker type), parameterized by the
/// weight carrier: `f64` for fast analyses, `Rat` for exact ones.
///
/// # Examples
///
/// Exact geometric masses from a loop (cf. paper Section 3.2.1):
///
/// ```
/// use sampcert_slang::{Interp, Mass, MassCtx};
/// use sampcert_arith::Rat;
///
/// // Flip fair coins until heads; count flips.
/// let trial = Mass::<Rat>::bind(Mass::<Rat>::uniform_byte(), |b| {
///     Mass::<Rat>::pure(b & 1 == 1)
/// });
/// let loop_ = Mass::<Rat>::while_loop(
///     |s: &(bool, u64)| s.0,
///     move |s| {
///         let n = s.1;
///         Mass::<Rat>::bind(trial.clone(), move |&flip| Mass::<Rat>::pure((flip, n + 1)))
///     },
///     Mass::<Rat>::pure((true, 0u64)),
/// );
/// let d = loop_.eval(&MassCtx::new(20));
/// // P(first failure on trial k) = 2^-k, exactly.
/// assert_eq!(d.mass(&(false, 1)), Rat::from_ratio(1, 2));
/// assert_eq!(d.mass(&(false, 3)), Rat::from_ratio(1, 8));
/// ```
pub struct Mass<W: Weight = f64>(PhantomData<W>);

impl<W: Weight> Interp for Mass<W> {
    type Repr<T: Value> = MassFn<T, W>;

    fn pure<T: Value>(v: T) -> MassFn<T, W> {
        MassFn::from_fn(move |_| SubPmf::dirac(v.clone()))
    }

    fn bind<T: Value, U: Value>(
        m: MassFn<T, W>,
        f: impl Fn(&T) -> MassFn<U, W> + Send + Sync + 'static,
    ) -> MassFn<U, W> {
        MassFn::from_fn(move |ctx| {
            let src = if ctx.prune > 0.0 {
                m.eval(ctx).trim(ctx.prune)
            } else {
                m.eval(ctx)
            };
            src.bind(|t| f(t).eval(ctx))
        })
    }

    fn uniform_byte() -> MassFn<u8, W> {
        MassFn::from_fn(|_| {
            SubPmf::from_entries((0u16..256).map(|b| (b as u8, W::from_ratio(1, 256))))
        })
    }

    fn while_loop<S: Value>(
        cond: impl Fn(&S) -> bool + Send + Sync + 'static,
        body: impl Fn(&S) -> MassFn<S, W> + Send + Sync + 'static,
        init: MassFn<S, W>,
    ) -> MassFn<S, W> {
        MassFn::from_fn(move |ctx| {
            let mut out: SubPmf<S, W> = SubPmf::zero();
            let mut frontier = init.eval(ctx);
            // The body kernel is deterministic in its input state, so cache
            // its denotation per state across unrollings.
            let mut cache: HashMap<S, SubPmf<S, W>> = HashMap::new();
            for _ in 0..ctx.fuel {
                if frontier.support_len() == 0 {
                    break;
                }
                let (cont, done) = frontier.partition(&cond);
                out = out.add(&done);
                let cont = if ctx.prune > 0.0 {
                    cont.trim(ctx.prune)
                } else {
                    cont
                };
                if cont.support_len() == 0 {
                    break;
                }
                let next = cont.bind(|s| {
                    cache
                        .entry(s.clone())
                        .or_insert_with(|| body(s).eval(ctx))
                        .clone()
                });
                if ctx.accelerate {
                    // Cut stability, executed: once each unrolling scales the
                    // in-loop mass by a constant c < 1, the remaining exits
                    // form the geometric series done·(c + c² + …), summed in
                    // closed form. Exact for `Rat` weights.
                    if let Some(c) = proportional(&frontier, &next) {
                        if c.to_f64() < 1.0 - 1e-13 {
                            let factor = c.div(&W::one().sub_sat(&c));
                            return out.add(&done.scale(&factor));
                        }
                    }
                }
                frontier = next;
            }
            // Mass still in `frontier` is inside the loop at this cut; it is
            // dropped, exactly as probWhileCut maps exhausted fuel to the
            // zero mass function.
            out
        })
    }
}

/// Evaluates a program at each cut in `fuels`, returning the sequence of
/// truncated denotations — the raw material of a cut-reachability /
/// cut-stability argument.
pub fn cut_curve<T: Value, W: Weight>(
    m: &MassFn<T, W>,
    fuels: impl IntoIterator<Item = usize>,
) -> Vec<SubPmf<T, W>> {
    fuels.into_iter().map(|f| m.eval_with_fuel(f)).collect()
}

/// Checks pointwise monotonicity of the cuts: each denotation in the
/// sequence must dominate the previous one. This is the lemma the paper
/// proves for `probWhileCut` (Section 3.1) and the precondition for
/// `probWhile` being the supremum of its cuts.
pub fn cuts_are_monotone<T: Value, W: Weight>(curve: &[SubPmf<T, W>]) -> bool {
    curve.windows(2).all(|w| w[0].le(&w[1]))
}

/// Result of evaluating to stability; see [`eval_to_stability`].
#[derive(Debug, Clone)]
pub struct StableEval<T: Value, W: Weight> {
    /// The (approximately) stable denotation.
    pub dist: SubPmf<T, W>,
    /// The cut at which stability was reached.
    pub fuel: usize,
    /// L∞ change between the last two evaluated cuts.
    pub last_change: f64,
}

/// Doubles the cut until the denotation stops changing (L∞ below `tol`),
/// starting at `start_fuel` and giving up at `max_fuel`.
///
/// This is the executable counterpart of the paper's stability lemma: once
/// the returned `last_change` is zero (exact weights) or below tolerance,
/// further cuts provably cannot *decrease* any mass (monotonicity), so the
/// reported distribution is a certified lower bound and, when its total
/// mass is ≈ 1, the limit itself.
///
/// # Errors
///
/// Returns `Err` with the last evaluation if `max_fuel` is reached before
/// stabilizing.
pub fn eval_to_stability<T: Value, W: Weight>(
    m: &MassFn<T, W>,
    start_fuel: usize,
    max_fuel: usize,
    tol: f64,
) -> Result<StableEval<T, W>, StableEval<T, W>> {
    let mut fuel = start_fuel.max(1);
    let mut prev = m.eval_with_fuel(fuel);
    loop {
        let next_fuel = (fuel * 2).min(max_fuel);
        let next = m.eval_with_fuel(next_fuel);
        let change = prev.linf_distance(&next);
        let res = StableEval {
            dist: next,
            fuel: next_fuel,
            last_change: change,
        };
        if change <= tol {
            return Ok(res);
        }
        if next_fuel >= max_fuel {
            return Err(res);
        }
        fuel = next_fuel;
        prev = res.dist;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{map, until};
    use sampcert_arith::Rat;

    fn coin<W: Weight>() -> MassFn<bool, W> {
        Mass::<W>::bind(Mass::<W>::uniform_byte(), |b| Mass::<W>::pure(b & 1 == 1))
    }

    #[test]
    fn pure_is_dirac() {
        let d = Mass::<f64>::pure(9u8).eval_with_fuel(0);
        assert_eq!(d.mass(&9), 1.0);
        assert_eq!(d.total_mass(), 1.0);
    }

    #[test]
    fn uniform_byte_mass() {
        let d = Mass::<Rat>::uniform_byte().eval_with_fuel(0);
        assert_eq!(d.support_len(), 256);
        assert_eq!(d.mass(&0), Rat::from_ratio(1, 256));
        assert_eq!(d.total_mass(), Rat::one());
    }

    #[test]
    fn bind_composes_masses_exactly() {
        let two_coins = Mass::<Rat>::bind(coin::<Rat>(), |&a| {
            map::<Mass<Rat>, _, _>(coin::<Rat>(), move |&b| (a, b))
        });
        let d = two_coins.eval_with_fuel(0);
        for pt in [(false, false), (false, true), (true, false), (true, true)] {
            assert_eq!(d.mass(&pt), Rat::from_ratio(1, 4));
        }
    }

    /// The worked example of paper Section 3.2.1: the geometric loop.
    fn geo_loop<W: Weight>() -> MassFn<(bool, u64), W> {
        Mass::<W>::while_loop(
            |s: &(bool, u64)| s.0,
            move |s| {
                let n = s.1;
                Mass::<W>::bind(coin::<W>(), move |&flip| Mass::<W>::pure((flip, n + 1)))
            },
            Mass::<W>::pure((true, 0u64)),
        )
    }

    #[test]
    fn cut_reachability_geometric() {
        // Cut n+1 suffices for the mass at (false, n) to reach Geo(n).
        let g = geo_loop::<Rat>();
        for n in 1u64..6 {
            let d = g.eval_with_fuel(n as usize + 1);
            assert_eq!(
                d.mass(&(false, n)),
                Rat::from_ratio(1, 2).powi(n as i32),
                "cut reachability at n={n}"
            );
        }
    }

    #[test]
    fn cut_stability_geometric() {
        // Extra fuel after reachability leaves the mass unchanged.
        let g = geo_loop::<Rat>();
        for n in 1u64..5 {
            let at_reach = g.eval_with_fuel(n as usize + 1).mass(&(false, n));
            for extra in 1..4usize {
                let later = g.eval_with_fuel(n as usize + 1 + extra).mass(&(false, n));
                assert_eq!(at_reach, later, "cut stability at n={n}, +{extra}");
            }
        }
    }

    #[test]
    fn cuts_monotone_and_mass_to_one() {
        let g = geo_loop::<f64>();
        let curve = cut_curve(&g, [1, 2, 4, 8, 16, 32]);
        assert!(cuts_are_monotone(&curve));
        let last = curve.last().unwrap();
        assert!((last.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn never_returns_true_flag() {
        // "probGeometricLoop never returns a state with flag true".
        let g = geo_loop::<f64>();
        let d = g.eval_with_fuel(30);
        assert!(d.iter().all(|(s, _)| !s.0));
    }

    #[test]
    fn eval_to_stability_converges() {
        let g = geo_loop::<f64>();
        let res = eval_to_stability(&g, 1, 1 << 12, 1e-12).expect("stabilizes");
        assert!((res.dist.total_mass() - 1.0).abs() < 1e-9);
        assert!((res.dist.mass(&(false, 1)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn eval_to_stability_reports_failure() {
        // A loop that never terminates: cond always true.
        let never = Mass::<f64>::while_loop(
            |_: &u8| true,
            |s| Mass::<f64>::pure(*s),
            Mass::<f64>::pure(0u8),
        );
        // Mass stays zero forever, so it "stabilizes" at zero immediately —
        // total mass 0 distinguishes divergence from normalization.
        let res = eval_to_stability(&never, 1, 64, 0.0).expect("zero is stable");
        assert_eq!(res.dist.total_mass(), 0.0);
    }

    #[test]
    fn until_is_normalized_conditional() {
        // Rejection-sample a byte until it is < 3: uniform on {0,1,2}.
        let p = until::<Mass<Rat>, _>(Mass::<Rat>::uniform_byte(), |&b| b < 3);
        let d = p.eval_limit(64);
        assert_eq!(d.total_mass(), Rat::one());
        for b in 0u8..3 {
            assert_eq!(d.mass(&b), Rat::from_ratio(1, 3));
        }
        assert_eq!(d.mass(&3), Rat::zero());
    }

    #[test]
    fn accelerated_limit_agrees_with_deep_cut() {
        let p = until::<Mass<f64>, _>(Mass::<f64>::uniform_byte(), |&b| b >= 128);
        let exact = p.eval_limit(64);
        let cut = p.eval_with_fuel(64);
        assert!(exact.linf_distance(&cut) < 1e-9);
        assert!((exact.total_mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn acceleration_skips_mass_preserving_loops() {
        // cond always true with a deterministic body: c = 1, never
        // accelerated; the cut semantics (zero mass) is preserved.
        let never = Mass::<f64>::while_loop(
            |_: &u8| true,
            |s| Mass::<f64>::pure(*s),
            Mass::<f64>::pure(0u8),
        );
        assert_eq!(never.eval_limit(32).total_mass(), 0.0);
    }

    #[test]
    fn geometric_limit_exact_under_acceleration() {
        // The geometric loop's frontier is {(true, k)} with moving support,
        // so proportionality never fires; the accelerated evaluator must
        // still produce the correct cut-limited masses.
        let g = geo_loop::<Rat>();
        let d = g.eval(&MassCtx::limit(30));
        assert_eq!(d.mass(&(false, 2)), Rat::from_ratio(1, 4));
    }

    #[test]
    fn while_cut_zero_is_zero() {
        let g = geo_loop::<f64>();
        assert_eq!(g.eval_with_fuel(0).total_mass(), 0.0);
    }

    #[test]
    fn loop_with_immediate_exit_consumes_one_cut() {
        // cond false at entry: cut 1 yields the init distribution.
        let p = Mass::<f64>::while_loop(
            |_: &u8| false,
            |s| Mass::<f64>::pure(*s),
            Mass::<f64>::pure(7u8),
        );
        assert_eq!(p.eval_with_fuel(0).total_mass(), 0.0);
        assert_eq!(p.eval_with_fuel(1).mass(&7), 1.0);
    }
}
