//! The executable interpreter: `SLang` programs as sampling procedures.
//!
//! This is the Rust analogue of the paper's extraction pipeline
//! (Section 4.1, Listings 12/20): each of the four operators becomes a
//! small closure, composed at program-construction time, that pulls bytes
//! from a [`ByteSource`] at run time. The correspondence is operator-for-
//! operator —
//!
//! | Lean/C++ FFI        | here                                  |
//! |---------------------|---------------------------------------|
//! | `prob_Pure`         | a closure returning the value         |
//! | `prob_Bind`         | run the first, apply, run the second  |
//! | `prob_UniformByte`  | `src.next_byte()`                     |
//! | `prob_While`        | a `while` loop over the state         |
//!
//! — so the trusted "compilation" step is exactly as thin as the paper's
//! 57 lines of C++.

use crate::interp::Interp;
use crate::source::ByteSource;
use crate::subpmf::Value;
use std::sync::Arc;

/// A compiled sampling procedure producing `T`.
///
/// Values of this type are cheap to clone (reference-counted) and can be
/// run any number of times against any [`ByteSource`].
///
/// # Examples
///
/// ```
/// use sampcert_slang::{Interp, Sampling, SLang, SeededByteSource};
///
/// let byte: SLang<u8> = Sampling::uniform_byte();
/// let mut src = SeededByteSource::new(1);
/// let a = byte.run(&mut src);
/// let b = byte.run(&mut src);
/// // Two independent draws from the same program.
/// let _ = (a, b);
/// ```
pub struct SLang<T>(Arc<dyn Fn(&mut dyn ByteSource) -> T + Send + Sync>);

impl<T> Clone for SLang<T> {
    fn clone(&self) -> Self {
        SLang(Arc::clone(&self.0))
    }
}

impl<T: Value> SLang<T> {
    /// Wraps a raw sampling function.
    ///
    /// This is the lowering hook for alternative execution backends (the
    /// analogue of calling external C++ from Lean): the hand-fused `u128`
    /// samplers and the bytecode-compiled tier in `sampcert-samplers` are
    /// both functions of this shape, admitted on the strength of their
    /// byte-stream equality with the operator-built program. A backend that
    /// draws many bytes at once should consume them through
    /// [`ByteSource::fill`], whose contract guarantees the stream is
    /// identical to per-byte draws. Library code should prefer the four
    /// primitive operators.
    pub fn from_fn(f: impl Fn(&mut dyn ByteSource) -> T + Send + Sync + 'static) -> Self {
        SLang(Arc::new(f))
    }

    /// Draws one sample.
    pub fn run(&self, src: &mut dyn ByteSource) -> T {
        (self.0)(src)
    }

    /// Draws `n` independent samples, appending them to `out`.
    ///
    /// The allocation-aware batch primitive: the program (and its closure
    /// tree) is walked per draw exactly as [`run`](Self::run) does, but the
    /// output buffer is reserved once up front and can be reused across
    /// batches, and the whole batch draws through the single reborrowed
    /// byte cursor instead of re-entering the serving loop per sample. The
    /// consumed byte stream is identical to `n` sequential `run` calls
    /// (pinned by tests), so batching is distribution- and
    /// entropy-invariant.
    ///
    /// Pair a byte-hungry batch with a block-buffered source so refills
    /// amortize across the batch as well:
    /// [`OsByteSource`](crate::OsByteSource)/[`SeededByteSource`](crate::SeededByteSource)
    /// already are, and a custom source with a block-efficient
    /// [`ByteSource::fill`] can be fronted by
    /// [`BufferedByteSource`](crate::BufferedByteSource).
    ///
    /// # Examples
    ///
    /// ```
    /// use sampcert_slang::{Interp, Sampling, SLang, SeededByteSource};
    ///
    /// let byte: SLang<u8> = Sampling::uniform_byte();
    /// let mut src = SeededByteSource::new(0);
    /// let mut buf = Vec::new();
    /// byte.run_into(512, &mut src, &mut buf); // serving loop, batch 1
    /// buf.clear();
    /// byte.run_into(512, &mut src, &mut buf); // batch 2, buffer reused
    /// assert_eq!(buf.len(), 512);
    /// ```
    pub fn run_into(&self, n: usize, src: &mut dyn ByteSource, out: &mut Vec<T>) {
        out.reserve(n);
        for _ in 0..n {
            out.push((self.0)(src));
        }
    }

    /// Draws `n` independent samples.
    ///
    /// Convenience wrapper over [`run_into`](Self::run_into) that allocates
    /// a fresh, exactly-sized buffer; serving loops that draw batch after
    /// batch should call `run_into` with a retained buffer instead.
    ///
    /// # Examples
    ///
    /// ```
    /// use sampcert_slang::{until, Interp, Sampling, SeededByteSource};
    ///
    /// // A die by rejection, drawn 100 times through one program walk.
    /// let die = until::<Sampling, _>(
    ///     Sampling::map(Sampling::uniform_byte(), |b| b & 7),
    ///     |&v| v < 6,
    /// );
    /// let mut src = SeededByteSource::new(3);
    /// let rolls = die.sample_many(100, &mut src);
    /// assert_eq!(rolls.len(), 100);
    /// assert!(rolls.iter().all(|&r| r < 6));
    /// ```
    pub fn sample_many(&self, n: usize, src: &mut dyn ByteSource) -> Vec<T> {
        let mut out = Vec::new();
        self.run_into(n, src, &mut out);
        out
    }
}

/// The executable interpreter (marker type).
///
/// `Sampling::Repr<T> = SLang<T>`; see the module-level docs above.
#[derive(Debug, Clone, Copy)]
pub struct Sampling;

impl Interp for Sampling {
    type Repr<T: Value> = SLang<T>;

    fn pure<T: Value>(v: T) -> SLang<T> {
        SLang(Arc::new(move |_| v.clone()))
    }

    fn bind<T: Value, U: Value>(
        m: SLang<T>,
        f: impl Fn(&T) -> SLang<U> + Send + Sync + 'static,
    ) -> SLang<U> {
        SLang(Arc::new(move |src| {
            let t = m.run(src);
            f(&t).run(src)
        }))
    }

    fn uniform_byte() -> SLang<u8> {
        SLang(Arc::new(|src| src.next_byte()))
    }

    fn while_loop<S: Value>(
        cond: impl Fn(&S) -> bool + Send + Sync + 'static,
        body: impl Fn(&S) -> SLang<S> + Send + Sync + 'static,
        init: SLang<S>,
    ) -> SLang<S> {
        SLang(Arc::new(move |src| {
            let mut s = init.run(src);
            while cond(&s) {
                s = body(&s).run(src);
            }
            s
        }))
    }

    /// Fused map: runs `m` and applies `f` directly, without constructing
    /// the intermediate `pure` program the default derivation allocates on
    /// every draw. Same byte stream, same outputs.
    fn map<T: Value, U: Value>(
        m: SLang<T>,
        f: impl Fn(&T) -> U + Send + Sync + 'static,
    ) -> SLang<U> {
        SLang(Arc::new(move |src| f(&m.run(src))))
    }

    /// Fused replicate: runs `m` `n` times into one pre-sized buffer.
    ///
    /// The default bind/map fold denotes the same function but clones the
    /// accumulated prefix at every element — O(n²) time and allocation
    /// *per draw*. Here each draw does one allocation and O(1) amortized
    /// work per element. `m` still runs exactly `n` times in order, so the
    /// byte stream is unchanged (pinned against the fold by tests).
    fn replicate<T: Value>(n: usize, m: SLang<T>) -> SLang<Vec<T>> {
        SLang(Arc::new(move |src| {
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(m.run(src));
            }
            out
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{map, pair, replicate, until};
    use crate::source::{CountingByteSource, CyclicByteSource, SeededByteSource};

    #[test]
    fn pure_ignores_randomness() {
        let p: SLang<u32> = Sampling::pure(17);
        let mut src = CyclicByteSource::new(vec![0xAB]);
        assert_eq!(p.run(&mut src), 17);
    }

    #[test]
    fn uniform_byte_reads_one_byte() {
        let p: SLang<u8> = Sampling::uniform_byte();
        let mut src = CyclicByteSource::new(vec![42, 43]);
        assert_eq!(p.run(&mut src), 42);
        assert_eq!(p.run(&mut src), 43);
    }

    #[test]
    fn bind_sequences_left_to_right() {
        let p = Sampling::bind(Sampling::uniform_byte(), |&a| {
            map::<Sampling, _, _>(Sampling::uniform_byte(), move |&b| (a, b))
        });
        let mut src = CyclicByteSource::new(vec![1, 2, 3, 4]);
        assert_eq!(p.run(&mut src), (1, 2));
        assert_eq!(p.run(&mut src), (3, 4));
    }

    #[test]
    fn while_loop_runs_until_condition_fails() {
        // Count down from the first byte to zero, counting iterations.
        let init: SLang<(u8, u32)> = map::<Sampling, _, _>(Sampling::uniform_byte(), |&b| (b, 0));
        let p = Sampling::while_loop(
            |s: &(u8, u32)| s.0 > 0,
            |s| Sampling::pure((s.0 - 1, s.1 + 1)),
            init,
        );
        let mut src = CyclicByteSource::new(vec![5]);
        assert_eq!(p.run(&mut src), (0, 5));
    }

    #[test]
    fn until_rejects_until_predicate() {
        // Redraw bytes until we see one below 4.
        let p = until::<Sampling, _>(Sampling::uniform_byte(), |&b| b < 4);
        let mut src = CyclicByteSource::new(vec![200, 100, 3, 77]);
        assert_eq!(p.run(&mut src), 3);
        // Next run starts at 77 -> cycles to 200, 100, 3 again.
        assert_eq!(p.run(&mut src), 3);
    }

    #[test]
    fn pair_draws_independently() {
        let p = pair::<Sampling, _, _>(Sampling::uniform_byte(), Sampling::uniform_byte());
        let mut src = CyclicByteSource::new(vec![7, 9]);
        assert_eq!(p.run(&mut src), (7, 9));
    }

    #[test]
    fn replicate_collects() {
        let p = replicate::<Sampling, _>(3, Sampling::uniform_byte());
        let mut src = CyclicByteSource::new(vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(p.run(&mut src), vec![1, 2, 3]);
        assert_eq!(p.run(&mut src), vec![4, 5, 6]);
    }

    #[test]
    fn programs_are_reusable_and_cloneable() {
        let p: SLang<u8> = Sampling::uniform_byte();
        let q = p.clone();
        let mut src = SeededByteSource::new(3);
        let xs = p.sample_many(10, &mut src);
        let ys = q.sample_many(10, &mut src);
        assert_eq!(xs.len(), 10);
        assert_eq!(ys.len(), 10);
    }

    /// The batch primitive's contract: same values, same byte stream as
    /// sequential `run` calls, and the output buffer is appended to.
    #[test]
    fn run_into_matches_sequential_runs_bytewise() {
        // A byte-hungry program: rejection until a byte below 8.
        let p = until::<Sampling, _>(Sampling::uniform_byte(), |&b| b < 8);
        let mut seq_src = CountingByteSource::new(SeededByteSource::new(11));
        let seq: Vec<u8> = (0..500).map(|_| p.run(&mut seq_src)).collect();

        let mut batch_src = CountingByteSource::new(SeededByteSource::new(11));
        let mut out = vec![0xEEu8]; // pre-existing content must survive
        p.run_into(500, &mut batch_src, &mut out);
        assert_eq!(out[0], 0xEE);
        assert_eq!(&out[1..], &seq[..]);
        assert_eq!(batch_src.bytes_read(), seq_src.bytes_read());
    }

    #[test]
    fn sample_many_matches_sequential_runs_bytewise() {
        let p = replicate::<Sampling, _>(3, Sampling::uniform_byte());
        let mut seq_src = CountingByteSource::new(SeededByteSource::new(23));
        let seq: Vec<Vec<u8>> = (0..100).map(|_| p.run(&mut seq_src)).collect();
        let mut batch_src = CountingByteSource::new(SeededByteSource::new(23));
        assert_eq!(p.sample_many(100, &mut batch_src), seq);
        assert_eq!(batch_src.bytes_read(), seq_src.bytes_read());
    }

    /// `Interp::replicate` overrides must preserve the fold's byte stream
    /// and values; pin both against the legacy bind/map fold.
    #[test]
    fn replicate_matches_legacy_fold_bytewise() {
        fn legacy_fold(n: usize, m: SLang<u8>) -> SLang<Vec<u8>> {
            let mut acc: SLang<Vec<u8>> = Sampling::pure(Vec::new());
            for _ in 0..n {
                let m = m.clone();
                acc = Sampling::bind(acc, move |v| {
                    let v = v.clone();
                    map::<Sampling, _, _>(m.clone(), move |t| {
                        let mut v2 = v.clone();
                        v2.push(*t);
                        v2
                    })
                });
            }
            acc
        }
        for n in [0usize, 1, 7, 64] {
            let hot = replicate::<Sampling, _>(n, Sampling::uniform_byte());
            let reference = legacy_fold(n, Sampling::uniform_byte());
            let mut s1 = CountingByteSource::new(SeededByteSource::new(n as u64));
            let mut s2 = CountingByteSource::new(SeededByteSource::new(n as u64));
            assert_eq!(hot.run(&mut s1), reference.run(&mut s2), "values at n={n}");
            assert_eq!(s1.bytes_read(), s2.bytes_read(), "bytes at n={n}");
        }
    }

    /// Programs are shared across serving workers; the representation must
    /// stay `Send + Sync` (compile-time pin).
    #[test]
    fn programs_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SLang<u8>>();
        assert_send_sync::<SLang<Vec<i64>>>();
        // And actually usable from another thread.
        let p = until::<Sampling, _>(Sampling::uniform_byte(), |&b| b < 16);
        let handle = std::thread::spawn(move || {
            let mut src = SeededByteSource::new(1);
            p.run(&mut src)
        });
        assert!(handle.join().expect("worker panicked") < 16);
    }

    #[test]
    fn from_fn_escape_hatch() {
        let p: SLang<u16> = SLang::from_fn(|src| {
            let hi = src.next_byte() as u16;
            let lo = src.next_byte() as u16;
            (hi << 8) | lo
        });
        let mut src = CyclicByteSource::new(vec![0x12, 0x34]);
        assert_eq!(p.run(&mut src), 0x1234);
    }
}
