//! The executable interpreter: `SLang` programs as sampling procedures.
//!
//! This is the Rust analogue of the paper's extraction pipeline
//! (Section 4.1, Listings 12/20): each of the four operators becomes a
//! small closure, composed at program-construction time, that pulls bytes
//! from a [`ByteSource`] at run time. The correspondence is operator-for-
//! operator —
//!
//! | Lean/C++ FFI        | here                                  |
//! |---------------------|---------------------------------------|
//! | `prob_Pure`         | a closure returning the value         |
//! | `prob_Bind`         | run the first, apply, run the second  |
//! | `prob_UniformByte`  | `src.next_byte()`                     |
//! | `prob_While`        | a `while` loop over the state         |
//!
//! — so the trusted "compilation" step is exactly as thin as the paper's
//! 57 lines of C++.

use crate::interp::Interp;
use crate::source::ByteSource;
use crate::subpmf::Value;
use std::rc::Rc;

/// A compiled sampling procedure producing `T`.
///
/// Values of this type are cheap to clone (reference-counted) and can be
/// run any number of times against any [`ByteSource`].
///
/// # Examples
///
/// ```
/// use sampcert_slang::{Interp, Sampling, SLang, SeededByteSource};
///
/// let byte: SLang<u8> = Sampling::uniform_byte();
/// let mut src = SeededByteSource::new(1);
/// let a = byte.run(&mut src);
/// let b = byte.run(&mut src);
/// // Two independent draws from the same program.
/// let _ = (a, b);
/// ```
pub struct SLang<T>(Rc<dyn Fn(&mut dyn ByteSource) -> T>);

impl<T> Clone for SLang<T> {
    fn clone(&self) -> Self {
        SLang(Rc::clone(&self.0))
    }
}

impl<T: Value> SLang<T> {
    /// Wraps a raw sampling function.
    ///
    /// This is the escape hatch used by the hand-fused "compiled" samplers
    /// (the analogue of calling external C++ from Lean); library code should
    /// prefer the four primitive operators.
    pub fn from_fn(f: impl Fn(&mut dyn ByteSource) -> T + 'static) -> Self {
        SLang(Rc::new(f))
    }

    /// Draws one sample.
    pub fn run(&self, src: &mut dyn ByteSource) -> T {
        (self.0)(src)
    }

    /// Draws `n` independent samples.
    pub fn sample_many(&self, n: usize, src: &mut dyn ByteSource) -> Vec<T> {
        (0..n).map(|_| self.run(src)).collect()
    }
}

/// The executable interpreter (marker type).
///
/// `Sampling::Repr<T> = SLang<T>`; see the [module docs](self).
#[derive(Debug, Clone, Copy)]
pub struct Sampling;

impl Interp for Sampling {
    type Repr<T: Value> = SLang<T>;

    fn pure<T: Value>(v: T) -> SLang<T> {
        SLang(Rc::new(move |_| v.clone()))
    }

    fn bind<T: Value, U: Value>(m: SLang<T>, f: impl Fn(&T) -> SLang<U> + 'static) -> SLang<U> {
        SLang(Rc::new(move |src| {
            let t = m.run(src);
            f(&t).run(src)
        }))
    }

    fn uniform_byte() -> SLang<u8> {
        SLang(Rc::new(|src| src.next_byte()))
    }

    fn while_loop<S: Value>(
        cond: impl Fn(&S) -> bool + 'static,
        body: impl Fn(&S) -> SLang<S> + 'static,
        init: SLang<S>,
    ) -> SLang<S> {
        SLang(Rc::new(move |src| {
            let mut s = init.run(src);
            while cond(&s) {
                s = body(&s).run(src);
            }
            s
        }))
    }

    /// Fused map: runs `m` and applies `f` directly, without constructing
    /// the intermediate `pure` program the default derivation allocates on
    /// every draw. Same byte stream, same outputs.
    fn map<T: Value, U: Value>(m: SLang<T>, f: impl Fn(&T) -> U + 'static) -> SLang<U> {
        SLang(Rc::new(move |src| f(&m.run(src))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{map, pair, replicate, until};
    use crate::source::{CyclicByteSource, SeededByteSource};

    #[test]
    fn pure_ignores_randomness() {
        let p: SLang<u32> = Sampling::pure(17);
        let mut src = CyclicByteSource::new(vec![0xAB]);
        assert_eq!(p.run(&mut src), 17);
    }

    #[test]
    fn uniform_byte_reads_one_byte() {
        let p: SLang<u8> = Sampling::uniform_byte();
        let mut src = CyclicByteSource::new(vec![42, 43]);
        assert_eq!(p.run(&mut src), 42);
        assert_eq!(p.run(&mut src), 43);
    }

    #[test]
    fn bind_sequences_left_to_right() {
        let p = Sampling::bind(Sampling::uniform_byte(), |&a| {
            map::<Sampling, _, _>(Sampling::uniform_byte(), move |&b| (a, b))
        });
        let mut src = CyclicByteSource::new(vec![1, 2, 3, 4]);
        assert_eq!(p.run(&mut src), (1, 2));
        assert_eq!(p.run(&mut src), (3, 4));
    }

    #[test]
    fn while_loop_runs_until_condition_fails() {
        // Count down from the first byte to zero, counting iterations.
        let init: SLang<(u8, u32)> = map::<Sampling, _, _>(Sampling::uniform_byte(), |&b| (b, 0));
        let p = Sampling::while_loop(
            |s: &(u8, u32)| s.0 > 0,
            |s| Sampling::pure((s.0 - 1, s.1 + 1)),
            init,
        );
        let mut src = CyclicByteSource::new(vec![5]);
        assert_eq!(p.run(&mut src), (0, 5));
    }

    #[test]
    fn until_rejects_until_predicate() {
        // Redraw bytes until we see one below 4.
        let p = until::<Sampling, _>(Sampling::uniform_byte(), |&b| b < 4);
        let mut src = CyclicByteSource::new(vec![200, 100, 3, 77]);
        assert_eq!(p.run(&mut src), 3);
        // Next run starts at 77 -> cycles to 200, 100, 3 again.
        assert_eq!(p.run(&mut src), 3);
    }

    #[test]
    fn pair_draws_independently() {
        let p = pair::<Sampling, _, _>(Sampling::uniform_byte(), Sampling::uniform_byte());
        let mut src = CyclicByteSource::new(vec![7, 9]);
        assert_eq!(p.run(&mut src), (7, 9));
    }

    #[test]
    fn replicate_collects() {
        let p = replicate::<Sampling, _>(3, Sampling::uniform_byte());
        let mut src = CyclicByteSource::new(vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(p.run(&mut src), vec![1, 2, 3]);
        assert_eq!(p.run(&mut src), vec![4, 5, 6]);
    }

    #[test]
    fn programs_are_reusable_and_cloneable() {
        let p: SLang<u8> = Sampling::uniform_byte();
        let q = p.clone();
        let mut src = SeededByteSource::new(3);
        let xs = p.sample_many(10, &mut src);
        let ys = q.sample_many(10, &mut src);
        assert_eq!(xs.len(), 10);
        assert_eq!(ys.len(), 10);
    }

    #[test]
    fn from_fn_escape_hatch() {
        let p: SLang<u16> = SLang::from_fn(|src| {
            let hi = src.next_byte() as u16;
            let lo = src.next_byte() as u16;
            (hi << 8) | lo
        });
        let mut src = CyclicByteSource::new(vec![0x12, 0x34]);
        assert_eq!(p.run(&mut src), 0x1234);
    }
}
