//! # sampcert-slang
//!
//! `SLang`: the paper's four-operator probabilistic programming language
//! (Fig. 3 of *Verified Foundations for Differential Privacy*, PLDI 2025),
//! reproduced as a tagless-final embedding with two interpreters:
//!
//! - [`Sampling`] — executable: programs become closures pulling bytes from
//!   a [`ByteSource`] (the analogue of the paper's Lean→C++ extraction,
//!   Listing 12);
//! - [`Mass`] — denotational: programs become unnormalized mass functions
//!   ([`SubPmf`]) over their result type, with loops interpreted by the
//!   `probWhileCut` truncation semantics and its supremum (Section 3.1).
//!
//! Writing a sampler once, generically over [`Interp`], and holding its two
//! interpretations against each other (and against closed-form PMFs) is
//! this reproduction's executable substitute for the paper's Lean proofs:
//! the *same* program text that runs in production is the one analyzed.
//!
//! ## Example
//!
//! ```
//! use sampcert_slang::*;
//!
//! /// A uniform sample from {0, 1, 2} by rejection — written once.
//! fn die<I: Interp>() -> I::Repr<u8> {
//!     until::<I, _>(
//!         map::<I, _, _>(I::uniform_byte(), |b| b & 3),
//!         |&v| v < 3,
//!     )
//! }
//!
//! // Run it:
//! let mut src = SeededByteSource::new(0);
//! let v = die::<Sampling>().run(&mut src);
//! assert!(v < 3);
//!
//! // Analyze it (exact limit of loop cuts):
//! let d = eval_to_stability(&die::<Mass<f64>>(), 8, 1 << 12, 1e-12)
//!     .expect("stabilizes")
//!     .dist;
//! assert!((d.mass(&0) - 1.0 / 3.0).abs() < 1e-9);
//! ```

mod interp;
mod mass;
mod sampling;
mod source;
mod subpmf;
mod weight;

pub use interp::{map, pair, replicate, until, Interp};
pub use mass::{
    cut_curve, cuts_are_monotone, eval_to_stability, Mass, MassCtx, MassFn, StableEval,
};
pub use sampling::{SLang, Sampling};
pub use source::{
    BufferedByteSource, ByteSource, CountingByteSource, CyclicByteSource, OsByteSource,
    SeededByteSource, SplitSeed,
};
pub use subpmf::{SubPmf, Value};
pub use weight::Weight;
