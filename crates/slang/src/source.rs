//! Sources of uniformly random bytes.
//!
//! In SampCert, the *only* trusted randomness primitive is
//! `probUniformByte`, implemented in 5 lines of C++ that read one byte from
//! `/dev/urandom` (paper, Listing 12). Everything above that primitive —
//! uniform integers, Bernoulli trials, Laplace and Gaussian noise — is
//! verified library code. This module reproduces that trust boundary as the
//! [`ByteSource`] trait: one method yielding a uniform byte.
//!
//! Implementations:
//! - [`OsByteSource`]: operating-system entropy (the deployment source),
//! - [`SeededByteSource`]: deterministic PRG bytes for reproducible tests,
//! - [`SplitSeed`]: a splittable root seed deriving pairwise independent,
//!   replayable per-worker streams — the deterministic backend of the
//!   concurrent serving layer,
//! - [`CountingByteSource`]: a wrapper that counts consumed bytes, used to
//!   regenerate Fig. 6 of the paper (entropy consumption of the samplers),
//! - [`CyclicByteSource`]: replays a fixed script, for unit-testing exact
//!   byte-level behaviour of the samplers,
//! - [`BufferedByteSource`]: a locally-buffered cursor over any other
//!   source, amortizing per-call overhead across batched draws.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// A source of independent, uniformly distributed bytes.
///
/// This is the entire trusted computing base of the sampling pipeline: all
/// samplers consume randomness exclusively through [`next_byte`], mirroring
/// the paper's `probUniformByte` FFI primitive.
///
/// [`next_byte`]: ByteSource::next_byte
pub trait ByteSource {
    /// Returns the next uniform byte.
    fn next_byte(&mut self) -> u8;

    /// Fills `out` with the next `out.len()` bytes of the stream.
    ///
    /// Semantically this **is** `out.len()` calls to
    /// [`next_byte`](Self::next_byte) — the default does exactly that, and
    /// any override must deliver the identical stream (pinned by tests for
    /// the built-in sources). Overriding lets a source serve whole blocks
    /// without per-byte dispatch ([`OsByteSource`]/[`SeededByteSource`]
    /// copy straight out of their internal buffers), which is what makes
    /// the [`BufferedByteSource`] batch cursor an actual amortization
    /// rather than a pass-through.
    fn fill(&mut self, out: &mut [u8]) {
        for b in out.iter_mut() {
            *b = self.next_byte();
        }
    }
}

impl<S: ByteSource + ?Sized> ByteSource for &mut S {
    fn next_byte(&mut self) -> u8 {
        (**self).next_byte()
    }

    fn fill(&mut self, out: &mut [u8]) {
        (**self).fill(out);
    }
}

impl<S: ByteSource + ?Sized> ByteSource for Box<S> {
    fn next_byte(&mut self) -> u8 {
        (**self).next_byte()
    }

    fn fill(&mut self, out: &mut [u8]) {
        (**self).fill(out);
    }
}

/// Copies from a `[u8; BUF_LEN]`-backed PRG buffer into `out`, refilling
/// from `refill` as blocks run out — the shared `fill` override of
/// [`OsByteSource`] and [`SeededByteSource`]. Delivers exactly the bytes
/// the per-byte path would.
fn fill_from_buffered(
    buf: &mut [u8; BUF_LEN],
    pos: &mut usize,
    out: &mut [u8],
    mut refill: impl FnMut(&mut [u8; BUF_LEN]),
) {
    let mut done = 0;
    while done < out.len() {
        if *pos == BUF_LEN {
            refill(buf);
            *pos = 0;
        }
        let take = (BUF_LEN - *pos).min(out.len() - done);
        out[done..done + take].copy_from_slice(&buf[*pos..*pos + take]);
        *pos += take;
        done += take;
    }
}

const BUF_LEN: usize = 4096;

/// Operating-system entropy, buffered.
///
/// The analogue of the paper's `/dev/urandom` read: a cryptographically
/// secure generator seeded from OS entropy, refilled in blocks so that
/// per-byte cost stays small (the C++ FFI reads one byte per call; we batch
/// for throughput without changing the distribution).
///
/// # Examples
///
/// ```
/// use sampcert_slang::{ByteSource, OsByteSource};
/// let mut src = OsByteSource::new();
/// let _b: u8 = src.next_byte();
/// ```
#[derive(Debug)]
pub struct OsByteSource {
    rng: StdRng,
    buf: [u8; BUF_LEN],
    pos: usize,
}

impl OsByteSource {
    /// Creates a source seeded from operating-system entropy.
    pub fn new() -> Self {
        OsByteSource {
            rng: StdRng::from_entropy(),
            buf: [0; BUF_LEN],
            pos: BUF_LEN,
        }
    }
}

impl Default for OsByteSource {
    fn default() -> Self {
        Self::new()
    }
}

impl ByteSource for OsByteSource {
    fn next_byte(&mut self) -> u8 {
        if self.pos == BUF_LEN {
            self.rng.fill_bytes(&mut self.buf);
            self.pos = 0;
        }
        let b = self.buf[self.pos];
        self.pos += 1;
        b
    }

    fn fill(&mut self, out: &mut [u8]) {
        let rng = &mut self.rng;
        fill_from_buffered(&mut self.buf, &mut self.pos, out, |buf| rng.fill_bytes(buf));
    }
}

/// Deterministic pseudorandom bytes from a fixed seed.
///
/// Used throughout the test suite so that statistical checks are
/// reproducible run-to-run.
///
/// # Examples
///
/// ```
/// use sampcert_slang::{ByteSource, SeededByteSource};
/// let mut a = SeededByteSource::new(7);
/// let mut b = SeededByteSource::new(7);
/// assert_eq!(a.next_byte(), b.next_byte());
/// ```
#[derive(Debug)]
pub struct SeededByteSource {
    rng: StdRng,
    buf: [u8; BUF_LEN],
    pos: usize,
}

impl SeededByteSource {
    /// Creates a deterministic source from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SeededByteSource {
            rng: StdRng::seed_from_u64(seed),
            buf: [0; BUF_LEN],
            pos: BUF_LEN,
        }
    }
}

impl ByteSource for SeededByteSource {
    fn next_byte(&mut self) -> u8 {
        if self.pos == BUF_LEN {
            self.rng.fill_bytes(&mut self.buf);
            self.pos = 0;
        }
        let b = self.buf[self.pos];
        self.pos += 1;
        b
    }

    fn fill(&mut self, out: &mut [u8]) {
        let rng = &mut self.rng;
        fill_from_buffered(&mut self.buf, &mut self.pos, out, |buf| rng.fill_bytes(buf));
    }
}

/// Wraps another source and counts the bytes drawn through it.
///
/// This regenerates the measurement of the paper's Fig. 6: the average
/// number of random bytes the discrete Gaussian sampler consumes as a
/// function of σ, with its characteristic jumps at powers of two.
///
/// # Examples
///
/// ```
/// use sampcert_slang::{ByteSource, CountingByteSource, SeededByteSource};
/// let mut src = CountingByteSource::new(SeededByteSource::new(0));
/// src.next_byte();
/// src.next_byte();
/// assert_eq!(src.bytes_read(), 2);
/// src.reset_count();
/// assert_eq!(src.bytes_read(), 0);
/// ```
#[derive(Debug)]
pub struct CountingByteSource<S> {
    inner: S,
    count: u64,
}

impl<S: ByteSource> CountingByteSource<S> {
    /// Wraps `inner`, starting the count at zero.
    pub fn new(inner: S) -> Self {
        CountingByteSource { inner, count: 0 }
    }

    /// Number of bytes drawn since construction or the last reset.
    pub fn bytes_read(&self) -> u64 {
        self.count
    }

    /// Resets the byte counter to zero.
    pub fn reset_count(&mut self) {
        self.count = 0;
    }

    /// Returns the wrapped source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: ByteSource> ByteSource for CountingByteSource<S> {
    fn next_byte(&mut self) -> u8 {
        self.count += 1;
        self.inner.next_byte()
    }

    fn fill(&mut self, out: &mut [u8]) {
        self.count += out.len() as u64;
        self.inner.fill(out);
    }
}

/// A locally-buffered byte cursor over any other source.
///
/// Batched serving (`SLang::run_into`, the `*_many` samplers) draws many
/// bytes back-to-back through a `&mut dyn ByteSource`; this cursor turns
/// that per-byte virtual dispatch into one [`ByteSource::fill`] call per
/// block on the inner source. The amortization is real exactly when the
/// inner source's `fill` is block-efficient — the built-in PRG sources
/// override it with buffer copies, and a custom FFI/syscall-backed source
/// should override it with its native block read. For a source that only
/// implements `next_byte` (inheriting the default per-byte `fill`), the
/// cursor is a pass-through with an extra copy — wrap nothing you haven't
/// given a real `fill`.
///
/// The *delivered* byte stream is identical to reading the inner source
/// directly — bytes come out in order, none are dropped — so wrapping is
/// distribution-invariant. The inner source, however, is consumed in
/// blocks: up to one block of prefetched bytes is discarded on drop, so
/// do not wrap metered or entropy-limited sources (or a
/// [`CountingByteSource`] whose count you want per-draw-exact).
///
/// # Examples
///
/// ```
/// use sampcert_slang::{BufferedByteSource, ByteSource, CyclicByteSource};
/// let mut direct = CyclicByteSource::new(vec![1, 2, 3]);
/// let mut buffered = BufferedByteSource::new(CyclicByteSource::new(vec![1, 2, 3]));
/// for _ in 0..10 {
///     assert_eq!(buffered.next_byte(), direct.next_byte());
/// }
/// ```
#[derive(Debug)]
pub struct BufferedByteSource<S> {
    inner: S,
    buf: Vec<u8>,
    pos: usize,
}

impl<S: ByteSource> BufferedByteSource<S> {
    /// Wraps `inner` with the default block size (4096 bytes).
    pub fn new(inner: S) -> Self {
        Self::with_block(inner, BUF_LEN)
    }

    /// Wraps `inner`, refilling `block` bytes at a time.
    ///
    /// # Panics
    ///
    /// Panics if `block` is zero.
    pub fn with_block(inner: S, block: usize) -> Self {
        assert!(block > 0, "BufferedByteSource: zero block size");
        BufferedByteSource {
            inner,
            buf: vec![0; block],
            pos: block,
        }
    }

    /// Returns the wrapped source, discarding any prefetched bytes.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: ByteSource> ByteSource for BufferedByteSource<S> {
    fn next_byte(&mut self) -> u8 {
        if self.pos == self.buf.len() {
            self.inner.fill(&mut self.buf);
            self.pos = 0;
        }
        let b = self.buf[self.pos];
        self.pos += 1;
        b
    }
}

/// SplitMix64 finalizer: a bijective avalanche mix on `u64`.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A splittable deterministic seed: the root of a tree of pairwise
/// distinct, statistically independent byte streams.
///
/// Concurrent serving needs one independent randomness stream per worker
/// thread. OS entropy gives that trivially but is not replayable; a single
/// shared deterministic source is replayable but cannot be consumed from
/// several threads without serializing them (and the interleaving would
/// depend on scheduling anyway). `SplitSeed` is the deterministic backend
/// that squares the two: worker `i` derives its own
/// [`SeededByteSource`] as a pure function of `(root seed, i)`, so
///
/// - streams for different worker indices are **pairwise distinct** (the
///   derivation is injective in the index — a bijective SplitMix64
///   finalizer over an injective affine map) and decorrelated by two
///   avalanche rounds;
/// - a run is **replayable**: the same root seed and worker index always
///   yield the identical byte stream, regardless of how many other
///   workers exist or how the scheduler interleaves them.
///
/// Nested fan-out (a worker pool inside a worker pool) uses
/// [`child`](Self::child) to derive an independent sub-root per branch.
///
/// # Examples
///
/// ```
/// use sampcert_slang::{ByteSource, SplitSeed};
/// let root = SplitSeed::new(42);
/// let mut w0 = root.stream(0);
/// let mut w1 = root.stream(1);
/// // Independent streams...
/// assert_ne!(
///     (0..16).map(|_| w0.next_byte()).collect::<Vec<_>>(),
///     (0..16).map(|_| w1.next_byte()).collect::<Vec<_>>(),
/// );
/// // ...and replayable: re-deriving worker 0 restarts its exact stream.
/// let mut w0_again = SplitSeed::new(42).stream(0);
/// let mut w0_fresh = root.stream(0);
/// for _ in 0..16 {
///     assert_eq!(w0_again.next_byte(), w0_fresh.next_byte());
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitSeed {
    state: u64,
}

impl SplitSeed {
    /// Creates the root seed of a stream tree.
    pub fn new(seed: u64) -> Self {
        SplitSeed {
            state: mix64(seed ^ 0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Derives the deterministic byte stream for worker `index`.
    ///
    /// A pure function of `(self, index)`: distinct indices yield distinct
    /// streams, and the same pair always yields the same stream.
    pub fn stream(&self, index: u64) -> SeededByteSource {
        SeededByteSource::new(self.derive(index))
    }

    /// Derives an independent sub-root for branch `index`, for nested
    /// fan-out. `child(i).stream(j)` and `stream(k)` are decorrelated for
    /// all `i, j, k`.
    pub fn child(&self, index: u64) -> SplitSeed {
        SplitSeed {
            // A distinct tweak keeps the child-root derivation chain
            // disjoint from the leaf-stream derivation chain.
            state: mix64(self.derive(index) ^ 0x2545_F491_4F6C_DD1D),
        }
    }

    /// The `u64` the stream for `index` is seeded with — injective in
    /// `index` for a fixed root.
    fn derive(&self, index: u64) -> u64 {
        mix64(self.state.wrapping_add(mix64(
            index.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1),
        )))
    }
}

/// Replays a fixed byte script, cycling when exhausted.
///
/// Unit tests use this to pin down the exact byte-level behaviour of a
/// sampler (e.g. "given these bytes, rejection sampling retries once").
///
/// # Examples
///
/// ```
/// use sampcert_slang::{ByteSource, CyclicByteSource};
/// let mut src = CyclicByteSource::new(vec![1, 2]);
/// assert_eq!([src.next_byte(), src.next_byte(), src.next_byte()], [1, 2, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct CyclicByteSource {
    script: Vec<u8>,
    pos: usize,
}

impl CyclicByteSource {
    /// Creates a source that replays `script` forever.
    ///
    /// # Panics
    ///
    /// Panics if `script` is empty.
    pub fn new(script: Vec<u8>) -> Self {
        assert!(!script.is_empty(), "empty byte script");
        CyclicByteSource { script, pos: 0 }
    }
}

impl ByteSource for CyclicByteSource {
    fn next_byte(&mut self) -> u8 {
        let b = self.script[self.pos];
        self.pos = (self.pos + 1) % self.script.len();
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = SeededByteSource::new(42);
        let mut b = SeededByteSource::new(42);
        let va: Vec<u8> = (0..1000).map(|_| a.next_byte()).collect();
        let vb: Vec<u8> = (0..1000).map(|_| b.next_byte()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn seeded_differs_across_seeds() {
        let mut a = SeededByteSource::new(1);
        let mut b = SeededByteSource::new(2);
        let va: Vec<u8> = (0..64).map(|_| a.next_byte()).collect();
        let vb: Vec<u8> = (0..64).map(|_| b.next_byte()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn counting_counts() {
        let mut src = CountingByteSource::new(CyclicByteSource::new(vec![9]));
        for _ in 0..17 {
            src.next_byte();
        }
        assert_eq!(src.bytes_read(), 17);
        src.reset_count();
        assert_eq!(src.bytes_read(), 0);
        src.next_byte();
        assert_eq!(src.bytes_read(), 1);
    }

    #[test]
    fn cyclic_replays() {
        let mut src = CyclicByteSource::new(vec![3, 1, 4]);
        let got: Vec<u8> = (0..7).map(|_| src.next_byte()).collect();
        assert_eq!(got, vec![3, 1, 4, 3, 1, 4, 3]);
    }

    #[test]
    #[should_panic(expected = "empty byte script")]
    fn cyclic_rejects_empty() {
        let _ = CyclicByteSource::new(Vec::new());
    }

    #[test]
    fn os_source_smoke() {
        // Not a statistical test, just liveness: bytes come out and are not
        // all identical over a long stretch.
        let mut src = OsByteSource::new();
        let v: Vec<u8> = (0..4096 + 16).map(|_| src.next_byte()).collect();
        assert!(v.windows(2).any(|w| w[0] != w[1]));
    }

    /// `fill` overrides must deliver exactly the per-byte stream.
    #[test]
    fn fill_matches_per_byte_stream() {
        let mut filled = SeededByteSource::new(5);
        let mut stepped = SeededByteSource::new(5);
        // Crosses several internal refill boundaries, with odd offsets.
        for chunk in [3usize, BUF_LEN - 1, 1, 2 * BUF_LEN, 17] {
            let mut out = vec![0u8; chunk];
            filled.fill(&mut out);
            for (i, &x) in out.iter().enumerate() {
                assert_eq!(x, stepped.next_byte(), "byte {i} of chunk {chunk}");
            }
        }
    }

    #[test]
    fn counting_counts_fills() {
        let mut src = CountingByteSource::new(SeededByteSource::new(0));
        let mut out = [0u8; 37];
        src.fill(&mut out);
        src.next_byte();
        assert_eq!(src.bytes_read(), 38);
    }

    #[test]
    fn buffered_delivers_identical_stream() {
        let mut direct = SeededByteSource::new(77);
        let mut buffered = BufferedByteSource::with_block(SeededByteSource::new(77), 64);
        for i in 0..1000 {
            assert_eq!(buffered.next_byte(), direct.next_byte(), "byte {i}");
        }
    }

    #[test]
    fn buffered_refills_in_blocks() {
        let mut src = BufferedByteSource::with_block(
            CountingByteSource::new(CyclicByteSource::new(vec![9])),
            16,
        );
        src.next_byte();
        assert_eq!(src.into_inner().bytes_read(), 16);
    }

    #[test]
    #[should_panic(expected = "zero block size")]
    fn buffered_rejects_zero_block() {
        let _ = BufferedByteSource::with_block(CyclicByteSource::new(vec![1]), 0);
    }

    /// The serving layer moves sources into worker threads; every built-in
    /// source must stay `Send` (compile-time pin).
    #[test]
    fn sources_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<OsByteSource>();
        assert_send::<SeededByteSource>();
        assert_send::<CyclicByteSource>();
        assert_send::<CountingByteSource<SeededByteSource>>();
        assert_send::<BufferedByteSource<OsByteSource>>();
        assert_send::<SplitSeed>();
    }

    #[test]
    fn split_seed_streams_are_pairwise_distinct() {
        let root = SplitSeed::new(7);
        let prefixes: Vec<Vec<u8>> = (0..32)
            .map(|i| {
                let mut s = root.stream(i);
                (0..32).map(|_| s.next_byte()).collect()
            })
            .collect();
        for i in 0..prefixes.len() {
            for j in i + 1..prefixes.len() {
                assert_ne!(prefixes[i], prefixes[j], "workers {i} and {j} collide");
            }
        }
    }

    #[test]
    fn split_seed_streams_replay() {
        let a: Vec<u8> = {
            let mut s = SplitSeed::new(99).stream(5);
            (0..256).map(|_| s.next_byte()).collect()
        };
        let b: Vec<u8> = {
            let mut s = SplitSeed::new(99).stream(5);
            (0..256).map(|_| s.next_byte()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn split_seed_children_decorrelate_from_leaves() {
        let root = SplitSeed::new(3);
        let mut leaf = root.stream(0);
        let mut child_leaf = root.child(0).stream(0);
        let a: Vec<u8> = (0..32).map(|_| leaf.next_byte()).collect();
        let b: Vec<u8> = (0..32).map(|_| child_leaf.next_byte()).collect();
        assert_ne!(a, b);
        assert_ne!(root.child(0), root.child(1));
    }

    #[test]
    fn trait_object_usable() {
        let mut concrete = SeededByteSource::new(5);
        let dyn_src: &mut dyn ByteSource = &mut concrete;
        let via_reborrow: &mut dyn ByteSource = dyn_src;
        let _ = via_reborrow.next_byte();
    }
}
