//! The `SLang` language: four operators, interpreted two ways.
//!
//! The paper defines `SLang` as a shallowly-embedded monadic DSL with
//! exactly four primitive terms (Fig. 3):
//!
//! | paper             | here                     |
//! |-------------------|--------------------------|
//! | `probPure`        | [`Interp::pure`]         |
//! | `probBind`        | [`Interp::bind`]         |
//! | `probUniformByte` | [`Interp::uniform_byte`] |
//! | `probWhile`       | [`Interp::while_loop`]   |
//!
//! In Lean, one shallow embedding serves both proof (mass-function
//! semantics) and execution (FFI extraction). In Rust we achieve the same
//! single-source-of-truth with a *tagless-final* encoding: a program is a
//! generic function over an interpreter `I: Interp`, and the two
//! interpreters are [`Sampling`](crate::Sampling) (executable, drives a
//! [`ByteSource`](crate::ByteSource)) and [`Mass`](crate::Mass) (exact
//! unnormalized mass functions, the paper's Eq. (2)/(3) and the
//! `probWhileCut` truncation semantics).
//!
//! # Example: a fair coin from a uniform byte
//!
//! ```
//! use sampcert_slang::{Interp, Mass, MassCtx, Sampling, SeededByteSource};
//!
//! fn coin<I: Interp>() -> I::Repr<bool> {
//!     I::bind(I::uniform_byte(), |b| I::pure(b & 1 == 1))
//! }
//!
//! // Executable semantics:
//! let mut src = SeededByteSource::new(0);
//! let _flip: bool = coin::<Sampling>().run(&mut src);
//!
//! // Denotational semantics — exactly one half each:
//! let d = coin::<Mass<f64>>().eval(&MassCtx::new(1));
//! assert_eq!(d.mass(&true), 0.5);
//! assert_eq!(d.mass(&false), 0.5);
//! ```

use crate::subpmf::Value;

/// An interpreter for the four `SLang` operators.
///
/// Implementations provide a representation type `Repr<T>` for programs
/// producing `T`, and the four primitive constructions. Programs written
/// against this trait can be run ([`Sampling`](crate::Sampling)) or
/// analyzed exactly ([`Mass`](crate::Mass)) without duplication — the
/// reproduction of the paper's "one definition, extracted and verified".
pub trait Interp: 'static {
    /// The representation of a probabilistic computation returning `T`.
    ///
    /// Representations are `Send + Sync`: a compiled program is an
    /// immutable value, and the concurrent serving layer shares one
    /// program across a pool of worker threads (each drawing from its own
    /// [`ByteSource`](crate::ByteSource)). The closure arguments below
    /// carry the same bounds because representations capture them.
    type Repr<T: Value>: Clone + Send + Sync;

    /// `probPure v`: the point-mass program.
    fn pure<T: Value>(v: T) -> Self::Repr<T>;

    /// `probBind m f`: sequencing.
    fn bind<T: Value, U: Value>(
        m: Self::Repr<T>,
        f: impl Fn(&T) -> Self::Repr<U> + Send + Sync + 'static,
    ) -> Self::Repr<U>;

    /// `probUniformByte`: one uniformly random byte.
    fn uniform_byte() -> Self::Repr<u8>;

    /// `probWhile cond body init`: iterate `body` from `init` while `cond`
    /// holds.
    ///
    /// The executable semantics runs the loop directly; the mass semantics
    /// is the supremum over the `probWhileCut` truncations (approximated at
    /// a finite, checkable fuel).
    fn while_loop<S: Value>(
        cond: impl Fn(&S) -> bool + Send + Sync + 'static,
        body: impl Fn(&S) -> Self::Repr<S> + Send + Sync + 'static,
        init: Self::Repr<S>,
    ) -> Self::Repr<S>;

    /// Functorial map. **Derived**, not a fifth primitive: the default is
    /// exactly `bind m (pure ∘ f)`, and any override must denote the same
    /// function — interpreters may only fuse away the intermediate
    /// `pure` program construction (the [`Sampling`](crate::Sampling)
    /// override saves one closure allocation per map node per draw, which
    /// the sampler loops hit on every iteration).
    fn map<T: Value, U: Value>(
        m: Self::Repr<T>,
        f: impl Fn(&T) -> U + Send + Sync + 'static,
    ) -> Self::Repr<U> {
        Self::bind(m, move |t| Self::pure(f(t)))
    }

    /// Sequences `m` `n` times, collecting the results in draw order.
    /// **Derived**, like [`map`](Self::map): the default is the left fold
    /// of `bind`/`map` that appends one element per step, and any override
    /// must denote the same function — `m` run exactly `n` times, in
    /// order, against the same byte stream. Interpreters may only fuse
    /// away the intermediate accumulator programs (the
    /// [`Sampling`](crate::Sampling) override collects into one pre-sized
    /// buffer, O(1) amortized per element per draw, where the fold clones
    /// the accumulated prefix at every element — O(n²) per draw).
    fn replicate<T: Value>(n: usize, m: Self::Repr<T>) -> Self::Repr<Vec<T>> {
        let mut acc: Self::Repr<Vec<T>> = Self::pure(Vec::new());
        for _ in 0..n {
            let m = m.clone();
            acc = Self::bind(acc, move |v| {
                let v = v.clone();
                Self::map(m.clone(), move |t| {
                    let mut v2 = v.clone();
                    v2.push(t.clone());
                    v2
                })
            });
        }
        acc
    }
}

/// Functorial map, derived from `bind` and `pure`.
///
/// ```
/// use sampcert_slang::{map, Interp, Mass, MassCtx};
/// let doubled = map::<Mass, _, _>(Mass::<f64>::uniform_byte(), |b| (*b as u16) * 2);
/// assert_eq!(doubled.eval(&MassCtx::new(1)).mass(&510), 1.0 / 256.0);
/// ```
pub fn map<I: Interp, T: Value, U: Value>(
    m: I::Repr<T>,
    f: impl Fn(&T) -> U + Send + Sync + 'static,
) -> I::Repr<U> {
    I::map(m, f)
}

/// `probUntil body cond`: rejection sampling — repeat `body` until the
/// result satisfies `cond` (paper, Section 3.2.2).
///
/// Defined, as in the paper, by running `body` once and then looping
/// `body` while the condition fails.
pub fn until<I: Interp, T: Value>(
    body: I::Repr<T>,
    cond: impl Fn(&T) -> bool + Send + Sync + 'static,
) -> I::Repr<T> {
    let again = body.clone();
    I::while_loop(move |t| !cond(t), move |_| again.clone(), body)
}

/// Pairs two independent computations.
pub fn pair<I: Interp, T: Value, U: Value>(a: I::Repr<T>, b: I::Repr<U>) -> I::Repr<(T, U)> {
    I::bind(a, move |t| {
        let t = t.clone();
        map::<I, _, _>(b.clone(), move |u| (t.clone(), u.clone()))
    })
}

/// Sequences a computation `n` times, collecting results.
///
/// Delegates to [`Interp::replicate`], so the executable interpreter's
/// fused batch collection applies wherever this combinator is used.
pub fn replicate<I: Interp, T: Value>(n: usize, m: I::Repr<T>) -> I::Repr<Vec<T>> {
    I::replicate(n, m)
}
