//! # sampcert-mechanisms
//!
//! The differentially private mechanism library of the SampCert
//! reproduction (paper Fig. 1, top layer): noised counts, clamped sums and
//! means, abstract histograms with sequential (Section 2.3) and parallel
//! (Appendix B) composition, approximate maxima, and the sparse vector
//! technique (Appendix A).
//!
//! Everything except SVT is built *generically* over the
//! [`DpNoise`](sampcert_core::DpNoise) interface — instantiate with
//! [`PureDp`](sampcert_core::PureDp) for Laplace noise or
//! [`Zcdp`](sampcert_core::Zcdp) for Gaussian noise and the privacy
//! arithmetic follows, which is the paper's central "one proof, many
//! notions" workflow. SVT enters through the explicit assertion route, as
//! it does in the paper.
//!
//! ## Example: one histogram, two privacy notions
//!
//! ```
//! use sampcert_mechanisms::{noised_histogram, Bins};
//! use sampcert_core::{PureDp, Zcdp};
//! use sampcert_slang::SeededByteSource;
//!
//! let bins = Bins::new(4, |age: &u32| (*age as usize) / 25);
//! let pure = noised_histogram::<PureDp, u32>(&bins, 1, 1);   // ε = 1
//! let conc = noised_histogram::<Zcdp, u32>(&bins, 1, 1);     // ρ = 1/8
//!
//! let ages = vec![23, 35, 47, 61, 74, 88, 19, 42];
//! let mut src = SeededByteSource::new(1);
//! let _ = (pure.run(&ages, &mut src), conc.run(&ages, &mut src));
//! ```

mod accuracy;
mod adaptive;
mod batch;
mod histogram;
mod queries;
mod serve;
mod svt;

pub use accuracy::{
    gaussian_accuracy, gaussian_tail, laplace_accuracy, laplace_tail, pure_dp_accuracy,
};
pub use adaptive::{adaptive_mean, magnitude_bins, AdaptiveMeanRelease};
pub use batch::{answer_workload, histogram_batch, histogram_gamma, workload_request};
// The deprecated metered wrapper stays exported for migration; the
// re-export itself must not trip the deprecation lint.
#[allow(deprecated)]
pub use batch::histogram_batch_metered;
pub use histogram::{
    approx_max_bin, exact_bin_count, histogram_request, noised_bin_count, noised_histogram,
    par_noised_histogram, Bins,
};
pub use queries::{
    count_request, mean_of, mean_request, noised_bounded_sum, noised_count, noised_mean,
};
pub use serve::{NoiseServer, SeedBackend, ServeConfig};
pub use svt::{above_threshold, sparse, svt_request, SvtParams};
