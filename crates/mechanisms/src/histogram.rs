//! Differentially private histograms, generic in the privacy notion
//! (paper Section 2.3, Listings 4–7; Appendix B, Listing 19).
//!
//! The construction mirrors the paper exactly: each bin's exact count has
//! sensitivity 1 (Listing 5); noising it with arguments `(γ₁, γ₂·nBins)`
//! makes each bin `noise_priv(γ₁, γ₂·nBins)`-ADP; sequential composition
//! over the bins (plus free postprocessing to assemble the vector) yields
//! the total bound — **for any** [`DpNoise`] instance, so the same code
//! and the same budget arithmetic produce a pure-DP histogram under
//! Laplace noise and a zCDP histogram under Gaussian noise.
//!
//! The parallel variant ([`par_noised_histogram`]) uses Listing 17/19's
//! `privParComp`: rows are partitioned by bin, a neighbouring change lands
//! in exactly one partition, and the whole histogram costs `max` over bins
//! — the full per-bin budget with `1/nBins` of the sequential noise.

use sampcert_core::{DpNoise, Mechanism, Private, Query, Request};
use sampcert_slang::ByteSource;
use std::sync::Arc;

/// A binning strategy: a total function from rows to `n_bins` bins
/// (the paper's `Bins` structure).
pub struct Bins<T> {
    n_bins: usize,
    f: Arc<dyn Fn(&T) -> usize + Send + Sync>,
}

impl<T> Clone for Bins<T> {
    fn clone(&self) -> Self {
        Bins {
            n_bins: self.n_bins,
            f: Arc::clone(&self.f),
        }
    }
}

impl<T> std::fmt::Debug for Bins<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bins(n = {})", self.n_bins)
    }
}

impl<T> Bins<T> {
    /// Creates a binning strategy.
    ///
    /// # Panics
    ///
    /// Panics if `n_bins` is zero. The function's outputs are clamped into
    /// range at use sites (a defensive echo of the paper's `Fin nBins`
    /// codomain, which makes out-of-range bins unrepresentable).
    pub fn new(n_bins: usize, f: impl Fn(&T) -> usize + Send + Sync + 'static) -> Self {
        assert!(n_bins > 0, "Bins: need at least one bin");
        Bins {
            n_bins,
            f: Arc::new(f),
        }
    }

    /// Number of bins.
    pub fn n_bins(&self) -> usize {
        self.n_bins
    }

    /// The bin of a row (clamped into range).
    pub fn bin(&self, row: &T) -> usize {
        (self.f)(row).min(self.n_bins - 1)
    }
}

/// `exactBinCount` (Listing 5): the number of rows in bin `b` — a
/// sensitivity-1 query, since a neighbouring change alters one row's
/// membership in at most this one bin.
pub fn exact_bin_count<T: 'static>(bins: &Bins<T>, b: usize) -> Query<T> {
    assert!(b < bins.n_bins(), "bin index out of range");
    let bins = bins.clone();
    Query::new(format!("bin-count[{b}]"), 1, move |db: &[T]| {
        db.iter().filter(|row| bins.bin(row) == b).count() as i64
    })
}

/// `privNoisedBinCount` (Listing 4): bin `b`'s count noised at
/// `noise_priv(γ₁, γ₂·nBins)` — the per-bin slice of the budget.
pub fn noised_bin_count<D: DpNoise, T: 'static>(
    bins: &Bins<T>,
    gamma_num: u64,
    gamma_den: u64,
    b: usize,
) -> Private<D, T, i64> {
    Private::noised_query(
        &exact_bin_count(bins, b),
        gamma_num,
        gamma_den * bins.n_bins() as u64,
    )
}

/// `privNoisedHistogram` (Listing 4): the abstract DP histogram.
///
/// Returns a vector of noised counts, one per bin, with total privacy
/// `nBins · noise_priv(γ₁, γ₂·nBins)` — which instantiates to `γ₁/γ₂`
/// for pure DP and `½(γ₁/γ₂)²/nBins` for zCDP, exactly as the paper's
/// generic bound specializes.
///
/// # Panics
///
/// Panics if `gamma_num` or `gamma_den` is zero.
pub fn noised_histogram<D: DpNoise, T: 'static>(
    bins: &Bins<T>,
    gamma_num: u64,
    gamma_den: u64,
) -> Private<D, T, Vec<i64>> {
    let n = bins.n_bins();
    let mut acc: Private<D, T, Vec<i64>> = Private::constant(vec![0i64; n]);
    for b in 0..n {
        let bin = noised_bin_count::<D, T>(bins, gamma_num, gamma_den, b);
        acc = bin.compose(&acc).postprocess(move |(c, h)| {
            let mut h = h.clone();
            h[b] = *c;
            h
        });
    }
    acc
}

/// `privParNoisedHistogram` (Listing 19): the parallel-composition
/// histogram. Each bin mechanism runs on its own partition with the
/// **full** per-bin budget `(γ₁, γ₂)`; the total is the `max` over bins —
/// same privacy as [`noised_histogram`] at `1/nBins` of the noise.
pub fn par_noised_histogram<D: DpNoise, T: Clone + 'static>(
    bins: &Bins<T>,
    gamma_num: u64,
    gamma_den: u64,
) -> Private<D, T, Vec<i64>> {
    let n = bins.n_bins();
    let mut acc: Private<D, T, Vec<i64>> = Private::constant(vec![0i64; n]);
    for b in 0..n {
        let bin: Private<D, T, i64> =
            Private::noised_query(&exact_bin_count(bins, b), gamma_num, gamma_den);
        let bins2 = bins.clone();
        acc = bin
            .par_compose(&acc, move |row| bins2.bin(row) == b)
            .postprocess(move |(c, h)| {
                let mut h = h.clone();
                h[b] = *c;
                h
            });
    }
    acc
}

/// The noised histogram as a [`Request`] for the
/// [`Session`](sampcert_core::Session) front door.
///
/// One answer is a whole histogram, served through the batched path: one
/// O(rows) counting pass, one noise program drawn `nBins` times in the
/// compositional draw order — so every released vector (and every
/// consumed byte) equals what [`histogram_batch`](crate::histogram_batch)
/// and [`noised_histogram`]`.run` release from the same stream position
/// (pinned by `tests/session_api.rs`). The price is
/// [`histogram_gamma`](crate::histogram_gamma), factored as `nBins`
/// sub-releases of the per-bin cost so exact carriers record the same
/// per-bin rounded charge the legacy metered path recorded. The analytic
/// distribution is [`noised_histogram`]'s, so
/// [`check_pair`](sampcert_core::Private::check_pair)-style verification
/// remains available through the underlying compositional mechanism.
///
/// # Panics
///
/// Panics if `gamma_num` or `gamma_den` is zero.
///
/// # Examples
///
/// ```
/// use sampcert_core::{PureDp, Session};
/// use sampcert_mechanisms::{histogram_request, Bins};
///
/// let bins = Bins::new(4, |age: &u32| (*age as usize) / 25);
/// let mut session = Session::<PureDp>::builder()
///     .ledger(2.0)
///     .inline()
///     .seeded(1)
///     .build();
/// let hist = session
///     .answer(&histogram_request::<PureDp, u32>(&bins, 1, 1), &[23, 35, 47, 88])
///     .unwrap();
/// assert_eq!(hist.len(), 4);
/// assert!((session.accountant().spent() - 1.0).abs() < 1e-12);
/// ```
pub fn histogram_request<D: DpNoise, T: 'static>(
    bins: &Bins<T>,
    gamma_num: u64,
    gamma_den: u64,
) -> Request<D, T, Vec<i64>> {
    let n = bins.n_bins();
    let noise = D::noise(
        &crate::batch::noise_only_query::<T>(1),
        gamma_num,
        gamma_den * n as u64,
    );
    let bins2 = bins.clone();
    let compositional = noised_histogram::<D, T>(bins, gamma_num, gamma_den);
    let mech = Mechanism::from_parts(
        move |db: &[T], src: &mut dyn ByteSource| {
            let mut counts = vec![0i64; n];
            for row in db {
                counts[bins2.bin(row)] += 1;
            }
            // Bin n−1 is outermost in the composition, so its noise draws
            // first; matching that order keeps the byte streams identical.
            for b in (0..n).rev() {
                counts[b] += noise.run(&[], src);
            }
            counts
        },
        move |db| compositional.dist(db),
    );
    Request::composite(
        mech,
        D::noise_priv(gamma_num, gamma_den * n as u64),
        n as u64,
        format!("histogram[{n} bins]"),
    )
}

/// A private approximate maximum (paper Section 2.3): the index of the
/// last bin whose noised count exceeds `cutoff`, or `None` if no bin
/// does. Pure postprocessing of the histogram — privacy-free on top of it.
pub fn approx_max_bin<D: DpNoise, T: 'static>(
    bins: &Bins<T>,
    gamma_num: u64,
    gamma_den: u64,
    cutoff: i64,
) -> Private<D, T, Option<u64>> {
    noised_histogram::<D, T>(bins, gamma_num, gamma_den).postprocess(move |h| {
        h.iter()
            .enumerate()
            .rev()
            .find(|(_, c)| **c > cutoff)
            .map(|(b, _)| b as u64)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sampcert_core::{CheckOptions, PureDp, Zcdp};
    use sampcert_slang::SeededByteSource;

    /// Two bins: evens and odds.
    fn parity_bins() -> Bins<i64> {
        Bins::new(2, |v: &i64| (*v % 2).unsigned_abs() as usize)
    }

    #[test]
    fn exact_bin_count_counts() {
        let q = exact_bin_count(&parity_bins(), 0);
        assert_eq!(q.eval(&[2, 4, 5, 7, 8]), 3);
        assert_eq!(q.sensitivity(), 1);
    }

    #[test]
    fn exact_bin_count_sensitivity_lemma() {
        // Listing 5, executed: sensitivity 1 over generated neighbours.
        let q = exact_bin_count(&parity_bins(), 1);
        let dbs = vec![vec![], vec![1, 2, 3], vec![5, 5, 5, 6]];
        assert!(q.check_sensitivity(&dbs, &[0, 1, 9]).is_ok());
    }

    #[test]
    fn histogram_budget_pure_dp() {
        // γ = ε₁/ε₂ overall, regardless of bin count (Listing 7).
        let h = noised_histogram::<PureDp, i64>(&parity_bins(), 1, 1);
        assert!((h.gamma() - 1.0).abs() < 1e-12);
        let h4 = noised_histogram::<PureDp, i64>(
            &Bins::new(4, |v: &i64| (*v % 4).unsigned_abs() as usize),
            1,
            1,
        );
        assert!((h4.gamma() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_budget_zcdp() {
        // zCDP: per-bin ρ_b = ½(γ₁/(γ₂·n))², total n·ρ_b = ½(γ₁/γ₂)²/n.
        let h = noised_histogram::<Zcdp, i64>(&parity_bins(), 1, 1);
        assert!((h.gamma() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn histogram_prop_checked_pure_dp() {
        let h = noised_histogram::<PureDp, i64>(&parity_bins(), 1, 1);
        h.check_pair(&[1, 2, 3], &[1, 2], CheckOptions::default())
            .expect("histogram is 1-DP on this pair");
    }

    #[test]
    fn histogram_runs() {
        let h = noised_histogram::<PureDp, i64>(&parity_bins(), 4, 1);
        let mut src = SeededByteSource::new(3);
        let db: Vec<i64> = (0..100).map(|i| i % 3).collect(); // 34 even-ish
        let out = h.run(&db, &mut src);
        assert_eq!(out.len(), 2);
        // ε = 4 noise is tight; counts land near the truth (67 even: 0,2
        // pattern... exact counts: bin0 has v%2==0, i%3 cycle 0,1,2 ->
        // values 0,1,2: evens are 0 and 2: 67 of 100).
        assert!((out[0] - 67).abs() < 15, "out={out:?}");
        assert!((out[1] - 33).abs() < 15, "out={out:?}");
    }

    #[test]
    fn par_histogram_same_budget_less_noise() {
        // Appendix B: same ε, 1/nBins the noise scale. Compare variances
        // of the analytic per-bin distributions.
        let bins = parity_bins();
        let seq = noised_histogram::<PureDp, i64>(&bins, 1, 1);
        let par = par_noised_histogram::<PureDp, i64>(&bins, 1, 1);
        assert_eq!(seq.gamma(), par.gamma());

        let mut src = SeededByteSource::new(11);
        let db: Vec<i64> = (0..50).collect();
        let n = 3000;
        let spread = |p: &Private<PureDp, i64, Vec<i64>>, src: &mut SeededByteSource| {
            let mut sq = 0f64;
            for _ in 0..n {
                let h = p.run(&db, src);
                let err = (h[0] - 25) as f64;
                sq += err * err;
            }
            sq / n as f64
        };
        let seq_var = spread(&seq, &mut src);
        let par_var = spread(&par, &mut src);
        // Sequential noise scale is 2× (nBins = 2) → variance ≈ 4×.
        assert!(
            seq_var > par_var * 2.0,
            "expected parallel to be much tighter: seq={seq_var} par={par_var}"
        );
    }

    #[test]
    fn par_histogram_prop_checked() {
        let par = par_noised_histogram::<PureDp, i64>(&parity_bins(), 1, 1);
        par.check_pair(&[1, 2, 3], &[1, 2], CheckOptions::default())
            .expect("parallel histogram is 1-DP on this pair");
    }

    #[test]
    fn approx_max_finds_last_heavy_bin() {
        let bins = Bins::new(4, |v: &i64| (*v).clamp(0, 3) as usize);
        let am = approx_max_bin::<PureDp, i64>(&bins, 8, 1, 10);
        assert!((am.gamma() - 8.0).abs() < 1e-12);
        let mut src = SeededByteSource::new(4);
        // 40 rows in bin 2, nothing else heavy.
        let db: Vec<i64> = std::iter::repeat_n(2, 40).chain([0, 1]).collect();
        let got = am.run(&db, &mut src);
        assert_eq!(got, Some(2));
    }

    #[test]
    fn bins_clamp_out_of_range() {
        let bins = Bins::new(3, |v: &i64| *v as usize);
        assert_eq!(bins.bin(&99), 2);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        let _ = Bins::new(0, |_: &u8| 0);
    }
}
