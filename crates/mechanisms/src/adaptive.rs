//! Adaptive clamping: a private mean for data without a-priori bounds.
//!
//! The paper motivates the private histogram by exactly this workflow
//! (Section 2.3): first use a histogram-derived approximate maximum to
//! learn a clamping bound, *then* compute a clamped mean — with the bound
//! chosen privately, so the whole two-phase release composes under the
//! adaptive composition rule. This module implements that pipeline on top
//! of [`approx_max_bin`] and [`noised_mean`], with the branch budget
//! enforced by [`Private::compose_adaptive`]'s runtime check.

use crate::histogram::{approx_max_bin, Bins};
use crate::queries::noised_mean;
use sampcert_core::{DpNoise, Private};

/// The released payload of an adaptive mean: the noised sum and count,
/// plus the (privately chosen) clamp bound used.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AdaptiveMeanRelease {
    /// Noised clamped sum.
    pub sum: i64,
    /// Noised count.
    pub count: i64,
    /// Upper clamp bound chosen by the private histogram phase.
    pub clamp_hi: i64,
}

impl AdaptiveMeanRelease {
    /// The implied mean (count floored at one).
    pub fn mean(&self) -> f64 {
        self.sum as f64 / self.count.max(1) as f64
    }
}

/// Power-of-two magnitude bins for nonnegative values: bin `b` holds
/// values in `[2^b, 2^(b+1))` (bin 0 also holds 0 and, defensively,
/// negatives).
pub fn magnitude_bins(n_bins: usize) -> Bins<i64> {
    Bins::new(n_bins, |v: &i64| {
        if *v <= 0 {
            0
        } else {
            (63 - (*v).leading_zeros()) as usize
        }
    })
}

/// A private mean over nonnegative data with **no a-priori upper bound**:
///
/// 1. a private magnitude histogram picks the largest well-populated
///    power-of-two band (`hist_*` budget; bins with fewer than `cutoff`
///    apparent members are ignored — outliers don't inflate the clamp);
/// 2. adaptively, a clamped mean is released with the learned bound
///    (`mean_*` budget, spent twice: sum and count).
///
/// Total budget: `hist + 2·mean`, composed by the abstract rules.
///
/// # Panics
///
/// Panics if any privacy parameter is zero.
pub fn adaptive_mean<D: DpNoise>(
    n_bins: usize,
    cutoff: i64,
    hist_num: u64,
    hist_den: u64,
    mean_num: u64,
    mean_den: u64,
) -> Private<D, i64, AdaptiveMeanRelease> {
    let bins = magnitude_bins(n_bins);
    let pick = approx_max_bin::<D, i64>(&bins, hist_num, hist_den, cutoff);
    let mean_budget = D::compose(
        D::noise_priv(mean_num, mean_den),
        D::noise_priv(mean_num, mean_den),
    );
    pick.compose_adaptive(mean_budget, move |bin| {
        let hi = match bin {
            Some(b) => 1i64 << (b + 1).min(62),
            None => 1,
        };
        noised_mean::<D>(0, hi, mean_num, mean_den).postprocess(move |(sum, count)| {
            AdaptiveMeanRelease {
                sum: *sum,
                count: *count,
                clamp_hi: hi,
            }
        })
    })
    .postprocess(|(_, release)| release.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sampcert_core::{PureDp, Zcdp};
    use sampcert_slang::SeededByteSource;

    #[test]
    fn budget_is_hist_plus_two_means() {
        let m = adaptive_mean::<PureDp>(8, 5, 1, 1, 1, 1);
        assert!((m.gamma() - 3.0).abs() < 1e-12); // 1 + 1 + 1
        let z = adaptive_mean::<Zcdp>(8, 5, 1, 1, 1, 1);
        assert!((z.gamma() - (0.5 / 8.0 + 1.0)).abs() < 1e-12); // hist + 2·(1/2)
    }

    #[test]
    fn magnitude_bins_bucket_by_log() {
        let bins = magnitude_bins(8);
        assert_eq!(bins.bin(&0), 0);
        assert_eq!(bins.bin(&1), 0);
        assert_eq!(bins.bin(&2), 1);
        assert_eq!(bins.bin(&3), 1);
        assert_eq!(bins.bin(&4), 2);
        assert_eq!(bins.bin(&255), 7);
        assert_eq!(bins.bin(&10_000), 7); // clamped to last bin
        assert_eq!(bins.bin(&-5), 0);
    }

    #[test]
    fn finds_good_clamp_and_accurate_mean() {
        // Salaries clustered in [40, 120]: the right band is [64, 128).
        let db: Vec<i64> = (0..4_000).map(|i| 40 + (i * 7919) % 80).collect();
        let true_mean = db.iter().sum::<i64>() as f64 / db.len() as f64;
        let m = adaptive_mean::<PureDp>(12, 10, 4, 1, 8, 1); // tight budgets
        let mut src = SeededByteSource::new(31);
        let r = m.run(&db, &mut src);
        assert_eq!(r.clamp_hi, 128, "clamp={}", r.clamp_hi);
        assert!(
            (r.mean() - true_mean).abs() < 3.0,
            "mean {} vs true {true_mean}",
            r.mean()
        );
    }

    #[test]
    fn outliers_do_not_blow_up_the_clamp() {
        // One huge outlier among small values: the cutoff keeps the clamp
        // at the populated band, bounding the outlier's influence.
        let mut db: Vec<i64> = vec![8; 2_000];
        db.push(1 << 40);
        let m = adaptive_mean::<PureDp>(30, 20, 4, 1, 8, 1);
        let mut src = SeededByteSource::new(33);
        let r = m.run(&db, &mut src);
        assert!(r.clamp_hi <= 16, "outlier inflated clamp to {}", r.clamp_hi);
        assert!((r.mean() - 8.0).abs() < 1.0, "mean={}", r.mean());
    }

    /// Serving repeated adaptive releases through the batched path: one
    /// `run_batch` + one ledger entry, byte-identical to sequential runs.
    #[test]
    fn adaptive_rounds_serve_through_batched_path() {
        use sampcert_core::Ledger;
        use sampcert_slang::CountingByteSource;
        let db: Vec<i64> = (0..500).map(|i| 40 + (i * 31) % 80).collect();
        let m = adaptive_mean::<PureDp>(12, 10, 4, 1, 8, 1);

        let mut seq_src = CountingByteSource::new(SeededByteSource::new(41));
        let seq: Vec<_> = (0..16).map(|_| m.run(&db, &mut seq_src)).collect();
        let mut batch_src = CountingByteSource::new(SeededByteSource::new(41));
        let batch = m.run_batch(&db, 16, &mut batch_src);
        assert_eq!(batch.values(), &seq[..]);
        assert_eq!(batch_src.bytes_read(), seq_src.bytes_read());

        let mut ledger: Ledger<PureDp> = Ledger::new(400.0);
        batch.charge(&mut ledger, "adaptive-rounds").unwrap();
        assert_eq!(ledger.entries().len(), 1);
        assert!((ledger.spent() - 16.0 * m.gamma()).abs() < 1e-9);
    }

    #[test]
    fn empty_database_degrades_gracefully() {
        let m = adaptive_mean::<PureDp>(8, 10, 8, 1, 8, 1);
        let mut src = SeededByteSource::new(35);
        let r = m.run(&[], &mut src);
        assert_eq!(r.clamp_hi, 1); // no populated band found
    }
}
