//! Batched serving for mechanism workloads: one noise program, one
//! accountant charge, many answers.
//!
//! The compositional constructions in this crate are built for *proof
//! shape* — [`noised_histogram`](crate::noised_histogram) walks one
//! mechanism per bin (each re-scanning the database), and a workload of
//! `m` queries served one release at a time pays `m` program
//! constructions and `m` accountant charges. This module provides the
//! serving-side equivalents that batch all of it without changing a
//! single released byte:
//!
//! - [`histogram_batch`]: the paper's sequential histogram, computed with
//!   one O(rows) counting pass and one noise program drawn `nBins` times —
//!   byte-stream- and value-identical to
//!   [`noised_histogram`](crate::noised_histogram)`.run` (pinned by
//!   tests), so it is a drop-in serving substitute with the *same* privacy
//!   bound ([`histogram_gamma`]);
//! - [`answer_workload`]: answers a slice of queries with noise drawn from
//!   one program per distinct sensitivity, returning a
//!   [`NoiseBatch`] that charges the ledger once for the whole workload.
//!
//! For serving *repeated* releases of one mechanism (adaptive rounds, load
//! tests), use [`Private::run_batch`](sampcert_core::Private::run_batch)
//! directly — the example on [`NoiseBatch`] shows the pattern.

use crate::histogram::Bins;
use sampcert_core::{
    Budget, BudgetExceeded, DpNoise, Ledger, Mechanism, NoiseBatch, Query, Request,
};
use sampcert_slang::{ByteSource, SubPmf};
use std::collections::HashMap;
use std::sync::Arc;

/// A constant-zero query of declared sensitivity `sensitivity`: noising it
/// yields the raw calibrated noise, which the batched paths add to exact
/// answers themselves.
pub(crate) fn noise_only_query<T: 'static>(sensitivity: u64) -> Query<T> {
    Query::new(format!("noise[Δ={sensitivity}]"), sensitivity, |_| 0)
}

/// The privacy bound of [`histogram_batch`] — identical to
/// [`noised_histogram`](crate::noised_histogram)'s:
/// `nBins · noise_priv(γ₁, γ₂·nBins)`.
pub fn histogram_gamma<D: DpNoise>(n_bins: usize, gamma_num: u64, gamma_den: u64) -> f64 {
    D::compose_n(
        D::noise_priv(gamma_num, gamma_den * n_bins as u64),
        n_bins as u64,
    )
}

/// The sequential noised histogram, served through the batched path.
///
/// Computes every exact bin count in **one** pass over the database
/// (`O(rows + nBins)`, where the compositional mechanism scans the
/// database once per bin), builds **one** noise program, and draws the
/// `nBins` noise values through it in the composition's draw order — so
/// the output, and the consumed byte stream, are exactly those of
/// [`noised_histogram`](crate::noised_histogram)`.run(db, src)`, at the
/// same privacy cost [`histogram_gamma`].
///
/// # Panics
///
/// Panics if `gamma_num` or `gamma_den` is zero.
///
/// # Examples
///
/// ```
/// use sampcert_mechanisms::{histogram_batch, histogram_gamma, Bins};
/// use sampcert_core::PureDp;
/// use sampcert_slang::SeededByteSource;
///
/// let bins = Bins::new(4, |age: &u32| (*age as usize) / 25);
/// let ages = vec![23, 35, 47, 61, 74, 88, 19, 42];
/// let mut src = SeededByteSource::new(1);
/// let hist = histogram_batch::<PureDp, u32>(&bins, 1, 1, &ages, &mut src);
/// assert_eq!(hist.len(), 4);
/// assert!((histogram_gamma::<PureDp>(4, 1, 1) - 1.0).abs() < 1e-12);
/// ```
pub fn histogram_batch<D: DpNoise, T: 'static>(
    bins: &Bins<T>,
    gamma_num: u64,
    gamma_den: u64,
    db: &[T],
    src: &mut dyn ByteSource,
) -> Vec<i64> {
    let n = bins.n_bins();
    let mut counts = vec![0i64; n];
    for row in db {
        counts[bins.bin(row)] += 1;
    }
    let noise = D::noise(&noise_only_query::<T>(1), gamma_num, gamma_den * n as u64);
    // The compositional histogram nests bin n−1 outermost, so its noise
    // draws run from the last bin to the first; matching that order keeps
    // the byte streams identical.
    for b in (0..n).rev() {
        counts[b] += noise.run(&[], src);
    }
    counts
}

/// [`histogram_batch`] behind a ledger: charges the histogram's budget to
/// `ledger` first and serves it only if the charge fits — refused requests
/// consume no entropy and release nothing.
///
/// Generic in the ledger's [`Budget`] carrier, so the same serving call is
/// metered by the classic `f64` ledger or **exactly** by an
/// [`ExactLedger`](sampcert_core::ExactLedger). The charge is recorded as
/// a `nBins`-release batch of the per-bin cost — the per-release γ crosses
/// into the carrier rounded up *before* the `nBins`-fold composition, so
/// the recorded exact total matches what charging the same bins through
/// any other batch path records, and never under-counts (the accountant's
/// conservative contract). On the `f64` carrier this composes to exactly
/// [`histogram_gamma`].
///
/// # Errors
///
/// Returns [`BudgetExceeded`] when the histogram does not fit in the
/// remaining budget; the ledger and byte source are unchanged.
#[deprecated(
    note = "use Session::answer with histogram_request (sampcert_core::Session) — \
            same per-bin exact charge, same bytes, one front door"
)]
pub fn histogram_batch_metered<D: DpNoise, B: Budget, T: 'static>(
    bins: &Bins<T>,
    gamma_num: u64,
    gamma_den: u64,
    db: &[T],
    src: &mut dyn ByteSource,
    ledger: &mut Ledger<D, B>,
    label: impl Into<String>,
) -> Result<Vec<i64>, BudgetExceeded<B>> {
    let n = bins.n_bins() as u64;
    ledger.charge_batch(label, D::noise_priv(gamma_num, gamma_den * n), n)?;
    Ok(histogram_batch::<D, T>(bins, gamma_num, gamma_den, db, src))
}

/// Answers a workload of queries, each noised at
/// `noise_priv(γ₁, γ₂)`-ADP, through one noise program per distinct
/// sensitivity.
///
/// The answers (in workload order) come back as a [`NoiseBatch`] whose
/// per-answer cost is `noise_priv(γ₁, γ₂)`, ready to be charged to a
/// [`Ledger`](sampcert_core::Ledger) or
/// [`RdpAccountant`](sampcert_core::RdpAccountant) in a single call. Value
/// and byte-stream equality with releasing each query separately via
/// [`Private::noised_query`](sampcert_core::Private::noised_query) is
/// pinned by tests.
///
/// # Panics
///
/// Panics if `gamma_num` or `gamma_den` is zero.
pub fn answer_workload<D: DpNoise, T: 'static>(
    queries: &[Query<T>],
    gamma_num: u64,
    gamma_den: u64,
    db: &[T],
    src: &mut dyn ByteSource,
) -> NoiseBatch<D, i64> {
    let mut programs: HashMap<u64, Mechanism<T, i64>> = HashMap::new();
    let mut values = Vec::with_capacity(queries.len());
    for q in queries {
        let noise = programs.entry(q.sensitivity()).or_insert_with(|| {
            D::noise(
                &noise_only_query::<T>(q.sensitivity()),
                gamma_num,
                gamma_den,
            )
        });
        values.push(q.eval(db) + noise.run(&[], src));
    }
    NoiseBatch::new(values, D::noise_priv(gamma_num, gamma_den))
}

/// [`answer_workload`] as a [`Request`] for the
/// [`Session`](sampcert_core::Session) front door: one answer is the
/// whole workload (a `Vec<i64>` in workload order), priced as
/// `queries.len()` sub-releases of `noise_priv(γ₁, γ₂)` — so the exact
/// carrier records the same per-query rounded charge the legacy
/// [`NoiseBatch::charge`] path records.
///
/// The noise programs (one per distinct sensitivity) are built once, at
/// request construction, and reused across every serve; the draw order
/// is workload order, so the released bytes equal a fresh
/// [`answer_workload`] call on the same stream (pinned by
/// `tests/session_api.rs`).
///
/// The request's analytic distribution is **not** assembled (it is the
/// product of the per-answer noise distributions, combinatorially large);
/// it reports as the zero sub-PMF. Check privacy per answer through
/// [`Private::noised_query`](sampcert_core::Private::noised_query) on the
/// individual queries instead.
///
/// # Panics
///
/// Panics if `gamma_num` or `gamma_den` is zero.
pub fn workload_request<D: DpNoise, T: 'static>(
    queries: &[Query<T>],
    gamma_num: u64,
    gamma_den: u64,
) -> Request<D, T, Vec<i64>> {
    let mut programs: HashMap<u64, Mechanism<T, i64>> = HashMap::new();
    for q in queries {
        programs.entry(q.sensitivity()).or_insert_with(|| {
            D::noise(
                &noise_only_query::<T>(q.sensitivity()),
                gamma_num,
                gamma_den,
            )
        });
    }
    let queries: Arc<Vec<Query<T>>> = Arc::new(queries.to_vec());
    let units = queries.len() as u64;
    let mech = Mechanism::from_parts(
        move |db: &[T], src: &mut dyn ByteSource| {
            let mut values = Vec::with_capacity(queries.len());
            for q in queries.iter() {
                let noise = &programs[&q.sensitivity()];
                values.push(q.eval(db) + noise.run(&[], src));
            }
            values
        },
        |_| SubPmf::zero(),
    );
    Request::composite(
        mech,
        D::noise_priv(gamma_num, gamma_den),
        units,
        format!("workload[{units} queries]"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::noised_histogram;
    use sampcert_core::{Ledger, Private, PureDp, Zcdp};
    use sampcert_slang::{CountingByteSource, SeededByteSource};

    fn parity_bins() -> Bins<i64> {
        Bins::new(2, |v: &i64| (*v % 2).unsigned_abs() as usize)
    }

    /// The decisive serving test: the batched histogram is byte-for-byte
    /// the compositional one.
    #[test]
    fn histogram_batch_equals_compositional_run_bytewise() {
        fn check<D: DpNoise>(seed: u64) {
            let bins = Bins::new(5, |v: &i64| (*v % 5).unsigned_abs() as usize);
            let db: Vec<i64> = (0..200).map(|i| (i * 13) % 40).collect();
            let compositional = noised_histogram::<D, i64>(&bins, 2, 1);
            let mut seq_src = CountingByteSource::new(SeededByteSource::new(seed));
            let mut batch_src = CountingByteSource::new(SeededByteSource::new(seed));
            for round in 0..20 {
                let a = compositional.run(&db, &mut seq_src);
                let b = histogram_batch::<D, i64>(&bins, 2, 1, &db, &mut batch_src);
                assert_eq!(a, b, "{} round {round}", D::NAME);
                assert_eq!(
                    seq_src.bytes_read(),
                    batch_src.bytes_read(),
                    "{} round {round}",
                    D::NAME
                );
            }
            assert!(
                (histogram_gamma::<D>(5, 2, 1) - compositional.gamma()).abs() < 1e-12,
                "{}",
                D::NAME
            );
        }
        check::<PureDp>(17);
        check::<Zcdp>(18);
    }

    #[test]
    fn workload_equals_separate_releases_bytewise() {
        // Mixed sensitivities: count (Δ=1), a Δ=3 sum-like query, another count.
        let workload = vec![
            Query::new("count", 1, |db: &[i64]| db.len() as i64),
            Query::new("triple", 3, |db: &[i64]| 3 * db.len() as i64),
            Query::new("count2", 1, |db: &[i64]| db.len() as i64),
        ];
        let db: Vec<i64> = (0..50).collect();

        let mut seq_src = CountingByteSource::new(SeededByteSource::new(5));
        let seq: Vec<i64> = workload
            .iter()
            .map(|q| {
                let p: Private<PureDp, i64, i64> = Private::noised_query(q, 1, 2);
                p.run(&db, &mut seq_src)
            })
            .collect();

        let mut batch_src = CountingByteSource::new(SeededByteSource::new(5));
        let batch = answer_workload::<PureDp, i64>(&workload, 1, 2, &db, &mut batch_src);
        assert_eq!(batch.values(), &seq[..]);
        assert_eq!(batch_src.bytes_read(), seq_src.bytes_read());
        assert!((batch.gamma_each() - 0.5).abs() < 1e-12);
        assert!((batch.gamma_total() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn workload_charges_ledger_once() {
        let workload: Vec<Query<i64>> = (0..10)
            .map(|i| Query::new(format!("q{i}"), 1, |db: &[i64]| db.len() as i64))
            .collect();
        let mut src = SeededByteSource::new(8);
        let batch = answer_workload::<Zcdp, i64>(&workload, 1, 4, &[1, 2, 3], &mut src);
        let mut ledger: Ledger<Zcdp> = Ledger::new(1.0);
        batch.charge(&mut ledger, "workload").unwrap();
        assert_eq!(ledger.entries().len(), 1);
        assert!((ledger.spent() - 10.0 * Zcdp::noise_priv(1, 4)).abs() < 1e-12);
    }

    /// The metered histogram must record the same exact charge as any
    /// other batch path charging the same releases: per-bin γ converted
    /// (rounded up) first, then composed `nBins`-fold — even when the
    /// per-bin γ is not dyadic and the f64-composed total would round the
    /// other way.
    #[test]
    // Deliberately exercises the deprecated legacy path: it is the exact
    // charge reference the Session front door is pinned against.
    #[allow(deprecated)]
    fn metered_histogram_charge_matches_per_bin_batch_charge_exactly() {
        use sampcert_core::{DpNoise, ExactLedger};

        // 3 bins at γ = 1/3: per-bin ε = 1/9, non-dyadic in every digit.
        let bins = Bins::new(3, |v: &i64| (*v % 3).unsigned_abs() as usize);
        let db: Vec<i64> = (0..20).collect();
        let mut metered: ExactLedger<PureDp> = Ledger::new(10.0);
        let mut src = SeededByteSource::new(33);
        histogram_batch_metered::<PureDp, _, i64>(&bins, 1, 3, &db, &mut src, &mut metered, "hist")
            .unwrap();
        let mut reference: ExactLedger<PureDp> = Ledger::new(10.0);
        reference
            .charge_batch("hist", PureDp::noise_priv(1, 9), 3)
            .unwrap();
        assert_eq!(metered.spent_exact(), reference.spent_exact());
    }

    #[test]
    // Deliberately exercises the deprecated legacy path (see above).
    #[allow(deprecated)]
    fn metered_histogram_charges_then_serves_and_refuses_atomically() {
        use sampcert_core::{Dyadic, ExactLedger};
        use sampcert_slang::CountingByteSource;

        let bins = parity_bins();
        let db: Vec<i64> = (0..30).collect();

        // Exact carrier: ε = 1 per histogram, budget 2 ⇒ exactly two fit.
        let mut ledger: ExactLedger<PureDp> = Ledger::new(2.0);
        let mut src = CountingByteSource::new(SeededByteSource::new(21));
        for round in 0..2 {
            let h = histogram_batch_metered::<PureDp, _, i64>(
                &bins,
                1,
                1,
                &db,
                &mut src,
                &mut ledger,
                format!("hist-{round}"),
            )
            .expect("fits");
            assert_eq!(h.len(), 2);
        }
        assert_eq!(ledger.spent_exact(), &Dyadic::from(2u64));
        assert_eq!(ledger.remaining_exact(), Dyadic::zero());

        // Third histogram: refused exactly, with no bytes drawn and the
        // ledger untouched.
        let before = src.bytes_read();
        let err = histogram_batch_metered::<PureDp, _, i64>(
            &bins,
            1,
            1,
            &db,
            &mut src,
            &mut ledger,
            "hist-3",
        )
        .unwrap_err();
        assert_eq!(err.requested, Dyadic::from(1u64));
        assert_eq!(err.remaining, Dyadic::zero());
        assert_eq!(src.bytes_read(), before, "refused serve drew entropy");
        assert_eq!(ledger.entries().len(), 2);

        // The served values are byte-identical to the unmetered path.
        let mut plain_src = SeededByteSource::new(21);
        let plain = histogram_batch::<PureDp, i64>(&bins, 1, 1, &db, &mut plain_src);
        let mut metered_src = SeededByteSource::new(21);
        let mut fresh: Ledger<PureDp> = Ledger::new(10.0);
        let metered = histogram_batch_metered::<PureDp, _, i64>(
            &bins,
            1,
            1,
            &db,
            &mut metered_src,
            &mut fresh,
            "hist",
        )
        .unwrap();
        assert_eq!(plain, metered);
    }

    #[test]
    fn workload_batch_charges_exact_ledger() {
        use sampcert_core::{Dyadic, ExactLedger};

        let workload: Vec<Query<i64>> = (0..6)
            .map(|i| Query::new(format!("q{i}"), 1, |db: &[i64]| db.len() as i64))
            .collect();
        let mut src = SeededByteSource::new(9);
        // ε = 1/4 per query: dyadic, so the exact meter loses nothing.
        let batch = answer_workload::<PureDp, i64>(&workload, 1, 4, &[1, 2, 3], &mut src);
        let mut ledger: ExactLedger<PureDp> = Ledger::new(1.5);
        batch.charge(&mut ledger, "workload").unwrap();
        assert_eq!(ledger.entries().len(), 1);
        assert_eq!(
            ledger.spent_exact(),
            &Dyadic::try_from_rat(&sampcert_arith::Rat::from_ratio(6, 4)).unwrap()
        );
        // A second identical workload would need another 1.5: refused
        // with the exact deficit reported.
        let err = batch.charge(&mut ledger, "again").unwrap_err();
        assert_eq!(err.remaining, Dyadic::zero());
    }

    #[test]
    fn histogram_batch_counts_exactly_under_zero_noise_scale() {
        // Huge ε ⇒ tiny noise; the counting pass must be exact.
        let bins = parity_bins();
        let db: Vec<i64> = (0..100).collect();
        let mut src = SeededByteSource::new(2);
        let h = histogram_batch::<PureDp, i64>(&bins, 200, 1, &db, &mut src);
        assert_eq!(h, vec![50, 50]);
    }
}
