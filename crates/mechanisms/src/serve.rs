//! Concurrent noise serving: a persistent worker pool fanning batched
//! requests across threads.
//!
//! Everything below this module serves from one thread: the `*_many`
//! samplers amortize program construction, [`histogram_batch`] amortizes
//! database passes, [`NoiseBatch`] amortizes accounting — but a single
//! core still caps throughput. [`NoiseServer`] is the fan-out layer: it
//! owns `N` workers, each with
//!
//! - **its own byte source** (per-worker OS entropy, or a pairwise
//!   independent replayable stream derived from one
//!   [`SplitSeed`](sampcert_slang::SplitSeed) root — the
//!   [`SeedBackend`] choice), and
//! - **its own program cache** (raw-noise programs are built per worker
//!   and reused across serve calls; [`run_many`](NoiseServer::run_many)
//!   instead shares one `Sync` [`Mechanism`] by reference — programs are
//!   immutable, so sharing costs no locks after construction),
//!
//! and splits each request into per-worker chunks served on
//! [`std::thread::scope`] threads. Budget metering composes through
//! [`ShardedLedger`](sampcert_core::ShardedLedger): worker `i` charges
//! shard `i` before drawing a single byte (one batch charge per chunk
//! here; long-lived serving loops that charge per request should hold
//! their `ShardHandle`s across requests to stay on the lock-free path).
//!
//! # Determinism contract
//!
//! With [`SeedBackend::Deterministic`], the output of every serve call is
//! a pure function of `(root seed, worker count, request)`: worker `i`
//! always serves the same chunk from the same stream, and results are
//! concatenated in worker order. Re-running a server with the same seed
//! and worker count replays identical outputs — the property the
//! concurrency suite pins. A *different* worker count is a different
//! (equally valid) sample of the same distribution: concurrent serving
//! changes which verified stream each draw comes from, never the
//! distribution it is drawn from — every chunk is served by the same
//! byte-stream-pinned `*_many` primitives the sequential layer uses.
//!
//! # Example
//!
//! ```
//! use sampcert_mechanisms::{NoiseServer, ServeConfig, SeedBackend};
//! use sampcert_samplers::LaplaceAlg;
//! use sampcert_arith::Nat;
//!
//! let mut server = NoiseServer::new(ServeConfig {
//!     workers: 4,
//!     seed: SeedBackend::Deterministic(7),
//! });
//! let noise = server.gaussian_noise_many(
//!     &Nat::from(64u64),
//!     &Nat::one(),
//!     LaplaceAlg::Switched,
//!     4096,
//! );
//! assert_eq!(noise.len(), 4096);
//! ```

use crate::histogram::Bins;
use sampcert_arith::Nat;
use sampcert_core::{
    Budget, BudgetExceeded, DpNoise, Entropy, Executor, ExecutorFailure, Mechanism, NoiseBatch,
    Query, SessionError, ShardedExecutor, ShardedLedger, SpawnExecutor,
};
use sampcert_samplers::{
    discrete_gaussian, discrete_gaussian_many_into, discrete_laplace_many_into, LaplaceAlg,
};
use sampcert_slang::{ByteSource, OsByteSource, Sampling, SeededByteSource, SplitSeed};
use std::collections::HashMap;

/// Where the worker pool's randomness comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedBackend {
    /// Each worker draws from its own OS-entropy source — the deployment
    /// backend.
    OsEntropy,
    /// Each worker draws the pairwise independent stream
    /// `SplitSeed::new(root).stream(worker)` — deterministic and
    /// replayable for a fixed worker count; the test/audit backend.
    Deterministic(u64),
    /// Each worker draws `root.stream(worker)` from an explicit
    /// [`SplitSeed`] tree — what a [`Session`](sampcert_core::Session)
    /// built with [`Entropy::Seeded`] hands the pool.
    /// `Split(SplitSeed::new(r))` is stream-for-stream identical to
    /// `Deterministic(r)`.
    Split(SplitSeed),
}

/// Configuration of a [`NoiseServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Number of worker threads (and byte streams, and program caches).
    pub workers: usize,
    /// The randomness backend.
    pub seed: SeedBackend,
}

impl Default for ServeConfig {
    /// OS entropy across `available_parallelism` workers.
    fn default() -> Self {
        ServeConfig {
            workers: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
            seed: SeedBackend::OsEntropy,
        }
    }
}

/// Key of a worker's cached noise program.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ProgKey {
    Gaussian(Nat, Nat, LaplaceAlg),
    Laplace(Nat, Nat, LaplaceAlg),
}

/// One worker's persistent state: its byte source and program cache.
/// Owned exclusively by the worker's thread during a serve call.
struct WorkerCtx {
    src: Box<dyn ByteSource + Send>,
    progs: HashMap<ProgKey, sampcert_slang::SLang<i64>>,
}

impl WorkerCtx {
    fn new(index: usize, seed: SeedBackend) -> Self {
        let src: Box<dyn ByteSource + Send> = match seed {
            SeedBackend::OsEntropy => Box::new(OsByteSource::new()),
            SeedBackend::Deterministic(root) => {
                let stream: SeededByteSource = SplitSeed::new(root).stream(index as u64);
                Box::new(stream)
            }
            SeedBackend::Split(root) => Box::new(root.stream(index as u64)),
        };
        WorkerCtx {
            src,
            progs: HashMap::new(),
        }
    }
}

/// Splits `n` into `workers` contiguous chunk lengths, the first
/// `n % workers` chunks one longer — the fixed request-partition rule the
/// determinism contract is stated over. This is exactly the default
/// [`Executor::partition`] rule ([`sampcert_core::lane_partition`]), so
/// per-lane accounting in a `Session` attributes answers to the workers
/// that serve them.
fn chunk_lengths(n: usize, workers: usize) -> Vec<usize> {
    sampcert_core::lane_partition(n, workers)
}

/// The same partition as [`chunk_lengths`], as per-worker index ranges.
fn chunk_ranges(n: usize, workers: usize) -> Vec<std::ops::Range<usize>> {
    chunk_lengths(n, workers)
        .into_iter()
        .scan(0, |acc, len| {
            let s = *acc;
            *acc += len;
            Some(s..*acc)
        })
        .collect()
}

/// A persistent pool of noise-serving workers — per-worker byte streams
/// and program caches, scoped-thread fan-out, sharded metering; see the
/// module-level docs above for the determinism contract.
pub struct NoiseServer {
    workers: Vec<WorkerCtx>,
    seed: SeedBackend,
    /// Round-robin cursor of the single-draw (`*_noise_one`) path.
    next_one: usize,
}

impl std::fmt::Debug for NoiseServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NoiseServer")
            .field("workers", &self.workers.len())
            .field("seed", &self.seed)
            .finish()
    }
}

impl NoiseServer {
    /// Creates the pool: one byte source and one empty program cache per
    /// worker.
    ///
    /// # Panics
    ///
    /// Panics if `config.workers` is zero.
    pub fn new(config: ServeConfig) -> Self {
        assert!(config.workers > 0, "NoiseServer: need at least one worker");
        NoiseServer {
            workers: (0..config.workers)
                .map(|i| WorkerCtx::new(i, config.seed))
                .collect(),
            seed: config.seed,
            next_one: 0,
        }
    }

    /// Number of workers in the pool.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The backend the pool was built with.
    pub fn seed_backend(&self) -> SeedBackend {
        self.seed
    }

    /// The core fan-out: hands each worker its context and chunk index,
    /// runs `serve` on a scoped thread per worker, and returns the
    /// per-worker results in worker order. A single-worker pool serves
    /// inline — no thread is spawned, so the 1-worker configuration is a
    /// true sequential baseline.
    fn fan_out<R, F>(&mut self, serve: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &mut WorkerCtx) -> R + Sync,
    {
        if self.workers.len() == 1 {
            return vec![serve(0, &mut self.workers[0])];
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .workers
                .iter_mut()
                .enumerate()
                .map(|(i, ctx)| {
                    let serve = &serve;
                    scope.spawn(move || serve(i, ctx))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("serve worker panicked"))
                .collect()
        })
    }

    /// Draws `n` i.i.d. discrete Gaussian samples `N_ℤ(0, (num/den)²)`
    /// across the pool.
    ///
    /// Each worker serves its chunk through the byte-stream-pinned batch
    /// primitive ([`discrete_gaussian_many_into`]) from its own stream;
    /// results concatenate in worker order.
    ///
    /// # Panics
    ///
    /// Panics if `num` or `den` is zero.
    pub fn gaussian_noise_many(
        &mut self,
        num: &Nat,
        den: &Nat,
        alg: LaplaceAlg,
        n: usize,
    ) -> Vec<i64> {
        let chunks = chunk_lengths(n, self.workers.len());
        let parts = self.fan_out(|i, ctx| {
            let mut out = Vec::new();
            discrete_gaussian_many_into(num, den, alg, chunks[i], &mut *ctx.src, &mut out);
            out
        });
        parts.concat()
    }

    /// [`gaussian_noise_many`](Self::gaussian_noise_many) behind a sharded
    /// ledger: worker `i` charges its whole chunk to shard `i` as one
    /// batch charge **before** drawing any bytes. The per-call shard
    /// handle starts with an empty allowance, so this charge takes the
    /// reserve lock once per worker per call — amortized over the whole
    /// chunk. (Sharding's lock-free hot path pays off at *fine-grained*
    /// charging: serving loops that charge per request should hold
    /// [`ShardHandle`](sampcert_core::ShardHandle)s across requests, as
    /// the `reproduce serve` request loops do.)
    ///
    /// # Errors
    ///
    /// Returns the first refusing shard's [`BudgetExceeded`] (by shard
    /// order) if any chunk does not fit. Chunks whose charge succeeded
    /// have already spent their budget; their drawn noise is discarded
    /// unreleased, which errs in the conservative direction.
    ///
    /// # Panics
    ///
    /// Panics if `num` or `den` is zero, or the ledger has fewer shards
    /// than the pool has workers.
    #[deprecated(note = "use Session with a sharded accountant and a pooled executor \
                (sampcert_core::Session + Request::noise) — same per-shard \
                charge-before-serve, one front door")]
    pub fn gaussian_noise_many_metered<D: DpNoise, B: Budget>(
        &mut self,
        num: &Nat,
        den: &Nat,
        alg: LaplaceAlg,
        n: usize,
        gamma_each: f64,
        ledger: &ShardedLedger<D, B>,
    ) -> Result<Vec<i64>, BudgetExceeded<B>> {
        assert!(
            ledger.shards() >= self.workers.len(),
            "ledger has fewer shards than the pool has workers"
        );
        let chunks = chunk_lengths(n, self.workers.len());
        let parts = self.fan_out(|i, ctx| {
            let mut handle = ledger.handle(i);
            handle.charge_batch(gamma_each, chunks[i] as u64)?;
            let mut out = Vec::new();
            discrete_gaussian_many_into(num, den, alg, chunks[i], &mut *ctx.src, &mut out);
            Ok(out)
        });
        let mut values = Vec::with_capacity(n);
        for part in parts {
            values.extend(part?);
        }
        Ok(values)
    }

    /// Draws one sample from a worker-cached single-draw program — the
    /// per-release serving path (one request, one draw), kept for
    /// workloads too adaptive to batch. Calls rotate round-robin across
    /// the pool, so every worker's stream advances and every worker's
    /// cache warms; the program for `(kind, num, den, alg)` is built once
    /// per worker and reused across calls.
    ///
    /// # Panics
    ///
    /// Panics if `num` or `den` is zero.
    pub fn gaussian_noise_one(&mut self, num: &Nat, den: &Nat, alg: LaplaceAlg) -> i64 {
        let key = ProgKey::Gaussian(num.clone(), den.clone(), alg);
        let ctx = self.next_worker();
        let prog = ctx
            .progs
            .entry(key)
            .or_insert_with(|| discrete_gaussian::<Sampling>(num, den, alg));
        prog.run(&mut *ctx.src)
    }

    /// The Laplace twin of
    /// [`gaussian_noise_one`](Self::gaussian_noise_one), served from the
    /// same round-robin per-worker program caches.
    ///
    /// # Panics
    ///
    /// Panics if `num` or `den` is zero.
    pub fn laplace_noise_one(&mut self, num: &Nat, den: &Nat, alg: LaplaceAlg) -> i64 {
        let key = ProgKey::Laplace(num.clone(), den.clone(), alg);
        let ctx = self.next_worker();
        let prog = ctx
            .progs
            .entry(key)
            .or_insert_with(|| sampcert_samplers::discrete_laplace::<Sampling>(num, den, alg));
        prog.run(&mut *ctx.src)
    }

    /// The worker serving the next single-draw request (round-robin).
    fn next_worker(&mut self) -> &mut WorkerCtx {
        let i = self.next_one % self.workers.len();
        self.next_one = self.next_one.wrapping_add(1);
        &mut self.workers[i]
    }

    /// Draws `n` i.i.d. discrete Laplace samples with scale `num/den`
    /// across the pool; the Laplace twin of
    /// [`gaussian_noise_many`](Self::gaussian_noise_many).
    ///
    /// # Panics
    ///
    /// Panics if `num` or `den` is zero.
    pub fn laplace_noise_many(
        &mut self,
        num: &Nat,
        den: &Nat,
        alg: LaplaceAlg,
        n: usize,
    ) -> Vec<i64> {
        let chunks = chunk_lengths(n, self.workers.len());
        let parts = self.fan_out(|i, ctx| {
            let mut out = Vec::new();
            discrete_laplace_many_into(num, den, alg, chunks[i], &mut *ctx.src, &mut out);
            out
        });
        parts.concat()
    }

    /// Draws `n` independent outputs of one mechanism across the pool —
    /// the concurrent form of
    /// [`Mechanism::run_many`](sampcert_core::Mechanism::run_many).
    /// The mechanism (and the program tree inside it) is shared by
    /// reference: `Mechanism` is `Sync`, so no worker rebuilds it.
    pub fn run_many<T: Sync + 'static, U: sampcert_slang::Value>(
        &mut self,
        mech: &Mechanism<T, U>,
        db: &[T],
        n: usize,
    ) -> Vec<U> {
        let chunks = chunk_lengths(n, self.workers.len());
        let parts = self.fan_out(|i, ctx| {
            let mut out = Vec::new();
            mech.run_many_into(db, chunks[i], &mut *ctx.src, &mut out);
            out
        });
        parts.concat()
    }

    /// [`run_many`](Self::run_many) behind a sharded ledger: worker `i`
    /// batch-charges shard `i` before serving its chunk.
    ///
    /// # Errors
    ///
    /// As in
    /// [`gaussian_noise_many_metered`](Self::gaussian_noise_many_metered):
    /// first refusing shard wins, successfully charged chunks stay
    /// charged, nothing is released on error.
    ///
    /// # Panics
    ///
    /// Panics if the ledger has fewer shards than the pool has workers.
    #[deprecated(note = "use Session with a sharded accountant and a pooled executor \
                (sampcert_core::Session + Request::from_private) — same per-shard \
                charge-before-serve, one front door")]
    pub fn run_many_metered<D: DpNoise, B: Budget, T: Sync + 'static, U: sampcert_slang::Value>(
        &mut self,
        mech: &Mechanism<T, U>,
        db: &[T],
        n: usize,
        gamma_each: f64,
        ledger: &ShardedLedger<D, B>,
    ) -> Result<Vec<U>, BudgetExceeded<B>> {
        assert!(
            ledger.shards() >= self.workers.len(),
            "ledger has fewer shards than the pool has workers"
        );
        let chunks = chunk_lengths(n, self.workers.len());
        let parts = self.fan_out(|i, ctx| {
            let mut handle = ledger.handle(i);
            handle.charge_batch(gamma_each, chunks[i] as u64)?;
            let mut out = Vec::new();
            mech.run_many_into(db, chunks[i], &mut *ctx.src, &mut out);
            Ok(out)
        });
        let mut values = Vec::with_capacity(n);
        for part in parts {
            values.extend(part?);
        }
        Ok(values)
    }

    /// [`run_many`](Self::run_many) charged to one principal's allowance
    /// in a [`BudgetRegistry`](sampcert_core::BudgetRegistry) — the
    /// per-principal metered path. The whole batch is admitted (or
    /// refused, naming the principal) as a single all-or-nothing
    /// composed charge **before** any worker draws a byte; a refusal
    /// therefore consumes no entropy at all.
    ///
    /// Durable (write-ahead journaled) per-principal serving goes through
    /// the [`Session`](sampcert_core::Session) front door instead
    /// (`.registry(...).durable(path)` with
    /// `.executor::<NoiseServer>(lanes)`), which layers the same
    /// charge-before-serve rule over a
    /// [`DurableRegistry`](sampcert_core::DurableRegistry).
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExceeded`] (with
    /// [`principal`](sampcert_core::BudgetExceeded::principal) set) when
    /// the batch does not fit the principal's allowance; their ledger is
    /// unchanged.
    pub fn run_many_for<
        D: sampcert_core::AbstractDp,
        B: Budget,
        T: Sync + 'static,
        U: sampcert_slang::Value,
    >(
        &mut self,
        principal: u64,
        mech: &Mechanism<T, U>,
        db: &[T],
        n: usize,
        gamma_each: f64,
        registry: &sampcert_core::BudgetRegistry<D, B>,
    ) -> Result<Vec<U>, BudgetExceeded<B>> {
        registry.charge_batch(principal, gamma_each, n as u64)?;
        Ok(self.run_many(mech, db, n))
    }

    /// Serves one [`histogram_batch`](crate::histogram_batch) request per
    /// database across the pool — the fleet form of histogram serving
    /// (many tenants, one binning scheme). Each worker runs whole
    /// requests, so every released histogram is byte-identical to the one
    /// the sequential `histogram_batch` would release from that worker's
    /// stream position.
    ///
    /// Privacy: each database is a separate dataset, so the requests do
    /// not compose — each costs
    /// [`histogram_gamma`](crate::histogram_gamma) on its own dataset's
    /// budget.
    ///
    /// # Panics
    ///
    /// Panics if `gamma_num` or `gamma_den` is zero.
    pub fn histogram_batches<D: DpNoise, T: Sync + 'static>(
        &mut self,
        bins: &Bins<T>,
        gamma_num: u64,
        gamma_den: u64,
        dbs: &[Vec<T>],
    ) -> Vec<Vec<i64>> {
        let ranges = chunk_ranges(dbs.len(), self.workers.len());
        let parts = self.fan_out(|i, ctx| {
            dbs[ranges[i].clone()]
                .iter()
                .map(|db| {
                    crate::histogram_batch::<D, T>(bins, gamma_num, gamma_den, db, &mut *ctx.src)
                })
                .collect::<Vec<_>>()
        });
        parts.concat()
    }

    /// Answers a query workload across the pool — the concurrent form of
    /// [`answer_workload`](crate::answer_workload). Queries are split into
    /// contiguous per-worker chunks; each worker builds (and caches, for
    /// the duration of the call) one noise program per distinct
    /// sensitivity in *its* chunk, evaluates its queries against the
    /// shared database, and the answers are reassembled in workload order
    /// as one [`NoiseBatch`] charging `noise_priv(γ₁, γ₂)` per answer.
    ///
    /// # Panics
    ///
    /// Panics if `gamma_num` or `gamma_den` is zero.
    pub fn answer_workload<D: DpNoise, T: Sync + 'static>(
        &mut self,
        queries: &[Query<T>],
        gamma_num: u64,
        gamma_den: u64,
        db: &[T],
    ) -> NoiseBatch<D, i64> {
        let ranges = chunk_ranges(queries.len(), self.workers.len());
        let parts = self.fan_out(|i, ctx| {
            let chunk = &queries[ranges[i].clone()];
            crate::answer_workload::<D, T>(chunk, gamma_num, gamma_den, db, &mut *ctx.src)
                .into_values()
        });
        NoiseBatch::new(parts.concat(), D::noise_priv(gamma_num, gamma_den))
    }
}

/// The pooled execution backend of a [`Session`](sampcert_core::Session):
/// each lane is one worker (its own byte stream and program cache), and
/// `run_into` fans the batch across the pool exactly as
/// [`run_many`](NoiseServer::run_many) does.
impl Executor for NoiseServer {
    fn lanes(&self) -> usize {
        self.workers.len()
    }

    fn run_into<T: Sync + 'static, U: sampcert_slang::Value>(
        &mut self,
        mech: &Mechanism<T, U>,
        db: &[T],
        n: usize,
        out: &mut Vec<U>,
    ) -> Result<(), ExecutorFailure> {
        let chunks = chunk_lengths(n, self.workers.len());
        let parts = self.fan_out(|i, ctx| {
            let mut part = Vec::new();
            mech.run_many_into(db, chunks[i], &mut *ctx.src, &mut part);
            part
        });
        for part in parts {
            out.extend(part);
        }
        Ok(())
    }
}

/// The sharded charge-before-serve hook: worker `i` batch-charges shard
/// `i` (as `chunkᵢ · units` releases of `gamma_unit`, matching the
/// per-unit exact-rounding rule of the unsharded metered paths) before
/// drawing a byte. This is what lets a sharded accountant legally pair
/// with the pool in a [`Session`](sampcert_core::Session).
impl ShardedExecutor for NoiseServer {
    fn run_sharded_into<
        D: sampcert_core::AbstractDp,
        B: Budget,
        T: Sync + 'static,
        U: sampcert_slang::Value,
    >(
        &mut self,
        mech: &Mechanism<T, U>,
        db: &[T],
        n: usize,
        gamma_unit: f64,
        units: u64,
        ledger: &ShardedLedger<D, B>,
        out: &mut Vec<U>,
    ) -> Result<(), SessionError<B>> {
        if ledger.shards() < self.workers.len() {
            return Err(SessionError::Executor(ExecutorFailure::new(format!(
                "ledger has {} shards but the pool has {} workers",
                ledger.shards(),
                self.workers.len()
            ))));
        }
        let chunks = chunk_lengths(n, self.workers.len());
        let parts = self.fan_out(|i, ctx| {
            let mut handle = ledger.handle(i);
            handle.charge_batch(gamma_unit, chunks[i] as u64 * units)?;
            let mut part = Vec::new();
            mech.run_many_into(db, chunks[i], &mut *ctx.src, &mut part);
            Ok(part)
        });
        // Collect every verdict before touching `out`: if any shard
        // refused, the successfully drawn chunks are discarded unreleased
        // (their charges stay spent — the conservative direction) and the
        // caller's buffer is left exactly as it was. `collect` surfaces
        // the first refusing shard in shard order.
        let served: Vec<Vec<U>> = parts
            .into_iter()
            .collect::<Result<_, _>>()
            .map_err(SessionError::Budget)?;
        for part in served {
            out.extend(part);
        }
        Ok(())
    }
}

/// Lets `SessionBuilder::executor::<NoiseServer>(lanes)` spawn the pool:
/// [`Entropy::Os`] maps to [`SeedBackend::OsEntropy`],
/// [`Entropy::Seeded`] to [`SeedBackend::Split`] (lane `i` draws
/// `root.stream(i)` — the same streams `SeedBackend::Deterministic` with
/// the same root derives).
impl SpawnExecutor for NoiseServer {
    fn spawn(entropy: Entropy, lanes: usize) -> Self {
        let seed = match entropy {
            Entropy::Os => SeedBackend::OsEntropy,
            Entropy::Seeded(root) => SeedBackend::Split(root),
        };
        NoiseServer::new(ServeConfig {
            workers: lanes.max(1),
            seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sampcert_core::{count_query, ExactShardedLedger, Ledger, PureDp, Zcdp};

    fn det_server(workers: usize, root: u64) -> NoiseServer {
        NoiseServer::new(ServeConfig {
            workers,
            seed: SeedBackend::Deterministic(root),
        })
    }

    #[test]
    fn chunk_lengths_partition() {
        assert_eq!(chunk_lengths(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(chunk_lengths(3, 4), vec![1, 1, 1, 0]);
        assert_eq!(chunk_lengths(0, 2), vec![0, 0]);
        assert_eq!(chunk_lengths(7, 1), vec![7]);
    }

    #[test]
    fn deterministic_serving_is_replayable() {
        let mut a = det_server(4, 11);
        let mut b = det_server(4, 11);
        let num = Nat::from(64u64);
        let xs = a.gaussian_noise_many(&num, &Nat::one(), LaplaceAlg::Switched, 1000);
        let ys = b.gaussian_noise_many(&num, &Nat::one(), LaplaceAlg::Switched, 1000);
        assert_eq!(xs, ys);
        // And stateful: a second call continues the streams, it does not
        // restart them.
        let xs2 = a.gaussian_noise_many(&num, &Nat::one(), LaplaceAlg::Switched, 1000);
        assert_ne!(xs, xs2);
        assert_eq!(
            xs2,
            b.gaussian_noise_many(&num, &Nat::one(), LaplaceAlg::Switched, 1000)
        );
    }

    #[test]
    fn worker_chunks_match_per_worker_sequential_streams() {
        // The concurrency is scheduling-only: worker i's chunk must equal
        // what the same batch primitive serves from stream i directly.
        let workers = 3;
        let n = 100;
        let mut server = det_server(workers, 5);
        let num = Nat::from(25u64);
        let den = Nat::from(2u64);
        let served = server.gaussian_noise_many(&num, &den, LaplaceAlg::Switched, n);

        let root = SplitSeed::new(5);
        let mut expect = Vec::new();
        for (i, len) in chunk_lengths(n, workers).into_iter().enumerate() {
            let mut src = root.stream(i as u64);
            discrete_gaussian_many_into(
                &num,
                &den,
                LaplaceAlg::Switched,
                len,
                &mut src,
                &mut expect,
            );
        }
        assert_eq!(served, expect);
    }

    #[test]
    fn run_many_serves_shared_mechanism() {
        let q = count_query::<u8>();
        let mech = PureDp::noise(&q, 1, 1);
        let db = vec![0u8; 50];
        let mut server = det_server(4, 9);
        let out = server.run_many(&mech, &db, 400);
        assert_eq!(out.len(), 400);
        let mean = out.iter().sum::<i64>() as f64 / 400.0;
        assert!((mean - 50.0).abs() < 1.0, "mean={mean}");
    }

    #[test]
    // Exercises the deprecated legacy path on purpose: it remains the
    // byte/charge reference the Session front door is pinned against.
    #[allow(deprecated)]
    fn metered_run_charges_shards_and_refuses_over_budget() {
        let q = count_query::<u8>();
        let mech = Zcdp::noise(&q, 1, 2);
        let gamma = Zcdp::noise_priv(1, 2); // ρ = 1/8 per answer
        let db = vec![0u8; 10];
        let mut server = det_server(2, 3);

        // 16 answers at ρ=1/8 need ρ=2 total; a budget of 2 admits them.
        let ledger: ExactShardedLedger<Zcdp> = ShardedLedger::new(2.0, 2);
        let out = server
            .run_many_metered(&mech, &db, 16, gamma, &ledger)
            .expect("fits");
        assert_eq!(out.len(), 16);
        assert_eq!(ledger.unallocated(), 0.0);

        // The next batch must be refused by a named shard.
        let err = server
            .run_many_metered(&mech, &db, 16, gamma, &ledger)
            .unwrap_err();
        assert!(err.shard.is_some());
        assert_eq!(err.carrier, "dyadic");
    }

    #[test]
    fn per_principal_metered_run_isolates_and_names_principals() {
        use sampcert_core::{Dyadic, ExactBudgetRegistry};
        let q = count_query::<u8>();
        let mech = PureDp::noise(&q, 1, 4); // ε = 1/4 per answer
        let gamma = PureDp::noise_priv(1, 4);
        let db = vec![0u8; 10];
        let mut server = det_server(2, 7);
        let registry: ExactBudgetRegistry<PureDp> = ExactBudgetRegistry::new(1.0, 2);

        let out = server
            .run_many_for(1, &mech, &db, 4, gamma, &registry)
            .expect("fits");
        assert_eq!(out.len(), 4);
        assert_eq!(registry.spent_exact(1), Dyadic::from(1u64));

        // Principal 1 is dry; the refusal names them and serves nothing.
        let err = server
            .run_many_for(1, &mech, &db, 1, gamma, &registry)
            .unwrap_err();
        assert_eq!(err.principal, Some(1));
        // Principal 2's allowance is untouched.
        let out = server
            .run_many_for(2, &mech, &db, 4, gamma, &registry)
            .expect("fresh principal fits");
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn histogram_fleet_matches_sequential_per_worker() {
        let bins = Bins::new(3, |v: &i64| (*v % 3).unsigned_abs() as usize);
        let dbs: Vec<Vec<i64>> = (0..8).map(|k| (0..40 + k).collect()).collect();
        let mut server = det_server(2, 21);
        let fleet = server.histogram_batches::<PureDp, i64>(&bins, 1, 1, &dbs);
        assert_eq!(fleet.len(), dbs.len());

        // Worker 0 served requests 0..4 from stream 0, worker 1 requests
        // 4..8 from stream 1 — replay both sequentially.
        let root = SplitSeed::new(21);
        let mut expect = Vec::new();
        for (w, range) in [(0u64, 0..4usize), (1, 4..8)] {
            let mut src = root.stream(w);
            for db in &dbs[range] {
                expect.push(crate::histogram_batch::<PureDp, i64>(
                    &bins, 1, 1, db, &mut src,
                ));
            }
        }
        assert_eq!(fleet, expect);
    }

    #[test]
    fn workload_answers_come_back_in_workload_order() {
        let queries: Vec<Query<i64>> = (0..10)
            .map(|i| Query::new(format!("q{i}"), 1, move |db: &[i64]| db.len() as i64 + i))
            .collect();
        let db: Vec<i64> = (0..30).collect();
        let mut server = det_server(3, 2);
        // Huge ε ⇒ near-zero noise: answer order is observable.
        let batch = server.answer_workload::<PureDp, i64>(&queries, 400, 1, &db);
        assert_eq!(batch.len(), 10);
        for (i, v) in batch.values().iter().enumerate() {
            assert_eq!(*v, 30 + i as i64, "answer {i} out of order");
        }
        // The batch charges like its sequential counterpart.
        let mut ledger: Ledger<PureDp> = Ledger::new(1e9);
        batch.charge(&mut ledger, "workload").unwrap();
        assert!((ledger.spent() - 10.0 * 400.0).abs() < 1e-6);
    }

    #[test]
    fn single_worker_pool_serves_inline() {
        let mut server = det_server(1, 13);
        let out =
            server.gaussian_noise_many(&Nat::from(4u64), &Nat::one(), LaplaceAlg::Switched, 64);
        let mut src = SplitSeed::new(13).stream(0);
        let mut expect = Vec::new();
        discrete_gaussian_many_into(
            &Nat::from(4u64),
            &Nat::one(),
            LaplaceAlg::Switched,
            64,
            &mut src,
            &mut expect,
        );
        assert_eq!(out, expect);
    }

    #[test]
    fn per_release_path_caches_programs() {
        let mut server = det_server(2, 1);
        let num = Nat::from(8u64);
        let _ = server.gaussian_noise_one(&num, &Nat::one(), LaplaceAlg::Switched);
        let _ = server.gaussian_noise_one(&num, &Nat::one(), LaplaceAlg::Switched);
        assert_eq!(server.workers[0].progs.len(), 1, "program rebuilt");
        let _ = server.gaussian_noise_one(&Nat::from(9u64), &Nat::one(), LaplaceAlg::Switched);
        assert_eq!(server.workers[0].progs.len(), 2);
        // Laplace programs cache under their own key.
        let _ = server.laplace_noise_one(&num, &Nat::one(), LaplaceAlg::Switched);
        let _ = server.laplace_noise_one(&num, &Nat::one(), LaplaceAlg::Switched);
        assert_eq!(server.workers[0].progs.len(), 3);
    }

    #[test]
    fn laplace_serving_splits_like_gaussian() {
        let mut server = det_server(4, 17);
        let out = server.laplace_noise_many(
            &Nat::from(5u64),
            &Nat::from(2u64),
            LaplaceAlg::Switched,
            401,
        );
        assert_eq!(out.len(), 401);
    }

    #[test]
    fn os_entropy_pool_works() {
        let mut server = NoiseServer::new(ServeConfig {
            workers: 2,
            seed: SeedBackend::OsEntropy,
        });
        let out =
            server.gaussian_noise_many(&Nat::from(4u64), &Nat::one(), LaplaceAlg::Switched, 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = NoiseServer::new(ServeConfig {
            workers: 0,
            seed: SeedBackend::OsEntropy,
        });
    }
}
