//! Accuracy guarantees for the noise mechanisms.
//!
//! A deployed DP system answers "how wrong can this released count be?"
//! alongside every release. These closed-form tail bounds come straight
//! from the verified PMFs (Eq. 6 and the discrete Gaussian), so they are
//! exact statements about the mechanisms in this workspace, not
//! continuous-distribution approximations.

use sampcert_samplers::pmf::gaussian_normalizer;

/// `P(|Z| ≥ m)` for the discrete Laplace with scale `t`: the exact tail
/// `2·s^m/(1+s)` with `s = e^{−1/t}` (for `m ≥ 1`; 1 at `m = 0`).
///
/// # Panics
///
/// Panics if `t` is not strictly positive.
pub fn laplace_tail(t: f64, m: i64) -> f64 {
    assert!(t > 0.0, "laplace_tail: scale must be positive");
    if m <= 0 {
        return 1.0;
    }
    let s = (-1.0 / t).exp();
    2.0 * s.powi(m as i32) / (1.0 + s)
}

/// The `(1 − β)`-accuracy of discrete Laplace noise with scale `t`: the
/// smallest `m` with `P(|Z| ≥ m) ≤ β`. A noised release is within `± (m−1)`
/// of the exact answer with probability at least `1 − β`.
///
/// # Panics
///
/// Panics if `t ≤ 0` or `β` is outside `(0, 1)`.
pub fn laplace_accuracy(t: f64, beta: f64) -> i64 {
    assert!(t > 0.0, "laplace_accuracy: scale must be positive");
    assert!(
        beta > 0.0 && beta < 1.0,
        "laplace_accuracy: beta outside (0,1)"
    );
    let s = (-1.0 / t).exp();
    let m = ((2.0 / (beta * (1.0 + s))).ln() / (1.0 / t)).ceil() as i64;
    // The closed form can overshoot by one at boundaries; tighten greedily.
    let mut m = m.max(1);
    while m > 1 && laplace_tail(t, m - 1) <= beta {
        m -= 1;
    }
    m
}

/// `P(|Z| ≥ m)` for the discrete Gaussian `N_ℤ(0, σ²)`, by exact
/// summation of the verified PMF.
///
/// # Panics
///
/// Panics if `sigma2` is not strictly positive.
pub fn gaussian_tail(sigma2: f64, m: i64) -> f64 {
    assert!(sigma2 > 0.0, "gaussian_tail: variance must be positive");
    if m <= 0 {
        return 1.0;
    }
    let n = gaussian_normalizer(sigma2);
    let mut tail = 0.0;
    let mut z = m;
    loop {
        let term = (-(z as f64) * (z as f64) / (2.0 * sigma2)).exp() / n;
        if term < 1e-20 {
            break;
        }
        tail += 2.0 * term;
        z += 1;
    }
    tail.min(1.0)
}

/// The `(1 − β)`-accuracy of discrete Gaussian noise with variance `σ²`.
///
/// # Panics
///
/// Panics if `sigma2 ≤ 0` or `β` is outside `(0, 1)`.
pub fn gaussian_accuracy(sigma2: f64, beta: f64) -> i64 {
    assert!(sigma2 > 0.0, "gaussian_accuracy: variance must be positive");
    assert!(
        beta > 0.0 && beta < 1.0,
        "gaussian_accuracy: beta outside (0,1)"
    );
    let mut m = 1i64;
    while gaussian_tail(sigma2, m) > beta {
        m += 1;
    }
    m
}

/// The accuracy of a pure-DP noised query at `(ε₁/ε₂)` with sensitivity
/// `Δ`: the `± bound` such that the release is within it with probability
/// `1 − β`. (The Laplace scale is `Δ·ε₂/ε₁`, as calibrated by the noise
/// instance.)
pub fn pure_dp_accuracy(sensitivity: u64, eps_num: u64, eps_den: u64, beta: f64) -> i64 {
    assert!(
        sensitivity > 0 && eps_num > 0 && eps_den > 0,
        "invalid parameters"
    );
    let t = sensitivity as f64 * eps_den as f64 / eps_num as f64;
    laplace_accuracy(t, beta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sampcert_samplers::pmf::laplace_cdf;

    #[test]
    fn laplace_tail_matches_cdf() {
        let t = 3.0;
        for m in 1i64..20 {
            // P(|Z| >= m) = P(Z <= -m) + 1 - P(Z <= m-1)
            let direct = laplace_cdf(t, -m) + 1.0 - laplace_cdf(t, m - 1);
            assert!(
                (laplace_tail(t, m) - direct).abs() < 1e-12,
                "m={m}: {} vs {direct}",
                laplace_tail(t, m)
            );
        }
        assert_eq!(laplace_tail(t, 0), 1.0);
    }

    #[test]
    fn laplace_accuracy_is_tight() {
        for t in [0.5, 2.0, 10.0] {
            for beta in [0.1, 0.01, 1e-6] {
                let m = laplace_accuracy(t, beta);
                assert!(laplace_tail(t, m) <= beta, "t={t} beta={beta} m={m}");
                if m > 1 {
                    assert!(
                        laplace_tail(t, m - 1) > beta,
                        "not tight: t={t} beta={beta} m={m}"
                    );
                }
            }
        }
    }

    #[test]
    fn gaussian_accuracy_is_tight_and_scales() {
        for sigma2 in [1.0, 16.0] {
            for beta in [0.05, 1e-4] {
                let m = gaussian_accuracy(sigma2, beta);
                assert!(gaussian_tail(sigma2, m) <= beta);
                if m > 1 {
                    assert!(gaussian_tail(sigma2, m - 1) > beta);
                }
            }
        }
        // ~2σ at β = 5%, ~4σ at β = 1e-4 (Gaussian intuition carries over).
        let m = gaussian_accuracy(16.0, 0.05);
        assert!((m - 8).abs() <= 1, "m={m}");
    }

    #[test]
    fn tails_decrease_monotonically() {
        for m in 1i64..30 {
            assert!(laplace_tail(2.0, m + 1) < laplace_tail(2.0, m));
            assert!(gaussian_tail(4.0, m + 1) <= gaussian_tail(4.0, m));
        }
    }

    #[test]
    fn pure_dp_accuracy_scales_with_sensitivity_and_eps() {
        let tight = pure_dp_accuracy(1, 2, 1, 0.05); // ε = 2
        let loose = pure_dp_accuracy(1, 1, 2, 0.05); // ε = 1/2
        assert!(loose > tight * 3, "tight={tight} loose={loose}");
        let sens5 = pure_dp_accuracy(5, 2, 1, 0.05);
        assert!(sens5 >= tight * 4, "sens5={sens5} tight={tight}");
    }

    #[test]
    fn accuracy_empirically_valid() {
        // Draw from the actual sampler: the bound must hold at the stated
        // confidence (with statistical slack).
        use sampcert_arith::Nat;
        use sampcert_samplers::{discrete_laplace, LaplaceAlg};
        use sampcert_slang::{Sampling, SeededByteSource};
        let t = 4.0;
        let beta = 0.1;
        let m = laplace_accuracy(t, beta);
        let prog =
            discrete_laplace::<Sampling>(&Nat::from(4u64), &Nat::one(), LaplaceAlg::Switched);
        let mut src = SeededByteSource::new(44);
        let n = 20_000;
        let violations = (0..n).filter(|_| prog.run(&mut src).abs() >= m).count();
        let rate = violations as f64 / n as f64;
        assert!(rate <= beta * 1.15, "violation rate {rate} vs beta {beta}");
        assert!(rate >= beta * 0.5, "bound suspiciously loose: {rate}");
    }

    #[test]
    #[should_panic(expected = "beta outside")]
    fn rejects_bad_beta() {
        let _ = laplace_accuracy(1.0, 1.0);
    }
}
