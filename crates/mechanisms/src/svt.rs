//! The Sparse Vector Technique (paper Appendix A, Listings 13–16).
//!
//! `AboveThreshold` (Dwork–Roth Algorithm 1) releases the index of the
//! first sensitivity-1 query in a stream whose value exceeds a noised
//! threshold, at privacy cost `ε` **independent of how many queries were
//! inspected** — the property that makes SVT asymptotically better than a
//! histogram for approximate maxima. As in the paper:
//!
//! - the threshold is noised once with `Lap(2/ε)` (`privNoiseThresh`), and
//!   every query with fresh `Lap(4/ε)` (`privNoiseGuess`);
//! - SVT is **not** derivable from the abstract composition interface —
//!   its bound enters through [`Private::from_asserted`], the counterpart
//!   of the paper's direct pure-DP proof for `sv1_aboveThresh` — and the
//!   bound is then *checked* by the divergence machinery on concrete
//!   neighbour pairs (this module's tests and `tests/svt_privacy.rs`);
//! - the multi-release [`sparse`] (Listing 15) *is* built from the
//!   abstract interface: adaptive composition of `AboveThreshold` runs on
//!   shifted query streams, giving `(c·ε)` by `privSparseAux_DP`'s
//!   induction (Listing 16);
//! - termination follows the paper's `has_lucky` recipe (footnote 7): the
//!   finite query list is extended by an implicit always-fires sentinel,
//!   so the loop is almost-surely (here: surely) terminating, and the
//!   sentinel index `queries.len()` means "no query exceeded".

use sampcert_arith::Nat;
use sampcert_core::{Mechanism, Private, PureDp, Query};
use sampcert_samplers::pmf::{laplace_cdf, laplace_pmf, laplace_radius};
use sampcert_samplers::{discrete_laplace, LaplaceAlg};
use sampcert_slang::{Sampling, SubPmf};
use std::sync::Arc;

/// Parameters of one AboveThreshold release.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SvtParams {
    /// The public threshold `T`.
    pub threshold: i64,
    /// Privacy numerator ε₁ (the release is `(ε₁/ε₂)`-DP).
    pub eps_num: u64,
    /// Privacy denominator ε₂.
    pub eps_den: u64,
}

impl SvtParams {
    /// The privacy parameter ε = ε₁/ε₂ as a float (reporting only; the
    /// noise itself is calibrated from the rationals).
    pub fn eps(&self) -> f64 {
        self.eps_num as f64 / self.eps_den as f64
    }

    /// Threshold-noise scale `2/ε` as `(num, den)`.
    fn tau_scale(&self) -> (u64, u64) {
        (2 * self.eps_den, self.eps_num)
    }

    /// Per-query noise scale `4/ε` as `(num, den)`.
    fn guess_scale(&self) -> (u64, u64) {
        (4 * self.eps_den, self.eps_num)
    }
}

/// The exact output distribution of AboveThreshold for the given exact
/// query values: `P(k) = Σ_τ Lap_{2/ε}(τ) · Π_{i<k} F(τ+T−qᵢ−1) ·
/// (1 − F(τ+T−q_k−1))`, with `F` the `Lap(4/ε)` CDF — the Dwork–Roth
/// `g_k` decomposition (the paper's `sv9` form) evaluated numerically.
fn above_threshold_dist(values: &[i64], params: SvtParams) -> SubPmf<u64, f64> {
    let (tn, td) = params.tau_scale();
    let (gn, gd) = params.guess_scale();
    let tau_scale = tn as f64 / td as f64;
    let guess_scale = gn as f64 / gd as f64;
    let radius = laplace_radius(tau_scale);
    let n = values.len();
    let mut out: SubPmf<u64, f64> = SubPmf::zero();
    for tau in -radius..=radius {
        let w_tau = laplace_pmf(tau_scale, tau);
        // continue probability for query i at this tau.
        let cont =
            |i: usize| -> f64 { laplace_cdf(guess_scale, tau + params.threshold - values[i] - 1) };
        let mut survive = 1.0f64;
        for (k, _) in values.iter().enumerate() {
            let c = cont(k);
            out.add_mass(k as u64, w_tau * survive * (1.0 - c));
            survive *= c;
            if survive < 1e-18 {
                break;
            }
        }
        // Sentinel: none of the n queries fired.
        out.add_mass(n as u64, w_tau * survive);
    }
    out
}

/// `sv1_aboveThresh` (Listing 13): the index of the first query whose
/// noised value meets the noised threshold, or `queries.len()` if none
/// does. `(ε₁/ε₂)`-pure-DP for sensitivity-1 queries, regardless of the
/// number of queries.
///
/// # Panics
///
/// Panics if `eps_num`/`eps_den` is zero, or if any query claims
/// sensitivity above 1 (the Dwork–Roth analysis is for sensitivity-1
/// streams; rescale queries first).
pub fn above_threshold<T: 'static>(
    queries: &[Query<T>],
    params: SvtParams,
) -> Private<PureDp, T, u64> {
    assert!(
        params.eps_num > 0 && params.eps_den > 0,
        "zero privacy parameter"
    );
    for q in queries {
        assert!(
            q.sensitivity() == 1,
            "above_threshold requires sensitivity-1 queries (got {} for `{}`)",
            q.sensitivity(),
            q.name()
        );
    }
    let queries: Arc<Vec<Query<T>>> = Arc::new(queries.to_vec());
    let queries2 = Arc::clone(&queries);
    let (tn, td) = params.tau_scale();
    let (gn, gd) = params.guess_scale();
    let tau_sampler =
        discrete_laplace::<Sampling>(&Nat::from(tn), &Nat::from(td), LaplaceAlg::Switched);
    let guess_sampler =
        discrete_laplace::<Sampling>(&Nat::from(gn), &Nat::from(gd), LaplaceAlg::Switched);

    let mech = Mechanism::from_parts(
        move |db, src| {
            let tau = tau_sampler.run(src);
            for (k, q) in queries.iter().enumerate() {
                let guess = guess_sampler.run(src);
                if q.eval(db) + guess >= tau + params.threshold {
                    return k as u64;
                }
            }
            queries.len() as u64
        },
        move |db| {
            let values: Vec<i64> = queries2.iter().map(|q| q.eval(db)).collect();
            above_threshold_dist(&values, params)
        },
    );
    Private::from_asserted(
        mech,
        params.eps(),
        "Dwork–Roth Thm 3.23 / paper Appendix A.1: AboveThreshold with \
         Lap(2/eps) threshold noise and Lap(4/eps) query noise is eps-DP",
    )
}

/// [`above_threshold`] as a [`Request`](sampcert_core::Request) for the
/// [`Session`](sampcert_core::Session) front door: one answer is one
/// AboveThreshold release (the firing index, or `queries.len()` for the
/// sentinel), priced at `ε = ε₁/ε₂` regardless of the stream length —
/// SVT's defining property, now metered by whichever accountant the
/// session was built with.
///
/// # Panics
///
/// As [`above_threshold`]: zero privacy parameters or a query of
/// sensitivity above 1.
pub fn svt_request<T: 'static>(
    queries: &[Query<T>],
    params: SvtParams,
) -> sampcert_core::Request<PureDp, T, u64> {
    sampcert_core::Request::from_private(
        &above_threshold(queries, params),
        format!("svt-above-threshold[{} queries]", queries.len()),
    )
}

/// `privSparse` (Listing 15): release the indices of the first `c` queries
/// exceeding the threshold, by adaptively re-running [`above_threshold`]
/// on the remaining stream. `(c·ε)`-DP by the abstract induction of
/// Listing 16 — built here from `compose_adaptive` + `postprocess` alone.
pub fn sparse<T: 'static>(
    queries: &[Query<T>],
    params: SvtParams,
    c: usize,
) -> Private<PureDp, T, Vec<u64>> {
    sparse_aux(Arc::new(queries.to_vec()), 0, params, c)
}

fn sparse_aux<T: 'static>(
    queries: Arc<Vec<Query<T>>>,
    offset: usize,
    params: SvtParams,
    c: usize,
) -> Private<PureDp, T, Vec<u64>> {
    if c == 0 || offset >= queries.len() {
        return Private::constant(Vec::new());
    }
    let head = above_threshold(&queries[offset..], params);
    let rest_budget = ((c - 1) * params.eps_num as usize) as f64 / params.eps_den as f64;
    let queries2 = Arc::clone(&queries);
    head.compose_adaptive(rest_budget, move |&k| {
        let next_offset = offset + k as usize + 1;
        sparse_aux(Arc::clone(&queries2), next_offset, params, c - 1).weaken(rest_budget)
    })
    .postprocess(move |(k, rest)| {
        // The sentinel ("nothing fired") ends the release.
        if offset + *k as usize >= queries.len() {
            return Vec::new();
        }
        let mut out = vec![offset as u64 + k];
        out.extend(rest.iter().copied());
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sampcert_core::CheckOptions;
    use sampcert_slang::SeededByteSource;

    /// Sensitivity-1 queries: count of rows above a per-query cutoff.
    fn cutoff_queries(cutoffs: &[i64]) -> Vec<Query<i64>> {
        cutoffs
            .iter()
            .map(|&c| {
                Query::new(format!("count>{c}"), 1, move |db: &[i64]| {
                    db.iter().filter(|v| **v > c).count() as i64
                })
            })
            .collect()
    }

    fn params(eps_num: u64, eps_den: u64, threshold: i64) -> SvtParams {
        SvtParams {
            threshold,
            eps_num,
            eps_den,
        }
    }

    #[test]
    fn dist_normalizes_and_finds_heavy_query() {
        // Query 1 is far above the threshold; it should fire with high
        // probability.
        let d = above_threshold_dist(&[0, 50, 0], params(2, 1, 10));
        assert!(
            (d.total_mass() - 1.0).abs() < 1e-9,
            "mass={}",
            d.total_mass()
        );
        assert!(d.mass(&1) > 0.9, "P(1)={}", d.mass(&1));
    }

    #[test]
    fn dist_sentinel_when_all_low() {
        let d = above_threshold_dist(&[0, 0], params(2, 1, 100));
        assert!(d.mass(&2) > 0.99, "P(sentinel)={}", d.mass(&2));
    }

    #[test]
    fn executable_matches_analytic() {
        let qs = cutoff_queries(&[100, 5, 0]);
        let db: Vec<i64> = (0..30).collect(); // q0=0... wait: values: >100:0, >5:24, >0:29
        let p = above_threshold(&qs, params(1, 1, 15));
        let analytic = p.dist(&db);
        let mut src = SeededByteSource::new(42);
        let n = 20_000;
        let mut counts = [0u64; 4];
        for _ in 0..n {
            counts[p.run(&db, &mut src) as usize] += 1;
        }
        for k in 0u64..4 {
            let emp = counts[k as usize] as f64 / n as f64;
            let ana = analytic.mass(&k);
            assert!(
                (emp - ana).abs() < 0.02,
                "k={k}: empirical {emp} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn above_threshold_is_eps_dp_on_neighbours() {
        let qs = cutoff_queries(&[3, 8]);
        let p = above_threshold(&qs, params(1, 1, 4));
        let db: Vec<i64> = (0..10).collect();
        let smaller: Vec<i64> = (1..10).collect();
        p.check_pair(&db, &smaller, CheckOptions::default())
            .expect("AboveThreshold is 1-DP on this pair");
    }

    #[test]
    fn privacy_independent_of_stream_length() {
        // 12 queries, same ε as 2 queries — the whole point of SVT.
        let qs = cutoff_queries(&(0..12).map(|i| i * 2).collect::<Vec<_>>());
        let p = above_threshold(&qs, params(1, 1, 6));
        assert_eq!(p.gamma(), 1.0);
        let db: Vec<i64> = (0..14).collect();
        let smaller: Vec<i64> = (1..14).collect();
        p.check_pair(&db, &smaller, CheckOptions::default())
            .expect("12-query AboveThreshold is still 1-DP");
    }

    #[test]
    fn sparse_budget_is_c_times_eps() {
        let qs = cutoff_queries(&[0, 2, 4, 6]);
        let s = sparse(&qs, params(1, 2, 3), 3);
        assert!((s.gamma() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn sparse_returns_increasing_indices() {
        let qs = cutoff_queries(&[100, 0, 100, 1, 100]);
        let s = sparse(&qs, params(4, 1, 10), 2);
        let db: Vec<i64> = (0..40).collect();
        let mut src = SeededByteSource::new(9);
        for _ in 0..50 {
            let out = s.run(&db, &mut src);
            assert!(out.len() <= 2);
            for w in out.windows(2) {
                assert!(w[0] < w[1], "indices must increase: {out:?}");
            }
        }
    }

    #[test]
    fn sparse_usually_finds_the_heavy_queries() {
        // Queries 1 and 3 are heavy (~39 and ~38 rows above cutoff vs
        // threshold 10); with tight noise they fire almost always.
        let qs = cutoff_queries(&[100, 0, 100, 1, 100]);
        let s = sparse(&qs, params(8, 1, 10), 2);
        let db: Vec<i64> = (0..40).collect();
        let mut src = SeededByteSource::new(10);
        let mut hits = 0;
        let n = 200;
        for _ in 0..n {
            if s.run(&db, &mut src) == vec![1, 3] {
                hits += 1;
            }
        }
        assert!(hits > n * 8 / 10, "hits={hits}/{n}");
    }

    #[test]
    fn sparse_privacy_checked() {
        let qs = cutoff_queries(&[2, 5]);
        let s = sparse(&qs, params(1, 1, 4), 2);
        let db: Vec<i64> = (0..8).collect();
        let smaller: Vec<i64> = (1..8).collect();
        s.check_pair(&db, &smaller, CheckOptions::default())
            .expect("sparse(2) is 2-DP on this pair");
    }

    #[test]
    #[should_panic(expected = "sensitivity-1")]
    fn rejects_high_sensitivity_queries() {
        let q = Query::new("sum", 5, |db: &[i64]| db.iter().sum());
        let _ = above_threshold(&[q], params(1, 1, 0));
    }
}
