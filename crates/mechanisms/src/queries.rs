//! Noised scalar statistics: count, bounded sum, and mean.
//!
//! These are the paper's bread-and-butter mechanisms ("count, sum, mean,
//! histogram, SVT, …" in Fig. 1's mechanism library), built purely from
//! the abstract interface: a noised count and a noised clamped sum are
//! base-case noise applications; the mean is their sequential composition
//! postprocessed by division — privacy accounting for all of it falls out
//! of the typed combinators, for any [`DpNoise`] instance.

use sampcert_core::{bounded_sum_query, count_query, DpNoise, Private, Request};

/// A noised count of the rows, at `noise_priv(γ₁, γ₂)`-ADP.
///
/// # Examples
///
/// ```
/// use sampcert_mechanisms::noised_count;
/// use sampcert_core::PureDp;
/// use sampcert_slang::SeededByteSource;
///
/// let m = noised_count::<PureDp, u32>(1, 1); // ε = 1
/// let mut src = SeededByteSource::new(0);
/// let _approx_len = m.run(&[10, 20, 30], &mut src);
/// ```
pub fn noised_count<D: DpNoise, T: 'static>(gamma_num: u64, gamma_den: u64) -> Private<D, T, i64> {
    Private::noised_query(&count_query(), gamma_num, gamma_den)
}

/// A noised sum with per-row clamping to `[lo, hi]`, at
/// `noise_priv(γ₁, γ₂)`-ADP. The noise is calibrated to the clamp-derived
/// sensitivity `max(|lo|, |hi|)`.
pub fn noised_bounded_sum<D: DpNoise>(
    lo: i64,
    hi: i64,
    gamma_num: u64,
    gamma_den: u64,
) -> Private<D, i64, i64> {
    Private::noised_query(&bounded_sum_query(lo, hi), gamma_num, gamma_den)
}

/// A noised mean of clamped values: releases `(noised sum, noised count)`
/// — postprocess with [`mean_of`] for the quotient. Sequential
/// composition: the total budget is `compose(noise_priv(γ₁, γ₂),
/// noise_priv(γ₁, γ₂))`, i.e. each of sum and count gets the given slice.
///
/// Releasing the raw pair rather than the quotient keeps the output
/// countable and lets consumers re-derive confidence information — the
/// same shape SampCert's mean mechanism produces before postprocessing.
pub fn noised_mean<D: DpNoise>(
    lo: i64,
    hi: i64,
    gamma_num: u64,
    gamma_den: u64,
) -> Private<D, i64, (i64, i64)> {
    noised_bounded_sum::<D>(lo, hi, gamma_num, gamma_den)
        .compose(&noised_count::<D, i64>(gamma_num, gamma_den))
}

/// [`noised_count`] as a [`Request`] for the
/// [`Session`](sampcert_core::Session) front door: each answer is one
/// noised count at `noise_priv(γ₁, γ₂)`.
///
/// # Examples
///
/// ```
/// use sampcert_core::{PureDp, Session};
/// use sampcert_mechanisms::count_request;
///
/// let mut session = Session::<PureDp>::builder()
///     .ledger(1.0)
///     .inline()
///     .seeded(0)
///     .build();
/// let req = count_request::<PureDp, u32>(1, 2); // ε = 1/2 per answer
/// let n = session.answer(&req, &[10, 20, 30]).unwrap();
/// assert!((n - 3).abs() < 40);
/// ```
pub fn count_request<D: DpNoise, T: 'static>(gamma_num: u64, gamma_den: u64) -> Request<D, T, i64> {
    Request::from_private(&noised_count::<D, T>(gamma_num, gamma_den), "noised-count")
}

/// [`noised_mean`] as a [`Request`] for the
/// [`Session`](sampcert_core::Session) front door: each answer is a
/// `(noised sum, noised count)` pair (postprocess with [`mean_of`]),
/// costing the composition of both slices.
pub fn mean_request<D: DpNoise>(
    lo: i64,
    hi: i64,
    gamma_num: u64,
    gamma_den: u64,
) -> Request<D, i64, (i64, i64)> {
    Request::from_private(
        &noised_mean::<D>(lo, hi, gamma_num, gamma_den),
        "noised-mean",
    )
}

/// The mean implied by a `(sum, count)` release, with the count floored at
/// one (a noised count can be nonpositive on tiny databases).
pub fn mean_of(release: &(i64, i64)) -> f64 {
    release.0 as f64 / (release.1.max(1)) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sampcert_core::{CheckOptions, PureDp, Zcdp};
    use sampcert_slang::SeededByteSource;

    #[test]
    fn count_budget_and_privacy() {
        let m = noised_count::<PureDp, u8>(1, 2);
        assert_eq!(m.gamma(), 0.5);
        m.check_pair(&[1, 2, 3], &[1, 2], CheckOptions::default())
            .expect("noised count is ε/2-DP");
    }

    #[test]
    fn sum_clamps_and_checks() {
        let m = noised_bounded_sum::<PureDp>(0, 8, 1, 1);
        // Sensitivity is 8, so the ε = 1 noise is 8× wider; still 1-DP
        // even when a row is far outside the clamp.
        m.check_pair(&[3, 100, -50], &[3, 100], CheckOptions::default())
            .expect("clamped sum is 1-DP");
    }

    #[test]
    fn mean_composes_budgets() {
        let m = noised_mean::<PureDp>(0, 10, 1, 2);
        assert_eq!(m.gamma(), 1.0); // 1/2 + 1/2
        let m2 = noised_mean::<Zcdp>(0, 10, 1, 2);
        assert_eq!(m2.gamma(), 0.25); // 1/8 + 1/8
    }

    #[test]
    fn mean_is_accurate_with_tight_noise() {
        let m = noised_mean::<PureDp>(0, 10, 20, 1); // very tight ε = 40
        let db: Vec<i64> = (0..200).map(|i| i % 11).collect(); // mean = 5
        let mut src = SeededByteSource::new(13);
        let rel = m.run(&db, &mut src);
        let mean = mean_of(&rel);
        assert!((mean - 5.0).abs() < 0.5, "mean={mean}");
    }

    #[test]
    fn mean_of_handles_degenerate_count() {
        assert_eq!(mean_of(&(10, 0)), 10.0);
        assert_eq!(mean_of(&(10, -3)), 10.0);
        assert_eq!(mean_of(&(9, 3)), 3.0);
    }
}
