//! Property-based tests for the mechanism library: budget arithmetic as a
//! function of randomized parameters, structural invariants of histogram
//! outputs, and SVT's stream-length independence.

use proptest::prelude::*;
use sampcert_core::{PureDp, Query, Zcdp};
use sampcert_mechanisms::{
    above_threshold, noised_count, noised_histogram, par_noised_histogram, sparse, Bins, SvtParams,
};
use sampcert_slang::SeededByteSource;

fn mod_bins(n: usize) -> Bins<i64> {
    Bins::new(n, move |v: &i64| (*v).unsigned_abs() as usize % n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn pure_histogram_budget_independent_of_bins(n_bins in 1usize..12, num in 1u64..6, den in 1u64..6) {
        let h = noised_histogram::<PureDp, i64>(&mod_bins(n_bins), num, den);
        prop_assert!((h.gamma() - num as f64 / den as f64).abs() < 1e-9);
        let par = par_noised_histogram::<PureDp, i64>(&mod_bins(n_bins), num, den);
        prop_assert!((par.gamma() - num as f64 / den as f64).abs() < 1e-9);
    }

    #[test]
    fn zcdp_histogram_budget_formula(n_bins in 1usize..10, num in 1u64..5, den in 1u64..5) {
        let h = noised_histogram::<Zcdp, i64>(&mod_bins(n_bins), num, den);
        let expect = 0.5 * (num as f64 / den as f64).powi(2) / n_bins as f64;
        prop_assert!((h.gamma() - expect).abs() < 1e-9, "{} vs {expect}", h.gamma());
    }

    #[test]
    fn histogram_output_shape(n_bins in 1usize..10, seed in any::<u64>()) {
        let h = noised_histogram::<PureDp, i64>(&mod_bins(n_bins), 8, 1);
        let db: Vec<i64> = (0..30).collect();
        let mut src = SeededByteSource::new(seed);
        let out = h.run(&db, &mut src);
        prop_assert_eq!(out.len(), n_bins);
    }

    #[test]
    fn histogram_counts_track_truth_with_tight_noise(n_bins in 2usize..6, seed in any::<u64>()) {
        let h = noised_histogram::<PureDp, i64>(&mod_bins(n_bins), 40, 1);
        let db: Vec<i64> = (0..(60 * n_bins as i64)).collect(); // 60 per bin
        let mut src = SeededByteSource::new(seed);
        let out = h.run(&db, &mut src);
        for c in out {
            prop_assert!((c - 60).abs() < 25, "count {c} far from 60");
        }
    }

    #[test]
    fn count_budget_is_ratio(num in 1u64..10, den in 1u64..10) {
        let m = noised_count::<PureDp, u8>(num, den);
        prop_assert!((m.gamma() - num as f64 / den as f64).abs() < 1e-12);
        let z = noised_count::<Zcdp, u8>(num, den);
        prop_assert!((z.gamma() - 0.5 * (num as f64 / den as f64).powi(2)).abs() < 1e-12);
    }

    #[test]
    fn svt_budget_independent_of_queries(n_queries in 1usize..20, num in 1u64..5, den in 1u64..5) {
        let qs: Vec<Query<i64>> = (0..n_queries)
            .map(|i| {
                let c = i as i64;
                Query::new(format!("q{i}"), 1, move |db: &[i64]| {
                    db.iter().filter(|v| **v > c).count() as i64
                })
            })
            .collect();
        let p = above_threshold(&qs, SvtParams { threshold: 3, eps_num: num, eps_den: den });
        prop_assert!((p.gamma() - num as f64 / den as f64).abs() < 1e-12);
    }

    #[test]
    fn sparse_budget_linear(c in 1usize..5, num in 1u64..4, den in 1u64..4) {
        let qs: Vec<Query<i64>> = (0..8)
            .map(|i| {
                let cut = i as i64;
                Query::new(format!("q{i}"), 1, move |db: &[i64]| {
                    db.iter().filter(|v| **v > cut).count() as i64
                })
            })
            .collect();
        let s = sparse(&qs, SvtParams { threshold: 4, eps_num: num, eps_den: den }, c);
        prop_assert!((s.gamma() - c as f64 * num as f64 / den as f64).abs() < 1e-9);
    }

    #[test]
    fn sparse_outputs_strictly_increasing(seed in any::<u64>(), c in 1usize..4) {
        let qs: Vec<Query<i64>> = (0..6)
            .map(|i| {
                let cut = (i % 3) as i64;
                Query::new(format!("q{i}"), 1, move |db: &[i64]| {
                    db.iter().filter(|v| **v > cut).count() as i64
                })
            })
            .collect();
        let s = sparse(&qs, SvtParams { threshold: 2, eps_num: 2, eps_den: 1 }, c);
        let db: Vec<i64> = (0..10).collect();
        let mut src = SeededByteSource::new(seed);
        let out = s.run(&db, &mut src);
        prop_assert!(out.len() <= c);
        for w in out.windows(2) {
            prop_assert!(w[0] < w[1], "{out:?}");
        }
        for v in &out {
            prop_assert!(*v < 6, "index out of range: {out:?}");
        }
    }
}
