//! # sampcert-baselines
//!
//! The comparators of the paper's evaluation (Section 4.2), rebuilt:
//!
//! - [`canonne`]: a function-for-function port of Canonne–Kamath–Steinke's
//!   reference implementation (`sample_dgauss`) over exact fractions —
//!   the "sample_dgauss (Algorithm 1)" series of Fig. 4;
//! - [`diffprivlib`]: IBM diffprivlib-style samplers — geometric-method
//!   Laplace and a float-parameterized discrete Gaussian whose runtime is
//!   linear in σ — the "diffprivlib (Algorithm 2)" series of Fig. 4;
//! - [`mironov`]: the broken floating-point Laplace of Mironov's attack,
//!   the workspace's positive control (the DP falsifier must flag it).

pub mod canonne;
pub mod diffprivlib;
pub mod mironov;

pub use canonne::{sample_dgauss, sample_dlaplace};
pub use diffprivlib::{uniform_f64, DiffprivlibGaussian, DiffprivlibLaplace};
pub use mironov::{reachable_outputs, MironovLaplace};
