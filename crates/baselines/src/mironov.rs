//! Mironov's broken floating-point Laplace mechanism (CCS 2012) — the
//! attack that motivates the entire discrete-sampling program of the
//! paper (Challenge 3, Section 1.1).
//!
//! The textbook implementation adds `−b·sign(u)·ln(1−2|u|)` to the true
//! answer, with `u` a double-precision uniform. Because floating-point
//! numbers are unevenly spaced, the *set of reachable outputs* depends on
//! the true answer: there exist doubles reachable from query value `v`
//! but not from `v + 1`. Observing such an output identifies the input
//! exactly — an infinite-ε breach of the claimed ε-DP, invisible to any
//! accuracy test.
//!
//! This module implements the vulnerable mechanism and the artifact the
//! attack exploits ([`reachable_outputs`]); `sampcert-stattest`'s
//! falsifier and the `float_attack` example use it as the positive
//! control that the verification pipeline catches real bugs.

use crate::diffprivlib::uniform_f64;
use sampcert_slang::ByteSource;
use std::collections::HashSet;

/// The classic floating-point Laplace mechanism: `value + Lap(scale)`
/// computed in `f64` by inverse-CDF sampling.
#[derive(Debug, Clone, Copy)]
pub struct MironovLaplace {
    scale: f64,
}

impl MironovLaplace {
    /// Creates the (vulnerable) mechanism with the given scale.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not strictly positive.
    pub fn new(scale: f64) -> Self {
        assert!(scale > 0.0, "MironovLaplace: nonpositive scale");
        MironovLaplace { scale }
    }

    /// One noised release of `value` — a double, as deployed systems did.
    pub fn sample(&self, value: f64, src: &mut dyn ByteSource) -> f64 {
        let u = uniform_f64(src) - 0.5;
        let noise = -self.scale * u.signum() * (1.0 - 2.0 * u.abs()).ln();
        value + noise
    }

    /// The release, keyed by raw bit pattern (an injective integer view of
    /// the double, suitable for the integer-event falsifier; the attack
    /// does not need this precision — coarse bit truncation works too,
    /// see [`Self::sample_bits_truncated`]).
    pub fn sample_bits(&self, value: f64, src: &mut dyn ByteSource) -> i64 {
        self.sample(value, src).to_bits() as i64
    }

    /// The release with the mantissa truncated to its top `keep` bits —
    /// a *coarsened* view of the output. The support mismatch survives
    /// coarsening precisely because the reachable-set gaps are structural,
    /// not a matter of the last ulp.
    pub fn sample_bits_truncated(&self, value: f64, keep: u32, src: &mut dyn ByteSource) -> i64 {
        let mask = !((1u64 << (52 - keep)) - 1);
        (self.sample(value, src).to_bits() & mask) as i64
    }
}

impl MironovLaplace {
    /// Decides whether `output` is reachable from query value `value` —
    /// the membership test at the heart of Mironov's attack. Inverts the
    /// noise function to the candidate uniform `u*` and round-trips the
    /// handful of representable doubles around it; floating-point output
    /// grids are sparse enough that a released double is reachable from
    /// (almost) exactly one input.
    pub fn is_reachable(&self, value: f64, output: f64) -> bool {
        let noise = output - value;
        // noise = −b·sign(u)·ln(1 − 2|u|); the log factor is nonpositive,
        // so sign(noise) = sign(u) and |u| = (1 − e^{−|noise|/b})/2.
        let mag = (1.0 - (-noise.abs() / self.scale).exp()) / 2.0;
        let u_star = if noise >= 0.0 { mag } else { -mag };
        // Scan the representable doubles around u*, and around the raw
        // uniform grid point (u is `k·2⁻⁵³ − 0.5` for integer k).
        let k = ((u_star + 0.5) * 9_007_199_254_740_992.0).round() as i64;
        for dk in -4i64..=4 {
            let u = ((k + dk) as f64) * (1.0 / 9_007_199_254_740_992.0) - 0.5;
            let candidate = value + (-self.scale * u.signum() * (1.0 - 2.0 * u.abs()).ln());
            if candidate == output {
                return true;
            }
        }
        false
    }
}

/// Enumerates the outputs of the mechanism reachable from `value` over all
/// `2^bits` possible top-`bits` randomness values (a coarse sweep of the
/// uniform's range, enough to exhibit reachability gaps).
pub fn reachable_outputs(mech: &MironovLaplace, value: f64, bits: u32) -> HashSet<u64> {
    assert!(bits <= 20, "reachable_outputs: sweep too large");
    let mut out = HashSet::new();
    let n = 1u64 << bits;
    for i in 0..n {
        let u = (i as f64 + 0.5) / n as f64 - 0.5;
        let noise = -mech.scale * u.signum() * (1.0 - 2.0 * u.abs()).ln();
        out.insert((value + noise).to_bits());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sampcert_slang::SeededByteSource;

    #[test]
    fn accuracy_looks_fine() {
        // The broken mechanism *passes* accuracy checks — that is the
        // point of the attack.
        let m = MironovLaplace::new(2.0);
        let mut src = SeededByteSource::new(1);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| m.sample(10.0, &mut src)).sum();
        let mean = sum / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn reachable_sets_differ_between_neighbours() {
        // The heart of Mironov's observation: outputs reachable from 0
        // are (mostly) not reachable from 1 — the supports barely overlap,
        // where true ε-DP demands they coincide.
        let m = MironovLaplace::new(1.0);
        let from_0 = reachable_outputs(&m, 0.0, 14);
        let from_1 = reachable_outputs(&m, 1.0, 14);
        let overlap = from_0.intersection(&from_1).count();
        assert!(
            (overlap as f64) < 0.01 * from_0.len() as f64,
            "supports overlap too much to demonstrate the attack: {overlap}/{}",
            from_0.len()
        );
    }

    #[test]
    fn truncated_bits_still_distinguish() {
        // Even after truncating the mantissa, neighbouring inputs yield
        // nearly disjoint output sets at moderate precision.
        let m = MironovLaplace::new(1.0);
        let mut src = SeededByteSource::new(2);
        let n = 4000;
        let a: HashSet<i64> = (0..n)
            .map(|_| m.sample_bits_truncated(0.0, 40, &mut src))
            .collect();
        let b: HashSet<i64> = (0..n)
            .map(|_| m.sample_bits_truncated(1.0, 40, &mut src))
            .collect();
        let overlap = a.intersection(&b).count();
        assert!(
            (overlap as f64) < 0.05 * a.len() as f64,
            "overlap {overlap} of {}",
            a.len()
        );
    }

    #[test]
    fn reachability_oracle_identifies_the_input() {
        // The full attack: every released double is reachable from its
        // true input, and (almost) never from the neighbouring one.
        let m = MironovLaplace::new(1.0);
        let mut src = SeededByteSource::new(5);
        let n = 2_000;
        let mut own = 0;
        let mut other = 0;
        for _ in 0..n {
            let o = m.sample(0.0, &mut src);
            if m.is_reachable(0.0, o) {
                own += 1;
            }
            if m.is_reachable(1.0, o) {
                other += 1;
            }
        }
        assert!(
            own > n * 99 / 100,
            "oracle misses its own outputs: {own}/{n}"
        );
        // Most outputs are *provably* not from the neighbouring input —
        // an infinite-ε event for every such release. (A minority falls
        // on grid coincidences; the attack does not need them.)
        assert!(
            other < n * 3 / 10,
            "neighbouring input explains too many outputs: {other}/{n}"
        );
    }

    #[test]
    #[should_panic(expected = "nonpositive scale")]
    fn rejects_bad_scale() {
        let _ = MironovLaplace::new(-1.0);
    }
}
