//! A port of IBM diffprivlib's samplers — the paper's second baseline.
//!
//! Two properties of diffprivlib matter for the evaluation (Section 4.2):
//!
//! 1. its discrete Gaussian draws the Laplace candidate by the
//!    **geometric method** whose expected trial count grows linearly with
//!    the scale — the source of the linear-in-σ runtime curve in Fig. 4
//!    (fast at small σ, overtaken as σ grows);
//! 2. it computes sampling parameters and Bernoulli biases with
//!    **floating-point** arithmetic (`exp`, division), trading exactness
//!    for speed — precisely the class of shortcut SampCert exists to
//!    avoid. The bias error is tiny but unquantified; the paper's point is
//!    assurance, not that diffprivlib's outputs are visibly wrong.

use sampcert_slang::ByteSource;

/// A uniform `f64` in `[0, 1)` from 53 random bits (the standard
/// float-based uniform used throughout diffprivlib).
pub fn uniform_f64(src: &mut dyn ByteSource) -> f64 {
    let mut v: u64 = 0;
    for _ in 0..7 {
        v = (v << 8) | src.next_byte() as u64;
    }
    (v >> 3) as f64 * (1.0 / 9_007_199_254_740_992.0) // 2^-53
}

/// Bernoulli trial with a floating-point bias.
fn bernoulli_f64(p: f64, src: &mut dyn ByteSource) -> bool {
    uniform_f64(src) < p
}

/// diffprivlib-style discrete Laplace via the geometric method: magnitude
/// `m ~ Geom(1 − e^{−1/scale})` with a float success probability, fair
/// sign, `(+, 0)` resampled. Expected iterations `≈ scale + 1`.
#[derive(Debug, Clone, Copy)]
pub struct DiffprivlibLaplace {
    /// `e^{−1/scale}`, precomputed in floating point.
    p_continue: f64,
}

impl DiffprivlibLaplace {
    /// Creates a sampler with the given (float) scale.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not strictly positive.
    pub fn new(scale: f64) -> Self {
        assert!(scale > 0.0, "DiffprivlibLaplace: nonpositive scale");
        DiffprivlibLaplace {
            p_continue: (-1.0 / scale).exp(),
        }
    }

    /// Draws one sample.
    pub fn sample(&self, src: &mut dyn ByteSource) -> i64 {
        loop {
            let mut magnitude = 0i64;
            while bernoulli_f64(self.p_continue, src) {
                magnitude += 1;
            }
            let negative = bernoulli_f64(0.5, src);
            if negative && magnitude == 0 {
                continue;
            }
            return if negative { -magnitude } else { magnitude };
        }
    }
}

/// diffprivlib-style discrete Gaussian (`GaussianDiscrete`): the
/// Canonne rejection scheme with the geometric-method Laplace candidate
/// and float-computed acceptance bias. Runtime linear in σ.
#[derive(Debug, Clone, Copy)]
pub struct DiffprivlibGaussian {
    sigma: f64,
    t: f64,
    lap: DiffprivlibLaplace,
}

impl DiffprivlibGaussian {
    /// Creates a sampler for `N_ℤ(0, sigma²)`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is not strictly positive.
    pub fn new(sigma: f64) -> Self {
        assert!(sigma > 0.0, "DiffprivlibGaussian: nonpositive sigma");
        let t = sigma.floor() + 1.0;
        DiffprivlibGaussian {
            sigma,
            t,
            lap: DiffprivlibLaplace::new(t),
        }
    }

    /// Draws one sample.
    pub fn sample(&self, src: &mut dyn ByteSource) -> i64 {
        let sigma2 = self.sigma * self.sigma;
        loop {
            let y = self.lap.sample(src);
            let centered = (y.abs() as f64) - sigma2 / self.t;
            let bias = (-(centered * centered) / (2.0 * sigma2)).exp();
            if bernoulli_f64(bias, src) {
                return y;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sampcert_slang::SeededByteSource;

    #[test]
    fn uniform_f64_in_range_and_spread() {
        let mut src = SeededByteSource::new(1);
        let n = 10_000;
        let vals: Vec<f64> = (0..n).map(|_| uniform_f64(&mut src)).collect();
        assert!(vals.iter().all(|v| (0.0..1.0).contains(v)));
        let mean = vals.iter().sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn laplace_moments() {
        let scale = 5.0f64;
        let lap = DiffprivlibLaplace::new(scale);
        let mut src = SeededByteSource::new(2);
        let n = 30_000;
        let (mut sum, mut sumsq) = (0f64, 0f64);
        for _ in 0..n {
            let z = lap.sample(&mut src) as f64;
            sum += z;
            sumsq += z * z;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        let e = (1.0 / scale).exp();
        let expect = 2.0 * e / (e - 1.0) / (e - 1.0);
        assert!(mean.abs() < 0.3, "mean={mean}");
        assert!(
            (var - expect).abs() / expect < 0.06,
            "var={var} expect={expect}"
        );
    }

    #[test]
    fn gaussian_moments() {
        let g = DiffprivlibGaussian::new(6.0);
        let mut src = SeededByteSource::new(3);
        let n = 30_000;
        let (mut sum, mut sumsq) = (0f64, 0f64);
        for _ in 0..n {
            let z = g.sample(&mut src) as f64;
            sum += z;
            sumsq += z * z;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.25, "mean={mean}");
        assert!((var - 36.0).abs() / 36.0 < 0.05, "var={var}");
    }

    #[test]
    fn runtime_proxy_is_linear_in_sigma() {
        // Count bytes consumed (a machine-independent runtime proxy): the
        // geometric method's entropy use grows roughly linearly with σ.
        use sampcert_slang::CountingByteSource;
        let consumption = |sigma: f64| {
            let g = DiffprivlibGaussian::new(sigma);
            let mut src = CountingByteSource::new(SeededByteSource::new(4));
            for _ in 0..300 {
                g.sample(&mut src);
            }
            src.bytes_read() as f64 / 300.0
        };
        let at_5 = consumption(5.0);
        let at_40 = consumption(40.0);
        assert!(
            at_40 > at_5 * 4.0,
            "expected roughly linear growth: σ=5 → {at_5}, σ=40 → {at_40}"
        );
    }

    #[test]
    #[should_panic(expected = "nonpositive sigma")]
    fn rejects_bad_sigma() {
        let _ = DiffprivlibGaussian::new(0.0);
    }
}
