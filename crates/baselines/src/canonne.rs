//! A faithful port of the Canonne–Kamath–Steinke **reference
//! implementation** (`sample_dgauss`), the paper's first baseline in
//! Fig. 4.
//!
//! The reference code is written in Python over `fractions.Fraction`;
//! this port preserves its structure function-for-function over
//! [`Rat`]/[`Nat`] — including the design choices that make it slower
//! than SampCert's extracted sampler: general-purpose fraction arithmetic
//! with gcd reduction on every operation, fractions constructed in inner
//! loops, and no algorithm switching. The *algorithms* are the same family
//! as `sampcert-samplers`; the constant-factor gap between this port and
//! the fused/extracted samplers reproduces the `sample_dgauss` vs
//! SampCert comparison (shape, not absolute numbers — see EXPERIMENTS.md).

use sampcert_arith::{Int, Nat, Rat};
use sampcert_slang::ByteSource;

/// `sample_uniform(m)`: uniform in `[0, m)` by bit rejection.
fn sample_uniform(m: &Nat, src: &mut dyn ByteSource) -> Nat {
    assert!(!m.is_zero(), "sample_uniform: empty range");
    let bits = m.bit_length();
    let n_bytes = bits.div_ceil(8);
    loop {
        let mut bytes = Vec::with_capacity(n_bytes as usize);
        for _ in 0..n_bytes {
            bytes.push(src.next_byte());
        }
        let v = Nat::from_be_bytes(&bytes).low_bits(bits);
        if v < *m {
            return v;
        }
    }
}

/// `sample_bernoulli(p)` for a fraction `p ∈ [0, 1]`.
fn sample_bernoulli(p: &Rat, src: &mut dyn ByteSource) -> bool {
    debug_assert!(!p.is_negative() && *p <= Rat::one());
    let m = sample_uniform(p.denom(), src);
    Int::from_nat(m) < *p.numer()
}

/// `sample_bernoulli_exp1(x)`: Bernoulli(e^{−x}) for `x ∈ [0, 1]`.
fn sample_bernoulli_exp1(x: &Rat, src: &mut dyn ByteSource) -> bool {
    let mut k = 1u64;
    loop {
        // The reference constructs the fraction x/k afresh each trial.
        let trial = x / &Rat::from_int(k as i64);
        if sample_bernoulli(&trial, src) {
            k += 1;
        } else {
            break;
        }
    }
    // First failure at trial k: the alternating series makes the success
    // probability e^{−x} exactly when k is odd (the reference's
    // `return k % 2`).
    k % 2 == 1
}

/// `sample_bernoulli_exp(x)`: Bernoulli(e^{−x}) for any `x ≥ 0`.
fn sample_bernoulli_exp(x: &Rat, src: &mut dyn ByteSource) -> bool {
    let mut x = x.clone();
    let one = Rat::one();
    while x > one {
        if sample_bernoulli_exp1(&one, src) {
            x = &x - &one;
        } else {
            return false;
        }
    }
    sample_bernoulli_exp1(&x, src)
}

/// `sample_geometric_exp_slow(x)`: Geometric(1 − e^{−x}) supported on
/// `{0, 1, …}` by repeated `e^{−x}` trials.
fn sample_geometric_exp_slow(x: &Rat, src: &mut dyn ByteSource) -> u64 {
    let mut k = 0u64;
    while sample_bernoulli_exp(x, src) {
        k += 1;
    }
    k
}

/// `sample_geometric_exp_fast(x)`: same distribution via the
/// uniform-fractional-part decomposition (`x = s/t`).
fn sample_geometric_exp_fast(x: &Rat, src: &mut dyn ByteSource) -> u64 {
    if x.is_zero() {
        return 0;
    }
    let t = x.denom().clone();
    let s = x.numer().magnitude().clone();
    let u = loop {
        let u = sample_uniform(&t, src);
        let frac = Rat::new(Int::from_nat(u.clone()), t.clone());
        if sample_bernoulli_exp1(&frac, src) {
            break u;
        }
    };
    let v = sample_geometric_exp_slow(&Rat::one(), src);
    let value = &(&Nat::from(v) * &t) + &u;
    (&value / &s)
        .to_u64()
        .expect("geometric sample exceeds u64")
}

/// `sample_dlaplace(scale)`: discrete Laplace on ℤ with the given scale.
pub fn sample_dlaplace(scale: &Rat, src: &mut dyn ByteSource) -> i64 {
    assert!(*scale > Rat::zero(), "sample_dlaplace: nonpositive scale");
    let inv = scale.recip();
    loop {
        let sign = sample_bernoulli(&Rat::from_ratio(1, 2), src);
        let magnitude = sample_geometric_exp_fast(&inv, src) as i64;
        if sign && magnitude == 0 {
            continue;
        }
        return if sign { -magnitude } else { magnitude };
    }
}

/// `floorsqrt(x)`: largest integer `n` with `n² ≤ x`, for a fraction `x`.
fn floorsqrt(x: &Rat) -> Nat {
    debug_assert!(!x.is_negative());
    // Start from the integer part's isqrt and adjust (the reference uses
    // a doubling-then-bisection search; the result is identical).
    let mut n = x.floor().magnitude().isqrt();
    let le = |n: &Nat| Rat::from(n.clone()).powi(2) <= *x;
    while !le(&n) {
        n = &n - &Nat::one();
    }
    loop {
        let next = &n + &Nat::one();
        if le(&next) {
            n = next;
        } else {
            return n;
        }
    }
}

/// `sample_dgauss(σ²)`: the reference discrete Gaussian sampler.
///
/// # Panics
///
/// Panics if `sigma2` is not strictly positive.
pub fn sample_dgauss(sigma2: &Rat, src: &mut dyn ByteSource) -> i64 {
    assert!(*sigma2 > Rat::zero(), "sample_dgauss: nonpositive variance");
    let t = Rat::from(&floorsqrt(sigma2) + &Nat::one());
    loop {
        let candidate = sample_dlaplace(&t, src);
        // bias = (|Y| − σ²/t)² / (2σ²), exactly as the reference writes it.
        let abs_y = Rat::from_int(candidate.abs());
        let centered = &abs_y - &(sigma2 / &t);
        let bias = &(&centered * &centered) / &(&Rat::from_ratio(2, 1) * sigma2);
        if sample_bernoulli_exp(&bias, src) {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sampcert_slang::SeededByteSource;

    fn rat(n: i64, d: u64) -> Rat {
        Rat::new(Int::from(n), Nat::from(d))
    }

    #[test]
    fn bernoulli_frequency() {
        let mut src = SeededByteSource::new(1);
        let p = rat(3, 10);
        let n = 20_000;
        let hits = (0..n).filter(|_| sample_bernoulli(&p, &mut src)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.02, "freq={freq}");
    }

    #[test]
    fn bernoulli_exp_frequency() {
        let mut src = SeededByteSource::new(2);
        for (x, d) in [(1i64, 2u64), (1, 1), (5, 2)] {
            let p = rat(x, d);
            let expect = (-(x as f64) / d as f64).exp();
            let n = 20_000;
            let hits = (0..n)
                .filter(|_| sample_bernoulli_exp(&p, &mut src))
                .count();
            let freq = hits as f64 / n as f64;
            assert!(
                (freq - expect).abs() < 0.02,
                "x={x}/{d}: freq={freq} expect={expect}"
            );
        }
    }

    #[test]
    fn geometric_fast_and_slow_agree_in_mean() {
        let mut src = SeededByteSource::new(3);
        let x = rat(1, 3);
        let n = 10_000;
        let mean = |f: &mut dyn FnMut(&mut SeededByteSource) -> u64, src: &mut SeededByteSource| {
            (0..n).map(|_| f(src)).sum::<u64>() as f64 / n as f64
        };
        let slow = mean(&mut |s| sample_geometric_exp_slow(&x, s), &mut src);
        let fast = mean(&mut |s| sample_geometric_exp_fast(&x, s), &mut src);
        // E = e^{-x}/(1-e^{-x}) ≈ 2.5277
        let expect = (-1.0f64 / 3.0).exp() / (1.0 - (-1.0f64 / 3.0).exp());
        assert!((slow - expect).abs() < 0.1, "slow={slow}");
        assert!((fast - expect).abs() < 0.1, "fast={fast}");
    }

    #[test]
    fn dlaplace_moments() {
        let mut src = SeededByteSource::new(4);
        let scale = rat(3, 1);
        let n = 20_000;
        let (mut sum, mut sumsq) = (0f64, 0f64);
        for _ in 0..n {
            let z = sample_dlaplace(&scale, &mut src) as f64;
            sum += z;
            sumsq += z * z;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        let e = (1.0f64 / 3.0).exp();
        let expect = 2.0 * e / (e - 1.0) / (e - 1.0);
        assert!(mean.abs() < 0.15, "mean={mean}");
        assert!(
            (var - expect).abs() / expect < 0.06,
            "var={var} expect={expect}"
        );
    }

    #[test]
    fn floorsqrt_cases() {
        assert_eq!(floorsqrt(&rat(0, 1)), Nat::zero());
        assert_eq!(floorsqrt(&rat(1, 1)), Nat::from(1u64));
        assert_eq!(floorsqrt(&rat(99, 1)), Nat::from(9u64));
        assert_eq!(floorsqrt(&rat(100, 1)), Nat::from(10u64));
        // 6.25: sqrt = 2.5, floor 2.
        assert_eq!(floorsqrt(&rat(25, 4)), Nat::from(2u64));
    }

    #[test]
    fn dgauss_moments() {
        let mut src = SeededByteSource::new(5);
        let sigma2 = rat(16, 1);
        let n = 20_000;
        let (mut sum, mut sumsq) = (0f64, 0f64);
        for _ in 0..n {
            let z = sample_dgauss(&sigma2, &mut src) as f64;
            sum += z;
            sumsq += z * z;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.15, "mean={mean}");
        assert!((var - 16.0).abs() / 16.0 < 0.05, "var={var}");
    }

    #[test]
    fn dgauss_fractional_variance() {
        let mut src = SeededByteSource::new(6);
        let sigma2 = rat(9, 4); // σ = 1.5
        let n = 20_000;
        let sumsq: f64 = (0..n)
            .map(|_| {
                let z = sample_dgauss(&sigma2, &mut src) as f64;
                z * z
            })
            .sum();
        let var = sumsq / n as f64;
        assert!((var - 2.25).abs() / 2.25 < 0.07, "var={var}");
    }

    #[test]
    #[should_panic(expected = "nonpositive variance")]
    fn dgauss_rejects_zero_variance() {
        let mut src = SeededByteSource::new(7);
        let _ = sample_dgauss(&Rat::zero(), &mut src);
    }
}
