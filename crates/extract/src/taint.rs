//! Secret-dependent-timing taint analysis over the deep IR.
//!
//! The paper's named future work (Section 7) is to "model and prove
//! non-existence of timing side-channels" in the verified samplers. This
//! module is the *deciding* half of that program for the extraction
//! pipeline: a static dataflow analysis that classifies every IR program
//! as [`Verdict::ConstantTimeShaped`] or [`Verdict::Leaks`], with a
//! source-located witness for each leak.
//!
//! # The analysis
//!
//! Entropy is the secret. The IR's only probabilistic primitive is
//! `Stmt::Byte`, so a value is **tainted** exactly when it is (an
//! over-approximation of) a function of drawn bytes:
//!
//! - `Byte(l)` taints `l`;
//! - `Assign(l, e)` taints `l` iff `e` reads a tainted local, or the
//!   assignment executes under entropy-dependent control flow (implicit
//!   flows are tracked through a program-counter taint, so a branch on a
//!   byte cannot launder taint into a "clean" local);
//! - loops are solved to a least fixpoint over the finite powerset
//!   lattice of tainted locals (taint at the loop head only grows, so the
//!   iteration terminates).
//!
//! A **timing leak** is any construct whose execution *shape* or
//! per-operation latency depends on a tainted value:
//!
//! - [`LeakKind::Branch`] — an `if` condition reads taint: which arm runs
//!   (and its instruction count) is entropy-dependent;
//! - [`LeakKind::LoopBound`] — a `while` guard reads taint: the trip
//!   count, and hence total latency, is entropy-dependent (this is the
//!   rejection-sampling channel `examples/timing_channels.rs` measures);
//! - [`LeakKind::OpLatency`] — a `/` or `%` has a tainted operand:
//!   division latency varies with operand magnitude on real hardware even
//!   when the instruction *count* is fixed.
//!
//! # Soundness
//!
//! The verdict errs only toward `Leaks`: taint over-approximates
//! entropy dependence, and every entropy-dependent guard is tainted (data
//! dependence by induction on the transfer function; control dependence
//! via the pc-taint). Hence if the analysis reports
//! [`Verdict::ConstantTimeShaped`], **no** guard in the program depends
//! on drawn bytes, so every execution follows the same statement path,
//! retires the same instruction sequence, and consumes the same number of
//! entropy bytes — and no variable-latency operation touches an
//! entropy-derived operand. The executable form of this argument is
//! pinned two ways: a proptest over randomly generated IR programs
//! (`crates/extract/tests/taint_soundness.rs` — constant-time-shaped ⇒
//! identical [`crate::RunTrace`] across entropy streams) and the
//! `stattest`-powered falsifier (`tests/timing_leakage.rs` — leaky
//! verdicts show the correlation, constant-time verdicts pass a powered
//! negative control).

use crate::ir::{BinOp, Expr, Program, Stmt};
use crate::pretty::render_expr;
use std::fmt;

/// The class of a timing leak.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LeakKind {
    /// An `if` condition depends on entropy: the executed arm — and its
    /// cost — reveals information about the drawn bytes.
    Branch,
    /// A `while` guard depends on entropy: the trip count is the
    /// rejection-sampler side channel (latency ∝ iterations).
    LoopBound,
    /// A division or remainder has an entropy-dependent operand:
    /// variable-latency arithmetic leaks magnitude even at a fixed
    /// instruction count.
    OpLatency,
}

impl LeakKind {
    /// Stable lower-case token used in verdict signatures and JSON rows.
    pub fn token(self) -> &'static str {
        match self {
            LeakKind::Branch => "branch",
            LeakKind::LoopBound => "loop-bound",
            LeakKind::OpLatency => "op-latency",
        }
    }
}

impl fmt::Display for LeakKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// One located timing leak: what kind, where (the chain of enclosing
/// control constructs, outermost first, rendered in [`crate::render`]'s
/// source syntax), the flagged expression, and which tainted locals it
/// reads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The leak class.
    pub kind: LeakKind,
    /// Enclosing `while`/`if` constructs, outermost first, each rendered
    /// with its guard — the path from the program root to the finding.
    pub path: Vec<String>,
    /// The flagged guard (for `Branch`/`LoopBound`) or operation (for
    /// `OpLatency`), rendered as source.
    pub snippet: String,
    /// Names of the tainted locals the snippet reads — the entropy-derived
    /// values the timing observable depends on.
    pub tainted: Vec<String>,
}

impl Finding {
    /// Renders the finding as a one-line witness:
    /// `while (!done3) ▸ if (sign0): branch on entropy-derived {sign0}`.
    pub fn witness(&self) -> String {
        let mut out = String::new();
        for seg in &self.path {
            out.push_str(seg);
            out.push_str(" \u{25b8} ");
        }
        let what = match self.kind {
            LeakKind::Branch => "branch on",
            LeakKind::LoopBound => "loop bound depends on",
            LeakKind::OpLatency => "variable-latency op reads",
        };
        out.push_str(&format!(
            "{}: {what} entropy-derived {{{}}}",
            self.snippet,
            self.tainted.join(", ")
        ));
        out
    }
}

/// The analysis verdict for one program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// No guard, loop bound, or variable-latency operand depends on drawn
    /// bytes: every execution retires the identical instruction trace and
    /// consumes the identical number of entropy bytes.
    ConstantTimeShaped,
    /// At least one timing leak, each with a located witness.
    Leaks(Vec<Finding>),
}

impl Verdict {
    /// Whether the program is constant-time shaped.
    pub fn is_constant_time_shaped(&self) -> bool {
        matches!(self, Verdict::ConstantTimeShaped)
    }

    /// The findings (empty for a constant-time-shaped program).
    pub fn findings(&self) -> &[Finding] {
        match self {
            Verdict::ConstantTimeShaped => &[],
            Verdict::Leaks(fs) => fs,
        }
    }

    /// Number of findings of the given kind.
    pub fn count(&self, kind: LeakKind) -> usize {
        self.findings().iter().filter(|f| f.kind == kind).count()
    }

    /// A stable, order-independent signature of the verdict, e.g.
    /// `constant-time-shaped` or
    /// `leaks{branch:3, loop-bound:5, op-latency:2}`. The program
    /// registry commits these strings as expected verdicts; the CI gate
    /// compares them, so a code change that adds or removes a leak (even
    /// within an already-leaky class) shows up as a signature mismatch.
    pub fn signature(&self) -> String {
        match self {
            Verdict::ConstantTimeShaped => "constant-time-shaped".to_string(),
            Verdict::Leaks(_) => {
                let mut parts = Vec::new();
                for kind in [LeakKind::Branch, LeakKind::LoopBound, LeakKind::OpLatency] {
                    let n = self.count(kind);
                    if n > 0 {
                        parts.push(format!("{}:{n}", kind.token()));
                    }
                }
                format!("leaks{{{}}}", parts.join(", "))
            }
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.signature())
    }
}

/// Per-analysis context: local names for rendering, the growing finding
/// list, and the current path of enclosing control constructs.
struct Ctx<'a> {
    names: &'a [String],
    findings: Vec<Finding>,
    path: Vec<String>,
}

impl Ctx<'_> {
    fn tainted_reads(&self, e: &Expr, taint: &[bool]) -> Vec<String> {
        let mut reads = Vec::new();
        e.reads(&mut reads);
        reads.sort_unstable();
        reads.dedup();
        reads
            .into_iter()
            .filter(|l| taint[*l])
            .map(|l| self.names[l].clone())
            .collect()
    }

    fn report(&mut self, kind: LeakKind, snippet: &Expr, taint: &[bool]) {
        self.findings.push(Finding {
            kind,
            path: self.path.clone(),
            snippet: render_expr(snippet, self.names),
            tainted: self.tainted_reads(snippet, taint),
        });
    }
}

fn expr_tainted(e: &Expr, taint: &[bool]) -> bool {
    match e {
        Expr::Const(_) | Expr::BigConst(_) => false,
        Expr::Local(l) => taint[*l],
        Expr::Bin(_, a, b) => expr_tainted(a, taint) || expr_tainted(b, taint),
        Expr::Abs(a) | Expr::Neg(a) | Expr::Not(a) | Expr::BitLen(a) => expr_tainted(a, taint),
    }
}

/// True for a positive constant power of two. Euclidean `/` and `%` by
/// such a divisor lower to an arithmetic shift / mask on every relevant
/// backend, so they retire in constant time even with a secret dividend —
/// the one latency refinement the analysis admits.
fn const_pow2(e: &Expr) -> bool {
    matches!(e, Expr::Const(c) if *c > 0 && (c & (c - 1)) == 0)
}

/// Reports every `/` or `%` node in `e` whose latency can depend on a
/// tainted operand (see [`const_pow2`] for the divisor exemption).
fn scan_op_latency(e: &Expr, taint: &[bool], ctx: &mut Ctx<'_>) {
    match e {
        Expr::Const(_) | Expr::BigConst(_) | Expr::Local(_) => {}
        Expr::Bin(op, a, b) => {
            if matches!(op, BinOp::Div | BinOp::Mod)
                && (expr_tainted(a, taint) || expr_tainted(b, taint))
                && !const_pow2(b)
            {
                ctx.report(LeakKind::OpLatency, e, taint);
            }
            scan_op_latency(a, taint, ctx);
            scan_op_latency(b, taint, ctx);
        }
        // Bit length is O(1) at any width (limb count + a leading-zeros
        // count on the top limb), so it is not a latency channel itself.
        Expr::Abs(a) | Expr::Neg(a) | Expr::Not(a) | Expr::BitLen(a) => {
            scan_op_latency(a, taint, ctx);
        }
    }
}

fn join_into(into: &mut [bool], from: &[bool]) -> bool {
    let mut grew = false;
    for (t, f) in into.iter_mut().zip(from) {
        if *f && !*t {
            *t = true;
            grew = true;
        }
    }
    grew
}

/// Transfer function. `pc` is the program-counter taint (true inside a
/// branch or loop whose guard is tainted); `report` turns on finding
/// collection — fixpoint iterations run with it off, then a final pass
/// over the stable state collects each finding exactly once.
fn exec(s: &Stmt, taint: &mut Vec<bool>, pc: bool, ctx: &mut Ctx<'_>, report: bool) {
    match s {
        Stmt::Skip => {}
        Stmt::Assign(l, e) => {
            if report {
                scan_op_latency(e, taint, ctx);
            }
            taint[*l] = pc || expr_tainted(e, taint);
        }
        Stmt::Byte(l) => taint[*l] = true,
        Stmt::UniformPow2(l, e) => {
            if report {
                scan_op_latency(e, taint, ctx);
                if expr_tainted(e, taint) {
                    // The number of bytes drawn — an adversary-visible
                    // quantity — depends on an entropy-derived width.
                    let tainted = ctx.tainted_reads(e, taint);
                    ctx.findings.push(Finding {
                        kind: LeakKind::LoopBound,
                        path: ctx.path.clone(),
                        snippet: format!("probUniformPow2({})", render_expr(e, ctx.names)),
                        tainted,
                    });
                }
            }
            taint[*l] = true;
        }
        Stmt::Seq(ss) => ss.iter().for_each(|s| exec(s, taint, pc, ctx, report)),
        Stmt::If(c, t, e) => {
            let cond_tainted = expr_tainted(c, taint);
            if report {
                scan_op_latency(c, taint, ctx);
                if cond_tainted {
                    ctx.report(LeakKind::Branch, c, taint);
                }
                ctx.path.push(format!("if {}", render_expr(c, ctx.names)));
            }
            let inner_pc = pc || cond_tainted;
            let mut t_state = taint.clone();
            exec(t, &mut t_state, inner_pc, ctx, report);
            exec(e, taint, inner_pc, ctx, report);
            join_into(taint, &t_state);
            if report {
                ctx.path.pop();
            }
        }
        Stmt::While(c, b) => {
            // Least fixpoint of the loop-head taint: iterate the body
            // transfer, OR the result back in, stop when nothing grows.
            loop {
                let cond_tainted = expr_tainted(c, taint);
                let mut body_state = taint.clone();
                exec(b, &mut body_state, pc || cond_tainted, ctx, false);
                if !join_into(taint, &body_state) {
                    break;
                }
            }
            if report {
                scan_op_latency(c, taint, ctx);
                let cond_tainted = expr_tainted(c, taint);
                if cond_tainted {
                    // The finding is about the loop, not just the guard
                    // expression, so the snippet carries the `while`.
                    let tainted = ctx.tainted_reads(c, taint);
                    ctx.findings.push(Finding {
                        kind: LeakKind::LoopBound,
                        path: ctx.path.clone(),
                        snippet: format!("while {}", render_expr(c, ctx.names)),
                        tainted,
                    });
                }
                ctx.path
                    .push(format!("while {}", render_expr(c, ctx.names)));
                let mut body_state = taint.clone();
                exec(b, &mut body_state, pc || cond_tainted, ctx, true);
                ctx.path.pop();
            }
        }
    }
}

/// Runs the secret-dependent-timing taint analysis on a program,
/// returning its verdict (see the module docs above for the lattice and
/// the soundness argument).
pub fn timing_verdict(p: &Program) -> Verdict {
    let mut ctx = Ctx {
        names: &p.local_names,
        findings: Vec::new(),
        path: Vec::new(),
    };
    let mut taint = vec![false; p.n_locals];
    exec(&p.body, &mut taint, false, &mut ctx, true);
    // The result expression is evaluated too: a tainted division there is
    // as observable as one in the body.
    scan_op_latency(&p.result, &taint, &mut ctx);
    if ctx.findings.is_empty() {
        Verdict::ConstantTimeShaped
    } else {
        Verdict::Leaks(ctx.findings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Expr as E;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("x{i}")).collect()
    }

    #[test]
    fn straight_line_on_entropy_is_constant_time_shaped() {
        // b := byte; y := b * 3 − 1 — data flows from entropy, but no
        // guard or divisor does: shape is constant.
        let p = Program::new(
            "ct",
            names(2),
            Stmt::Byte(0).then(Stmt::Assign(
                1,
                E::sub(E::mul(E::Local(0), E::Const(3)), E::Const(1)),
            )),
            E::Local(1),
        );
        assert!(timing_verdict(&p).is_constant_time_shaped());
    }

    #[test]
    fn tainted_branch_flagged() {
        let p = Program::new(
            "br",
            names(2),
            Stmt::Byte(0).then(Stmt::If(
                E::lt(E::Local(0), E::Const(128)),
                Box::new(Stmt::Assign(1, E::Const(1))),
                Box::new(Stmt::Skip),
            )),
            E::Local(1),
        );
        let v = timing_verdict(&p);
        assert_eq!(v.count(LeakKind::Branch), 1);
        assert_eq!(v.signature(), "leaks{branch:1}");
        let f = &v.findings()[0];
        assert_eq!(f.snippet, "(x0 < 128)");
        assert_eq!(f.tainted, vec!["x0".to_string()]);
    }

    #[test]
    fn tainted_loop_bound_flagged_with_path() {
        // Rejection shape: while (!(b < 10)) { b := byte }.
        let p = Program::new(
            "rej",
            names(1),
            Stmt::Assign(0, E::Const(255)).then(Stmt::While(
                E::Not(Box::new(E::lt(E::Local(0), E::Const(10)))),
                Box::new(Stmt::Byte(0)),
            )),
            E::Local(0),
        );
        let v = timing_verdict(&p);
        assert_eq!(v.count(LeakKind::LoopBound), 1);
        let w = v.findings()[0].witness();
        assert!(w.contains("loop bound depends on"), "{w}");
        assert!(w.contains("x0"), "{w}");
    }

    #[test]
    fn tainted_divisor_flagged() {
        let p = Program::new(
            "div",
            names(2),
            Stmt::Byte(0).then(Stmt::Assign(
                1,
                E::bin(BinOp::Div, E::Const(1000), E::add(E::Local(0), E::Const(1))),
            )),
            E::Local(1),
        );
        let v = timing_verdict(&p);
        assert_eq!(v.count(LeakKind::OpLatency), 1);
    }

    #[test]
    fn pow2_divisor_on_tainted_dividend_not_flagged() {
        // b := byte; y := b mod 16 — lowers to a mask; constant-time even
        // though the dividend is entropy-derived. Div by a *non*-pow2
        // constant with the same dividend stays flagged.
        let masked = Program::new(
            "mask",
            names(2),
            Stmt::Byte(0).then(Stmt::Assign(
                1,
                E::bin(BinOp::Mod, E::Local(0), E::Const(16)),
            )),
            E::Local(1),
        );
        assert!(timing_verdict(&masked).is_constant_time_shaped());
        let divided = Program::new(
            "div10",
            names(2),
            Stmt::Byte(0).then(Stmt::Assign(
                1,
                E::bin(BinOp::Div, E::Local(0), E::Const(10)),
            )),
            E::Local(1),
        );
        assert_eq!(timing_verdict(&divided).count(LeakKind::OpLatency), 1);
    }

    #[test]
    fn clean_division_not_flagged() {
        let p = Program::new(
            "cleandiv",
            names(2),
            Stmt::Assign(0, E::Const(17))
                .then(Stmt::Assign(
                    1,
                    E::bin(BinOp::Div, E::Local(0), E::Const(3)),
                ))
                .then(Stmt::Byte(0)),
            E::Local(1),
        );
        assert!(timing_verdict(&p).is_constant_time_shaped());
    }

    #[test]
    fn implicit_flow_reaches_later_loop() {
        // if byte < 128 { k := 1 } else { k := 5 }; while (0 < k) { k-- }
        // The loop guard reads k, tainted only via control dependence.
        let p = Program::new(
            "implicit",
            names(2),
            Stmt::Byte(0)
                .then(Stmt::If(
                    E::lt(E::Local(0), E::Const(128)),
                    Box::new(Stmt::Assign(1, E::Const(1))),
                    Box::new(Stmt::Assign(1, E::Const(5))),
                ))
                .then(Stmt::While(
                    E::lt(E::Const(0), E::Local(1)),
                    Box::new(Stmt::Assign(1, E::sub(E::Local(1), E::Const(1)))),
                )),
            E::Local(1),
        );
        let v = timing_verdict(&p);
        assert_eq!(v.count(LeakKind::Branch), 1);
        assert_eq!(v.count(LeakKind::LoopBound), 1, "{}", v.signature());
    }

    #[test]
    fn loop_fixpoint_propagates_taint_backward() {
        // x starts clean; the loop body taints it on iteration 1, so the
        // guard (which reads x) must be flagged — requires the fixpoint.
        let p = Program::new(
            "fix",
            names(2),
            Stmt::Assign(0, E::Const(3)).then(Stmt::While(
                E::lt(E::Const(0), E::Local(0)),
                Box::new(Stmt::Byte(1).then(Stmt::Assign(
                    0,
                    E::sub(E::bin(BinOp::Min, E::Local(1), E::Local(0)), E::Const(1)),
                ))),
            )),
            E::Local(0),
        );
        let v = timing_verdict(&p);
        assert_eq!(v.count(LeakKind::LoopBound), 1, "{}", v.signature());
    }

    #[test]
    fn clean_counter_loop_is_constant_time_shaped() {
        // Fixed trip count drawing bytes inside: shape is constant even
        // though data is random.
        let p = Program::new(
            "fixedloop",
            names(3),
            Stmt::Assign(0, E::Const(4)).then(Stmt::While(
                E::lt(E::Const(0), E::Local(0)),
                Box::new(
                    Stmt::Byte(1)
                        .then(Stmt::Assign(2, E::add(E::Local(2), E::Local(1))))
                        .then(Stmt::Assign(0, E::sub(E::Local(0), E::Const(1)))),
                ),
            )),
            E::Local(2),
        );
        assert!(timing_verdict(&p).is_constant_time_shaped());
    }

    #[test]
    fn strong_update_clears_taint() {
        // b := byte; b := 0; if b { .. } — the guard reads an untainted
        // value; flagging it would be a (harmless but avoidable) false
        // positive.
        let p = Program::new(
            "kill",
            names(2),
            Stmt::Byte(0)
                .then(Stmt::Assign(0, E::Const(0)))
                .then(Stmt::If(
                    E::Local(0),
                    Box::new(Stmt::Assign(1, E::Const(1))),
                    Box::new(Stmt::Skip),
                )),
            E::Local(1),
        );
        assert!(timing_verdict(&p).is_constant_time_shaped());
    }

    #[test]
    fn signature_is_stable_and_ordered() {
        let v = Verdict::Leaks(vec![
            Finding {
                kind: LeakKind::OpLatency,
                path: vec![],
                snippet: "(a % b)".into(),
                tainted: vec!["a".into()],
            },
            Finding {
                kind: LeakKind::Branch,
                path: vec![],
                snippet: "c".into(),
                tainted: vec!["c".into()],
            },
        ]);
        assert_eq!(v.signature(), "leaks{branch:1, op-latency:1}");
    }
}
