//! Entropy and termination bounds by abstract interpretation.
//!
//! Where [`crate::timing_verdict`] decides the *shape* question (does
//! timing depend on entropy at all?), this pass quantifies the *cost*
//! question: how many `UniformByte` draws can one execution consume?
//! The domain is intervals over `i128` locals; loops are unrolled
//! concretely (guards over constant state evaluate definitively, so e.g.
//! the bit-length loop of `uniform_below` resolves exactly), and a loop
//! that fails to bound itself within the unroll budget is **divergent**:
//! its trip count could not be bounded statically. A divergent loop whose
//! body draws bytes makes the worst case [`Bound::Unbounded`] — the
//! signature of rejection sampling, where only the *expected* consumption
//! is finite (reported by [`crate::analyze`]'s Markov-chain exploration
//! as `expected_bytes`, and cross-checked against these bounds by the
//! `reproduce analyze` gate).
//!
//! Everything here is conservative in the safe direction: interval
//! evaluation over-approximates reachable values (division by an interval
//! containing zero goes to ⊤ rather than guessing), byte maxima are upper
//! bounds, byte minima are lower bounds, and an unresolvable loop widens
//! every local it assigns to ⊤ before analysis continues.

use crate::ir::{BinOp, Expr, Program, Stmt};

/// A (possibly unbounded) count of entropy bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// At most this many bytes on any execution path.
    Finite(u64),
    /// No static bound — some entropy-dependent loop (rejection sampling)
    /// draws bytes.
    Unbounded,
}

impl Bound {
    /// Whether the bound is finite.
    pub fn is_finite(&self) -> bool {
        matches!(self, Bound::Finite(_))
    }

    /// The finite value, if any.
    pub fn finite(&self) -> Option<u64> {
        match self {
            Bound::Finite(n) => Some(*n),
            Bound::Unbounded => None,
        }
    }

    fn add(self, other: Bound) -> Bound {
        match (self, other) {
            (Bound::Finite(a), Bound::Finite(b)) => Bound::Finite(a.saturating_add(b)),
            _ => Bound::Unbounded,
        }
    }

    fn max(self, other: Bound) -> Bound {
        match (self, other) {
            (Bound::Finite(a), Bound::Finite(b)) => Bound::Finite(a.max(b)),
            _ => Bound::Unbounded,
        }
    }
}

/// The result of the entropy-bound analysis of one program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ByteBounds {
    /// Worst-case `UniformByte` consumption over all executions.
    pub worst_case: Bound,
    /// Guaranteed consumption: every execution draws at least this many
    /// bytes.
    pub guaranteed: u64,
    /// Number of loops whose trip count the unroller could not bound —
    /// for the shipped samplers these are exactly the rejection loops.
    pub divergent_loops: usize,
}

/// Interval over `i128` with saturating endpoints (`MIN`/`MAX` act as
/// ∓∞; saturation keeps arithmetic total).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Iv {
    lo: i128,
    hi: i128,
}

const TOP: Iv = Iv {
    lo: i128::MIN,
    hi: i128::MAX,
};

impl Iv {
    fn exact(v: i128) -> Iv {
        Iv { lo: v, hi: v }
    }

    fn join(self, other: Iv) -> Iv {
        Iv {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Definitely zero (the guard interval is exactly {0}).
    fn is_false(self) -> bool {
        self.lo == 0 && self.hi == 0
    }

    /// Definitely nonzero (0 ∉ [lo, hi]).
    fn is_true(self) -> bool {
        self.lo > 0 || self.hi < 0
    }

    fn bool_of(b: bool) -> Iv {
        Iv::exact(i128::from(b))
    }

    const BOOL: Iv = Iv { lo: 0, hi: 1 };
}

fn sat_add(a: i128, b: i128) -> i128 {
    a.saturating_add(b)
}

fn sat_mul(a: i128, b: i128) -> i128 {
    a.saturating_mul(b)
}

/// Bit length of a nonnegative `i128` (`0` for `0`), matching
/// `Nat::bit_length`.
fn bit_len(v: i128) -> i128 {
    i128::from(128 - v.unsigned_abs().leading_zeros())
}

fn eval(e: &Expr, state: &[Iv]) -> Iv {
    match e {
        Expr::Const(v) => Iv::exact(*v),
        // Big literals exceed i128 by construction; all the interval
        // domain can say is "nonnegative" (`MAX` is the saturating
        // stand-in for +∞, so an exact endpoint there would let `Eq`
        // conflate distinct big constants).
        Expr::BigConst(_) => Iv {
            lo: 0,
            hi: i128::MAX,
        },
        Expr::Local(l) => state[*l],
        Expr::Bin(op, a, b) => {
            let a = eval(a, state);
            let b = eval(b, state);
            apply(*op, a, b)
        }
        Expr::Abs(a) => {
            let v = eval(a, state);
            if v.lo >= 0 {
                v
            } else if v.hi <= 0 {
                Iv {
                    lo: v.hi.saturating_neg(),
                    hi: v.lo.saturating_neg(),
                }
            } else {
                Iv {
                    lo: 0,
                    hi: v.hi.max(v.lo.saturating_neg()),
                }
            }
        }
        Expr::Neg(a) => {
            let v = eval(a, state);
            Iv {
                lo: v.hi.saturating_neg(),
                hi: v.lo.saturating_neg(),
            }
        }
        Expr::Not(a) => {
            let v = eval(a, state);
            if v.is_false() {
                Iv::exact(1)
            } else if v.is_true() {
                Iv::exact(0)
            } else {
                Iv::BOOL
            }
        }
        Expr::BitLen(a) => {
            let v = eval(a, state);
            // Bit length is monotone on nonnegative values. A saturated
            // upper endpoint stands for a possibly multi-limb value whose
            // bit length is unbounded, so only the lower end survives.
            if v.lo >= 0 && v.hi < i128::MAX {
                Iv {
                    lo: bit_len(v.lo),
                    hi: bit_len(v.hi),
                }
            } else if v.lo >= 0 {
                Iv {
                    lo: bit_len(v.lo),
                    hi: i128::MAX,
                }
            } else {
                Iv {
                    lo: 0,
                    hi: i128::MAX,
                }
            }
        }
    }
}

fn apply(op: BinOp, a: Iv, b: Iv) -> Iv {
    match op {
        BinOp::Add => Iv {
            lo: sat_add(a.lo, b.lo),
            hi: sat_add(a.hi, b.hi),
        },
        BinOp::Sub => Iv {
            lo: sat_add(a.lo, b.hi.saturating_neg()),
            hi: sat_add(a.hi, b.lo.saturating_neg()),
        },
        BinOp::Mul => {
            let c = [
                sat_mul(a.lo, b.lo),
                sat_mul(a.lo, b.hi),
                sat_mul(a.hi, b.lo),
                sat_mul(a.hi, b.hi),
            ];
            Iv {
                lo: *c.iter().min().expect("nonempty"),
                hi: *c.iter().max().expect("nonempty"),
            }
        }
        BinOp::Div => {
            // Sound only when the divisor's sign is fixed; a divisor
            // interval containing zero means the abstract execution may
            // divide by zero — go to ⊤ (the concrete run would panic,
            // which the bound need not model).
            if b.lo > 0 || b.hi < 0 {
                let c = [
                    a.lo.div_euclid(b.lo),
                    a.lo.div_euclid(b.hi),
                    a.hi.div_euclid(b.lo),
                    a.hi.div_euclid(b.hi),
                ];
                Iv {
                    lo: *c.iter().min().expect("nonempty"),
                    hi: *c.iter().max().expect("nonempty"),
                }
            } else {
                TOP
            }
        }
        BinOp::Mod => {
            // Euclidean remainder is in [0, |d| − 1] for any divisor of
            // fixed sign; refine to the dividend when it already fits.
            if b.lo > 0 || b.hi < 0 {
                let dmax = b.lo.unsigned_abs().max(b.hi.unsigned_abs()) as i128 - 1;
                if a.lo >= 0 && a.hi <= dmax && b.lo > 0 && a.hi < b.lo {
                    a
                } else {
                    Iv { lo: 0, hi: dmax }
                }
            } else {
                TOP
            }
        }
        BinOp::Min => Iv {
            lo: a.lo.min(b.lo),
            hi: a.hi.min(b.hi),
        },
        BinOp::Max => Iv {
            lo: a.lo.max(b.lo),
            hi: a.hi.max(b.hi),
        },
        BinOp::Lt => {
            if a.hi < b.lo {
                Iv::bool_of(true)
            } else if a.lo >= b.hi {
                Iv::bool_of(false)
            } else {
                Iv::BOOL
            }
        }
        BinOp::Le => {
            if a.hi <= b.lo {
                Iv::bool_of(true)
            } else if a.lo > b.hi {
                Iv::bool_of(false)
            } else {
                Iv::BOOL
            }
        }
        BinOp::Eq => {
            if a.lo == a.hi && b.lo == b.hi && a.lo == b.lo {
                Iv::bool_of(true)
            } else if a.hi < b.lo || b.hi < a.lo {
                Iv::bool_of(false)
            } else {
                Iv::BOOL
            }
        }
        BinOp::And => {
            if a.is_true() && b.is_true() {
                Iv::bool_of(true)
            } else if a.is_false() || b.is_false() {
                Iv::bool_of(false)
            } else {
                Iv::BOOL
            }
        }
        BinOp::Or => {
            if a.is_true() || b.is_true() {
                Iv::bool_of(true)
            } else if a.is_false() && b.is_false() {
                Iv::bool_of(false)
            } else {
                Iv::BOOL
            }
        }
    }
}

/// Locals assigned (directly or via `Byte`) anywhere inside `s`.
fn assigned_locals(s: &Stmt, out: &mut Vec<usize>) {
    match s {
        Stmt::Skip => {}
        Stmt::Assign(l, _) | Stmt::Byte(l) | Stmt::UniformPow2(l, _) => out.push(*l),
        Stmt::Seq(ss) => ss.iter().for_each(|s| assigned_locals(s, out)),
        Stmt::If(_, t, e) => {
            assigned_locals(t, out);
            assigned_locals(e, out);
        }
        Stmt::While(_, b) => assigned_locals(b, out),
    }
}

/// Whether any `Byte` statement occurs inside `s`.
fn draws_bytes(s: &Stmt) -> bool {
    match s {
        Stmt::Skip | Stmt::Assign(..) => false,
        Stmt::Byte(_) | Stmt::UniformPow2(..) => true,
        Stmt::Seq(ss) => ss.iter().any(draws_bytes),
        Stmt::If(_, t, e) => draws_bytes(t) || draws_bytes(e),
        Stmt::While(_, b) => draws_bytes(b),
    }
}

struct Acc {
    guaranteed: u64,
    worst: Bound,
    divergent: usize,
}

fn exec(s: &Stmt, state: &mut Vec<Iv>, acc: &mut Acc, max_unroll: usize) {
    match s {
        Stmt::Skip => {}
        Stmt::Assign(l, e) => state[*l] = eval(e, state),
        Stmt::Byte(l) => {
            state[*l] = Iv { lo: 0, hi: 255 };
            acc.guaranteed = acc.guaranteed.saturating_add(1);
            acc.worst = acc.worst.add(Bound::Finite(1));
        }
        Stmt::UniformPow2(l, e) => {
            let bits = eval(e, state);
            // ceil(bits / 8) bytes are drawn; a nonpositive width draws
            // none, an unbounded width draws unboundedly many.
            let lo_bytes = (bits.lo.clamp(0, 1 << 32) as u64).div_ceil(8);
            acc.guaranteed = acc.guaranteed.saturating_add(lo_bytes);
            if bits.hi < i128::MAX {
                let hi_bytes = (bits.hi.clamp(0, 1 << 32) as u64).div_ceil(8);
                acc.worst = acc.worst.add(Bound::Finite(hi_bytes));
            } else {
                acc.worst = Bound::Unbounded;
            }
            // The draw lies in [0, 2^bits − 1]; saturate past 126 bits.
            state[*l] = if bits.hi >= 127 {
                Iv {
                    lo: 0,
                    hi: i128::MAX,
                }
            } else {
                Iv {
                    lo: 0,
                    hi: (1i128 << bits.hi.max(0)) - 1,
                }
            };
        }
        Stmt::Seq(ss) => ss.iter().for_each(|s| exec(s, state, acc, max_unroll)),
        Stmt::If(c, t, e) => {
            let cv = eval(c, state);
            if cv.is_true() {
                exec(t, state, acc, max_unroll);
            } else if cv.is_false() {
                exec(e, state, acc, max_unroll);
            } else {
                let mut t_state = state.clone();
                let mut t_acc = Acc {
                    guaranteed: 0,
                    worst: Bound::Finite(0),
                    divergent: 0,
                };
                exec(t, &mut t_state, &mut t_acc, max_unroll);
                let mut e_acc = Acc {
                    guaranteed: 0,
                    worst: Bound::Finite(0),
                    divergent: 0,
                };
                exec(e, state, &mut e_acc, max_unroll);
                for (sl, tl) in state.iter_mut().zip(&t_state) {
                    *sl = sl.join(*tl);
                }
                acc.guaranteed = acc
                    .guaranteed
                    .saturating_add(t_acc.guaranteed.min(e_acc.guaranteed));
                acc.worst = acc.worst.add(t_acc.worst.max(e_acc.worst));
                acc.divergent += t_acc.divergent + e_acc.divergent;
            }
        }
        Stmt::While(c, b) => {
            // Concrete unrolling: run iterations while the guard stays
            // definitely true; join possibly-exiting states; give up after
            // the unroll budget.
            let mut exit_state: Option<Vec<Iv>> = None;
            let mut may_have_exited = false;
            let mut widened = false;
            let mut iters = 0usize;
            loop {
                let cv = eval(c, state);
                if cv.is_false() {
                    break;
                }
                if !cv.is_true() {
                    may_have_exited = true;
                    exit_state = Some(match exit_state {
                        None => state.clone(),
                        Some(ex) => ex
                            .iter()
                            .zip(state.iter())
                            .map(|(a, b)| a.join(*b))
                            .collect(),
                    });
                }
                if may_have_exited && iters >= WIDEN_AFTER && !widened {
                    // The guard has been uncertain for a while and the
                    // state is still drifting (e.g. a trial counter whose
                    // interval grows by one per pass): widen everything
                    // the body writes to ⊤ so the iteration reaches its
                    // fixpoint in a handful of passes instead of
                    // unrolling the full budget at every nesting level.
                    widened = true;
                    let mut assigned = Vec::new();
                    assigned_locals(b, &mut assigned);
                    for l in assigned {
                        state[l] = TOP;
                    }
                }
                if iters >= max_unroll {
                    // Trip count not statically bounded: a divergent
                    // loop. Bytes in the body make worst-case unbounded;
                    // either way, everything the body writes is unknown
                    // from here on.
                    acc.divergent += 1;
                    if draws_bytes(b) {
                        acc.worst = Bound::Unbounded;
                    }
                    let mut assigned = Vec::new();
                    assigned_locals(b, &mut assigned);
                    for l in assigned {
                        state[l] = TOP;
                    }
                    exit_state = Some(match exit_state {
                        None => state.clone(),
                        Some(ex) => ex
                            .iter()
                            .zip(state.iter())
                            .map(|(a, b)| a.join(*b))
                            .collect(),
                    });
                    break;
                }
                iters += 1;
                let before = state.clone();
                let mut body_acc = Acc {
                    guaranteed: 0,
                    worst: Bound::Finite(0),
                    divergent: 0,
                };
                exec(b, state, &mut body_acc, max_unroll);
                // Iterations after a possible exit are optional: they
                // count toward the worst case only.
                if !may_have_exited {
                    acc.guaranteed = acc.guaranteed.saturating_add(body_acc.guaranteed);
                }
                acc.worst = acc.worst.add(body_acc.worst);
                acc.divergent += body_acc.divergent;
                if widened {
                    // Post-widening, ⊤ is absorbing: anything the body
                    // rewrites to a narrower interval is pushed back to ⊤
                    // so the no-progress check below fires on the next
                    // comparison instead of oscillating.
                    for (sl, bef) in state.iter_mut().zip(&before) {
                        if sl != bef {
                            *sl = TOP;
                        }
                    }
                }
                if *state == before {
                    // Abstract fixpoint with the guard still live: the
                    // guard's value can never change again, so the trip
                    // count is unbounded from here (a rejection loop, or
                    // a genuinely non-terminating one). Declaring it now
                    // instead of burning the unroll budget keeps nested
                    // rejection loops (Gaussian inside Laplace inside
                    // Bernoulli) linear instead of budget^depth.
                    acc.divergent += 1;
                    if draws_bytes(b) {
                        acc.worst = Bound::Unbounded;
                    }
                    break;
                }
            }
            if let Some(ex) = exit_state {
                for (sl, el) in state.iter_mut().zip(&ex) {
                    *sl = sl.join(*el);
                }
            }
        }
    }
}

/// Computes entropy-consumption bounds for a program by interval abstract
/// interpretation with concrete loop unrolling (see the
/// module docs above). `max_unroll` is the per-loop iteration budget
/// before a loop is declared divergent; the registered samplers' counted
/// loops (bit-length scans, fixed byte fills) all resolve well under
/// [`DEFAULT_UNROLL`].
pub fn byte_bounds(p: &Program, max_unroll: usize) -> ByteBounds {
    let mut state = vec![Iv::exact(0); p.n_locals];
    let mut acc = Acc {
        guaranteed: 0,
        worst: Bound::Finite(0),
        divergent: 0,
    };
    exec(&p.body, &mut state, &mut acc, max_unroll);
    // The result expression draws no bytes; evaluating it can only panic
    // on malformed programs, so it is not interpreted here.
    ByteBounds {
        worst_case: acc.worst,
        guaranteed: acc.guaranteed,
        divergent_loops: acc.divergent,
    }
}

/// Default per-loop unroll budget for [`byte_bounds`]: generous enough
/// for every counted loop in the registered samplers (the longest is a
/// bit-length scan of a 32-bit constant) while keeping the analysis
/// instantaneous.
pub const DEFAULT_UNROLL: usize = 512;

/// Iterations of uncertain-guard unrolling tolerated before the state is
/// widened to ⊤ (see [`byte_bounds`]'s loop rule). Loops whose guard is
/// still *definitely* true — counted loops mid-run — are never widened,
/// so this only caps the cost of loops that are already known to be
/// exit-uncertain.
const WIDEN_AFTER: usize = 16;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Expr as E;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("x{i}")).collect()
    }

    #[test]
    fn straight_line_bytes_are_exact() {
        let p = Program::new(
            "two",
            names(2),
            Stmt::Byte(0).then(Stmt::Byte(1)),
            E::add(E::Local(0), E::Local(1)),
        );
        let b = byte_bounds(&p, DEFAULT_UNROLL);
        assert_eq!(b.worst_case, Bound::Finite(2));
        assert_eq!(b.guaranteed, 2);
        assert_eq!(b.divergent_loops, 0);
    }

    #[test]
    fn counted_loop_resolves_exactly() {
        // i := 3; while (0 < i) { byte; i := i − 1 }
        let p = Program::new(
            "count",
            names(2),
            Stmt::Assign(0, E::Const(3)).then(Stmt::While(
                E::lt(E::Const(0), E::Local(0)),
                Box::new(Stmt::Byte(1).then(Stmt::Assign(0, E::sub(E::Local(0), E::Const(1))))),
            )),
            E::Local(1),
        );
        let b = byte_bounds(&p, DEFAULT_UNROLL);
        assert_eq!(b.worst_case, Bound::Finite(3));
        assert_eq!(b.guaranteed, 3);
        assert_eq!(b.divergent_loops, 0);
    }

    #[test]
    fn rejection_loop_is_unbounded() {
        // while (!(b < 10)) { b := byte } starting from b = 255.
        let p = Program::new(
            "rej",
            names(1),
            Stmt::Assign(0, E::Const(255)).then(Stmt::While(
                E::Not(Box::new(E::lt(E::Local(0), E::Const(10)))),
                Box::new(Stmt::Byte(0)),
            )),
            E::Local(0),
        );
        let b = byte_bounds(&p, 64);
        assert_eq!(b.worst_case, Bound::Unbounded);
        assert_eq!(b.divergent_loops, 1);
        // The guard is initially definitely-true, so one byte is
        // guaranteed.
        assert!(b.guaranteed >= 1, "guaranteed {}", b.guaranteed);
    }

    #[test]
    fn branch_takes_max_and_min() {
        // if (byte < 128) { byte; byte } else { byte }
        let p = Program::new(
            "br",
            names(2),
            Stmt::Byte(0).then(Stmt::If(
                E::lt(E::Local(0), E::Const(128)),
                Box::new(Stmt::Byte(1).then(Stmt::Byte(1))),
                Box::new(Stmt::Byte(1)),
            )),
            E::Local(1),
        );
        let b = byte_bounds(&p, DEFAULT_UNROLL);
        assert_eq!(b.worst_case, Bound::Finite(3));
        assert_eq!(b.guaranteed, 2);
    }

    #[test]
    fn byteless_divergent_loop_keeps_finite_bytes() {
        // An unbounded-trip loop that draws nothing: bytes stay finite,
        // but the loop is reported divergent and its state widens.
        let p = Program::new(
            "spin",
            names(2),
            Stmt::Byte(0)
                .then(Stmt::While(
                    E::lt(E::Const(0), E::Local(0)),
                    Box::new(Stmt::Assign(1, E::add(E::Local(1), E::Const(1)))),
                ))
                .then(Stmt::Byte(1)),
            E::Local(1),
        );
        let b = byte_bounds(&p, 16);
        assert_eq!(b.worst_case, Bound::Finite(2));
        assert_eq!(b.divergent_loops, 1);
    }

    #[test]
    fn interval_division_by_possibly_zero_is_top() {
        let a = Iv { lo: 1, hi: 10 };
        let b = Iv { lo: -1, hi: 1 };
        assert_eq!(apply(BinOp::Div, a, b), TOP);
    }

    #[test]
    fn euclidean_mod_bounds() {
        let a = Iv { lo: -100, hi: 100 };
        let b = Iv::exact(7);
        let m = apply(BinOp::Mod, a, b);
        assert_eq!(m, Iv { lo: 0, hi: 6 });
    }
}
