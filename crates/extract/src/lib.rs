//! # sampcert-extract
//!
//! The analogue of SampCert's second deployment pipeline (paper
//! Section 4.1 and Appendix C): where the Lean development translates its
//! sampler terms into Dafny and compiles them onward to Python, this crate
//! provides
//!
//! - a **deep, first-order IR** for `SLang` programs ([`Expr`], [`Stmt`],
//!   [`Program`]) with a single probabilistic primitive (`Byte`, the
//!   paper's `probUniformByte`),
//! - a **bytecode compiler and stack VM** ([`compile`], [`Vm`]) — the
//!   "compiled target" whose faithfulness is the pipeline's trusted step,
//! - a **pretty printer** ([`render`]) producing auditable source text
//!   (the "Dafny file" analogue), and
//! - **extracted sampler programs** ([`laplace_program`],
//!   [`gaussian_program`]) for both verified Laplace loops and the
//!   Gaussian rejection scheme, and
//! - a **bytecode-level distribution analyzer** ([`analyze`]): the exact
//!   output mass function of the *compiled* artifact, computed by
//!   Markov-chain exploration of VM configurations — removing even the
//!   compiler from the trusted base, and
//! - a **static analysis layer** over the IR: [`timing_verdict`] classifies
//!   every program as constant-time-shaped or timing-leaky (with
//!   source-located witnesses), [`byte_bounds`] bounds worst-case entropy
//!   consumption by abstract interpretation, and [`analysis_report`] walks
//!   the committed registry ([`registered_programs`]) cross-checking the
//!   static verdicts against the dynamic analyzer — the `reproduce analyze`
//!   CI gate.
//!
//! The paper's extraction is trusted-but-small; here the analogous trust
//! is discharged by differential testing: the AST interpreter, the VM,
//! and the fused reference samplers from `sampcert-samplers` are checked
//! **byte-for-byte equal** on shared entropy streams (see
//! `tests/extraction_equivalence.rs`), so all three are literally the same
//! function from random bytes to samples.
//!
//! ```
//! use sampcert_extract::{compile, laplace_program, LoopKind, Vm};
//! use sampcert_slang::SeededByteSource;
//!
//! let program = laplace_program(5, 2, LoopKind::Uniform); // scale 5/2
//! let vm = Vm::new(compile(&program));
//! let mut entropy = SeededByteSource::new(0);
//! let _noise: i128 = vm.run(&mut entropy);
//! ```

mod analyze;
mod bounds;
mod ir;
mod pretty;
mod programs;
mod report;
mod taint;
mod vm;

pub use analyze::{analyze, Analysis};
pub use bounds::{byte_bounds, Bound, ByteBounds, DEFAULT_UNROLL};
pub use ir::{BinOp, Expr, Local, Program, Stmt};
pub use pretty::{render, render_expr};
pub use programs::{
    bernoulli_exp_neg_program_nat, bernoulli_program_nat, gaussian_program, gaussian_program_nat,
    geometric_program, laplace_program, laplace_program_nat, registered_programs,
    uniform_below_program, uniform_below_program_nat, uniform_pow2_program, LoopKind,
    RegisteredProgram,
};
pub use report::{analysis_report, report_to_json, ReportRow};
pub use taint::{timing_verdict, Finding, LeakKind, Verdict};
pub use vm::{compile, interpret, Bytecode, Op, RunTrace, Value, Vm, VmError};
