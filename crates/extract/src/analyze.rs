//! Distribution analysis of **compiled bytecode** — verifying the shipped
//! artifact, not its source.
//!
//! The paper verifies the Lean term and *trusts* the extraction pipeline
//! (57 lines of C++, or Dafny's compiler). This module removes even that
//! residual trust for the deep-IR pipeline: it computes the exact output
//! mass function of a [`Bytecode`] program by exploring the induced
//! Markov chain over VM configurations — each `Byte` instruction fans a
//! configuration into 256 successors at mass `1/256`, and configurations
//! are merged by hashing, so loops converge just like the shallow
//! embedding's `probWhileCut` semantics. Agreement of
//!
//! 1. the shallow embedding's mass function,
//! 2. this bytecode-level mass function, and
//! 3. the closed-form PMFs
//!
//! means the *compiled sampler* provably (up to the fuel/truncation
//! bookkeeping reported) has the verified distribution.

use crate::vm::{Bytecode, Op};
use sampcert_slang::SubPmf;
use std::collections::HashMap;

/// A VM configuration: program counter, locals, and operand stack.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Config {
    pc: usize,
    locals: Vec<i128>,
    stack: Vec<i128>,
}

/// Result of a bytecode distribution analysis.
///
/// Unresolved mass is reported in **two separate buckets** so a caller
/// can never mistake pruned-away mass for an exhaustive analysis:
/// [`residual_mass`](Analysis::residual_mass) is what the step budget
/// left *live* (more fuel would resolve it), while
/// [`pruned_mass`](Analysis::pruned_mass) is what the `prune` threshold
/// *discarded* (no amount of fuel brings it back — rerun with a smaller
/// threshold). An analysis is exhaustive, up to f64 rounding, iff **both**
/// are zero; [`Analysis::unresolved_mass`] is their sum, the quantity the
/// old `residual_mass` field used to conflate.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Mass function over program results (halted configurations).
    pub dist: SubPmf<i128, f64>,
    /// Mass still in non-halted configurations when the step budget ran
    /// out. Zero means every surviving configuration halted; it says
    /// nothing about mass dropped by pruning — check
    /// [`pruned_mass`](Analysis::pruned_mass) too.
    pub residual_mass: f64,
    /// Mass dropped because a configuration's weight fell below the
    /// `prune` threshold. Always zero when `prune == 0`. This mass is
    /// *gone* from the analysis — unlike residual mass, it cannot be
    /// recovered by a larger step budget.
    pub pruned_mass: f64,
    /// Expected number of `Byte` instructions executed, accumulated over
    /// the explored mass: each configuration crossing a `Byte` contributes
    /// its current weight. A lower bound on the true expected entropy
    /// consumption, exact when the analysis is exhaustive; the
    /// static-analysis gate cross-checks it against
    /// [`byte_bounds`](crate::byte_bounds).
    pub expected_bytes: f64,
    /// Number of distinct configurations explored.
    pub configs_explored: usize,
}

impl Analysis {
    /// Total unresolved mass: live-at-budget plus pruned. This is the
    /// honest gap between [`dist`](Analysis::dist) and a full
    /// distribution.
    pub fn unresolved_mass(&self) -> f64 {
        self.residual_mass + self.pruned_mass
    }

    /// Whether the analysis resolved every configuration (no live mass at
    /// the budget, nothing pruned) — the distribution is exact up to f64
    /// rounding.
    pub fn is_exhaustive(&self) -> bool {
        self.residual_mass == 0.0 && self.pruned_mass == 0.0
    }
}

/// Computes the exact output distribution of `code` by breadth-first
/// exploration of VM configurations.
///
/// `max_steps` bounds the number of deterministic macro-steps (a
/// macro-step advances every live configuration by one instruction);
/// `prune` drops configurations below the given mass (0 keeps the
/// analysis exact). Configurations reaching `Halt` contribute their mass
/// to the output distribution.
///
/// # Panics
///
/// Panics on malformed bytecode (impossible for
/// [`compile`](crate::compile) output).
pub fn analyze(code: &Bytecode, max_steps: usize, prune: f64) -> Analysis {
    let start = Config {
        pc: 0,
        locals: vec![0; code.n_locals],
        stack: Vec::new(),
    };
    let mut live: HashMap<Config, f64> = HashMap::new();
    live.insert(start, 1.0);
    let mut out: SubPmf<i128, f64> = SubPmf::zero();
    let mut explored = 0usize;
    let mut pruned_mass = 0.0f64;
    let mut expected_bytes = 0.0f64;

    for _ in 0..max_steps {
        if live.is_empty() {
            break;
        }
        explored += live.len();
        let mut next: HashMap<Config, f64> = HashMap::new();
        let mut add = |cfg: Config, w: f64, next: &mut HashMap<Config, f64>| {
            if w >= prune {
                *next.entry(cfg).or_insert(0.0) += w;
            } else {
                pruned_mass += w;
            }
        };
        for (mut cfg, w) in live.drain() {
            match code.ops[cfg.pc] {
                Op::Push(v) => {
                    cfg.stack.push(v);
                    cfg.pc += 1;
                    add(cfg, w, &mut next);
                }
                Op::PushBig(i) => {
                    // The exhaustive analysis tracks i128 configurations;
                    // registry programs with genuinely multi-limb
                    // constants are outside its scope (and are filtered
                    // out by the finite-bound precondition upstream).
                    let v = code.big_consts[i]
                        .to_u128()
                        .filter(|u| *u <= i128::MAX as u128)
                        .map(|u| u as i128)
                        .expect("distribution analysis requires word-sized constants");
                    cfg.stack.push(v);
                    cfg.pc += 1;
                    add(cfg, w, &mut next);
                }
                Op::Load(l) => {
                    cfg.stack.push(cfg.locals[l]);
                    cfg.pc += 1;
                    add(cfg, w, &mut next);
                }
                Op::Store(l) => {
                    let v = cfg.stack.pop().expect("stack underflow");
                    cfg.locals[l] = v;
                    cfg.pc += 1;
                    add(cfg, w, &mut next);
                }
                Op::Bin(op) => {
                    let b = cfg.stack.pop().expect("stack underflow");
                    let a = cfg.stack.pop().expect("stack underflow");
                    cfg.stack.push(op.apply(a, b));
                    cfg.pc += 1;
                    add(cfg, w, &mut next);
                }
                Op::Abs => {
                    let v = cfg.stack.pop().expect("stack underflow");
                    cfg.stack.push(v.abs());
                    cfg.pc += 1;
                    add(cfg, w, &mut next);
                }
                Op::Neg => {
                    let v = cfg.stack.pop().expect("stack underflow");
                    cfg.stack.push(-v);
                    cfg.pc += 1;
                    add(cfg, w, &mut next);
                }
                Op::Not => {
                    let v = cfg.stack.pop().expect("stack underflow");
                    cfg.stack.push(i128::from(v == 0));
                    cfg.pc += 1;
                    add(cfg, w, &mut next);
                }
                Op::BitLen => {
                    let v = cfg.stack.pop().expect("stack underflow");
                    cfg.stack
                        .push(i128::from(128 - v.unsigned_abs().leading_zeros()));
                    cfg.pc += 1;
                    add(cfg, w, &mut next);
                }
                Op::Byte => {
                    // The probabilistic fan-out: 256 successors.
                    expected_bytes += w;
                    let share = w / 256.0;
                    for b in 0..256i128 {
                        let mut c2 = cfg.clone();
                        c2.stack.push(b);
                        c2.pc += 1;
                        add(c2, share, &mut next);
                    }
                }
                Op::UniformPow2 => {
                    // The masked big-endian byte fold is exactly uniform
                    // on [0, 2^bits): fan out all successors at equal
                    // mass. Width is capped — the fan is 2^bits wide, so
                    // this is only tractable for narrow draws (the
                    // registry keeps well under the cap).
                    let bits = cfg.stack.pop().expect("stack underflow");
                    assert!(
                        (0..=16).contains(&bits),
                        "distribution analysis caps UniformPow2 at 16 bits (got {bits})"
                    );
                    let n_bytes = (bits as u32).div_ceil(8);
                    expected_bytes += w * f64::from(n_bytes);
                    let fan = 1u32 << bits;
                    let share = w / f64::from(fan);
                    for v in 0..fan {
                        let mut c2 = cfg.clone();
                        c2.stack.push(i128::from(v));
                        c2.pc += 1;
                        add(c2, share, &mut next);
                    }
                }
                Op::Jmp(t) => {
                    cfg.pc = t;
                    add(cfg, w, &mut next);
                }
                Op::JmpIfZero(t) => {
                    let v = cfg.stack.pop().expect("stack underflow");
                    cfg.pc = if v == 0 { t } else { cfg.pc + 1 };
                    add(cfg, w, &mut next);
                }
                Op::Halt => {
                    let v = *cfg.stack.last().expect("empty stack at halt");
                    out.add_mass(v, w);
                    // Halted: not re-added to the frontier.
                }
            }
        }
        live = next;
    }
    Analysis {
        dist: out,
        residual_mass: live.values().sum::<f64>(),
        pruned_mass,
        expected_bytes,
        configs_explored: explored,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, Expr as E, Program, Stmt};
    use crate::vm::compile;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("x{i}")).collect()
    }

    #[test]
    fn deterministic_program_is_a_point_mass() {
        let p = Program::new(
            "det",
            names(1),
            Stmt::Assign(0, E::Const(5)),
            E::mul(E::Local(0), E::Const(3)),
        );
        let a = analyze(&compile(&p), 100, 0.0);
        assert_eq!(a.dist.mass(&15), 1.0);
        assert_eq!(a.residual_mass, 0.0);
        assert_eq!(a.pruned_mass, 0.0);
        assert!(a.is_exhaustive());
        assert_eq!(a.expected_bytes, 0.0);
    }

    #[test]
    fn single_byte_is_uniform() {
        let p = Program::new(
            "byte",
            names(1),
            Stmt::Byte(0),
            E::bin(BinOp::Mod, E::Local(0), E::Const(4)),
        );
        let a = analyze(&compile(&p), 100, 0.0);
        for r in 0..4i128 {
            assert!((a.dist.mass(&r) - 0.25).abs() < 1e-15, "r={r}");
        }
        assert!((a.dist.total_mass() - 1.0).abs() < 1e-12);
        assert!(a.is_exhaustive());
        assert!((a.expected_bytes - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejection_loop_converges() {
        // Redraw a byte until it is below 128: uniform on {0..127}.
        let p = Program::new(
            "reject",
            names(1),
            Stmt::Assign(0, E::Const(255)).then(Stmt::While(
                E::Not(Box::new(E::lt(E::Local(0), E::Const(128)))),
                Box::new(Stmt::Byte(0)),
            )),
            E::Local(0),
        );
        let a = analyze(&compile(&p), 400, 1e-16);
        assert!(
            a.unresolved_mass() < 1e-9,
            "unresolved {} (residual {}, pruned {})",
            a.unresolved_mass(),
            a.residual_mass,
            a.pruned_mass
        );
        for r in 0..128i128 {
            assert!((a.dist.mass(&r) - 1.0 / 128.0).abs() < 1e-9, "r={r}");
        }
        // Expected draws of the rejection loop: geometric with p = 1/2
        // after a guaranteed first draw → 2 bytes.
        assert!(
            (a.expected_bytes - 2.0).abs() < 1e-6,
            "expected_bytes {}",
            a.expected_bytes
        );
    }

    #[test]
    fn pruned_mass_is_reported_separately_from_residual() {
        // The byte-parity geometric loop with a coarse prune threshold:
        // pruning (not fuel) is what truncates the tail, and the report
        // must say so — pruned > 0, residual ≈ 0, and the analysis is not
        // "exhaustive" even though nothing is live.
        let p = Program::new(
            "geo_pruned",
            names(2),
            Stmt::Assign(1, E::Const(1)).then(Stmt::While(
                E::Local(1),
                Box::new(
                    Stmt::Byte(1)
                        .then(Stmt::Assign(
                            1,
                            E::bin(BinOp::Mod, E::Local(1), E::Const(2)),
                        ))
                        .then(Stmt::Assign(0, E::add(E::Local(0), E::Const(1)))),
                ),
            )),
            E::Local(0),
        );
        let a = analyze(&compile(&p), 10_000, 1e-4);
        assert!(a.pruned_mass > 0.0, "pruning never triggered");
        assert_eq!(a.residual_mass, 0.0, "fuel should not be the limit");
        assert!(!a.is_exhaustive());
        assert!(
            (a.unresolved_mass() - a.pruned_mass).abs() < 1e-15,
            "unresolved must equal pruned when nothing is live"
        );
    }

    #[test]
    fn config_merging_keeps_loops_tractable() {
        // A geometric loop on byte parity: without merging, configurations
        // would double every iteration; with merging the frontier stays
        // small and masses are exact dyadics.
        let p = Program::new(
            "geo",
            names(2),
            Stmt::Assign(1, E::Const(1)).then(Stmt::While(
                E::Local(1),
                Box::new(
                    Stmt::Byte(1)
                        .then(Stmt::Assign(
                            1,
                            E::bin(BinOp::Mod, E::Local(1), E::Const(2)),
                        ))
                        .then(Stmt::Assign(0, E::add(E::Local(0), E::Const(1)))),
                ),
            )),
            E::Local(0),
        );
        let a = analyze(&compile(&p), 3000, 1e-14);
        assert!(a.unresolved_mass() < 1e-9);
        for n in 1i128..8 {
            let expect = 0.5f64.powi(n as i32);
            assert!(
                (a.dist.mass(&n) - expect).abs() < 1e-9,
                "n={n}: {} vs {expect}",
                a.dist.mass(&n)
            );
        }
        // Exploration stayed polynomial: far fewer configs than 256^depth.
        assert!(a.configs_explored < 2_000_000, "{}", a.configs_explored);
    }
}
