//! A deep embedding of first-order `SLang` programs.
//!
//! SampCert's second deployment path inspects the Lean syntax tree of a
//! sampler and translates a limited, first-order subset of Lean into Dafny
//! source, which Dafny then compiles to Python (paper Appendix C). This
//! module is the Rust analogue's front half: a first-order imperative IR
//! with integer locals and exactly one probabilistic primitive —
//! `UniformByte` — matching the trusted primitive of the shallow
//! embedding. [`crate::compile`] lowers the IR to a small bytecode
//! ([`crate::vm`]); [`crate::pretty`] renders it as readable source (the
//! "Dafny text" analogue); and the test suite proves the translation
//! faithful by running the extracted samplers byte-for-byte against the
//! fused reference implementations.
//!
//! Values are `i128` integers (booleans are 0/1), wide enough for the
//! discrete Gaussian's exact intermediates at any `u64` σ.

use sampcert_arith::Nat;
use std::fmt;

/// Binary arithmetic and comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping-checked addition (panics on overflow — the IR targets
    /// parameter ranges where intermediates fit `i128`).
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Euclidean division (quotient toward −∞, nonnegative remainder) —
    /// matching Lean/Mathlib's `Int.ediv`, which the samplers use.
    Div,
    /// Euclidean remainder.
    Mod,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Strict less-than (yields 0/1).
    Lt,
    /// Less-or-equal (yields 0/1).
    Le,
    /// Equality (yields 0/1).
    Eq,
    /// Logical and over 0/1 values.
    And,
    /// Logical or over 0/1 values.
    Or,
}

impl BinOp {
    /// Applies the operator.
    ///
    /// # Panics
    ///
    /// Panics on arithmetic overflow or division by zero.
    pub fn apply(self, a: i128, b: i128) -> i128 {
        match self {
            BinOp::Add => a.checked_add(b).expect("IR overflow: add"),
            BinOp::Sub => a.checked_sub(b).expect("IR overflow: sub"),
            BinOp::Mul => a.checked_mul(b).expect("IR overflow: mul"),
            BinOp::Div => a.div_euclid(b),
            BinOp::Mod => a.rem_euclid(b),
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
            BinOp::Lt => i128::from(a < b),
            BinOp::Le => i128::from(a <= b),
            BinOp::Eq => i128::from(a == b),
            BinOp::And => i128::from(a != 0 && b != 0),
            BinOp::Or => i128::from(a != 0 || b != 0),
        }
    }

    /// Source-syntax token for the pretty printer.
    pub fn token(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Eq => "==",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// A local-variable index.
pub type Local = usize;

/// Pure integer expressions over the locals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Const(i128),
    /// Nonnegative big-integer literal. Only emitted for values that do
    /// not fit `i128` — small literals always use [`Expr::Const`] so the
    /// VM's unboxed fast path stays hot.
    BigConst(Nat),
    /// Read a local.
    Local(Local),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Absolute value.
    Abs(Box<Expr>),
    /// Negation.
    Neg(Box<Expr>),
    /// Logical not over 0/1.
    Not(Box<Expr>),
    /// Bit length of the magnitude (`0` for `0`) — the image of
    /// `Nat::bit_length`, O(1) at any operand width.
    BitLen(Box<Expr>),
}

impl Expr {
    /// Convenience constructor for binary nodes.
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }

    /// `a + b`.
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Add, a, b)
    }

    /// `a - b`.
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Sub, a, b)
    }

    /// `a * b`.
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Mul, a, b)
    }

    /// `a < b`.
    pub fn lt(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Lt, a, b)
    }

    /// `a == b`.
    pub fn eq(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Eq, a, b)
    }

    /// Free variables (locals) read by the expression.
    pub fn reads(&self, out: &mut Vec<Local>) {
        match self {
            Expr::Const(_) | Expr::BigConst(_) => {}
            Expr::Local(l) => out.push(*l),
            Expr::Bin(_, a, b) => {
                a.reads(out);
                b.reads(out);
            }
            Expr::Abs(a) | Expr::Neg(a) | Expr::Not(a) | Expr::BitLen(a) => a.reads(out),
        }
    }
}

/// Statements: straight-line assignments, the byte primitive, and
/// structured control flow (the image of `probBind`/`probWhile` under the
/// paper's operator-per-statement translation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `local := expr`.
    Assign(Local, Expr),
    /// `local := probUniformByte()` — the sole probabilistic primitive.
    Byte(Local),
    /// `local := probUniformPow2(bits)` — a bulk uniform draw of
    /// `ceil(bits / 8)` whole bytes folded big-endian and masked to the
    /// low `bits` bits. Byte-stream-identical to the per-byte fold the
    /// monadic `uniform_pow2` performs, but executed as one opcode so the
    /// compiled tier does not pay a `Nat` multiply-add per byte.
    UniformPow2(Local, Expr),
    /// Sequential composition.
    Seq(Vec<Stmt>),
    /// `if cond ≠ 0 { then } else { else }`.
    If(Expr, Box<Stmt>, Box<Stmt>),
    /// `while cond ≠ 0 { body }` — the image of `probWhile`.
    While(Expr, Box<Stmt>),
    /// No-op (empty else-branches).
    Skip,
}

impl Stmt {
    /// Sequences two statements, flattening nested sequences.
    pub fn then(self, next: Stmt) -> Stmt {
        match (self, next) {
            (Stmt::Seq(mut a), Stmt::Seq(b)) => {
                a.extend(b);
                Stmt::Seq(a)
            }
            (Stmt::Seq(mut a), s) => {
                a.push(s);
                Stmt::Seq(a)
            }
            (s, Stmt::Seq(mut b)) => {
                b.insert(0, s);
                Stmt::Seq(b)
            }
            (a, b) => Stmt::Seq(vec![a, b]),
        }
    }
}

/// A complete extracted program: a statement over `n_locals` integer
/// locals (zero-initialized) whose result is the final value of `result`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Number of locals; all start at zero.
    pub n_locals: usize,
    /// Human-readable names for the locals (pretty printer; diagnostics).
    pub local_names: Vec<String>,
    /// Program name.
    pub name: String,
    /// The body.
    pub body: Stmt,
    /// The returned expression.
    pub result: Expr,
}

impl Program {
    /// Creates a program, validating local indices.
    ///
    /// # Panics
    ///
    /// Panics if any referenced local is out of range or the name list
    /// length mismatches.
    pub fn new(
        name: impl Into<String>,
        local_names: Vec<String>,
        body: Stmt,
        result: Expr,
    ) -> Self {
        let n_locals = local_names.len();
        let p = Program {
            n_locals,
            local_names,
            name: name.into(),
            body,
            result,
        };
        p.validate();
        p
    }

    fn validate(&self) {
        fn check_expr(e: &Expr, n: usize) {
            let mut reads = Vec::new();
            e.reads(&mut reads);
            for l in reads {
                assert!(l < n, "expression reads out-of-range local {l}");
            }
        }
        fn check_stmt(s: &Stmt, n: usize) {
            match s {
                Stmt::Assign(l, e) => {
                    assert!(*l < n, "assignment to out-of-range local {l}");
                    check_expr(e, n);
                }
                Stmt::Byte(l) => assert!(*l < n, "byte draw into out-of-range local {l}"),
                Stmt::UniformPow2(l, e) => {
                    assert!(*l < n, "uniform draw into out-of-range local {l}");
                    check_expr(e, n);
                }
                Stmt::Seq(ss) => ss.iter().for_each(|s| check_stmt(s, n)),
                Stmt::If(c, t, e) => {
                    check_expr(c, n);
                    check_stmt(t, n);
                    check_stmt(e, n);
                }
                Stmt::While(c, b) => {
                    check_expr(c, n);
                    check_stmt(b, n);
                }
                Stmt::Skip => {}
            }
        }
        check_stmt(&self.body, self.n_locals);
        check_expr(&self.result, self.n_locals);
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "program {}({} locals)", self.name, self.n_locals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_semantics() {
        assert_eq!(BinOp::Add.apply(2, 3), 5);
        assert_eq!(BinOp::Div.apply(-7, 3), -3); // euclidean
        assert_eq!(BinOp::Mod.apply(-7, 3), 2);
        assert_eq!(BinOp::Lt.apply(1, 2), 1);
        assert_eq!(BinOp::Lt.apply(2, 2), 0);
        assert_eq!(BinOp::And.apply(1, 0), 0);
        assert_eq!(BinOp::Or.apply(1, 0), 1);
        assert_eq!(BinOp::Min.apply(4, -2), -2);
        assert_eq!(BinOp::Max.apply(4, -2), 4);
    }

    #[test]
    #[should_panic(expected = "IR overflow")]
    fn overflow_panics() {
        let _ = BinOp::Mul.apply(i128::MAX, 2);
    }

    #[test]
    fn expr_reads() {
        let e = Expr::add(Expr::Local(0), Expr::mul(Expr::Local(2), Expr::Const(3)));
        let mut r = Vec::new();
        e.reads(&mut r);
        assert_eq!(r, vec![0, 2]);
    }

    #[test]
    fn then_flattens() {
        let s = Stmt::Assign(0, Expr::Const(1))
            .then(Stmt::Assign(1, Expr::Const(2)))
            .then(Stmt::Skip);
        match s {
            Stmt::Seq(v) => assert_eq!(v.len(), 3),
            other => panic!("expected Seq, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "out-of-range local")]
    fn validation_catches_bad_local() {
        let _ = Program::new(
            "bad",
            vec!["x".into()],
            Stmt::Assign(3, Expr::Const(0)),
            Expr::Const(0),
        );
    }
}
