//! The verified samplers, extracted to the deep IR.
//!
//! These builders generate first-order IR for the same algorithms as
//! `sampcert-samplers` — uniform rejection, exact Bernoulli, the von
//! Neumann `e^{−γ}` race, both Laplace loops, and the Gaussian rejection
//! scheme — consuming the **identical byte stream** as the fused
//! reference samplers (checked in `tests/extraction_equivalence.rs`).
//! This mirrors the paper's Appendix C pipeline, where the Lean sampler
//! terms are translated to Dafny and compiled onward: the artifact that
//! ships is a different syntax for the same byte-indexed function.

use crate::ir::{BinOp, Expr, Local, Program, Stmt};
use sampcert_arith::Nat;

/// Which Laplace sampling loop to extract (mirrors
/// `sampcert_samplers::LaplaceAlg`, minus the runtime switch, which is a
/// construction-time choice here exactly as in the fused sampler).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoopKind {
    /// Shifted-geometric magnitude (diffprivlib's algorithm).
    Geometric,
    /// Uniform fractional part plus e^{−1}-geometric integral part
    /// (Canonne et al.).
    Uniform,
}

/// Incremental program builder: allocates named locals.
#[derive(Debug, Default)]
struct Builder {
    names: Vec<String>,
    /// Lower uniform draws to the bulk `UniformPow2` primitive instead of
    /// the per-byte fold. Byte-stream-identical; the `*_program_nat`
    /// builders use it so the compiled tier does not pay a multiply-add
    /// per entropy byte at multi-limb widths. Legacy builders keep the
    /// per-byte shape so their committed analyzer signatures stay put.
    pow2_draws: bool,
}

impl Builder {
    fn pow2() -> Self {
        Builder {
            names: Vec::new(),
            pow2_draws: true,
        }
    }

    fn fresh(&mut self, name: &str) -> Local {
        self.names.push(format!("{name}{}", self.names.len()));
        self.names.len() - 1
    }
}

fn c(v: i128) -> Expr {
    Expr::Const(v)
}

fn l(x: Local) -> Expr {
    Expr::Local(x)
}

/// Lowers a `Nat` parameter to the narrowest literal: word-sized values
/// stay on `Expr::Const` (the VM's unboxed fast path), multi-limb values
/// become `Expr::BigConst`.
fn cn(n: &Nat) -> Expr {
    match n.to_u128() {
        Some(v) if v <= i128::MAX as u128 => Expr::Const(v as i128),
        _ => Expr::BigConst(n.clone()),
    }
}

/// Short stable tag for a `Nat` parameter in program names: decimal when
/// word-sized, bit length otherwise (a 128-limb decimal would be ~2500
/// digits long).
fn nat_tag(n: &Nat) -> String {
    match n.to_u128() {
        Some(v) => v.to_string(),
        None => format!("{}b", n.bit_length()),
    }
}

/// Emits `out := uniform below m` (runtime bound `m > 0`), by bit-length
/// rejection over whole bytes — byte-compatible with
/// `sampcert_samplers::uniform_below`.
fn emit_uniform_below(b: &mut Builder, m: Expr, out: Local) -> Stmt {
    if b.pow2_draws {
        return emit_uniform_below_pow2(b, m, out);
    }
    let bits = b.fresh("bits");
    let tmp = b.fresh("tmp");
    let pow2 = b.fresh("pow2");
    let nbytes = b.fresh("nbytes");
    let i = b.fresh("i");
    let byte = b.fresh("byte");
    let accept = b.fresh("accept");

    // bits, pow2 := bitlength(m), 2^bits  (both loops run once; m is
    // loop-invariant in every call site below, so hoisting is safe and
    // keeps the rejection loop byte-identical to the reference).
    let bit_len = Stmt::Assign(bits, c(0))
        .then(Stmt::Assign(pow2, c(1)))
        .then(Stmt::Assign(tmp, m.clone()))
        .then(Stmt::While(
            Expr::lt(c(0), l(tmp)),
            Box::new(
                Stmt::Assign(bits, Expr::add(l(bits), c(1)))
                    .then(Stmt::Assign(pow2, Expr::mul(l(pow2), c(2))))
                    .then(Stmt::Assign(tmp, Expr::bin(BinOp::Div, l(tmp), c(2)))),
            ),
        ));
    // nbytes = ceil(bits / 8)
    let n_bytes = Stmt::Assign(
        nbytes,
        Expr::bin(BinOp::Div, Expr::add(l(bits), c(7)), c(8)),
    );
    // rejection loop
    let draw = Stmt::Assign(out, c(0))
        .then(Stmt::Assign(i, c(0)))
        .then(Stmt::While(
            Expr::lt(l(i), l(nbytes)),
            Box::new(
                Stmt::Byte(byte)
                    .then(Stmt::Assign(
                        out,
                        Expr::add(Expr::mul(l(out), c(256)), l(byte)),
                    ))
                    .then(Stmt::Assign(i, Expr::add(l(i), c(1)))),
            ),
        ))
        .then(Stmt::Assign(out, Expr::bin(BinOp::Mod, l(out), l(pow2))))
        .then(Stmt::Assign(accept, Expr::lt(l(out), m)));
    bit_len
        .then(n_bytes)
        .then(Stmt::Assign(accept, c(0)))
        .then(Stmt::While(Expr::Not(Box::new(l(accept))), Box::new(draw)))
}

/// The `pow2_draws` lowering of `out := uniform below m`: one bulk
/// `probUniformPow2(bitlen(m))` draw per rejection attempt. Consumes
/// exactly the bytes of the per-byte shape above (big-endian fold of
/// `ceil(bits/8)` bytes, masked to `bits`), matching the monadic
/// `uniform_below`. A constant bound folds its bit length at build time;
/// a runtime bound (the growing `den·k` of the von Neumann race) hoists
/// one O(1) `bitlen` before the loop.
fn emit_uniform_below_pow2(b: &mut Builder, m: Expr, out: Local) -> Stmt {
    let accept = b.fresh("accept");
    let (setup, bits_expr) = match &m {
        Expr::Const(v) => {
            assert!(*v > 0, "uniform bound must be positive");
            (None, c(i128::from(128 - (*v as u128).leading_zeros())))
        }
        Expr::BigConst(n) => (None, c(n.bit_length() as i128)),
        _ => {
            let bits = b.fresh("bits");
            (
                Some(Stmt::Assign(bits, Expr::BitLen(Box::new(m.clone())))),
                l(bits),
            )
        }
    };
    let draw = Stmt::UniformPow2(out, bits_expr).then(Stmt::Assign(accept, Expr::lt(l(out), m)));
    let reject = Stmt::Assign(accept, c(0))
        .then(Stmt::While(Expr::Not(Box::new(l(accept))), Box::new(draw)));
    match setup {
        Some(s) => s.then(reject),
        None => reject,
    }
}

/// Emits `out := Bernoulli(num/den)` as 0/1 (runtime parameters).
fn emit_bernoulli(b: &mut Builder, num: Expr, den: Expr, out: Local) -> Stmt {
    let u = b.fresh("u");
    emit_uniform_below(b, den, u).then(Stmt::Assign(out, Expr::lt(l(u), num)))
}

/// Emits `out := Bernoulli(e^{−num/den})` for `num ≤ den` (0/1), the von
/// Neumann race.
fn emit_exp_neg_unit(b: &mut Builder, num: Expr, den: Expr, out: Local) -> Stmt {
    let k = b.fresh("k");
    let trial = b.fresh("trial");
    let den_k = b.fresh("denk");
    let body = Stmt::Assign(den_k, Expr::mul(den, l(k)))
        .then(emit_bernoulli(
            b,
            Expr::bin(BinOp::Min, num, l(den_k)),
            l(den_k),
            trial,
        ))
        .then(Stmt::If(
            l(trial),
            Box::new(Stmt::Assign(k, Expr::add(l(k), c(1)))),
            Box::new(Stmt::Skip),
        ));
    Stmt::Assign(k, c(1))
        .then(Stmt::Assign(trial, c(1)))
        .then(Stmt::While(l(trial), Box::new(body)))
        // success iff the failing trial index k is odd
        .then(Stmt::Assign(
            out,
            Expr::eq(Expr::bin(BinOp::Mod, l(k), c(2)), c(1)),
        ))
}

/// Emits `out := Bernoulli(e^{−num/den})` for arbitrary `num/den ≥ 0`.
fn emit_exp_neg(b: &mut Builder, num: Expr, den: Expr, out: Local) -> Stmt {
    let gamf = b.fresh("gamf");
    let i = b.fresh("i");
    let alive = b.fresh("alive");
    let unit_out = b.fresh("unit");
    let whole_body = emit_exp_neg_unit(b, c(1), c(1), unit_out).then(Stmt::If(
        l(unit_out),
        Box::new(Stmt::Assign(i, Expr::add(l(i), c(1)))),
        Box::new(Stmt::Assign(alive, c(0))),
    ));
    let frac = b.fresh("frac");
    let frac_block = emit_exp_neg_unit(
        b,
        Expr::bin(BinOp::Mod, num.clone(), den.clone()),
        den.clone(),
        frac,
    );
    Stmt::If(
        Expr::bin(BinOp::Le, num.clone(), den.clone()),
        Box::new({
            let direct = b.fresh("direct");
            emit_exp_neg_unit(b, num.clone(), den.clone(), direct)
                .then(Stmt::Assign(out, l(direct)))
        }),
        Box::new(
            Stmt::Assign(gamf, Expr::bin(BinOp::Div, num, den))
                .then(Stmt::Assign(i, c(0)))
                .then(Stmt::Assign(alive, c(1)))
                .then(Stmt::While(
                    Expr::bin(BinOp::And, l(alive), Expr::lt(l(i), l(gamf))),
                    Box::new(whole_body),
                ))
                .then(Stmt::If(
                    l(alive),
                    Box::new(frac_block.then(Stmt::Assign(out, l(frac)))),
                    Box::new(Stmt::Assign(out, c(0))),
                )),
        ),
    )
}

/// Emits `out := Geometric` — trials `Bernoulli(e^{−num/den})` up to and
/// including the first failure.
fn emit_geometric_exp_neg(b: &mut Builder, num: Expr, den: Expr, out: Local) -> Stmt {
    let t = b.fresh("geo_trial");
    let body = emit_exp_neg(b, num, den, t).then(Stmt::Assign(out, Expr::add(l(out), c(1))));
    // do { n += 1; t = trial } while t  — expressed with a priming flag.
    Stmt::Assign(out, c(0))
        .then(Stmt::Assign(t, c(1)))
        .then(Stmt::While(l(t), Box::new(body)))
}

/// Emits `(sign, magnitude) := laplace sampling loop` with the selected
/// algorithm; scale `num/den` baked in as constants.
fn emit_laplace_loop(
    b: &mut Builder,
    num: &Nat,
    den: &Nat,
    kind: LoopKind,
    sign: Local,
    mag: Local,
) -> Stmt {
    match kind {
        LoopKind::Geometric => {
            let v = b.fresh("v");
            emit_geometric_exp_neg(b, cn(den), cn(num), v)
                .then(emit_bernoulli(b, c(1), c(2), sign))
                .then(Stmt::Assign(mag, Expr::sub(l(v), c(1))))
        }
        LoopKind::Uniform => {
            let u = b.fresh("u");
            let d = b.fresh("d");
            let v = b.fresh("v");
            let x = b.fresh("x");
            // rejection: u ~ U[0,num) accepted with prob e^{-u/num}
            let attempt =
                emit_uniform_below(b, cn(num), u).then(emit_exp_neg_unit(b, l(u), cn(num), d));
            let accept_u = Stmt::Assign(d, c(0))
                .then(Stmt::While(Expr::Not(Box::new(l(d))), Box::new(attempt)));
            accept_u
                .then(emit_geometric_exp_neg(b, c(1), c(1), v))
                .then(Stmt::Assign(
                    x,
                    Expr::add(l(u), Expr::mul(cn(num), Expr::sub(l(v), c(1)))),
                ))
                .then(Stmt::Assign(mag, Expr::bin(BinOp::Div, l(x), cn(den))))
                .then(emit_bernoulli(b, c(1), c(2), sign))
        }
    }
}

/// Extracts a **constant-time-shaped** uniform sampler over `[0, 2^bits)`
/// to the IR: it always draws exactly `⌈bits/8⌉` whole bytes and reduces
/// modulo `2^bits` — no rejection, no entropy-dependent guard, so its
/// execution shape is a fixed function (the analyzer verdict is
/// `constant-time-shaped`, and the timing falsifier's negative control
/// runs against it). This is the IR analogue of
/// `sampcert_samplers::uniform_pow2`'s byte path.
///
/// # Panics
///
/// Panics if `bits` is zero or exceeds 100 (the result must fit the IR's
/// `i128` intermediates comfortably).
pub fn uniform_pow2_program(bits: u32) -> Program {
    assert!(
        bits > 0 && bits <= 100,
        "uniform_pow2_program: bits out of range"
    );
    let nbytes = bits.div_ceil(8) as i128;
    let pow2 = 1i128 << bits;
    let mut b = Builder::default();
    let out = b.fresh("out");
    let i = b.fresh("i");
    let byte = b.fresh("byte");
    let body = Stmt::Assign(out, c(0))
        .then(Stmt::Assign(i, c(0)))
        .then(Stmt::While(
            Expr::lt(l(i), c(nbytes)),
            Box::new(
                Stmt::Byte(byte)
                    .then(Stmt::Assign(
                        out,
                        Expr::add(Expr::mul(l(out), c(256)), l(byte)),
                    ))
                    .then(Stmt::Assign(i, Expr::add(l(i), c(1)))),
            ),
        ))
        .then(Stmt::Assign(out, Expr::bin(BinOp::Mod, l(out), c(pow2))));
    Program::new(format!("uniform_pow2_{bits}"), b.names, body, l(out))
}

/// Extracts the whole-byte rejection sampler `uniform below m` to the IR
/// (byte-compatible with `sampcert_samplers::uniform_below`) as a
/// standalone program — the smallest registered program carrying the
/// rejection-sampling timing channel.
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn uniform_below_program(m: u64) -> Program {
    assert!(m > 0, "uniform_below_program: zero bound");
    let mut b = Builder::default();
    let out = b.fresh("out");
    let body = emit_uniform_below(&mut b, c(m as i128), out);
    Program::new(format!("uniform_below_{m}"), b.names, body, l(out))
}

/// Extracts the geometric sampler to the IR: trials
/// `Bernoulli(e^{−num/den})` up to and including the first failure
/// (PMF: Eq. (4) of the paper with `t = e^{−num/den}`).
///
/// # Panics
///
/// Panics if `den` is zero.
pub fn geometric_program(num: u64, den: u64) -> Program {
    assert!(den > 0, "geometric_program: zero denominator");
    let mut b = Builder::default();
    let out = b.fresh("n");
    let body = emit_geometric_exp_neg(&mut b, c(num as i128), c(den as i128), out);
    Program::new(
        format!("geometric_exp_neg_{num}_{den}"),
        b.names,
        body,
        l(out),
    )
}

/// Extracts the discrete Laplace sampler with scale `num/den` to the IR.
///
/// # Panics
///
/// Panics if `num` or `den` is zero.
pub fn laplace_program(num: u64, den: u64, kind: LoopKind) -> Program {
    assert!(num > 0 && den > 0, "laplace_program: zero scale parameter");
    let mut b = Builder::default();
    let sign = b.fresh("sign");
    let mag = b.fresh("mag");
    let done = b.fresh("done");
    let result = b.fresh("result");
    let loop_block = emit_laplace_loop(&mut b, &Nat::from(num), &Nat::from(den), kind, sign, mag);
    let body = Stmt::Assign(done, c(0)).then(Stmt::While(
        Expr::Not(Box::new(l(done))),
        Box::new(loop_block.then(Stmt::If(
            Expr::bin(BinOp::And, l(sign), Expr::eq(l(mag), c(0))),
            Box::new(Stmt::Skip), // (+,0): resample
            Box::new(Stmt::Assign(done, c(1)).then(Stmt::If(
                l(sign),
                Box::new(Stmt::Assign(result, Expr::Neg(Box::new(l(mag))))),
                Box::new(Stmt::Assign(result, l(mag))),
            ))),
        ))),
    ));
    Program::new(
        format!("discrete_laplace_{num}_{den}_{kind:?}"),
        b.names,
        body,
        l(result),
    )
}

/// Extracts the discrete Gaussian sampler for `σ = num/den` to the IR.
///
/// # Panics
///
/// Panics if `num` or `den` is zero or `num ≥ 2³²` (the same bound as the
/// fused sampler: intermediates must fit the IR's `i128`).
pub fn gaussian_program(num: u64, den: u64, kind: LoopKind) -> Program {
    assert!(num > 0 && den > 0, "gaussian_program: zero sigma parameter");
    assert!(
        num < (1 << 32),
        "gaussian_program: sigma too large for the IR"
    );
    let t = (num / den + 1) as i128;
    let num_sq = (num as i128) * (num as i128);
    let den_sq = (den as i128) * (den as i128);
    let bound = 2 * num_sq * t * t * den_sq;

    let mut b = Builder::default();
    let y = b.fresh("y");
    let diff = b.fresh("diff");
    let acc = b.fresh("accept");
    let done = b.fresh("done");

    // Inline Laplace(t, 1) — exactly what the fused sampler does.
    let sign = b.fresh("lsign");
    let mag = b.fresh("lmag");
    let ldone = b.fresh("ldone");
    let lap_loop = emit_laplace_loop(&mut b, &Nat::from(t as u64), &Nat::one(), kind, sign, mag);
    let laplace_block = Stmt::Assign(ldone, c(0)).then(Stmt::While(
        Expr::Not(Box::new(l(ldone))),
        Box::new(lap_loop.then(Stmt::If(
            Expr::bin(BinOp::And, l(sign), Expr::eq(l(mag), c(0))),
            Box::new(Stmt::Skip),
            Box::new(Stmt::Assign(ldone, c(1)).then(Stmt::If(
                l(sign),
                Box::new(Stmt::Assign(y, Expr::Neg(Box::new(l(mag))))),
                Box::new(Stmt::Assign(y, l(mag))),
            ))),
        ))),
    ));

    // diff = | |y|·t·den² − num² |; accept ~ Bernoulli(e^{−diff²/bound}).
    let accept_block = Stmt::Assign(
        diff,
        Expr::Abs(Box::new(Expr::sub(
            Expr::mul(Expr::Abs(Box::new(l(y))), Expr::mul(c(t), c(den_sq))),
            c(num_sq),
        ))),
    )
    .then(emit_exp_neg(
        &mut b,
        Expr::mul(l(diff), l(diff)),
        c(bound),
        acc,
    ));

    let body = Stmt::Assign(done, c(0)).then(Stmt::While(
        Expr::Not(Box::new(l(done))),
        Box::new(laplace_block.then(accept_block).then(Stmt::If(
            l(acc),
            Box::new(Stmt::Assign(done, c(1))),
            Box::new(Stmt::Skip),
        ))),
    ));
    Program::new(
        format!("discrete_gaussian_{num}_{den}_{kind:?}"),
        b.names,
        body,
        l(y),
    )
}

/// Extracts `uniform below m` for an arbitrary-precision bound, using the
/// bulk `UniformPow2` lowering — the compiled-tier counterpart of
/// `sampcert_samplers::uniform_below` at any limb count, byte-compatible
/// with the monadic interpreter.
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn uniform_below_program_nat(m: &Nat) -> Program {
    assert!(!m.is_zero(), "uniform_below_program: zero bound");
    let mut b = Builder::pow2();
    let out = b.fresh("out");
    let body = emit_uniform_below(&mut b, cn(m), out);
    Program::new(
        format!("uniform_below_nat_{}", nat_tag(m)),
        b.names,
        body,
        l(out),
    )
}

/// Extracts `Bernoulli(num/den)` for arbitrary-precision parameters
/// (compiled-tier counterpart of `sampcert_samplers::bernoulli`).
///
/// # Panics
///
/// Panics if `den` is zero or `num > den`.
pub fn bernoulli_program_nat(num: &Nat, den: &Nat) -> Program {
    assert!(!den.is_zero(), "bernoulli_program: zero denominator");
    assert!(num <= den, "bernoulli_program: bias above one");
    let mut b = Builder::pow2();
    let out = b.fresh("out");
    let body = emit_bernoulli(&mut b, cn(num), cn(den), out);
    Program::new(
        format!("bernoulli_nat_{}_{}", nat_tag(num), nat_tag(den)),
        b.names,
        body,
        l(out),
    )
}

/// Extracts `Bernoulli(e^{−num/den})` for arbitrary-precision parameters
/// (compiled-tier counterpart of `sampcert_samplers::bernoulli_exp_neg`).
///
/// # Panics
///
/// Panics if `den` is zero.
pub fn bernoulli_exp_neg_program_nat(num: &Nat, den: &Nat) -> Program {
    assert!(
        !den.is_zero(),
        "bernoulli_exp_neg_program: zero denominator"
    );
    let mut b = Builder::pow2();
    let out = b.fresh("out");
    let body = emit_exp_neg(&mut b, cn(num), cn(den), out);
    Program::new(
        format!("bernoulli_exp_neg_nat_{}_{}", nat_tag(num), nat_tag(den)),
        b.names,
        body,
        l(out),
    )
}

/// Extracts the discrete Laplace sampler with arbitrary-precision scale
/// `num/den` — the compiled execution tier's program for parameters
/// outside the fused u128 box. Same structure as [`laplace_program`], but
/// uniform draws lower to the bulk `UniformPow2` primitive and multi-limb
/// parameters become `BigConst` literals.
///
/// # Panics
///
/// Panics if `num` or `den` is zero.
pub fn laplace_program_nat(num: &Nat, den: &Nat, kind: LoopKind) -> Program {
    assert!(
        !num.is_zero() && !den.is_zero(),
        "laplace_program: zero scale parameter"
    );
    let mut b = Builder::pow2();
    let sign = b.fresh("sign");
    let mag = b.fresh("mag");
    let done = b.fresh("done");
    let result = b.fresh("result");
    let loop_block = emit_laplace_loop(&mut b, num, den, kind, sign, mag);
    let body = Stmt::Assign(done, c(0)).then(Stmt::While(
        Expr::Not(Box::new(l(done))),
        Box::new(loop_block.then(Stmt::If(
            Expr::bin(BinOp::And, l(sign), Expr::eq(l(mag), c(0))),
            Box::new(Stmt::Skip), // (+,0): resample
            Box::new(Stmt::Assign(done, c(1)).then(Stmt::If(
                l(sign),
                Box::new(Stmt::Assign(result, Expr::Neg(Box::new(l(mag))))),
                Box::new(Stmt::Assign(result, l(mag))),
            ))),
        ))),
    ));
    Program::new(
        format!(
            "discrete_laplace_nat_{}_{}_{kind:?}",
            nat_tag(num),
            nat_tag(den)
        ),
        b.names,
        body,
        l(result),
    )
}

/// Extracts the discrete Gaussian sampler for arbitrary-precision
/// `σ = num/den` — no 2³² ceiling: the tagged-value VM promotes the
/// squared intermediates to big integers as needed.
///
/// # Panics
///
/// Panics if `num` or `den` is zero.
pub fn gaussian_program_nat(num: &Nat, den: &Nat, kind: LoopKind) -> Program {
    assert!(
        !num.is_zero() && !den.is_zero(),
        "gaussian_program: zero sigma parameter"
    );
    let (q, _) = num.div_rem(den);
    let t = &q + &Nat::one();
    let num_sq = num.pow(2);
    let den_sq = den.pow(2);
    let bound = &(&Nat::from(2u64) * &num_sq) * &(&(&t * &t) * &den_sq);

    let mut b = Builder::pow2();
    let y = b.fresh("y");
    let diff = b.fresh("diff");
    let acc = b.fresh("accept");
    let done = b.fresh("done");

    // Inline Laplace(t, 1) — exactly what the fused sampler does.
    let sign = b.fresh("lsign");
    let mag = b.fresh("lmag");
    let ldone = b.fresh("ldone");
    let lap_loop = emit_laplace_loop(&mut b, &t, &Nat::one(), kind, sign, mag);
    let laplace_block = Stmt::Assign(ldone, c(0)).then(Stmt::While(
        Expr::Not(Box::new(l(ldone))),
        Box::new(lap_loop.then(Stmt::If(
            Expr::bin(BinOp::And, l(sign), Expr::eq(l(mag), c(0))),
            Box::new(Stmt::Skip),
            Box::new(Stmt::Assign(ldone, c(1)).then(Stmt::If(
                l(sign),
                Box::new(Stmt::Assign(y, Expr::Neg(Box::new(l(mag))))),
                Box::new(Stmt::Assign(y, l(mag))),
            ))),
        ))),
    ));

    // diff = | |y|·t·den² − num² |; accept ~ Bernoulli(e^{−diff²/bound}).
    let accept_block = Stmt::Assign(
        diff,
        Expr::Abs(Box::new(Expr::sub(
            Expr::mul(Expr::Abs(Box::new(l(y))), Expr::mul(cn(&t), cn(&den_sq))),
            cn(&num_sq),
        ))),
    )
    .then(emit_exp_neg(
        &mut b,
        Expr::mul(l(diff), l(diff)),
        cn(&bound),
        acc,
    ));

    let body = Stmt::Assign(done, c(0)).then(Stmt::While(
        Expr::Not(Box::new(l(done))),
        Box::new(laplace_block.then(accept_block).then(Stmt::If(
            l(acc),
            Box::new(Stmt::Assign(done, c(1))),
            Box::new(Stmt::Skip),
        ))),
    ));
    Program::new(
        format!(
            "discrete_gaussian_nat_{}_{}_{kind:?}",
            nat_tag(num),
            nat_tag(den)
        ),
        b.names,
        body,
        l(y),
    )
}

/// One program shipped by the extraction pipeline, together with its
/// **committed** static-analysis expectations. The expectations are the
/// contract the `reproduce analyze` CI gate enforces: if an edit to the
/// builders changes a program's timing-leak signature or its entropy
/// bounds, the gate fails until the change is reviewed and the committed
/// expectation updated here.
#[derive(Debug, Clone)]
pub struct RegisteredProgram {
    /// Stable registry key (also the JSON row key in `BENCH_analyze.json`).
    pub name: &'static str,
    /// The extracted program.
    pub program: Program,
    /// Expected [`crate::Verdict::signature`] string.
    pub expected_verdict: &'static str,
    /// Expected worst-case entropy bytes (`None` = unbounded, the
    /// rejection-sampler signature) from [`crate::byte_bounds`].
    pub expected_worst_case_bytes: Option<u64>,
}

/// Every program the extraction pipeline ships, with committed analyzer
/// expectations — the registry the static-analysis CI gate walks.
///
/// Parameters are chosen small so the whole registry analyzes in
/// milliseconds, while covering every builder and both Laplace loops:
/// the constant-time-shaped power-of-two uniform (the negative control),
/// the whole-byte rejection uniform, the geometric, both Laplace loops,
/// and the Gaussian rejection scheme.
pub fn registered_programs() -> Vec<RegisteredProgram> {
    vec![
        RegisteredProgram {
            name: "uniform_pow2_12",
            program: uniform_pow2_program(12),
            expected_verdict: "constant-time-shaped",
            expected_worst_case_bytes: Some(2),
        },
        RegisteredProgram {
            name: "uniform_below_10",
            program: uniform_below_program(10),
            expected_verdict: EXPECT_UNIFORM_BELOW,
            expected_worst_case_bytes: None,
        },
        RegisteredProgram {
            name: "uniform_below_nat_10",
            program: uniform_below_program_nat(&Nat::from(10u64)),
            expected_verdict: EXPECT_UNIFORM_BELOW_NAT,
            expected_worst_case_bytes: None,
        },
        RegisteredProgram {
            name: "geometric_1_2",
            program: geometric_program(1, 2),
            expected_verdict: EXPECT_GEOMETRIC,
            expected_worst_case_bytes: None,
        },
        RegisteredProgram {
            name: "laplace_5_2_geometric",
            program: laplace_program(5, 2, LoopKind::Geometric),
            expected_verdict: EXPECT_LAPLACE_GEOMETRIC,
            expected_worst_case_bytes: None,
        },
        RegisteredProgram {
            name: "laplace_5_2_uniform",
            program: laplace_program(5, 2, LoopKind::Uniform),
            expected_verdict: EXPECT_LAPLACE_UNIFORM,
            expected_worst_case_bytes: None,
        },
        RegisteredProgram {
            name: "gaussian_4_1_geometric",
            program: gaussian_program(4, 1, LoopKind::Geometric),
            expected_verdict: EXPECT_GAUSSIAN_GEOMETRIC,
            expected_worst_case_bytes: None,
        },
        // Big-parameter compiled-tier lowerings: the same samplers at
        // multi-limb scales (5·2^130 / 2·2^130 keeps the Laplace ratio of
        // the word-sized rows; σ = 4 with both parameters pushed past
        // u128). These pin that the `BigConst`/`UniformPow2` lowering
        // carries the *same class* of timing channels as the word-sized
        // shape — growing the parameters must never silently change the
        // leak signature.
        RegisteredProgram {
            name: "laplace_nat_big_geometric",
            program: laplace_program_nat(
                &(&Nat::from(5u64) << 130),
                &(&Nat::from(2u64) << 130),
                LoopKind::Geometric,
            ),
            expected_verdict: EXPECT_LAPLACE_NAT_GEOMETRIC,
            expected_worst_case_bytes: None,
        },
        RegisteredProgram {
            name: "laplace_nat_big_uniform",
            program: laplace_program_nat(
                &(&Nat::from(5u64) << 130),
                &(&Nat::from(2u64) << 130),
                LoopKind::Uniform,
            ),
            expected_verdict: EXPECT_LAPLACE_NAT_UNIFORM,
            expected_worst_case_bytes: None,
        },
        RegisteredProgram {
            name: "gaussian_nat_big_geometric",
            program: gaussian_program_nat(
                &(&Nat::from(4u64) << 130),
                &(&Nat::one() << 130),
                LoopKind::Geometric,
            ),
            expected_verdict: EXPECT_GAUSSIAN_NAT_GEOMETRIC,
            expected_worst_case_bytes: None,
        },
    ]
}

// The committed timing-leak signatures, one constant per registered leaky
// program (the counts are structural facts about the builders above; any
// drift is a reviewed change). See `crate::Verdict::signature` for the
// format.
const EXPECT_UNIFORM_BELOW: &str = "leaks{loop-bound:2, op-latency:1}";
// The pow2-draw lowering has no mod, no per-byte loop and a build-time
// constant bit width: the rejection loop itself is the only channel.
const EXPECT_UNIFORM_BELOW_NAT: &str = "leaks{loop-bound:1}";
const EXPECT_GEOMETRIC: &str = "leaks{branch:5, loop-bound:14, op-latency:3}";
const EXPECT_LAPLACE_GEOMETRIC: &str = "leaks{branch:7, loop-bound:18, op-latency:4}";
const EXPECT_LAPLACE_UNIFORM: &str = "leaks{branch:8, loop-bound:26, op-latency:6}";
const EXPECT_GAUSSIAN_GEOMETRIC: &str = "leaks{branch:14, loop-bound:32, op-latency:9}";
// The big-parameter lowerings: leaner op-latency/loop-bound counts than
// the legacy shapes because `pow2_draws` collapses the per-byte uniform
// fold into one bulk draw; the branch structure is unchanged.
const EXPECT_LAPLACE_NAT_GEOMETRIC: &str = "leaks{branch:7, loop-bound:13}";
const EXPECT_LAPLACE_NAT_UNIFORM: &str = "leaks{branch:8, loop-bound:18, op-latency:1}";
const EXPECT_GAUSSIAN_NAT_GEOMETRIC: &str = "leaks{branch:14, loop-bound:24, op-latency:2}";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::{compile, interpret, Vm};
    use sampcert_slang::{ByteSource, SeededByteSource};

    #[test]
    fn registry_signatures_match_analyzer() {
        // Aggregate every drift into one failure message so a builder
        // change shows the full new signature set in a single run.
        let mut drift = Vec::new();
        for r in registered_programs() {
            let got = crate::timing_verdict(&r.program).signature();
            if got != r.expected_verdict {
                drift.push(format!(
                    "{}: analyzer `{got}`, registry `{}`",
                    r.name, r.expected_verdict
                ));
            }
        }
        assert!(drift.is_empty(), "signature drift:\n{}", drift.join("\n"));
    }

    #[test]
    fn laplace_programs_build_and_run() {
        for kind in [LoopKind::Geometric, LoopKind::Uniform] {
            let p = laplace_program(5, 2, kind);
            let vm = Vm::new(compile(&p));
            let mut src = SeededByteSource::new(1);
            for _ in 0..50 {
                let z = vm.run(&mut src);
                assert!(z.abs() < 200, "implausible {z} ({kind:?})");
            }
        }
    }

    #[test]
    fn gaussian_program_builds_and_runs() {
        let p = gaussian_program(4, 1, LoopKind::Geometric);
        let vm = Vm::new(compile(&p));
        let mut src = SeededByteSource::new(2);
        for _ in 0..50 {
            let z = vm.run(&mut src);
            assert!(z.abs() < 60, "implausible {z}");
        }
    }

    #[test]
    fn vm_and_ast_agree_on_samplers() {
        let p = laplace_program(7, 3, LoopKind::Uniform);
        let vm = Vm::new(compile(&p));
        for seed in 0..10 {
            let mut s1 = SeededByteSource::new(seed);
            let mut s2 = SeededByteSource::new(seed);
            for _ in 0..30 {
                assert_eq!(interpret(&p, &mut s1), vm.run(&mut s2));
            }
        }
    }

    #[test]
    fn laplace_sample_mean_plausible() {
        let p = laplace_program(3, 1, LoopKind::Geometric);
        let vm = Vm::new(compile(&p));
        let mut src = SeededByteSource::new(3);
        let n = 4000;
        let sum: i128 = (0..n).map(|_| vm.run(&mut src)).sum();
        assert!(
            (sum as f64 / n as f64).abs() < 0.5,
            "mean={}",
            sum as f64 / n as f64
        );
    }

    #[test]
    #[should_panic(expected = "zero scale parameter")]
    fn zero_scale_rejected() {
        let _ = laplace_program(0, 1, LoopKind::Geometric);
    }

    #[test]
    fn nat_lowering_matches_legacy_bytewise() {
        // The pow2-draw lowering consumes the identical byte stream as the
        // per-byte legacy shape: same values, same entropy positions.
        for kind in [LoopKind::Geometric, LoopKind::Uniform] {
            let legacy = Vm::new(compile(&laplace_program(5, 2, kind)));
            let nat = Vm::new(compile(&laplace_program_nat(
                &Nat::from(5u64),
                &Nat::from(2u64),
                kind,
            )));
            for seed in 0..8u64 {
                let mut s1 = SeededByteSource::new(seed);
                let mut s2 = SeededByteSource::new(seed);
                for _ in 0..40 {
                    assert_eq!(legacy.run(&mut s1), nat.run(&mut s2), "{kind:?} {seed}");
                }
                assert_eq!(s1.next_byte(), s2.next_byte(), "streams diverged");
            }
        }
        let legacy = Vm::new(compile(&gaussian_program(4, 1, LoopKind::Geometric)));
        let nat = Vm::new(compile(&gaussian_program_nat(
            &Nat::from(4u64),
            &Nat::from(1u64),
            LoopKind::Geometric,
        )));
        for seed in 0..8u64 {
            let mut s1 = SeededByteSource::new(seed);
            let mut s2 = SeededByteSource::new(seed);
            for _ in 0..20 {
                assert_eq!(legacy.run(&mut s1), nat.run(&mut s2), "gauss {seed}");
            }
        }
    }
}
