//! The machine-readable static-analysis report and its CI gate.
//!
//! [`analysis_report`] walks the committed registry
//! ([`crate::registered_programs`]) and, for every program, combines
//!
//! 1. the **taint verdict** ([`crate::timing_verdict`]) with its
//!    source-located witnesses,
//! 2. the **entropy bounds** ([`crate::byte_bounds`]) from abstract
//!    interpretation, and
//! 3. an **empirical cross-check**: deterministic [`crate::Vm::run_traced`]
//!    sweeps over many entropy streams, plus (for finite-bound programs)
//!    the exhaustive Markov-chain analysis ([`crate::analyze`]).
//!
//! Disagreements between the static layer and the dynamic evidence — or
//! between the computed results and the registry's committed expectations —
//! become **gate errors**, which `reproduce analyze --deny-findings` turns
//! into a failing exit status. [`report_to_json`] renders the whole report
//! in the `sampcert-extract/analyze-v1` schema for the CI artifact.

use crate::analyze::{analyze, Analysis};
use crate::bounds::{byte_bounds, Bound, ByteBounds, DEFAULT_UNROLL};
use crate::programs::registered_programs;
use crate::taint::{LeakKind, Verdict};
use crate::vm::{compile, RunTrace, Vm};
use sampcert_slang::SeededByteSource;

/// Entropy streams swept per program for the empirical cross-check.
const SWEEP_SEEDS: u64 = 64;
/// Draws taken per stream (each draw is one traced VM run).
const SWEEP_DRAWS: usize = 4;
/// Step budget for the exhaustive Markov-chain cross-check of
/// finite-bound programs (far above what two byte draws need).
const MARKOV_STEPS: usize = 400_000;

/// Summary of the traced-execution sweep for one program.
#[derive(Debug, Clone, Copy)]
pub struct Sweep {
    /// Total traced runs (`SWEEP_SEEDS * SWEEP_DRAWS`).
    pub runs: u64,
    /// Fewest entropy bytes consumed by any run.
    pub min_bytes: u64,
    /// Most entropy bytes consumed by any run.
    pub max_bytes: u64,
    /// Shortest instruction trace observed.
    pub min_instructions: u64,
    /// Longest instruction trace observed.
    pub max_instructions: u64,
}

impl Sweep {
    fn of(traces: &[RunTrace]) -> Sweep {
        let mut s = Sweep {
            runs: traces.len() as u64,
            min_bytes: u64::MAX,
            max_bytes: 0,
            min_instructions: u64::MAX,
            max_instructions: 0,
        };
        for t in traces {
            s.min_bytes = s.min_bytes.min(t.bytes);
            s.max_bytes = s.max_bytes.max(t.bytes);
            s.min_instructions = s.min_instructions.min(t.instructions);
            s.max_instructions = s.max_instructions.max(t.instructions);
        }
        s
    }

    /// True when every run consumed identical entropy and executed an
    /// identical number of instructions — the observable consequence a
    /// `constant-time-shaped` verdict promises.
    pub fn is_constant(&self) -> bool {
        self.min_bytes == self.max_bytes && self.min_instructions == self.max_instructions
    }
}

/// One registry entry's full analysis: static verdicts, committed
/// expectations, dynamic evidence, and any gate errors they produced.
#[derive(Debug)]
pub struct ReportRow {
    /// Registry key.
    pub name: &'static str,
    /// Actual taint verdict.
    pub verdict: Verdict,
    /// Committed expected signature from the registry.
    pub expected_verdict: &'static str,
    /// Actual entropy bounds from abstract interpretation.
    pub bounds: ByteBounds,
    /// Committed expected worst case (`None` = unbounded).
    pub expected_worst_case_bytes: Option<u64>,
    /// Empirical traced-run sweep.
    pub sweep: Sweep,
    /// Exhaustive Markov-chain analysis, run only when the static worst
    /// case is finite (it terminates by construction there).
    pub markov: Option<Analysis>,
    /// Gate errors: each is a committed-expectation mismatch or a
    /// static/dynamic contradiction. Empty means the row passes.
    pub errors: Vec<String>,
}

fn sweep_program(vm: &Vm) -> Vec<RunTrace> {
    let mut traces = Vec::with_capacity((SWEEP_SEEDS as usize) * SWEEP_DRAWS);
    for seed in 0..SWEEP_SEEDS {
        let mut src = SeededByteSource::new(seed);
        for _ in 0..SWEEP_DRAWS {
            traces.push(vm.run_traced(&mut src));
        }
    }
    traces
}

fn check_row(row: &mut ReportRow) {
    let sig = row.verdict.signature();
    if sig != row.expected_verdict {
        row.errors.push(format!(
            "verdict drift: analyzer says `{sig}`, registry commits `{}`",
            row.expected_verdict
        ));
    }
    if row.bounds.worst_case.finite() != row.expected_worst_case_bytes {
        row.errors.push(format!(
            "bound drift: analyzer worst case {:?}, registry commits {:?}",
            row.bounds.worst_case, row.expected_worst_case_bytes
        ));
    }

    // Static verdicts must survive contact with the dynamic evidence.
    if row.verdict.is_constant_time_shaped() && !row.sweep.is_constant() {
        row.errors.push(format!(
            "soundness: constant-time-shaped verdict but traces vary \
             (bytes {}..={}, instructions {}..={})",
            row.sweep.min_bytes,
            row.sweep.max_bytes,
            row.sweep.min_instructions,
            row.sweep.max_instructions
        ));
    }
    if row.verdict.count(LeakKind::LoopBound) > 0 && row.sweep.min_bytes == row.sweep.max_bytes {
        // A tainted loop bound whose byte count never varies over
        // 64 independent streams is a suspicious (likely spurious)
        // finding; surface it so the registry entry gets reviewed.
        row.errors.push(format!(
            "power: loop-bound leak claimed but all {} runs consumed exactly {} bytes",
            row.sweep.runs, row.sweep.min_bytes
        ));
    }
    match row.bounds.worst_case {
        Bound::Finite(w) => {
            if row.sweep.max_bytes > w {
                row.errors.push(format!(
                    "soundness: static worst case {w} bytes but a run consumed {}",
                    row.sweep.max_bytes
                ));
            }
        }
        Bound::Unbounded => {}
    }
    if row.sweep.min_bytes < row.bounds.guaranteed {
        row.errors.push(format!(
            "soundness: static guaranteed floor {} bytes but a run consumed only {}",
            row.bounds.guaranteed, row.sweep.min_bytes
        ));
    }
    if let Some(a) = &row.markov {
        if !a.is_exhaustive() {
            row.errors.push(format!(
                "markov: finite-bound program left {} unresolved mass",
                a.unresolved_mass()
            ));
        }
        let lo = row.bounds.guaranteed as f64 - 1e-9;
        let hi = match row.bounds.worst_case {
            Bound::Finite(w) => w as f64 + 1e-9,
            Bound::Unbounded => f64::INFINITY,
        };
        if a.expected_bytes < lo || a.expected_bytes > hi {
            row.errors.push(format!(
                "markov: expected {} bytes outside static envelope [{}, {:?}]",
                a.expected_bytes, row.bounds.guaranteed, row.bounds.worst_case
            ));
        }
    }
}

/// Analyze every registered program and cross-check the results against
/// both the committed expectations and the dynamic evidence.
pub fn analysis_report() -> Vec<ReportRow> {
    registered_programs()
        .into_iter()
        .map(|r| {
            let verdict = crate::timing_verdict(&r.program);
            let bounds = byte_bounds(&r.program, DEFAULT_UNROLL);
            let code = compile(&r.program);
            let vm = Vm::new(code.clone());
            let sweep = Sweep::of(&sweep_program(&vm));
            let markov = bounds
                .worst_case
                .is_finite()
                .then(|| analyze(&code, MARKOV_STEPS, 0.0));
            let mut row = ReportRow {
                name: r.name,
                verdict,
                expected_verdict: r.expected_verdict,
                bounds,
                expected_worst_case_bytes: r.expected_worst_case_bytes,
                sweep,
                markov,
                errors: Vec::new(),
            };
            check_row(&mut row);
            row
        })
        .collect()
}

fn json_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Render the report as the `sampcert-extract/analyze-v1` JSON document
/// (the CI artifact uploaded by the `analyze` workflow job).
pub fn report_to_json(rows: &[ReportRow]) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"schema\": \"sampcert-extract/analyze-v1\",\n  \"programs\": [");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    {\n      \"name\": ");
        json_str(row.name, &mut s);
        s.push_str(",\n      \"verdict\": ");
        json_str(&row.verdict.signature(), &mut s);
        s.push_str(",\n      \"expected_verdict\": ");
        json_str(row.expected_verdict, &mut s);
        s.push_str(&format!(
            ",\n      \"constant_time_shaped\": {}",
            row.verdict.is_constant_time_shaped()
        ));
        s.push_str(",\n      \"findings\": [");
        for (j, f) in row.verdict.findings().iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            s.push_str("\n        {\"kind\": ");
            json_str(f.kind.token(), &mut s);
            s.push_str(", \"witness\": ");
            json_str(&f.witness(), &mut s);
            s.push('}');
        }
        if !row.verdict.findings().is_empty() {
            s.push_str("\n      ");
        }
        s.push(']');
        match row.bounds.worst_case.finite() {
            Some(w) => s.push_str(&format!(",\n      \"worst_case_bytes\": {w}")),
            None => s.push_str(",\n      \"worst_case_bytes\": null"),
        }
        s.push_str(&format!(
            ",\n      \"guaranteed_bytes\": {},\n      \"divergent_loops\": {}",
            row.bounds.guaranteed, row.bounds.divergent_loops
        ));
        s.push_str(&format!(
            ",\n      \"empirical\": {{\"runs\": {}, \"bytes\": [{}, {}], \"instructions\": [{}, {}]}}",
            row.sweep.runs,
            row.sweep.min_bytes,
            row.sweep.max_bytes,
            row.sweep.min_instructions,
            row.sweep.max_instructions
        ));
        match &row.markov {
            Some(a) => s.push_str(&format!(
                ",\n      \"markov\": {{\"expected_bytes\": {}, \"configs_explored\": {}, \"unresolved_mass\": {}}}",
                a.expected_bytes,
                a.configs_explored,
                a.unresolved_mass()
            )),
            None => s.push_str(",\n      \"markov\": null"),
        }
        s.push_str(",\n      \"errors\": [");
        for (j, e) in row.errors.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            json_str(e, &mut s);
        }
        s.push_str("]\n    }");
    }
    let total_errors: usize = rows.iter().map(|r| r.errors.len()).sum();
    s.push_str(&format!(
        "\n  ],\n  \"gate\": {{\"programs\": {}, \"errors\": {total_errors}}}\n}}\n",
        rows.len()
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_rows_all_pass_the_gate() {
        let rows = analysis_report();
        assert_eq!(rows.len(), 10);
        for row in &rows {
            assert!(
                row.errors.is_empty(),
                "{}: gate errors {:?} (verdict `{}`, bounds {:?})",
                row.name,
                row.errors,
                row.verdict.signature(),
                row.bounds
            );
        }
    }

    #[test]
    fn negative_control_is_exhaustively_cross_checked() {
        let rows = analysis_report();
        let ct = rows
            .iter()
            .find(|r| r.name == "uniform_pow2_12")
            .expect("registry has the negative control");
        assert!(ct.verdict.is_constant_time_shaped());
        assert!(ct.sweep.is_constant());
        let a = ct.markov.as_ref().expect("finite bound triggers markov");
        assert!(a.is_exhaustive());
        assert!((a.expected_bytes - 2.0).abs() < 1e-9);
    }

    #[test]
    fn laplace_loop_bound_leak_has_located_witness() {
        let rows = analysis_report();
        let lap = rows
            .iter()
            .find(|r| r.name == "laplace_5_2_geometric")
            .expect("registry has the geometric Laplace");
        assert!(lap.verdict.count(LeakKind::LoopBound) > 0);
        let w = lap
            .verdict
            .findings()
            .iter()
            .find(|f| f.kind == LeakKind::LoopBound)
            .map(crate::Finding::witness)
            .unwrap();
        assert!(w.contains("while"), "witness locates the loop: {w}");
    }

    #[test]
    fn json_report_is_well_formed_enough() {
        let rows = analysis_report();
        let json = report_to_json(&rows);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"schema\": \"sampcert-extract/analyze-v1\""));
        assert!(json.contains("\"uniform_pow2_12\""));
        // Balanced braces and quotes (cheap structural sanity without a
        // JSON parser in the dependency set).
        let quotes = json.matches('"').count();
        assert_eq!(quotes % 2, 0, "unbalanced quotes");
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close, "unbalanced braces");
    }
}
