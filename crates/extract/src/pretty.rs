//! A source-level pretty printer for extracted programs.
//!
//! The paper's pipeline materializes the extracted sampler as Dafny
//! source before compiling onward (Listing 21 shows the Python end).
//! [`render`] plays the same role here: an inspectable, imperative
//! rendering of the IR, so the artifact that ships can be audited without
//! trusting the compiler (the differential tests do the trusting for us,
//! but eyes help).

use crate::ir::{Expr, Program, Stmt};
use std::fmt::Write;

/// Renders a program as imperative pseudocode.
pub fn render(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "method {}() returns (result: int) {{", p.name);
    for (i, n) in p.local_names.iter().enumerate() {
        let _ = writeln!(out, "  var {n}: int := 0; // local {i}");
    }
    render_stmt(&p.body, p, 1, &mut out);
    let _ = writeln!(out, "  return {};", render_expr(&p.result, p));
    let _ = writeln!(out, "}}");
    out
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn local_name(p: &Program, l: usize) -> &str {
    &p.local_names[l]
}

fn render_expr(e: &Expr, p: &Program) -> String {
    match e {
        Expr::Const(v) => v.to_string(),
        Expr::Local(l) => local_name(p, *l).to_string(),
        Expr::Bin(op, a, b) => match op.token() {
            t @ ("min" | "max") => {
                format!("{t}({}, {})", render_expr(a, p), render_expr(b, p))
            }
            t => format!("({} {t} {})", render_expr(a, p), render_expr(b, p)),
        },
        Expr::Abs(a) => format!("abs({})", render_expr(a, p)),
        Expr::Neg(a) => format!("(-{})", render_expr(a, p)),
        Expr::Not(a) => format!("(!{})", render_expr(a, p)),
    }
}

fn render_stmt(s: &Stmt, p: &Program, depth: usize, out: &mut String) {
    match s {
        Stmt::Skip => {}
        Stmt::Assign(l, e) => {
            indent(depth, out);
            let _ = writeln!(out, "{} := {};", local_name(p, *l), render_expr(e, p));
        }
        Stmt::Byte(l) => {
            indent(depth, out);
            let _ = writeln!(out, "{} := probUniformByte();", local_name(p, *l));
        }
        Stmt::Seq(ss) => ss.iter().for_each(|s| render_stmt(s, p, depth, out)),
        Stmt::If(c, t, e) => {
            indent(depth, out);
            let _ = writeln!(out, "if {} {{", render_expr(c, p));
            render_stmt(t, p, depth + 1, out);
            if !matches!(**e, Stmt::Skip) {
                indent(depth, out);
                let _ = writeln!(out, "}} else {{");
                render_stmt(e, p, depth + 1, out);
            }
            indent(depth, out);
            let _ = writeln!(out, "}}");
        }
        Stmt::While(c, b) => {
            indent(depth, out);
            let _ = writeln!(out, "while {} {{", render_expr(c, p));
            render_stmt(b, p, depth + 1, out);
            indent(depth, out);
            let _ = writeln!(out, "}}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, Expr as E, Program, Stmt};
    use crate::programs::{laplace_program, LoopKind};

    #[test]
    fn renders_structured_source() {
        let p = Program::new(
            "demo",
            vec!["x".into(), "b".into()],
            Stmt::Byte(1).then(Stmt::While(
                E::lt(E::Local(0), E::Local(1)),
                Box::new(Stmt::Assign(0, E::add(E::Local(0), E::Const(1)))),
            )),
            E::Local(0),
        );
        let src = render(&p);
        assert!(src.contains("method demo()"));
        assert!(src.contains("b := probUniformByte();"));
        assert!(src.contains("while (x < b) {"));
        assert!(src.contains("x := (x + 1);"));
        assert!(src.contains("return x;"));
    }

    #[test]
    fn min_max_render_as_calls() {
        let p = Program::new(
            "mm",
            vec!["a".into()],
            Stmt::Assign(0, E::bin(BinOp::Min, E::Const(3), E::Const(4))),
            E::Local(0),
        );
        assert!(render(&p).contains("a := min(3, 4);"));
    }

    #[test]
    fn extracted_laplace_is_printable_and_balanced() {
        let p = laplace_program(3, 1, LoopKind::Uniform);
        let src = render(&p);
        let opens = src.matches('{').count();
        let closes = src.matches('}').count();
        assert_eq!(opens, closes, "unbalanced braces in:\n{src}");
        assert!(src.contains("probUniformByte"));
        assert!(src.lines().count() > 30, "suspiciously short extraction");
    }
}
