//! A source-level pretty printer for extracted programs.
//!
//! The paper's pipeline materializes the extracted sampler as Dafny
//! source before compiling onward (Listing 21 shows the Python end).
//! [`render`] plays the same role here: an inspectable, imperative
//! rendering of the IR, so the artifact that ships can be audited without
//! trusting the compiler (the differential tests do the trusting for us,
//! but eyes help).

use crate::ir::{Expr, Program, Stmt};
use std::fmt::Write;

/// Renders a program as imperative pseudocode.
pub fn render(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "method {}() returns (result: int) {{", p.name);
    for (i, n) in p.local_names.iter().enumerate() {
        let _ = writeln!(out, "  var {n}: int := 0; // local {i}");
    }
    render_stmt(&p.body, &p.local_names, 1, &mut out);
    let _ = writeln!(out, "  return {};", render_expr(&p.result, &p.local_names));
    let _ = writeln!(out, "}}");
    out
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Renders a single expression in the same source syntax as [`render`],
/// resolving locals against `names`. The static-analysis layer
/// ([`crate::timing_verdict`]) uses this to print witnesses — a flagged
/// loop guard or branch condition — in the exact notation of the rendered
/// program, so a finding can be matched against the audited source by
/// eye.
///
/// # Panics
///
/// Panics if the expression reads a local outside `names`.
pub fn render_expr(e: &Expr, names: &[String]) -> String {
    match e {
        Expr::Const(v) => v.to_string(),
        Expr::BigConst(v) => v.to_string(),
        Expr::Local(l) => names[*l].clone(),
        Expr::Bin(op, a, b) => match op.token() {
            t @ ("min" | "max") => {
                format!("{t}({}, {})", render_expr(a, names), render_expr(b, names))
            }
            t => format!("({} {t} {})", render_expr(a, names), render_expr(b, names)),
        },
        Expr::Abs(a) => format!("abs({})", render_expr(a, names)),
        Expr::Neg(a) => format!("(-{})", render_expr(a, names)),
        Expr::Not(a) => format!("(!{})", render_expr(a, names)),
        Expr::BitLen(a) => format!("bitlen({})", render_expr(a, names)),
    }
}

fn render_stmt(s: &Stmt, names: &[String], depth: usize, out: &mut String) {
    match s {
        Stmt::Skip => {}
        Stmt::Assign(l, e) => {
            indent(depth, out);
            let _ = writeln!(out, "{} := {};", names[*l], render_expr(e, names));
        }
        Stmt::Byte(l) => {
            indent(depth, out);
            let _ = writeln!(out, "{} := probUniformByte();", names[*l]);
        }
        Stmt::UniformPow2(l, e) => {
            indent(depth, out);
            let _ = writeln!(
                out,
                "{} := probUniformPow2({});",
                names[*l],
                render_expr(e, names)
            );
        }
        Stmt::Seq(ss) => ss.iter().for_each(|s| render_stmt(s, names, depth, out)),
        Stmt::If(c, t, e) => {
            indent(depth, out);
            let _ = writeln!(out, "if {} {{", render_expr(c, names));
            render_stmt(t, names, depth + 1, out);
            if !matches!(**e, Stmt::Skip) {
                indent(depth, out);
                let _ = writeln!(out, "}} else {{");
                render_stmt(e, names, depth + 1, out);
            }
            indent(depth, out);
            let _ = writeln!(out, "}}");
        }
        Stmt::While(c, b) => {
            indent(depth, out);
            let _ = writeln!(out, "while {} {{", render_expr(c, names));
            render_stmt(b, names, depth + 1, out);
            indent(depth, out);
            let _ = writeln!(out, "}}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, Expr as E, Program, Stmt};
    use crate::programs::{laplace_program, LoopKind};

    #[test]
    fn renders_structured_source() {
        let p = Program::new(
            "demo",
            vec!["x".into(), "b".into()],
            Stmt::Byte(1).then(Stmt::While(
                E::lt(E::Local(0), E::Local(1)),
                Box::new(Stmt::Assign(0, E::add(E::Local(0), E::Const(1)))),
            )),
            E::Local(0),
        );
        let src = render(&p);
        assert!(src.contains("method demo()"));
        assert!(src.contains("b := probUniformByte();"));
        assert!(src.contains("while (x < b) {"));
        assert!(src.contains("x := (x + 1);"));
        assert!(src.contains("return x;"));
    }

    #[test]
    fn min_max_render_as_calls() {
        let p = Program::new(
            "mm",
            vec!["a".into()],
            Stmt::Assign(0, E::bin(BinOp::Min, E::Const(3), E::Const(4))),
            E::Local(0),
        );
        assert!(render(&p).contains("a := min(3, 4);"));
    }

    #[test]
    fn extracted_laplace_is_printable_and_balanced() {
        let p = laplace_program(3, 1, LoopKind::Uniform);
        let src = render(&p);
        let opens = src.matches('{').count();
        let closes = src.matches('}').count();
        assert_eq!(opens, closes, "unbalanced braces in:\n{src}");
        assert!(src.contains("probUniformByte"));
        assert!(src.lines().count() > 30, "suspiciously short extraction");
    }
}
