//! Bytecode compilation and the stack VM — the "compiled target" of the
//! extraction pipeline.
//!
//! The paper's Dafny→Python output executes on the Python VM; here the IR
//! compiles to a small register-free bytecode executed by [`Vm`]. The
//! compiler is deliberately simple (no optimization passes): the
//! translation must stay small enough to inspect, because it is exactly
//! the trusted step the paper's extraction worries about. Its faithfulness
//! is established by differential testing: AST interpreter = VM = fused
//! reference samplers, byte-for-byte on shared entropy.
//!
//! Values are tagged word-or-big integers ([`Value`]): programs whose
//! intermediates fit `i128` run entirely on the unboxed fast path, and
//! only multi-limb parameters (σ beyond the fused box) touch [`Int`]
//! arithmetic. Overflowing `i128` arithmetic promotes to the big
//! representation instead of panicking, so a single bytecode program is
//! correct at every parameter width.

use crate::ir::{BinOp, Expr, Program, Stmt};
use sampcert_arith::{Int, Nat};
use sampcert_slang::ByteSource;
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A VM value: unboxed `i128` word, or a heap big integer for values
/// outside the word range.
///
/// Invariant: `Big` is only ever constructed for values that do **not**
/// fit `i128` (enforced by [`Value::from_int`]). Comparisons and zero
/// tests exploit this — a `Big` value is never zero and its sign alone
/// orders it against any `Small`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A word-sized value (the hot representation).
    Small(i128),
    /// A value outside `i128` range.
    Big(Int),
}

impl Value {
    /// Zero, in the canonical (small) representation.
    pub const ZERO: Value = Value::Small(0);

    /// Normalizes an [`Int`] into the canonical representation.
    pub fn from_int(v: Int) -> Value {
        match int_to_i128(&v) {
            Some(s) => Value::Small(s),
            None => Value::Big(v),
        }
    }

    /// Normalizes a [`Nat`] into the canonical representation.
    pub fn from_nat(v: &Nat) -> Value {
        match v.to_u128() {
            Some(u) if u <= i128::MAX as u128 => Value::Small(u as i128),
            _ => Value::Big(Int::from_nat(v.clone())),
        }
    }

    /// The value as an `i128`, or `None` when it is out of word range.
    pub fn to_i128(&self) -> Option<i128> {
        match self {
            Value::Small(v) => Some(*v),
            Value::Big(_) => None, // by invariant: out of i128 range
        }
    }

    /// The value as an [`Int`] (always succeeds).
    pub fn to_int(&self) -> Int {
        match self {
            Value::Small(v) => Int::from(*v),
            Value::Big(v) => v.clone(),
        }
    }

    /// The value as a [`Nat`], or `None` when negative.
    pub fn to_nat(&self) -> Option<Nat> {
        match self {
            Value::Small(v) if *v >= 0 => Some(Nat::from(*v as u128)),
            Value::Small(_) => None,
            Value::Big(v) if !v.is_negative() => Some(v.magnitude().clone()),
            Value::Big(_) => None,
        }
    }

    /// Truthiness over the IR's 0/1 booleans (any nonzero is true).
    fn is_true(&self) -> bool {
        // A Big value is never zero by the normalization invariant.
        !matches!(self, Value::Small(0))
    }

    /// Bit length of the magnitude (`0` for `0`).
    fn bit_len(&self) -> u64 {
        match self {
            Value::Small(v) => u64::from(128 - v.unsigned_abs().leading_zeros()),
            Value::Big(v) => v.magnitude().bit_length(),
        }
    }
}

fn int_to_i128(v: &Int) -> Option<i128> {
    let mag = v.magnitude().to_u128()?;
    if v.is_negative() {
        // −2^127 (i128::MIN) is representable; wrapping_neg maps the
        // magnitude 2^127 onto it exactly.
        (mag <= 1u128 << 127).then(|| (mag as i128).wrapping_neg())
    } else {
        (mag <= i128::MAX as u128).then_some(mag as i128)
    }
}

/// Total order across both representations without allocating: a `Big`
/// value lies outside `i128` range, so its sign decides against `Small`.
fn cmp_values(a: &Value, b: &Value) -> Ordering {
    match (a, b) {
        (Value::Small(x), Value::Small(y)) => x.cmp(y),
        (Value::Small(_), Value::Big(y)) => {
            if y.is_negative() {
                Ordering::Greater
            } else {
                Ordering::Less
            }
        }
        (Value::Big(x), Value::Small(_)) => {
            if x.is_negative() {
                Ordering::Less
            } else {
                Ordering::Greater
            }
        }
        (Value::Big(x), Value::Big(y)) => x.cmp(y),
    }
}

/// A recoverable execution error. Structurally valid bytecode can still
/// divide by zero or compute a nonsensical draw width at runtime; the
/// production dispatch tier must not crash on those, so [`Vm::try_run`]
/// surfaces them as values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmError {
    /// `Div` or `Mod` with a zero divisor.
    DivisionByZero,
    /// `UniformPow2` with a negative or absurdly large bit width.
    BadUniformWidth,
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::DivisionByZero => write!(f, "division by zero"),
            VmError::BadUniformWidth => write!(f, "uniform draw width out of range"),
        }
    }
}

impl std::error::Error for VmError {}

/// Applies a binary operator over [`Value`]s. Word-sized operands stay on
/// checked `i128` arithmetic and promote to [`Int`] only on overflow.
fn bin_values(op: BinOp, a: Value, b: Value) -> Result<Value, VmError> {
    if let (Value::Small(x), Value::Small(y)) = (&a, &b) {
        let (x, y) = (*x, *y);
        let small = match op {
            BinOp::Add => x.checked_add(y),
            BinOp::Sub => x.checked_sub(y),
            BinOp::Mul => x.checked_mul(y),
            // i128::MIN / −1 overflows; fall through to the big path.
            BinOp::Div if y != 0 => x.checked_div_euclid(y),
            BinOp::Mod if y != 0 => x.checked_rem_euclid(y),
            BinOp::Div | BinOp::Mod => return Err(VmError::DivisionByZero),
            BinOp::Min => Some(x.min(y)),
            BinOp::Max => Some(x.max(y)),
            BinOp::Lt => Some(i128::from(x < y)),
            BinOp::Le => Some(i128::from(x <= y)),
            BinOp::Eq => Some(i128::from(x == y)),
            BinOp::And => Some(i128::from(x != 0 && y != 0)),
            BinOp::Or => Some(i128::from(x != 0 || y != 0)),
        };
        if let Some(v) = small {
            return Ok(Value::Small(v));
        }
    }
    match op {
        BinOp::Add => Ok(Value::from_int(&a.to_int() + &b.to_int())),
        BinOp::Sub => Ok(Value::from_int(&a.to_int() - &b.to_int())),
        BinOp::Mul => Ok(Value::from_int(&a.to_int() * &b.to_int())),
        BinOp::Div | BinOp::Mod => {
            let d = b.to_int();
            if d.is_zero() {
                return Err(VmError::DivisionByZero);
            }
            let (q, r) = a.to_int().div_rem_euclid(&d);
            Ok(Value::from_int(if op == BinOp::Div { q } else { r }))
        }
        BinOp::Min => Ok(if cmp_values(&a, &b) == Ordering::Greater {
            b
        } else {
            a
        }),
        BinOp::Max => Ok(if cmp_values(&a, &b) == Ordering::Less {
            b
        } else {
            a
        }),
        BinOp::Lt => Ok(Value::Small(i128::from(
            cmp_values(&a, &b) == Ordering::Less,
        ))),
        BinOp::Le => Ok(Value::Small(i128::from(
            cmp_values(&a, &b) != Ordering::Greater,
        ))),
        BinOp::Eq => Ok(Value::Small(i128::from(a == b))),
        BinOp::And => Ok(Value::Small(i128::from(a.is_true() && b.is_true()))),
        BinOp::Or => Ok(Value::Small(i128::from(a.is_true() || b.is_true()))),
    }
}

fn abs_value(v: Value) -> Value {
    match v {
        Value::Small(s) => match s.checked_abs() {
            Some(a) => Value::Small(a),
            // |i128::MIN| = 2^127, one past i128::MAX.
            None => Value::Big(Int::from_nat(Nat::from(s.unsigned_abs()))),
        },
        // |Big| keeps its magnitude ≥ 2^127 > i128::MAX: still Big.
        Value::Big(b) => Value::Big(b.abs()),
    }
}

fn neg_value(v: Value) -> Value {
    match v {
        Value::Small(s) => match s.checked_neg() {
            Some(n) => Value::Small(n),
            None => Value::Big(Int::from_nat(Nat::from(s.unsigned_abs()))),
        },
        // −Big(2^127) lands exactly on i128::MIN: renormalize.
        Value::Big(b) => Value::from_int(-b),
    }
}

fn not_value(v: &Value) -> Value {
    Value::Small(i128::from(!v.is_true()))
}

/// Uniform draw semantics shared by the VM opcode, the AST interpreter
/// and the monadic `uniform_pow2`: fold `ceil(bits/8)` whole bytes
/// big-endian, then mask to the low `bits` bits.
fn draw_uniform_pow2(bits: u32, src: &mut dyn ByteSource) -> Value {
    let n_bytes = bits.div_ceil(8);
    if bits <= 120 {
        let mut v: u128 = 0;
        for _ in 0..n_bytes {
            v = (v << 8) | src.next_byte() as u128;
        }
        let mask = if bits == 0 { 0 } else { (1u128 << bits) - 1 };
        Value::Small((v & mask) as i128)
    } else {
        // Bulk-draw through the source's block API: `ByteSource::fill` is
        // contractually byte-identical to per-byte `next_byte` calls, so
        // the stream (and every equality test against the monadic
        // sampler) is unchanged — only the per-byte virtual dispatch goes.
        let mut buf = vec![0u8; n_bytes as usize];
        src.fill(&mut buf);
        Value::from_nat(&Nat::from_be_bytes(&buf).low_bits(u64::from(bits)))
    }
}

fn uniform_width(bits: &Value) -> Result<u32, VmError> {
    match bits.to_i128() {
        Some(b) if (0..=i128::from(u32::MAX)).contains(&b) => Ok(b as u32),
        _ => Err(VmError::BadUniformWidth),
    }
}

/// One bytecode instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Push a constant.
    Push(i128),
    /// Push a big constant from the [`Bytecode::big_consts`] side table.
    PushBig(usize),
    /// Push the value of a local.
    Load(usize),
    /// Pop into a local.
    Store(usize),
    /// Pop two, push the operation's result (left operand pushed first).
    Bin(BinOp),
    /// Pop one, push |v|.
    Abs,
    /// Pop one, push −v.
    Neg,
    /// Pop one, push 1−min(v,1) normalized over 0/1.
    Not,
    /// Pop one, push the bit length of its magnitude.
    BitLen,
    /// Push one uniform random byte.
    Byte,
    /// Pop a bit width, draw `ceil(bits/8)` bytes folded big-endian,
    /// push the fold masked to the low `bits` bits.
    UniformPow2,
    /// Unconditional jump to an absolute instruction index.
    Jmp(usize),
    /// Pop; jump when zero.
    JmpIfZero(usize),
    /// Stop; the result is the top of stack.
    Halt,
}

/// A compiled program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bytecode {
    /// Instruction stream.
    pub ops: Vec<Op>,
    /// Big literals referenced by [`Op::PushBig`] (deduplicated).
    pub big_consts: Vec<Nat>,
    /// Number of locals.
    pub n_locals: usize,
    /// Program name (diagnostics).
    pub name: String,
}

/// Compiles an IR program to bytecode.
pub fn compile(p: &Program) -> Bytecode {
    let mut ops = Vec::new();
    let mut big_consts = Vec::new();
    compile_stmt(&p.body, &mut ops, &mut big_consts);
    compile_expr(&p.result, &mut ops, &mut big_consts);
    ops.push(Op::Halt);
    Bytecode {
        ops,
        big_consts,
        n_locals: p.n_locals,
        name: p.name.clone(),
    }
}

fn intern_big(v: &Nat, big_consts: &mut Vec<Nat>) -> usize {
    big_consts.iter().position(|c| c == v).unwrap_or_else(|| {
        big_consts.push(v.clone());
        big_consts.len() - 1
    })
}

fn compile_expr(e: &Expr, ops: &mut Vec<Op>, big_consts: &mut Vec<Nat>) {
    match e {
        Expr::Const(v) => ops.push(Op::Push(*v)),
        Expr::BigConst(v) => {
            let idx = intern_big(v, big_consts);
            ops.push(Op::PushBig(idx));
        }
        Expr::Local(l) => ops.push(Op::Load(*l)),
        Expr::Bin(op, a, b) => {
            compile_expr(a, ops, big_consts);
            compile_expr(b, ops, big_consts);
            ops.push(Op::Bin(*op));
        }
        Expr::Abs(a) => {
            compile_expr(a, ops, big_consts);
            ops.push(Op::Abs);
        }
        Expr::Neg(a) => {
            compile_expr(a, ops, big_consts);
            ops.push(Op::Neg);
        }
        Expr::Not(a) => {
            compile_expr(a, ops, big_consts);
            ops.push(Op::Not);
        }
        Expr::BitLen(a) => {
            compile_expr(a, ops, big_consts);
            ops.push(Op::BitLen);
        }
    }
}

fn compile_stmt(s: &Stmt, ops: &mut Vec<Op>, big_consts: &mut Vec<Nat>) {
    match s {
        Stmt::Skip => {}
        Stmt::Assign(l, e) => {
            compile_expr(e, ops, big_consts);
            ops.push(Op::Store(*l));
        }
        Stmt::Byte(l) => {
            ops.push(Op::Byte);
            ops.push(Op::Store(*l));
        }
        Stmt::UniformPow2(l, e) => {
            compile_expr(e, ops, big_consts);
            ops.push(Op::UniformPow2);
            ops.push(Op::Store(*l));
        }
        Stmt::Seq(ss) => ss.iter().for_each(|s| compile_stmt(s, ops, big_consts)),
        Stmt::If(c, t, e) => {
            compile_expr(c, ops, big_consts);
            let jz_at = ops.len();
            ops.push(Op::JmpIfZero(usize::MAX)); // patched below
            compile_stmt(t, ops, big_consts);
            let jend_at = ops.len();
            ops.push(Op::Jmp(usize::MAX)); // patched below
            let else_start = ops.len();
            compile_stmt(e, ops, big_consts);
            let end = ops.len();
            ops[jz_at] = Op::JmpIfZero(else_start);
            ops[jend_at] = Op::Jmp(end);
        }
        Stmt::While(c, b) => {
            let head = ops.len();
            compile_expr(c, ops, big_consts);
            let jz_at = ops.len();
            ops.push(Op::JmpIfZero(usize::MAX));
            compile_stmt(b, ops, big_consts);
            ops.push(Op::Jmp(head));
            let end = ops.len();
            ops[jz_at] = Op::JmpIfZero(end);
        }
    }
}

/// The observable cost of one VM execution: the result plus the two
/// quantities a timing adversary can measure — how many instructions
/// retired and how many entropy bytes were consumed.
///
/// [`Vm::run_traced`] produces this; the timing-leakage falsifier
/// (`tests/timing_leakage.rs`) and the static-analysis soundness proptests
/// use it as a deterministic, noise-free stand-in for wall-clock latency:
/// a program whose instruction count is identical across entropy streams
/// cannot leak through execution *shape* (variable-latency operands are
/// flagged separately by [`crate::timing_verdict`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunTrace {
    /// The program result (same as [`Vm::run`] on the same stream).
    pub result: i128,
    /// Instructions executed, including the final `Halt`.
    pub instructions: u64,
    /// Entropy bytes consumed (`Byte` instructions executed).
    pub bytes: u64,
}

/// Instrumentation hook for the single interpreter loop. `NoTrace`
/// monomorphizes to nothing; `Counting` tallies the timing observables.
/// One loop serves [`Vm::run`], [`Vm::run_traced`] and [`Vm::try_run`],
/// so new opcodes cannot drift between traced and untraced execution.
trait Tracer {
    fn instr(&mut self);
    fn bytes(&mut self, n: u64);
}

struct NoTrace;

impl Tracer for NoTrace {
    #[inline(always)]
    fn instr(&mut self) {}
    #[inline(always)]
    fn bytes(&mut self, _n: u64) {}
}

#[derive(Default)]
struct Counting {
    instructions: u64,
    bytes: u64,
}

impl Tracer for Counting {
    #[inline(always)]
    fn instr(&mut self) {
        self.instructions += 1;
    }
    #[inline(always)]
    fn bytes(&mut self, n: u64) {
        self.bytes += n;
    }
}

/// The stack virtual machine.
#[derive(Debug)]
pub struct Vm {
    code: Arc<Bytecode>,
}

impl Vm {
    /// Loads a compiled program.
    pub fn new(code: Bytecode) -> Self {
        Vm {
            code: Arc::new(code),
        }
    }

    /// Loads a shared compiled program (the parameter-keyed program cache
    /// hands out `Arc<Bytecode>`; this avoids cloning the instruction
    /// stream per sampler instantiation).
    pub fn shared(code: Arc<Bytecode>) -> Self {
        Vm { code }
    }

    /// The single interpreter loop, monomorphized over the tracer.
    fn run_inner<T: Tracer>(&self, src: &mut dyn ByteSource, t: &mut T) -> Result<Value, VmError> {
        let mut locals = vec![Value::ZERO; self.code.n_locals];
        let mut stack: Vec<Value> = Vec::with_capacity(16);
        let mut pc = 0usize;
        loop {
            t.instr();
            match self.code.ops[pc] {
                Op::Push(v) => stack.push(Value::Small(v)),
                Op::PushBig(i) => stack.push(Value::from_nat(&self.code.big_consts[i])),
                Op::Load(l) => stack.push(locals[l].clone()),
                Op::Store(l) => locals[l] = stack.pop().expect("stack underflow"),
                Op::Bin(op) => {
                    let b = stack.pop().expect("stack underflow");
                    let a = stack.pop().expect("stack underflow");
                    stack.push(bin_values(op, a, b)?);
                }
                Op::Abs => {
                    let v = stack.pop().expect("stack underflow");
                    stack.push(abs_value(v));
                }
                Op::Neg => {
                    let v = stack.pop().expect("stack underflow");
                    stack.push(neg_value(v));
                }
                Op::Not => {
                    let v = stack.pop().expect("stack underflow");
                    stack.push(not_value(&v));
                }
                Op::BitLen => {
                    let v = stack.pop().expect("stack underflow");
                    stack.push(Value::Small(v.bit_len() as i128));
                }
                Op::Byte => {
                    t.bytes(1);
                    stack.push(Value::Small(src.next_byte() as i128));
                }
                Op::UniformPow2 => {
                    let bits = uniform_width(&stack.pop().expect("stack underflow"))?;
                    t.bytes(u64::from(bits.div_ceil(8)));
                    stack.push(draw_uniform_pow2(bits, src));
                }
                Op::Jmp(target) => {
                    pc = target;
                    continue;
                }
                Op::JmpIfZero(target) => {
                    if !stack.pop().expect("stack underflow").is_true() {
                        pc = target;
                        continue;
                    }
                }
                Op::Halt => return Ok(stack.pop().expect("empty stack at halt")),
            }
            pc += 1;
        }
    }

    /// Runs the program against a byte source, returning the result.
    ///
    /// # Panics
    ///
    /// Panics on malformed bytecode (impossible for [`compile`] output),
    /// division by zero, or a result outside `i128` — the analyzer's
    /// registry programs are trusted not to do any of these.
    pub fn run(&self, src: &mut dyn ByteSource) -> i128 {
        match self.run_inner(src, &mut NoTrace) {
            Ok(v) => v.to_i128().expect("result exceeds i128"),
            Err(e) => panic!("vm error in {}: {e}", self.code.name),
        }
    }

    /// Runs the program like [`Vm::run`] while counting instructions and
    /// entropy bytes — the timing observables. The byte stream consumed is
    /// identical to [`Vm::run`]'s, so traced and untraced executions on
    /// the same source produce the same result.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Vm::run`].
    pub fn run_traced(&self, src: &mut dyn ByteSource) -> RunTrace {
        let mut t = Counting::default();
        match self.run_inner(src, &mut t) {
            Ok(v) => RunTrace {
                result: v.to_i128().expect("result exceeds i128"),
                instructions: t.instructions,
                bytes: t.bytes,
            },
            Err(e) => panic!("vm error in {}: {e}", self.code.name),
        }
    }

    /// Checked execution for the production dispatch tier: runtime faults
    /// (division by zero, bad draw widths) come back as [`VmError`]
    /// instead of panicking, and results keep their full width as
    /// [`Value`]. The samplers fall back to the monadic interpreter when
    /// this errs.
    pub fn try_run(&self, src: &mut dyn ByteSource) -> Result<Value, VmError> {
        self.run_inner(src, &mut NoTrace)
    }
}

/// Directly interprets the IR AST (the semantic reference for the VM).
///
/// # Panics
///
/// Panics on division by zero or a result outside `i128` (it is the
/// semantic reference, not a production path).
pub fn interpret(p: &Program, src: &mut dyn ByteSource) -> i128 {
    let mut locals = vec![Value::ZERO; p.n_locals];
    exec(&p.body, &mut locals, src);
    eval(&p.result, &locals)
        .to_i128()
        .expect("result exceeds i128")
}

fn eval(e: &Expr, locals: &[Value]) -> Value {
    match e {
        Expr::Const(v) => Value::Small(*v),
        Expr::BigConst(v) => Value::from_nat(v),
        Expr::Local(l) => locals[*l].clone(),
        Expr::Bin(op, a, b) => {
            bin_values(*op, eval(a, locals), eval(b, locals)).expect("IR arithmetic fault")
        }
        Expr::Abs(a) => abs_value(eval(a, locals)),
        Expr::Neg(a) => neg_value(eval(a, locals)),
        Expr::Not(a) => not_value(&eval(a, locals)),
        Expr::BitLen(a) => Value::Small(eval(a, locals).bit_len() as i128),
    }
}

fn exec(s: &Stmt, locals: &mut [Value], src: &mut dyn ByteSource) {
    match s {
        Stmt::Skip => {}
        Stmt::Assign(l, e) => locals[*l] = eval(e, locals),
        Stmt::Byte(l) => locals[*l] = Value::Small(src.next_byte() as i128),
        Stmt::UniformPow2(l, e) => {
            let bits = uniform_width(&eval(e, locals)).expect("IR uniform width fault");
            locals[*l] = draw_uniform_pow2(bits, src);
        }
        Stmt::Seq(ss) => ss.iter().for_each(|s| exec(s, locals, src)),
        Stmt::If(c, t, e) => {
            if eval(c, locals).is_true() {
                exec(t, locals, src);
            } else {
                exec(e, locals, src);
            }
        }
        Stmt::While(c, b) => {
            while eval(c, locals).is_true() {
                exec(b, locals, src);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Expr as E;
    use sampcert_slang::{CyclicByteSource, SeededByteSource};

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("x{i}")).collect()
    }

    #[test]
    fn straight_line_arithmetic() {
        // x0 = 7; x1 = x0 * 6 - 2; return |−x1| = 40
        let p = Program::new(
            "arith",
            names(2),
            Stmt::Assign(0, E::Const(7)).then(Stmt::Assign(
                1,
                E::sub(E::mul(E::Local(0), E::Const(6)), E::Const(2)),
            )),
            E::Abs(Box::new(E::Neg(Box::new(E::Local(1))))),
        );
        let mut src = CyclicByteSource::new(vec![0]);
        assert_eq!(interpret(&p, &mut src), 40);
        assert_eq!(Vm::new(compile(&p)).run(&mut src), 40);
    }

    #[test]
    fn if_both_branches() {
        // return x0 < 5 ? 1 : 100, with x0 = byte.
        let p = Program::new(
            "branch",
            names(2),
            Stmt::Byte(0).then(Stmt::If(
                E::lt(E::Local(0), E::Const(5)),
                Box::new(Stmt::Assign(1, E::Const(1))),
                Box::new(Stmt::Assign(1, E::Const(100))),
            )),
            E::Local(1),
        );
        let vm = Vm::new(compile(&p));
        let mut src = CyclicByteSource::new(vec![3]);
        assert_eq!(vm.run(&mut src), 1);
        let mut src = CyclicByteSource::new(vec![77]);
        assert_eq!(vm.run(&mut src), 100);
    }

    #[test]
    fn while_countdown() {
        // x0 = byte; x1 = 0; while x0 > 0 { x0 -= 1; x1 += 2 }; return x1.
        let p = Program::new(
            "count",
            names(2),
            Stmt::Byte(0).then(Stmt::While(
                E::lt(E::Const(0), E::Local(0)),
                Box::new(
                    Stmt::Assign(0, E::sub(E::Local(0), E::Const(1)))
                        .then(Stmt::Assign(1, E::add(E::Local(1), E::Const(2)))),
                ),
            )),
            E::Local(1),
        );
        let vm = Vm::new(compile(&p));
        let mut src = CyclicByteSource::new(vec![9]);
        assert_eq!(vm.run(&mut src), 18);
    }

    #[test]
    fn vm_matches_interpreter_on_random_entropy() {
        // A loopy program exercising every opcode; both executors must
        // agree on the same byte stream.
        let p = Program::new(
            "mix",
            names(3),
            Stmt::Byte(0).then(Stmt::While(
                E::lt(E::Local(1), E::bin(BinOp::Mod, E::Local(0), E::Const(17))),
                Box::new(
                    Stmt::Byte(2)
                        .then(Stmt::Assign(1, E::add(E::Local(1), E::Const(1))))
                        .then(Stmt::If(
                            E::lt(E::Local(2), E::Const(128)),
                            Box::new(Stmt::Assign(
                                0,
                                E::bin(BinOp::Max, E::Local(0), E::Local(2)),
                            )),
                            Box::new(Stmt::Skip),
                        )),
                ),
            )),
            E::add(E::Local(0), E::Local(1)),
        );
        let vm = Vm::new(compile(&p));
        for seed in 0..20 {
            let mut s1 = SeededByteSource::new(seed);
            let mut s2 = SeededByteSource::new(seed);
            assert_eq!(interpret(&p, &mut s1), vm.run(&mut s2), "seed {seed}");
        }
    }

    #[test]
    fn nested_loops_compile_correctly() {
        // Multiplication by repeated addition: 6 * 7 via two nested loops.
        let p = Program::new(
            "nested",
            names(3),
            Stmt::Assign(0, E::Const(6)).then(Stmt::While(
                E::lt(E::Const(0), E::Local(0)),
                Box::new(
                    Stmt::Assign(0, E::sub(E::Local(0), E::Const(1)))
                        .then(Stmt::Assign(1, E::Const(7)))
                        .then(Stmt::While(
                            E::lt(E::Const(0), E::Local(1)),
                            Box::new(
                                Stmt::Assign(1, E::sub(E::Local(1), E::Const(1)))
                                    .then(Stmt::Assign(2, E::add(E::Local(2), E::Const(1)))),
                            ),
                        )),
                ),
            )),
            E::Local(2),
        );
        let mut src = CyclicByteSource::new(vec![0]);
        assert_eq!(Vm::new(compile(&p)).run(&mut src), 42);
    }

    #[test]
    fn value_normalizes_at_the_i128_boundary() {
        let two127 = Nat::from(1u128) << 127;
        // 2^127 − 1 = i128::MAX stays small; 2^127 goes big.
        assert_eq!(
            Value::from_nat(&(&two127 - &Nat::one())),
            Value::Small(i128::MAX)
        );
        assert!(matches!(Value::from_nat(&two127), Value::Big(_)));
        // −2^127 = i128::MIN is still small.
        assert_eq!(
            Value::from_int(Int::from_sign_mag(true, two127.clone())),
            Value::Small(i128::MIN)
        );
        // Negating Big(2^127) renormalizes onto i128::MIN.
        assert_eq!(neg_value(Value::from_nat(&two127)), Value::Small(i128::MIN));
        // |i128::MIN| promotes to Big(2^127).
        assert_eq!(
            abs_value(Value::Small(i128::MIN)),
            Value::Big(Int::from_nat(two127))
        );
    }

    #[test]
    fn small_arithmetic_promotes_on_overflow() {
        let prod = bin_values(BinOp::Mul, Value::Small(i128::MAX), Value::Small(2)).unwrap();
        assert_eq!(
            prod.to_nat().unwrap(),
            &Nat::from(i128::MAX as u128) * &Nat::from(2u64)
        );
        // i128::MIN / −1 = 2^127 must promote rather than trap.
        let q = bin_values(BinOp::Div, Value::Small(i128::MIN), Value::Small(-1)).unwrap();
        assert_eq!(q, Value::Big(Int::from_nat(Nat::from(1u128) << 127)));
        // ... and dropping back into range renormalizes to Small.
        let back = bin_values(BinOp::Sub, q, Value::Small(1)).unwrap();
        assert_eq!(back, Value::Small(i128::MAX));
    }

    #[test]
    fn mixed_width_comparisons_use_the_invariant() {
        let big = Value::from_nat(&(Nat::from(1u128) << 200));
        let neg_big = neg_value(big.clone());
        assert_eq!(
            bin_values(BinOp::Lt, Value::Small(i128::MAX), big.clone()).unwrap(),
            Value::Small(1)
        );
        assert_eq!(
            bin_values(BinOp::Lt, neg_big.clone(), Value::Small(i128::MIN)).unwrap(),
            Value::Small(1)
        );
        assert_eq!(bin_values(BinOp::Max, neg_big, big.clone()).unwrap(), big);
    }

    #[test]
    fn big_consts_are_interned_once() {
        let big = Nat::from(1u128) << 130;
        let p = Program::new(
            "intern",
            names(2),
            Stmt::Assign(0, E::BigConst(big.clone()))
                .then(Stmt::Assign(1, E::BigConst(big.clone()))),
            E::eq(E::Local(0), E::Local(1)),
        );
        let code = compile(&p);
        assert_eq!(code.big_consts, vec![big]);
        let mut src = CyclicByteSource::new(vec![0]);
        assert_eq!(Vm::new(code).run(&mut src), 1);
    }

    #[test]
    fn bitlen_matches_nat_bit_length() {
        let p = |e: E| Program::new("bl", names(1), Stmt::Skip, E::BitLen(Box::new(e)));
        let mut src = CyclicByteSource::new(vec![0]);
        for (e, want) in [
            (E::Const(0), 0),
            (E::Const(1), 1),
            (E::Const(10), 4),
            (E::Const(-10), 4),
            (E::Const(i128::MAX), 127),
            (E::BigConst(Nat::from(1u128) << 200), 201),
        ] {
            let prog = p(e);
            assert_eq!(interpret(&prog, &mut src), want);
            assert_eq!(Vm::new(compile(&prog)).run(&mut src), want);
        }
    }

    #[test]
    fn uniform_pow2_matches_byte_fold_at_all_widths() {
        // The bulk opcode must consume the same bytes and produce the
        // same value as the explicit per-byte big-endian fold.
        for bits in [0u32, 1, 7, 8, 12, 64, 120, 121, 128, 250] {
            let p = Program::new(
                "upow2",
                names(1),
                Stmt::UniformPow2(0, E::Const(i128::from(bits))),
                E::Local(0),
            );
            let vm = Vm::new(compile(&p));
            for seed in 0..5u64 {
                let mut s1 = SeededByteSource::new(seed);
                let mut s2 = SeededByteSource::new(seed);
                let got = vm.try_run(&mut s1).unwrap();
                let mut acc = Nat::zero();
                for _ in 0..bits.div_ceil(8) {
                    acc = acc.push_be_byte(s2.next_byte());
                }
                let want = acc.low_bits(u64::from(bits));
                assert_eq!(got.to_nat().unwrap(), want, "bits {bits} seed {seed}");
            }
        }
    }

    #[test]
    fn traced_and_untraced_agree_on_every_registered_program() {
        for entry in crate::programs::registered_programs() {
            let vm = Vm::new(compile(&entry.program));
            for seed in 0..16u64 {
                let mut s1 = SeededByteSource::new(seed);
                let mut s2 = SeededByteSource::new(seed);
                let plain = vm.run(&mut s1);
                let traced = vm.run_traced(&mut s2);
                assert_eq!(plain, traced.result, "{} seed {seed}", entry.name);
                // Same bytes consumed: the next draw from both streams
                // must coincide.
                assert_eq!(
                    s1.next_byte(),
                    s2.next_byte(),
                    "{} seed {seed} streams diverged",
                    entry.name
                );
            }
        }
    }

    #[test]
    fn try_run_surfaces_division_by_zero() {
        let p = Program::new(
            "divz",
            names(1),
            Stmt::Assign(0, E::bin(BinOp::Div, E::Const(1), E::Const(0))),
            E::Local(0),
        );
        let vm = Vm::new(compile(&p));
        let mut src = CyclicByteSource::new(vec![0]);
        assert_eq!(vm.try_run(&mut src), Err(VmError::DivisionByZero));
    }

    #[test]
    fn try_run_surfaces_bad_uniform_width() {
        let p = Program::new(
            "badwidth",
            names(1),
            Stmt::UniformPow2(0, E::Const(-1)),
            E::Local(0),
        );
        let vm = Vm::new(compile(&p));
        let mut src = CyclicByteSource::new(vec![0]);
        assert_eq!(vm.try_run(&mut src), Err(VmError::BadUniformWidth));
    }

    #[test]
    #[should_panic(expected = "vm error in divz")]
    fn trusted_run_still_panics_on_division_by_zero() {
        let p = Program::new(
            "divz",
            names(1),
            Stmt::Assign(0, E::bin(BinOp::Div, E::Const(1), E::Const(0))),
            E::Local(0),
        );
        let mut src = CyclicByteSource::new(vec![0]);
        let _ = Vm::new(compile(&p)).run(&mut src);
    }
}
