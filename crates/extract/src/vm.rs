//! Bytecode compilation and the stack VM — the "compiled target" of the
//! extraction pipeline.
//!
//! The paper's Dafny→Python output executes on the Python VM; here the IR
//! compiles to a small register-free bytecode executed by [`Vm`]. The
//! compiler is deliberately simple (no optimization passes): the
//! translation must stay small enough to inspect, because it is exactly
//! the trusted step the paper's extraction worries about. Its faithfulness
//! is established by differential testing: AST interpreter = VM = fused
//! reference samplers, byte-for-byte on shared entropy.

use crate::ir::{BinOp, Expr, Program, Stmt};
use sampcert_slang::ByteSource;

/// One bytecode instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Push a constant.
    Push(i128),
    /// Push the value of a local.
    Load(usize),
    /// Pop into a local.
    Store(usize),
    /// Pop two, push the operation's result (left operand pushed first).
    Bin(BinOp),
    /// Pop one, push |v|.
    Abs,
    /// Pop one, push −v.
    Neg,
    /// Pop one, push 1−min(v,1) normalized over 0/1.
    Not,
    /// Push one uniform random byte.
    Byte,
    /// Unconditional jump to an absolute instruction index.
    Jmp(usize),
    /// Pop; jump when zero.
    JmpIfZero(usize),
    /// Stop; the result is the top of stack.
    Halt,
}

/// A compiled program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bytecode {
    /// Instruction stream.
    pub ops: Vec<Op>,
    /// Number of locals.
    pub n_locals: usize,
    /// Program name (diagnostics).
    pub name: String,
}

/// Compiles an IR program to bytecode.
pub fn compile(p: &Program) -> Bytecode {
    let mut ops = Vec::new();
    compile_stmt(&p.body, &mut ops);
    compile_expr(&p.result, &mut ops);
    ops.push(Op::Halt);
    Bytecode {
        ops,
        n_locals: p.n_locals,
        name: p.name.clone(),
    }
}

fn compile_expr(e: &Expr, ops: &mut Vec<Op>) {
    match e {
        Expr::Const(v) => ops.push(Op::Push(*v)),
        Expr::Local(l) => ops.push(Op::Load(*l)),
        Expr::Bin(op, a, b) => {
            compile_expr(a, ops);
            compile_expr(b, ops);
            ops.push(Op::Bin(*op));
        }
        Expr::Abs(a) => {
            compile_expr(a, ops);
            ops.push(Op::Abs);
        }
        Expr::Neg(a) => {
            compile_expr(a, ops);
            ops.push(Op::Neg);
        }
        Expr::Not(a) => {
            compile_expr(a, ops);
            ops.push(Op::Not);
        }
    }
}

fn compile_stmt(s: &Stmt, ops: &mut Vec<Op>) {
    match s {
        Stmt::Skip => {}
        Stmt::Assign(l, e) => {
            compile_expr(e, ops);
            ops.push(Op::Store(*l));
        }
        Stmt::Byte(l) => {
            ops.push(Op::Byte);
            ops.push(Op::Store(*l));
        }
        Stmt::Seq(ss) => ss.iter().for_each(|s| compile_stmt(s, ops)),
        Stmt::If(c, t, e) => {
            compile_expr(c, ops);
            let jz_at = ops.len();
            ops.push(Op::JmpIfZero(usize::MAX)); // patched below
            compile_stmt(t, ops);
            let jend_at = ops.len();
            ops.push(Op::Jmp(usize::MAX)); // patched below
            let else_start = ops.len();
            compile_stmt(e, ops);
            let end = ops.len();
            ops[jz_at] = Op::JmpIfZero(else_start);
            ops[jend_at] = Op::Jmp(end);
        }
        Stmt::While(c, b) => {
            let head = ops.len();
            compile_expr(c, ops);
            let jz_at = ops.len();
            ops.push(Op::JmpIfZero(usize::MAX));
            compile_stmt(b, ops);
            ops.push(Op::Jmp(head));
            let end = ops.len();
            ops[jz_at] = Op::JmpIfZero(end);
        }
    }
}

/// The observable cost of one VM execution: the result plus the two
/// quantities a timing adversary can measure — how many instructions
/// retired and how many entropy bytes were consumed.
///
/// [`Vm::run_traced`] produces this; the timing-leakage falsifier
/// (`tests/timing_leakage.rs`) and the static-analysis soundness proptests
/// use it as a deterministic, noise-free stand-in for wall-clock latency:
/// a program whose instruction count is identical across entropy streams
/// cannot leak through execution *shape* (variable-latency operands are
/// flagged separately by [`crate::timing_verdict`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunTrace {
    /// The program result (same as [`Vm::run`] on the same stream).
    pub result: i128,
    /// Instructions executed, including the final `Halt`.
    pub instructions: u64,
    /// Entropy bytes consumed (`Byte` instructions executed).
    pub bytes: u64,
}

/// The stack virtual machine.
#[derive(Debug)]
pub struct Vm {
    code: Bytecode,
}

impl Vm {
    /// Loads a compiled program.
    pub fn new(code: Bytecode) -> Self {
        Vm { code }
    }

    /// Runs the program against a byte source, returning the result.
    ///
    /// # Panics
    ///
    /// Panics on malformed bytecode (impossible for [`compile`] output)
    /// or IR arithmetic overflow.
    pub fn run(&self, src: &mut dyn ByteSource) -> i128 {
        let mut locals = vec![0i128; self.code.n_locals];
        let mut stack: Vec<i128> = Vec::with_capacity(16);
        let mut pc = 0usize;
        loop {
            match self.code.ops[pc] {
                Op::Push(v) => stack.push(v),
                Op::Load(l) => stack.push(locals[l]),
                Op::Store(l) => locals[l] = stack.pop().expect("stack underflow"),
                Op::Bin(op) => {
                    let b = stack.pop().expect("stack underflow");
                    let a = stack.pop().expect("stack underflow");
                    stack.push(op.apply(a, b));
                }
                Op::Abs => {
                    let v = stack.pop().expect("stack underflow");
                    stack.push(v.abs());
                }
                Op::Neg => {
                    let v = stack.pop().expect("stack underflow");
                    stack.push(-v);
                }
                Op::Not => {
                    let v = stack.pop().expect("stack underflow");
                    stack.push(i128::from(v == 0));
                }
                Op::Byte => stack.push(src.next_byte() as i128),
                Op::Jmp(t) => {
                    pc = t;
                    continue;
                }
                Op::JmpIfZero(t) => {
                    if stack.pop().expect("stack underflow") == 0 {
                        pc = t;
                        continue;
                    }
                }
                Op::Halt => return stack.pop().expect("empty stack at halt"),
            }
            pc += 1;
        }
    }

    /// Runs the program like [`Vm::run`] while counting instructions and
    /// entropy bytes — the timing observables. The byte stream consumed is
    /// identical to [`Vm::run`]'s, so traced and untraced executions on
    /// the same source produce the same result.
    ///
    /// # Panics
    ///
    /// Panics on malformed bytecode (impossible for [`compile`] output)
    /// or IR arithmetic overflow.
    pub fn run_traced(&self, src: &mut dyn ByteSource) -> RunTrace {
        let mut locals = vec![0i128; self.code.n_locals];
        let mut stack: Vec<i128> = Vec::with_capacity(16);
        let mut pc = 0usize;
        let mut instructions = 0u64;
        let mut bytes = 0u64;
        loop {
            instructions += 1;
            match self.code.ops[pc] {
                Op::Push(v) => stack.push(v),
                Op::Load(l) => stack.push(locals[l]),
                Op::Store(l) => locals[l] = stack.pop().expect("stack underflow"),
                Op::Bin(op) => {
                    let b = stack.pop().expect("stack underflow");
                    let a = stack.pop().expect("stack underflow");
                    stack.push(op.apply(a, b));
                }
                Op::Abs => {
                    let v = stack.pop().expect("stack underflow");
                    stack.push(v.abs());
                }
                Op::Neg => {
                    let v = stack.pop().expect("stack underflow");
                    stack.push(-v);
                }
                Op::Not => {
                    let v = stack.pop().expect("stack underflow");
                    stack.push(i128::from(v == 0));
                }
                Op::Byte => {
                    bytes += 1;
                    stack.push(src.next_byte() as i128);
                }
                Op::Jmp(t) => {
                    pc = t;
                    continue;
                }
                Op::JmpIfZero(t) => {
                    if stack.pop().expect("stack underflow") == 0 {
                        pc = t;
                        continue;
                    }
                }
                Op::Halt => {
                    return RunTrace {
                        result: stack.pop().expect("empty stack at halt"),
                        instructions,
                        bytes,
                    }
                }
            }
            pc += 1;
        }
    }
}

/// Directly interprets the IR AST (the semantic reference for the VM).
pub fn interpret(p: &Program, src: &mut dyn ByteSource) -> i128 {
    let mut locals = vec![0i128; p.n_locals];
    exec(&p.body, &mut locals, src);
    eval(&p.result, &locals)
}

fn eval(e: &Expr, locals: &[i128]) -> i128 {
    match e {
        Expr::Const(v) => *v,
        Expr::Local(l) => locals[*l],
        Expr::Bin(op, a, b) => op.apply(eval(a, locals), eval(b, locals)),
        Expr::Abs(a) => eval(a, locals).abs(),
        Expr::Neg(a) => -eval(a, locals),
        Expr::Not(a) => i128::from(eval(a, locals) == 0),
    }
}

fn exec(s: &Stmt, locals: &mut [i128], src: &mut dyn ByteSource) {
    match s {
        Stmt::Skip => {}
        Stmt::Assign(l, e) => locals[*l] = eval(e, locals),
        Stmt::Byte(l) => locals[*l] = src.next_byte() as i128,
        Stmt::Seq(ss) => ss.iter().for_each(|s| exec(s, locals, src)),
        Stmt::If(c, t, e) => {
            if eval(c, locals) != 0 {
                exec(t, locals, src);
            } else {
                exec(e, locals, src);
            }
        }
        Stmt::While(c, b) => {
            while eval(c, locals) != 0 {
                exec(b, locals, src);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Expr as E;
    use sampcert_slang::{CyclicByteSource, SeededByteSource};

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("x{i}")).collect()
    }

    #[test]
    fn straight_line_arithmetic() {
        // x0 = 7; x1 = x0 * 6 - 2; return |−x1| = 40
        let p = Program::new(
            "arith",
            names(2),
            Stmt::Assign(0, E::Const(7)).then(Stmt::Assign(
                1,
                E::sub(E::mul(E::Local(0), E::Const(6)), E::Const(2)),
            )),
            E::Abs(Box::new(E::Neg(Box::new(E::Local(1))))),
        );
        let mut src = CyclicByteSource::new(vec![0]);
        assert_eq!(interpret(&p, &mut src), 40);
        assert_eq!(Vm::new(compile(&p)).run(&mut src), 40);
    }

    #[test]
    fn if_both_branches() {
        // return x0 < 5 ? 1 : 100, with x0 = byte.
        let p = Program::new(
            "branch",
            names(2),
            Stmt::Byte(0).then(Stmt::If(
                E::lt(E::Local(0), E::Const(5)),
                Box::new(Stmt::Assign(1, E::Const(1))),
                Box::new(Stmt::Assign(1, E::Const(100))),
            )),
            E::Local(1),
        );
        let vm = Vm::new(compile(&p));
        let mut src = CyclicByteSource::new(vec![3]);
        assert_eq!(vm.run(&mut src), 1);
        let mut src = CyclicByteSource::new(vec![77]);
        assert_eq!(vm.run(&mut src), 100);
    }

    #[test]
    fn while_countdown() {
        // x0 = byte; x1 = 0; while x0 > 0 { x0 -= 1; x1 += 2 }; return x1.
        let p = Program::new(
            "count",
            names(2),
            Stmt::Byte(0).then(Stmt::While(
                E::lt(E::Const(0), E::Local(0)),
                Box::new(
                    Stmt::Assign(0, E::sub(E::Local(0), E::Const(1)))
                        .then(Stmt::Assign(1, E::add(E::Local(1), E::Const(2)))),
                ),
            )),
            E::Local(1),
        );
        let vm = Vm::new(compile(&p));
        let mut src = CyclicByteSource::new(vec![9]);
        assert_eq!(vm.run(&mut src), 18);
    }

    #[test]
    fn vm_matches_interpreter_on_random_entropy() {
        // A loopy program exercising every opcode; both executors must
        // agree on the same byte stream.
        let p = Program::new(
            "mix",
            names(3),
            Stmt::Byte(0).then(Stmt::While(
                E::lt(E::Local(1), E::bin(BinOp::Mod, E::Local(0), E::Const(17))),
                Box::new(
                    Stmt::Byte(2)
                        .then(Stmt::Assign(1, E::add(E::Local(1), E::Const(1))))
                        .then(Stmt::If(
                            E::lt(E::Local(2), E::Const(128)),
                            Box::new(Stmt::Assign(
                                0,
                                E::bin(BinOp::Max, E::Local(0), E::Local(2)),
                            )),
                            Box::new(Stmt::Skip),
                        )),
                ),
            )),
            E::add(E::Local(0), E::Local(1)),
        );
        let vm = Vm::new(compile(&p));
        for seed in 0..20 {
            let mut s1 = SeededByteSource::new(seed);
            let mut s2 = SeededByteSource::new(seed);
            assert_eq!(interpret(&p, &mut s1), vm.run(&mut s2), "seed {seed}");
        }
    }

    #[test]
    fn nested_loops_compile_correctly() {
        // Multiplication by repeated addition: 6 * 7 via two nested loops.
        let p = Program::new(
            "nested",
            names(3),
            Stmt::Assign(0, E::Const(6)).then(Stmt::While(
                E::lt(E::Const(0), E::Local(0)),
                Box::new(
                    Stmt::Assign(0, E::sub(E::Local(0), E::Const(1)))
                        .then(Stmt::Assign(1, E::Const(7)))
                        .then(Stmt::While(
                            E::lt(E::Const(0), E::Local(1)),
                            Box::new(
                                Stmt::Assign(1, E::sub(E::Local(1), E::Const(1)))
                                    .then(Stmt::Assign(2, E::add(E::Local(2), E::Const(1)))),
                            ),
                        )),
                ),
            )),
            E::Local(2),
        );
        let mut src = CyclicByteSource::new(vec![0]);
        assert_eq!(Vm::new(compile(&p)).run(&mut src), 42);
    }
}
