//! The extraction-correctness theorem, discharged by differential
//! testing: for every sampler and parameter point, the deep-IR AST
//! interpreter, the compiled bytecode VM, and the fused reference
//! implementation consume the **same byte stream** and produce the
//! **same outputs** — they are one function in three syntaxes, which is
//! exactly the guarantee the paper's Lean→Dafny→Python pipeline needs
//! from its (trusted) translation.

use proptest::prelude::*;
use sampcert_arith::Nat;
use sampcert_extract::{
    compile, gaussian_program, gaussian_program_nat, interpret, laplace_program,
    laplace_program_nat, uniform_below_program_nat, LoopKind, Vm,
};
use sampcert_samplers::{
    discrete_gaussian, discrete_laplace, uniform_below, FusedGaussian, FusedLaplace, LaplaceAlg,
};
use sampcert_slang::{Sampling, SeededByteSource};

fn alg_of(kind: LoopKind) -> LaplaceAlg {
    match kind {
        LoopKind::Geometric => LaplaceAlg::Geometric,
        LoopKind::Uniform => LaplaceAlg::Uniform,
    }
}

#[test]
fn laplace_ir_equals_fused_bytewise() {
    for (num, den) in [(1u64, 1u64), (2, 1), (5, 2), (17, 3), (100, 1)] {
        for kind in [LoopKind::Geometric, LoopKind::Uniform] {
            let program = laplace_program(num, den, kind);
            let vm = Vm::new(compile(&program));
            let fused = FusedLaplace::new(num, den, alg_of(kind));
            let mut s1 = SeededByteSource::new(42);
            let mut s2 = SeededByteSource::new(42);
            for i in 0..800 {
                let a = vm.run(&mut s1);
                let b = fused.sample(&mut s2) as i128;
                assert_eq!(a, b, "draw {i}: scale {num}/{den} {kind:?}");
            }
        }
    }
}

#[test]
fn gaussian_ir_equals_fused_bytewise() {
    for (num, den) in [(1u64, 1u64), (3, 1), (7, 2), (25, 1)] {
        // Resolve the switch the same way the fused sampler does.
        let t = num / den + 1;
        let kind = if t >= sampcert_samplers::SWITCH_SCALE {
            LoopKind::Uniform
        } else {
            LoopKind::Geometric
        };
        let program = gaussian_program(num, den, kind);
        let vm = Vm::new(compile(&program));
        let fused = FusedGaussian::new(num, den, LaplaceAlg::Switched);
        let mut s1 = SeededByteSource::new(7);
        let mut s2 = SeededByteSource::new(7);
        for i in 0..300 {
            let a = vm.run(&mut s1);
            let b = fused.sample(&mut s2) as i128;
            assert_eq!(a, b, "draw {i}: sigma {num}/{den}");
        }
    }
}

/// The strongest statement in the pipeline: the *compiled artifact*'s
/// exact output distribution (Markov-chain analysis of VM configurations)
/// equals the verified closed-form PMF — no compiler, interpreter, or
/// sampler in the trusted base, only the analyzer. Sampler-scale analyses
/// cost minutes of CPU (every distinct loop-counter value is a distinct
/// configuration), so this test is opt-in:
/// `cargo test -p sampcert-extract -- --ignored`. Fast artifact-level
/// analyses (uniform, rejection, parity-geometric with exact dyadic
/// masses) run by default in `analyze.rs`'s unit tests.
#[test]
#[ignore = "expensive: minutes of Markov-chain exploration"]
fn compiled_bytecode_distribution_matches_closed_form() {
    use sampcert_extract::analyze;
    use sampcert_samplers::pmf::laplace_pmf;

    let program = laplace_program(1, 1, LoopKind::Geometric);
    let a = analyze(&compile(&program), 1_500, 1e-8);
    assert!(
        a.unresolved_mass() < 1e-3,
        "unresolved {} (residual {}, pruned {})",
        a.unresolved_mass(),
        a.residual_mass,
        a.pruned_mass
    );
    for z in -3i128..=3 {
        let expect = laplace_pmf(1.0, z as i64);
        let got = a.dist.mass(&z);
        assert!(
            (got - expect).abs() < 1e-3,
            "compiled Lap(1) at {z}: {got} vs {expect}"
        );
    }
}

/// Deterministic k-limb parameter: top bit of limb k set, seed folded into
/// the low limb (odd, so the bound is never a bare power of two).
fn limb_nat(k: u32, seed: u64) -> Nat {
    &(Nat::one() << (64 * k - 1)) + &Nat::from(seed * 2 + 1)
}

/// The compiled tier across the parameter-width ladder: the bytecode VM
/// running the arbitrary-precision (`_nat`) lowerings must match the
/// monadic `SLang` sampler draw-for-draw on a shared byte stream at 1-,
/// 8-, 32- and 128-limb parameters — the regime the fused `u128` path
/// cannot reach.
#[test]
fn uniform_nat_program_equals_monadic_across_limb_ladder() {
    for (k, draws) in [(1u32, 200usize), (8, 40), (32, 16), (128, 6)] {
        let bound = limb_nat(k, 5);
        let vm = Vm::new(compile(&uniform_below_program_nat(&bound)));
        let monadic = uniform_below::<Sampling>(&bound);
        let mut s1 = SeededByteSource::new(u64::from(k));
        let mut s2 = SeededByteSource::new(u64::from(k));
        for i in 0..draws {
            let a = vm.try_run(&mut s1).expect("vm fault");
            let b = monadic.run(&mut s2);
            assert_eq!(a.to_nat(), Some(b), "draw {i}: bound at {k} limbs");
        }
    }
}

#[test]
fn laplace_nat_program_equals_monadic_across_limb_ladder() {
    for (k, draws) in [(1u32, 100usize), (8, 24), (32, 10), (128, 4)] {
        let p = limb_nat(k, 3);
        // Scale 1/2 (Geometric regime) and scale 16 (Uniform regime) —
        // both with k-limb numerator and denominator, word-sized outputs.
        for (num, den, kind) in [
            (p.clone(), &p * &Nat::from(2u64), LoopKind::Geometric),
            (&p * &Nat::from(16u64), p.clone(), LoopKind::Uniform),
        ] {
            let program = laplace_program_nat(&num, &den, kind);
            let vm = Vm::new(compile(&program));
            let monadic = discrete_laplace::<Sampling>(&num, &den, alg_of(kind));
            let mut s1 = SeededByteSource::new(u64::from(k) + 100);
            let mut s2 = SeededByteSource::new(u64::from(k) + 100);
            let mut s3 = SeededByteSource::new(u64::from(k) + 100);
            for i in 0..draws {
                let a = vm.run(&mut s1);
                let b = i128::from(monadic.run(&mut s2));
                assert_eq!(a, b, "draw {i}: {k}-limb scale {kind:?}");
                // The AST interpreter is the third leg of the triangle.
                assert_eq!(interpret(&program, &mut s3), a, "interp draw {i}");
            }
        }
    }
}

#[test]
fn gaussian_nat_program_equals_monadic_across_limb_ladder() {
    for (k, draws) in [(1u32, 60usize), (8, 10), (32, 4), (128, 2)] {
        let p = limb_nat(k, 7);
        // σ = 1/4: t = 1 keeps candidate magnitudes tiny while every
        // acceptance-bound operand is a k-limb (or 2k-limb, squared) Nat.
        let num = p.clone();
        let den = &p * &Nat::from(4u64);
        let program = gaussian_program_nat(&num, &den, LoopKind::Geometric);
        let vm = Vm::new(compile(&program));
        let monadic = discrete_gaussian::<Sampling>(&num, &den, LaplaceAlg::Geometric);
        let mut s1 = SeededByteSource::new(u64::from(k) + 200);
        let mut s2 = SeededByteSource::new(u64::from(k) + 200);
        for i in 0..draws {
            let a = vm.run(&mut s1);
            let b = i128::from(monadic.run(&mut s2));
            assert_eq!(a, b, "draw {i}: σ at {k} limbs");
        }
    }
}

#[test]
fn ast_interpreter_equals_vm() {
    let program = gaussian_program(5, 1, LoopKind::Geometric);
    let vm = Vm::new(compile(&program));
    for seed in 0..10u64 {
        let mut s1 = SeededByteSource::new(seed);
        let mut s2 = SeededByteSource::new(seed);
        for _ in 0..100 {
            assert_eq!(interpret(&program, &mut s1), vm.run(&mut s2));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn laplace_ir_equals_fused_random_params(
        num in 1u64..50,
        den in 1u64..5,
        seed in any::<u64>(),
        uniform in any::<bool>(),
    ) {
        let kind = if uniform { LoopKind::Uniform } else { LoopKind::Geometric };
        let program = laplace_program(num, den, kind);
        let vm = Vm::new(compile(&program));
        let fused = FusedLaplace::new(num, den, alg_of(kind));
        let mut s1 = SeededByteSource::new(seed);
        let mut s2 = SeededByteSource::new(seed);
        for i in 0..100 {
            prop_assert_eq!(vm.run(&mut s1), fused.sample(&mut s2) as i128, "draw {}", i);
        }
    }

    #[test]
    fn gaussian_ir_equals_fused_random_params(
        num in 1u64..16,
        seed in any::<u64>(),
        uniform in any::<bool>(),
    ) {
        let kind = if uniform { LoopKind::Uniform } else { LoopKind::Geometric };
        let program = gaussian_program(num, 1, kind);
        let vm = Vm::new(compile(&program));
        let alg = alg_of(kind);
        let fused = FusedGaussian::new(num, 1, alg);
        let mut s1 = SeededByteSource::new(seed);
        let mut s2 = SeededByteSource::new(seed);
        for i in 0..50 {
            prop_assert_eq!(vm.run(&mut s1), fused.sample(&mut s2) as i128, "draw {}", i);
        }
    }
}
