//! Soundness of the static analysis layer on *random* IR programs.
//!
//! Two properties, checked on generated programs that terminate by
//! construction:
//!
//! 1. **Taint soundness**: if [`timing_verdict`] says
//!    `constant-time-shaped`, then the traced VM retires the *identical*
//!    instruction count and consumes the *identical* number of entropy
//!    bytes on every entropy stream. (The analysis over-approximates, so
//!    leaky verdicts on shape-constant programs are allowed; the reverse
//!    would be a soundness bug.)
//! 2. **Bounds soundness**: every observed execution consumes at least
//!    `guaranteed` bytes and, when the worst case is finite, at most
//!    `worst_case` bytes.
//!
//! The generator is a seed-driven deterministic builder (its own LCG over
//! the proptest-supplied seed): loops are counted with a forbidden-to-
//! reassign counter — either a constant trip count (clean) or one clamped
//! through `min(byte-derived, 3)` (tainted, exercising the `LoopBound`
//! channel) — divisors are nonzero constants, and every assignment is
//! clamped to keep arithmetic far from `i128` overflow.

use proptest::prelude::*;
use sampcert_extract::{
    byte_bounds, compile, timing_verdict, BinOp, Bound, Expr, Program, Stmt, Vm, DEFAULT_UNROLL,
};
use sampcert_slang::SeededByteSource;

const N_LOCALS: usize = 6;
const CLAMP: i128 = 1 << 40;

struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn next(&mut self) -> u64 {
        // SplitMix64: full-period, seed-insensitive.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn local(&mut self) -> usize {
        self.below(N_LOCALS as u64) as usize
    }
}

fn gen_expr(g: &mut Gen, depth: usize) -> Expr {
    if depth == 0 {
        return if g.below(2) == 0 {
            Expr::Const(g.below(11) as i128 - 5)
        } else {
            Expr::Local(g.local())
        };
    }
    match g.below(12) {
        0 => Expr::Const(g.below(11) as i128 - 5),
        1 => Expr::Local(g.local()),
        2 => Expr::add(gen_expr(g, depth - 1), gen_expr(g, depth - 1)),
        3 => Expr::sub(gen_expr(g, depth - 1), gen_expr(g, depth - 1)),
        4 => Expr::mul(gen_expr(g, depth - 1), Expr::Const(g.below(7) as i128 + 1)),
        5 => Expr::bin(BinOp::Min, gen_expr(g, depth - 1), gen_expr(g, depth - 1)),
        6 => Expr::bin(BinOp::Max, gen_expr(g, depth - 1), gen_expr(g, depth - 1)),
        7 => Expr::lt(gen_expr(g, depth - 1), gen_expr(g, depth - 1)),
        // Nonzero constant divisors only: the generated programs never
        // divide by zero, and non-pow2 divisors exercise the op-latency
        // channel.
        8 => Expr::bin(
            BinOp::Div,
            gen_expr(g, depth - 1),
            Expr::Const(g.below(8) as i128 + 2),
        ),
        9 => Expr::bin(
            BinOp::Mod,
            gen_expr(g, depth - 1),
            Expr::Const(g.below(8) as i128 + 2),
        ),
        10 => Expr::Abs(Box::new(gen_expr(g, depth - 1))),
        _ => Expr::Neg(Box::new(gen_expr(g, depth - 1))),
    }
}

/// Clamp to keep every stored value inside `±CLAMP` — statement nesting
/// is bounded, so intermediate expression values stay far from overflow.
fn clamped(e: Expr) -> Expr {
    Expr::bin(
        BinOp::Max,
        Expr::bin(BinOp::Min, e, Expr::Const(CLAMP)),
        Expr::Const(-CLAMP),
    )
}

/// `forbidden`: the enclosing loop counters (and bound sources), which
/// the body must not reassign so termination stays structural.
fn gen_stmt(g: &mut Gen, depth: usize, forbidden: &mut Vec<usize>) -> Stmt {
    let pick_assignable = |g: &mut Gen, forbidden: &[usize]| -> usize {
        loop {
            let l = g.local();
            if !forbidden.contains(&l) {
                return l;
            }
        }
    };
    match g.below(if depth == 0 { 3 } else { 6 }) {
        0 => Stmt::Assign(pick_assignable(g, forbidden), clamped(gen_expr(g, 2))),
        1 => Stmt::Byte(pick_assignable(g, forbidden)),
        2 => Stmt::Skip,
        3 => {
            let n = g.below(3) + 2;
            let mut ss = Vec::new();
            for _ in 0..n {
                ss.push(gen_stmt(g, depth - 1, forbidden));
            }
            Stmt::Seq(ss)
        }
        4 => Stmt::If(
            gen_expr(g, 2),
            Box::new(gen_stmt(g, depth - 1, forbidden)),
            Box::new(gen_stmt(g, depth - 1, forbidden)),
        ),
        _ => {
            // Counted loop: ctr := 0; while (ctr < bound) { body; ctr += 1 }
            // where `bound` is either a small constant (clean trip count)
            // or min(local, 3) over a possibly-tainted local (the
            // LoopBound channel). Neither ctr nor the bound source may be
            // reassigned inside, so the loop terminates structurally.
            let ctr = pick_assignable(g, forbidden);
            let scope = forbidden.len();
            forbidden.push(ctr);
            let bound = if g.below(2) == 0 {
                Expr::Const(g.below(4) as i128)
            } else {
                let src = g.local();
                if !forbidden.contains(&src) {
                    forbidden.push(src);
                }
                Expr::bin(BinOp::Min, Expr::Local(src), Expr::Const(3))
            };
            let body = gen_stmt(g, depth - 1, forbidden).then(Stmt::Assign(
                ctr,
                Expr::add(Expr::Local(ctr), Expr::Const(1)),
            ));
            forbidden.truncate(scope); // this loop's ctr/bound leave scope
            Stmt::Assign(ctr, Expr::Const(0)).then(Stmt::While(
                Expr::lt(Expr::Local(ctr), bound),
                Box::new(body),
            ))
        }
    }
}

fn gen_program(seed: u64) -> Program {
    let mut g = Gen::new(seed);
    let names: Vec<String> = (0..N_LOCALS).map(|i| format!("x{i}")).collect();
    let mut forbidden = Vec::new();
    let n = g.below(4) + 2;
    let mut ss = Vec::new();
    for _ in 0..n {
        ss.push(gen_stmt(&mut g, 3, &mut forbidden));
    }
    let result = gen_expr(&mut g, 2);
    Program::new(format!("random_{seed}"), names, Stmt::Seq(ss), result)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn ct_shaped_programs_have_identical_traces(seed in any::<u64>()) {
        let p = gen_program(seed);
        let verdict = timing_verdict(&p);
        let bounds = byte_bounds(&p, DEFAULT_UNROLL);
        let vm = Vm::new(compile(&p));

        let mut traces = Vec::new();
        for stream in 0..8u64 {
            let mut src = SeededByteSource::new(stream.wrapping_mul(0x1234_5678).wrapping_add(1));
            traces.push(vm.run_traced(&mut src));
        }

        // 1. Taint soundness: CT-shaped ⇒ shape-identical executions.
        if verdict.is_constant_time_shaped() {
            for t in &traces[1..] {
                prop_assert_eq!(
                    (t.instructions, t.bytes),
                    (traces[0].instructions, traces[0].bytes),
                    "constant-time-shaped program varied across streams:\n{}",
                    sampcert_extract::render(&p)
                );
            }
        }

        // 2. Bounds soundness on every program, leaky or not.
        for t in &traces {
            prop_assert!(
                t.bytes >= bounds.guaranteed,
                "run used {} bytes, below the guaranteed floor {}:\n{}",
                t.bytes, bounds.guaranteed, sampcert_extract::render(&p)
            );
            if let Bound::Finite(w) = bounds.worst_case {
                prop_assert!(
                    t.bytes <= w,
                    "run used {} bytes, above the static worst case {}:\n{}",
                    t.bytes, w, sampcert_extract::render(&p)
                );
            }
        }
    }
}

/// The generator must produce a healthy mix — all-leaky output would make
/// property 1 vacuous. Pinned counts over a fixed seed range keep the
/// generator honest as it evolves.
#[test]
fn generator_produces_both_verdict_classes() {
    let mut ct = 0usize;
    let mut leaky = 0usize;
    for seed in 0..400u64 {
        if timing_verdict(&gen_program(seed)).is_constant_time_shaped() {
            ct += 1;
        } else {
            leaky += 1;
        }
    }
    assert!(
        ct >= 20,
        "only {ct}/400 constant-time-shaped — property 1 is near-vacuous"
    );
    assert!(
        leaky >= 20,
        "only {leaky}/400 leaky — generator lost its Byte statements"
    );
}
