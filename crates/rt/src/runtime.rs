//! The hand-rolled executor: per-worker run queues, a shared injector,
//! work stealing, and a condvar park loop.
//!
//! No `unsafe`, no dependencies: tasks are `Arc`-shared state machines
//! whose wakers come from [`std::task::Wake`], and workers are plain
//! [`std::thread`]s. The design is the classic small work-stealing
//! executor:
//!
//! - every task has a **home queue** (round-robin at spawn), so steady
//!   load spreads without coordination;
//! - a worker pops its own queue first (FIFO), then the shared
//!   **injector** (tasks woken from outside the pool land there), then
//!   **steals** from the back of sibling queues;
//! - an idle worker parks on a condvar tied to the injector lock; every
//!   push notifies under that lock, so wakeups cannot be lost.
//!
//! Scheduling state per task is one atomic (`Idle / Queued / Running /
//! Notified / Done`): a wake during a poll moves `Running → Notified`,
//! and the polling worker re-queues the task instead of dropping the
//! wake — the standard protocol for never losing a wakeup without
//! holding a lock across `poll`.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

/// Task scheduling states (the one-atomic wake protocol).
const IDLE: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
const NOTIFIED: u8 = 3;
const DONE: u8 = 4;

/// One spawned future plus its scheduling state. `Arc<Task>` doubles as
/// the waker (via [`Wake`]).
struct Task {
    /// The future; taken while a worker polls it, restored on `Pending`.
    future: Mutex<Option<BoxFuture>>,
    state: AtomicU8,
    /// Preferred worker queue (round-robin at spawn).
    home: usize,
    shared: Arc<Shared>,
}

impl Task {
    /// Polls the task once. Called by a worker that dequeued it.
    fn run(self: &Arc<Self>) {
        if self
            .state
            .compare_exchange(QUEUED, RUNNING, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            // Completed (or never queued) — a stale queue entry.
            return;
        }
        let Some(mut future) = self.future.lock().expect("task future poisoned").take() else {
            self.state.store(DONE, Ordering::Release);
            return;
        };
        let waker = Waker::from(Arc::clone(self));
        let mut cx = Context::from_waker(&waker);
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                self.state.store(DONE, Ordering::Release);
            }
            Poll::Pending => {
                // Restore the future *before* leaving `Running`, so a
                // re-queued task always finds it.
                *self.future.lock().expect("task future poisoned") = Some(future);
                if self
                    .state
                    .compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
                {
                    // A wake arrived mid-poll (`Running → Notified`):
                    // honour it by re-queueing ourselves.
                    self.state.store(QUEUED, Ordering::Release);
                    self.shared.push(Arc::clone(self));
                }
            }
        }
    }
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        loop {
            match self.state.load(Ordering::Acquire) {
                IDLE => {
                    if self
                        .state
                        .compare_exchange(IDLE, QUEUED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        let shared = Arc::clone(&self.shared);
                        shared.push(self);
                        return;
                    }
                }
                RUNNING => {
                    if self
                        .state
                        .compare_exchange(RUNNING, NOTIFIED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        return;
                    }
                }
                // Already queued / notified / done: the wake coalesces.
                _ => return,
            }
        }
    }
}

/// State shared between the [`Runtime`] handle and its workers.
struct Shared {
    /// Per-worker run queues. Owner pops the front; thieves pop the back.
    queues: Vec<Mutex<VecDeque<Arc<Task>>>>,
    /// Overflow / external-wake queue, also the sleep lock: idle workers
    /// park on [`Shared::idle`] holding this mutex, and every push
    /// notifies under it, which is what makes lost wakeups impossible.
    injector: Mutex<VecDeque<Arc<Task>>>,
    idle: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    /// Queues a task on its home queue and wakes one sleeper.
    fn push(&self, task: Arc<Task>) {
        let home = task.home % self.queues.len();
        self.queues[home]
            .lock()
            .expect("run queue poisoned")
            .push_back(task);
        // Touch the injector lock so the notify synchronizes with any
        // worker deciding to sleep (see `worker_loop`).
        let _guard = self.injector.lock().expect("injector poisoned");
        self.idle.notify_one();
    }

    /// Pop order: own queue front, injector front, then steal one task
    /// from the back of each sibling queue.
    fn find_work(&self, index: usize) -> Option<Arc<Task>> {
        if let Some(task) = self.queues[index]
            .lock()
            .expect("run queue poisoned")
            .pop_front()
        {
            return Some(task);
        }
        if let Some(task) = self.injector.lock().expect("injector poisoned").pop_front() {
            return Some(task);
        }
        let n = self.queues.len();
        for off in 1..n {
            let victim = (index + off) % n;
            if let Some(task) = self.queues[victim]
                .lock()
                .expect("run queue poisoned")
                .pop_back()
            {
                return Some(task);
            }
        }
        None
    }

    /// Any task anywhere? Called under the injector lock before parking.
    fn any_queued(&self, guard: &VecDeque<Arc<Task>>) -> bool {
        !guard.is_empty()
            || self
                .queues
                .iter()
                .any(|q| !q.lock().expect("run queue poisoned").is_empty())
    }
}

/// A worker's main loop: run until shutdown, parking when idle.
fn worker_loop(shared: &Arc<Shared>, index: usize) {
    loop {
        if let Some(task) = shared.find_work(index) {
            task.run();
            continue;
        }
        let guard = shared.injector.lock().expect("injector poisoned");
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Re-check under the lock: a producer that pushed after our
        // `find_work` miss is either visible now, or is blocked on this
        // lock and will notify once we wait.
        if shared.any_queued(&guard) {
            continue;
        }
        let _unused = shared.idle.wait(guard).expect("injector poisoned");
    }
}

/// A handle whose task completed (or will): await it inside another task,
/// or [`join`](JoinHandle::join) it from a plain thread.
///
/// Dropping the handle detaches the task (it keeps running).
#[derive(Debug)]
pub struct JoinHandle<T> {
    state: Arc<JoinState<T>>,
}

struct JoinState<T> {
    slot: Mutex<JoinSlot<T>>,
    done: Condvar,
}

impl<T> std::fmt::Debug for JoinState<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JoinState { .. }")
    }
}

enum JoinSlot<T> {
    /// Not finished; holds the waker of an awaiting task, if any.
    Pending(Option<Waker>),
    /// Finished; the output waits to be taken.
    Ready(Option<T>),
}

impl<T> JoinState<T> {
    fn complete(&self, value: T) {
        let mut slot = self.slot.lock().expect("join slot poisoned");
        let waker = match std::mem::replace(&mut *slot, JoinSlot::Ready(Some(value))) {
            JoinSlot::Pending(waker) => waker,
            JoinSlot::Ready(_) => unreachable!("task completed twice"),
        };
        drop(slot);
        self.done.notify_all();
        if let Some(waker) = waker {
            waker.wake();
        }
    }
}

impl<T> JoinHandle<T> {
    /// Blocks the calling thread until the task finishes, returning its
    /// output.
    ///
    /// # Panics
    ///
    /// Panics if the output was already taken (the handle was polled to
    /// completion and then joined).
    pub fn join(self) -> T {
        let mut slot = self.state.slot.lock().expect("join slot poisoned");
        loop {
            match &mut *slot {
                JoinSlot::Ready(value) => {
                    return value.take().expect("join handle output already taken")
                }
                JoinSlot::Pending(_) => {
                    slot = self.state.done.wait(slot).expect("join slot poisoned");
                }
            }
        }
    }

    /// Whether the task has finished (non-blocking).
    pub fn is_finished(&self) -> bool {
        matches!(
            &*self.state.slot.lock().expect("join slot poisoned"),
            JoinSlot::Ready(_)
        )
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut slot = self.state.slot.lock().expect("join slot poisoned");
        match &mut *slot {
            JoinSlot::Ready(value) => {
                Poll::Ready(value.take().expect("join handle output already taken"))
            }
            JoinSlot::Pending(waker) => {
                *waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

/// The work-stealing runtime: `N` worker threads serving spawned tasks
/// from per-worker queues with stealing.
///
/// Dropping the runtime shuts the workers down after they finish the
/// tasks they are currently polling; tasks still queued are dropped
/// unpolled (a [`JoinHandle`] for one would never resolve). Join what
/// you need before dropping.
pub struct Runtime {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// Round-robin home-queue cursor for spawns.
    next_home: AtomicUsize,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl Runtime {
    /// Starts `workers` worker threads (clamped to at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            idle: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let threads = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sampcert-rt-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn runtime worker")
            })
            .collect();
        Runtime {
            shared,
            workers: threads,
            next_home: AtomicUsize::new(0),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Spawns a future onto the runtime, returning a handle to its
    /// output. The task starts on a round-robin home queue and may be
    /// stolen by any worker.
    pub fn spawn<F>(&self, future: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        let state = Arc::new(JoinState {
            slot: Mutex::new(JoinSlot::Pending(None)),
            done: Condvar::new(),
        });
        let completion = Arc::clone(&state);
        let wrapped = async move {
            let value = future.await;
            completion.complete(value);
        };
        let task = Arc::new(Task {
            future: Mutex::new(Some(Box::pin(wrapped))),
            state: AtomicU8::new(QUEUED),
            home: self.next_home.fetch_add(1, Ordering::Relaxed),
            shared: Arc::clone(&self.shared),
        });
        self.shared.push(task);
        JoinHandle { state }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _guard = self.shared.injector.lock().expect("injector poisoned");
            self.idle_notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Runtime {
    fn idle_notify_all(&self) {
        self.shared.idle.notify_all();
    }
}

/// A [`Wake`] that unparks a parked thread — the waker behind
/// [`block_on`].
struct Unparker {
    thread: std::thread::Thread,
    notified: AtomicBool,
}

impl Wake for Unparker {
    fn wake(self: Arc<Self>) {
        self.notified.store(true, Ordering::Release);
        self.thread.unpark();
    }
}

/// Drives a future to completion on the calling thread, parking between
/// polls. This is how synchronous code consumes `answer_async` futures
/// and [`JoinHandle`]s without a second runtime.
pub fn block_on<F: Future>(future: F) -> F::Output {
    let mut future = Box::pin(future);
    let unparker = Arc::new(Unparker {
        thread: std::thread::current(),
        notified: AtomicBool::new(false),
    });
    let waker = Waker::from(Arc::clone(&unparker));
    let mut cx = Context::from_waker(&waker);
    loop {
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(value) => return value,
            Poll::Pending => {
                while !unparker.notified.swap(false, Ordering::Acquire) {
                    std::thread::park();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_and_join_many() {
        let rt = Runtime::new(4);
        let handles: Vec<_> = (0..64u64).map(|i| rt.spawn(async move { i * i })).collect();
        let total: u64 = handles.into_iter().map(JoinHandle::join).sum();
        assert_eq!(total, (0..64u64).map(|i| i * i).sum());
    }

    #[test]
    fn block_on_drives_pending_futures() {
        // A future that goes Pending once and is woken from another
        // thread — exercises the park/unpark loop.
        struct YieldOnce {
            woken: bool,
        }
        impl Future for YieldOnce {
            type Output = u32;
            fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<u32> {
                if self.woken {
                    Poll::Ready(7)
                } else {
                    self.woken = true;
                    let waker = cx.waker().clone();
                    std::thread::spawn(move || waker.wake());
                    Poll::Pending
                }
            }
        }
        assert_eq!(block_on(YieldOnce { woken: false }), 7);
    }

    #[test]
    fn tasks_migrate_across_workers() {
        // All tasks get home queue 0 via a single spawner, but a blocked
        // worker cannot serve them all: completing every task within the
        // timeout requires stealing.
        let rt = Runtime::new(4);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let blocker = {
            let gate = Arc::clone(&gate);
            rt.spawn(async move {
                let (lock, cv) = &*gate;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            })
        };
        let handles: Vec<_> = (0..32u32).map(|i| rt.spawn(async move { i + 1 })).collect();
        let sum: u32 = handles.into_iter().map(JoinHandle::join).sum();
        assert_eq!(sum, (1..=32).sum());
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        blocker.join();
    }

    #[test]
    fn join_handle_awaits_inside_a_task() {
        let rt = Runtime::new(2);
        let inner = rt.spawn(async { 21u64 });
        let outer = rt.spawn(async move { inner.await * 2 });
        assert_eq!(outer.join(), 42);
    }
}
