//! [`RtExecutor`]: the runtime crate's draw-plane execution backend.
//!
//! The serving stack has two planes with deliberately different
//! scheduling:
//!
//! - the **request plane** (the [`Runtime`](crate::Runtime)) steals
//!   work freely — which worker polls a request's future is
//!   unobservable, so migration is pure load balancing;
//! - the **draw plane** (this executor) keeps the *static contiguous
//!   partition* ([`sampcert_core::lane_partition`]): lane `i` always
//!   serves chunk `i` from its own persistent byte stream
//!   (`root.stream(i)` under [`Entropy::Seeded`]).
//!
//! Stealing on the draw plane would be wrong twice over: it would break
//! the byte-stream determinism contract (which stream an answer came
//! from must be a function of the request, not the scheduler), and it
//! would falsify per-lane accounting — [`Executor::partition`] is the
//! basis on which a sharded accountant attributes charges to lanes, so
//! the lanes must actually serve those chunks. `RtExecutor` is
//! therefore stream-for-stream identical to `NoiseServer` with the same
//! seed and lane count (pinned by this crate's integration tests), and
//! all elasticity lives one level up, in the runtime's task scheduler.

use sampcert_core::{
    AbstractDp, Budget, Entropy, Executor, ExecutorFailure, Mechanism, SessionError,
    ShardedExecutor, ShardedLedger, SpawnExecutor,
};
use sampcert_slang::{ByteSource, OsByteSource, Value};

/// One draw lane: a persistent byte stream owned by this executor and
/// handed exclusively to one scoped thread per batch.
struct Lane {
    src: Box<dyn ByteSource + Send>,
}

/// A fixed-lane draw executor for the async serving runtime. See the
/// [module docs](self) for why the draw plane does not steal.
pub struct RtExecutor {
    lanes: Vec<Lane>,
}

impl std::fmt::Debug for RtExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RtExecutor")
            .field("lanes", &self.lanes.len())
            .finish()
    }
}

impl RtExecutor {
    /// Builds `lanes` persistent draw lanes (clamped to ≥ 1).
    /// [`Entropy::Seeded`] gives lane `i` the stream `root.stream(i)` —
    /// the same streams `NoiseServer` and lane 0 of
    /// [`sampcert_core::Inline`] derive, which is what makes the
    /// byte-equality suite possible.
    pub fn new(entropy: Entropy, lanes: usize) -> Self {
        let lanes = lanes.max(1);
        let build = |i: usize| -> Box<dyn ByteSource + Send> {
            match &entropy {
                Entropy::Os => Box::new(OsByteSource::new()),
                Entropy::Seeded(root) => Box::new(root.stream(i as u64)),
            }
        };
        RtExecutor {
            lanes: (0..lanes).map(|i| Lane { src: build(i) }).collect(),
        }
    }

    /// Scoped-thread fan-out over the lanes, results in lane order. A
    /// single lane serves inline on the calling thread, so one-lane
    /// executors are a true sequential baseline.
    fn fan_out<R, F>(&mut self, serve: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &mut Lane) -> R + Sync,
    {
        if self.lanes.len() == 1 {
            return vec![serve(0, &mut self.lanes[0])];
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .lanes
                .iter_mut()
                .enumerate()
                .map(|(i, lane)| {
                    let serve = &serve;
                    scope.spawn(move || serve(i, lane))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("draw lane panicked"))
                .collect()
        })
    }
}

impl Executor for RtExecutor {
    fn lanes(&self) -> usize {
        self.lanes.len()
    }

    fn run_into<T: Sync + 'static, U: Value>(
        &mut self,
        mech: &Mechanism<T, U>,
        db: &[T],
        n: usize,
        out: &mut Vec<U>,
    ) -> Result<(), ExecutorFailure> {
        let chunks = sampcert_core::lane_partition(n, self.lanes.len());
        let parts = self.fan_out(|i, lane| {
            let mut part = Vec::new();
            mech.run_many_into(db, chunks[i], &mut *lane.src, &mut part);
            part
        });
        for part in parts {
            out.extend(part);
        }
        Ok(())
    }
}

/// Charge-before-serve per lane: lane `i` batch-charges shard `i`
/// (`chunkᵢ · units` releases of `gamma_unit`) before drawing a byte,
/// and every verdict is collected before anything is released — the same
/// discipline `NoiseServer` pins.
impl ShardedExecutor for RtExecutor {
    fn run_sharded_into<D: AbstractDp, B: Budget, T: Sync + 'static, U: Value>(
        &mut self,
        mech: &Mechanism<T, U>,
        db: &[T],
        n: usize,
        gamma_unit: f64,
        units: u64,
        ledger: &ShardedLedger<D, B>,
        out: &mut Vec<U>,
    ) -> Result<(), SessionError<B>> {
        if ledger.shards() < self.lanes.len() {
            return Err(SessionError::Executor(ExecutorFailure::new(format!(
                "ledger has {} shards but the executor has {} lanes",
                ledger.shards(),
                self.lanes.len()
            ))));
        }
        let chunks = sampcert_core::lane_partition(n, self.lanes.len());
        let parts = self.fan_out(|i, lane| {
            let mut handle = ledger.handle(i);
            handle.charge_batch(gamma_unit, chunks[i] as u64 * units)?;
            let mut part = Vec::new();
            mech.run_many_into(db, chunks[i], &mut *lane.src, &mut part);
            Ok(part)
        });
        // Collect every shard's verdict before touching `out`: a refusing
        // shard discards the other chunks unreleased (their charges stay
        // spent — the conservative direction) and leaves the caller's
        // buffer untouched.
        let served: Vec<Vec<U>> = parts
            .into_iter()
            .collect::<Result<_, _>>()
            .map_err(SessionError::Budget)?;
        for part in served {
            out.extend(part);
        }
        Ok(())
    }
}

/// Lets `SessionBuilder::executor::<RtExecutor>(lanes)` spawn the draw
/// pool straight from the session's entropy choice.
impl SpawnExecutor for RtExecutor {
    fn spawn(entropy: Entropy, lanes: usize) -> Self {
        RtExecutor::new(entropy, lanes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sampcert_slang::SplitSeed;

    #[test]
    fn lane_count_is_clamped_and_reported() {
        let ex = RtExecutor::new(Entropy::Os, 0);
        assert_eq!(ex.lanes(), 1);
        let ex = RtExecutor::new(Entropy::Seeded(SplitSeed::new(7)), 4);
        assert_eq!(ex.lanes(), 4);
        assert_eq!(ex.partition(10), vec![3, 3, 2, 2]);
    }
}
