//! Bounded multi-producer/multi-consumer ingress queue with
//! shed-at-the-door admission.
//!
//! The queue is the serving runtime's front door: producers
//! [`try_push`](Ingress::try_push) requests and are **refused
//! immediately** when the queue is at capacity — the request is handed
//! back together with a [`QueueFull`] record, before any budget charge,
//! journal write or entropy draw could happen. Consumers
//! [`pop`](Ingress::pop) blocking-style; [`close`](Ingress::close)
//! drains the queue and then yields `None` to every consumer.
//!
//! Depth is mirrored into a [`IngressGauge`] shared with the
//! [`Session`](sampcert_core::Session) (via
//! `SessionBuilder::ingress`), so the session's
//! [`AdmissionPolicy`](sampcert_core::AdmissionPolicy) depth bound and
//! the queue's own capacity read the *same* counter: what the gauge
//! says is exactly what is queued here.

use sampcert_core::{IngressGauge, QueueFull};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// A request refused at the door: the item is handed back untouched,
/// alongside the [`QueueFull`] describing the refusal. Convertible into
/// [`SessionError::QueueFull`](sampcert_core::SessionError::QueueFull)
/// via the error's existing `From<QueueFull>` impl.
#[derive(Debug)]
pub struct ShedItem<T> {
    /// The request that was not enqueued.
    pub item: T,
    /// Observed depth (including this request) and the capacity bound.
    pub error: QueueFull,
}

struct State<T> {
    queue: VecDeque<T>,
    closed: bool,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
    gauge: IngressGauge,
}

/// The bounded MPMC ingress queue. Clones share one queue; see the
/// [module docs](self) for the admission contract.
pub struct Ingress<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for Ingress<T> {
    fn clone(&self) -> Self {
        Ingress {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> std::fmt::Debug for Ingress<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ingress")
            .field("capacity", &self.inner.capacity)
            .field("depth", &self.len())
            .finish()
    }
}

impl<T> Ingress<T> {
    /// A queue holding at most `capacity` requests (clamped to ≥ 1),
    /// with a fresh depth gauge.
    pub fn bounded(capacity: usize) -> Self {
        Ingress {
            inner: Arc::new(Inner {
                state: Mutex::new(State {
                    queue: VecDeque::new(),
                    closed: false,
                }),
                available: Condvar::new(),
                capacity: capacity.max(1),
                gauge: IngressGauge::new(),
            }),
        }
    }

    /// The depth gauge mirroring this queue — hand a clone to
    /// `SessionBuilder::ingress` so the session's admission depth bound
    /// reads real backlog.
    pub fn gauge(&self) -> IngressGauge {
        self.inner.gauge.clone()
    }

    /// Maximum number of queued requests.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Current number of queued requests.
    pub fn len(&self) -> usize {
        self.inner
            .state
            .lock()
            .expect("ingress poisoned")
            .queue
            .len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `item`, or sheds it immediately if the queue is full or
    /// closed. A shed hands the item back with the observed depth —
    /// nothing was charged, journalled, or drawn for it.
    pub fn try_push(&self, item: T) -> Result<(), ShedItem<T>> {
        let mut state = self.inner.state.lock().expect("ingress poisoned");
        if state.closed || state.queue.len() >= self.inner.capacity {
            let depth = state.queue.len() + 1;
            drop(state);
            return Err(ShedItem {
                item,
                error: QueueFull::new(depth, self.inner.capacity),
            });
        }
        state.queue.push_back(item);
        self.inner.gauge.enter();
        drop(state);
        self.inner.available.notify_one();
        Ok(())
    }

    /// Dequeues the oldest request, blocking while the queue is empty.
    /// Returns `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.inner.state.lock().expect("ingress poisoned");
        loop {
            if let Some(item) = state.queue.pop_front() {
                self.inner.gauge.leave();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.inner.available.wait(state).expect("ingress poisoned");
        }
    }

    /// Dequeues without blocking; `None` means empty right now (the
    /// queue may still be open).
    pub fn try_pop(&self) -> Option<T> {
        let mut state = self.inner.state.lock().expect("ingress poisoned");
        let item = state.queue.pop_front();
        if item.is_some() {
            self.inner.gauge.leave();
        }
        item
    }

    /// Closes the queue: later pushes shed, and consumers drain what is
    /// left and then see `None`.
    pub fn close(&self) {
        self.inner.state.lock().expect("ingress poisoned").closed = true;
        self.inner.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sheds_at_capacity_and_hands_the_item_back() {
        let q = Ingress::bounded(2);
        q.try_push(1u32).unwrap();
        q.try_push(2).unwrap();
        let shed = q.try_push(3).unwrap_err();
        assert_eq!(shed.item, 3);
        assert_eq!(shed.error.depth(), 3);
        assert_eq!(q.gauge().depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.gauge().depth(), 1);
        q.try_push(3).unwrap();
    }

    #[test]
    fn close_drains_then_ends() {
        let q = Ingress::bounded(4);
        q.try_push('a').unwrap();
        q.try_push('b').unwrap();
        q.close();
        assert!(q.try_push('c').is_err());
        assert_eq!(q.pop(), Some('a'));
        assert_eq!(q.pop(), Some('b'));
        assert_eq!(q.pop(), None);
        assert_eq!(q.gauge().depth(), 0);
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_items() {
        let q = Ingress::bounded(8);
        let consumer = {
            let q = q.clone();
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            })
        };
        let mut accepted = 0u64;
        for i in 0..10_000u64 {
            if q.try_push(i).is_ok() {
                accepted += 1;
            }
        }
        q.close();
        let got = consumer.join().unwrap();
        assert_eq!(got.len() as u64, accepted);
        assert!(accepted > 0);
        assert_eq!(q.gauge().depth(), 0);
    }
}
