//! # sampcert-rt — the async serving runtime
//!
//! Serving differentially private answers under load needs three things
//! the core `Session` deliberately does not provide: somewhere to *run*
//! the `answer_async` futures, somewhere for requests to *wait*, and a
//! door that can say *no* before any budget is spent. This crate is
//! those three things, dependency-free (plain `std` threads, mutexes
//! and [`std::task::Wake`] — no async ecosystem crates, in the same
//! vendored-shim spirit as the rest of the workspace):
//!
//! - [`Runtime`] — a hand-rolled work-stealing executor: per-worker run
//!   queues, a shared injector, a condvar park loop, and
//!   [`spawn`](Runtime::spawn)/[`JoinHandle`]/[`block_on`] as the whole
//!   API surface. Tasks are polled wherever a worker is free; which
//!   worker serves a request is unobservable, so stealing here is pure
//!   load balancing.
//! - [`Ingress`] — a bounded MPMC queue that **sheds at the door**:
//!   [`try_push`](Ingress::try_push) refuses immediately when the queue
//!   is at capacity, handing the request back with a
//!   [`QueueFull`](sampcert_core::QueueFull) record. Its depth gauge is
//!   shared with the `Session`, so the session's
//!   [`AdmissionPolicy`](sampcert_core::AdmissionPolicy) reads the real
//!   backlog.
//! - [`RtExecutor`] — the draw-plane backend: fixed contiguous lanes
//!   with persistent per-lane byte streams, implementing the core
//!   `Executor`/`ShardedExecutor`/`SpawnExecutor` traits. The draw
//!   plane does **not** steal (see [`pool`]) — determinism and per-lane
//!   accounting pin each chunk to its lane; elasticity lives in the
//!   runtime above.
//!
//! ## The shed-before-charge invariant
//!
//! The stack preserves the accountant's charge-before-serve discipline
//! and adds its dual: a request refused by admission control — queue
//! over bound, or provably unservable within the remaining budget — is
//! charged **nothing**, journals **nothing**, and draws **no entropy**.
//! The registry after any storm of accepted/shed/refused requests
//! equals a sequential replay of exactly the accepted set
//! (pinned by `tests/admission.rs` at the workspace root and this
//! crate's integration tests).
//!
//! ## Putting it together
//!
//! ```
//! use sampcert_core::{count_query, AdmissionPolicy, Private, PureDp, Request, Session};
//! use sampcert_rt::{block_on, Ingress, Runtime};
//!
//! let rt = Runtime::new(2);
//! let queue: Ingress<Request<PureDp, u32, i64>> = Ingress::bounded(64);
//!
//! // The session shares the queue's depth gauge, so its admission
//! // policy reads real backlog.
//! let mut session = Session::<PureDp>::builder()
//!     .ledger(4.0)
//!     .seeded(7)
//!     .admission(AdmissionPolicy::open().max_queue_depth(64).shed_unservable())
//!     .ingress(queue.gauge())
//!     .inline()
//!     .build();
//!
//! let q: Private<PureDp, u32, i64> = Private::noised_query(&count_query(), 1, 1);
//! queue.try_push(Request::from_private(&q, "count")).unwrap();
//! queue.close();
//!
//! let server = rt.spawn(async move {
//!     let db: Vec<u32> = (0..100).collect();
//!     let mut answers = Vec::new();
//!     while let Some(req) = queue.pop() {
//!         answers.push(session.answer_async(&req, &db).await);
//!     }
//!     answers
//! });
//! let answers = block_on(server);
//! assert_eq!(answers.len(), 1);
//! assert!(answers[0].is_ok());
//! ```

pub mod ingress;
pub mod pool;
pub mod runtime;

pub use ingress::{Ingress, ShedItem};
pub use pool::RtExecutor;
pub use runtime::{block_on, JoinHandle, Runtime};
