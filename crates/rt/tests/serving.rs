//! Integration suite for the serving runtime: draw-plane byte equality
//! against the established backends, the full session-on-runtime path,
//! and the shed-before-charge invariant at the runtime level.

use sampcert_core::{
    count_query, AdmissionPolicy, Entropy, Executor, Inline, Private, PureDp, Request, Session,
};
use sampcert_mechanisms::{NoiseServer, SeedBackend, ServeConfig};
use sampcert_rt::{block_on, Ingress, RtExecutor, Runtime};

const ROOT: u64 = 0xC0FF_EE00;

fn count_request() -> Request<PureDp, u32, i64> {
    let q: Private<PureDp, u32, i64> = Private::noised_query(&count_query(), 1, 1);
    Request::from_private(&q, "count")
}

/// The draw plane is stream-for-stream identical to `NoiseServer`: the
/// same seed root and lane count produce the same bytes, hence the same
/// answers, for every batch size around the partition boundaries.
#[test]
fn rt_executor_matches_noise_server_byte_for_byte() {
    let req = count_request();
    let db: Vec<u32> = (0..500).collect();
    for lanes in [1usize, 2, 3, 4] {
        for n in [1usize, 2, 3, 4, 5, 7, 8, 16, 33] {
            let mut rt_ex = RtExecutor::new(Entropy::seeded(ROOT), lanes);
            let mut ns = NoiseServer::new(ServeConfig {
                workers: lanes,
                seed: SeedBackend::Deterministic(ROOT),
            });
            let (mut a, mut b) = (Vec::new(), Vec::new());
            rt_ex.run_into(req.mechanism(), &db, n, &mut a).unwrap();
            ns.run_into(req.mechanism(), &db, n, &mut b).unwrap();
            assert_eq!(a, b, "lanes {lanes}, n {n}");
        }
    }
}

/// One lane of the runtime executor is the sequential baseline: it is
/// the `Inline` executor, byte for byte.
#[test]
fn single_lane_rt_executor_is_inline() {
    let req = count_request();
    let db: Vec<u32> = (0..100).collect();
    let mut rt_ex = RtExecutor::new(Entropy::seeded(ROOT), 1);
    let mut inline = Inline::new(Entropy::seeded(ROOT));
    let (mut a, mut b) = (Vec::new(), Vec::new());
    rt_ex.run_into(req.mechanism(), &db, 12, &mut a).unwrap();
    inline.run_into(req.mechanism(), &db, 12, &mut b).unwrap();
    assert_eq!(a, b);
}

/// A session built over `RtExecutor` answers exactly what the same
/// session over `NoiseServer` answers — the executor slots into the
/// typestate builder like any other backend.
#[test]
fn sessions_over_rt_executor_and_noise_server_agree() {
    let req = count_request();
    let db: Vec<u32> = (0..250).collect();
    let mut over_rt = Session::<PureDp>::builder()
        .ledger(16.0)
        .seeded(ROOT)
        .executor::<RtExecutor>(3)
        .build();
    let mut over_ns = Session::<PureDp>::builder()
        .ledger(16.0)
        .seeded(ROOT)
        .executor::<NoiseServer>(3)
        .build();
    let a = over_rt.answer_many(&req, &db, 9).unwrap();
    let b = over_ns.answer_many(&req, &db, 9).unwrap();
    assert_eq!(a, b);
    assert_eq!(over_rt.accountant().spent(), over_ns.accountant().spent());
}

/// The full stack: a `NoiseServer`-backed session owned by a runtime
/// task, fed through the bounded ingress queue, serving `answer_async`.
/// Answers equal the synchronous session with the same seed, and the
/// spend equals the accepted count.
#[test]
fn noise_server_session_serves_on_the_runtime() {
    let req = count_request();
    let runtime = Runtime::new(3);
    let queue: Ingress<Request<PureDp, u32, i64>> = Ingress::bounded(32);

    let mut async_session = Session::<PureDp>::builder()
        .ledger(16.0)
        .seeded(ROOT)
        .admission(
            AdmissionPolicy::open()
                .max_queue_depth(32)
                .shed_unservable(),
        )
        .ingress(queue.gauge())
        .executor::<NoiseServer>(2)
        .build();
    let mut sync_session = Session::<PureDp>::builder()
        .ledger(16.0)
        .seeded(ROOT)
        .executor::<NoiseServer>(2)
        .build();

    for _ in 0..8 {
        queue.try_push(req.clone()).unwrap();
    }
    queue.close();

    let server = {
        let queue = queue.clone();
        runtime.spawn(async move {
            let db: Vec<u32> = (0..300).collect();
            let mut answers = Vec::new();
            while let Some(req) = queue.pop() {
                answers.push(async_session.answer_async(&req, &db).await);
            }
            (answers, async_session.accountant().spent())
        })
    };
    let (answers, spent) = block_on(server);

    let db: Vec<u32> = (0..300).collect();
    assert_eq!(answers.len(), 8);
    for got in answers {
        let want = sync_session.answer(&req, &db).unwrap();
        assert_eq!(got.unwrap(), want);
    }
    assert_eq!(spent, 8.0);
    assert_eq!(queue.gauge().depth(), 0);
}

/// Shed-before-charge at the runtime level: requests refused at the
/// ingress door or by budget-keyed admission leave the accountant's
/// spend exactly equal to the accepted count — sheds cost nothing.
#[test]
fn sheds_at_the_door_cost_nothing() {
    let req = count_request();
    let queue: Ingress<Request<PureDp, u32, i64>> = Ingress::bounded(3);

    // ε = 5 admits exactly five ε = 1 requests; the rest must shed.
    let mut session = Session::<PureDp>::builder()
        .ledger(5.0)
        .seeded(ROOT)
        .admission(AdmissionPolicy::open().max_queue_depth(3).shed_unservable())
        .ingress(queue.gauge())
        .inline()
        .build();
    let db: Vec<u32> = (0..50).collect();

    let mut accepted = 0u32;
    let mut door_sheds = 0u32;
    let mut budget_sheds = 0u32;
    // Two bursts of 10 arrivals against a 3-deep queue: each burst sheds
    // 7 at the door, then the queue drains through the session. The
    // second burst's tail overruns the ε = 5 ledger and sheds on budget.
    for _burst in 0..2 {
        for _ in 0..10 {
            if let Err(shed) = queue.try_push(req.clone()) {
                door_sheds += 1;
                assert!(shed.error.depth() > 3);
            }
        }
        while let Some(popped) = queue.try_pop() {
            match block_on(session.answer_async(&popped, &db)) {
                Ok(_) => accepted += 1,
                Err(e) => {
                    assert!(e.is_admission(), "expected an admission refusal: {e}");
                    budget_sheds += 1;
                }
            }
        }
    }
    assert_eq!(door_sheds, 14);
    assert_eq!(accepted, 5);
    assert_eq!(budget_sheds, 1);
    assert_eq!(
        session.accountant().spent(),
        f64::from(accepted),
        "sheds must not move the accountant"
    );
}
