//! The discrete Laplace sampler (paper Section 3.3.1, Listings 9 & 10).
//!
//! SampCert verifies **two** sampling loops for the same distribution and
//! switches between them at runtime:
//!
//! - [`LaplaceAlg::Geometric`] (Listing 10, top; the algorithm used by IBM's
//!   diffprivlib): a shifted geometric draw for the magnitude. Expected
//!   iterations grow linearly with the scale `num/den` — fast for small
//!   scales, slow for large ones.
//! - [`LaplaceAlg::Uniform`] (Listing 10, bottom; Canonne et al.'s
//!   algorithm): splits the magnitude into a uniform fractional part on
//!   `[0, num)` and an `e^(−1)`-geometric integral part. Near-constant
//!   iteration count at any scale, at the price of exact uniform rejection
//!   (whose cost jumps at powers of two — Figs. 4 and 6).
//! - [`LaplaceAlg::Switched`] picks per the scale, reproducing the paper's
//!   "best of both worlds" optimization; because both loops have *equal
//!   distributions*, swapping them is distribution-invariant (the paper
//!   retrofits this optimization without touching privacy proofs, and the
//!   test suite here checks the same equality).
//!
//! The sampler's PMF is Eq. (6): `Lap_t(z) = (e^{1/t}−1)/(e^{1/t}+1) ·
//! e^{−|z|/t}` with `t = num/den`.

use crate::bernoulli::{bernoulli, bernoulli_exp_neg};
use crate::geometric::geometric;
use crate::helpers::nat_to_i64;
use crate::uniform::uniform_below;
use sampcert_arith::Nat;
use sampcert_slang::{map, pair, until, Interp};

/// Which verified Laplace sampling loop to run; see the module-level
/// docs above.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LaplaceAlg {
    /// Shifted-geometric loop (diffprivlib's algorithm; Listing 10, top).
    Geometric,
    /// Uniform-plus-geometric loop (Canonne et al.; Listing 10, bottom).
    Uniform,
    /// Choose per scale: `Geometric` below [`SWITCH_SCALE`], else `Uniform`.
    Switched,
}

/// Scale threshold (`num/den`) at which [`LaplaceAlg::Switched`] changes
/// from the geometric loop to the uniform loop.
///
/// The geometric loop's expected trial count is `≈ scale`, the uniform
/// loop's is constant with a per-trial cost of a few uniform rejections;
/// the measured crossover sits around scale 6–10 on commodity hardware
/// (see the `ablation_laplace_switch` bench, which regenerates it).
pub const SWITCH_SCALE: u64 = 8;

/// `DiscreteLaplaceSampleLoop` (Listing 10, top): the geometric-method
/// sampling loop. Returns `(sign, magnitude)` where the magnitude `n` has
/// mass `(e^{−den/num})^n · (1 − e^{−den/num})` and the sign is a fair coin.
pub fn laplace_loop_geometric<I: Interp>(num: &Nat, den: &Nat) -> I::Repr<(bool, Nat)> {
    // Trial succeeds with probability e^{-den/num}. The listing's order —
    // magnitude first, then the sign coin — is preserved so that the
    // fused sampler consumes the identical byte stream.
    let v = geometric::<I>(bernoulli_exp_neg::<I>(den, num));
    let signed = pair::<I, _, _>(v, bernoulli::<I>(&Nat::one(), &Nat::from(2u64)));
    map::<I, _, _>(signed, |(v, b)| (*b, Nat::from(v - 1)))
}

/// `DiscreteLaplaceSampleLoopIn1Aux` (Listing 10): draw `U ~ Uniform[0, t)`
/// together with an acceptance bit `D ~ Bernoulli(e^{−U/t})`.
fn laplace_loop_in1_aux<I: Interp>(t: &Nat) -> I::Repr<(Nat, bool)> {
    let t2 = t.clone();
    I::bind(uniform_below::<I>(t), move |u| {
        let u2 = u.clone();
        map::<I, _, _>(bernoulli_exp_neg::<I>(&u2, &t2), move |&d| (u2.clone(), d))
    })
}

/// `DiscreteLaplaceSampleLoopIn1` (Listing 10): rejection-sample the
/// fractional part `U` until its `e^(−U/t)` bit accepts.
fn laplace_loop_in1<I: Interp>(t: &Nat) -> I::Repr<Nat> {
    let accepted = until::<I, _>(laplace_loop_in1_aux::<I>(t), |x: &(Nat, bool)| x.1);
    map::<I, _, _>(accepted, |x| x.0.clone())
}

/// `DiscreteLaplaceSampleLoop'` (Listing 10, bottom): the uniform-method
/// sampling loop of Canonne et al. Returns `(sign, magnitude)` with the
/// same distribution as [`laplace_loop_geometric`].
pub fn laplace_loop_uniform<I: Interp>(num: &Nat, den: &Nat) -> I::Repr<(bool, Nat)> {
    let num2 = num.clone();
    let den2 = den.clone();
    // Shared subprograms, hoisted out of the closures so the mass
    // interpreter computes each denotation once.
    let geo = geometric::<I>(bernoulli_exp_neg::<I>(&Nat::one(), &Nat::one()));
    let sign = bernoulli::<I>(&Nat::one(), &Nat::from(2u64));
    I::bind(laplace_loop_in1::<I>(num), move |u| {
        let u = u.clone();
        let num3 = num2.clone();
        let den3 = den2.clone();
        let sign = sign.clone();
        I::bind(geo.clone(), move |&v| {
            // X = U + num·(v−1); Y = ⌊X/den⌋.
            let x = &u + &(&num3 * &Nat::from(v - 1));
            let y = &x / &den3;
            map::<I, _, _>(sign.clone(), move |&b| (b, y.clone()))
        })
    })
}

/// Resolves [`LaplaceAlg::Switched`] for a given scale.
pub(crate) fn resolve_alg(num: &Nat, den: &Nat, alg: LaplaceAlg) -> LaplaceAlg {
    match alg {
        LaplaceAlg::Switched => {
            if *num >= &Nat::from(SWITCH_SCALE) * den {
                LaplaceAlg::Uniform
            } else {
                LaplaceAlg::Geometric
            }
        }
        other => other,
    }
}

/// `DiscreteLaplaceSample` (Listing 9): an exact sample from the discrete
/// Laplace distribution with scale `t = num/den` (Eq. 6).
///
/// Runs the selected sampling loop inside `probUntil`, rejecting the
/// double-counted `(+, 0)` outcome, and applies the sign.
///
/// # Panics
///
/// Panics (at program construction) if `num` or `den` is zero. Panics at
/// sampling time if a drawn magnitude exceeds `i64` — impossible in
/// practice for scales below `≈ 4·10¹⁷` (the tail probability at `i64::MAX`
/// is below `e^{-20}` even then).
///
/// # Examples
///
/// ```
/// use sampcert_samplers::{discrete_laplace, LaplaceAlg};
/// use sampcert_arith::Nat;
/// use sampcert_slang::{Sampling, SeededByteSource};
///
/// let lap = discrete_laplace::<Sampling>(&Nat::from(5u64), &Nat::from(2u64), LaplaceAlg::Switched);
/// let mut src = SeededByteSource::new(0);
/// let _z: i64 = lap.run(&mut src);
/// ```
pub fn discrete_laplace<I: Interp>(num: &Nat, den: &Nat, alg: LaplaceAlg) -> I::Repr<i64> {
    assert!(
        !num.is_zero() && !den.is_zero(),
        "discrete_laplace: zero scale parameter"
    );
    let loop_prog = match resolve_alg(num, den, alg) {
        LaplaceAlg::Geometric => laplace_loop_geometric::<I>(num, den),
        LaplaceAlg::Uniform => laplace_loop_uniform::<I>(num, den),
        LaplaceAlg::Switched => unreachable!("resolved above"),
    };
    let r = until::<I, _>(loop_prog, |x: &(bool, Nat)| !(x.0 && x.1.is_zero()));
    map::<I, _, _>(r, |(b, m)| {
        let mag = nat_to_i64(m);
        if *b {
            -mag
        } else {
            mag
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pmf::laplace_pmf;
    use sampcert_slang::{Mass, Sampling, SeededByteSource};

    fn nat(v: u64) -> Nat {
        Nat::from(v)
    }

    /// Evaluates the mass function of a Laplace program and compares it
    /// pointwise against Eq. (6).
    fn check_against_closed_form(num: u64, den: u64, alg: LaplaceAlg, fuel: usize, tol: f64) {
        let prog = discrete_laplace::<Mass<f64>>(&nat(num), &nat(den), alg);
        let d = prog.eval(&sampcert_slang::MassCtx::limit(fuel).with_prune(1e-14));
        assert!(
            (d.total_mass() - 1.0).abs() < tol,
            "not normalized: {} (alg {alg:?}, {num}/{den})",
            d.total_mass()
        );
        let t = num as f64 / den as f64;
        for z in -6i64..=6 {
            let expect = laplace_pmf(t, z);
            let got = d.mass(&z);
            assert!(
                (got - expect).abs() < tol,
                "Lap_{t}({z}): got {got}, want {expect} (alg {alg:?})"
            );
        }
    }

    #[test]
    fn geometric_loop_matches_eq6_scale_1() {
        check_against_closed_form(1, 1, LaplaceAlg::Geometric, 600, 1e-9);
    }

    #[test]
    fn uniform_loop_matches_eq6_scale_1() {
        check_against_closed_form(1, 1, LaplaceAlg::Uniform, 600, 1e-9);
    }

    #[test]
    fn geometric_loop_matches_eq6_scale_half() {
        check_against_closed_form(1, 2, LaplaceAlg::Geometric, 600, 1e-9);
    }

    #[test]
    fn uniform_loop_matches_eq6_scale_3_2() {
        check_against_closed_form(3, 2, LaplaceAlg::Uniform, 800, 1e-7);
    }

    #[test]
    fn both_loops_equal_distribution() {
        // The key theorem enabling the runtime switch: the two sampling
        // loops denote the same mass function.
        for (num, den) in [(1u64, 1u64), (2, 1), (1, 2)] {
            let ctx = sampcert_slang::MassCtx::limit(800).with_prune(1e-14);
            let a = discrete_laplace::<Mass<f64>>(&nat(num), &nat(den), LaplaceAlg::Geometric)
                .eval(&ctx);
            let b =
                discrete_laplace::<Mass<f64>>(&nat(num), &nat(den), LaplaceAlg::Uniform).eval(&ctx);
            assert!(
                a.linf_distance(&b) < 1e-8,
                "loops disagree at {num}/{den}: {}",
                a.linf_distance(&b)
            );
        }
    }

    #[test]
    fn switched_picks_by_scale() {
        assert_eq!(
            resolve_alg(&nat(1), &nat(1), LaplaceAlg::Switched),
            LaplaceAlg::Geometric
        );
        assert_eq!(
            resolve_alg(&nat(SWITCH_SCALE), &nat(1), LaplaceAlg::Switched),
            LaplaceAlg::Uniform
        );
        assert_eq!(
            resolve_alg(&nat(SWITCH_SCALE - 1), &nat(1), LaplaceAlg::Switched),
            LaplaceAlg::Geometric
        );
        // Explicit algs pass through.
        assert_eq!(
            resolve_alg(&nat(100), &nat(1), LaplaceAlg::Geometric),
            LaplaceAlg::Geometric
        );
    }

    #[test]
    fn symmetric_distribution() {
        let d = discrete_laplace::<Mass<f64>>(&nat(2), &nat(1), LaplaceAlg::Geometric)
            .eval(&sampcert_slang::MassCtx::limit(600).with_prune(1e-14));
        for z in 1i64..=5 {
            assert!(
                (d.mass(&z) - d.mass(&(-z))).abs() < 1e-10,
                "asymmetry at ±{z}"
            );
        }
    }

    #[test]
    fn sampling_moments_match() {
        // Var(Lap_t) = 2 e^{1/t} / (e^{1/t} - 1)^2; mean 0.
        let t: f64 = 4.0;
        let prog = discrete_laplace::<Sampling>(&nat(4), &nat(1), LaplaceAlg::Switched);
        let mut src = SeededByteSource::new(21);
        let n = 40_000;
        let (mut sum, mut sumsq) = (0f64, 0f64);
        for _ in 0..n {
            let z = prog.run(&mut src) as f64;
            sum += z;
            sumsq += z * z;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        let e = (1.0 / t).exp();
        let expect_var = 2.0 * e / (e - 1.0) / (e - 1.0);
        assert!(mean.abs() < 0.2, "mean={mean}");
        assert!(
            (var - expect_var).abs() / expect_var < 0.05,
            "var={var} want {expect_var}"
        );
    }

    #[test]
    fn large_scale_sampler_runs() {
        // Scale 10^6: only the uniform loop is viable; also exercises
        // multi-byte uniform rejection.
        let prog = discrete_laplace::<Sampling>(&nat(1_000_000), &nat(1), LaplaceAlg::Switched);
        let mut src = SeededByteSource::new(9);
        for _ in 0..20 {
            let z = prog.run(&mut src);
            assert!(z.abs() < 40_000_000, "implausible sample {z}");
        }
    }

    #[test]
    #[should_panic(expected = "zero scale parameter")]
    fn zero_scale_panics() {
        let _ = discrete_laplace::<Sampling>(&Nat::zero(), &nat(1), LaplaceAlg::Geometric);
    }
}
