//! The geometric sampler of paper Section 3.2.1 (Listing 8).
//!
//! `probGeometric trial` repeats an i.i.d. boolean `trial` until the first
//! `false`, returning the total number of trials. Its PMF is Eq. (4) of the
//! paper: `Geo_t(z) = (1−t)·t^(z−1)` for `z ≥ 1`, where `t` is the trial's
//! success probability. The paper uses this program as the showcase for the
//! cut-reachability / cut-stability proof technique; the tests here run
//! that argument executably (see also `slang::cut_curve`).

use sampcert_slang::{map, Interp};

/// `probGeometric`: number of i.i.d. `trial` draws up to and including the
/// first `false`.
///
/// The trial program is cloned into the loop body, so each iteration draws
/// an independent sample, exactly as the Lean `probWhile` does.
///
/// # Examples
///
/// ```
/// use sampcert_samplers::geometric;
/// use sampcert_slang::{map, Interp, Mass};
///
/// // Fair-coin trial: P(n) = 2^{-n}.
/// let trial = map::<Mass<f64>, _, _>(Mass::<f64>::uniform_byte(), |b| b & 1 == 1);
/// let d = geometric::<Mass<f64>>(trial).eval_with_fuel(40);
/// assert!((d.mass(&1) - 0.5).abs() < 1e-12);
/// assert!((d.mass(&3) - 0.125).abs() < 1e-12);
/// ```
pub fn geometric<I: Interp>(trial: I::Repr<bool>) -> I::Repr<u64> {
    let looped = I::while_loop(
        |st: &(bool, u64)| st.0,
        move |st| {
            let n = st.1;
            map::<I, _, _>(trial.clone(), move |&x| (x, n + 1))
        },
        I::pure((true, 0u64)),
    );
    map::<I, _, _>(looped, |st| st.1)
}

/// The closed-form geometric PMF, Eq. (4): `Geo_t(0) = 0`,
/// `Geo_t(z) = (1−t)·t^(z−1)` for `z > 0`.
pub fn geometric_pmf(t: f64, z: u64) -> f64 {
    assert!((0.0..1.0).contains(&t), "geometric_pmf: t must be in [0,1)");
    if z == 0 {
        0.0
    } else {
        (1.0 - t) * t.powi((z - 1) as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bernoulli::bernoulli;
    use sampcert_arith::{Nat, Rat};
    use sampcert_slang::{cut_curve, cuts_are_monotone, Mass, Sampling, SeededByteSource};

    fn coin_trial<W: sampcert_slang::Weight>() -> sampcert_slang::MassFn<bool, W> {
        bernoulli::<Mass<W>>(&Nat::from(1u64), &Nat::from(2u64))
    }

    #[test]
    fn pmf_matches_eq4_exactly() {
        // Bernoulli(1/2) trial: Geo masses are exact dyadics.
        let g = geometric::<Mass<Rat>>(coin_trial::<Rat>());
        let d = g.eval_limit(50);
        assert_eq!(d.mass(&0), Rat::zero());
        for z in 1u64..10 {
            assert_eq!(d.mass(&z), Rat::from_ratio(1, 2).powi(z as i32), "z={z}");
        }
    }

    #[test]
    fn pmf_matches_eq4_uneven_bias() {
        // t = 3/4: Geo_t(z) = (1/4)(3/4)^{z-1}.
        let trial = bernoulli::<Mass<Rat>>(&Nat::from(3u64), &Nat::from(4u64));
        let d = geometric::<Mass<Rat>>(trial).eval_limit(60);
        for z in 1u64..8 {
            let expect = &Rat::from_ratio(1, 4) * &Rat::from_ratio(3, 4).powi(z as i32 - 1);
            assert_eq!(d.mass(&z), expect, "z={z}");
        }
    }

    #[test]
    fn cut_reachability_and_stability() {
        // The paper's Section 3.2.1 argument, executed: cut n+1 reaches the
        // limit mass at point n, and later cuts preserve it. The trial here
        // is a rejection-free coin (byte parity) so that the cut arithmetic
        // is exactly the paper's — `bernoulli(1,2)` would nest a second
        // truncated loop and shift the reachability cut.
        let trial =
            sampcert_slang::map::<Mass<f64>, _, _>(Mass::<f64>::uniform_byte(), |b| b & 1 == 1);
        let g = geometric::<Mass<f64>>(trial);
        for n in 1usize..6 {
            let reach = g.eval_with_fuel(n + 1).mass(&(n as u64));
            assert!((reach - geometric_pmf(0.5, n as u64)).abs() < 1e-12);
            for extra in 1..4 {
                let later = g.eval_with_fuel(n + 1 + extra).mass(&(n as u64));
                assert_eq!(reach, later, "stability failed at n={n}");
            }
        }
    }

    #[test]
    fn cuts_monotone() {
        let g = geometric::<Mass<f64>>(coin_trial::<f64>());
        let curve = cut_curve(&g, [1, 2, 4, 8, 16, 32]);
        assert!(cuts_are_monotone(&curve));
    }

    #[test]
    fn normalizes() {
        let g = geometric::<Mass<f64>>(coin_trial::<f64>());
        assert!((g.eval_with_fuel(200).total_mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_mean_matches() {
        // E[Geo] = 1/(1-t); for t = 1/2 the mean is 2.
        let trial = bernoulli::<Sampling>(&Nat::from(1u64), &Nat::from(2u64));
        let g = geometric::<Sampling>(trial);
        let mut src = SeededByteSource::new(3);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| g.run(&mut src)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn never_returns_zero() {
        let trial = bernoulli::<Sampling>(&Nat::from(9u64), &Nat::from(10u64));
        let g = geometric::<Sampling>(trial);
        let mut src = SeededByteSource::new(8);
        for _ in 0..500 {
            assert!(g.run(&mut src) >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "t must be in [0,1)")]
    fn pmf_rejects_bad_t() {
        let _ = geometric_pmf(1.0, 3);
    }
}
