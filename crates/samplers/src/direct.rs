//! Hand-fused samplers: the "compiled" execution path.
//!
//! The paper deploys its samplers by extracting Lean terms to C++ (57 lines
//! of trusted FFI) and to Python via Dafny; Fig. 5 compares the compiled
//! C++ path against the interpreted/extracted ones. This module is the Rust
//! analogue of that compiled path: the *same algorithms* as
//! [`discrete_laplace`](crate::discrete_laplace) and
//! [`discrete_gaussian`](crate::discrete_gaussian), but with the monadic
//! structure fused away into plain loops over machine integers (`u128`
//! intermediates), consuming the identical byte stream.
//!
//! The test suite checks that, byte-for-byte, the fused samplers traverse
//! the same randomness and emit the same values as the `SLang` programs —
//! the executable counterpart of "extraction preserves semantics".
//!
//! Parameters are restricted to `u64` numerators/denominators (σ and scale
//! up to ≈ 4·10⁹ with den = 1); the `SLang` samplers remain the fully
//! general path.

use crate::laplace::{LaplaceAlg, SWITCH_SCALE};
use sampcert_slang::ByteSource;

/// Uniform draw on `[0, 2^bits)` from whole bytes, matching
/// [`uniform_pow2`](crate::uniform_pow2) byte-for-byte.
fn uniform_pow2_u128(bits: u32, src: &mut dyn ByteSource) -> u128 {
    debug_assert!(bits <= 128);
    if bits == 0 {
        return 0;
    }
    let n_bytes = bits.div_ceil(8);
    let mut v: u128 = 0;
    for _ in 0..n_bytes {
        v = (v << 8) | src.next_byte() as u128;
    }
    // `1u128 << 128` is shift overflow (panic in debug, wrap to a zero mask
    // in release — every draw would come out 0), so the full-width case
    // keeps all bits explicitly. Reachable: `uniform_below_u128(n)` needs
    // 128-bit draws whenever n > 2^127.
    let mask = if bits >= 128 {
        u128::MAX
    } else {
        (1u128 << bits) - 1
    };
    v & mask
}

/// Uniform draw on `[0, n)` by bit-length rejection, matching
/// [`uniform_below`](crate::uniform_below).
pub(crate) fn uniform_below_u128(n: u128, src: &mut dyn ByteSource) -> u128 {
    debug_assert!(n > 0);
    let bits = 128 - n.leading_zeros();
    loop {
        let v = uniform_pow2_u128(bits, src);
        if v < n {
            return v;
        }
    }
}

/// Bernoulli(num/den), exact.
fn bernoulli_u128(num: u128, den: u128, src: &mut dyn ByteSource) -> bool {
    uniform_below_u128(den, src) < num
}

/// Bernoulli(e^{−num/den}) for num ≤ den (γ ∈ [0,1]), von Neumann series.
fn bernoulli_exp_neg_unit_u128(num: u128, den: u128, src: &mut dyn ByteSource) -> bool {
    let mut k: u128 = 1;
    loop {
        let den_k = den
            .checked_mul(k)
            .expect("fused sampler parameter overflow");
        if !bernoulli_u128(num.min(den_k), den_k, src) {
            // First failure at trial k: success iff k is odd.
            return k % 2 == 1;
        }
        k += 1;
    }
}

/// Bernoulli(e^{−num/den}) for arbitrary γ ≥ 0.
fn bernoulli_exp_neg_u128(num: u128, den: u128, src: &mut dyn ByteSource) -> bool {
    debug_assert!(den > 0);
    if num <= den {
        return bernoulli_exp_neg_unit_u128(num, den, src);
    }
    let gamf = num / den;
    for _ in 0..gamf {
        if !bernoulli_exp_neg_unit_u128(1, 1, src) {
            return false;
        }
    }
    bernoulli_exp_neg_unit_u128(num % den, den, src)
}

/// Number of i.i.d. trials up to and including the first failure.
fn geometric_exp_neg_u128(num: u128, den: u128, src: &mut dyn ByteSource) -> u64 {
    let mut n = 0u64;
    loop {
        n += 1;
        if !bernoulli_exp_neg_u128(num, den, src) {
            return n;
        }
    }
}

/// A fused discrete Laplace sampler with precomputed parameters.
///
/// Distribution-identical (and byte-stream-identical) to
/// [`discrete_laplace`](crate::discrete_laplace); see the
/// module-level docs above.
///
/// # Examples
///
/// ```
/// use sampcert_samplers::{FusedLaplace, LaplaceAlg};
/// use sampcert_slang::SeededByteSource;
///
/// let lap = FusedLaplace::new(5, 2, LaplaceAlg::Switched);
/// let mut src = SeededByteSource::new(0);
/// let _z: i64 = lap.sample(&mut src);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FusedLaplace {
    num: u64,
    den: u64,
    alg: LaplaceAlg,
}

impl FusedLaplace {
    /// Creates a sampler with scale `num/den`.
    ///
    /// # Panics
    ///
    /// Panics if `num` or `den` is zero.
    pub fn new(num: u64, den: u64, alg: LaplaceAlg) -> Self {
        assert!(num > 0 && den > 0, "FusedLaplace: zero scale parameter");
        let alg = match alg {
            LaplaceAlg::Switched => {
                if num as u128 >= SWITCH_SCALE as u128 * den as u128 {
                    LaplaceAlg::Uniform
                } else {
                    LaplaceAlg::Geometric
                }
            }
            other => other,
        };
        FusedLaplace { num, den, alg }
    }

    /// The resolved sampling loop in use.
    pub fn algorithm(&self) -> LaplaceAlg {
        self.alg
    }

    /// One iteration of the sampling loop: `(sign, magnitude)`.
    fn sample_loop(&self, src: &mut dyn ByteSource) -> (bool, u128) {
        match self.alg {
            LaplaceAlg::Geometric => {
                let v = geometric_exp_neg_u128(self.den as u128, self.num as u128, src);
                let b = bernoulli_u128(1, 2, src);
                (b, (v - 1) as u128)
            }
            LaplaceAlg::Uniform => {
                let num = self.num as u128;
                // U ~ Uniform[0, num) accepted with prob e^{-U/num}.
                let u = loop {
                    let u = uniform_below_u128(num, src);
                    if bernoulli_exp_neg_unit_u128(u, num, src) {
                        break u;
                    }
                };
                let v = geometric_exp_neg_u128(1, 1, src) - 1;
                let x = u + num * v as u128;
                let y = x / self.den as u128;
                let b = bernoulli_u128(1, 2, src);
                (b, y)
            }
            LaplaceAlg::Switched => unreachable!("resolved in new"),
        }
    }

    /// Draws one sample from `Lap(num/den)`.
    pub fn sample(&self, src: &mut dyn ByteSource) -> i64 {
        loop {
            let (b, m) = self.sample_loop(src);
            if b && m == 0 {
                continue; // reject (+, 0): it double-counts zero
            }
            let mag = i64::try_from(m).expect("sample magnitude exceeds i64");
            return if b { -mag } else { mag };
        }
    }
}

/// A fused discrete Gaussian sampler with precomputed parameters.
///
/// Distribution-identical (and byte-stream-identical) to
/// [`discrete_gaussian`](crate::discrete_gaussian); the "Compiled
/// (Optimized)" series of the paper's Fig. 5.
///
/// # Examples
///
/// ```
/// use sampcert_samplers::{FusedGaussian, LaplaceAlg};
/// use sampcert_slang::SeededByteSource;
///
/// let gauss = FusedGaussian::new(10, 1, LaplaceAlg::Switched); // σ = 10
/// let mut src = SeededByteSource::new(0);
/// let _z: i64 = gauss.sample(&mut src);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FusedGaussian {
    num_sq: u128,
    den_sq: u128,
    t: u64,
    lap: FusedLaplace,
}

impl FusedGaussian {
    /// Creates a sampler for `N_ℤ(0, (num/den)²)`.
    ///
    /// # Panics
    ///
    /// Panics if `num` or `den` is zero, or if `num` exceeds `2³²` (use the
    /// `SLang` sampler for extreme scales).
    pub fn new(num: u64, den: u64, alg: LaplaceAlg) -> Self {
        assert!(num > 0 && den > 0, "FusedGaussian: zero sigma parameter");
        assert!(
            num < (1 << 32),
            "FusedGaussian: sigma too large for the fused path"
        );
        let t = num / den + 1;
        FusedGaussian {
            num_sq: (num as u128) * (num as u128),
            den_sq: (den as u128) * (den as u128),
            t,
            lap: FusedLaplace::new(t, 1, alg),
        }
    }

    /// Draws one sample from `N_ℤ(0, σ²)`.
    pub fn sample(&self, src: &mut dyn ByteSource) -> i64 {
        loop {
            let y = self.lap.sample(src);
            let abs_y = y.unsigned_abs() as u128;
            let lhs = abs_y * self.t as u128 * self.den_sq;
            let diff = lhs.abs_diff(self.num_sq);
            let sq = diff
                .checked_mul(diff)
                .expect("fused sampler parameter overflow");
            let bound = 2u128
                .checked_mul(self.num_sq)
                .and_then(|v| v.checked_mul((self.t as u128) * (self.t as u128)))
                .and_then(|v| v.checked_mul(self.den_sq))
                .expect("fused sampler parameter overflow");
            if bernoulli_exp_neg_u128(sq, bound, src) {
                return y;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{discrete_gaussian, discrete_laplace};
    use sampcert_arith::Nat;
    use sampcert_slang::{Sampling, SeededByteSource};

    /// The decisive test: fused and monadic samplers consume the *same*
    /// byte stream and must produce the *same* outputs.
    #[test]
    fn laplace_fused_equals_monadic_bytewise() {
        for (num, den, alg) in [
            (1u64, 1u64, LaplaceAlg::Geometric),
            (5, 2, LaplaceAlg::Geometric),
            (5, 2, LaplaceAlg::Uniform),
            (40, 3, LaplaceAlg::Uniform),
            (40, 3, LaplaceAlg::Switched),
        ] {
            let fused = FusedLaplace::new(num, den, alg);
            let monadic = discrete_laplace::<Sampling>(&Nat::from(num), &Nat::from(den), alg);
            let mut s1 = SeededByteSource::new(123);
            let mut s2 = SeededByteSource::new(123);
            for i in 0..2000 {
                let a = fused.sample(&mut s1);
                let b = monadic.run(&mut s2);
                assert_eq!(a, b, "divergence at draw {i} ({num}/{den}, {alg:?})");
            }
        }
    }

    #[test]
    fn gaussian_fused_equals_monadic_bytewise() {
        for (num, den, alg) in [
            (1u64, 1u64, LaplaceAlg::Geometric),
            (7, 2, LaplaceAlg::Switched),
            (25, 1, LaplaceAlg::Uniform),
            (50, 1, LaplaceAlg::Switched),
        ] {
            let fused = FusedGaussian::new(num, den, alg);
            let monadic = discrete_gaussian::<Sampling>(&Nat::from(num), &Nat::from(den), alg);
            let mut s1 = SeededByteSource::new(321);
            let mut s2 = SeededByteSource::new(321);
            for i in 0..500 {
                let a = fused.sample(&mut s1);
                let b = monadic.run(&mut s2);
                assert_eq!(a, b, "divergence at draw {i} (σ={num}/{den}, {alg:?})");
            }
        }
    }

    /// Regression: `uniform_below_u128(n)` with `n > 2^127` needs a full
    /// 128-bit draw, and the old mask `(1u128 << bits) - 1` was shift
    /// overflow at `bits = 128` — a panic in debug builds and a wrap to a
    /// zero mask (every draw 0) in release builds. Must pass under both
    /// profiles and agree with the monadic sampler byte-for-byte.
    #[test]
    fn uniform_below_at_the_u128_shift_boundary() {
        for n in [
            (1u128 << 127) - 1, // bit length 127: last safe mask width
            1u128 << 127,       // bit length 128: first overflowing width
            (1u128 << 127) + 1,
            u128::MAX,
        ] {
            let prog = crate::uniform::uniform_below::<Sampling>(&Nat::from(n));
            let mut s1 = SeededByteSource::new(77);
            let mut s2 = SeededByteSource::new(77);
            for i in 0..64 {
                let a = uniform_below_u128(n, &mut s1);
                let b: Nat = prog.run(&mut s2);
                assert_eq!(Nat::from(a), b, "divergence at draw {i} (n = {n:#x})");
            }
        }
    }

    #[test]
    fn switched_resolution_matches() {
        assert_eq!(
            FusedLaplace::new(SWITCH_SCALE, 1, LaplaceAlg::Switched).algorithm(),
            LaplaceAlg::Uniform
        );
        assert_eq!(
            FusedLaplace::new(SWITCH_SCALE - 1, 1, LaplaceAlg::Switched).algorithm(),
            LaplaceAlg::Geometric
        );
    }

    #[test]
    fn fused_gaussian_moments() {
        let g = FusedGaussian::new(20, 1, LaplaceAlg::Switched);
        let mut src = SeededByteSource::new(99);
        let n = 30_000;
        let (mut sum, mut sumsq) = (0f64, 0f64);
        for _ in 0..n {
            let z = g.sample(&mut src) as f64;
            sum += z;
            sumsq += z * z;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.5, "mean={mean}");
        assert!((var - 400.0).abs() / 400.0 < 0.05, "var={var}");
    }

    #[test]
    #[should_panic(expected = "zero sigma parameter")]
    fn zero_sigma_rejected() {
        let _ = FusedGaussian::new(0, 1, LaplaceAlg::Switched);
    }
}
