//! Batched noise constructors: build the program once, draw many times.
//!
//! The paper's headline evaluation (Fig. 4) is about *throughput*: verified
//! samplers fast enough to serve production noise. A serving loop that
//! reconstructs the sampler — or even just re-enters the generic
//! program tree — per draw leaves most of that throughput on the table.
//! The `*_many` constructors here amortize everything amortizable across a
//! batch of `n` i.i.d. draws:
//!
//! - **program construction** happens once per batch, not once per draw
//!   (`⌊σ⌋`, squared parameters, the closure tree);
//! - **execution** goes through the fused fast path
//!   ([`FusedGaussian`](crate::FusedGaussian) /
//!   [`FusedLaplace`](crate::FusedLaplace) / the `u128` uniform loop)
//!   whenever the parameters sit safely inside its machine-word regime
//!   (a conservative `2²⁶` box for the Gaussian — see
//!   `FUSED_GAUSS_LIMIT`); parameters outside it run the **compiled
//!   tier** — the extracted bytecode from `sampcert_extract`, compiled
//!   once per parameter box (see [`compiled`](crate::compiled)) and
//!   executed on the stack VM — and only when a parameter is implausibly
//!   wide (see `COMPILED_BITS_LIMIT`) or the VM reports an arithmetic
//!   fault does the batch fall back to the general `SLang` program,
//!   drawn via [`run_into`](sampcert_slang::SLang::run_into);
//! - **output allocation** is reused: every function has a `*_into`
//!   variant appending to a caller-retained buffer.
//!
//! Batching is invisible to the distribution *and* to the entropy stream:
//! each `*_many` consumes exactly the bytes that `n` sequential
//! single-draw `run`s would, and produces exactly the same values — pinned
//! by the equality tests below (the fused/monadic byte equality is
//! established in [`direct`](crate::FusedGaussian)'s tests, and re-checked
//! here through the batch entry points).

use crate::compiled::{self, value_to_i64, value_to_nat};
use crate::direct::{uniform_below_u128, FusedGaussian, FusedLaplace};
use crate::gaussian::discrete_gaussian;
use crate::laplace::{discrete_laplace, LaplaceAlg};
use crate::uniform::uniform_below;
use sampcert_arith::Nat;
use sampcert_extract::{Value, Vm};
use sampcert_slang::{ByteSource, Sampling};

/// Upper bound (exclusive) on `num` *and* `den` for dispatching to the
/// fused Gaussian fast path.
///
/// Deliberately tighter than [`FusedGaussian::new`]'s own `num < 2³²`
/// admission: with both parameters below 2²⁶, every intermediate in the
/// fused acceptance test (`2·num²·t²·den²` and the squared difference,
/// whose extreme is `(|Y|·t·den²)²`) stays far inside `u128` for any
/// remotely reachable `|Y|`, so the fast path cannot hit the fused
/// sampler's checked-overflow aborts on parameters the general `SLang`
/// program handles fine — which would break the batch-equals-sequential
/// contract. Parameters outside the box take the general program.
const FUSED_GAUSS_LIMIT: u64 = 1 << 26;

/// Upper bound (inclusive) on a parameter's bit length for dispatching to
/// the compiled-bytecode tier.
///
/// The compiled tier embeds the parameters (and, for the Gaussian, their
/// squares and the acceptance bound `2·num²·t²·den²`) as constants in the
/// cached bytecode, so cache memory and compile time grow with the
/// parameter width. A megabit per parameter covers every plausible noise
/// scale — the differential suite runs 128-limb (8192-bit) parameters
/// through this tier — while keeping the cache bounded against
/// adversarially wide inputs, which take the (allocation-free-to-build)
/// general program instead.
const COMPILED_BITS_LIMIT: u64 = 1 << 20;

/// Runs `n` draws on the compiled VM, converting each result with
/// `convert`; if the VM faults (it cannot on the registered sampler
/// programs — this is defense in depth), the remaining draws are handed
/// to `fallback`.
fn compiled_draws_into<T>(
    vm: &Vm,
    n: usize,
    src: &mut dyn ByteSource,
    out: &mut Vec<T>,
    convert: impl Fn(&Value) -> T,
    fallback: impl FnOnce(usize, &mut dyn ByteSource, &mut Vec<T>),
) {
    for i in 0..n {
        match vm.try_run(src) {
            Ok(v) => out.push(convert(&v)),
            Err(_) => return fallback(n - i, src, out),
        }
    }
}

/// Draws `n` i.i.d. discrete Gaussian samples `N_ℤ(0, (num/den)²)`,
/// appending them to `out`.
///
/// Builds the sampler once and reuses it for the whole batch; see the
/// module-level docs above for the amortization and byte-stream
/// contract.
///
/// # Panics
///
/// Panics if `num` or `den` is zero.
pub fn discrete_gaussian_many_into(
    num: &Nat,
    den: &Nat,
    alg: LaplaceAlg,
    n: usize,
    src: &mut dyn ByteSource,
    out: &mut Vec<i64>,
) {
    assert!(
        !num.is_zero() && !den.is_zero(),
        "discrete_gaussian: zero sigma parameter"
    );
    out.reserve(n);
    match (num.to_u64(), den.to_u64()) {
        (Some(nu), Some(de)) if nu < FUSED_GAUSS_LIMIT && de < FUSED_GAUSS_LIMIT => {
            let g = FusedGaussian::new(nu, de, alg);
            for _ in 0..n {
                out.push(g.sample(src));
            }
        }
        _ if num.bit_length() <= COMPILED_BITS_LIMIT && den.bit_length() <= COMPILED_BITS_LIMIT => {
            let vm = Vm::shared(compiled::gaussian_bytecode(num, den, alg));
            compiled_draws_into(&vm, n, src, out, value_to_i64, |rest, src, out| {
                discrete_gaussian::<Sampling>(num, den, alg).run_into(rest, src, out);
            });
        }
        _ => discrete_gaussian::<Sampling>(num, den, alg).run_into(n, src, out),
    }
}

/// Draws `n` i.i.d. discrete Gaussian samples `N_ℤ(0, (num/den)²)`.
///
/// # Panics
///
/// Panics if `num` or `den` is zero.
///
/// # Examples
///
/// ```
/// use sampcert_samplers::{discrete_gaussian_many, LaplaceAlg};
/// use sampcert_arith::Nat;
/// use sampcert_slang::SeededByteSource;
///
/// let mut src = SeededByteSource::new(0);
/// let noise = discrete_gaussian_many(
///     &Nat::from(64u64),
///     &Nat::one(),
///     LaplaceAlg::Switched,
///     1024,
///     &mut src,
/// );
/// assert_eq!(noise.len(), 1024);
/// ```
pub fn discrete_gaussian_many(
    num: &Nat,
    den: &Nat,
    alg: LaplaceAlg,
    n: usize,
    src: &mut dyn ByteSource,
) -> Vec<i64> {
    let mut out = Vec::new();
    discrete_gaussian_many_into(num, den, alg, n, src, &mut out);
    out
}

/// Draws `n` i.i.d. discrete Laplace samples with scale `num/den`,
/// appending them to `out`.
///
/// # Panics
///
/// Panics if `num` or `den` is zero.
pub fn discrete_laplace_many_into(
    num: &Nat,
    den: &Nat,
    alg: LaplaceAlg,
    n: usize,
    src: &mut dyn ByteSource,
    out: &mut Vec<i64>,
) {
    assert!(
        !num.is_zero() && !den.is_zero(),
        "discrete_laplace: zero scale parameter"
    );
    out.reserve(n);
    match (num.to_u64(), den.to_u64()) {
        (Some(nu), Some(de)) => {
            let l = FusedLaplace::new(nu, de, alg);
            for _ in 0..n {
                out.push(l.sample(src));
            }
        }
        _ if num.bit_length() <= COMPILED_BITS_LIMIT && den.bit_length() <= COMPILED_BITS_LIMIT => {
            let vm = Vm::shared(compiled::laplace_bytecode(num, den, alg));
            compiled_draws_into(&vm, n, src, out, value_to_i64, |rest, src, out| {
                discrete_laplace::<Sampling>(num, den, alg).run_into(rest, src, out);
            });
        }
        _ => discrete_laplace::<Sampling>(num, den, alg).run_into(n, src, out),
    }
}

/// Draws `n` i.i.d. discrete Laplace samples with scale `num/den`.
///
/// # Panics
///
/// Panics if `num` or `den` is zero.
///
/// # Examples
///
/// ```
/// use sampcert_samplers::{discrete_laplace_many, LaplaceAlg};
/// use sampcert_arith::Nat;
/// use sampcert_slang::SeededByteSource;
///
/// // Scale 5/2, one program built for the whole batch.
/// let mut src = SeededByteSource::new(1);
/// let noise = discrete_laplace_many(
///     &Nat::from(5u64),
///     &Nat::from(2u64),
///     LaplaceAlg::Switched,
///     256,
///     &mut src,
/// );
/// assert_eq!(noise.len(), 256);
/// ```
pub fn discrete_laplace_many(
    num: &Nat,
    den: &Nat,
    alg: LaplaceAlg,
    n: usize,
    src: &mut dyn ByteSource,
) -> Vec<i64> {
    let mut out = Vec::new();
    discrete_laplace_many_into(num, den, alg, n, src, &mut out);
    out
}

/// Draws `n` i.i.d. exact uniform samples on `[0, bound)`, appending them
/// to `out`.
///
/// # Panics
///
/// Panics if `bound` is zero.
pub fn uniform_below_many_into(
    bound: &Nat,
    n: usize,
    src: &mut dyn ByteSource,
    out: &mut Vec<Nat>,
) {
    assert!(!bound.is_zero(), "uniform_below: empty range");
    out.reserve(n);
    match bound.to_u64() {
        Some(b) => {
            for _ in 0..n {
                out.push(Nat::from(uniform_below_u128(b as u128, src) as u64));
            }
        }
        None if bound.bit_length() <= COMPILED_BITS_LIMIT => {
            let vm = Vm::shared(compiled::uniform_below_bytecode(bound));
            compiled_draws_into(&vm, n, src, out, value_to_nat, |rest, src, out| {
                uniform_below::<Sampling>(bound).run_into(rest, src, out);
            });
        }
        None => uniform_below::<Sampling>(bound).run_into(n, src, out),
    }
}

/// Draws `n` i.i.d. exact uniform samples on `[0, bound)`.
///
/// # Panics
///
/// Panics if `bound` is zero.
///
/// # Examples
///
/// ```
/// use sampcert_samplers::uniform_below_many;
/// use sampcert_arith::Nat;
/// use sampcert_slang::SeededByteSource;
///
/// let mut src = SeededByteSource::new(9);
/// let draws = uniform_below_many(&Nat::from(1000u64), 64, &mut src);
/// assert!(draws.iter().all(|v| v < &Nat::from(1000u64)));
/// ```
pub fn uniform_below_many(bound: &Nat, n: usize, src: &mut dyn ByteSource) -> Vec<Nat> {
    let mut out = Vec::new();
    uniform_below_many_into(bound, n, src, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sampcert_slang::{CountingByteSource, SeededByteSource};

    fn nat(v: u64) -> Nat {
        Nat::from(v)
    }

    fn multilimb(seed: u64) -> Nat {
        // Deterministic > 64-bit operand.
        &(&Nat::from(u64::MAX) * &Nat::from(seed)) + &Nat::from(seed ^ 0xABCD)
    }

    fn limbs(k: u32, seed: u64) -> Nat {
        // Deterministic k-limb operand: top bit of limb k set, seed folded
        // into the low limb (odd, so it never collapses to a power of two).
        &(Nat::one() << (64 * k - 1)) + &Nat::from(seed * 2 + 1)
    }

    /// The batch contract, checked per API: `*_many` must equal `n`
    /// sequential runs of the single-draw program — same values, same
    /// bytes — on both the fused and the fallback parameter regimes.
    #[test]
    fn gaussian_many_equals_sequential_runs_bytewise() {
        for (num, den, alg, n) in [
            (nat(4), nat(1), LaplaceAlg::Switched, 300usize),
            (nat(64), nat(1), LaplaceAlg::Switched, 200),
            (nat(7), nat(2), LaplaceAlg::Geometric, 200),
            (nat(25), nat(3), LaplaceAlg::Uniform, 200),
            // num ≥ 2^26: exercises the general-program fallback.
            (nat(1 << 33), nat(1), LaplaceAlg::Switched, 4),
            // σ = 2^32 − 1 is admitted by FusedGaussian::new, but its
            // u128 acceptance bound 2·num²·t²·den² overflows on the very
            // first sample; the dispatch guard must route it to the
            // general program, which handles it.
            (nat((1 << 32) - 1), nat(1), LaplaceAlg::Switched, 3),
            // Large denominator past the fused box (σ = 3): fallback.
            (nat(3 << 26), nat(1 << 26), LaplaceAlg::Switched, 50),
            // Multi-limb parameters through the compiled tier (σ = 1/4
            // keeps t = 1 and magnitudes tiny; widths ramp to 128 limbs).
            (limbs(8, 9), &limbs(8, 9) * &nat(4), LaplaceAlg::Switched, 6),
            (
                limbs(32, 11),
                &limbs(32, 11) * &nat(4),
                LaplaceAlg::Switched,
                3,
            ),
            (
                limbs(128, 13),
                &limbs(128, 13) * &nat(4),
                LaplaceAlg::Switched,
                2,
            ),
        ] {
            let prog = discrete_gaussian::<Sampling>(&num, &den, alg);
            let mut seq_src = CountingByteSource::new(SeededByteSource::new(42));
            let seq: Vec<i64> = (0..n).map(|_| prog.run(&mut seq_src)).collect();
            let mut batch_src = CountingByteSource::new(SeededByteSource::new(42));
            let batch = discrete_gaussian_many(&num, &den, alg, n, &mut batch_src);
            assert_eq!(batch, seq, "values ({num:?}/{den:?}, {alg:?})");
            assert_eq!(
                batch_src.bytes_read(),
                seq_src.bytes_read(),
                "bytes ({num:?}/{den:?}, {alg:?})"
            );
        }
    }

    #[test]
    fn laplace_many_equals_sequential_runs_bytewise() {
        for (num, den, alg, n) in [
            (nat(1), nat(1), LaplaceAlg::Geometric, 400usize),
            (nat(5), nat(2), LaplaceAlg::Switched, 300),
            (nat(40), nat(3), LaplaceAlg::Uniform, 300),
            // Large single-limb scale: pins the fused uniform loop's u128
            // arithmetic against the general program where the existing
            // direct.rs equality tests stop at scale 40/3.
            (nat(1_000_000), nat(1), LaplaceAlg::Switched, 100),
            // Multi-limb parameters (scale 1/2, so magnitudes stay small):
            // exercises the compiled-bytecode tier.
            (
                multilimb(3),
                &multilimb(3) * &nat(2),
                LaplaceAlg::Switched,
                50,
            ),
            // The compiled tier across the limb ladder (scale 1/2 keeps
            // magnitudes word-sized; draw counts shrink with the width).
            (
                limbs(8, 3),
                &limbs(8, 3) * &nat(2),
                LaplaceAlg::Switched,
                12,
            ),
            (
                limbs(32, 5),
                &limbs(32, 5) * &nat(2),
                LaplaceAlg::Switched,
                6,
            ),
            (
                limbs(128, 7),
                &limbs(128, 7) * &nat(2),
                LaplaceAlg::Switched,
                3,
            ),
        ] {
            let prog = discrete_laplace::<Sampling>(&num, &den, alg);
            let mut seq_src = CountingByteSource::new(SeededByteSource::new(7));
            let seq: Vec<i64> = (0..n).map(|_| prog.run(&mut seq_src)).collect();
            let mut batch_src = CountingByteSource::new(SeededByteSource::new(7));
            let batch = discrete_laplace_many(&num, &den, alg, n, &mut batch_src);
            assert_eq!(batch, seq, "values ({num:?}/{den:?}, {alg:?})");
            assert_eq!(
                batch_src.bytes_read(),
                seq_src.bytes_read(),
                "bytes ({num:?}/{den:?}, {alg:?})"
            );
        }
    }

    #[test]
    fn uniform_many_equals_sequential_runs_bytewise() {
        for (bound, n) in [
            (nat(5), 500usize),
            (nat(256), 300),
            (nat(1_000_003), 300),
            (multilimb(9), 20),
            // The compiled tier across the limb ladder.
            (limbs(8, 1), 16),
            (limbs(32, 1), 8),
            (limbs(128, 1), 4),
        ] {
            let prog = uniform_below::<Sampling>(&bound);
            let mut seq_src = CountingByteSource::new(SeededByteSource::new(13));
            let seq: Vec<Nat> = (0..n).map(|_| prog.run(&mut seq_src)).collect();
            let mut batch_src = CountingByteSource::new(SeededByteSource::new(13));
            let batch = uniform_below_many(&bound, n, &mut batch_src);
            assert_eq!(batch, seq, "values (bound {bound:?})");
            assert_eq!(
                batch_src.bytes_read(),
                seq_src.bytes_read(),
                "bytes (bound {bound:?})"
            );
        }
    }

    #[test]
    fn into_variants_append_and_reuse_buffer() {
        let mut src = SeededByteSource::new(1);
        let mut out = Vec::new();
        discrete_gaussian_many_into(
            &nat(4),
            &nat(1),
            LaplaceAlg::Switched,
            10,
            &mut src,
            &mut out,
        );
        assert_eq!(out.len(), 10);
        let cap = out.capacity();
        out.clear();
        discrete_gaussian_many_into(
            &nat(4),
            &nat(1),
            LaplaceAlg::Switched,
            10,
            &mut src,
            &mut out,
        );
        assert_eq!(out.len(), 10);
        assert_eq!(out.capacity(), cap, "buffer reallocated on reuse");
    }

    #[test]
    fn batch_moments_sane() {
        let mut src = SeededByteSource::new(99);
        let draws =
            discrete_gaussian_many(&nat(5), &nat(1), LaplaceAlg::Switched, 30_000, &mut src);
        let n = draws.len() as f64;
        let mean = draws.iter().map(|&z| z as f64).sum::<f64>() / n;
        let var = draws
            .iter()
            .map(|&z| (z as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        assert!(mean.abs() < 0.15, "mean={mean}");
        assert!((var - 25.0).abs() / 25.0 < 0.05, "var={var}");
    }

    #[test]
    #[should_panic(expected = "zero sigma parameter")]
    fn gaussian_many_rejects_zero_sigma() {
        let mut src = SeededByteSource::new(0);
        let _ = discrete_gaussian_many(&Nat::zero(), &nat(1), LaplaceAlg::Switched, 1, &mut src);
    }

    #[test]
    #[should_panic(expected = "zero scale parameter")]
    fn laplace_many_rejects_zero_scale() {
        let mut src = SeededByteSource::new(0);
        let _ = discrete_laplace_many(&nat(1), &Nat::zero(), LaplaceAlg::Switched, 1, &mut src);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn uniform_many_rejects_zero_bound() {
        let mut src = SeededByteSource::new(0);
        let _ = uniform_below_many(&Nat::zero(), 1, &mut src);
    }
}
