//! # sampcert-samplers
//!
//! Exact discrete sampling algorithms (paper Sections 3.2–3.3): the
//! Canonne–Kamath–Steinke discrete Laplace and Gaussian samplers, together
//! with the uniform/Bernoulli/geometric building blocks they bootstrap from
//! a single byte primitive.
//!
//! Every sampler is written **once**, generically over a
//! [`sampcert_slang::Interp`], so the program that executes in production
//! ([`Sampling`](sampcert_slang::Sampling)) is the very term whose exact
//! mass function is computed and compared against the closed-form PMFs in
//! [`pmf`] ([`Mass`](sampcert_slang::Mass)) — the reproduction's stand-in
//! for SampCert's Lean correctness proofs. The [`FusedLaplace`] /
//! [`FusedGaussian`] types are the hand-compiled fast path (the analogue of
//! the paper's C++ extraction), checked byte-for-byte equal to the generic
//! programs.
//!
//! ## Quick start
//!
//! ```
//! use sampcert_samplers::{discrete_gaussian, LaplaceAlg};
//! use sampcert_arith::Nat;
//! use sampcert_slang::{OsByteSource, Sampling};
//!
//! // σ = 12.5, optimized loop selection, OS entropy.
//! let gauss = discrete_gaussian::<Sampling>(
//!     &Nat::from(25u64),
//!     &Nat::from(2u64),
//!     LaplaceAlg::Switched,
//! );
//! let mut src = OsByteSource::new();
//! let noise: i64 = gauss.run(&mut src);
//! let _ = noise;
//! ```

mod batch;
mod bernoulli;
mod compiled;
mod direct;
mod gaussian;
mod geometric;
mod helpers;
mod laplace;
pub mod pmf;
mod uniform;

pub use batch::{
    discrete_gaussian_many, discrete_gaussian_many_into, discrete_laplace_many,
    discrete_laplace_many_into, uniform_below_many, uniform_below_many_into,
};
pub use bernoulli::{bernoulli, bernoulli_exp_neg, bernoulli_exp_neg_unit};
pub use direct::{FusedGaussian, FusedLaplace};
pub use gaussian::{discrete_gaussian, discrete_gaussian_shifted, gaussian_loop};
pub use geometric::{geometric, geometric_pmf};
pub use laplace::{
    discrete_laplace, laplace_loop_geometric, laplace_loop_uniform, LaplaceAlg, SWITCH_SCALE,
};
pub use uniform::{uniform_below, uniform_pow2};
