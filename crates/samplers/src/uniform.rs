//! Exact uniform sampling from random bytes.
//!
//! The paper bootstraps *all* randomness from `probUniformByte`
//! (Section 3.1): a power-of-two uniform is assembled from whole bytes, and
//! `probUniform n` — uniform on `[0, n)` — is obtained by rejection inside
//! a `probUntil` loop. Appendix C attributes the runtime spikes of Fig. 4
//! and the entropy spikes of Fig. 6 to exactly this process: crossing a
//! power of two doubles the rejection rate, and whole-byte consumption
//! quantizes the draw size. Both effects are reproduced faithfully here.

use sampcert_arith::Nat;
use sampcert_slang::{map, until, Interp};

/// Uniform sample on `[0, 2^bits)`, consuming `⌈bits/8⌉` whole bytes.
///
/// The result is masked down to `bits` bits; the surplus high bits of the
/// final byte are discarded, mirroring SampCert's byte-level bootstrap
/// (reading whole bytes keeps the trusted primitive trivial — the paper's
/// argument for `probUniformByte` over bit-twiddled integers).
///
/// # Examples
///
/// ```
/// use sampcert_samplers::uniform_pow2;
/// use sampcert_slang::{Mass, MassCtx, Weight};
/// use sampcert_arith::Rat;
///
/// let d = uniform_pow2::<Mass<Rat>>(3).eval(&MassCtx::new(1));
/// assert_eq!(d.support_len(), 8);
/// assert_eq!(d.mass(&2u64.into()), Rat::from_ratio(1, 8));
/// ```
pub fn uniform_pow2<I: Interp>(bits: u64) -> I::Repr<Nat> {
    if bits == 0 {
        return I::pure(Nat::zero());
    }
    let n_bytes = bits.div_ceil(8);
    // Fold bytes straight into the accumulating natural (`acc·256 + b` per
    // byte) instead of snowballing a `Vec<u8>` through the bind chain: the
    // sampling path then does O(1) work per byte for all bounds up to a
    // limb (and one limb-sized shift for larger ones), where the byte
    // vector cost two clones of the whole prefix per byte. Byte order and
    // the final masking are unchanged, so the consumed byte stream — and
    // with it the fused-sampler equality — is identical.
    let mut acc: I::Repr<Nat> = I::pure(Nat::zero());
    for _ in 0..n_bytes {
        acc = I::bind(acc, move |n| {
            let n = n.clone();
            map::<I, _, _>(I::uniform_byte(), move |&b| n.push_be_byte(b))
        });
    }
    map::<I, _, _>(acc, move |n| n.low_bits(bits))
}

/// `probUniform n`: exact uniform sample on `[0, n)` by rejection.
///
/// Draws `uniform_pow2(bitlength(n))` and retries until the draw is below
/// `n`. The expected number of attempts is `2^bits / n ∈ [1, 2)`, doubling
/// as `n` crosses each power of two — the cause of the spikes in the
/// paper's Figs. 4 and 6.
///
/// # Panics
///
/// Panics (at program construction) if `n` is zero.
///
/// # Examples
///
/// ```
/// use sampcert_samplers::uniform_below;
/// use sampcert_arith::Nat;
/// use sampcert_slang::{eval_to_stability, Mass};
///
/// let d = eval_to_stability(&uniform_below::<Mass<f64>>(&Nat::from(5u64)), 8, 1 << 12, 1e-12)
///     .expect("stabilizes")
///     .dist;
/// assert!((d.mass(&3u64.into()) - 0.2).abs() < 1e-9);
/// assert_eq!(d.mass(&5u64.into()), 0.0);
/// ```
pub fn uniform_below<I: Interp>(n: &Nat) -> I::Repr<Nat> {
    assert!(!n.is_zero(), "uniform_below: empty range");
    let bits = n.bit_length();
    let bound = n.clone();
    until::<I, _>(uniform_pow2::<I>(bits), move |v| *v < bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sampcert_arith::Rat;
    use sampcert_slang::{
        eval_to_stability, CountingByteSource, CyclicByteSource, Mass, MassCtx, Sampling,
        SeededByteSource,
    };

    fn nat(v: u64) -> Nat {
        Nat::from(v)
    }

    #[test]
    fn pow2_zero_bits_is_constant_zero() {
        let d = uniform_pow2::<Mass<f64>>(0).eval(&MassCtx::new(1));
        assert_eq!(d.mass(&Nat::zero()), 1.0);
    }

    #[test]
    fn pow2_exact_distribution() {
        // 4 bits: 16 equally likely values, exactly 1/16 each.
        let d = uniform_pow2::<Mass<Rat>>(4).eval(&MassCtx::new(1));
        assert_eq!(d.support_len(), 16);
        for v in 0u64..16 {
            assert_eq!(d.mass(&nat(v)), Rat::from_ratio(1, 16));
        }
        assert_eq!(d.total_mass(), Rat::one());
    }

    #[test]
    fn pow2_consumes_whole_bytes() {
        let prog = uniform_pow2::<Sampling>(9); // needs 2 bytes
        let mut src = CountingByteSource::new(SeededByteSource::new(0));
        let _ = prog.run(&mut src);
        assert_eq!(src.bytes_read(), 2);

        let prog = uniform_pow2::<Sampling>(8);
        let mut src = CountingByteSource::new(SeededByteSource::new(0));
        let _ = prog.run(&mut src);
        assert_eq!(src.bytes_read(), 1);
    }

    #[test]
    fn pow2_byte_order_and_masking() {
        // Script bytes 0xAB, 0xCD; 12 bits keeps the low 12 of 0xABCD.
        let prog = uniform_pow2::<Sampling>(12);
        let mut src = CyclicByteSource::new(vec![0xAB, 0xCD]);
        assert_eq!(prog.run(&mut src), nat(0x0ABCD & 0xFFF));
    }

    #[test]
    fn uniform_below_exact_distribution() {
        // n = 5 needs 3 bits; conditioned on < 5 each point has mass 1/5.
        let prog = uniform_below::<Mass<Rat>>(&nat(5));
        let d = prog.eval_with_fuel(64);
        // At a finite cut the masses are dyadic partial sums; normalize the
        // f64 view for an approximate check and the stable limit for exact.
        let stable = eval_to_stability(&uniform_below::<Mass<f64>>(&nat(5)), 8, 1 << 14, 1e-13)
            .expect("stabilizes")
            .dist;
        for v in 0u64..5 {
            assert!((stable.mass(&nat(v)) - 0.2).abs() < 1e-9);
            assert!(d.mass(&nat(v)) > Rat::zero());
        }
        assert_eq!(stable.mass(&nat(5)), 0.0);
        assert_eq!(stable.mass(&nat(7)), 0.0);
    }

    /// Bit-length semantics at a power-of-two bound (the paper's
    /// `probUniform`): 256 = 2^8 has bit length 9, so each attempt draws 2
    /// whole bytes from `[0, 512)` and is accepted with probability 1/2 —
    /// the bound does *not* get the reject-free 8-bit treatment. 100 draws
    /// therefore cost `2 bytes × Geometric(1/2)` attempts each: at least
    /// 200 bytes, and within [200, 600] except with probability < 10⁻¹²
    /// (the draw count is deterministic under this seed anyway). The upper
    /// bound is the rejection-rate regression guard: a sampler that starts
    /// rejecting more than the bit-length semantics implies fails it.
    #[test]
    fn uniform_below_power_of_two_uses_bit_length_plus_one_bits() {
        let prog = uniform_below::<Sampling>(&nat(256));
        let mut src = CountingByteSource::new(SeededByteSource::new(1));
        for _ in 0..100 {
            let _ = prog.run(&mut src);
        }
        assert!(src.bytes_read() >= 200, "bytes={}", src.bytes_read());
        assert!(src.bytes_read() <= 600, "bytes={}", src.bytes_read());
    }

    #[test]
    fn uniform_below_rejects_big_draws() {
        // Bound 5 (3 bits). Script: 7 (rejected), 6 (rejected), 2 (accepted).
        let prog = uniform_below::<Sampling>(&nat(5));
        let mut src = CyclicByteSource::new(vec![0b0000_0111, 0b0000_0110, 0b0000_0010]);
        assert_eq!(prog.run(&mut src), nat(2));
    }

    #[test]
    fn uniform_below_large_bound_multilimb() {
        // A bound beyond u64: sampling still works and stays below it.
        let bound = &(&Nat::from(u64::MAX) * &nat(1000)) + &nat(17);
        let prog = uniform_below::<Sampling>(&bound);
        let mut src = SeededByteSource::new(42);
        for _ in 0..50 {
            assert!(prog.run(&mut src) < bound);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn uniform_below_zero_panics() {
        let _ = uniform_below::<Sampling>(&Nat::zero());
    }

    #[test]
    fn sampling_matches_mass_statistically() {
        // Empirical frequencies vs exact masses for n = 6.
        let prog = uniform_below::<Sampling>(&nat(6));
        let mut src = SeededByteSource::new(7);
        let n = 60_000usize;
        let mut counts = [0u64; 6];
        for _ in 0..n {
            let v = prog.run(&mut src).to_u64().unwrap();
            counts[v as usize] += 1;
        }
        for c in counts {
            let freq = c as f64 / n as f64;
            assert!((freq - 1.0 / 6.0).abs() < 0.01, "freq={freq}");
        }
    }
}
