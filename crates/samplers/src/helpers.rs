//! Small shared helpers for the sampler programs.

use sampcert_arith::Nat;

/// Converts a natural to `i64`.
///
/// # Panics
///
/// Panics if the value does not fit; sampler outputs only exceed `i64` for
/// astronomically large noise scales (documented on the public samplers).
pub(crate) fn nat_to_i64(v: &Nat) -> i64 {
    i64::try_from(v.to_u64().expect("sample magnitude exceeds u64 range"))
        .expect("sample magnitude exceeds i64 range")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nat_conversion() {
        assert_eq!(nat_to_i64(&Nat::from(7u64)), 7);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn nat_conversion_overflow_panics() {
        let _ = nat_to_i64(&Nat::from(u64::MAX));
    }
}
