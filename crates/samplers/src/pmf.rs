//! Closed-form PMFs of the discrete noise distributions.
//!
//! These are the right-hand sides of the paper's correctness theorems: the
//! samplers' operational behaviour (both the executable and mass-function
//! interpretations) is checked against these formulas throughout the test
//! suite, and the differential-privacy layer reasons about mechanisms via
//! these forms — exactly the paper's proof architecture, where "once we
//! have the equation characterizing the PMF, our proof of DP does not need
//! to reason explicitly about the computational parts of the algorithm".

use sampcert_slang::SubPmf;

/// Eq. (6): the discrete Laplace PMF with scale `t`,
/// `Lap_t(z) = (e^{1/t}−1)/(e^{1/t}+1) · e^{−|z|/t}`.
///
/// # Panics
///
/// Panics if `t` is not strictly positive.
pub fn laplace_pmf(t: f64, z: i64) -> f64 {
    assert!(t > 0.0, "laplace_pmf: scale must be positive");
    let e = (1.0 / t).exp();
    (e - 1.0) / (e + 1.0) * (-(z.abs() as f64) / t).exp()
}

/// The discrete Laplace CDF `P(Z ≤ z)` with scale `t`, in closed form.
///
/// For `z < 0`: geometric series from the left tail; for `z ≥ 0`: one minus
/// the right tail. Used by the Kolmogorov–Smirnov validation of the
/// extracted samplers (paper, footnote 10).
pub fn laplace_cdf(t: f64, z: i64) -> f64 {
    assert!(t > 0.0, "laplace_cdf: scale must be positive");
    let s = (-1.0 / t).exp();
    let c = (1.0 - s) / (1.0 + s);
    if z < 0 {
        // Σ_{k ≤ z} c·s^{|k|} = c·s^{|z|} / (1 − s)
        c * s.powi((-z) as i32) / (1.0 - s)
    } else {
        // 1 − Σ_{k > z} c·s^k = 1 − c·s^{z+1}/(1−s)
        1.0 - c * s.powi((z + 1) as i32) / (1.0 - s)
    }
}

/// The discrete Gaussian normalizing constant
/// `N(σ²) = Σ_{k ∈ ℤ} e^{−k²/(2σ²)}` (a Jacobi theta value).
///
/// The series is summed symmetrically until terms vanish at `f64`
/// precision; for σ ≥ 1 it converges within a few multiples of σ.
///
/// # Panics
///
/// Panics if `sigma2` is not strictly positive.
pub fn gaussian_normalizer(sigma2: f64) -> f64 {
    assert!(
        sigma2 > 0.0,
        "gaussian_normalizer: variance must be positive"
    );
    let mut sum = 1.0; // k = 0 term
    let mut k = 1.0f64;
    loop {
        let term = (-k * k / (2.0 * sigma2)).exp();
        if term < f64::MIN_POSITIVE || sum + 2.0 * term == sum {
            return sum;
        }
        sum += 2.0 * term;
        k += 1.0;
    }
}

/// The discrete Gaussian PMF `N_ℤ(μ, σ²)(z) = e^{−(z−μ)²/(2σ²)} / N(σ²)`.
///
/// The normalizer is translation-invariant (the paper's zCDP proof hinges
/// on bounding the *shifted* normalizer by the centered one; at integer
/// shifts they coincide).
///
/// # Panics
///
/// Panics if `sigma2` is not strictly positive.
pub fn gaussian_pmf(sigma2: f64, mu: i64, z: i64) -> f64 {
    let d = (z - mu) as f64;
    (-d * d / (2.0 * sigma2)).exp() / gaussian_normalizer(sigma2)
}

/// The discrete Gaussian CDF `P(Z ≤ z)` for mean `mu`, by partial summation.
pub fn gaussian_cdf(sigma2: f64, mu: i64, z: i64) -> f64 {
    // Sum from the mean outwards over the support that matters.
    let sigma = sigma2.sqrt();
    let radius = (12.0 * sigma).ceil() as i64 + 2;
    let lo = mu - radius;
    if z < lo {
        return 0.0;
    }
    let n = gaussian_normalizer(sigma2);
    let mut acc = 0.0;
    for k in lo..=z.min(mu + radius) {
        let d = (k - mu) as f64;
        acc += (-d * d / (2.0 * sigma2)).exp() / n;
    }
    acc.min(1.0)
}

/// The discrete Laplace distribution with scale `t`, shifted to mean `mu`,
/// truncated to `|z − mu| ≤ radius`, as a mass function.
///
/// With `radius ≳ 40·t` the truncated tail is below `e^{−40} ≈ 4·10⁻¹⁸`,
/// i.e. invisible at `f64` precision; the DP layer uses these truncations
/// as the analytic distributions of noised queries.
pub fn laplace_mass(t: f64, mu: i64, radius: i64) -> SubPmf<i64, f64> {
    assert!(radius >= 0, "laplace_mass: negative radius");
    SubPmf::from_entries((mu - radius..=mu + radius).map(|z| (z, laplace_pmf(t, z - mu))))
}

/// The discrete Gaussian distribution `N_ℤ(mu, sigma2)` truncated to
/// `|z − mu| ≤ radius`, as a mass function.
pub fn gaussian_mass(sigma2: f64, mu: i64, radius: i64) -> SubPmf<i64, f64> {
    assert!(radius >= 0, "gaussian_mass: negative radius");
    let n = gaussian_normalizer(sigma2);
    SubPmf::from_entries((mu - radius..=mu + radius).map(|z| {
        let d = (z - mu) as f64;
        (z, (-d * d / (2.0 * sigma2)).exp() / n)
    }))
}

/// A conservative truncation radius capturing all but `≈ e^{−40}` of the
/// mass of `Lap_t` (scale `t`).
pub fn laplace_radius(t: f64) -> i64 {
    (40.0 * t).ceil() as i64 + 1
}

/// A conservative truncation radius for the discrete Gaussian with
/// variance `sigma2` (≈ 9σ captures all but `e^{−40}`).
pub fn gaussian_radius(sigma2: f64) -> i64 {
    (9.0 * sigma2.sqrt()).ceil() as i64 + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laplace_pmf_normalizes() {
        for t in [0.5, 1.0, 2.5, 10.0] {
            let total: f64 = (-2000..=2000).map(|z| laplace_pmf(t, z)).sum();
            assert!((total - 1.0).abs() < 1e-12, "t={t}: total={total}");
        }
    }

    #[test]
    fn laplace_pmf_symmetric_and_decreasing() {
        let t = 3.0;
        for z in 1i64..20 {
            assert_eq!(laplace_pmf(t, z), laplace_pmf(t, -z));
            assert!(laplace_pmf(t, z) < laplace_pmf(t, z - 1));
        }
    }

    #[test]
    fn laplace_cdf_matches_partial_sums() {
        let t = 2.0;
        let mut acc = 0.0;
        for z in -60i64..=60 {
            acc += laplace_pmf(t, z); // running sum up to z
            let direct = laplace_cdf(t, z);
            assert!(
                (acc - direct).abs() < 1e-12,
                "z={z}: partial {acc} vs closed {direct}"
            );
        }
    }

    #[test]
    fn laplace_cdf_limits() {
        assert!(laplace_cdf(1.5, -200) < 1e-30);
        assert!((laplace_cdf(1.5, 200) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn gaussian_normalizer_close_to_continuous() {
        // For σ ≳ 1, N(σ²) ≈ √(2πσ²) to extremely high accuracy
        // (Poisson summation: the error is O(e^{−2π²σ²})).
        for sigma in [1.0f64, 2.0, 5.0, 20.0] {
            let n = gaussian_normalizer(sigma * sigma);
            let cont = (2.0 * std::f64::consts::PI * sigma * sigma).sqrt();
            assert!(
                (n - cont).abs() / cont < 1e-8,
                "sigma={sigma}: {n} vs {cont}"
            );
        }
    }

    #[test]
    fn gaussian_pmf_normalizes() {
        for sigma2 in [0.5, 1.0, 9.0] {
            let r = gaussian_radius(sigma2) * 3;
            let total: f64 = (-r..=r).map(|z| gaussian_pmf(sigma2, 0, z)).sum();
            assert!((total - 1.0).abs() < 1e-10, "sigma2={sigma2}: {total}");
        }
    }

    #[test]
    fn gaussian_shift_invariance() {
        for z in -5i64..=5 {
            assert_eq!(gaussian_pmf(4.0, 3, z + 3), gaussian_pmf(4.0, 0, z));
        }
    }

    #[test]
    fn gaussian_cdf_monotone_to_one() {
        let mut prev = 0.0;
        for z in -40i64..=40 {
            let c = gaussian_cdf(9.0, 0, z);
            assert!(c >= prev - 1e-15);
            prev = c;
        }
        assert!((gaussian_cdf(9.0, 0, 40) - 1.0).abs() < 1e-12);
        assert_eq!(gaussian_cdf(9.0, 0, -1000), 0.0);
    }

    #[test]
    fn mass_builders_capture_tail() {
        let lm = laplace_mass(2.0, 7, laplace_radius(2.0));
        assert!((lm.total_mass() - 1.0).abs() < 1e-12);
        assert!((lm.normalize().expectation() - 7.0).abs() < 1e-9);

        let gm = gaussian_mass(16.0, -3, gaussian_radius(16.0));
        assert!((gm.total_mass() - 1.0).abs() < 1e-10);
        assert!((gm.normalize().expectation() + 3.0).abs() < 1e-9);
        assert!((gm.variance() - 16.0).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn laplace_pmf_rejects_zero_scale() {
        let _ = laplace_pmf(0.0, 1);
    }

    #[test]
    #[should_panic(expected = "variance must be positive")]
    fn gaussian_rejects_zero_variance() {
        let _ = gaussian_normalizer(0.0);
    }
}
