//! Bernoulli trials with exact rational and `exp(−γ)` biases.
//!
//! These are the building blocks of the Canonne–Kamath–Steinke samplers
//! (paper Section 3.2.2): `BernoulliSample` compares an exact uniform draw
//! against a rational, and `BernoulliExpNegSample` realizes a coin with
//! bias `e^(−num/den)` using only rational arithmetic — the von Neumann
//! series trick, with no transcendental function ever evaluated.

use crate::uniform::uniform_below;
use sampcert_arith::Nat;
use sampcert_slang::{map, Interp};

/// `BernoulliSample num den`: a coin that is `true` with probability
/// `num/den`, exactly.
///
/// # Panics
///
/// Panics (at program construction) if `den` is zero or `num > den` — the
/// same side condition the Lean source discharges with a proof argument.
///
/// # Examples
///
/// ```
/// use sampcert_samplers::bernoulli;
/// use sampcert_arith::{Nat, Rat};
/// use sampcert_slang::Mass;
///
/// let d = bernoulli::<Mass<Rat>>(&Nat::from(3u64), &Nat::from(8u64)).eval_limit(64);
/// assert_eq!(d.mass(&true), Rat::from_ratio(3, 8));
/// ```
pub fn bernoulli<I: Interp>(num: &Nat, den: &Nat) -> I::Repr<bool> {
    assert!(!den.is_zero(), "bernoulli: zero denominator");
    assert!(num <= den, "bernoulli: bias above one ({num}/{den})");
    let num = num.clone();
    map::<I, _, _>(uniform_below::<I>(den), move |u| *u < num)
}

/// `BernoulliExpNegSampleUnit`: a coin that is `true` with probability
/// `e^(−num/den)`, for `num ≤ den` (i.e. γ ∈ [0, 1]).
///
/// Runs the von Neumann series: draw `A_k ~ Bernoulli(γ/k)` for
/// `k = 1, 2, …` until the first failure at index `K`; return whether `K`
/// is even. The alternating-series identity
/// `P(K even) = Σ (−γ)^j/j! = e^(−γ)` makes the bias exact.
///
/// # Panics
///
/// Panics if `den` is zero or `num > den`.
pub fn bernoulli_exp_neg_unit<I: Interp>(num: &Nat, den: &Nat) -> I::Repr<bool> {
    assert!(!den.is_zero(), "bernoulli_exp_neg_unit: zero denominator");
    assert!(
        num <= den,
        "bernoulli_exp_neg_unit: gamma above one ({num}/{den})"
    );
    let num = num.clone();
    let den = den.clone();
    // One `Bernoulli(γ/k)` trial program, mapped into the loop state. The
    // `den · k` product takes the scalar fast path: allocation-free while
    // it fits one limb, which is every iteration that matters.
    let make_trial = move |k: u64| {
        let den_k = den.mul_u64(k);
        let capped = if num <= den_k { &num } else { &den_k };
        map::<I, _, _>(bernoulli::<I>(capped, &den_k), move |&a| (a, k + 1))
    };
    // Memoize the first few trial indices: the loop ends at the first
    // failure (E[K] < e ≈ 2.7), so caching k ≤ 16 makes re-running the
    // sampler construct zero programs per iteration in practice, while
    // k > 16 (probability < 1/16! per draw) falls back to on-the-fly
    // construction. Lazy so that building this program stays cheap — the
    // Laplace uniform loop constructs one per accepted candidate.
    const TRIAL_CACHE: usize = 16;
    // One `OnceLock` per trial index: `Sync` (programs are shared across
    // serving workers) and lock-free after first fill — a mutex here
    // would serialize every worker of a pool sharing one program on
    // essentially every trial (k ≤ 16 always in practice).
    let cache: Vec<std::sync::OnceLock<I::Repr<(bool, u64)>>> = (0..TRIAL_CACHE)
        .map(|_| std::sync::OnceLock::new())
        .collect();
    // State: (last trial result, index of the *next* trial).
    let looped = I::while_loop(
        |s: &(bool, u64)| s.0,
        move |s| {
            let k = s.1;
            if k as usize <= TRIAL_CACHE {
                cache[(k - 1) as usize]
                    .get_or_init(|| make_trial(k))
                    .clone()
            } else {
                make_trial(k)
            }
        },
        I::pure((true, 1u64)),
    );
    // Final state (false, K+1): K = index of first failure; success iff K odd
    // i.e. the stored counter is even.
    map::<I, _, _>(looped, |s| s.1 % 2 == 0)
}

/// `BernoulliExpNegSample`: a coin that is `true` with probability
/// `e^(−num/den)` for an arbitrary rational `num/den ≥ 0`.
///
/// Splits `γ = ⌊γ⌋ + r`: runs `⌊γ⌋` independent `e^(−1)` trials (early
/// exit on the first failure), then one fractional trial `e^(−r)`.
///
/// # Panics
///
/// Panics if `den` is zero.
///
/// # Examples
///
/// ```
/// use sampcert_samplers::bernoulli_exp_neg;
/// use sampcert_arith::Nat;
/// use sampcert_slang::Mass;
///
/// // P(true) = e^{-5/2} ≈ 0.0821
/// let d = bernoulli_exp_neg::<Mass<f64>>(&Nat::from(5u64), &Nat::from(2u64)).eval_limit(256);
/// assert!((d.mass(&true) - (-2.5f64).exp()).abs() < 1e-9);
/// ```
pub fn bernoulli_exp_neg<I: Interp>(num: &Nat, den: &Nat) -> I::Repr<bool> {
    assert!(!den.is_zero(), "bernoulli_exp_neg: zero denominator");
    if num <= den {
        return bernoulli_exp_neg_unit::<I>(num, den);
    }
    let (gamf, rem) = num.div_rem(den);
    let gamf = gamf
        .to_u64()
        .expect("bernoulli_exp_neg: integer part of gamma exceeds u64");
    let den2 = den.clone();
    // One shared e^{-1} trial program: constructing it once (rather than
    // per loop state) lets the mass interpreter reuse its denotation.
    let e_inv_trial = bernoulli_exp_neg_unit::<I>(&Nat::one(), &Nat::one());
    // State: (still alive, number of e^{-1} trials completed).
    let whole = I::while_loop(
        move |s: &(bool, u64)| s.0 && s.1 < gamf,
        move |s| {
            let done = s.1;
            map::<I, _, _>(e_inv_trial.clone(), move |&b| (b, done + 1))
        },
        I::pure((true, 0u64)),
    );
    let rem2 = rem;
    I::bind(whole, move |s| {
        if s.0 {
            bernoulli_exp_neg_unit::<I>(&rem2, &den2)
        } else {
            I::pure(false)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sampcert_arith::Rat;
    use sampcert_slang::{Mass, Sampling, SeededByteSource};

    fn nat(v: u64) -> Nat {
        Nat::from(v)
    }

    #[test]
    fn bernoulli_exact_bias() {
        for (n, d) in [(0u64, 1u64), (1, 2), (3, 8), (5, 5), (7, 13)] {
            let dist = bernoulli::<Mass<Rat>>(&nat(n), &nat(d)).eval_limit(128);
            assert_eq!(dist.mass(&true), Rat::from_ratio(n, d), "{n}/{d}");
            assert_eq!(dist.total_mass(), Rat::one());
        }
    }

    #[test]
    #[should_panic(expected = "bias above one")]
    fn bernoulli_rejects_bias_above_one() {
        let _ = bernoulli::<Sampling>(&nat(3), &nat(2));
    }

    #[test]
    fn exp_neg_unit_matches_closed_form() {
        for (n, d) in [(0u64, 1u64), (1, 1), (1, 2), (2, 3), (9, 10)] {
            let dist = bernoulli_exp_neg_unit::<Mass<f64>>(&nat(n), &nat(d)).eval_limit(256);
            let expect = (-(n as f64) / d as f64).exp();
            assert!(
                (dist.mass(&true) - expect).abs() < 1e-9,
                "gamma={n}/{d}: got {} want {expect}",
                dist.mass(&true)
            );
            assert!((dist.total_mass() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn exp_neg_general_matches_closed_form() {
        for (n, d) in [(5u64, 2u64), (3, 1), (7, 3), (10, 10)] {
            let dist = bernoulli_exp_neg::<Mass<f64>>(&nat(n), &nat(d)).eval_limit(256);
            let expect = (-(n as f64) / d as f64).exp();
            assert!(
                (dist.mass(&true) - expect).abs() < 1e-9,
                "gamma={n}/{d}: got {} want {expect}",
                dist.mass(&true)
            );
        }
    }

    #[test]
    fn exp_neg_zero_gamma_is_always_true() {
        let dist = bernoulli_exp_neg::<Mass<Rat>>(&nat(0), &nat(7)).eval_limit(64);
        assert_eq!(dist.mass(&true), Rat::one());
    }

    #[test]
    fn sampling_agrees_with_mass() {
        let prog = bernoulli_exp_neg::<Sampling>(&nat(3), &nat(2));
        let mut src = SeededByteSource::new(11);
        let n = 40_000;
        let mut hits = 0u64;
        for _ in 0..n {
            if prog.run(&mut src) {
                hits += 1;
            }
        }
        let freq = hits as f64 / n as f64;
        let expect = (-1.5f64).exp();
        assert!((freq - expect).abs() < 0.01, "freq={freq} expect={expect}");
    }

    #[test]
    fn bernoulli_big_parameters() {
        // Bias with a denominator beyond u64: exactness must survive.
        let den = &(&Nat::from(u64::MAX) * &nat(3)) + &nat(1);
        let num = &den / &nat(2);
        let prog = bernoulli::<Sampling>(&num, &den);
        let mut src = SeededByteSource::new(5);
        let n = 5_000;
        let hits = (0..n).filter(|_| prog.run(&mut src)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.5).abs() < 0.05, "freq={freq}");
    }
}
