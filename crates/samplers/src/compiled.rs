//! The compiled middle tier: parameter-keyed bytecode cache.
//!
//! The batch entry points dispatch across three executions of the *same*
//! sampler (all byte-stream-equal):
//!
//! 1. the hand-fused `u128` loops ([`FusedLaplace`](crate::FusedLaplace) /
//!    [`FusedGaussian`](crate::FusedGaussian)) for word-sized parameters,
//! 2. the extracted bytecode run on `sampcert_extract`'s stack VM — this
//!    module — for everything the fused path declines, and
//! 3. the monadic `SLang` tree-walker, kept as the semantic reference and
//!    as the fallback when the VM reports an arithmetic fault.
//!
//! Lowering a sampler family member to bytecode costs a program-tree walk
//! plus a compile, so it is done **once per parameter box**: the cache
//! below keys compiled programs by their exact parameters (with
//! [`LaplaceAlg::Switched`] resolved *before* keying, so `Switched` and the
//! loop it resolves to share one entry) and hands out `Arc<Bytecode>`
//! clones. A serving process that draws noise at a fixed handful of scales
//! compiles each scale exactly once, no matter how many batches it runs.

use crate::laplace::{resolve_alg, LaplaceAlg};
use sampcert_arith::Nat;
use sampcert_extract::{
    compile, gaussian_program_nat, laplace_program_nat, uniform_below_program_nat, Bytecode,
    LoopKind, Value,
};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Cache key: one compiled program per exact parameter box.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Key {
    UniformBelow(Nat),
    Laplace(Nat, Nat, LoopKind),
    Gaussian(Nat, Nat, LoopKind),
}

fn cache() -> &'static Mutex<HashMap<Key, Arc<Bytecode>>> {
    static CACHE: OnceLock<Mutex<HashMap<Key, Arc<Bytecode>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn get_or_compile(key: Key, build: impl FnOnce() -> Bytecode) -> Arc<Bytecode> {
    let mut map = cache().lock().expect("compiled-program cache poisoned");
    Arc::clone(map.entry(key).or_insert_with(|| Arc::new(build())))
}

/// A resolved algorithm as the extract crate's loop selector.
fn kind_of(alg: LaplaceAlg) -> LoopKind {
    match alg {
        LaplaceAlg::Geometric => LoopKind::Geometric,
        LaplaceAlg::Uniform => LoopKind::Uniform,
        LaplaceAlg::Switched => unreachable!("resolved before keying"),
    }
}

/// Bytecode for `uniform_below(bound)`, compiled once per bound.
pub(crate) fn uniform_below_bytecode(bound: &Nat) -> Arc<Bytecode> {
    get_or_compile(Key::UniformBelow(bound.clone()), || {
        compile(&uniform_below_program_nat(bound))
    })
}

/// Bytecode for `discrete_laplace(num/den)`, compiled once per
/// (scale, resolved loop).
pub(crate) fn laplace_bytecode(num: &Nat, den: &Nat, alg: LaplaceAlg) -> Arc<Bytecode> {
    let kind = kind_of(resolve_alg(num, den, alg));
    get_or_compile(Key::Laplace(num.clone(), den.clone(), kind), || {
        compile(&laplace_program_nat(num, den, kind))
    })
}

/// Bytecode for `discrete_gaussian(σ = num/den)`, compiled once per
/// (σ, resolved loop).
pub(crate) fn gaussian_bytecode(num: &Nat, den: &Nat, alg: LaplaceAlg) -> Arc<Bytecode> {
    // The monadic Gaussian drives its Laplace candidates at scale (t, 1)
    // with t = ⌊num/den⌋ + 1, so Switched resolves on that scale — not on
    // σ itself.
    let t = &(num / den) + &Nat::one();
    let kind = kind_of(resolve_alg(&t, &Nat::one(), alg));
    get_or_compile(Key::Gaussian(num.clone(), den.clone(), kind), || {
        compile(&gaussian_program_nat(num, den, kind))
    })
}

/// A VM result as the nonnegative draw it encodes.
pub(crate) fn value_to_nat(v: &Value) -> Nat {
    v.to_nat().expect("uniform draw below a nonnegative bound")
}

/// A VM result as a signed sample, with the same overflow panics as the
/// monadic path's `nat_to_i64` (so the tiers agree even on the aborts).
pub(crate) fn value_to_i64(v: &Value) -> i64 {
    let w = match v.to_i128() {
        Some(w) => w,
        None => panic!("sample magnitude exceeds u64 range"),
    };
    let mag = u64::try_from(w.unsigned_abs()).expect("sample magnitude exceeds u64 range");
    let mag = i64::try_from(mag).expect("sample magnitude exceeds i64 range");
    if w < 0 {
        -mag
    } else {
        mag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nat(v: u64) -> Nat {
        Nat::from(v)
    }

    fn big(seed: u64) -> Nat {
        &(&Nat::from(u64::MAX) * &nat(seed)) + &nat(seed | 1)
    }

    /// The amortization contract: the same parameter box yields the same
    /// compiled program (pointer-equal Arc), a different box recompiles.
    #[test]
    fn cache_hits_on_same_box_and_misses_on_different() {
        let b1 = uniform_below_bytecode(&big(11));
        let b2 = uniform_below_bytecode(&big(11));
        assert!(Arc::ptr_eq(&b1, &b2), "same bound must not recompile");
        let other = uniform_below_bytecode(&big(12));
        assert!(!Arc::ptr_eq(&b1, &other), "distinct bound must recompile");

        let l1 = laplace_bytecode(&big(5), &nat(3), LaplaceAlg::Geometric);
        let l2 = laplace_bytecode(&big(5), &nat(3), LaplaceAlg::Geometric);
        assert!(Arc::ptr_eq(&l1, &l2));
        let l3 = laplace_bytecode(&big(5), &nat(4), LaplaceAlg::Geometric);
        assert!(!Arc::ptr_eq(&l1, &l3));

        let g1 = gaussian_bytecode(&big(7), &nat(2), LaplaceAlg::Geometric);
        let g2 = gaussian_bytecode(&big(7), &nat(2), LaplaceAlg::Geometric);
        assert!(Arc::ptr_eq(&g1, &g2));
    }

    /// `Switched` is resolved before keying: it shares the cache entry of
    /// the loop it resolves to instead of compiling a duplicate.
    #[test]
    fn switched_shares_the_resolved_entry() {
        // scale = big(21)/1 ≥ 8, so Switched resolves to Uniform.
        let s = laplace_bytecode(&big(21), &Nat::one(), LaplaceAlg::Switched);
        let u = laplace_bytecode(&big(21), &Nat::one(), LaplaceAlg::Uniform);
        assert!(Arc::ptr_eq(&s, &u), "Switched must alias its resolution");
        let g = laplace_bytecode(&big(21), &Nat::one(), LaplaceAlg::Geometric);
        assert!(!Arc::ptr_eq(&s, &g));
    }

    #[test]
    fn value_conversions_round_trip() {
        assert_eq!(value_to_nat(&Value::Small(9)), nat(9));
        assert_eq!(value_to_i64(&Value::Small(-4)), -4);
        assert_eq!(value_to_i64(&Value::Small(i64::MAX as i128)), i64::MAX);
    }

    #[test]
    #[should_panic(expected = "sample magnitude exceeds i64 range")]
    fn value_conversion_overflow_mirrors_the_monadic_panic() {
        let _ = value_to_i64(&Value::Small(i64::MAX as i128 + 1));
    }
}
