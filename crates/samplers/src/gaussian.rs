//! The discrete Gaussian sampler (paper Section 3.3.2, Listing 11).
//!
//! Samples `N_ℤ(0, σ²)` for rational `σ = num/den` by the rejection scheme
//! of Canonne, Kamath & Steinke: draw `Y` from a discrete Laplace with
//! scale `t = ⌊σ⌋ + 1`, then accept with probability
//! `exp(−(|Y|·t·den² − num²)² / (2·num²·t²·den²))` — all arithmetic exact.
//! The expected number of rejection rounds is a small constant (≈ 1.4),
//! independent of σ, which is why the extracted sampler's runtime is flat
//! in Fig. 4 while σ-linear baselines fall behind.

use crate::bernoulli::bernoulli_exp_neg;
use crate::laplace::{discrete_laplace, LaplaceAlg};
use sampcert_arith::{Int, Nat};
use sampcert_slang::{map, until, Interp};

/// `DiscreteGaussianSampleLoop` (Listing 11): one candidate `Y` from
/// `Lap(t)` together with its acceptance bit `C`.
///
/// `num` and `den` here are the *squared* numerator and denominator, as in
/// the paper's listing.
pub fn gaussian_loop<I: Interp>(
    num: &Nat,
    den: &Nat,
    t: &Nat,
    alg: LaplaceAlg,
) -> I::Repr<(i64, bool)> {
    let num2 = num.clone();
    let den2 = den.clone();
    let t2 = t.clone();
    I::bind(discrete_laplace::<I>(t, &Nat::one(), alg), move |&y| {
        // (|Y|·t·den − num)² — computed in ℤ, then squared into ℕ.
        let abs_y = Nat::from(y.unsigned_abs());
        let lhs = &Int::from_nat(&(&abs_y * &t2) * &den2) - &Int::from_nat(num2.clone());
        let sq = lhs.magnitude().pow(2);
        let bound = &(&Nat::from(2u64) * &num2) * &(&t2.pow(2) * &den2);
        map::<I, _, _>(bernoulli_exp_neg::<I>(&sq, &bound), move |&c| (y, c))
    })
}

/// `DiscreteGaussianSample` (Listing 11): an exact sample from the discrete
/// Gaussian `N_ℤ(0, (num/den)²)`.
///
/// The `alg` argument is the paper's `mix` parameter: which verified
/// Laplace sampling loop powers the candidate draws
/// ([`LaplaceAlg::Switched`] reproduces the "Optimized" series of Fig. 4).
///
/// # Panics
///
/// Panics (at program construction) if `num` or `den` is zero.
///
/// # Examples
///
/// ```
/// use sampcert_samplers::{discrete_gaussian, LaplaceAlg};
/// use sampcert_arith::Nat;
/// use sampcert_slang::{Sampling, SeededByteSource};
///
/// // σ = 10
/// let gauss = discrete_gaussian::<Sampling>(&Nat::from(10u64), &Nat::one(), LaplaceAlg::Switched);
/// let mut src = SeededByteSource::new(0);
/// let _z: i64 = gauss.run(&mut src);
/// ```
pub fn discrete_gaussian<I: Interp>(num: &Nat, den: &Nat, alg: LaplaceAlg) -> I::Repr<i64> {
    assert!(
        !num.is_zero() && !den.is_zero(),
        "discrete_gaussian: zero sigma parameter"
    );
    // t = ⌊σ⌋ + 1 = ⌊num/den⌋ + 1.
    let t = &(num / den) + &Nat::one();
    let num_sq = num.pow(2);
    let den_sq = den.pow(2);
    let accepted = until::<I, _>(
        gaussian_loop::<I>(&num_sq, &den_sq, &t, alg),
        |x: &(i64, bool)| x.1,
    );
    map::<I, _, _>(accepted, |x| x.0)
}

/// A discrete Gaussian with the mean shifted to `mu`
/// (`N_ℤ(mu, (num/den)²)`) — the form used by noised queries.
pub fn discrete_gaussian_shifted<I: Interp>(
    num: &Nat,
    den: &Nat,
    mu: i64,
    alg: LaplaceAlg,
) -> I::Repr<i64> {
    map::<I, _, _>(discrete_gaussian::<I>(num, den, alg), move |&z| z + mu)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pmf::gaussian_pmf;
    use sampcert_slang::{Mass, Sampling, SeededByteSource};

    fn nat(v: u64) -> Nat {
        Nat::from(v)
    }

    fn check_gaussian_mass(num: u64, den: u64, alg: LaplaceAlg, fuel: usize, tol: f64) {
        let prog = discrete_gaussian::<Mass<f64>>(&nat(num), &nat(den), alg);
        // Prune far-tail candidates (mass < 1e-13): keeps the acceptance
        // loop's integer-part iteration count bounded.
        let d = prog.eval(&sampcert_slang::MassCtx::limit(fuel).with_prune(1e-13));
        assert!(
            (d.total_mass() - 1.0).abs() < tol,
            "not normalized: {} ({num}/{den})",
            d.total_mass()
        );
        let sigma2 = (num as f64 / den as f64).powi(2);
        for z in -4i64..=4 {
            let expect = gaussian_pmf(sigma2, 0, z);
            let got = d.mass(&z);
            assert!(
                (got - expect).abs() < tol,
                "N(0,{sigma2})({z}): got {got}, want {expect}"
            );
        }
    }

    #[test]
    fn matches_closed_form_sigma_1() {
        check_gaussian_mass(1, 1, LaplaceAlg::Geometric, 500, 1e-8);
    }

    #[test]
    fn matches_closed_form_sigma_half() {
        check_gaussian_mass(1, 2, LaplaceAlg::Geometric, 500, 1e-8);
    }

    #[test]
    fn both_laplace_algs_agree() {
        let ctx = sampcert_slang::MassCtx::limit(500).with_prune(1e-13);
        let a = discrete_gaussian::<Mass<f64>>(&nat(1), &nat(1), LaplaceAlg::Geometric).eval(&ctx);
        let b = discrete_gaussian::<Mass<f64>>(&nat(1), &nat(1), LaplaceAlg::Uniform).eval(&ctx);
        assert!(a.linf_distance(&b) < 1e-8);
    }

    #[test]
    fn sampling_moments_sigma_5() {
        let prog = discrete_gaussian::<Sampling>(&nat(5), &nat(1), LaplaceAlg::Switched);
        let mut src = SeededByteSource::new(17);
        let n = 30_000;
        let (mut sum, mut sumsq) = (0f64, 0f64);
        for _ in 0..n {
            let z = prog.run(&mut src) as f64;
            sum += z;
            sumsq += z * z;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.15, "mean={mean}");
        // Discrete Gaussian variance ≈ σ² for σ ≥ 1.
        assert!((var - 25.0).abs() / 25.0 < 0.05, "var={var}");
    }

    #[test]
    fn sampling_moments_rational_sigma() {
        // σ = 7/2 = 3.5
        let prog = discrete_gaussian::<Sampling>(&nat(7), &nat(2), LaplaceAlg::Switched);
        let mut src = SeededByteSource::new(29);
        let n = 30_000;
        let sumsq: f64 = (0..n)
            .map(|_| {
                let z = prog.run(&mut src) as f64;
                z * z
            })
            .sum();
        let var = sumsq / n as f64;
        assert!((var - 12.25).abs() / 12.25 < 0.06, "var={var}");
    }

    #[test]
    fn shifted_mean() {
        let prog =
            discrete_gaussian_shifted::<Sampling>(&nat(2), &nat(1), 100, LaplaceAlg::Switched);
        let mut src = SeededByteSource::new(31);
        let n = 20_000;
        let sum: i64 = (0..n).map(|_| prog.run(&mut src)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 100.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn large_sigma_runs_constant_rounds() {
        let prog = discrete_gaussian::<Sampling>(&nat(100_000), &nat(1), LaplaceAlg::Switched);
        let mut src = SeededByteSource::new(37);
        for _ in 0..10 {
            let z = prog.run(&mut src);
            assert!(z.abs() < 2_000_000, "implausible sample {z}");
        }
    }

    #[test]
    #[should_panic(expected = "zero sigma parameter")]
    fn zero_sigma_panics() {
        let _ = discrete_gaussian::<Sampling>(&Nat::zero(), &nat(1), LaplaceAlg::Switched);
    }
}
