//! Property-based tests for the samplers: parameter-sweeping versions of
//! the correctness theorems (exact masses for random rational parameters,
//! byte-stream equality between the interpreted and fused paths, range
//! and symmetry invariants).

use proptest::prelude::*;
use sampcert_arith::{Nat, Rat};
use sampcert_samplers::{
    bernoulli, discrete_gaussian, discrete_laplace, geometric, geometric_pmf, uniform_below,
    FusedGaussian, FusedLaplace, LaplaceAlg,
};
use sampcert_slang::{Mass, Sampling, SeededByteSource};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bernoulli_mass_exact_for_random_ratios(num in 0u64..20, den in 1u64..20, extra in 1u64..5) {
        let den = den + num * extra.min(1); // ensure den ≥ ... keep num ≤ den
        prop_assume!(num <= den);
        let d = bernoulli::<Mass<Rat>>(&Nat::from(num), &Nat::from(den)).eval_limit(64);
        prop_assert_eq!(d.mass(&true), Rat::from_ratio(num, den));
        prop_assert_eq!(d.total_mass(), Rat::one());
    }

    #[test]
    fn uniform_below_always_in_range(bound in 1u64..1_000_000, seed in any::<u64>()) {
        let prog = uniform_below::<Sampling>(&Nat::from(bound));
        let mut src = SeededByteSource::new(seed);
        for _ in 0..20 {
            prop_assert!(prog.run(&mut src) < Nat::from(bound));
        }
    }

    #[test]
    fn geometric_masses_match_eq4(num in 1u64..6, den_extra in 0u64..6, seed in 0u64..3) {
        let _ = seed;
        let den = num + den_extra + 1; // bias strictly below 1
        let trial = bernoulli::<Mass<f64>>(&Nat::from(num), &Nat::from(den));
        let d = geometric::<Mass<f64>>(trial).eval_limit(200);
        let t = num as f64 / den as f64;
        for z in 1u64..6 {
            prop_assert!((d.mass(&z) - geometric_pmf(t, z)).abs() < 1e-9,
                "Geo_{t}({z}): {} vs {}", d.mass(&z), geometric_pmf(t, z));
        }
    }

    #[test]
    fn laplace_fused_equals_monadic_random_params(
        num in 1u64..40,
        den in 1u64..6,
        seed in any::<u64>(),
        alg_pick in 0u8..3,
    ) {
        let alg = match alg_pick { 0 => LaplaceAlg::Geometric, 1 => LaplaceAlg::Uniform, _ => LaplaceAlg::Switched };
        let monadic = discrete_laplace::<Sampling>(&Nat::from(num), &Nat::from(den), alg);
        let fused = FusedLaplace::new(num, den, alg);
        let mut s1 = SeededByteSource::new(seed);
        let mut s2 = SeededByteSource::new(seed);
        for i in 0..60 {
            prop_assert_eq!(monadic.run(&mut s1), fused.sample(&mut s2), "draw {} at {}/{} {:?}", i, num, den, alg);
        }
    }

    #[test]
    fn gaussian_fused_equals_monadic_random_params(
        num in 1u64..20,
        den in 1u64..4,
        seed in any::<u64>(),
    ) {
        let monadic = discrete_gaussian::<Sampling>(&Nat::from(num), &Nat::from(den), LaplaceAlg::Switched);
        let fused = FusedGaussian::new(num, den, LaplaceAlg::Switched);
        let mut s1 = SeededByteSource::new(seed);
        let mut s2 = SeededByteSource::new(seed);
        for i in 0..30 {
            prop_assert_eq!(monadic.run(&mut s1), fused.sample(&mut s2), "draw {} at sigma {}/{}", i, num, den);
        }
    }

    #[test]
    fn laplace_empirical_symmetry(scale in 1u64..12, seed in any::<u64>()) {
        // Sign symmetry: the signed sum over many draws is small relative
        // to the spread (a cheap distribution-free check at any scale).
        let prog = discrete_laplace::<Sampling>(&Nat::from(scale), &Nat::one(), LaplaceAlg::Switched);
        let mut src = SeededByteSource::new(seed);
        let n = 4_000i64;
        let sum: i64 = (0..n).map(|_| prog.run(&mut src)).sum();
        let bound = 8.0 * (scale as f64) * (n as f64).sqrt();
        prop_assert!((sum as f64).abs() < bound, "sum={sum} bound={bound}");
    }

    #[test]
    fn gaussian_samples_have_plausible_magnitude(sigma in 1u64..30, seed in any::<u64>()) {
        let g = FusedGaussian::new(sigma, 1, LaplaceAlg::Switched);
        let mut src = SeededByteSource::new(seed);
        for _ in 0..50 {
            let z = g.sample(&mut src);
            prop_assert!(z.unsigned_abs() < 12 * sigma + 12, "|{z}| implausible for sigma={sigma}");
        }
    }

    #[test]
    fn laplace_never_negative_zero_bias(num in 1u64..10, seed in any::<u64>()) {
        // The (+,0)/(−,0) resampling: zero occurs but with the closed
        // form's mass, and both signs of each magnitude appear over a
        // long run at small scales.
        let prog = discrete_laplace::<Sampling>(&Nat::from(num), &Nat::from(2u64), LaplaceAlg::Switched);
        let mut src = SeededByteSource::new(seed);
        let mut pos = 0u32;
        let mut neg = 0u32;
        for _ in 0..2_000 {
            let z = prog.run(&mut src);
            if z > 0 { pos += 1; }
            if z < 0 { neg += 1; }
        }
        prop_assert!(pos > 100 && neg > 100, "pos={pos} neg={neg}");
    }
}
