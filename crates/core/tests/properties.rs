//! Property-based tests for the abstract-DP layer: the algebraic laws of
//! the privacy-parameter arithmetic, the neighbour relation, and the
//! approximate-DP reductions, over randomized parameters.

use proptest::prelude::*;
use sampcert_core::{
    insertions, is_neighbour, neighbours, removals, AbstractDp, PureDp, RenyiDp, Zcdp,
};

proptest! {
    #[test]
    fn removals_are_neighbours(db in prop::collection::vec(any::<u8>(), 1..8)) {
        for n in removals(&db) {
            prop_assert!(is_neighbour(&db, &n));
            prop_assert!(is_neighbour(&n, &db), "symmetry");
        }
    }

    #[test]
    fn insertions_are_neighbours(
        db in prop::collection::vec(any::<u8>(), 0..8),
        pool in prop::collection::vec(any::<u8>(), 1..4),
    ) {
        for n in insertions(&db, &pool) {
            prop_assert!(is_neighbour(&db, &n));
        }
        prop_assert_eq!(neighbours(&db, &pool).len(), db.len() + pool.len());
    }

    #[test]
    fn equal_length_never_neighbours(db in prop::collection::vec(any::<u8>(), 0..8)) {
        prop_assert!(!is_neighbour(&db, &db));
        let mut shuffled = db.clone();
        shuffled.reverse();
        prop_assert!(!is_neighbour(&db, &shuffled) || db.len() <= 1);
    }

    #[test]
    fn two_removals_not_neighbours(db in prop::collection::vec(any::<u8>(), 2..8)) {
        let shorter = &db[2..];
        prop_assert!(!is_neighbour(&db, shorter));
    }

    #[test]
    fn composition_is_monoid(a in 0.0f64..10.0, b in 0.0f64..10.0, c in 0.0f64..10.0) {
        // Additive composition: associative, commutative, zero identity.
        prop_assert!((PureDp::compose(a, PureDp::compose(b, c))
            - PureDp::compose(PureDp::compose(a, b), c)).abs() < 1e-12);
        prop_assert_eq!(PureDp::compose(a, b), PureDp::compose(b, a));
        prop_assert_eq!(PureDp::compose(a, 0.0), a);
        // Parallel composition: idempotent monoid under max.
        prop_assert_eq!(Zcdp::par_compose(a, a), a);
        prop_assert_eq!(Zcdp::par_compose(a, b), Zcdp::par_compose(b, a));
        prop_assert!(Zcdp::par_compose(a, b) <= PureDp::compose(a, b));
    }

    #[test]
    fn zcdp_app_dp_inverse_pair(eps in 0.01f64..20.0, log_delta in -30f64..-1.0) {
        let delta = log_delta.exp();
        let rho = Zcdp::of_app_dp(delta, eps);
        prop_assert!(rho >= 0.0 && rho <= eps, "rho={rho}");
        let back = Zcdp::to_app_dp(rho, delta);
        prop_assert!((back - eps).abs() < 1e-6 * eps.max(1.0), "{back} vs {eps}");
    }

    #[test]
    fn zcdp_to_app_dp_monotone(rho in 0.001f64..5.0, extra in 0.001f64..1.0, log_delta in -20f64..-2.0) {
        let delta = log_delta.exp();
        prop_assert!(Zcdp::to_app_dp(rho + extra, delta) > Zcdp::to_app_dp(rho, delta));
    }

    #[test]
    fn renyi_app_dp_inverse_pair(eps in 0.5f64..20.0, log_delta in -20f64..-2.0) {
        let delta = log_delta.exp();
        let g = RenyiDp::<8>::of_app_dp(delta, eps);
        let back = RenyiDp::<8>::to_app_dp(g, delta);
        // of_app_dp clamps at 0, so only check the invertible region.
        if g > 0.0 {
            prop_assert!((back - eps).abs() < 1e-9);
        } else {
            prop_assert!(back >= eps - 1e-9);
        }
    }

    #[test]
    fn pure_dp_reduction_is_identity(eps in 0.0f64..20.0, log_delta in -20f64..-1.0) {
        let delta = log_delta.exp();
        prop_assert_eq!(PureDp::of_app_dp(delta, eps), eps);
        prop_assert_eq!(PureDp::to_app_dp(eps, delta), eps);
    }
}
