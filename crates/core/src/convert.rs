//! Conversions between privacy notions.
//!
//! The paper mechanizes two bridges (Section 2.6, Appendix A.2):
//!
//! - **Bun–Steinke Proposition 1.4**: every ε-pure-DP mechanism is
//!   (ε²/2)-zCDP — the route by which SampCert's pure-DP sparse vector
//!   technique acquires a zCDP bound, proven in Lean via the privacy-loss
//!   random variable, Jensen's inequality and the hyperbolic-sine
//!   inequality (Eq. 9);
//! - **Bun–Steinke Lemma 3.5**: every ρ-zCDP mechanism is
//!   `(ρ + √(4ρ·ln(1/δ)), δ)`-approximate-DP, exposed here through
//!   [`AbstractDp::to_app_dp`] and as [`approx_dp_of`].
//!
//! The conversions transport [`Private`] values between notion types,
//! preserving the underlying mechanism; the test suite verifies the
//! converted bounds against the target notion's own divergence checker.

use crate::abstract_dp::{AbstractDp, PureDp, RenyiDp, Zcdp};
use crate::private::Private;
use sampcert_slang::Value;

/// Bun–Steinke Proposition 1.4: ε-DP implies (ε²/2)-zCDP.
pub fn pure_to_zcdp<T: 'static, U: Value>(p: &Private<PureDp, T, U>) -> Private<Zcdp, T, U> {
    let eps = p.gamma();
    Private::from_asserted(
        p.mechanism().clone(),
        eps * eps / 2.0,
        "Bun–Steinke Prop. 1.4: eps-DP => (eps^2/2)-zCDP",
    )
}

/// A pure-DP mechanism read as Rényi DP: `D_α ≤ min(ε, α·ε²/2)`.
///
/// The `α·ε²/2` branch is Prop. 1.4 read at order `α`; the `ε` branch is
/// `D_α ≤ D_∞`.
pub fn pure_to_renyi<const ALPHA: u32, T: 'static, U: Value>(
    p: &Private<PureDp, T, U>,
) -> Private<RenyiDp<ALPHA>, T, U> {
    let eps = p.gamma();
    let bound = eps.min(ALPHA as f64 * eps * eps / 2.0);
    Private::from_asserted(
        p.mechanism().clone(),
        bound,
        "D_alpha <= min(D_inf, alpha*eps^2/2)",
    )
}

/// A zCDP mechanism read as Rényi DP at one order: `D_α ≤ ρ·α`
/// (immediately from Definition 2.2).
pub fn zcdp_to_renyi<const ALPHA: u32, T: 'static, U: Value>(
    p: &Private<Zcdp, T, U>,
) -> Private<RenyiDp<ALPHA>, T, U> {
    Private::from_asserted(
        p.mechanism().clone(),
        p.gamma() * ALPHA as f64,
        "Definition 2.2: rho-zCDP => D_alpha <= rho*alpha",
    )
}

/// The `(ε, δ)` approximate-DP guarantee implied by a `Private` bound
/// (`prop_app_dp`): returns the `ε` for the requested `δ`.
///
/// # Panics
///
/// Panics if `delta` is outside `(0, 1)` (for notions that need it).
pub fn approx_dp_of<D: AbstractDp, T: 'static, U: Value>(p: &Private<D, T, U>, delta: f64) -> f64 {
    D::to_app_dp(p.gamma(), delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::private::CheckOptions;
    use crate::query::count_query;
    use sampcert_stattest::hockey_stick;

    fn laplace_private(eps_num: u64, eps_den: u64) -> Private<PureDp, u8, i64> {
        Private::noised_query(&count_query(), eps_num, eps_den)
    }

    #[test]
    fn pure_to_zcdp_bound_holds() {
        // ε = 1/2 Laplace, converted: ρ = 1/8. The zCDP divergence checker
        // must accept the converted bound.
        let p = laplace_private(1, 2);
        let z = pure_to_zcdp(&p);
        assert!((z.gamma() - 0.125).abs() < 1e-12);
        z.check_pair(&[1, 2, 3], &[1, 2], CheckOptions::default())
            .expect("Prop 1.4 bound holds for Laplace noise");
    }

    #[test]
    fn pure_to_zcdp_not_vacuous() {
        // The true zCDP parameter of ε-Laplace noise is strictly positive
        // and within the converted bound; verify the bound is within ~4×
        // of the measured value (Prop 1.4 is not tight but not vacuous).
        let p = laplace_private(1, 1);
        let z = pure_to_zcdp(&p);
        let d1 = z.dist(&[0u8; 4]);
        let d2 = z.dist(&[0u8; 5]);
        let measured = crate::abstract_dp::Zcdp::divergence(&d1, &d2).value;
        assert!(measured <= z.gamma() + 1e-9);
        assert!(
            measured >= z.gamma() / 4.0,
            "measured {measured} vs bound {}",
            z.gamma()
        );
    }

    #[test]
    fn pure_to_renyi_bound_holds() {
        let p = laplace_private(1, 1);
        let r = pure_to_renyi::<4, _, _>(&p);
        assert!((r.gamma() - 1.0f64.min(2.0)).abs() < 1e-12);
        r.check_pair(&[9, 9], &[9], CheckOptions::default())
            .expect("Renyi conversion holds");
    }

    #[test]
    fn zcdp_to_renyi_bound_holds() {
        let z: Private<Zcdp, u8, i64> = Private::noised_query(&count_query(), 1, 2);
        let r = zcdp_to_renyi::<6, _, _>(&z);
        assert!((r.gamma() - 0.125 * 6.0).abs() < 1e-12);
        r.check_pair(&[3, 3, 3], &[3, 3], CheckOptions::default())
            .expect("zCDP->RDP holds");
    }

    #[test]
    fn approx_dp_verified_by_hockey_stick() {
        // ρ-zCDP gives (ε, δ)-DP with ε = ρ + √(4ρ ln(1/δ)); the
        // hockey-stick divergence at that ε must be ≤ δ.
        let z: Private<Zcdp, u8, i64> = Private::noised_query(&count_query(), 1, 1);
        let delta = 1e-6;
        let eps = approx_dp_of(&z, delta);
        let d1 = z.dist(&[0u8; 3]);
        let d2 = z.dist(&[0u8; 4]);
        let hs = hockey_stick(&d1, &d2, eps).max(hockey_stick(&d2, &d1, eps));
        assert!(hs <= delta, "hockey stick {hs} exceeds delta {delta}");
    }

    #[test]
    fn approx_dp_of_pure_is_eps_itself() {
        let p = laplace_private(3, 4);
        assert_eq!(approx_dp_of(&p, 1e-9), 0.75);
    }

    #[test]
    fn conversion_cycle_consistency() {
        // of_app_dp(δ, to_app_dp(ρ, δ)) = ρ: the reduction is invertible.
        let rho = 0.2;
        let delta = 1e-5;
        let eps = Zcdp::to_app_dp(rho, delta);
        let back = Zcdp::of_app_dp(delta, eps);
        assert!((back - rho).abs() < 1e-10);
    }
}
