//! Mechanisms: randomized functions from databases to outputs, carried
//! with *both* of the paper's semantics.
//!
//! The paper's `Mechanism T U := List T → PMF U` (Listing 1) lives in the
//! mass-function world for proofs and is extracted for execution. Here a
//! [`Mechanism`] carries the pair explicitly:
//!
//! - `run`: the executable semantics (drawing from a
//!   [`ByteSource`]) — what deploys;
//! - `dist`: the analytic output distribution for a given database, built
//!   from the closed-form PMFs whose agreement with the samplers is
//!   established in `sampcert-samplers` — what the privacy checkers
//!   consume.
//!
//! The generic combinators of Listing 1 (`privComposeAdaptive`,
//! `privPostProcess`, `privConst`) and Listing 17 (`privParComp`) derive
//! both semantics at once, so composite mechanisms stay runnable *and*
//! checkable by construction.

use sampcert_slang::{ByteSource, SubPmf, Value};
use std::sync::Arc;

/// A randomized mechanism with executable and analytic semantics.
///
/// # Examples
///
/// ```
/// use sampcert_core::Mechanism;
/// use sampcert_slang::{SeededByteSource, SubPmf};
///
/// // A (non-private!) mechanism releasing the database length.
/// let m: Mechanism<u8, i64> = Mechanism::deterministic(|db| db.len() as i64);
/// let mut src = SeededByteSource::new(0);
/// assert_eq!(m.run(&[1, 2, 3], &mut src), 3);
/// assert_eq!(m.dist(&[1, 2, 3]).mass(&3), 1.0);
/// ```
pub struct Mechanism<T, U: Value> {
    sample: Arc<dyn Fn(&[T], &mut dyn ByteSource) -> U + Send + Sync>,
    dist: Arc<dyn Fn(&[T]) -> SubPmf<U, f64> + Send + Sync>,
}

impl<T, U: Value> Clone for Mechanism<T, U> {
    fn clone(&self) -> Self {
        Mechanism {
            sample: Arc::clone(&self.sample),
            dist: Arc::clone(&self.dist),
        }
    }
}

impl<T, U: Value> std::fmt::Debug for Mechanism<T, U> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Mechanism { sample: <fn>, dist: <fn> }")
    }
}

impl<T: 'static, U: Value> Mechanism<T, U> {
    /// Builds a mechanism from its two semantics.
    ///
    /// Callers are responsible for the semantics agreeing; the noise
    /// mechanisms built by this workspace pair a sampler with its proven
    /// closed form, and the test suite cross-checks them statistically.
    pub fn from_parts(
        sample: impl Fn(&[T], &mut dyn ByteSource) -> U + Send + Sync + 'static,
        dist: impl Fn(&[T]) -> SubPmf<U, f64> + Send + Sync + 'static,
    ) -> Self {
        Mechanism {
            sample: Arc::new(sample),
            dist: Arc::new(dist),
        }
    }

    /// A deterministic (zero-noise) mechanism — useful as a baseline and
    /// for tests; deterministic non-constant mechanisms are of course not
    /// private.
    pub fn deterministic(f: impl Fn(&[T]) -> U + Send + Sync + 'static) -> Self {
        let f = Arc::new(f);
        let f2 = Arc::clone(&f);
        Mechanism {
            sample: Arc::new(move |db, _| f(db)),
            dist: Arc::new(move |db| SubPmf::dirac(f2(db))),
        }
    }

    /// `privConst` (Listing 1): ignores the database entirely.
    pub fn constant(u: U) -> Self {
        let u2 = u.clone();
        Mechanism {
            sample: Arc::new(move |_, _| u.clone()),
            dist: Arc::new(move |_| SubPmf::dirac(u2.clone())),
        }
    }

    /// Draws one output for `db`.
    pub fn run(&self, db: &[T], src: &mut dyn ByteSource) -> U {
        (self.sample)(db, src)
    }

    /// Draws `n` independent outputs for `db`, appending them to `out`.
    ///
    /// The serving-side batch primitive: the mechanism (and every sampler
    /// program inside it) is built once and reused for the whole batch,
    /// the output buffer is reserved once and can be retained across
    /// batches, and the draws go through a single reborrowed byte cursor.
    /// Byte-stream and value equality with `n` sequential
    /// [`run`](Self::run) calls is part of the contract (pinned by tests);
    /// pair with [`Ledger::charge_batch`](crate::Ledger::charge_batch) or
    /// the vectorized [`RdpAccountant`](crate::RdpAccountant) adders to
    /// account for the whole batch in O(1).
    pub fn run_many_into(&self, db: &[T], n: usize, src: &mut dyn ByteSource, out: &mut Vec<U>) {
        out.reserve(n);
        for _ in 0..n {
            out.push((self.sample)(db, src));
        }
    }

    /// Draws `n` independent outputs for `db`.
    ///
    /// Convenience wrapper over [`run_many_into`](Self::run_many_into)
    /// with a fresh, exactly-sized buffer.
    pub fn run_many(&self, db: &[T], n: usize, src: &mut dyn ByteSource) -> Vec<U> {
        let mut out = Vec::new();
        self.run_many_into(db, n, src, &mut out);
        out
    }

    /// The analytic output distribution for `db`.
    pub fn dist(&self, db: &[T]) -> SubPmf<U, f64> {
        (self.dist)(db)
    }

    /// `privPostProcess` (Listing 1): applies a database-independent
    /// function to the output. Postprocessing never degrades privacy —
    /// the typed layer exposes this as a free operation.
    pub fn postprocess<V: Value>(
        &self,
        f: impl Fn(&U) -> V + Send + Sync + 'static,
    ) -> Mechanism<T, V> {
        let sample = Arc::clone(&self.sample);
        let dist = Arc::clone(&self.dist);
        let f = Arc::new(f);
        let f2 = Arc::clone(&f);
        Mechanism {
            sample: Arc::new(move |db, src| f(&sample(db, src))),
            dist: Arc::new(move |db| dist(db).map(|u| f2(u))),
        }
    }

    /// `privComposeAdaptive` (Listing 1): runs `self`, feeds its output to
    /// `next`, and releases both results. Privacy composes additively
    /// (enforced in the typed layer).
    pub fn compose_adaptive<V: Value>(
        &self,
        next: impl Fn(&U) -> Mechanism<T, V> + Send + Sync + 'static,
    ) -> Mechanism<T, (U, V)> {
        let sample1 = Arc::clone(&self.sample);
        let dist1 = Arc::clone(&self.dist);
        let next = Arc::new(next);
        let next2 = Arc::clone(&next);
        Mechanism {
            sample: Arc::new(move |db, src| {
                let a = sample1(db, src);
                let b = next(&a).run(db, src);
                (a, b)
            }),
            dist: Arc::new(move |db| {
                dist1(db).bind(|a| {
                    let a = a.clone();
                    next2(&a).dist(db).map(move |b| (a.clone(), b.clone()))
                })
            }),
        }
    }

    /// Non-adaptive sequential composition (`privCompose`).
    pub fn compose<V: Value>(&self, other: &Mechanism<T, V>) -> Mechanism<T, (U, V)> {
        let other = other.clone();
        self.compose_adaptive(move |_| other.clone())
    }
}

impl<T: Clone + 'static, U: Value> Mechanism<T, U> {
    /// `privParComp` (Listing 17): partitions the database by `pred` and
    /// applies `self` to the matching rows and `other` to the rest.
    ///
    /// A neighbouring change lands in exactly one partition, which is why
    /// parallel composition costs `max` rather than `+` (Appendix B).
    pub fn par_compose<V: Value>(
        &self,
        other: &Mechanism<T, V>,
        pred: impl Fn(&T) -> bool + Send + Sync + 'static,
    ) -> Mechanism<T, (U, V)> {
        let pred = Arc::new(pred);
        let pred2 = Arc::clone(&pred);
        let (s1, d1) = (Arc::clone(&self.sample), Arc::clone(&self.dist));
        let (m2s, m2d) = (Arc::clone(&other.sample), Arc::clone(&other.dist));
        Mechanism {
            sample: Arc::new(move |db, src| {
                let (yes, no): (Vec<T>, Vec<T>) = db.iter().cloned().partition(|t| pred(t));
                let a = s1(&yes, src);
                let b = m2s(&no, src);
                (a, b)
            }),
            dist: Arc::new(move |db| {
                let (yes, no): (Vec<T>, Vec<T>) = db.iter().cloned().partition(|t| pred2(t));
                let db_dist = d1(&yes);
                let other_dist = m2d(&no);
                db_dist.bind(|a| {
                    let a = a.clone();
                    other_dist.map(move |b| (a.clone(), b.clone()))
                })
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sampcert_slang::SeededByteSource;

    fn coin<T: 'static>() -> Mechanism<T, bool> {
        Mechanism::from_parts(
            |_, src| src.next_byte() & 1 == 1,
            |_| SubPmf::from_entries(vec![(true, 0.5), (false, 0.5)]),
        )
    }

    #[test]
    fn constant_ignores_database() {
        let m: Mechanism<u8, i64> = Mechanism::constant(9);
        let mut src = SeededByteSource::new(0);
        assert_eq!(m.run(&[1, 2], &mut src), 9);
        assert_eq!(m.dist(&[]).mass(&9), 1.0);
    }

    #[test]
    fn postprocess_both_semantics() {
        let m = coin::<u8>().postprocess(|b| if *b { 1i64 } else { 0 });
        assert_eq!(m.dist(&[]).mass(&1), 0.5);
        let mut src = SeededByteSource::new(1);
        let v = m.run(&[], &mut src);
        assert!(v == 0 || v == 1);
    }

    #[test]
    fn compose_adaptive_dist_is_product_when_nonadaptive() {
        let m = coin::<u8>().compose(&coin::<u8>());
        let d = m.dist(&[]);
        for pt in [(false, false), (false, true), (true, false), (true, true)] {
            assert!((d.mass(&pt) - 0.25).abs() < 1e-15);
        }
    }

    #[test]
    fn compose_adaptive_reacts_to_first_output() {
        // Second mechanism is constant 0 or 1 depending on the first coin.
        let m = coin::<u8>().compose_adaptive(|&b| Mechanism::constant(if b { 1i64 } else { 0 }));
        let d = m.dist(&[]);
        assert!((d.mass(&(true, 1)) - 0.5).abs() < 1e-15);
        assert!((d.mass(&(false, 0)) - 0.5).abs() < 1e-15);
        assert_eq!(d.mass(&(true, 0)), 0.0);
    }

    #[test]
    fn par_compose_partitions() {
        // Count evens and odds separately (deterministically, for the test).
        let evens: Mechanism<i64, i64> = Mechanism::deterministic(|db| db.len() as i64);
        let odds: Mechanism<i64, i64> = Mechanism::deterministic(|db| db.len() as i64);
        let m = evens.par_compose(&odds, |v| v % 2 == 0);
        let mut src = SeededByteSource::new(2);
        assert_eq!(m.run(&[1, 2, 3, 4, 6], &mut src), (3, 2));
        assert_eq!(m.dist(&[2, 4]).mass(&(2, 0)), 1.0);
    }

    #[test]
    fn run_many_matches_sequential_runs_bytewise() {
        use sampcert_slang::CountingByteSource;
        let m = coin::<u8>().compose(&coin::<u8>());
        let db = [1u8, 2, 3];
        let mut seq_src = CountingByteSource::new(SeededByteSource::new(9));
        let seq: Vec<_> = (0..200).map(|_| m.run(&db, &mut seq_src)).collect();
        let mut batch_src = CountingByteSource::new(SeededByteSource::new(9));
        let mut out = Vec::new();
        m.run_many_into(&db, 200, &mut batch_src, &mut out);
        assert_eq!(out, seq);
        assert_eq!(batch_src.bytes_read(), seq_src.bytes_read());
        assert_eq!(m.run_many(&db, 5, &mut batch_src).len(), 5);
    }

    #[test]
    fn mechanisms_are_cloneable() {
        let m = coin::<u8>();
        let m2 = m.clone();
        assert_eq!(m.dist(&[]).mass(&true), m2.dist(&[]).mass(&true));
    }
}
