//! Privacy accounting across many releases.
//!
//! The paper's `AbstractDP` makes composition a typeclass law; production
//! systems additionally need a *ledger* that tracks spending across a
//! session and converts the running total into the `(ε, δ)` guarantee a
//! policy is stated in. This module provides both:
//!
//! - [`Ledger`]: a labelled additive ledger for any [`AbstractDp`] notion
//!   (what AWS-style deployments meter against a budget);
//! - [`RdpAccountant`]: a Rényi accountant over a grid of orders — the
//!   "moments accountant" composition that motivates Rényi DP as an
//!   `AbstractDP` instance: summing `D_α` curves across releases and
//!   optimizing the order at conversion time gives strictly better `ε(δ)`
//!   than converting each release separately.
//!
//! # Budget carriers and the rounding-direction contract
//!
//! Both accountants are generic over a [`Budget`] carrier, defaulting to
//! the classic `f64` meter. Instantiating with [`Dyadic`] instead (the
//! [`ExactLedger`] / [`ExactRdpAccountant`] aliases) gives **exact**
//! accounting on the power-of-two lattice with shift-only normalization —
//! the charge path performs *no gcd at all* (pinned by a
//! `gcd_call_count` test), unlike a `Rat`-backed meter which pays a
//! reduction per composition.
//!
//! `f64` parameters cross into the exact carrier under a conservative
//! rounding contract, fixed once here and relied on everywhere:
//!
//! - **charges round up** ([`Budget::charge_from_f64`]): a recorded cost
//!   is never less than the real one, so the exact meter never
//!   under-counts spending;
//! - **budgets round down** ([`Budget::budget_from_f64`]): the enforced
//!   allowance is never more than the stated one, so the exact meter never
//!   over-grants;
//! - the exact acceptance check is **strict** (no `1e-12` forgiveness —
//!   that tolerance exists to absorb float rounding, which the exact
//!   carrier does not have).
//!
//! Consequently an exact ledger is sound by construction: any disagreement
//! with the float ledger about admitting a release resolves in the
//! conservative direction.
//!
//! ## Example: metering a session exactly
//!
//! ```
//! use sampcert_core::{ExactLedger, Ledger, PureDp};
//! use sampcert_arith::Dyadic;
//!
//! // A budget of ε = 1, enforced exactly: charges are ε = 1/8 each, which
//! // is dyadic, so nothing is lost in conversion and the ninth release is
//! // refused with exact arithmetic (no tolerance, no drift).
//! let mut ledger: ExactLedger<PureDp> = Ledger::new(1.0);
//! for i in 0..8 {
//!     ledger.charge(format!("q{i}"), 0.125).unwrap();
//! }
//! assert_eq!(ledger.spent_exact(), &Dyadic::from(1u64));
//! assert_eq!(ledger.remaining_exact(), Dyadic::zero());
//! let err = ledger.charge("one-more", 0.125).unwrap_err();
//! // The rejection reports the *exact* requested/remaining quantities and
//! // names the carrier that refused.
//! assert_eq!(
//!     err.to_string(),
//!     "privacy budget exceeded: requested 0.125, remaining 0 [carrier: dyadic]"
//! );
//! ```

use crate::abstract_dp::AbstractDp;
use crate::budget::Budget;
use sampcert_arith::Dyadic;
use std::marker::PhantomData;

/// A [`Ledger`] metering exactly on the dyadic lattice (gcd-free).
pub type ExactLedger<D> = Ledger<D, Dyadic>;

/// An [`RdpAccountant`] whose per-order totals accumulate exactly.
pub type ExactRdpAccountant = RdpAccountant<Dyadic>;

/// A labelled privacy ledger for notion `D`, metering in carrier `B`
/// (`f64` by default; see the module-level docs above for the exact
/// variant).
///
/// # Examples
///
/// ```
/// use sampcert_core::{Ledger, PureDp};
///
/// let mut ledger: Ledger<PureDp> = Ledger::new(1.0); // ε budget
/// ledger.charge("histogram", 0.5).unwrap();
/// ledger.charge("count", 0.25).unwrap();
/// assert!(ledger.charge("another-histogram", 0.5).is_err()); // over budget
/// assert_eq!(ledger.spent(), 0.75);
/// ```
#[derive(Debug, Clone)]
pub struct Ledger<D: AbstractDp, B: Budget = f64> {
    budget: B,
    entries: Vec<(String, B)>,
    /// Cached composed total of `entries`, maintained incrementally so
    /// that `charge`/`spent` are O(1) instead of re-folding the whole
    /// history (which made an n-release session O(n²)). Invariant: equals
    /// the left fold of `entries` under `B::compose::<D>` exactly — the
    /// cache is updated with the same fold order the recomputation would
    /// use, so not even the f64 rounding differs (and the exact carrier
    /// has none to differ by).
    spent: B,
    _notion: PhantomData<D>,
}

/// Error returned when a charge would exceed the ledger's budget.
///
/// Generic in the budget carrier so an exact-ledger rejection reports the
/// **exact** requested/remaining values (rendered as exact finite
/// decimals by [`Dyadic`]'s `Display`) instead of a lossy `f64` cast.
///
/// The rendered message names the budget **carrier** (so an operator can
/// tell a strict exact refusal from a tolerant float one at a glance),
/// the **shard** that ran dry for rejections raised by a
/// [`ShardedLedger`](crate::ShardedLedger) shard, and the **principal**
/// whose allowance refused for rejections raised by a
/// [`BudgetRegistry`](crate::BudgetRegistry):
///
/// ```text
/// privacy budget exceeded: requested 0.5, remaining 0.25 [carrier: f64]
/// privacy budget exceeded: requested 0.5, remaining 0 [carrier: dyadic, shard: 3]
/// privacy budget exceeded: requested 0.5, remaining 0 [carrier: dyadic, principal: 42]
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetExceeded<B = f64> {
    /// The attempted charge.
    pub requested: B,
    /// Remaining budget at the time of the attempt.
    pub remaining: B,
    /// Name of the budget carrier the refusing accountant meters in
    /// ([`Budget::NAME`]).
    pub carrier: &'static str,
    /// The ledger shard that refused the charge, when the refusal came
    /// from a sharded accountant; `None` for unsharded ledgers.
    pub shard: Option<usize>,
    /// The principal whose per-user allowance refused the charge, when the
    /// refusal came from a [`BudgetRegistry`](crate::BudgetRegistry);
    /// `None` for global (non-per-principal) accountants.
    pub principal: Option<u64>,
}

impl<B: Budget> BudgetExceeded<B> {
    /// A refusal from an unsharded accountant, stamped with `B`'s carrier
    /// name.
    pub fn new(requested: B, remaining: B) -> Self {
        BudgetExceeded {
            requested,
            remaining,
            carrier: B::NAME,
            shard: None,
            principal: None,
        }
    }

    /// Returns this refusal attributed to a ledger shard.
    pub fn at_shard(mut self, shard: usize) -> Self {
        self.shard = Some(shard);
        self
    }

    /// Returns this refusal attributed to a principal's per-user
    /// allowance.
    pub fn for_principal(mut self, principal: u64) -> Self {
        self.principal = Some(principal);
        self
    }
}

impl<B: std::fmt::Display> std::fmt::Display for BudgetExceeded<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "privacy budget exceeded: requested {}, remaining {} [carrier: {}",
            self.requested, self.remaining, self.carrier
        )?;
        if let Some(shard) = self.shard {
            write!(f, ", shard: {shard}")?;
        }
        if let Some(principal) = self.principal {
            write!(f, ", principal: {principal}")?;
        }
        write!(f, "]")
    }
}

impl<B: std::fmt::Display + std::fmt::Debug> std::error::Error for BudgetExceeded<B> {}

impl<D: AbstractDp, B: Budget> Ledger<D, B> {
    /// Creates a ledger with a total budget, converted into the carrier
    /// with **downward** rounding (the conservative direction for an
    /// allowance; exact whenever `budget` is representable — in
    /// particular always for the `f64` carrier).
    ///
    /// # Panics
    ///
    /// Panics if `budget` is negative or not finite.
    pub fn new(budget: f64) -> Self {
        assert!(budget.is_finite() && budget >= 0.0, "invalid budget");
        Ledger::with_budget(B::budget_from_f64(budget))
    }

    /// Creates a ledger from a budget already in the carrier — the
    /// lossless entry point for exact budgets.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is not a valid budget quantity.
    pub fn with_budget(budget: B) -> Self {
        assert!(budget.is_valid(), "invalid budget");
        Ledger {
            budget,
            entries: Vec::new(),
            spent: B::zero(),
            _notion: PhantomData,
        }
    }

    /// Records a release costing `gamma`, refusing charges that would
    /// exceed the budget (the release should then not be executed).
    ///
    /// The charge crosses into the carrier with **upward** rounding
    /// (conservative for spending; the identity on `f64`).
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExceeded`] when over budget; the ledger is
    /// unchanged in that case.
    pub fn charge(
        &mut self,
        label: impl Into<String>,
        gamma: f64,
    ) -> Result<(), BudgetExceeded<B>> {
        assert!(gamma.is_finite() && gamma >= 0.0, "invalid charge");
        self.charge_exact(label, B::charge_from_f64(gamma))
    }

    /// Records a release whose cost is already in the carrier (no
    /// conversion, no rounding).
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExceeded`] when over budget; the ledger is
    /// unchanged in that case.
    pub fn charge_exact(
        &mut self,
        label: impl Into<String>,
        gamma: B,
    ) -> Result<(), BudgetExceeded<B>> {
        assert!(gamma.is_valid(), "invalid charge");
        let new_spent = B::compose::<D>(&self.spent, &gamma);
        if B::exceeds(&new_spent, &self.budget) {
            // Remaining is clamped at zero: the f64 carrier's acceptance
            // tolerance lets `spent` overshoot the budget by up to 1e-12,
            // which must not surface as a negative remaining budget.
            return Err(BudgetExceeded::new(
                gamma,
                self.budget.saturating_sub(&self.spent),
            ));
        }
        self.entries.push((label.into(), gamma));
        self.spent = new_spent;
        Ok(())
    }

    /// Records a batch of `count` releases, each costing `gamma_each`,
    /// under one label — the ledger-side half of batched noise serving
    /// (see [`NoiseBatch`](crate::NoiseBatch)). The batch is composed in
    /// O(1) via [`Budget::compose_n`] and recorded as a single entry
    /// holding the composed total, so charging a million-draw batch costs
    /// the same as charging one release. On the exact carrier the
    /// vectorized total equals `count` sequential [`charge`](Self::charge)
    /// calls *exactly* (on `f64`, to within float rounding, as always).
    /// All-or-nothing: either the whole batch fits in the budget or the
    /// ledger is unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExceeded`] (with `requested` set to the composed
    /// batch total) when the batch would overrun the budget.
    pub fn charge_batch(
        &mut self,
        label: impl Into<String>,
        gamma_each: f64,
        count: u64,
    ) -> Result<(), BudgetExceeded<B>> {
        assert!(
            gamma_each.is_finite() && gamma_each >= 0.0,
            "invalid charge"
        );
        self.charge_batch_exact(label, B::charge_from_f64(gamma_each), count)
    }

    /// [`charge_batch`](Self::charge_batch) with the per-release cost
    /// already in the carrier.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExceeded`] when the batch would overrun the budget.
    pub fn charge_batch_exact(
        &mut self,
        label: impl Into<String>,
        gamma_each: B,
        count: u64,
    ) -> Result<(), BudgetExceeded<B>> {
        assert!(gamma_each.is_valid(), "invalid charge");
        let total = B::compose_n::<D>(&gamma_each, count);
        if !total.is_valid() {
            // A batch whose composed total overflows the carrier (f64
            // infinity) certainly exceeds any finite budget; refuse it the
            // same way an over-budget charge is refused instead of
            // tripping `charge_exact`'s validity assertion.
            return Err(BudgetExceeded::new(
                total,
                self.budget.saturating_sub(&self.spent),
            ));
        }
        self.charge_exact(label, total)
    }

    /// Total spent so far (composed additively, per `AbstractDP`),
    /// approximated as `f64` for reporting.
    ///
    /// O(1): the composed total is maintained incrementally by
    /// [`charge`](Self::charge)/[`charge_batch`](Self::charge_batch).
    pub fn spent(&self) -> f64 {
        self.spent.to_f64()
    }

    /// Total spent so far, in the carrier (exact for exact carriers).
    pub fn spent_exact(&self) -> &B {
        &self.spent
    }

    /// Remaining budget, approximated as `f64` for reporting.
    pub fn remaining(&self) -> f64 {
        self.remaining_exact().to_f64()
    }

    /// Remaining budget in the carrier: `max(budget − spent, 0)`.
    pub fn remaining_exact(&self) -> B {
        self.budget.saturating_sub(&self.spent)
    }

    /// The recorded entries, in charge order.
    pub fn entries(&self) -> &[(String, B)] {
        &self.entries
    }

    /// The `(ε, δ)` guarantee implied by the current spending.
    pub fn approx_dp(&self, delta: f64) -> f64 {
        D::to_app_dp(self.spent(), delta)
    }
}

/// A Rényi accountant: tracks `ε(α) ≥ D_α` for a grid of orders and
/// converts to `(ε, δ)`-DP by optimizing the order.
///
/// Generic in the [`Budget`] carrier accumulating the per-order totals
/// (`f64` by default; [`ExactRdpAccountant`] accumulates exactly, with
/// each per-release increment rounded **up** on conversion so the stored
/// curve always dominates the real one).
///
/// # Examples
///
/// ```
/// use sampcert_core::RdpAccountant;
///
/// let mut acct = RdpAccountant::with_default_orders();
/// for _ in 0..32 {
///     acct.add_gaussian(8.0); // 32 releases, σ/Δ = 8
/// }
/// let (eps, _alpha) = acct.epsilon(1e-6);
/// // Converting each release separately and summing would exceed ε = 20;
/// // accounting in RDP and converting once lands under 4.
/// assert!(eps < 4.0, "eps = {eps}");
/// ```
#[derive(Debug, Clone)]
pub struct RdpAccountant<B: Budget = f64> {
    orders: Vec<f64>,
    eps: Vec<B>,
}

impl RdpAccountant {
    /// An `f64`-carried accountant over the given Rényi orders (all must
    /// exceed 1).
    ///
    /// # Panics
    ///
    /// Panics if `orders` is empty or contains an order ≤ 1.
    pub fn new(orders: Vec<f64>) -> Self {
        RdpAccountant::with_orders(orders)
    }

    /// The conventional order grid (1.25 … 512, log-spaced plus small
    /// integer orders), carried in `f64`.
    pub fn with_default_orders() -> Self {
        RdpAccountant::with_orders(RdpAccountant::default_order_grid())
    }

    /// The conventional order grid used by
    /// [`with_default_orders`](Self::with_default_orders) — carrier-
    /// independent (orders are always `f64`), so exact accountants reuse
    /// it: `ExactRdpAccountant::with_orders(RdpAccountant::default_order_grid())`.
    pub fn default_order_grid() -> Vec<f64> {
        let mut orders: Vec<f64> = vec![1.25, 1.5, 1.75, 2.0, 2.5, 3.0, 4.0, 5.0, 6.0, 8.0];
        let mut a = 12.0;
        while a <= 512.0 {
            orders.push(a);
            a *= 1.5;
        }
        orders
    }
}

impl<B: Budget> RdpAccountant<B> {
    /// An accountant over the given Rényi orders (all must exceed 1), in
    /// any carrier — `ExactRdpAccountant::with_orders(...)` is the exact
    /// entry point.
    ///
    /// # Panics
    ///
    /// Panics if `orders` is empty or contains an order ≤ 1.
    pub fn with_orders(orders: Vec<f64>) -> Self {
        assert!(!orders.is_empty(), "no Renyi orders");
        assert!(
            orders.iter().all(|a| *a > 1.0),
            "Renyi orders must exceed 1"
        );
        let n = orders.len();
        RdpAccountant {
            orders,
            eps: std::iter::repeat_with(B::zero).take(n).collect(),
        }
    }

    /// Adds a release described by an arbitrary RDP curve `α ↦ ε(α)`,
    /// converting each per-order increment into the carrier in the
    /// **charge direction** (round up).
    pub fn add_curve(&mut self, curve: impl Fn(f64) -> f64) {
        for (e, a) in self.eps.iter_mut().zip(&self.orders) {
            *e = e.add(&B::charge_from_f64(curve(*a)));
        }
    }

    /// Adds a Gaussian release with noise-to-sensitivity ratio `σ/Δ`:
    /// `D_α ≤ α/(2(σ/Δ)²)`.
    ///
    /// # Panics
    ///
    /// Panics if the ratio is not strictly positive.
    pub fn add_gaussian(&mut self, sigma_over_sensitivity: f64) {
        assert!(sigma_over_sensitivity > 0.0, "invalid noise ratio");
        let s2 = sigma_over_sensitivity * sigma_over_sensitivity;
        self.add_curve(|a| a / (2.0 * s2));
    }

    /// Adds `count` i.i.d. Gaussian releases at ratio `σ/Δ` in one pass:
    /// per-order RDP is additive, so the batch charge is the per-release
    /// charge scaled by `count` — O(grid) total, where `count` repeated
    /// [`add_gaussian`](Self::add_gaussian) calls cost O(count·grid).
    /// Equal to the repeated calls exactly on the exact carrier, and to
    /// within f64 rounding (pinned to 1e-12 by tests) on `f64`.
    ///
    /// # Panics
    ///
    /// Panics if the ratio is not strictly positive.
    pub fn add_gaussian_n(&mut self, sigma_over_sensitivity: f64, count: u64) {
        assert!(sigma_over_sensitivity > 0.0, "invalid noise ratio");
        let s2 = sigma_over_sensitivity * sigma_over_sensitivity;
        self.add_curve_n(|a| a / (2.0 * s2), count);
    }

    /// Adds a pure ε-DP release: `D_α ≤ min(ε, α·ε²/2)` (Bun–Steinke read
    /// at order α, capped by `D_∞`).
    pub fn add_pure(&mut self, eps: f64) {
        assert!(eps.is_finite() && eps >= 0.0, "invalid epsilon");
        self.add_curve(|a| eps.min(a * eps * eps / 2.0));
    }

    /// Adds `count` i.i.d. pure ε-DP releases in one O(grid) pass; the
    /// vectorized form of `count` [`add_pure`](Self::add_pure) calls
    /// (each release's per-order charge is the same, so the batch is a
    /// single scale — exact on the exact carrier).
    pub fn add_pure_n(&mut self, eps: f64, count: u64) {
        assert!(eps.is_finite() && eps >= 0.0, "invalid epsilon");
        self.add_curve_n(|a| eps.min(a * eps * eps / 2.0), count);
    }

    /// Vectorized [`add_curve`](Self::add_curve): adds `count` releases of
    /// the same curve by scaling each converted per-order charge.
    pub fn add_curve_n(&mut self, curve: impl Fn(f64) -> f64, count: u64) {
        for (e, a) in self.eps.iter_mut().zip(&self.orders) {
            *e = e.add(&B::charge_from_f64(curve(*a)).scale(count));
        }
    }

    /// The accumulated RDP curve as `(order, ε)` pairs (ε approximated as
    /// `f64` for reporting; see [`curve_exact`](Self::curve_exact)).
    pub fn curve(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.orders
            .iter()
            .copied()
            .zip(self.eps.iter().map(Budget::to_f64))
    }

    /// The accumulated RDP curve with the totals in the carrier.
    pub fn curve_exact(&self) -> impl Iterator<Item = (f64, &B)> + '_ {
        self.orders.iter().copied().zip(self.eps.iter())
    }

    /// Merges another accountant's accumulated curve into this one —
    /// per-order RDP totals are additive, so accumulating releases on
    /// several accountants and merging is equivalent to accounting them
    /// all on one (exactly so on exact carriers). This is the fold step of
    /// [`ShardedRdpAccountant`](crate::ShardedRdpAccountant).
    ///
    /// # Panics
    ///
    /// Panics if the two accountants use different order grids.
    pub fn merge(&mut self, other: &RdpAccountant<B>) {
        assert_eq!(
            self.orders, other.orders,
            "merging accountants over different order grids"
        );
        for (e, o) in self.eps.iter_mut().zip(&other.eps) {
            *e = e.add(o);
        }
    }

    /// Converts to `(ε, δ)`-DP, returning the `ε` and the optimizing
    /// order: `ε = min_α [ε(α) + ln(1/δ)/(α−1)]`.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is outside `(0, 1)`.
    pub fn epsilon(&self, delta: f64) -> (f64, f64) {
        assert!(delta > 0.0 && delta < 1.0, "delta outside (0,1)");
        let l = (1.0 / delta).ln();
        self.curve()
            .map(|(a, e)| (e + l / (a - 1.0), a))
            .min_by(|x, y| x.0.total_cmp(&y.0))
            .expect("nonempty order grid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstract_dp::{PureDp, Zcdp};

    #[test]
    fn ledger_tracks_and_enforces() {
        let mut ledger: Ledger<Zcdp> = Ledger::new(0.5);
        ledger.charge("q1", 0.2).unwrap();
        ledger.charge("q2", 0.25).unwrap();
        let err = ledger.charge("q3", 0.1).unwrap_err();
        assert!((err.remaining - 0.05).abs() < 1e-12);
        assert_eq!(ledger.entries().len(), 2);
        assert!((ledger.remaining() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn ledger_approx_dp_matches_notion() {
        let mut ledger: Ledger<PureDp> = Ledger::new(2.0);
        ledger.charge("a", 1.5).unwrap();
        assert_eq!(ledger.approx_dp(1e-9), 1.5);
    }

    #[test]
    fn single_gaussian_matches_zcdp_conversion() {
        // One σ/Δ = 4 Gaussian: ρ = 1/32. The RDP conversion over a rich
        // grid is within a few percent of the zCDP closed form.
        let mut acct = RdpAccountant::with_default_orders();
        acct.add_gaussian(4.0);
        let delta = 1e-6;
        let (eps_rdp, _) = acct.epsilon(delta);
        let eps_zcdp = Zcdp::to_app_dp(1.0 / 32.0, delta);
        assert!(eps_rdp <= eps_zcdp * 1.05, "{eps_rdp} vs {eps_zcdp}");
        assert!(eps_rdp >= eps_zcdp * 0.8, "{eps_rdp} vs {eps_zcdp}");
    }

    #[test]
    fn composition_beats_naive_pure_accounting() {
        // 64 pure ε = 0.1 releases: naive additive ε = 6.4; RDP accounting
        // recovers advanced-composition-strength bounds (≈ 4.5 here,
        // advanced composition itself gives ≈ 4.9 at this δ).
        let mut acct = RdpAccountant::with_default_orders();
        for _ in 0..64 {
            acct.add_pure(0.1);
        }
        let (eps, _) = acct.epsilon(1e-6);
        assert!(eps < 5.0, "RDP accounting not helping: {eps}");
        assert!(eps > 0.8, "implausibly small: {eps}");
    }

    #[test]
    fn epsilon_decreases_with_looser_delta() {
        let mut acct = RdpAccountant::with_default_orders();
        acct.add_gaussian(2.0);
        let (tight, _) = acct.epsilon(1e-9);
        let (loose, _) = acct.epsilon(1e-3);
        assert!(loose < tight);
    }

    #[test]
    fn optimal_order_shrinks_as_budget_grows() {
        // More releases push the optimal α down (standard RDP behaviour).
        let mut a1 = RdpAccountant::with_default_orders();
        a1.add_gaussian(8.0);
        let (_, alpha_one) = a1.epsilon(1e-6);
        let mut a2 = RdpAccountant::with_default_orders();
        for _ in 0..256 {
            a2.add_gaussian(8.0);
        }
        let (_, alpha_many) = a2.epsilon(1e-6);
        assert!(alpha_many < alpha_one, "{alpha_many} !< {alpha_one}");
    }

    #[test]
    fn add_curve_matches_add_gaussian() {
        let mut a = RdpAccountant::with_default_orders();
        a.add_gaussian(3.0);
        let mut b = RdpAccountant::with_default_orders();
        b.add_curve(|alpha| alpha / (2.0 * 9.0));
        let (ea, _) = a.epsilon(1e-5);
        let (eb, _) = b.epsilon(1e-5);
        assert!((ea - eb).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "orders must exceed 1")]
    fn rejects_bad_orders() {
        let _ = RdpAccountant::new(vec![0.5]);
    }

    #[test]
    fn add_gaussian_n_equals_repeated_adds() {
        for count in [1u64, 7, 256, 10_000] {
            let mut batched = RdpAccountant::with_default_orders();
            batched.add_gaussian_n(7.5, count);
            let mut looped = RdpAccountant::with_default_orders();
            for _ in 0..count {
                looped.add_gaussian(7.5);
            }
            for ((a, eb), (_, el)) in batched.curve().zip(looped.curve()) {
                assert!(
                    (eb - el).abs() <= 1e-12 * el.max(1.0),
                    "count={count} alpha={a}: {eb} vs {el}"
                );
            }
        }
    }

    #[test]
    fn add_pure_n_equals_repeated_adds() {
        for count in [1u64, 64, 4096] {
            let mut batched = RdpAccountant::with_default_orders();
            batched.add_pure_n(0.1, count);
            let mut looped = RdpAccountant::with_default_orders();
            for _ in 0..count {
                looped.add_pure(0.1);
            }
            for ((a, eb), (_, el)) in batched.curve().zip(looped.curve()) {
                assert!(
                    (eb - el).abs() <= 1e-12 * el.max(1.0),
                    "count={count} alpha={a}: {eb} vs {el}"
                );
            }
        }
    }

    #[test]
    fn exact_accountant_batch_equals_repeated_adds_exactly() {
        for count in [1u64, 7, 1000] {
            let mut batched = ExactRdpAccountant::with_orders(vec![2.0, 8.0, 64.0]);
            batched.add_gaussian_n(7.5, count);
            let mut looped = ExactRdpAccountant::with_orders(vec![2.0, 8.0, 64.0]);
            for _ in 0..count {
                looped.add_gaussian(7.5);
            }
            for ((a, eb), (_, el)) in batched.curve_exact().zip(looped.curve_exact()) {
                assert_eq!(eb, el, "count={count} alpha={a}");
            }
        }
    }

    #[test]
    fn exact_accountant_curve_dominates_f64_curve() {
        // Per-release charges round up, so the exact totals dominate the
        // float totals (up to the float's own summation error, which the
        // 1-ulp-per-term slack absorbs).
        let mut exact = ExactRdpAccountant::with_orders(vec![2.0, 16.0]);
        let mut float: RdpAccountant = RdpAccountant::with_orders(vec![2.0, 16.0]);
        for _ in 0..100 {
            exact.add_gaussian(3.0);
            float.add_gaussian(3.0);
            exact.add_pure(0.1);
            float.add_pure(0.1);
        }
        for ((_, de), (_, fe)) in exact.curve().zip(float.curve()) {
            assert!(de >= fe * (1.0 - 1e-12), "{de} vs {fe}");
        }
    }

    #[test]
    fn charge_batch_equals_repeated_charges() {
        let mut batched: Ledger<Zcdp> = Ledger::new(10.0);
        batched.charge_batch("batch", 0.001, 1000).unwrap();
        let mut looped: Ledger<Zcdp> = Ledger::new(10.0);
        for i in 0..1000 {
            looped.charge(format!("q{i}"), 0.001).unwrap();
        }
        assert!((batched.spent() - looped.spent()).abs() < 1e-12);
        assert_eq!(batched.entries().len(), 1);
        // A batch that would overrun is refused atomically.
        let err = batched.charge_batch("too-much", 0.01, 1000).unwrap_err();
        assert!((err.requested - 10.0).abs() < 1e-9);
        assert!((batched.spent() - 1.0).abs() < 1e-12, "ledger mutated");
    }

    #[test]
    fn charge_batch_overflowing_total_is_refused_not_panicked() {
        let mut ledger: Ledger<PureDp> = Ledger::new(1.0);
        ledger.charge("a", 0.25).unwrap();
        // 1e308 × 10 overflows to +inf: must come back as BudgetExceeded,
        // exactly like the per-release path's over-budget refusal.
        let err = ledger.charge_batch("huge", 1e308, 10).unwrap_err();
        assert!(err.requested.is_infinite());
        assert!((err.remaining - 0.75).abs() < 1e-12);
        assert!((ledger.spent() - 0.25).abs() < 1e-12, "ledger mutated");
    }

    #[test]
    fn charge_batch_zero_count_is_free() {
        let mut ledger: Ledger<PureDp> = Ledger::new(1.0);
        ledger.charge_batch("empty", 0.5, 0).unwrap();
        assert_eq!(ledger.spent(), 0.0);
    }

    /// `BudgetExceeded::remaining` must never report a negative budget:
    /// the f64 acceptance tolerance lets `spent` exceed the budget by up
    /// to 1e-12, and the clamp keeps the error message (and any retry
    /// logic keyed on it) sane.
    #[test]
    fn budget_exceeded_remaining_is_clamped_at_zero() {
        let mut ledger: Ledger<PureDp> = Ledger::new(1.0);
        // Accepted within the 1e-12 tolerance; spent now exceeds budget.
        ledger.charge("a", 1.0 + 1e-13).unwrap();
        assert!(ledger.spent() > 1.0);
        let err = ledger.charge("b", 0.5).unwrap_err();
        assert!(err.remaining >= 0.0, "remaining={}", err.remaining);
        assert_eq!(err.remaining, 0.0);
        assert_eq!(ledger.remaining(), 0.0);
    }

    #[test]
    fn exact_ledger_has_no_acceptance_tolerance() {
        // The same 1e-13 overshoot that the f64 carrier forgives is
        // refused exactly by the dyadic carrier.
        let mut ledger: ExactLedger<PureDp> = Ledger::new(1.0);
        let err = ledger.charge("a", 1.0 + 1e-13).unwrap_err();
        assert_eq!(err.remaining, Dyadic::from(1u64));
        assert_eq!(ledger.entries().len(), 0);
        // An exactly-fitting charge is accepted to the last lattice bit.
        ledger.charge("b", 1.0).unwrap();
        assert_eq!(ledger.remaining_exact(), Dyadic::zero());
    }

    #[test]
    fn spent_is_consistent_across_many_charges() {
        let mut ledger: Ledger<PureDp> = Ledger::new(1e9);
        let mut reference = 0.0f64;
        for i in 0..500 {
            let g = 0.01 + (i % 7) as f64 * 0.003;
            ledger.charge(format!("q{i}"), g).unwrap();
            reference = PureDp::compose(reference, g);
            assert!(
                (ledger.spent() - reference).abs() < 1e-9,
                "drift at charge {i}: {} vs {reference}",
                ledger.spent()
            );
        }
        assert_eq!(ledger.entries().len(), 500);
        // The cached total must equal re-folding the recorded entries
        // bit-for-bit (same left-fold order).
        let refold = ledger
            .entries()
            .iter()
            .fold(0.0, |acc, (_, g)| PureDp::compose(acc, *g));
        assert_eq!(ledger.spent(), refold);
    }

    /// Pins the rejection message shape: operators triage refusals from
    /// logs, so the message must name the carrier that refused and — for
    /// sharded refusals — the shard that ran dry.
    #[test]
    fn budget_exceeded_message_names_carrier_and_shard() {
        let mut f64_ledger: Ledger<PureDp> = Ledger::new(1.0);
        f64_ledger.charge("warmup", 0.75).unwrap();
        let err = f64_ledger.charge("big", 0.5).unwrap_err();
        assert_eq!(
            err.to_string(),
            "privacy budget exceeded: requested 0.5, remaining 0.25 [carrier: f64]"
        );

        let mut exact: ExactLedger<PureDp> = Ledger::new(1.0);
        let err = exact.charge("big", 1.5).unwrap_err();
        assert_eq!(
            err.to_string(),
            "privacy budget exceeded: requested 1.5, remaining 1 [carrier: dyadic]"
        );

        // Shard attribution renders inside the same bracket.
        let err = BudgetExceeded::<f64>::new(0.5, 0.0).at_shard(3);
        assert_eq!(
            err.to_string(),
            "privacy budget exceeded: requested 0.5, remaining 0 [carrier: f64, shard: 3]"
        );
        assert_eq!(err.shard, Some(3));

        // Principal attribution renders after the shard (a registry
        // refusal carries the principal; shard is usually absent).
        let err = BudgetExceeded::<f64>::new(0.5, 0.0).for_principal(42);
        assert_eq!(
            err.to_string(),
            "privacy budget exceeded: requested 0.5, remaining 0 [carrier: f64, principal: 42]"
        );
        assert_eq!(err.principal, Some(42));
        let err = BudgetExceeded::<f64>::new(0.5, 0.0)
            .at_shard(1)
            .for_principal(7);
        assert_eq!(
            err.to_string(),
            "privacy budget exceeded: requested 0.5, remaining 0 \
             [carrier: f64, shard: 1, principal: 7]"
        );
    }

    #[test]
    fn compose_n_matches_fold_for_all_notions() {
        fn check<D: AbstractDp>() {
            for n in [0u64, 1, 3, 1000] {
                let folded = (0..n).fold(0.0, |acc, _| D::compose(acc, 0.125));
                let vec = D::compose_n(0.125, n);
                assert!((folded - vec).abs() <= 1e-12 * folded.max(1.0), "{n}");
            }
        }
        check::<PureDp>();
        check::<Zcdp>();
        check::<crate::abstract_dp::RenyiDp<4>>();
    }
}
