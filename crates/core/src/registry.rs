//! Per-principal budget accounting: one allowance per user, sharded for
//! concurrency.
//!
//! Every accountant below this module meters **one** global budget — the
//! right shape for a single pipeline, the wrong one for a service facing
//! millions of users, where each principal (user, tenant, API key) owns an
//! individual privacy allowance and a crash or a hot neighbour must not
//! let anyone overspend theirs. [`BudgetRegistry`] is the per-principal
//! layer: a sharded concurrent map from principal id to spent budget,
//! enforcing the same no-overspend machinery as the global ledgers —
//! charges round **up** crossing the carrier boundary
//! ([`Budget::charge_from_f64`]), budgets round **down**
//! ([`Budget::budget_from_f64`]), acceptance is strict on exact carriers
//! and keeps the historical `1e-12` tolerance on `f64`, and refused
//! charges leave the ledger untouched.
//!
//! # Sharding
//!
//! Principals are hashed across `shards` independent mutexes (Fibonacci
//! multiplicative hashing), so concurrent charges to *different*
//! principals contend only when they collide on a shard — by contrast a
//! [`ShardedLedger`](crate::ShardedLedger) shards one budget across
//! workers, while the registry shards many budgets across locks. The two
//! compose: the registry gates who may spend, the sharded ledger meters a
//! global cap.
//!
//! # Recovery hooks
//!
//! The journal layer ([`crate::journal`]) replays recovered charges
//! through [`apply_unchecked`](BudgetRegistry::apply_unchecked), which
//! records spend **without** the admission check: recovery must never
//! silently shrink what was actually spent, even when a replayed (or
//! conservatively over-reported) total exceeds the stated allowance. A
//! principal whose recovered spend exceeds its budget simply has zero
//! remaining and refuses all further charges — degrade-to-reject.
//!
//! # Example
//!
//! ```
//! use sampcert_core::{BudgetRegistry, PureDp};
//!
//! // Every principal owns ε = 1, metered over 8 lock shards.
//! let reg: BudgetRegistry<PureDp> = BudgetRegistry::new(1.0, 8);
//! reg.charge(7, 0.75).unwrap();
//! reg.charge(9, 0.5).unwrap(); // independent allowance
//! let err = reg.charge(7, 0.5).unwrap_err();
//! assert_eq!(err.principal, Some(7));
//! assert!((reg.remaining(7) - 0.25).abs() < 1e-12);
//! ```

use crate::abstract_dp::AbstractDp;
use crate::accountant::BudgetExceeded;
use crate::budget::Budget;
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::{Arc, Mutex};

/// A [`BudgetRegistry`] metering exactly on the dyadic lattice.
pub type ExactBudgetRegistry<D> = BudgetRegistry<D, sampcert_arith::Dyadic>;

/// A sharded concurrent map of per-principal privacy ledgers.
///
/// Cheap to clone and share across threads (the shard table is behind an
/// `Arc`); see the module-level docs above for the enforcement contract.
pub struct BudgetRegistry<D: AbstractDp, B: Budget = f64> {
    shards: Arc<Vec<Mutex<HashMap<u64, B>>>>,
    per_principal: B,
    _notion: PhantomData<D>,
}

impl<D: AbstractDp, B: Budget> Clone for BudgetRegistry<D, B> {
    fn clone(&self) -> Self {
        BudgetRegistry {
            shards: Arc::clone(&self.shards),
            per_principal: self.per_principal.clone(),
            _notion: PhantomData,
        }
    }
}

impl<D: AbstractDp, B: Budget> std::fmt::Debug for BudgetRegistry<D, B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BudgetRegistry")
            .field("per_principal", &self.per_principal)
            .field("shards", &self.shards.len())
            .field("principals", &self.principals())
            .finish()
    }
}

impl<D: AbstractDp, B: Budget> BudgetRegistry<D, B> {
    /// Creates a registry granting every principal the same budget,
    /// converted into the carrier with **downward** rounding (conservative
    /// for an allowance, as everywhere in the tree).
    ///
    /// # Panics
    ///
    /// Panics if `per_principal` is negative or not finite, or `shards`
    /// is zero.
    pub fn new(per_principal: f64, shards: usize) -> Self {
        assert!(
            per_principal.is_finite() && per_principal >= 0.0,
            "invalid budget"
        );
        Self::with_budget(B::budget_from_f64(per_principal), shards)
    }

    /// Creates a registry from a per-principal budget already in the
    /// carrier — the lossless entry point for exact budgets.
    ///
    /// # Panics
    ///
    /// Panics if `per_principal` is not a valid budget quantity or
    /// `shards` is zero.
    pub fn with_budget(per_principal: B, shards: usize) -> Self {
        assert!(per_principal.is_valid(), "invalid budget");
        assert!(shards > 0, "BudgetRegistry: need at least one shard");
        BudgetRegistry {
            shards: Arc::new((0..shards).map(|_| Mutex::new(HashMap::new())).collect()),
            per_principal,
            _notion: PhantomData,
        }
    }

    /// The budget every principal is granted, in the carrier.
    pub fn per_principal_budget(&self) -> &B {
        &self.per_principal
    }

    /// Number of lock shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of principals with recorded spend (including zero-spend
    /// entries created by accepted zero charges).
    pub fn principals(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("registry shard poisoned").len())
            .sum()
    }

    /// Fibonacci multiplicative hashing: principal ids are often dense
    /// (sequential user ids), which a plain modulus maps to striped
    /// shards; the golden-ratio multiply decorrelates them first.
    fn shard_of(&self, principal: u64) -> &Mutex<HashMap<u64, B>> {
        let mixed = principal.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(mixed % self.shards.len() as u64) as usize]
    }

    /// Records a release by `principal` costing `gamma`, converted into
    /// the carrier with **upward** rounding.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExceeded`] — naming the principal — when the charge
    /// would exceed that principal's allowance; their ledger is unchanged.
    pub fn charge(&self, principal: u64, gamma: f64) -> Result<(), BudgetExceeded<B>> {
        assert!(gamma.is_finite() && gamma >= 0.0, "invalid charge");
        self.charge_exact(principal, B::charge_from_f64(gamma))
    }

    /// Records a batch of `count` releases by `principal`, each costing
    /// `gamma_each`, composed in O(1) via [`Budget::compose_n`];
    /// all-or-nothing.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExceeded`] when the batch does not fit.
    pub fn charge_batch(
        &self,
        principal: u64,
        gamma_each: f64,
        count: u64,
    ) -> Result<(), BudgetExceeded<B>> {
        assert!(
            gamma_each.is_finite() && gamma_each >= 0.0,
            "invalid charge"
        );
        let total = B::compose_n::<D>(&B::charge_from_f64(gamma_each), count);
        if !total.is_valid() {
            let remaining = self.remaining_exact(principal);
            return Err(BudgetExceeded::new(total, remaining).for_principal(principal));
        }
        self.charge_exact(principal, total)
    }

    /// Records a release whose cost is already in the carrier (no
    /// conversion, no rounding). Check and apply happen atomically under
    /// the principal's shard lock.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExceeded`] when the charge does not fit.
    pub fn charge_exact(&self, principal: u64, gamma: B) -> Result<(), BudgetExceeded<B>> {
        assert!(gamma.is_valid(), "invalid charge");
        let mut shard = self
            .shard_of(principal)
            .lock()
            .expect("registry shard poisoned");
        let spent = shard.entry(principal).or_insert_with(B::zero);
        let new_spent = B::compose::<D>(spent, &gamma);
        if B::exceeds(&new_spent, &self.per_principal) {
            let remaining = self.per_principal.saturating_sub(spent);
            return Err(BudgetExceeded::new(gamma, remaining).for_principal(principal));
        }
        *spent = new_spent;
        Ok(())
    }

    /// The admission check of [`charge_exact`](Self::charge_exact),
    /// without applying — the write-ahead half of a durable charge (the
    /// journal appends between check and
    /// [`apply_unchecked`](Self::apply_unchecked); the caller is
    /// responsible for serializing the two, which
    /// [`DurableRegistry`](crate::DurableRegistry) does under its
    /// journal lock).
    ///
    /// # Errors
    ///
    /// Returns the same refusal [`charge_exact`](Self::charge_exact)
    /// would.
    pub fn check_exact(&self, principal: u64, gamma: &B) -> Result<(), BudgetExceeded<B>> {
        assert!(gamma.is_valid(), "invalid charge");
        let shard = self
            .shard_of(principal)
            .lock()
            .expect("registry shard poisoned");
        let zero = B::zero();
        let spent = shard.get(&principal).unwrap_or(&zero);
        let new_spent = B::compose::<D>(spent, gamma);
        if B::exceeds(&new_spent, &self.per_principal) {
            let remaining = self.per_principal.saturating_sub(spent);
            return Err(BudgetExceeded::new(gamma.clone(), remaining).for_principal(principal));
        }
        Ok(())
    }

    /// [`check_exact`](Self::check_exact) against committed spend
    /// **plus** `reserved` — spend admitted but not yet applied. The
    /// group-commit journal checks admission at enqueue time but applies
    /// only after the batch fsync; counting the in-flight reservations
    /// here keeps two concurrent chargers from both passing against
    /// committed spend and jointly overshooting the allowance. The
    /// refusal's `remaining` treats reservations as already spent.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExceeded`] when committed ⊕ reserved ⊕ gamma
    /// exceeds the allowance.
    pub fn check_exact_reserved(
        &self,
        principal: u64,
        reserved: &B,
        gamma: &B,
    ) -> Result<(), BudgetExceeded<B>> {
        assert!(gamma.is_valid(), "invalid charge");
        assert!(reserved.is_valid(), "invalid reservation");
        let shard = self
            .shard_of(principal)
            .lock()
            .expect("registry shard poisoned");
        let zero = B::zero();
        let spent = shard.get(&principal).unwrap_or(&zero);
        let committed = B::compose::<D>(spent, reserved);
        let new_spent = B::compose::<D>(&committed, gamma);
        if B::exceeds(&new_spent, &self.per_principal) {
            let remaining = self.per_principal.saturating_sub(&committed);
            return Err(BudgetExceeded::new(gamma.clone(), remaining).for_principal(principal));
        }
        Ok(())
    }

    /// Records spend **without** the admission check — the replay
    /// primitive. Recovery must reconstruct what was actually (or
    /// conservatively assumed to be) spent even past the stated allowance;
    /// an over-budget principal then has zero remaining and every further
    /// [`charge`](Self::charge) is refused.
    pub fn apply_unchecked(&self, principal: u64, gamma: &B) {
        assert!(gamma.is_valid(), "invalid charge");
        let mut shard = self
            .shard_of(principal)
            .lock()
            .expect("registry shard poisoned");
        let spent = shard.entry(principal).or_insert_with(B::zero);
        *spent = B::compose::<D>(spent, gamma);
    }

    /// Total spent by `principal`, in the carrier (zero if never seen).
    pub fn spent_exact(&self, principal: u64) -> B {
        self.shard_of(principal)
            .lock()
            .expect("registry shard poisoned")
            .get(&principal)
            .cloned()
            .unwrap_or_else(B::zero)
    }

    /// Total spent by `principal`, as `f64` for reporting.
    pub fn spent(&self, principal: u64) -> f64 {
        self.spent_exact(principal).to_f64()
    }

    /// Remaining allowance of `principal`: `max(budget − spent, 0)`.
    pub fn remaining_exact(&self, principal: u64) -> B {
        self.per_principal
            .saturating_sub(&self.spent_exact(principal))
    }

    /// Remaining allowance of `principal`, as `f64` for reporting.
    pub fn remaining(&self, principal: u64) -> f64 {
        self.remaining_exact(principal).to_f64()
    }

    /// Sum of all principals' spend (composed additively) — exact on exact
    /// carriers. Takes each shard lock once.
    pub fn total_spent_exact(&self) -> B {
        let mut total = B::zero();
        for shard in self.shards.iter() {
            for spent in shard.lock().expect("registry shard poisoned").values() {
                total = total.add(spent);
            }
        }
        total
    }

    /// A consistent-per-shard snapshot of `(principal, spent)` pairs,
    /// sorted by principal id — the checkpoint payload. Each shard is
    /// locked once; concurrent charges may land between shards, so the
    /// snapshot is a *lower bound* on spend at return time (never an
    /// overstatement of remaining budget when restored, because restoring
    /// replays the journal suffix on top).
    pub fn snapshot(&self) -> Vec<(u64, B)> {
        let mut entries: Vec<(u64, B)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .expect("registry shard poisoned")
                    .iter()
                    .map(|(p, b)| (*p, b.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        entries.sort_by_key(|(p, _)| *p);
        entries
    }
}

/// A read-only view of a [`BudgetRegistry`].
///
/// [`DurableRegistry::registry`](crate::DurableRegistry::registry) hands
/// out this view instead of the registry itself: the registry's mutators
/// (`charge*`, `apply_unchecked`) take `&self`, so exposing it would let
/// callers record spend behind the write-ahead journal's back — spend
/// that vanishes on recovery. The view exposes every report and nothing
/// that mutates.
#[derive(Clone, Copy)]
pub struct RegistryView<'a, D: AbstractDp, B: Budget> {
    inner: &'a BudgetRegistry<D, B>,
}

impl<D: AbstractDp, B: Budget> std::fmt::Debug for RegistryView<'_, D, B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("RegistryView").field(self.inner).finish()
    }
}

impl<'a, D: AbstractDp, B: Budget> RegistryView<'a, D, B> {
    pub(crate) fn new(inner: &'a BudgetRegistry<D, B>) -> Self {
        RegistryView { inner }
    }

    /// The budget every principal is granted, in the carrier.
    pub fn per_principal_budget(&self) -> &'a B {
        self.inner.per_principal_budget()
    }

    /// Number of lock shards.
    pub fn shards(&self) -> usize {
        self.inner.shards()
    }

    /// Number of principals with recorded spend.
    pub fn principals(&self) -> usize {
        self.inner.principals()
    }

    /// Total spent by `principal`, in the carrier (zero if never seen).
    pub fn spent_exact(&self, principal: u64) -> B {
        self.inner.spent_exact(principal)
    }

    /// Total spent by `principal`, as `f64` for reporting.
    pub fn spent(&self, principal: u64) -> f64 {
        self.inner.spent(principal)
    }

    /// Remaining allowance of `principal`: `max(budget − spent, 0)`.
    pub fn remaining_exact(&self, principal: u64) -> B {
        self.inner.remaining_exact(principal)
    }

    /// Remaining allowance of `principal`, as `f64` for reporting.
    pub fn remaining(&self, principal: u64) -> f64 {
        self.inner.remaining(principal)
    }

    /// Sum of all principals' spend — exact on exact carriers.
    pub fn total_spent_exact(&self) -> B {
        self.inner.total_spent_exact()
    }

    /// A consistent-per-shard snapshot of `(principal, spent)` pairs,
    /// sorted by principal id.
    pub fn snapshot(&self) -> Vec<(u64, B)> {
        self.inner.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstract_dp::PureDp;
    use sampcert_arith::Dyadic;

    #[test]
    fn registries_are_send_and_cheap_to_clone() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BudgetRegistry<PureDp, f64>>();
        assert_send_sync::<ExactBudgetRegistry<PureDp>>();
        let reg: BudgetRegistry<PureDp> = BudgetRegistry::new(1.0, 4);
        reg.charge(1, 0.5).unwrap();
        let view = reg;
        assert_eq!(view.spent(1), 0.5, "clone shares state");
    }

    #[test]
    fn principals_are_metered_independently() {
        let reg: ExactBudgetRegistry<PureDp> = BudgetRegistry::new(1.0, 4);
        for p in 0..100u64 {
            reg.charge(p, 0.75).unwrap();
        }
        // Every principal has 0.25 left; none can take 0.5.
        for p in 0..100u64 {
            let err = reg.charge(p, 0.5).unwrap_err();
            assert_eq!(err.principal, Some(p));
            assert_eq!(err.remaining, Dyadic::from_f64_ceil(0.25));
            reg.charge(p, 0.25).unwrap();
        }
        assert_eq!(reg.principals(), 100);
        assert_eq!(reg.total_spent_exact(), Dyadic::from(100u64));
    }

    #[test]
    fn refusal_leaves_ledger_unchanged_and_names_principal() {
        let reg: ExactBudgetRegistry<PureDp> = BudgetRegistry::new(1.0, 2);
        reg.charge(42, 0.75).unwrap();
        let err = reg.charge(42, 0.5).unwrap_err();
        assert_eq!(err.principal, Some(42));
        assert_eq!(err.shard, None);
        assert!(err.to_string().contains("[carrier: dyadic, principal: 42]"));
        assert_eq!(reg.spent_exact(42), Dyadic::from_f64_ceil(0.75));
    }

    #[test]
    fn charge_batch_is_atomic_per_principal() {
        let reg: ExactBudgetRegistry<PureDp> = BudgetRegistry::new(1.0, 2);
        reg.charge_batch(5, 0.125, 4).unwrap();
        assert_eq!(reg.spent_exact(5), Dyadic::from_f64_ceil(0.5));
        let err = reg.charge_batch(5, 0.125, 8).unwrap_err();
        assert_eq!(err.principal, Some(5));
        assert_eq!(reg.spent_exact(5), Dyadic::from_f64_ceil(0.5));
        // Overflowing batch totals (f64 carrier) are refused, not
        // panicked; the exact carrier has no overflow to guard.
        let f64_reg: BudgetRegistry<PureDp> = BudgetRegistry::new(1.0, 2);
        let err = f64_reg.charge_batch(6, 1e308, 10).unwrap_err();
        assert!(err.requested.is_infinite());
        assert_eq!(f64_reg.spent(6), 0.0);
    }

    #[test]
    fn check_then_apply_equals_charge() {
        let reg: ExactBudgetRegistry<PureDp> = BudgetRegistry::new(1.0, 2);
        let g = Dyadic::from_f64_ceil(0.25);
        for _ in 0..4 {
            reg.check_exact(9, &g).unwrap();
            reg.apply_unchecked(9, &g);
        }
        assert!(reg.check_exact(9, &g).is_err());
        let reference: ExactBudgetRegistry<PureDp> = BudgetRegistry::new(1.0, 2);
        for _ in 0..4 {
            reference.charge_exact(9, g.clone()).unwrap();
        }
        assert_eq!(reg.spent_exact(9), reference.spent_exact(9));
    }

    #[test]
    fn apply_unchecked_may_exceed_and_then_refuses() {
        let reg: ExactBudgetRegistry<PureDp> = BudgetRegistry::new(1.0, 2);
        // Replayed spend past the allowance is recorded faithfully…
        reg.apply_unchecked(3, &Dyadic::from(2u64));
        assert_eq!(reg.spent_exact(3), Dyadic::from(2u64));
        // …and the principal is then refused everything — even a zero
        // charge, since their composed total already exceeds the budget.
        assert_eq!(reg.remaining_exact(3), Dyadic::zero());
        assert!(reg.charge(3, 1e-9).is_err());
        assert!(reg.charge(3, 0.0).is_err());
    }

    #[test]
    fn snapshot_is_sorted_and_exact() {
        let reg: ExactBudgetRegistry<PureDp> = BudgetRegistry::new(10.0, 4);
        for p in [9u64, 2, 7, 4] {
            reg.charge(p, 0.5 + p as f64 * 0.125).unwrap();
        }
        let snap = reg.snapshot();
        let ids: Vec<u64> = snap.iter().map(|(p, _)| *p).collect();
        assert_eq!(ids, vec![2, 4, 7, 9]);
        for (p, spent) in snap {
            assert_eq!(spent, reg.spent_exact(p));
        }
    }

    #[test]
    fn concurrent_charges_never_overspend_any_principal() {
        // 8 threads hammer 16 principals; each principal's final spend
        // must respect their budget exactly (dyadic carrier).
        let reg: ExactBudgetRegistry<PureDp> = BudgetRegistry::new(1.0, 4);
        std::thread::scope(|s| {
            for t in 0..8 {
                let reg = reg.clone();
                s.spawn(move || {
                    for i in 0..200u64 {
                        let p = (t * 31 + i * 7) % 16;
                        let _ = reg.charge(p, 0.03125);
                    }
                });
            }
        });
        for p in 0..16u64 {
            assert!(
                reg.spent_exact(p) <= Dyadic::from(1u64),
                "principal {p} overspent: {}",
                reg.spent(p)
            );
        }
    }

    #[test]
    #[should_panic(expected = "need at least one shard")]
    fn zero_shards_rejected() {
        let _: BudgetRegistry<PureDp> = BudgetRegistry::new(1.0, 0);
    }
}
