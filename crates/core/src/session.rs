//! The front door: one typestate [`Session`] over every carrier ×
//! accountant × executor × entropy combination.
//!
//! PRs 2–4 grew the serving surface along three independent axes —
//! batching (`run_many`/`run_batch`), exact carriers
//! (`charge_exact`/[`ExactLedger`](crate::ExactLedger)) and concurrency
//! ([`ShardedLedger`]/`NoiseServer`) — leaving callers to hand-wire the
//! combinations through ~20 near-duplicate entry points. A [`Session`]
//! closes the configuration space behind a single builder:
//!
//! - the budget **carrier** (`f64` or exact
//!   [`Dyadic`](sampcert_arith::Dyadic)) — [`SessionBuilder::exact`] /
//!   [`SessionBuilder::carrier`];
//! - the **accountant** (pure-notion [`Ledger`] or Rényi [`RdpMeter`],
//!   each global or sharded) — [`SessionBuilder::ledger`],
//!   [`SessionBuilder::sharded_ledger`], [`SessionBuilder::rdp`],
//!   [`SessionBuilder::sharded_rdp`];
//! - the **executor** (the in-core single-lane [`Inline`], or any
//!   [`SpawnExecutor`] such as `sampcert-mechanisms`' `NoiseServer` pool)
//!   — [`SessionBuilder::inline`] / [`SessionBuilder::executor`];
//! - the **entropy backend** ([`Entropy::Os`] or a replayable
//!   [`Entropy::Seeded`] split-seed tree) — [`SessionBuilder::entropy`].
//!
//! Serving goes through three polymorphic methods —
//! [`Session::answer`], [`Session::answer_many`] and
//! [`Session::stream_into`] — each taking a [`Request`]: a mechanism plus
//! its privacy price, constructed from raw calibrated noise
//! ([`Request::noise`]), any typed [`Private`] mechanism
//! ([`Request::from_private`]), or the request constructors in
//! `sampcert-mechanisms` (histogram, workload, SVT, count, mean). Every
//! serve is **charge-before-serve**: a refused request releases nothing,
//! and a global accountant's refusal touches no byte source at all (on a
//! sharded accountant, lanes whose shard admitted its chunk have already
//! advanced their streams before another shard refused — the drawn noise
//! is discarded unreleased and the charge stays spent, the conservative
//! direction). The released bytes are identical to the legacy entry
//! points' (pinned by `tests/session_api.rs`).
//!
//! # The typestate guard
//!
//! Illegal combinations do not build. The accountant drives the executor
//! through the [`Accountant`] trait, and sharded accountants only
//! implement it for [`ShardedExecutor`]s — so a sharded ledger can never
//! silently drop its shards onto a single-lane executor:
//!
//! ```compile_fail
//! use sampcert_core::{PureDp, Session};
//! // A sharded ledger over the single-lane inline executor: rejected at
//! // compile time (no `Accountant` impl links the two).
//! let _ = Session::<PureDp>::builder()
//!     .sharded_ledger(1.0)
//!     .inline()
//!     .build();
//! ```
//!
//! ```compile_fail
//! use sampcert_core::{Session, Zcdp};
//! // Sharded RDP accounting is equally inexpressible on a single lane.
//! let _ = Session::<Zcdp>::builder()
//!     .sharded_rdp(1e-6, 4.0)
//!     .inline()
//!     .build();
//! ```
//!
//! # Per-principal and durable sessions
//!
//! A fourth accountant choice, [`SessionBuilder::registry`], gives every
//! *principal* (user id) its own allowance in a
//! [`BudgetRegistry`](crate::BudgetRegistry); chaining
//! [`SessionBuilder::durable`] puts a write-ahead charge journal
//! (`crate::DurableRegistry`) underneath it, with crash recovery
//! replayed at the builder step. Per-principal sessions build with
//! [`SessionBuilder::build_per_principal`] and serve through
//! [`Session::answer_for`] / [`Session::answer_many_for`] /
//! [`Session::stream_into_for`]; the principal-less [`Session::answer`]
//! does not type-check on them — who pays is part of the request, not a
//! convention:
//!
//! ```compile_fail
//! use sampcert_core::{PureDp, Request, Session};
//! let mut s = Session::<PureDp>::builder()
//!     .registry(1.0)
//!     .inline()
//!     .build_per_principal();
//! let req: Request<PureDp, (), i64> = Request::noise(2, 1);
//! // No principal named, no charge attributable: rejected at compile
//! // time (a registry session has no global `answer`).
//! let _ = s.answer(&req, &[]);
//! ```
//!
//! ```
//! use sampcert_core::{PureDp, Request, Session};
//!
//! let mut s = Session::<PureDp>::builder()
//!     .exact()
//!     .registry(1.0)
//!     .inline()
//!     .seeded(5)
//!     .build_per_principal();
//! let req: Request<PureDp, (), i64> = Request::noise(2, 1); // ε = 1/2 per draw
//!
//! s.answer_for(1, &req, &[]).unwrap();
//! s.answer_for(1, &req, &[]).unwrap();
//! assert!(s.answer_for(1, &req, &[]).is_err()); // principal 1 is dry...
//! s.answer_for(2, &req, &[]).unwrap(); // ...principal 2 is unaffected
//! ```
//!
//! On durable sessions every admitted charge is journaled and fsynced
//! **before** the answer is drawn; a journal that cannot be written
//! refuses the request ([`SessionError::Journal`], degrade-to-reject —
//! never degrade-to-serve-uncharged).
//!
//! # Async serving and admission control
//!
//! [`Session::answer_async`] / [`Session::answer_for_async`] return
//! futures servable on any executor (the in-tree runtime is
//! `sampcert-rt`). The serve itself is unchanged — the first poll runs
//! the exact charge-then-serve path [`Session::answer`] runs, so the
//! released bytes and the recorded charges are identical — but
//! **admission control** runs at future construction, *before* any
//! charge is attempted. An [`AdmissionPolicy`] (installed with
//! [`SessionBuilder::admission`]) can reject a request in two ways, each
//! with its own [`SessionError`] variant:
//!
//! - [`SessionError::QueueFull`]: the session's ingress queue (tracked
//!   by a shared [`IngressGauge`]) is over the policy's depth bound —
//!   backpressure under overload;
//! - [`SessionError::Shed`]: the accountant's remaining budget (global
//!   ledgers, per-principal registries) or
//!   [`granted_upper_bound`](ShardedLedger::granted_upper_bound)
//!   (sharded ledgers) says the request cannot be served — load shedding
//!   keyed on the accounting state itself.
//!
//! The **shed-before-charge invariant**: a shed or queue-full refusal
//! spends nothing, journals nothing, releases nothing, and consumes no
//! entropy — the accountant is exactly as if the request never arrived
//! (pinned by `tests/admission.rs`).
//!
//! # Example
//!
//! ```
//! use sampcert_core::{count_query, Entropy, Private, PureDp, Request, Session};
//!
//! // Carrier f64, global ledger, inline executor, replayable entropy.
//! let mut session = Session::<PureDp>::builder()
//!     .ledger(1.0)
//!     .inline()
//!     .entropy(Entropy::seeded(7))
//!     .build();
//!
//! let count: Private<PureDp, u32, i64> =
//!     Private::noised_query(&count_query(), 1, 4);
//! let req = Request::from_private(&count, "count");
//! let db: Vec<u32> = (0..100).collect();
//!
//! // Four answers, one batched charge of 4 × ε/4 — the whole budget.
//! let answers = session.answer_many(&req, &db, 4).unwrap();
//! assert_eq!(answers.len(), 4);
//! assert!((session.accountant().spent() - 1.0).abs() < 1e-12);
//!
//! // A fifth release of the same mechanism no longer fits ε = 1.
//! assert!(session.answer(&req, &db).is_err());
//! ```

use crate::abstract_dp::{AbstractDp, PureDp, Zcdp};
use crate::accountant::{BudgetExceeded, Ledger, RdpAccountant};
use crate::budget::Budget;
use crate::journal::{
    DurableChargeError, DurableOptions, DurableRegistry, FileStorage, JournalError, JournalStorage,
    RecoveryError,
};
use crate::mechanism::Mechanism;
use crate::noise::DpNoise;
use crate::private::Private;
use crate::query::Query;
use crate::registry::BudgetRegistry;
use crate::sharded::ShardedLedger;
use sampcert_slang::{ByteSource, OsByteSource, SplitSeed, Value};
use std::future::Future;
use std::marker::PhantomData;
use std::pin::Pin;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll};

// ---------------------------------------------------------------------------
// Entropy
// ---------------------------------------------------------------------------

/// Where a session's randomness comes from — the entropy axis of the
/// builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Entropy {
    /// OS entropy: every executor lane draws from its own operating-system
    /// source. The deployment backend.
    Os,
    /// A replayable [`SplitSeed`] tree: lane `i` draws the pairwise
    /// independent stream `root.stream(i)`. The test/audit backend —
    /// re-building a session with the same seed and lane count replays
    /// identical outputs.
    Seeded(SplitSeed),
}

impl Entropy {
    /// [`Entropy::Seeded`] from a raw root seed
    /// (`Entropy::Seeded(SplitSeed::new(root))`).
    pub fn seeded(root: u64) -> Self {
        Entropy::Seeded(SplitSeed::new(root))
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// An execution-backend failure (a worker died, a pool was misconfigured,
/// a remote backend went away) — the non-budget half of [`SessionError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutorFailure {
    reason: String,
}

impl ExecutorFailure {
    /// A failure with a human-readable reason.
    pub fn new(reason: impl Into<String>) -> Self {
        ExecutorFailure {
            reason: reason.into(),
        }
    }

    /// The reason the executor failed.
    pub fn reason(&self) -> &str {
        &self.reason
    }
}

impl std::fmt::Display for ExecutorFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "executor failure: {}", self.reason)
    }
}

impl std::error::Error for ExecutorFailure {}

/// The admission-control refusal behind [`SessionError::Shed`]: the
/// accountant's accounting state proves (conservatively — see
/// [`Admission`]) that the request cannot be served, so it is rejected
/// **before** any charge is attempted. Nothing is spent, journaled, or
/// released, and no entropy is consumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionShed {
    reason: String,
}

impl AdmissionShed {
    /// A shed with a human-readable reason naming the refusing headroom
    /// check.
    pub fn new(reason: impl Into<String>) -> Self {
        AdmissionShed {
            reason: reason.into(),
        }
    }

    /// Why the request was shed.
    pub fn reason(&self) -> &str {
        &self.reason
    }
}

impl std::fmt::Display for AdmissionShed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "request shed before charging: {}", self.reason)
    }
}

impl std::error::Error for AdmissionShed {}

/// The backpressure refusal behind [`SessionError::QueueFull`]: the
/// session's ingress queue depth (read from the shared [`IngressGauge`])
/// exceeded the [`AdmissionPolicy`]'s configured bound. Nothing was
/// charged or released.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull {
    depth: usize,
    bound: usize,
}

impl QueueFull {
    /// A queue-full refusal observed at `depth` against `bound`.
    pub fn new(depth: usize, bound: usize) -> Self {
        QueueFull { depth, bound }
    }

    /// The queue depth observed at admission time.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The policy's configured depth bound.
    pub fn bound(&self) -> usize {
        self.bound
    }
}

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ingress queue full: depth {} exceeds bound {}",
            self.depth, self.bound
        )
    }
}

impl std::error::Error for QueueFull {}

/// Everything [`Session::answer`] and friends can refuse with: the budget
/// ran dry, the execution backend failed, or (on the async surface)
/// admission control rejected the request before charging.
///
/// Every variant chains its cause through
/// [`std::error::Error::source`], so `anyhow`-style error walks see the
/// underlying [`BudgetExceeded`] (with its carrier and shard attribution),
/// [`ExecutorFailure`], [`JournalError`], [`AdmissionShed`] or
/// [`QueueFull`].
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError<B: Budget = f64> {
    /// The accountant refused the charge; nothing was released. Global
    /// accountants consumed no entropy; on a sharded accountant, lanes
    /// whose shard admitted its chunk advanced their streams before the
    /// refusing shard was reached (the drawn noise is discarded, the
    /// charge stays spent — conservative).
    Budget(BudgetExceeded<B>),
    /// The execution backend failed; any budget charged for the refused
    /// answers stays spent (the conservative direction).
    Executor(ExecutorFailure),
    /// A durable session's write-ahead journal could not durably record
    /// the charge. The policy is **degrade-to-reject**: the charge was
    /// not applied and nothing was released — a session never degrades to
    /// serving uncharged. The journal also latches closed on the first
    /// write failure (a failed append can leave a torn fragment, and
    /// writing past it would make the whole log unrecoverable), so every
    /// later charge is refused too; recovery is a restart — rebuild the
    /// session over the surviving journal, whose tail the torn-tail rule
    /// handles.
    Journal(JournalError),
    /// Admission control shed the request **before any charge was
    /// attempted**: the accountant's remaining budget (or, sharded,
    /// [`granted_upper_bound`](ShardedLedger::granted_upper_bound))
    /// proves the request cannot be served. Nothing was spent, journaled,
    /// or released — the shed-before-charge invariant. Only the async
    /// surface ([`Session::answer_async`]) sheds; the synchronous paths
    /// run the authoritative charge check directly.
    Shed(AdmissionShed),
    /// The session's ingress queue is over the [`AdmissionPolicy`]'s
    /// depth bound — backpressure under overload. Nothing was charged or
    /// released; the caller should retry later or route elsewhere.
    QueueFull(QueueFull),
}

impl<B: Budget> SessionError<B> {
    /// The budget refusal, if that is what this error is.
    pub fn as_budget(&self) -> Option<&BudgetExceeded<B>> {
        match self {
            SessionError::Budget(e) => Some(e),
            SessionError::Executor(_)
            | SessionError::Journal(_)
            | SessionError::Shed(_)
            | SessionError::QueueFull(_) => None,
        }
    }

    /// The journal failure, if that is what this error is.
    pub fn as_journal(&self) -> Option<&JournalError> {
        match self {
            SessionError::Journal(e) => Some(e),
            SessionError::Budget(_)
            | SessionError::Executor(_)
            | SessionError::Shed(_)
            | SessionError::QueueFull(_) => None,
        }
    }

    /// The admission shed, if that is what this error is.
    pub fn as_shed(&self) -> Option<&AdmissionShed> {
        match self {
            SessionError::Shed(e) => Some(e),
            _ => None,
        }
    }

    /// The queue-full backpressure refusal, if that is what this error
    /// is.
    pub fn as_queue_full(&self) -> Option<&QueueFull> {
        match self {
            SessionError::QueueFull(e) => Some(e),
            _ => None,
        }
    }

    /// Whether this refusal came from admission control
    /// ([`Shed`](SessionError::Shed) or
    /// [`QueueFull`](SessionError::QueueFull)) — i.e. whether the
    /// shed-before-charge invariant guarantees this request spent
    /// nothing at all.
    pub fn is_admission(&self) -> bool {
        matches!(self, SessionError::Shed(_) | SessionError::QueueFull(_))
    }
}

impl<B: Budget> std::fmt::Display for SessionError<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Budget(_) => write!(f, "session refused: privacy budget exceeded"),
            SessionError::Executor(_) => write!(f, "session refused: executor failure"),
            SessionError::Journal(_) => {
                write!(
                    f,
                    "session refused: journal failure (nothing charged, nothing released)"
                )
            }
            SessionError::Shed(_) => {
                write!(
                    f,
                    "session refused: shed before charging (admission control)"
                )
            }
            SessionError::QueueFull(_) => {
                write!(f, "session refused: ingress queue full (backpressure)")
            }
        }
    }
}

impl<B: Budget> std::error::Error for SessionError<B> {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionError::Budget(e) => Some(e),
            SessionError::Executor(e) => Some(e),
            SessionError::Journal(e) => Some(e),
            SessionError::Shed(e) => Some(e),
            SessionError::QueueFull(e) => Some(e),
        }
    }
}

impl<B: Budget> From<BudgetExceeded<B>> for SessionError<B> {
    fn from(e: BudgetExceeded<B>) -> Self {
        SessionError::Budget(e)
    }
}

impl<B: Budget> From<ExecutorFailure> for SessionError<B> {
    fn from(e: ExecutorFailure) -> Self {
        SessionError::Executor(e)
    }
}

impl<B: Budget> From<JournalError> for SessionError<B> {
    fn from(e: JournalError) -> Self {
        SessionError::Journal(e)
    }
}

impl<B: Budget> From<AdmissionShed> for SessionError<B> {
    fn from(e: AdmissionShed) -> Self {
        SessionError::Shed(e)
    }
}

impl<B: Budget> From<QueueFull> for SessionError<B> {
    fn from(e: QueueFull) -> Self {
        SessionError::QueueFull(e)
    }
}

impl<B: Budget> From<DurableChargeError<B>> for SessionError<B> {
    fn from(e: DurableChargeError<B>) -> Self {
        match e {
            DurableChargeError::Budget(e) => SessionError::Budget(e),
            DurableChargeError::Journal(e) => SessionError::Journal(e),
        }
    }
}

// ---------------------------------------------------------------------------
// Executors
// ---------------------------------------------------------------------------

/// An execution backend: something that can draw `n` independent outputs
/// of a mechanism. Implemented by the in-core [`Inline`] executor and by
/// `sampcert-mechanisms`' `NoiseServer` worker pool; future async or
/// multi-process backends slot in behind the same trait.
///
/// The contract every implementation honours (and the equivalence suite
/// pins): the `n` outputs are what `n` sequential
/// [`Mechanism::run`](crate::Mechanism::run) calls would draw from the
/// backend's stream(s) — execution changes *which verified stream* a draw
/// comes from, never the distribution it is drawn from.
pub trait Executor {
    /// Number of independent lanes (byte streams) this executor serves
    /// from. `1` for [`Inline`]; the worker count for a pool.
    fn lanes(&self) -> usize;

    /// How a batch of `n` answers is split across the lanes: lane `i`
    /// serves `partition(n)[i]` answers, and
    /// [`run_into`](Self::run_into) returns them concatenated in lane
    /// order. The default is the contiguous-chunk rule
    /// ([`lane_partition`]); a backend that schedules differently
    /// (work-stealing, round-robin) **must** override this so per-lane
    /// accounting ([`ShardedRdpMeter`]) attributes answers to the lanes
    /// that actually serve them.
    fn partition(&self, n: usize) -> Vec<usize> {
        lane_partition(n, self.lanes())
    }

    /// Draws `n` outputs of `mech` for `db`, appending them to `out` in
    /// lane order.
    ///
    /// # Errors
    ///
    /// Returns [`ExecutorFailure`] when the backend cannot serve (the
    /// in-tree backends are infallible; the error channel exists for
    /// remote/async backends).
    fn run_into<T: Sync + 'static, U: Value>(
        &mut self,
        mech: &Mechanism<T, U>,
        db: &[T],
        n: usize,
        out: &mut Vec<U>,
    ) -> Result<(), ExecutorFailure>;
}

/// A multi-lane [`Executor`] whose lanes can each charge their own shard
/// of a [`ShardedLedger`] *before* drawing — the charge-before-serve
/// discipline, kept lock-free per lane.
///
/// This trait is the static link that makes a sharded accountant
/// inexpressible on a single-lane executor: [`Accountant`] is only
/// implemented for [`ShardedLedger`] (and [`ShardedRdpMeter`]) where the
/// executor is a `ShardedExecutor`, and [`Inline`] deliberately does not
/// implement it.
pub trait ShardedExecutor: Executor {
    /// Draws `n` outputs of `mech`, with lane `i` batch-charging
    /// `chunkᵢ · units` releases of `gamma_unit` to shard `i` before
    /// drawing a single byte of its chunk.
    ///
    /// # Errors
    ///
    /// [`SessionError::Budget`] with the first refusing shard (in shard
    /// order) if any chunk does not fit — chunks whose charge succeeded
    /// stay charged and their noise is discarded unreleased (the
    /// conservative direction); [`SessionError::Executor`] if the backend
    /// cannot serve (e.g. the ledger has fewer shards than lanes).
    #[allow(clippy::too_many_arguments)]
    fn run_sharded_into<D: AbstractDp, B: Budget, T: Sync + 'static, U: Value>(
        &mut self,
        mech: &Mechanism<T, U>,
        db: &[T],
        n: usize,
        gamma_unit: f64,
        units: u64,
        ledger: &ShardedLedger<D, B>,
        out: &mut Vec<U>,
    ) -> Result<(), SessionError<B>>;
}

/// An [`Executor`] the session builder can construct itself, from the
/// session's [`Entropy`] choice and a requested lane count — what lets
/// `SessionBuilder::executor::<E>(lanes)` stay generic over backends the
/// core crate cannot name (such as `NoiseServer`).
pub trait SpawnExecutor: Executor + Sized {
    /// Builds the executor. `lanes` is a request, not a command: a
    /// backend may clamp it (e.g. [`Inline`] always has one lane); the
    /// builder reads the actual [`Executor::lanes`] back after spawning,
    /// so sharded accountants always match the real lane count.
    fn spawn(entropy: Entropy, lanes: usize) -> Self;
}

/// The single-lane executor: draws on the calling thread from one byte
/// source. The sequential baseline every concurrent backend is
/// byte-compared against.
pub struct Inline {
    src: Box<dyn ByteSource + Send>,
}

impl std::fmt::Debug for Inline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Inline { src: <byte source> }")
    }
}

impl Inline {
    /// An inline executor over the given entropy backend. A
    /// [`Entropy::Seeded`] root serves from `root.stream(0)` — the same
    /// stream lane 0 of a pooled executor with the same root serves from.
    pub fn new(entropy: Entropy) -> Self {
        let src: Box<dyn ByteSource + Send> = match entropy {
            Entropy::Os => Box::new(OsByteSource::new()),
            Entropy::Seeded(root) => Box::new(root.stream(0)),
        };
        Inline { src }
    }

    /// An inline executor over an arbitrary byte source.
    pub fn from_source(src: Box<dyn ByteSource + Send>) -> Self {
        Inline { src }
    }
}

impl Executor for Inline {
    fn lanes(&self) -> usize {
        1
    }

    fn run_into<T: Sync + 'static, U: Value>(
        &mut self,
        mech: &Mechanism<T, U>,
        db: &[T],
        n: usize,
        out: &mut Vec<U>,
    ) -> Result<(), ExecutorFailure> {
        mech.run_many_into(db, n, &mut *self.src, out);
        Ok(())
    }
}

impl SpawnExecutor for Inline {
    /// Ignores `lanes`: inline execution always has exactly one lane.
    fn spawn(entropy: Entropy, _lanes: usize) -> Self {
        Inline::new(entropy)
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// One unit of servable work: a mechanism together with its privacy
/// price, in the shape the accountants charge it.
///
/// A request prices one *answer* as `units` sub-releases of `gamma_unit`
/// each (a histogram answer is `nBins` per-bin releases; most requests
/// are a single release). Charging per unit — converting `gamma_unit`
/// into the budget carrier **before** the `units`-fold composition —
/// keeps the exact-carrier charge identical to what the legacy per-path
/// metering recorded, rounding and all.
///
/// Constructors: [`Request::noise`] (raw calibrated noise),
/// [`Request::from_private`] (any typed mechanism), [`Request::new`] /
/// [`Request::composite`] (hand-built serving paths), plus the
/// mechanism-library constructors in `sampcert-mechanisms`
/// (`histogram_request`, `workload_request`, `svt_request`,
/// `count_request`, `mean_request`).
pub struct Request<D: AbstractDp, T, U: Value> {
    mech: Mechanism<T, U>,
    gamma_unit: f64,
    units: u64,
    label: String,
    _notion: PhantomData<D>,
}

impl<D: AbstractDp, T, U: Value> Clone for Request<D, T, U> {
    fn clone(&self) -> Self {
        Request {
            mech: self.mech.clone(),
            gamma_unit: self.gamma_unit,
            units: self.units,
            label: self.label.clone(),
            _notion: PhantomData,
        }
    }
}

impl<D: AbstractDp, T, U: Value> std::fmt::Debug for Request<D, T, U> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Request")
            .field("label", &self.label)
            .field("notion", &D::NAME)
            .field("gamma_unit", &self.gamma_unit)
            .field("units", &self.units)
            .finish()
    }
}

impl<D: AbstractDp, T: 'static, U: Value> Request<D, T, U> {
    /// A request releasing one `gamma_each`-costing answer per serve.
    ///
    /// # Panics
    ///
    /// Panics if `gamma_each` is negative or not finite.
    pub fn new(mech: Mechanism<T, U>, gamma_each: f64, label: impl Into<String>) -> Self {
        Request::composite(mech, gamma_each, 1, label)
    }

    /// A request whose every answer is priced as `units` sub-releases of
    /// `gamma_unit` (see the type-level docs for why the factorization
    /// matters on exact carriers).
    ///
    /// # Panics
    ///
    /// Panics if `gamma_unit` is negative or not finite.
    pub fn composite(
        mech: Mechanism<T, U>,
        gamma_unit: f64,
        units: u64,
        label: impl Into<String>,
    ) -> Self {
        assert!(
            gamma_unit.is_finite() && gamma_unit >= 0.0,
            "invalid privacy parameter"
        );
        Request {
            mech,
            gamma_unit,
            units,
            label: label.into(),
            _notion: PhantomData,
        }
    }

    /// Wraps a typed [`Private`] mechanism as a request costing its
    /// established γ per answer — the bridge from the compositional layer
    /// to the serving layer.
    pub fn from_private(p: &Private<D, T, U>, label: impl Into<String>) -> Self {
        Request::new(p.mechanism().clone(), p.gamma(), label)
    }

    /// The underlying mechanism.
    pub fn mechanism(&self) -> &Mechanism<T, U> {
        &self.mech
    }

    /// The per-sub-release cost (see [`units`](Self::units)).
    pub fn gamma_unit(&self) -> f64 {
        self.gamma_unit
    }

    /// Sub-releases per answer.
    pub fn units(&self) -> u64 {
        self.units
    }

    /// The composed privacy cost of one answer:
    /// `compose_n(gamma_unit, units)`.
    pub fn gamma_each(&self) -> f64 {
        D::compose_n(self.gamma_unit, self.units)
    }

    /// The ledger label charges are recorded under.
    pub fn label(&self) -> &str {
        &self.label
    }
}

impl<D: DpNoise, T: 'static> Request<D, T, i64> {
    /// Raw calibrated noise at scale `num/den` for notion `D` — discrete
    /// Laplace with scale `num/den` under [`PureDp`], discrete Gaussian
    /// with σ = `num/den` under [`Zcdp`]. The privacy price per draw
    /// falls out of the calibration:
    /// [`noise_priv`](crate::DpNoise::noise_priv)`(den, num)` (ε = den/num
    /// for Laplace, ρ = ½(den/num)² for Gaussian — the sensitivity-1
    /// noised-constant reading of a raw draw).
    ///
    /// Serve with any database (the value is ignored); `&[]` works.
    ///
    /// # Panics
    ///
    /// Panics if `num` or `den` is zero.
    pub fn noise(num: u64, den: u64) -> Self {
        assert!(num > 0 && den > 0, "noise: zero scale parameter");
        let q: Query<T> = Query::new(format!("noise[{num}/{den}]"), 1, |_| 0);
        Request::new(
            D::noise(&q, den, num),
            D::noise_priv(den, num),
            format!("noise[{num}/{den}]"),
        )
    }
}

// ---------------------------------------------------------------------------
// Rényi metering
// ---------------------------------------------------------------------------

/// Notions whose γ-releases induce a full Rényi curve, i.e. notions an
/// [`RdpMeter`] can account for. Implemented for [`PureDp`]
/// (Bun–Steinke: `D_α ≤ min(ε, α·ε²/2)`) and [`Zcdp`] (Definition 2.2:
/// `D_α ≤ α·ρ`). `RenyiDp<A>` deliberately does **not** implement it — a
/// single-order bound does not determine the curve at other orders, so
/// RDP-of-RDP sessions are statically unrepresentable.
pub trait RdpCurve: AbstractDp {
    /// The Rényi bound `D_α` implied by one γ-release under this notion.
    fn rdp_curve(gamma: f64, alpha: f64) -> f64;
}

impl RdpCurve for PureDp {
    fn rdp_curve(gamma: f64, alpha: f64) -> f64 {
        gamma.min(alpha * gamma * gamma / 2.0)
    }
}

impl RdpCurve for Zcdp {
    fn rdp_curve(gamma: f64, alpha: f64) -> f64 {
        alpha * gamma
    }
}

/// An [`RdpAccountant`] with an enforced `(ε, δ)` policy: charges are
/// admitted only while the optimized conversion
/// [`RdpAccountant::epsilon`] stays within the stated ε budget at the
/// stated δ.
///
/// The budget check runs in reported-ε space (`f64`); the carrier `B`
/// governs how the per-order totals *accumulate* (exactly, for
/// [`Dyadic`](sampcert_arith::Dyadic)), with each per-release increment
/// rounded up as everywhere else in the accounting layer.
#[derive(Debug, Clone)]
pub struct RdpMeter<B: Budget = f64> {
    acct: RdpAccountant<B>,
    delta: f64,
    budget_eps: f64,
}

impl<B: Budget> RdpMeter<B> {
    /// A meter over the conventional order grid enforcing `ε ≤ budget_eps`
    /// at `delta`.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is outside `(0, 1)` or `budget_eps` is negative
    /// or not finite.
    pub fn new(delta: f64, budget_eps: f64) -> Self {
        RdpMeter::with_orders(RdpAccountant::default_order_grid(), delta, budget_eps)
    }

    /// A meter over a custom order grid.
    ///
    /// # Panics
    ///
    /// As [`new`](Self::new), plus the grid requirements of
    /// [`RdpAccountant::with_orders`].
    pub fn with_orders(orders: Vec<f64>, delta: f64, budget_eps: f64) -> Self {
        assert!(delta > 0.0 && delta < 1.0, "delta outside (0,1)");
        assert!(
            budget_eps.is_finite() && budget_eps >= 0.0,
            "invalid epsilon budget"
        );
        RdpMeter {
            acct: RdpAccountant::with_orders(orders),
            delta,
            budget_eps,
        }
    }

    /// The accumulated accountant.
    pub fn accountant(&self) -> &RdpAccountant<B> {
        &self.acct
    }

    /// The enforced `(budget_eps, delta)` policy.
    pub fn policy(&self) -> (f64, f64) {
        (self.budget_eps, self.delta)
    }

    /// The `(ε, optimizing α)` implied by the spending so far, at the
    /// policy δ.
    pub fn epsilon(&self) -> (f64, f64) {
        self.acct.epsilon(self.delta)
    }

    /// Admits `count` releases of `gamma` under notion `D` if the
    /// post-charge ε still fits the policy; the accountant is unchanged
    /// on refusal.
    fn try_charge<D: RdpCurve>(&mut self, gamma: f64, count: u64) -> Result<(), BudgetExceeded<B>> {
        let mut trial = self.acct.clone();
        trial.add_curve_n(|a| D::rdp_curve(gamma, a), count);
        let (eps, _) = trial.epsilon(self.delta);
        if eps > self.budget_eps + 1e-12 {
            let (current, _) = self.acct.epsilon(self.delta);
            // Requested/remaining are reported in ε-at-δ space — the
            // space the policy is stated in.
            return Err(BudgetExceeded::new(
                B::charge_from_f64((eps - current).max(0.0)),
                B::budget_from_f64((self.budget_eps - current).max(0.0)),
            ));
        }
        self.acct = trial;
        Ok(())
    }
}

/// The sharded twin of [`RdpMeter`]: one per-lane [`RdpAccountant`]
/// accumulator for attribution, plus an incrementally maintained session
/// total for the policy check — the check stays O(grid) per charge, with
/// no per-lane fold on the hot path. Per-order RDP totals are additive,
/// so the running total equals the fold of the lane accumulators exactly
/// on exact carriers (and to within f64 summation rounding on `f64`);
/// [`ShardedRdpAccountant`](crate::ShardedRdpAccountant) remains the
/// primitive for folding externally accumulated lanes.
///
/// Only usable with a [`ShardedExecutor`] (the [`Accountant`] impl
/// requires it), so the per-lane curves always describe real lanes.
#[derive(Debug, Clone)]
pub struct ShardedRdpMeter<B: Budget = f64> {
    parts: Vec<RdpAccountant<B>>,
    total: RdpAccountant<B>,
    delta: f64,
    budget_eps: f64,
}

impl<B: Budget> ShardedRdpMeter<B> {
    /// A sharded meter over the conventional order grid with one
    /// accumulator per lane.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is outside `(0, 1)`, `budget_eps` is negative or
    /// not finite, or `lanes` is zero.
    pub fn new(delta: f64, budget_eps: f64, lanes: usize) -> Self {
        assert!(delta > 0.0 && delta < 1.0, "delta outside (0,1)");
        assert!(
            budget_eps.is_finite() && budget_eps >= 0.0,
            "invalid epsilon budget"
        );
        let orders = RdpAccountant::default_order_grid();
        let parts = (0..lanes)
            .map(|_| RdpAccountant::with_orders(orders.clone()))
            .collect();
        ShardedRdpMeter {
            parts,
            total: RdpAccountant::with_orders(orders),
            delta,
            budget_eps,
        }
    }

    /// The per-lane accumulators, in lane order.
    pub fn lane_accountants(&self) -> &[RdpAccountant<B>] {
        &self.parts
    }

    /// The whole-session accountant (maintained incrementally; equal to
    /// folding [`lane_accountants`](Self::lane_accountants) — exactly on
    /// exact carriers, to within f64 summation rounding otherwise).
    pub fn folded(&self) -> RdpAccountant<B> {
        self.total.clone()
    }

    /// The enforced `(budget_eps, delta)` policy.
    pub fn policy(&self) -> (f64, f64) {
        (self.budget_eps, self.delta)
    }

    /// The `(ε, optimizing α)` implied by the spending so far, at the
    /// policy δ.
    pub fn epsilon(&self) -> (f64, f64) {
        self.total.epsilon(self.delta)
    }

    /// Admits `lane_counts[i] · units` releases of `gamma_unit` on lane
    /// `i`'s accumulator if the post-charge ε fits the policy.
    ///
    /// # Panics
    ///
    /// Panics if `lane_counts` does not have exactly one entry per lane —
    /// an executor whose [`Executor::partition`] override disagrees with
    /// its lane count would otherwise be silently under-accounted, which
    /// is a privacy-soundness violation and must fail loudly.
    fn try_charge<D: RdpCurve>(
        &mut self,
        gamma_unit: f64,
        units: u64,
        lane_counts: &[usize],
    ) -> Result<(), BudgetExceeded<B>> {
        assert_eq!(
            lane_counts.len(),
            self.parts.len(),
            "executor partition length disagrees with the meter's lane count"
        );
        let total_count: u64 = lane_counts.iter().map(|c| *c as u64 * units).sum();
        let mut trial = self.total.clone();
        trial.add_curve_n(|a| D::rdp_curve(gamma_unit, a), total_count);
        let (eps, _) = trial.epsilon(self.delta);
        if eps > self.budget_eps + 1e-12 {
            let (current, _) = self.total.epsilon(self.delta);
            return Err(BudgetExceeded::new(
                B::charge_from_f64((eps - current).max(0.0)),
                B::budget_from_f64((self.budget_eps - current).max(0.0)),
            ));
        }
        self.total = trial;
        for (part, count) in self.parts.iter_mut().zip(lane_counts) {
            part.add_curve_n(|a| D::rdp_curve(gamma_unit, a), *count as u64 * units);
        }
        Ok(())
    }
}

/// The default lane-partition rule of the executor contract
/// ([`Executor::partition`]): `n` answers split into contiguous per-lane
/// counts, the first `n % lanes` lanes one longer. Multi-lane backends
/// (the `NoiseServer` pool) serve by exactly this rule; per-lane
/// accounting ([`ShardedRdpMeter`]) attributes answers through
/// [`Executor::partition`], so a backend that partitions differently
/// overrides that method and attribution follows it.
pub fn lane_partition(n: usize, lanes: usize) -> Vec<usize> {
    let base = n / lanes;
    let rem = n % lanes;
    (0..lanes).map(|i| base + usize::from(i < rem)).collect()
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

/// A cheaply clonable depth gauge for a session's ingress queue — the
/// link between a queue living outside the session (the `sampcert-rt`
/// bounded ingress, or any hand-rolled arrival buffer) and the
/// [`AdmissionPolicy`]'s depth bound.
///
/// The producer side calls [`enter`](Self::enter) when a request is
/// enqueued and the consumer side calls [`leave`](Self::leave) when it is
/// dequeued for service; [`Session::answer_async`] reads
/// [`depth`](Self::depth) at admission time. Clones share one counter.
#[derive(Debug, Clone, Default)]
pub struct IngressGauge {
    depth: Arc<AtomicUsize>,
}

impl IngressGauge {
    /// A fresh gauge at depth zero.
    pub fn new() -> Self {
        IngressGauge::default()
    }

    /// Records one request entering the queue; returns the depth
    /// including it.
    pub fn enter(&self) -> usize {
        self.depth.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Records one request leaving the queue. Saturates at zero (an
    /// unpaired `leave` is a caller bug, but must not wrap the gauge to
    /// `usize::MAX` and wedge admission shut).
    pub fn leave(&self) {
        let _ = self
            .depth
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |d| {
                Some(d.saturating_sub(1))
            });
    }

    /// The current queue depth.
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Acquire)
    }
}

/// What [`Session::answer_async`] / [`Session::answer_for_async`] check
/// **before** attempting any charge. Installed with
/// [`SessionBuilder::admission`]; the default ([`open`](Self::open))
/// admits everything, which keeps `answer_async` behaviourally identical
/// to [`Session::answer`].
///
/// Two independent gates:
///
/// - a **queue depth bound** ([`max_queue_depth`](Self::max_queue_depth)):
///   requests arriving while the shared [`IngressGauge`] reads *more
///   than* `bound` waiting requests are refused with
///   [`SessionError::QueueFull`];
/// - **budget-keyed shedding** ([`shed_unservable`](Self::shed_unservable)):
///   requests the accountant's [`Admission`] probe proves unservable are
///   refused with [`SessionError::Shed`] without touching the
///   accountant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionPolicy {
    max_queue_depth: Option<usize>,
    shed_unservable: bool,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy::open()
    }
}

impl AdmissionPolicy {
    /// The admit-everything policy: no depth bound, no budget shedding.
    pub fn open() -> Self {
        AdmissionPolicy {
            max_queue_depth: None,
            shed_unservable: false,
        }
    }

    /// Refuse requests arriving while the ingress queue holds more than
    /// `bound` waiting requests ([`SessionError::QueueFull`]).
    pub fn max_queue_depth(mut self, bound: usize) -> Self {
        self.max_queue_depth = Some(bound);
        self
    }

    /// Enable budget-keyed load shedding: refuse requests the
    /// accountant's [`Admission`] probe proves cannot be served
    /// ([`SessionError::Shed`]), before any charge is attempted.
    pub fn shed_unservable(mut self) -> Self {
        self.shed_unservable = true;
        self
    }

    /// The configured queue depth bound, if any.
    pub fn queue_bound(&self) -> Option<usize> {
        self.max_queue_depth
    }

    /// Whether budget-keyed shedding is enabled.
    pub fn sheds_unservable(&self) -> bool {
        self.shed_unservable
    }
}

/// The non-mutating admission probe behind budget-keyed load shedding:
/// can a batch totalling `units` releases of `gamma_unit` possibly be
/// admitted right now?
///
/// The contract is conservative in the *shedding* direction each
/// accountant documents: `false` means the accounting state already
/// proves the charge would be refused (global accountants) or that the
/// granted upper bound leaves no headroom (sharded accountants, where
/// outstanding grants may make the probe shed a request a lucky charge
/// would have served — the right trade under overload). `true` is
/// advisory only — the authoritative charge check still runs at serve
/// time, so a probe race never over-spends.
pub trait Admission<D: AbstractDp, B: Budget> {
    /// Whether a batch of `units` releases of `gamma_unit` could be
    /// admitted against the current accounting state.
    fn can_admit(&self, gamma_unit: f64, units: u64) -> bool;
}

impl<D: AbstractDp, B: Budget> Admission<D, B> for Ledger<D, B> {
    /// Sheds exactly when the composed batch exceeds the remaining
    /// budget — the same comparison [`Ledger::charge_batch`] makes, on
    /// the same carrier, without mutating the ledger.
    fn can_admit(&self, gamma_unit: f64, units: u64) -> bool {
        let total = B::compose_n::<D>(&B::charge_from_f64(gamma_unit), units);
        total.is_valid() && !B::exceeds(&total, &self.remaining_exact())
    }
}

impl<D: RdpCurve, B: Budget> Admission<D, B> for RdpMeter<B> {
    /// Sheds when a trial composition of the batch converts to an ε over
    /// the policy budget — the same check [`RdpMeter`]'s charge path
    /// runs, against a clone.
    fn can_admit(&self, gamma_unit: f64, units: u64) -> bool {
        let mut trial = self.acct.clone();
        trial.add_curve_n(|a| D::rdp_curve(gamma_unit, a), units);
        let (eps, _) = trial.epsilon(self.delta);
        eps <= self.budget_eps + 1e-12
    }
}

impl<D: AbstractDp, B: Budget> Admission<D, B> for ShardedLedger<D, B> {
    /// Sheds when
    /// [`granted_upper_bound`](ShardedLedger::granted_upper_bound) plus
    /// the batch total exceeds the budget. The upper bound counts
    /// granted-but-unspent headroom as spent, so under load this sheds
    /// *earlier* than the per-shard charges would refuse — conservative
    /// in the shedding direction, never in the spending direction.
    fn can_admit(&self, gamma_unit: f64, units: u64) -> bool {
        let total = D::compose_n(gamma_unit, units);
        self.granted_upper_bound() + total <= self.budget().to_f64() + 1e-12
    }
}

impl<D: RdpCurve, B: Budget> Admission<D, B> for ShardedRdpMeter<B> {
    /// Sheds when a trial composition of the batch onto the maintained
    /// session total converts to an ε over the policy budget.
    fn can_admit(&self, gamma_unit: f64, units: u64) -> bool {
        let mut trial = self.total.clone();
        trial.add_curve_n(|a| D::rdp_curve(gamma_unit, a), units);
        let (eps, _) = trial.epsilon(self.delta);
        eps <= self.budget_eps + 1e-12
    }
}

/// The per-principal twin of [`Admission`]: the probe behind
/// [`Session::answer_for_async`]'s budget-keyed shedding.
pub trait PrincipalAdmission<D: AbstractDp, B: Budget> {
    /// Whether a batch of `units` releases of `gamma_unit` could be
    /// admitted against `principal`'s current allowance.
    fn can_admit_for(&self, principal: u64, gamma_unit: f64, units: u64) -> bool;
}

impl<D: AbstractDp, B: Budget> PrincipalAdmission<D, B> for BudgetRegistry<D, B> {
    /// Sheds exactly when [`BudgetRegistry::check_exact`] would refuse
    /// the composed batch — the authoritative admission check, run
    /// without applying.
    fn can_admit_for(&self, principal: u64, gamma_unit: f64, units: u64) -> bool {
        let total = B::compose_n::<D>(&B::charge_from_f64(gamma_unit), units);
        total.is_valid() && self.check_exact(principal, &total).is_ok()
    }
}

impl<D: AbstractDp, B: Budget, S: JournalStorage> PrincipalAdmission<D, B>
    for DurableRegistry<D, B, S>
{
    /// Sheds when the journal has latched closed (every charge would be
    /// refused anyway) or the composed batch exceeds the principal's
    /// committed remaining allowance. Group-commit reservations are not
    /// counted — the probe may admit a request the reserved-aware charge
    /// check then refuses, which only costs a budget refusal, never an
    /// over-spend.
    fn can_admit_for(&self, principal: u64, gamma_unit: f64, units: u64) -> bool {
        if self.journal_error().is_some() {
            return false;
        }
        let total = B::compose_n::<D>(&B::charge_from_f64(gamma_unit), units);
        total.is_valid() && !B::exceeds(&total, &self.remaining_exact(principal))
    }
}

// ---------------------------------------------------------------------------
// The accountant ↔ executor link
// ---------------------------------------------------------------------------

/// The charge-then-serve step, linking an accountant to the executors it
/// can legally drive. This is the typestate guard: global accountants
/// ([`Ledger`], [`RdpMeter`]) drive any [`Executor`]; sharded accountants
/// ([`ShardedLedger`], [`ShardedRdpMeter`]) only implement this trait for
/// [`ShardedExecutor`]s, so pairing them with [`Inline`] is a compile
/// error, not a silent single-shard session.
pub trait Accountant<D: AbstractDp, B: Budget, E: Executor> {
    /// Charges `n` answers of `req` and, only if the whole batch fits,
    /// serves them through `exec` into `out`. A refusal releases nothing
    /// and leaves `out` untouched; global accountants also consume no
    /// entropy (sharded accountants may have advanced the streams of
    /// lanes whose shard admitted its chunk — see
    /// [`SessionError::Budget`]).
    ///
    /// # Errors
    ///
    /// [`SessionError::Budget`] when the batch does not fit,
    /// [`SessionError::Executor`] when the backend cannot serve.
    fn serve_into<T: Sync + 'static, U: Value>(
        &mut self,
        exec: &mut E,
        req: &Request<D, T, U>,
        db: &[T],
        n: usize,
        out: &mut Vec<U>,
    ) -> Result<(), SessionError<B>>;
}

impl<D: AbstractDp, B: Budget, E: Executor> Accountant<D, B, E> for Ledger<D, B> {
    fn serve_into<T: Sync + 'static, U: Value>(
        &mut self,
        exec: &mut E,
        req: &Request<D, T, U>,
        db: &[T],
        n: usize,
        out: &mut Vec<U>,
    ) -> Result<(), SessionError<B>> {
        self.charge_batch(req.label(), req.gamma_unit(), n as u64 * req.units())?;
        exec.run_into(req.mechanism(), db, n, out)?;
        Ok(())
    }
}

impl<D: RdpCurve, B: Budget, E: Executor> Accountant<D, B, E> for RdpMeter<B> {
    fn serve_into<T: Sync + 'static, U: Value>(
        &mut self,
        exec: &mut E,
        req: &Request<D, T, U>,
        db: &[T],
        n: usize,
        out: &mut Vec<U>,
    ) -> Result<(), SessionError<B>> {
        self.try_charge::<D>(req.gamma_unit(), n as u64 * req.units())?;
        exec.run_into(req.mechanism(), db, n, out)?;
        Ok(())
    }
}

impl<D: AbstractDp, B: Budget, E: ShardedExecutor> Accountant<D, B, E> for ShardedLedger<D, B> {
    fn serve_into<T: Sync + 'static, U: Value>(
        &mut self,
        exec: &mut E,
        req: &Request<D, T, U>,
        db: &[T],
        n: usize,
        out: &mut Vec<U>,
    ) -> Result<(), SessionError<B>> {
        exec.run_sharded_into(
            req.mechanism(),
            db,
            n,
            req.gamma_unit(),
            req.units(),
            self,
            out,
        )
    }
}

impl<D: RdpCurve, B: Budget, E: ShardedExecutor> Accountant<D, B, E> for ShardedRdpMeter<B> {
    fn serve_into<T: Sync + 'static, U: Value>(
        &mut self,
        exec: &mut E,
        req: &Request<D, T, U>,
        db: &[T],
        n: usize,
        out: &mut Vec<U>,
    ) -> Result<(), SessionError<B>> {
        let counts = exec.partition(n);
        self.try_charge::<D>(req.gamma_unit(), req.units(), &counts)?;
        exec.run_into(req.mechanism(), db, n, out)?;
        Ok(())
    }
}

/// The per-principal twin of [`Accountant`]: charge-then-serve where the
/// charge lands on one principal's allowance inside a
/// [`BudgetRegistry`] (in-memory) or [`DurableRegistry`] (write-ahead
/// journaled). The typestate guard works the same way: per-principal
/// sessions are built with [`SessionBuilder::build_per_principal`] and
/// serve through [`Session::answer_for`] — the principal-less
/// [`Session::answer`] does not exist on them (no [`Accountant`] impl),
/// and vice versa.
pub trait PrincipalAccountant<D: AbstractDp, B: Budget, E: Executor> {
    /// Charges `n` answers of `req` to `principal` and, only if the whole
    /// batch fits (and, for durable registries, only once the charge is
    /// durably journaled), serves them through `exec` into `out`. A
    /// refusal releases nothing and consumes no entropy.
    ///
    /// # Errors
    ///
    /// [`SessionError::Budget`] when the batch does not fit the
    /// principal's allowance, [`SessionError::Journal`] when a durable
    /// registry cannot journal the charge (degrade-to-reject),
    /// [`SessionError::Executor`] when the backend cannot serve.
    fn serve_for_into<T: Sync + 'static, U: Value>(
        &mut self,
        exec: &mut E,
        principal: u64,
        req: &Request<D, T, U>,
        db: &[T],
        n: usize,
        out: &mut Vec<U>,
    ) -> Result<(), SessionError<B>>;
}

impl<D: AbstractDp, B: Budget, E: Executor> PrincipalAccountant<D, B, E> for BudgetRegistry<D, B> {
    fn serve_for_into<T: Sync + 'static, U: Value>(
        &mut self,
        exec: &mut E,
        principal: u64,
        req: &Request<D, T, U>,
        db: &[T],
        n: usize,
        out: &mut Vec<U>,
    ) -> Result<(), SessionError<B>> {
        self.charge_batch(principal, req.gamma_unit(), n as u64 * req.units())?;
        exec.run_into(req.mechanism(), db, n, out)?;
        Ok(())
    }
}

impl<D: AbstractDp, B: Budget, E: Executor, S: JournalStorage> PrincipalAccountant<D, B, E>
    for DurableRegistry<D, B, S>
{
    fn serve_for_into<T: Sync + 'static, U: Value>(
        &mut self,
        exec: &mut E,
        principal: u64,
        req: &Request<D, T, U>,
        db: &[T],
        n: usize,
        out: &mut Vec<U>,
    ) -> Result<(), SessionError<B>> {
        self.charge_batch(principal, req.gamma_unit(), n as u64 * req.units())?;
        exec.run_into(req.mechanism(), db, n, out)?;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Builder typestate
// ---------------------------------------------------------------------------

/// Builder state: no accountant chosen yet. The carrier can still be
/// changed in this state ([`SessionBuilder::exact`] /
/// [`SessionBuilder::carrier`]); once an accountant is chosen it is fixed
/// inside the accountant's type.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoAccountant;

/// Builder state: no executor chosen yet.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoExecutor;

/// Builder state: executor backend `E` chosen, to be spawned with this
/// many lanes at [`SessionBuilder::build`] time.
#[derive(Debug, Clone, Copy)]
pub struct Planned<E> {
    lanes: usize,
    _exec: PhantomData<E>,
}

/// A deferred accountant choice: built only at
/// [`SessionBuilder::build`] time, when the executor's actual lane count
/// is known — which is how a sharded ledger's shard count always equals
/// the pool's worker count without the caller wiring either.
pub trait AccountantPlan<D: AbstractDp, B: Budget> {
    /// The accountant this plan builds.
    type Built;
    /// Builds the accountant for an executor with `lanes` lanes.
    fn build_accountant(self, lanes: usize) -> Self::Built;
}

/// Plan for a global [`Ledger`] (see [`SessionBuilder::ledger`]).
#[derive(Debug, Clone)]
pub struct LedgerPlan<B: Budget> {
    budget: B,
}

impl<D: AbstractDp, B: Budget> AccountantPlan<D, B> for LedgerPlan<B> {
    type Built = Ledger<D, B>;
    fn build_accountant(self, _lanes: usize) -> Ledger<D, B> {
        Ledger::with_budget(self.budget)
    }
}

/// Plan for a [`ShardedLedger`] with one shard per executor lane (see
/// [`SessionBuilder::sharded_ledger`]).
#[derive(Debug, Clone)]
pub struct ShardedLedgerPlan<B: Budget> {
    budget: B,
}

impl<D: AbstractDp, B: Budget> AccountantPlan<D, B> for ShardedLedgerPlan<B> {
    type Built = ShardedLedger<D, B>;
    fn build_accountant(self, lanes: usize) -> ShardedLedger<D, B> {
        ShardedLedger::with_budget(self.budget, lanes)
    }
}

/// Plan for a global [`RdpMeter`] (see [`SessionBuilder::rdp`]).
#[derive(Debug, Clone, Copy)]
pub struct RdpPlan {
    delta: f64,
    budget_eps: f64,
}

impl<D: AbstractDp, B: Budget> AccountantPlan<D, B> for RdpPlan {
    type Built = RdpMeter<B>;
    fn build_accountant(self, _lanes: usize) -> RdpMeter<B> {
        RdpMeter::new(self.delta, self.budget_eps)
    }
}

/// Plan for a [`ShardedRdpMeter`] with one accumulator per executor lane
/// (see [`SessionBuilder::sharded_rdp`]).
#[derive(Debug, Clone, Copy)]
pub struct ShardedRdpPlan {
    delta: f64,
    budget_eps: f64,
}

impl<D: AbstractDp, B: Budget> AccountantPlan<D, B> for ShardedRdpPlan {
    type Built = ShardedRdpMeter<B>;
    fn build_accountant(self, lanes: usize) -> ShardedRdpMeter<B> {
        ShardedRdpMeter::new(self.delta, self.budget_eps, lanes)
    }
}

/// Plan for an in-memory per-principal [`BudgetRegistry`] with one lock
/// shard per executor lane (see [`SessionBuilder::registry`]).
#[derive(Debug, Clone)]
pub struct RegistryPlan<B: Budget> {
    per_principal: B,
}

impl<D: AbstractDp, B: Budget> AccountantPlan<D, B> for RegistryPlan<B> {
    type Built = BudgetRegistry<D, B>;
    fn build_accountant(self, lanes: usize) -> BudgetRegistry<D, B> {
        BudgetRegistry::with_budget(self.per_principal, lanes)
    }
}

/// How many lock shards a [`SessionBuilder::durable`] registry spreads
/// its principals over. Purely a contention knob — durable charges
/// serialize on the journal lock anyway, so the shard count only affects
/// journal-free reads; callers who care use
/// [`DurableRegistry::open`] directly.
const DURABLE_LOCK_SHARDS: usize = 8;

/// Plan holding an already-opened [`DurableRegistry`]. Opening — and
/// therefore crash recovery — happens at the [`SessionBuilder::durable`]
/// / [`SessionBuilder::durable_with`] step, where the I/O error has a
/// `Result` to surface through;
/// [`build_per_principal`](SessionBuilder::build_per_principal) itself
/// stays infallible.
pub struct DurablePlan<D: AbstractDp, B: Budget, S: JournalStorage> {
    registry: DurableRegistry<D, B, S>,
}

impl<D: AbstractDp, B: Budget, S: JournalStorage> std::fmt::Debug for DurablePlan<D, B, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurablePlan")
            .field("registry", &self.registry)
            .finish()
    }
}

impl<D: AbstractDp, B: Budget, S: JournalStorage> AccountantPlan<D, B> for DurablePlan<D, B, S> {
    type Built = DurableRegistry<D, B, S>;
    fn build_accountant(self, _lanes: usize) -> DurableRegistry<D, B, S> {
        self.registry
    }
}

/// The typestate builder behind [`Session::builder`]; see the
/// module-level docs above for the axes and an example.
///
/// Type parameters track the choices made so far: `B` the budget carrier,
/// `A` the accountant plan (or [`NoAccountant`]), `X` the executor choice
/// (or [`NoExecutor`]). [`build`](Self::build) only exists once an
/// accountant and an executor are chosen **and** the pair is legal.
#[derive(Debug)]
pub struct SessionBuilder<D: AbstractDp, B: Budget = f64, A = NoAccountant, X = NoExecutor> {
    accountant: A,
    executor: X,
    entropy: Entropy,
    admission: AdmissionPolicy,
    ingress: IngressGauge,
    _notion: PhantomData<D>,
    _carrier: PhantomData<B>,
}

impl<D: AbstractDp, B: Budget, A, X> SessionBuilder<D, B, A, X> {
    /// Selects the entropy backend (default: [`Entropy::Os`]). May be
    /// called at any point in the chain.
    pub fn entropy(mut self, entropy: Entropy) -> Self {
        self.entropy = entropy;
        self
    }

    /// Shorthand for `.entropy(Entropy::seeded(root))`.
    pub fn seeded(self, root: u64) -> Self {
        self.entropy(Entropy::seeded(root))
    }

    /// Installs the [`AdmissionPolicy`] the async surface
    /// ([`Session::answer_async`] / [`Session::answer_for_async`])
    /// checks before charging (default: [`AdmissionPolicy::open`] —
    /// admit everything). May be called at any point in the chain.
    pub fn admission(mut self, policy: AdmissionPolicy) -> Self {
        self.admission = policy;
        self
    }

    /// Shares an externally owned [`IngressGauge`] with the session, so
    /// the queue feeding it (e.g. the `sampcert-rt` bounded ingress) and
    /// the admission depth bound read the same counter. The default is a
    /// private gauge nothing increments — retrieve it with
    /// [`Session::ingress_gauge`] instead if the session is built first.
    pub fn ingress(mut self, gauge: IngressGauge) -> Self {
        self.ingress = gauge;
        self
    }
}

impl<D: AbstractDp, B: Budget, X> SessionBuilder<D, B, NoAccountant, X> {
    fn with_accountant<A2>(self, accountant: A2) -> SessionBuilder<D, B, A2, X> {
        SessionBuilder {
            accountant,
            executor: self.executor,
            entropy: self.entropy,
            admission: self.admission,
            ingress: self.ingress,
            _notion: PhantomData,
            _carrier: PhantomData,
        }
    }

    /// Switches the budget carrier to the exact dyadic lattice
    /// ([`Dyadic`](sampcert_arith::Dyadic)): gcd-free exact accounting,
    /// strict acceptance. Must precede the accountant choice (the carrier
    /// lives inside the accountant's type).
    pub fn exact(self) -> SessionBuilder<D, sampcert_arith::Dyadic, NoAccountant, X> {
        self.carrier::<sampcert_arith::Dyadic>()
    }

    /// Switches to an arbitrary budget carrier (`f64` is the default;
    /// [`exact`](Self::exact) is the shorthand for
    /// [`Dyadic`](sampcert_arith::Dyadic)).
    pub fn carrier<B2: Budget>(self) -> SessionBuilder<D, B2, NoAccountant, X> {
        SessionBuilder {
            accountant: NoAccountant,
            executor: self.executor,
            entropy: self.entropy,
            admission: self.admission,
            ingress: self.ingress,
            _notion: PhantomData,
            _carrier: PhantomData,
        }
    }

    /// A global [`Ledger`] with the given budget (converted into the
    /// carrier rounding **down**, as everywhere in the accounting layer).
    ///
    /// # Panics
    ///
    /// Panics if `budget` is negative or not finite.
    pub fn ledger(self, budget: f64) -> SessionBuilder<D, B, LedgerPlan<B>, X> {
        assert!(budget.is_finite() && budget >= 0.0, "invalid budget");
        self.ledger_exact(B::budget_from_f64(budget))
    }

    /// [`ledger`](Self::ledger) with the budget already in the carrier —
    /// the lossless entry point for exact budgets.
    pub fn ledger_exact(self, budget: B) -> SessionBuilder<D, B, LedgerPlan<B>, X> {
        assert!(budget.is_valid(), "invalid budget");
        self.with_accountant(LedgerPlan { budget })
    }

    /// A [`ShardedLedger`] with one shard per executor lane. Requires a
    /// [`ShardedExecutor`] — pairing with [`inline`](Self::inline) is a
    /// compile error (see the module-level docs above).
    ///
    /// # Panics
    ///
    /// Panics if `budget` is negative or not finite.
    pub fn sharded_ledger(self, budget: f64) -> SessionBuilder<D, B, ShardedLedgerPlan<B>, X> {
        assert!(budget.is_finite() && budget >= 0.0, "invalid budget");
        self.sharded_ledger_exact(B::budget_from_f64(budget))
    }

    /// [`sharded_ledger`](Self::sharded_ledger) with the budget already
    /// in the carrier.
    pub fn sharded_ledger_exact(self, budget: B) -> SessionBuilder<D, B, ShardedLedgerPlan<B>, X> {
        assert!(budget.is_valid(), "invalid budget");
        self.with_accountant(ShardedLedgerPlan { budget })
    }

    /// A global [`RdpMeter`] enforcing `ε ≤ budget_eps` at `delta`.
    /// Requires the notion to have a full Rényi curve ([`RdpCurve`]:
    /// [`PureDp`] or [`Zcdp`]).
    pub fn rdp(self, delta: f64, budget_eps: f64) -> SessionBuilder<D, B, RdpPlan, X> {
        self.with_accountant(RdpPlan { delta, budget_eps })
    }

    /// A [`ShardedRdpMeter`] with one accumulator per executor lane;
    /// requires a [`ShardedExecutor`], like
    /// [`sharded_ledger`](Self::sharded_ledger).
    pub fn sharded_rdp(
        self,
        delta: f64,
        budget_eps: f64,
    ) -> SessionBuilder<D, B, ShardedRdpPlan, X> {
        self.with_accountant(ShardedRdpPlan { delta, budget_eps })
    }

    /// A per-principal [`BudgetRegistry`]: every principal (user id)
    /// carries its own allowance of `per_principal` (converted into the
    /// carrier rounding **down**). Builds with
    /// [`build_per_principal`](Self::build_per_principal) and serves
    /// through [`Session::answer_for`]; upgrade to a crash-safe journaled
    /// registry with [`durable`](Self::durable).
    ///
    /// # Panics
    ///
    /// Panics if `per_principal` is negative or not finite.
    pub fn registry(self, per_principal: f64) -> SessionBuilder<D, B, RegistryPlan<B>, X> {
        assert!(
            per_principal.is_finite() && per_principal >= 0.0,
            "invalid budget"
        );
        self.registry_exact(B::budget_from_f64(per_principal))
    }

    /// [`registry`](Self::registry) with the allowance already in the
    /// carrier — the lossless entry point for exact budgets.
    pub fn registry_exact(self, per_principal: B) -> SessionBuilder<D, B, RegistryPlan<B>, X> {
        assert!(per_principal.is_valid(), "invalid budget");
        self.with_accountant(RegistryPlan { per_principal })
    }
}

impl<D: AbstractDp, B: Budget, X> SessionBuilder<D, B, RegistryPlan<B>, X> {
    /// Upgrades the in-memory registry to a [`DurableRegistry`] backed by
    /// a write-ahead charge journal at `path`: created (with a synced
    /// header) if absent, **replayed** if present — so crash recovery
    /// happens here, at the builder step, and I/O or corruption failures
    /// surface as [`RecoveryError`]s before any serving starts. Once
    /// built, a journal failure on a charge refuses the request without
    /// applying it ([`SessionError::Journal`], degrade-to-reject).
    ///
    /// The recovery report is discarded; callers that need the torn-tail
    /// details use [`DurableRegistry::open`] directly and keep the
    /// registry.
    ///
    /// # Errors
    ///
    /// [`RecoveryError`] if the journal cannot be opened, read, or
    /// replayed.
    pub fn durable(
        self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<SessionBuilder<D, B, DurablePlan<D, B, FileStorage>, X>, RecoveryError> {
        let storage = FileStorage::open(path).map_err(RecoveryError::Io)?;
        self.durable_with(storage)
    }

    /// [`durable`](Self::durable) over any [`JournalStorage`] backend —
    /// the fault-injection seam ([`MemStorage`](crate::MemStorage) with a
    /// [`FaultPlan`](crate::FaultPlan)).
    ///
    /// # Errors
    ///
    /// As [`durable`](Self::durable).
    pub fn durable_with<S: JournalStorage>(
        self,
        storage: S,
    ) -> Result<SessionBuilder<D, B, DurablePlan<D, B, S>, X>, RecoveryError> {
        let (registry, _report) = DurableRegistry::open_with_budget(
            self.accountant.per_principal,
            DURABLE_LOCK_SHARDS,
            storage,
        )?;
        Ok(SessionBuilder {
            accountant: DurablePlan { registry },
            executor: self.executor,
            entropy: self.entropy,
            admission: self.admission,
            ingress: self.ingress,
            _notion: PhantomData,
            _carrier: PhantomData,
        })
    }

    /// [`durable`](Self::durable) with explicit [`DurableOptions`]: group
    /// commit on/off, checkpoint cadence, and an automatic
    /// [`CompactionPolicy`](crate::CompactionPolicy). The serving-tier
    /// configuration is `DurableOptions::default()` — group commit on,
    /// compaction off until a policy is supplied.
    ///
    /// # Errors
    ///
    /// As [`durable`](Self::durable).
    pub fn durable_with_policy(
        self,
        path: impl AsRef<std::path::Path>,
        options: DurableOptions,
    ) -> Result<SessionBuilder<D, B, DurablePlan<D, B, FileStorage>, X>, RecoveryError> {
        let storage = FileStorage::open(path).map_err(RecoveryError::Io)?;
        self.durable_with_options(storage, options)
    }

    /// [`durable_with_policy`](Self::durable_with_policy) over any
    /// [`JournalStorage`] backend.
    ///
    /// # Errors
    ///
    /// As [`durable`](Self::durable).
    pub fn durable_with_options<S: JournalStorage>(
        self,
        storage: S,
        options: DurableOptions,
    ) -> Result<SessionBuilder<D, B, DurablePlan<D, B, S>, X>, RecoveryError> {
        let (registry, _report) = DurableRegistry::open_with_options(
            self.accountant.per_principal,
            DURABLE_LOCK_SHARDS,
            storage,
            options,
        )?;
        Ok(SessionBuilder {
            accountant: DurablePlan { registry },
            executor: self.executor,
            entropy: self.entropy,
            admission: self.admission,
            ingress: self.ingress,
            _notion: PhantomData,
            _carrier: PhantomData,
        })
    }
}

impl<D: AbstractDp, B: Budget, A> SessionBuilder<D, B, A, NoExecutor> {
    /// The single-lane in-process executor — the sequential baseline.
    pub fn inline(self) -> SessionBuilder<D, B, A, Planned<Inline>> {
        self.executor::<Inline>(1)
    }

    /// Any [`SpawnExecutor`] backend, spawned with (up to) `lanes` lanes
    /// at build time — e.g. `.executor::<NoiseServer>(8)` for the
    /// `sampcert-mechanisms` worker pool. A `lanes` of zero is clamped to
    /// one.
    pub fn executor<E: SpawnExecutor>(self, lanes: usize) -> SessionBuilder<D, B, A, Planned<E>> {
        SessionBuilder {
            accountant: self.accountant,
            executor: Planned {
                lanes: lanes.max(1),
                _exec: PhantomData,
            },
            entropy: self.entropy,
            admission: self.admission,
            ingress: self.ingress,
            _notion: PhantomData,
            _carrier: PhantomData,
        }
    }
}

impl<D: AbstractDp, B: Budget, P, E> SessionBuilder<D, B, P, Planned<E>>
where
    P: AccountantPlan<D, B>,
    E: SpawnExecutor,
    P::Built: Accountant<D, B, E>,
{
    /// Spawns the executor, sizes the accountant to its actual lane
    /// count, and returns the ready session. Only defined for legal
    /// accountant × executor pairs — illegal pairs fail to compile.
    pub fn build(self) -> Session<D, B, P::Built, E> {
        let executor = E::spawn(self.entropy, self.executor.lanes);
        let lanes = executor.lanes();
        Session {
            accountant: self.accountant.build_accountant(lanes),
            executor,
            admission: self.admission,
            ingress: self.ingress,
            _notion: PhantomData,
            _carrier: PhantomData,
        }
    }
}

impl<D: AbstractDp, B: Budget, P, E> SessionBuilder<D, B, P, Planned<E>>
where
    P: AccountantPlan<D, B>,
    E: SpawnExecutor,
    P::Built: PrincipalAccountant<D, B, E>,
{
    /// [`build`](Self::build) for per-principal sessions
    /// ([`SessionBuilder::registry`] / [`SessionBuilder::durable`]):
    /// every serve names the principal it charges
    /// ([`Session::answer_for`] and friends). The principal-less
    /// [`Session::answer`] does not exist on the built session, and
    /// `build_per_principal` does not exist on global-accountant builders
    /// — the request surface always matches the accounting granularity.
    pub fn build_per_principal(self) -> Session<D, B, P::Built, E> {
        let executor = E::spawn(self.entropy, self.executor.lanes);
        let lanes = executor.lanes();
        Session {
            accountant: self.accountant.build_accountant(lanes),
            executor,
            admission: self.admission,
            ingress: self.ingress,
            _notion: PhantomData,
            _carrier: PhantomData,
        }
    }
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

/// A configured serving session: one accountant, one executor, one
/// entropy backend, one polymorphic surface. Construct via
/// [`Session::builder`]; see the module-level docs above for the full
/// tour.
#[derive(Debug)]
pub struct Session<D: AbstractDp, B: Budget = f64, A = NoAccountant, E = NoExecutor> {
    accountant: A,
    executor: E,
    admission: AdmissionPolicy,
    ingress: IngressGauge,
    _notion: PhantomData<D>,
    _carrier: PhantomData<B>,
}

impl<D: AbstractDp> Session<D> {
    /// Starts a builder with the default axes: `f64` carrier, OS entropy,
    /// open admission, no accountant or executor chosen yet.
    pub fn builder() -> SessionBuilder<D> {
        SessionBuilder {
            accountant: NoAccountant,
            executor: NoExecutor,
            entropy: Entropy::Os,
            admission: AdmissionPolicy::open(),
            ingress: IngressGauge::new(),
            _notion: PhantomData,
            _carrier: PhantomData,
        }
    }
}

impl<D: AbstractDp, B: Budget, A, E: Executor> Session<D, B, A, E> {
    /// The session's accountant — inspect spending through the
    /// accountant's own reporting surface
    /// (e.g. [`Ledger::spent`], [`RdpMeter::epsilon`]).
    pub fn accountant(&self) -> &A {
        &self.accountant
    }

    /// The session's executor.
    pub fn executor(&self) -> &E {
        &self.executor
    }

    /// The session's [`AdmissionPolicy`] (checked only by the async
    /// surface).
    pub fn admission(&self) -> &AdmissionPolicy {
        &self.admission
    }

    /// A clone of the session's [`IngressGauge`] — hand it to the queue
    /// feeding the session so the admission depth bound reads real
    /// arrivals.
    pub fn ingress_gauge(&self) -> IngressGauge {
        self.ingress.clone()
    }

    /// The shared admission gate: queue depth first (cheapest, and
    /// independent of the request), then budget-keyed shedding via the
    /// caller-evaluated probe verdict.
    fn admission_gate(&self, servable: bool, label: &str) -> Result<(), SessionError<B>> {
        if let Some(bound) = self.admission.queue_bound() {
            let depth = self.ingress.depth();
            if depth > bound {
                return Err(SessionError::QueueFull(QueueFull::new(depth, bound)));
            }
        }
        if self.admission.sheds_unservable() && !servable {
            return Err(SessionError::Shed(AdmissionShed::new(format!(
                "accountant headroom cannot serve request {label:?}"
            ))));
        }
        Ok(())
    }

    /// Dismantles the session into its accountant and executor (e.g. to
    /// fold or archive the spend record).
    pub fn into_parts(self) -> (A, E) {
        (self.accountant, self.executor)
    }

    /// Charges and serves one answer of `req` on `db`.
    ///
    /// # Errors
    ///
    /// See [`Accountant::serve_into`]; a refusal releases nothing (and,
    /// on global accountants, consumes no entropy).
    pub fn answer<T: Sync + 'static, U: Value>(
        &mut self,
        req: &Request<D, T, U>,
        db: &[T],
    ) -> Result<U, SessionError<B>>
    where
        A: Accountant<D, B, E>,
    {
        let mut out = Vec::with_capacity(1);
        self.accountant
            .serve_into(&mut self.executor, req, db, 1, &mut out)?;
        out.pop().ok_or_else(|| {
            SessionError::Executor(ExecutorFailure::new("executor returned no answer"))
        })
    }

    /// Charges and serves `n` independent answers of `req` on `db` — one
    /// batched charge, answers in lane order (byte-identical to the
    /// legacy batched paths; pinned by `tests/session_api.rs`).
    ///
    /// # Errors
    ///
    /// See [`Accountant::serve_into`]. All-or-nothing on global
    /// accountants; on sharded accountants the first refusing shard wins
    /// and already-charged chunks stay charged (conservative).
    pub fn answer_many<T: Sync + 'static, U: Value>(
        &mut self,
        req: &Request<D, T, U>,
        db: &[T],
        n: usize,
    ) -> Result<Vec<U>, SessionError<B>>
    where
        A: Accountant<D, B, E>,
    {
        let mut out = Vec::with_capacity(n);
        self.accountant
            .serve_into(&mut self.executor, req, db, n, &mut out)?;
        Ok(out)
    }

    /// [`answer_many`](Self::answer_many) into a caller-owned buffer —
    /// the reserve-once, buffer-reusing form for long serving loops.
    ///
    /// # Errors
    ///
    /// See [`answer_many`](Self::answer_many); `out` is untouched on
    /// refusal.
    pub fn stream_into<T: Sync + 'static, U: Value>(
        &mut self,
        req: &Request<D, T, U>,
        db: &[T],
        n: usize,
        out: &mut Vec<U>,
    ) -> Result<(), SessionError<B>>
    where
        A: Accountant<D, B, E>,
    {
        self.accountant
            .serve_into(&mut self.executor, req, db, n, out)
    }

    /// Charges one answer of `req` to `principal` and serves it — the
    /// per-principal twin of [`answer`](Self::answer), on sessions built
    /// with [`SessionBuilder::build_per_principal`].
    ///
    /// # Errors
    ///
    /// See [`PrincipalAccountant::serve_for_into`]; a refusal (budget or
    /// journal) releases nothing and consumes no entropy.
    pub fn answer_for<T: Sync + 'static, U: Value>(
        &mut self,
        principal: u64,
        req: &Request<D, T, U>,
        db: &[T],
    ) -> Result<U, SessionError<B>>
    where
        A: PrincipalAccountant<D, B, E>,
    {
        let mut out = Vec::with_capacity(1);
        self.accountant
            .serve_for_into(&mut self.executor, principal, req, db, 1, &mut out)?;
        out.pop().ok_or_else(|| {
            SessionError::Executor(ExecutorFailure::new("executor returned no answer"))
        })
    }

    /// Charges `n` answers of `req` to `principal` as one batched
    /// (all-or-nothing) charge and serves them in lane order — the
    /// per-principal twin of [`answer_many`](Self::answer_many).
    ///
    /// # Errors
    ///
    /// See [`PrincipalAccountant::serve_for_into`].
    pub fn answer_many_for<T: Sync + 'static, U: Value>(
        &mut self,
        principal: u64,
        req: &Request<D, T, U>,
        db: &[T],
        n: usize,
    ) -> Result<Vec<U>, SessionError<B>>
    where
        A: PrincipalAccountant<D, B, E>,
    {
        let mut out = Vec::with_capacity(n);
        self.accountant
            .serve_for_into(&mut self.executor, principal, req, db, n, &mut out)?;
        Ok(out)
    }

    /// [`answer_many_for`](Self::answer_many_for) into a caller-owned
    /// buffer; `out` is untouched on refusal.
    ///
    /// # Errors
    ///
    /// See [`PrincipalAccountant::serve_for_into`].
    pub fn stream_into_for<T: Sync + 'static, U: Value>(
        &mut self,
        principal: u64,
        req: &Request<D, T, U>,
        db: &[T],
        n: usize,
        out: &mut Vec<U>,
    ) -> Result<(), SessionError<B>>
    where
        A: PrincipalAccountant<D, B, E>,
    {
        self.accountant
            .serve_for_into(&mut self.executor, principal, req, db, n, out)
    }

    /// The future-returning twin of [`answer`](Self::answer), with
    /// admission control. The [`AdmissionPolicy`] is evaluated here, at
    /// construction — **before any charge** — and a rejected request
    /// resolves to [`SessionError::QueueFull`] / [`SessionError::Shed`]
    /// having spent nothing and consumed no entropy. An admitted
    /// request's first poll runs the exact synchronous
    /// [`answer`](Self::answer) path (charge-before-serve preserved), so
    /// the released bytes and recorded charges are identical to the
    /// synchronous surface (pinned by `tests/admission.rs`).
    ///
    /// The returned future is `Unpin`, completes on its first poll, and
    /// never returns `Poll::Pending` — all the work is synchronous CPU
    /// work; the future form exists so requests can be queued, shed, and
    /// scheduled by a runtime (`sampcert-rt`) between admission and
    /// service.
    pub fn answer_async<'a, T: Sync + 'static, U: Value>(
        &'a mut self,
        req: &'a Request<D, T, U>,
        db: &'a [T],
    ) -> AnswerFuture<'a, D, B, A, E, T, U>
    where
        A: Accountant<D, B, E> + Admission<D, B>,
    {
        let servable = !self.admission.sheds_unservable()
            || self.accountant.can_admit(req.gamma_unit(), req.units());
        let state = match self.admission_gate(servable, req.label()) {
            Err(e) => AnswerState::Rejected(e),
            Ok(()) => AnswerState::Serve {
                session: self,
                req,
                db,
            },
        };
        AnswerFuture { state }
    }

    /// The future-returning twin of [`answer_for`](Self::answer_for) —
    /// [`answer_async`](Self::answer_async) for per-principal sessions,
    /// with the budget-keyed shed probing `principal`'s own allowance
    /// (and, on durable registries, shedding outright once the journal
    /// has latched closed).
    pub fn answer_for_async<'a, T: Sync + 'static, U: Value>(
        &'a mut self,
        principal: u64,
        req: &'a Request<D, T, U>,
        db: &'a [T],
    ) -> AnswerForFuture<'a, D, B, A, E, T, U>
    where
        A: PrincipalAccountant<D, B, E> + PrincipalAdmission<D, B>,
    {
        let servable = !self.admission.sheds_unservable()
            || self
                .accountant
                .can_admit_for(principal, req.gamma_unit(), req.units());
        let state = match self.admission_gate(servable, req.label()) {
            Err(e) => AnswerForState::Rejected(e),
            Ok(()) => AnswerForState::Serve {
                session: self,
                principal,
                req,
                db,
            },
        };
        AnswerForFuture { state }
    }
}

// ---------------------------------------------------------------------------
// Answer futures
// ---------------------------------------------------------------------------

enum AnswerState<'a, D: AbstractDp, B: Budget, A, E, T, U: Value> {
    Rejected(SessionError<B>),
    Serve {
        session: &'a mut Session<D, B, A, E>,
        req: &'a Request<D, T, U>,
        db: &'a [T],
    },
    Done,
}

/// The future returned by [`Session::answer_async`]. Admission already
/// ran at construction; the first poll runs charge-then-serve and
/// resolves — see [`Session::answer_async`] for the contract.
pub struct AnswerFuture<'a, D: AbstractDp, B: Budget, A, E, T, U: Value> {
    state: AnswerState<'a, D, B, A, E, T, U>,
}

// The future holds only references and an error value and is never
// self-referential, so it is trivially Unpin regardless of whether the
// carrier/accountant types are.
impl<D: AbstractDp, B: Budget, A, E, T, U: Value> Unpin for AnswerFuture<'_, D, B, A, E, T, U> {}

impl<D: AbstractDp, B: Budget, A, E, T, U> Future for AnswerFuture<'_, D, B, A, E, T, U>
where
    E: Executor,
    A: Accountant<D, B, E>,
    T: Sync + 'static,
    U: Value,
{
    type Output = Result<U, SessionError<B>>;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        match std::mem::replace(&mut this.state, AnswerState::Done) {
            AnswerState::Rejected(e) => Poll::Ready(Err(e)),
            AnswerState::Serve { session, req, db } => Poll::Ready(session.answer(req, db)),
            AnswerState::Done => panic!("AnswerFuture polled after completion"),
        }
    }
}

enum AnswerForState<'a, D: AbstractDp, B: Budget, A, E, T, U: Value> {
    Rejected(SessionError<B>),
    Serve {
        session: &'a mut Session<D, B, A, E>,
        principal: u64,
        req: &'a Request<D, T, U>,
        db: &'a [T],
    },
    Done,
}

/// The future returned by [`Session::answer_for_async`] — the
/// per-principal twin of [`AnswerFuture`], with the same
/// admission-at-construction / serve-on-first-poll contract.
pub struct AnswerForFuture<'a, D: AbstractDp, B: Budget, A, E, T, U: Value> {
    state: AnswerForState<'a, D, B, A, E, T, U>,
}

impl<D: AbstractDp, B: Budget, A, E, T, U: Value> Unpin for AnswerForFuture<'_, D, B, A, E, T, U> {}

impl<D: AbstractDp, B: Budget, A, E, T, U> Future for AnswerForFuture<'_, D, B, A, E, T, U>
where
    E: Executor,
    A: PrincipalAccountant<D, B, E>,
    T: Sync + 'static,
    U: Value,
{
    type Output = Result<U, SessionError<B>>;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        match std::mem::replace(&mut this.state, AnswerForState::Done) {
            AnswerForState::Rejected(e) => Poll::Ready(Err(e)),
            AnswerForState::Serve {
                session,
                principal,
                req,
                db,
            } => Poll::Ready(session.answer_for(principal, req, db)),
            AnswerForState::Done => panic!("AnswerForFuture polled after completion"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{FaultPlan, MemStorage};
    use crate::query::count_query;
    use sampcert_arith::Dyadic;
    use sampcert_slang::SeededByteSource;

    fn count_req(num: u64, den: u64) -> Request<PureDp, u8, i64> {
        let p: Private<PureDp, u8, i64> = Private::noised_query(&count_query(), num, den);
        Request::from_private(&p, "count")
    }

    #[test]
    fn inline_session_charges_then_serves() {
        let mut s = Session::<PureDp>::builder()
            .ledger(1.0)
            .inline()
            .seeded(3)
            .build();
        let req = count_req(1, 4);
        let db = [0u8; 9];
        let got = s.answer_many(&req, &db, 4).unwrap();
        assert_eq!(got.len(), 4);
        assert!((s.accountant().spent() - 1.0).abs() < 1e-12);
        let err = s.answer(&req, &db).unwrap_err();
        assert!(matches!(err, SessionError::Budget(_)));
    }

    #[test]
    fn refused_request_consumes_no_entropy() {
        let src = sampcert_slang::CountingByteSource::new(SeededByteSource::new(1));
        let mut s = Session {
            accountant: Ledger::<PureDp>::new(0.1),
            executor: Inline::from_source(Box::new(src)),
            admission: AdmissionPolicy::open(),
            ingress: IngressGauge::new(),
            _notion: PhantomData::<PureDp>,
            _carrier: PhantomData::<f64>,
        };
        let req = count_req(1, 1);
        assert!(s.answer(&req, &[1u8]).is_err());
        // The counting source would have recorded any draw; rebuild the
        // ledger headroom and confirm the stream starts at its beginning.
        let (_, exec) = s.into_parts();
        let mut inline = exec;
        let mut reference = SeededByteSource::new(1);
        let mut probe = Vec::new();
        let p: Private<PureDp, u8, i64> = Private::noised_query(&count_query(), 1, 1);
        inline
            .run_into(p.mechanism(), &[1u8], 1, &mut probe)
            .unwrap();
        let mut expect = Vec::new();
        p.mechanism()
            .run_many_into(&[1u8], 1, &mut reference, &mut expect);
        assert_eq!(probe, expect);
    }

    #[test]
    fn exact_carrier_session_is_strict() {
        let mut s = Session::<PureDp>::builder()
            .exact()
            .ledger(1.0)
            .inline()
            .seeded(9)
            .build();
        let req = count_req(1, 8); // ε = 1/8, dyadic
        for _ in 0..8 {
            s.answer(&req, &[1u8, 2]).unwrap();
        }
        assert_eq!(s.accountant().spent_exact(), &Dyadic::from(1u64));
        let err = s.answer(&req, &[1u8, 2]).unwrap_err();
        let refusal = err.as_budget().expect("budget refusal");
        assert_eq!(refusal.carrier, "dyadic");
        assert_eq!(refusal.remaining, Dyadic::zero());
    }

    #[test]
    fn rdp_session_enforces_policy() {
        let mut s = Session::<Zcdp>::builder()
            .rdp(1e-6, 4.0)
            .inline()
            .seeded(4)
            .build();
        // σ/Δ = 8 Gaussians: ρ = 1/128 each; 32 of them convert to under
        // ε = 4 at δ = 1e-6 (see the accountant module tests).
        let req: Request<Zcdp, u8, i64> = Request::noise(8, 1);
        let out = s.answer_many(&req, &[], 32).unwrap();
        assert_eq!(out.len(), 32);
        let (eps, _) = s.accountant().epsilon();
        assert!(eps < 4.0, "eps = {eps}");
        // A huge follow-up batch must be refused without mutating the meter.
        let err = s.answer_many(&req, &[], 1_000_000).unwrap_err();
        assert!(matches!(err, SessionError::Budget(_)));
        let (eps_after, _) = s.accountant().epsilon();
        assert_eq!(eps, eps_after);
    }

    #[test]
    fn noise_request_prices_itself() {
        // Laplace scale 2 under pure DP: ε = 1/2 per draw.
        let req: Request<PureDp, (), i64> = Request::noise(2, 1);
        assert!((req.gamma_each() - 0.5).abs() < 1e-12);
        // Gaussian σ = 8 under zCDP: ρ = 1/128 per draw.
        let req: Request<Zcdp, (), i64> = Request::noise(8, 1);
        assert!((req.gamma_each() - 1.0 / 128.0).abs() < 1e-12);
    }

    #[test]
    fn session_error_chains_sources() {
        use std::error::Error as _;
        let budget: SessionError = SessionError::Budget(BudgetExceeded::new(0.5, 0.25));
        assert_eq!(
            budget.source().unwrap().to_string(),
            "privacy budget exceeded: requested 0.5, remaining 0.25 [carrier: f64]"
        );
        let exec: SessionError = SessionError::Executor(ExecutorFailure::new("pool died"));
        assert_eq!(
            exec.source().unwrap().to_string(),
            "executor failure: pool died"
        );
        assert_eq!(exec.to_string(), "session refused: executor failure");
        let shed: SessionError = SessionError::Shed(AdmissionShed::new("budget dry"));
        assert_eq!(
            shed.to_string(),
            "session refused: shed before charging (admission control)"
        );
        assert_eq!(
            shed.source().unwrap().to_string(),
            "request shed before charging: budget dry"
        );
        assert!(shed.is_admission() && budget.as_shed().is_none());
        let full: SessionError = SessionError::QueueFull(QueueFull::new(9, 4));
        assert_eq!(
            full.to_string(),
            "session refused: ingress queue full (backpressure)"
        );
        assert_eq!(
            full.source().unwrap().to_string(),
            "ingress queue full: depth 9 exceeds bound 4"
        );
        assert_eq!(full.as_queue_full().unwrap().bound(), 4);
        assert!(full.is_admission() && !budget.is_admission());
    }

    /// Drives a ready-on-first-poll future to completion without a
    /// runtime (the core crate cannot depend on `sampcert-rt`).
    fn poll_once<F: Future + Unpin>(mut fut: F) -> F::Output {
        struct NoopWake;
        impl std::task::Wake for NoopWake {
            fn wake(self: Arc<Self>) {}
        }
        let waker = std::task::Waker::from(Arc::new(NoopWake));
        let mut cx = Context::from_waker(&waker);
        match Pin::new(&mut fut).poll(&mut cx) {
            Poll::Ready(out) => out,
            Poll::Pending => unreachable!("answer futures resolve on first poll"),
        }
    }

    #[test]
    fn answer_async_equals_answer() {
        let req = count_req(1, 8);
        let db = [0u8; 6];
        let mut sync = Session::<PureDp>::builder()
            .ledger(1.0)
            .inline()
            .seeded(17)
            .build();
        let mut async_ = Session::<PureDp>::builder()
            .ledger(1.0)
            .inline()
            .seeded(17)
            .build();
        for _ in 0..4 {
            let want = sync.answer(&req, &db).unwrap();
            let got = poll_once(async_.answer_async(&req, &db)).unwrap();
            assert_eq!(got, want);
        }
        assert_eq!(sync.accountant().spent(), async_.accountant().spent());
    }

    #[test]
    fn shed_refusal_spends_nothing() {
        let mut s = Session::<PureDp>::builder()
            .exact()
            .ledger(1.0)
            .admission(AdmissionPolicy::open().shed_unservable())
            .inline()
            .seeded(23)
            .build();
        // Affordable request: admitted and served.
        let ok_req = count_req(1, 4);
        poll_once(s.answer_async(&ok_req, &[1u8])).unwrap();
        // Unservable request (ε = 2 against remaining 3/4): shed before
        // charging, with the counting invariant — spend unchanged.
        let big_req = count_req(2, 1);
        let spent_before = s.accountant().spent_exact().clone();
        let err = poll_once(s.answer_async(&big_req, &[1u8])).unwrap_err();
        assert!(matches!(err, SessionError::Shed(_)), "{err:?}");
        assert_eq!(s.accountant().spent_exact(), &spent_before);
        // The synchronous path still runs the authoritative check and
        // refuses with a Budget error, not a shed.
        let err = s.answer(&big_req, &[1u8]).unwrap_err();
        assert!(matches!(err, SessionError::Budget(_)));
    }

    #[test]
    fn queue_bound_rejects_above_depth() {
        let mut s = Session::<PureDp>::builder()
            .ledger(10.0)
            .admission(AdmissionPolicy::open().max_queue_depth(2))
            .inline()
            .seeded(29)
            .build();
        let gauge = s.ingress_gauge();
        let req = count_req(1, 8);
        // Depth 2 == bound: still admitted.
        gauge.enter();
        gauge.enter();
        poll_once(s.answer_async(&req, &[1u8])).unwrap();
        // Depth 3 > bound: backpressure.
        gauge.enter();
        let err = poll_once(s.answer_async(&req, &[1u8])).unwrap_err();
        let full = err.as_queue_full().expect("queue-full refusal");
        assert_eq!((full.depth(), full.bound()), (3, 2));
        // Draining the queue re-opens admission; leave() saturates at 0.
        gauge.leave();
        poll_once(s.answer_async(&req, &[1u8])).unwrap();
        for _ in 0..5 {
            gauge.leave();
        }
        assert_eq!(gauge.depth(), 0);
    }

    #[test]
    fn answer_for_async_sheds_per_principal() {
        let mut s = Session::<PureDp>::builder()
            .exact()
            .registry(1.0)
            .admission(AdmissionPolicy::open().shed_unservable())
            .inline()
            .seeded(31)
            .build_per_principal();
        let req = count_req(1, 2); // ε = 1/2 per answer
        poll_once(s.answer_for_async(1, &req, &[1u8])).unwrap();
        poll_once(s.answer_for_async(1, &req, &[1u8])).unwrap();
        // Principal 1 is dry: shed, spend unchanged.
        let err = poll_once(s.answer_for_async(1, &req, &[1u8])).unwrap_err();
        assert!(matches!(err, SessionError::Shed(_)), "{err:?}");
        assert_eq!(s.accountant().spent_exact(1), Dyadic::from(1u64));
        // Principal 2's allowance is independent.
        poll_once(s.answer_for_async(2, &req, &[1u8])).unwrap();
    }

    #[test]
    fn sharded_admission_keys_on_granted_upper_bound() {
        let ledger = ShardedLedger::<PureDp>::new(1.0, 4);
        // A fresh sharded ledger has granted headroom but no spend; a
        // batch that fits the budget is admissible, one that cannot fit
        // is not.
        assert!(Admission::<PureDp, f64>::can_admit(&ledger, 0.25, 2));
        assert!(!Admission::<PureDp, f64>::can_admit(&ledger, 0.3, 4));
    }

    #[test]
    fn seeded_inline_replays_lane_zero() {
        let mut a = Inline::new(Entropy::seeded(21));
        let mut b = SplitSeed::new(21).stream(0);
        let p: Private<PureDp, u8, i64> = Private::noised_query(&count_query(), 1, 2);
        let mut got = Vec::new();
        a.run_into(p.mechanism(), &[7u8], 5, &mut got).unwrap();
        let mut expect = Vec::new();
        p.mechanism().run_many_into(&[7u8], 5, &mut b, &mut expect);
        assert_eq!(got, expect);
    }

    #[test]
    fn lane_partition_rule() {
        assert_eq!(lane_partition(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(lane_partition(3, 4), vec![1, 1, 1, 0]);
        assert_eq!(lane_partition(7, 1), vec![7]);
    }

    #[test]
    fn inline_spawn_clamps_lanes() {
        let e = Inline::spawn(Entropy::seeded(1), 64);
        assert_eq!(e.lanes(), 1);
    }

    #[test]
    fn registry_session_isolates_principals() {
        let mut s = Session::<PureDp>::builder()
            .exact()
            .registry(1.0)
            .inline()
            .seeded(11)
            .build_per_principal();
        let req = count_req(1, 4); // ε = 1/4 per answer
        let db = [0u8; 5];
        let got = s.answer_many_for(7, &req, &db, 4).unwrap();
        assert_eq!(got.len(), 4);
        let err = s.answer_for(7, &req, &db).unwrap_err();
        let refusal = err.as_budget().expect("budget refusal");
        assert_eq!(refusal.principal, Some(7));
        assert_eq!(refusal.carrier, "dyadic");
        // Another principal's allowance is untouched.
        s.answer_for(8, &req, &db).unwrap();
        assert_eq!(s.accountant().spent_exact(7), Dyadic::from(1u64));
    }

    #[test]
    fn durable_session_degrades_to_reject_then_recovers_conservatively() {
        // Sync 0 is the journal header; syncs 1–2 admit two charges; the
        // third charge's sync fails.
        let storage = MemStorage::new().with_plan(FaultPlan::fail_sync_after(3));
        let handle = storage.clone();
        let req = count_req(1, 4); // ε = 1/4 per answer
        let mut s = Session::<PureDp>::builder()
            .exact()
            .registry(1.0)
            .durable_with(storage)
            .unwrap()
            .inline()
            .seeded(13)
            .build_per_principal();
        s.answer_for(1, &req, &[1u8]).unwrap();
        s.answer_for(2, &req, &[1u8]).unwrap();
        // Degrade-to-reject: the fsync failure refuses the request and
        // leaves the in-memory spend unchanged.
        let err = s.answer_for(1, &req, &[1u8]).unwrap_err();
        assert_eq!(
            err.to_string(),
            "session refused: journal failure (nothing charged, nothing released)"
        );
        assert_eq!(
            err.as_journal().unwrap().to_string(),
            "journal sync failed: injected fsync failure"
        );
        use std::error::Error as _;
        assert_eq!(
            err.source().unwrap().to_string(),
            err.as_journal().unwrap().to_string()
        );
        assert_eq!(s.accountant().registry().spent(1), 0.25);
        drop(s);

        // Restart over the surviving bytes. The third record was appended
        // but its fsync failed — replay cannot tell whether it became
        // durable, so it counts as charged (over-reporting, never under).
        let mut s2 = Session::<PureDp>::builder()
            .exact()
            .registry(1.0)
            .durable_with(handle.reopen())
            .unwrap()
            .inline()
            .seeded(13)
            .build_per_principal();
        assert_eq!(s2.accountant().registry().spent(1), 0.5);
        assert_eq!(s2.accountant().registry().spent(2), 0.25);
        // Exactly two more quarters fit principal 1's allowance of 1.
        s2.answer_for(1, &req, &[1u8]).unwrap();
        s2.answer_for(1, &req, &[1u8]).unwrap();
        let err = s2.answer_for(1, &req, &[1u8]).unwrap_err();
        assert_eq!(err.as_budget().unwrap().principal, Some(1));
    }

    #[test]
    fn durable_options_session_group_commits_and_compacts() {
        use crate::journal::{replay, CompactionPolicy};

        let storage = MemStorage::new();
        let handle = storage.clone();
        let req = count_req(1, 4); // ε = 1/4 per answer
        let mut s = Session::<PureDp>::builder()
            .exact()
            .registry(2.0)
            .durable_with_options(
                storage,
                crate::journal::DurableOptions::default()
                    .checkpoint_every(u64::MAX)
                    .compaction(CompactionPolicy::max_records(4)),
            )
            .unwrap()
            .inline()
            .seeded(13)
            .build_per_principal();
        for p in 1..=4u64 {
            s.answer_for(p, &req, &[1u8]).unwrap();
        }
        // The 4th acknowledged charge crossed the record policy and woke
        // the background compactor; wait for it to rewrite the journal
        // down to header + snapshot.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while s.accountant().journal_records() != 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "auto-compaction never ran"
            );
            std::thread::yield_now();
        }
        let recovery = replay::<PureDp, Dyadic>(&handle.contents()).unwrap();
        assert_eq!(recovery.report.records, 2, "header + one snapshot chunk");
        drop(s);

        // A plain (serial, no-policy) restart over the compacted log
        // agrees with what was acknowledged.
        let s2 = Session::<PureDp>::builder()
            .exact()
            .registry(2.0)
            .durable_with(handle.reopen())
            .unwrap()
            .inline()
            .seeded(13)
            .build_per_principal();
        for p in 1..=4u64 {
            assert_eq!(s2.accountant().registry().spent(p), 0.25, "principal {p}");
        }
    }
}
