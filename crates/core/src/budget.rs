//! The budget value space of the accounting layer: `f64` or exact
//! [`Dyadic`], behind one trait.
//!
//! [`Ledger`](crate::Ledger) and [`RdpAccountant`](crate::RdpAccountant)
//! meter privacy spending in some numeric carrier. The paper's whole point
//! is that guarantees are *exact*, so the carrier should be too — but an
//! `f64` ledger is what most deployments run, and the exact carrier must
//! not reintroduce the gcd-per-reduction cost of [`Rat`]. [`Budget`]
//! abstracts the carrier so the accountants are written once:
//!
//! - **`f64`**: the classic float ledger, bit-for-bit the pre-trait
//!   behaviour (composition delegates to [`AbstractDp::compose`], the
//!   acceptance check keeps its `1e-12` tolerance);
//! - **[`Dyadic`]**: exact accounting on the power-of-two lattice.
//!   Addition, scaling and comparison are shift-and-add only — **no gcd on
//!   the charge path** (pinned by a counter test) — and the acceptance
//!   check is strict, since there is no rounding to forgive.
//!
//! # The conservative rounding contract
//!
//! Privacy parameters arrive as `f64` (from `noise_priv`, RDP curves,
//! user-facing APIs). The trait fixes the rounding **direction** at the
//! boundary so quantization can only make accounting *more* conservative,
//! never less:
//!
//! - [`Budget::charge_from_f64`] rounds **up** (a recorded charge is ≥ the
//!   real cost);
//! - [`Budget::budget_from_f64`] rounds **down** (the enforced allowance
//!   is ≤ the stated one).
//!
//! For `f64` both are the identity; for [`Dyadic`] they are the directed
//! lattice conversions. Under this contract an exact ledger's refusals are
//! always sound: whenever the float ledger and the exact ledger disagree
//! about admitting a release, the exact one is the conservative answer.

use crate::abstract_dp::AbstractDp;
use sampcert_arith::Dyadic;
use std::fmt;

/// A numeric carrier for privacy budgets and charges.
///
/// Implementations must form an ordered additive monoid under
/// [`compose`](Self::compose) with [`zero`](Self::zero) as identity, and
/// honour the conservative rounding contract described in the
/// module-level docs above.
pub trait Budget:
    Clone + PartialEq + PartialOrd + fmt::Debug + fmt::Display + Send + Sync + 'static
{
    /// Human-readable carrier name (for diagnostics).
    const NAME: &'static str;

    /// The zero budget (nothing spent).
    fn zero() -> Self;

    /// Plain addition — the accumulation of per-order RDP totals, where
    /// additivity is the defining law rather than an `AbstractDp` axiom.
    fn add(&self, other: &Self) -> Self;

    /// Plain `n`-fold scaling — the vectorized form of folding
    /// [`add`](Self::add) `n` times from zero (exact for exact carriers).
    fn scale(&self, n: u64) -> Self;

    /// Folds one more charge into a running total under notion `D`.
    ///
    /// The `f64` carrier delegates to [`AbstractDp::compose`]; exact
    /// carriers add exactly, which coincides because composition is
    /// additive for every `AbstractDp` instance (the trait's stated
    /// axiom).
    fn compose<D: AbstractDp>(total: &Self, charge: &Self) -> Self;

    /// `n`-fold composition of one charge — the vectorized batch total.
    ///
    /// Must equal folding [`compose`](Self::compose) `n` times from zero:
    /// exactly for exact carriers, to within float rounding for `f64`.
    fn compose_n<D: AbstractDp>(charge: &Self, n: u64) -> Self;

    /// Converts an `f64` charge, rounding **up** (conservative for
    /// spending).
    fn charge_from_f64(gamma: f64) -> Self;

    /// Converts an `f64` budget, rounding **down** (conservative for
    /// allowances).
    fn budget_from_f64(budget: f64) -> Self;

    /// Approximates as `f64` (for `(ε, δ)` conversion and reporting).
    fn to_f64(&self) -> f64;

    /// `max(self − other, 0)`: the remaining-budget subtraction.
    fn saturating_sub(&self, other: &Self) -> Self;

    /// Whether `total` overruns `budget`. The `f64` carrier keeps the
    /// historical `1e-12` acceptance tolerance; exact carriers compare
    /// strictly.
    fn exceeds(total: &Self, budget: &Self) -> bool;

    /// Whether the value is a usable budget quantity (finite and
    /// non-negative). Batch totals that overflow the carrier (`f64`
    /// infinity) report `false` and are refused rather than recorded.
    fn is_valid(&self) -> bool;

    /// Lossless wire encoding for the charge journal.
    ///
    /// The encoding must be **canonical**: equal values produce equal
    /// bytes, and [`from_bytes`](Self::from_bytes) of the output returns
    /// exactly the input. For `f64` this is the IEEE bit pattern
    /// (little-endian); for [`Dyadic`] it is the normalized
    /// sign/exponent/mantissa form. Replay therefore reconstructs spend
    /// bit-for-bit — no re-rounding on recovery.
    fn to_bytes(&self) -> Vec<u8>;

    /// Decodes a value previously produced by [`to_bytes`](Self::to_bytes).
    ///
    /// Returns `None` for malformed or non-canonical input (wrong length,
    /// padded mantissa, …) — a journal record that fails to decode is
    /// treated by recovery according to the torn-tail rule, never silently
    /// skipped mid-log.
    fn from_bytes(bytes: &[u8]) -> Option<Self>;
}

impl Budget for f64 {
    const NAME: &'static str = "f64";

    fn zero() -> Self {
        0.0
    }

    fn add(&self, other: &Self) -> Self {
        self + other
    }

    fn scale(&self, n: u64) -> Self {
        self * n as f64
    }

    fn compose<D: AbstractDp>(total: &Self, charge: &Self) -> Self {
        D::compose(*total, *charge)
    }

    fn compose_n<D: AbstractDp>(charge: &Self, n: u64) -> Self {
        D::compose_n(*charge, n)
    }

    fn charge_from_f64(gamma: f64) -> Self {
        gamma
    }

    fn budget_from_f64(budget: f64) -> Self {
        budget
    }

    fn to_f64(&self) -> f64 {
        *self
    }

    fn saturating_sub(&self, other: &Self) -> Self {
        (self - other).max(0.0)
    }

    fn exceeds(total: &Self, budget: &Self) -> bool {
        *total > budget + 1e-12
    }

    fn is_valid(&self) -> bool {
        self.is_finite() && *self >= 0.0
    }

    fn to_bytes(&self) -> Vec<u8> {
        self.to_bits().to_le_bytes().to_vec()
    }

    fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let bits: [u8; 8] = bytes.try_into().ok()?;
        Some(f64::from_bits(u64::from_le_bytes(bits)))
    }
}

impl Budget for Dyadic {
    const NAME: &'static str = "dyadic";

    fn zero() -> Self {
        Dyadic::zero()
    }

    fn add(&self, other: &Self) -> Self {
        self + other
    }

    fn scale(&self, n: u64) -> Self {
        self.mul_u64(n)
    }

    fn compose<D: AbstractDp>(total: &Self, charge: &Self) -> Self {
        // Additive composition is an `AbstractDp` axiom; here it is exact.
        // The probe catches a notion that overrides `compose` with
        // non-additive arithmetic, which this carrier cannot follow.
        debug_assert_eq!(
            D::compose(0.25, 0.5),
            0.75,
            "{} overrides compose non-additively; the exact carrier only \
             supports additive composition",
            D::NAME
        );
        total + charge
    }

    fn compose_n<D: AbstractDp>(charge: &Self, n: u64) -> Self {
        debug_assert_eq!(
            D::compose_n(0.25, 3),
            0.75,
            "{} overrides compose_n non-additively; the exact carrier only \
             supports additive composition",
            D::NAME
        );
        charge.mul_u64(n)
    }

    fn charge_from_f64(gamma: f64) -> Self {
        Dyadic::from_f64_ceil(gamma)
    }

    fn budget_from_f64(budget: f64) -> Self {
        Dyadic::from_f64_floor(budget)
    }

    fn to_f64(&self) -> f64 {
        Dyadic::to_f64(self)
    }

    fn saturating_sub(&self, other: &Self) -> Self {
        Dyadic::saturating_sub(self, other)
    }

    fn exceeds(total: &Self, budget: &Self) -> bool {
        total > budget
    }

    fn is_valid(&self) -> bool {
        !self.is_negative()
    }

    fn to_bytes(&self) -> Vec<u8> {
        Dyadic::to_bytes(self)
    }

    fn from_bytes(bytes: &[u8]) -> Option<Self> {
        Dyadic::from_bytes(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstract_dp::{PureDp, Zcdp};

    #[test]
    fn f64_carrier_matches_notion_arithmetic() {
        assert_eq!(
            <f64 as Budget>::compose::<Zcdp>(&0.1, &0.2),
            Zcdp::compose(0.1, 0.2)
        );
        assert_eq!(<f64 as Budget>::compose_n::<PureDp>(&0.25, 8), 2.0);
        assert!(<f64 as Budget>::exceeds(&1.1, &1.0));
        assert!(!<f64 as Budget>::exceeds(&(1.0 + 1e-13), &1.0));
        assert!(!f64::INFINITY.is_valid());
        assert!(!(-0.5f64).is_valid());
    }

    #[test]
    fn dyadic_carrier_is_exact_and_strict() {
        let g = Dyadic::charge_from_f64(0.1);
        // 0.1 rounds up: the converted charge dominates the f64 value.
        assert!(g.to_f64() >= 0.1);
        let ten = <Dyadic as Budget>::compose_n::<PureDp>(&g, 10);
        let mut folded = <Dyadic as Budget>::zero();
        for _ in 0..10 {
            folded = <Dyadic as Budget>::compose::<PureDp>(&folded, &g);
        }
        assert_eq!(ten, folded, "vectorized ≠ folded");
        // Strict acceptance: one lattice quantum over is over.
        let budget = Dyadic::budget_from_f64(1.0);
        assert!(!<Dyadic as Budget>::exceeds(&budget, &budget));
        let eps = Dyadic::new(sampcert_arith::Int::one(), Dyadic::MIN_EXP);
        assert!(<Dyadic as Budget>::exceeds(&(&budget + &eps), &budget));
    }

    #[test]
    fn wire_encodings_roundtrip_exactly() {
        for x in [0.0f64, 0.1, 1.0 / 3.0, 1e-300, f64::MAX] {
            let bytes = Budget::to_bytes(&x);
            assert_eq!(bytes.len(), 8);
            assert_eq!(<f64 as Budget>::from_bytes(&bytes), Some(x));
        }
        assert_eq!(<f64 as Budget>::from_bytes(&[0u8; 7]), None);
        for x in [0.0f64, 0.1, 2.75, 1e-9] {
            let d = Dyadic::charge_from_f64(x);
            let back = <Dyadic as Budget>::from_bytes(&Budget::to_bytes(&d));
            assert_eq!(back, Some(d));
        }
        assert_eq!(<Dyadic as Budget>::from_bytes(&[2u8; 12]), None);
    }

    #[test]
    fn rounding_directions_bracket() {
        for x in [0.1, 1.0 / 3.0, 0.5, 1e-9, 2.75] {
            let up = Dyadic::charge_from_f64(x);
            let down = Dyadic::budget_from_f64(x);
            assert!(down.to_f64() <= x && x <= up.to_f64(), "{x}");
        }
    }
}
