//! Queries and sensitivity.
//!
//! A query is a deterministic integer statistic of a database; its
//! **sensitivity** is the maximum change over neighbouring databases
//! (paper Section 2.2). SampCert proves sensitivity bounds in Lean (e.g.
//! `exactBinCount_sensitivity`, Listing 5); here a [`Query`] carries its
//! claimed bound and [`check_sensitivity`] verifies the claim on generated
//! neighbour pairs — the bound is also what the noise calibration consumes,
//! so an overclaimed sensitivity fails loudly in the privacy checkers.

use crate::neighbour::neighbours;
use std::sync::Arc;

/// A deterministic integer query with a claimed sensitivity bound.
///
/// # Examples
///
/// ```
/// use sampcert_core::Query;
///
/// let count: Query<u32> = Query::new("count", 1, |db| db.len() as i64);
/// assert_eq!(count.eval(&[5, 6, 7]), 3);
/// assert_eq!(count.sensitivity(), 1);
/// ```
pub struct Query<T> {
    name: String,
    sensitivity: u64,
    f: Arc<dyn Fn(&[T]) -> i64 + Send + Sync>,
}

impl<T> Clone for Query<T> {
    fn clone(&self) -> Self {
        Query {
            name: self.name.clone(),
            sensitivity: self.sensitivity,
            f: Arc::clone(&self.f),
        }
    }
}

impl<T> std::fmt::Debug for Query<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Query")
            .field("name", &self.name)
            .field("sensitivity", &self.sensitivity)
            .finish()
    }
}

impl<T> Query<T> {
    /// Creates a query with a claimed sensitivity bound.
    ///
    /// # Panics
    ///
    /// Panics if `sensitivity` is zero (a zero-sensitivity query is a
    /// constant; use [`crate::Private::constant`] instead — noise
    /// calibration divides by the sensitivity).
    pub fn new(
        name: impl Into<String>,
        sensitivity: u64,
        f: impl Fn(&[T]) -> i64 + Send + Sync + 'static,
    ) -> Self {
        assert!(
            sensitivity > 0,
            "zero-sensitivity query; use a constant mechanism"
        );
        Query {
            name: name.into(),
            sensitivity,
            f: Arc::new(f),
        }
    }

    /// Evaluates the query on a database.
    pub fn eval(&self, db: &[T]) -> i64 {
        (self.f)(db)
    }

    /// The claimed sensitivity bound.
    pub fn sensitivity(&self) -> u64 {
        self.sensitivity
    }

    /// The query's name (for diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl<T: Clone> Query<T> {
    /// Checks the claimed sensitivity on every neighbour of each given
    /// database (removals plus insertions from `pool`), returning the first
    /// violating pair if any.
    ///
    /// This is the executable form of the paper's sensitivity lemmas: it
    /// cannot quantify over *all* databases, but exercises the claim on a
    /// caller-chosen family, and the privacy checkers independently verify
    /// the final DP bound.
    pub fn check_sensitivity(
        &self,
        databases: &[Vec<T>],
        pool: &[T],
    ) -> Result<(), SensitivityViolation> {
        for db in databases {
            let base = self.eval(db);
            for n in neighbours(db, pool) {
                let other = self.eval(&n);
                let diff = base.abs_diff(other);
                if diff > self.sensitivity {
                    return Err(SensitivityViolation {
                        query: self.name.clone(),
                        claimed: self.sensitivity,
                        observed: diff,
                    });
                }
            }
        }
        Ok(())
    }
}

/// Error returned by [`Query::check_sensitivity`] when a neighbour pair
/// exceeds the claimed bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SensitivityViolation {
    /// Name of the offending query.
    pub query: String,
    /// The claimed sensitivity.
    pub claimed: u64,
    /// The observed change across one neighbour pair.
    pub observed: u64,
}

impl std::fmt::Display for SensitivityViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "query `{}` claimed sensitivity {} but changed by {}",
            self.query, self.claimed, self.observed
        )
    }
}

impl std::error::Error for SensitivityViolation {}

/// The counting query `|db|`, sensitivity 1.
pub fn count_query<T: 'static>() -> Query<T> {
    Query::new("count", 1, |db: &[T]| db.len() as i64)
}

/// A sum query with per-row clamping to `[lo, hi]`; sensitivity
/// `max(|lo|, |hi|)`.
///
/// Clamping is what makes an unbounded sum private — the paper's intro
/// example (means over data "whose values lack tight upper bounds a
/// priori") needs exactly this.
pub fn bounded_sum_query(lo: i64, hi: i64) -> Query<i64> {
    assert!(lo <= hi, "bounded_sum_query: empty clamp range");
    let sens = lo.unsigned_abs().max(hi.unsigned_abs()).max(1);
    Query::new(format!("sum[{lo},{hi}]"), sens, move |db: &[i64]| {
        db.iter().map(|v| (*v).clamp(lo, hi)).sum()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_sensitivity_holds() {
        let q = count_query::<i64>();
        let dbs = vec![vec![], vec![1, 2, 3], vec![5; 10]];
        assert!(q.check_sensitivity(&dbs, &[0, 9]).is_ok());
    }

    #[test]
    fn bounded_sum_clamps() {
        let q = bounded_sum_query(0, 10);
        assert_eq!(q.eval(&[5, 20, -7]), 15); // 5 + 10 + 0
        assert_eq!(q.sensitivity(), 10);
    }

    #[test]
    fn bounded_sum_sensitivity_holds() {
        let q = bounded_sum_query(-3, 7);
        let dbs = vec![vec![1, 100, -100], vec![0; 5], vec![7, -3]];
        assert!(q
            .check_sensitivity(&dbs, &[i64::MIN, i64::MAX, 0, 7, -3])
            .is_ok());
    }

    #[test]
    fn overclaimed_sensitivity_detected() {
        // An unclamped sum claims sensitivity 1 — a lie.
        let q = Query::new("raw-sum", 1, |db: &[i64]| db.iter().sum());
        let dbs = vec![vec![1, 2, 3]];
        let err = q.check_sensitivity(&dbs, &[50]).unwrap_err();
        assert!(err.observed > 1, "observed={}", err.observed);
        assert_eq!(err.claimed, 1);
        assert!(err.to_string().contains("raw-sum"));
    }

    #[test]
    #[should_panic(expected = "zero-sensitivity")]
    fn zero_sensitivity_rejected() {
        let _ = Query::new("bad", 0, |_: &[u8]| 0);
    }
}
