//! Durable accounting: an append-only write-ahead charge journal with
//! crash recovery.
//!
//! A [`BudgetRegistry`](crate::BudgetRegistry) that forgets spends on a
//! crash is not a privacy accountant — restarting the process would reset
//! every principal's ledger and let the whole budget be spent again.
//! [`DurableRegistry`] closes the hole with the classic write-ahead
//! discipline, specialised to the one invariant that matters for DP:
//! **recovered spend is never less than real spend.**
//!
//! # The write-ahead ordering
//!
//! Every durable charge performs, under one journal lock:
//!
//! 1. **check** — the admission check against the principal's allowance
//!    (refusals stop here; nothing is written);
//! 2. **append + sync** — the charge record is appended to the journal
//!    and fsynced (a failure here rejects the charge *without* applying
//!    it: **degrade-to-reject**, never degrade-to-serve-uncharged);
//! 3. **apply** — only now is the in-memory ledger updated and the caller
//!    told to release the noised answer.
//!
//! A crash between 2 and 3 therefore replays a charge whose answer was
//! never released — an over-report, which is the allowed direction. A
//! crash during 2 leaves a **torn tail**; the rules below keep even that
//! sound.
//!
//! # Failure latching
//!
//! A failed append may leave a torn fragment in the log (a partial
//! `write(2)`, ENOSPC mid-frame), and a failed fsync leaves the
//! durability of the tail unknown. In either case, appending *past* the
//! damage would turn a recoverable torn tail into mid-log corruption
//! that [`replay`] must refuse — losing every charge after it. The
//! journal therefore **latches closed** on the first append or sync
//! failure: the failing charge is rejected (degrade-to-reject, as
//! always) and every later charge is refused with a `"latched"`
//! [`JournalError`] without touching storage.
//! [`journal_error`](DurableRegistry::journal_error) reports the
//! original failure; recovery is a restart —
//! [`open`](DurableRegistry::open) over the surviving bytes, whose tail
//! the torn-tail rule handles.
//!
//! # Record format
//!
//! The journal is a header record followed by charge and checkpoint
//! records, each framed as
//!
//! ```text
//! [len: u32 LE] [payload: len bytes] [crc32(payload): u32 LE]
//! ```
//!
//! with payloads (first byte is the record kind):
//!
//! ```text
//! HEADER     = 0x00  "SCJL"  version: u16 LE  carrier_len: u8  carrier
//! CHARGE     = 0x01  principal: u64 LE  charge: B::to_bytes
//! CHECKPOINT = 0x02  count: u32 LE  (principal: u64 LE,
//!                                    len: u32 LE, spent: B::to_bytes)*
//! ```
//!
//! Charges are lossless ([`Budget::to_bytes`] round-trips bit-for-bit on
//! both carriers), so replay on the [`Dyadic`](sampcert_arith::Dyadic)
//! carrier reconstructs spend **exactly** — recovery is provable equality,
//! not approximation. The header pins the carrier name; replaying a
//! journal under a different carrier is refused
//! ([`RecoveryError::CarrierMismatch`]) rather than silently re-rounded.
//!
//! # The torn-tail rule
//!
//! Recovery parses frames sequentially. At the first frame that is
//! incomplete or fails its checksum, exactly one of three things
//! happens:
//!
//! - the frame is **incomplete** (the log ends before its checksum does)
//!   and the fragment is a plausible torn write — a complete, decodable
//!   `CHARGE` payload whose surviving checksum bytes (0–3 of them) are a
//!   prefix of the payload's real checksum: it replays **as charged** —
//!   the conservative reading of an ambiguous record;
//! - the frame is **incomplete** and the fragment is consistent with a
//!   tear but not chargeable (truncated mid-payload, or a torn
//!   checkpoint — which only summarizes records still in the log): it is
//!   dropped. This cannot under-report: the sync for that record never
//!   returned, so step 3 never ran and no answer was released;
//! - the frame is **complete but its checksum mismatches**, its
//!   incomplete tail carries checksum bytes that contradict its payload
//!   (a tear persists a prefix of the true frame — a contradiction is
//!   rot, not a tear), its length field exceeds the record size cap, or
//!   the damage is *not* at the tail: recovery refuses
//!   ([`RecoveryError::Corrupt`]). A write torn by a crash leaves a
//!   *prefix* of a frame, never a full frame with a wrong checksum —
//!   that is bit rot, and a rotted payload cannot be trusted to name
//!   the right principal or amount (on the `f64` carrier nearly any
//!   byte pattern decodes), so it is surfaced, not repaired silently.
//!
//! Either accepted outcome is reported in [`RecoveryReport::torn_tail`].
//!
//! # Checkpoints
//!
//! Every [`checkpoint_every`](DurableRegistry::with_checkpoint_every)
//! charges the registry appends a `CHECKPOINT` record: a consistent
//! snapshot of every principal's composed spend (consistent because all
//! durable mutations serialize on the journal lock). On replay a
//! checkpoint is **authoritative** — state resets to the snapshot and
//! subsequent charges compose on top — which both bounds the work a
//! future log-compaction step needs and makes replay insensitive to
//! anything before the last intact checkpoint. A snapshot too large to
//! fit one record (past the payload size cap, ~50k principals) is
//! skipped rather than written: checkpoints only summarize charges that
//! are already individually journaled, so skipping costs replay time,
//! never spend — and the cap is enforced at write time precisely so
//! that replay may treat an oversized frame as corruption instead of
//! guessing.
//!
//! Recovery is **idempotent**: [`replay`] is a pure function of the
//! journal bytes (nothing is written during replay), so replaying twice —
//! or on two machines — yields identical ledgers.
//! [`DurableRegistry::recover`] additionally performs **tail repair**: a
//! torn fragment is truncated away (one that replayed as charged is first
//! re-journaled as a proper record, keeping the conservative charge
//! durable), so the recovered registry's own appends never land after
//! damage. Repair preserves spend exactly — re-recovering a repaired log
//! yields the same ledgers the repairing recovery did.
//!
//! # Example
//!
//! ```
//! use sampcert_core::{DurableRegistry, MemStorage, PureDp};
//! use sampcert_arith::Dyadic;
//!
//! let storage = MemStorage::new();
//! let reg: DurableRegistry<PureDp, Dyadic, _> =
//!     DurableRegistry::create(1.0, 4, storage.clone()).unwrap();
//! reg.charge(7, 0.625).unwrap();
//! drop(reg); // crash
//!
//! let (back, report) =
//!     DurableRegistry::<PureDp, Dyadic, _>::recover(1.0, 4, storage.reopen()).unwrap();
//! assert_eq!(back.spent_exact(7), Dyadic::from_f64_ceil(0.625));
//! assert!(!report.torn_tail);
//! ```

use crate::abstract_dp::AbstractDp;
use crate::accountant::BudgetExceeded;
use crate::budget::Budget;
use crate::registry::{BudgetRegistry, RegistryView};
use std::collections::BTreeMap;
use std::io::{Read, Seek, Write};
use std::sync::{Arc, Mutex};

/// Record kinds (first payload byte).
const KIND_HEADER: u8 = 0x00;
const KIND_CHARGE: u8 = 0x01;
const KIND_CHECKPOINT: u8 = 0x02;

/// Journal file magic, inside the header payload.
const MAGIC: &[u8; 4] = b"SCJL";
/// On-disk format version.
const VERSION: u16 = 1;
/// Cap on a single record payload, enforced at **write time** (charges
/// are refused, checkpoints skipped) so that replay may treat a complete
/// frame claiming a larger length as corruption — and so a corrupt
/// length field can never drive a multi-gigabyte scan during recovery.
const MAX_PAYLOAD: u32 = 1 << 20;

// ---------------------------------------------------------------------------
// CRC32 (IEEE), table-driven, no dependencies.
// ---------------------------------------------------------------------------

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = build_crc_table();

fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// A journal I/O failure (append, sync, or read).
///
/// Stores the failing operation and a rendered detail string rather than
/// the raw `io::Error` so the type stays `Clone + PartialEq` — the shape
/// session errors need for testable equality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalError {
    /// The journal operation that failed (`"append"`, `"sync"`, …).
    pub op: &'static str,
    /// Human-readable failure detail.
    pub detail: String,
}

impl JournalError {
    /// A failure of `op` with the given detail.
    pub fn new(op: &'static str, detail: impl Into<String>) -> Self {
        JournalError {
            op,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "journal {} failed: {}", self.op, self.detail)
    }
}

impl std::error::Error for JournalError {}

/// Why a journal could not be replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryError {
    /// Reading the journal bytes failed.
    Io(JournalError),
    /// The journal is damaged somewhere other than its tail — a valid
    /// frame follows the damage, so this is not a crash artefact.
    Corrupt {
        /// Byte offset of the damaged frame.
        offset: usize,
        /// What was wrong with it.
        detail: String,
    },
    /// The header is missing or malformed (not a journal, or truncated at
    /// birth).
    BadHeader(String),
    /// The journal was written under a different budget carrier; replaying
    /// it here would re-round every charge.
    CarrierMismatch {
        /// The carrier this recovery was asked to produce.
        expected: &'static str,
        /// The carrier named in the journal header.
        found: String,
    },
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Io(e) => write!(f, "journal recovery failed: {e}"),
            RecoveryError::Corrupt { offset, detail } => {
                write!(f, "journal corrupt at byte {offset}: {detail}")
            }
            RecoveryError::BadHeader(detail) => write!(f, "journal header invalid: {detail}"),
            RecoveryError::CarrierMismatch { expected, found } => write!(
                f,
                "journal carrier mismatch: journal is {found}, accountant is {expected}"
            ),
        }
    }
}

impl std::error::Error for RecoveryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoveryError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// A refusal from a durable charge: either the principal's allowance said
/// no, or the journal could not durably record the spend — in which case
/// the charge is rejected **without** being applied (degrade-to-reject).
#[derive(Debug, Clone, PartialEq)]
pub enum DurableChargeError<B = f64> {
    /// The admission check refused the charge.
    Budget(BudgetExceeded<B>),
    /// The write-ahead append or fsync failed; the charge was not applied
    /// and no answer may be released.
    Journal(JournalError),
}

impl<B: std::fmt::Display> std::fmt::Display for DurableChargeError<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableChargeError::Budget(e) => e.fmt(f),
            DurableChargeError::Journal(e) => write!(f, "charge rejected: {e}"),
        }
    }
}

impl<B: std::fmt::Display + std::fmt::Debug> std::error::Error for DurableChargeError<B> {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableChargeError::Budget(_) => None,
            DurableChargeError::Journal(e) => Some(e),
        }
    }
}

// ---------------------------------------------------------------------------
// Storage
// ---------------------------------------------------------------------------

/// The byte-level backend a journal writes through.
///
/// Deliberately tiny — append, sync, read — so a fault-injecting
/// implementation ([`MemStorage`]) can stand in for a file and exercise
/// every failure the durability argument depends on. An `append` is
/// allowed to write a *prefix* of its bytes and then fail (a torn write);
/// the recovery rules are designed around exactly that.
pub trait JournalStorage: Send {
    /// Appends bytes at the end of the log. May fail after writing only a
    /// prefix.
    ///
    /// # Errors
    ///
    /// Returns a [`JournalError`] on I/O failure.
    fn append(&mut self, bytes: &[u8]) -> Result<(), JournalError>;

    /// Durably flushes everything appended so far.
    ///
    /// # Errors
    ///
    /// Returns a [`JournalError`] when durability cannot be confirmed —
    /// the caller must then treat the preceding appends as *not*
    /// committed.
    fn sync(&mut self) -> Result<(), JournalError>;

    /// Reads the entire log from the beginning.
    ///
    /// # Errors
    ///
    /// Returns a [`JournalError`] on I/O failure.
    fn read_all(&mut self) -> Result<Vec<u8>, JournalError>;

    /// Discards everything after the first `len` bytes — the tail-repair
    /// primitive: recovery truncates a torn fragment before the next
    /// generation appends, so new records never land after damage.
    ///
    /// # Errors
    ///
    /// Returns a [`JournalError`] on I/O failure.
    fn truncate(&mut self, len: u64) -> Result<(), JournalError>;

    /// Number of bytes currently in the log (committed or not).
    ///
    /// # Errors
    ///
    /// Returns a [`JournalError`] on I/O failure.
    fn len(&mut self) -> Result<u64, JournalError> {
        Ok(self.read_all()?.len() as u64)
    }

    /// Whether the log is empty ([`len`](Self::len) == 0).
    ///
    /// # Errors
    ///
    /// Returns a [`JournalError`] on I/O failure.
    fn is_empty(&mut self) -> Result<bool, JournalError> {
        Ok(self.len()? == 0)
    }
}

/// File-backed [`JournalStorage`]: append-mode writes, `sync_data` on
/// commit.
#[derive(Debug)]
pub struct FileStorage {
    file: std::fs::File,
}

impl FileStorage {
    /// Opens (creating if absent) the journal file at `path` for
    /// appending, then fsyncs the parent directory — without that, a
    /// crash shortly after creation can drop the directory entry and
    /// with it the whole journal, header and synced charges included.
    ///
    /// # Errors
    ///
    /// Returns a [`JournalError`] if the file cannot be opened or the
    /// parent directory cannot be durably synced.
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<Self, JournalError> {
        let path = path.as_ref();
        let file = std::fs::OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path)
            .map_err(|e| JournalError::new("open", e.to_string()))?;
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => std::path::Path::new("."),
        };
        std::fs::File::open(parent)
            .and_then(|dir| dir.sync_all())
            .map_err(|e| JournalError::new("open", format!("fsync parent directory: {e}")))?;
        Ok(FileStorage { file })
    }
}

impl JournalStorage for FileStorage {
    fn append(&mut self, bytes: &[u8]) -> Result<(), JournalError> {
        self.file
            .write_all(bytes)
            .map_err(|e| JournalError::new("append", e.to_string()))
    }

    fn sync(&mut self) -> Result<(), JournalError> {
        self.file
            .sync_data()
            .map_err(|e| JournalError::new("sync", e.to_string()))
    }

    fn read_all(&mut self) -> Result<Vec<u8>, JournalError> {
        let mut buf = Vec::new();
        self.file
            .seek(std::io::SeekFrom::Start(0))
            .and_then(|_| self.file.read_to_end(&mut buf))
            .map_err(|e| JournalError::new("read", e.to_string()))?;
        Ok(buf)
    }

    fn truncate(&mut self, len: u64) -> Result<(), JournalError> {
        self.file
            .set_len(len)
            .map_err(|e| JournalError::new("truncate", e.to_string()))
    }

    fn len(&mut self) -> Result<u64, JournalError> {
        self.file
            .metadata()
            .map(|m| m.len())
            .map_err(|e| JournalError::new("len", e.to_string()))
    }
}

/// What a [`MemStorage`] should break, and when — the fault-injection
/// half of the crash-consistency harness.
///
/// Counters are per-storage-instance (a [`reopen`](MemStorage::reopen)
/// starts a fresh, fault-free handle over the same bytes, like a process
/// restart over the same file).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Fail every append once this many appends have succeeded.
    pub fail_append_after: Option<u64>,
    /// At append number `.0` (0-based), write only the first `.1` bytes,
    /// then fail — a torn write.
    pub torn_append: Option<(u64, usize)>,
    /// Fail every sync once this many syncs have succeeded.
    pub fail_sync_after: Option<u64>,
}

impl FaultPlan {
    /// No faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Fails every append after `n` successful ones.
    pub fn fail_append_after(n: u64) -> Self {
        FaultPlan {
            fail_append_after: Some(n),
            ..FaultPlan::default()
        }
    }

    /// Tears append number `n` (0-based) to its first `keep` bytes.
    pub fn torn_append(n: u64, keep: usize) -> Self {
        FaultPlan {
            torn_append: Some((n, keep)),
            ..FaultPlan::default()
        }
    }

    /// Fails every sync after `n` successful ones.
    pub fn fail_sync_after(n: u64) -> Self {
        FaultPlan {
            fail_sync_after: Some(n),
            ..FaultPlan::default()
        }
    }
}

/// In-memory [`JournalStorage`] with injectable faults.
///
/// The byte buffer is shared (`Arc`) between clones, so a test can hand a
/// faulty handle to the system under test, "crash" it by dropping, and
/// [`reopen`](Self::reopen) a clean handle over the surviving bytes —
/// exactly a process restart over the same file.
#[derive(Debug, Clone)]
pub struct MemStorage {
    buf: Arc<Mutex<Vec<u8>>>,
    plan: FaultPlan,
    appends: u64,
    syncs: u64,
}

impl MemStorage {
    /// Empty, fault-free storage.
    pub fn new() -> Self {
        MemStorage {
            buf: Arc::new(Mutex::new(Vec::new())),
            plan: FaultPlan::none(),
            appends: 0,
            syncs: 0,
        }
    }

    /// Replaces this handle's fault plan.
    pub fn with_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// A fresh fault-free handle over the same bytes (a restart).
    pub fn reopen(&self) -> Self {
        MemStorage {
            buf: Arc::clone(&self.buf),
            plan: FaultPlan::none(),
            appends: 0,
            syncs: 0,
        }
    }

    /// The current log contents.
    pub fn contents(&self) -> Vec<u8> {
        self.buf.lock().expect("mem journal poisoned").clone()
    }

    /// Truncates the log to `len` bytes — for tests that damage the log
    /// directly.
    pub fn truncate(&self, len: usize) {
        self.buf.lock().expect("mem journal poisoned").truncate(len);
    }

    /// Overwrites the byte at `offset` — for tests that corrupt the log
    /// directly.
    pub fn corrupt_byte(&self, offset: usize) {
        let mut buf = self.buf.lock().expect("mem journal poisoned");
        buf[offset] ^= 0xFF;
    }
}

impl Default for MemStorage {
    fn default() -> Self {
        MemStorage::new()
    }
}

impl JournalStorage for MemStorage {
    fn append(&mut self, bytes: &[u8]) -> Result<(), JournalError> {
        let n = self.appends;
        self.appends += 1;
        if let Some((at, keep)) = self.plan.torn_append {
            if n == at {
                let keep = keep.min(bytes.len());
                self.buf
                    .lock()
                    .expect("mem journal poisoned")
                    .extend_from_slice(&bytes[..keep]);
                return Err(JournalError::new(
                    "append",
                    format!("injected torn write ({keep}/{} bytes)", bytes.len()),
                ));
            }
        }
        if let Some(limit) = self.plan.fail_append_after {
            if n >= limit {
                return Err(JournalError::new("append", "injected append failure"));
            }
        }
        self.buf
            .lock()
            .expect("mem journal poisoned")
            .extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self) -> Result<(), JournalError> {
        let n = self.syncs;
        self.syncs += 1;
        if let Some(limit) = self.plan.fail_sync_after {
            if n >= limit {
                return Err(JournalError::new("sync", "injected fsync failure"));
            }
        }
        Ok(())
    }

    fn read_all(&mut self) -> Result<Vec<u8>, JournalError> {
        Ok(self.contents())
    }

    fn truncate(&mut self, len: u64) -> Result<(), JournalError> {
        MemStorage::truncate(self, len as usize);
        Ok(())
    }

    fn len(&mut self) -> Result<u64, JournalError> {
        Ok(self.buf.lock().expect("mem journal poisoned").len() as u64)
    }
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out
}

fn header_payload<B: Budget>() -> Vec<u8> {
    let name = B::NAME.as_bytes();
    let mut p = Vec::with_capacity(8 + name.len());
    p.push(KIND_HEADER);
    p.extend_from_slice(MAGIC);
    p.extend_from_slice(&VERSION.to_le_bytes());
    p.push(name.len() as u8);
    p.extend_from_slice(name);
    p
}

fn charge_payload<B: Budget>(principal: u64, charge: &B) -> Vec<u8> {
    let bytes = charge.to_bytes();
    let mut p = Vec::with_capacity(9 + bytes.len());
    p.push(KIND_CHARGE);
    p.extend_from_slice(&principal.to_le_bytes());
    p.extend_from_slice(&bytes);
    p
}

fn checkpoint_payload<B: Budget>(entries: &[(u64, B)]) -> Vec<u8> {
    let mut p = vec![KIND_CHECKPOINT];
    p.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (principal, spent) in entries {
        let bytes = spent.to_bytes();
        p.extend_from_slice(&principal.to_le_bytes());
        p.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        p.extend_from_slice(&bytes);
    }
    p
}

fn decode_charge<B: Budget>(payload: &[u8]) -> Option<(u64, B)> {
    if payload.len() < 10 || payload[0] != KIND_CHARGE {
        return None;
    }
    let principal = u64::from_le_bytes(payload[1..9].try_into().expect("8 principal bytes"));
    let charge = B::from_bytes(&payload[9..])?;
    if !charge.is_valid() {
        return None;
    }
    Some((principal, charge))
}

fn decode_checkpoint<B: Budget>(payload: &[u8]) -> Option<Vec<(u64, B)>> {
    if payload.len() < 5 || payload[0] != KIND_CHECKPOINT {
        return None;
    }
    let count = u32::from_le_bytes(payload[1..5].try_into().expect("4 count bytes"));
    let mut at = 5usize;
    let mut entries = Vec::with_capacity(count as usize);
    for _ in 0..count {
        if payload.len() < at + 12 {
            return None;
        }
        let principal = u64::from_le_bytes(payload[at..at + 8].try_into().expect("8 bytes"));
        let len =
            u32::from_le_bytes(payload[at + 8..at + 12].try_into().expect("4 bytes")) as usize;
        at += 12;
        if payload.len() < at + len {
            return None;
        }
        let spent = B::from_bytes(&payload[at..at + len])?;
        if !spent.is_valid() {
            return None;
        }
        at += len;
        entries.push((principal, spent));
    }
    if at != payload.len() {
        return None;
    }
    Some(entries)
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

/// What [`replay`] reconstructed from a journal.
#[derive(Debug, Clone, PartialEq)]
pub struct Recovery<B> {
    /// Each principal's composed spend, sorted by principal id.
    pub spent: Vec<(u64, B)>,
    /// The tail fragment's conservative decoding, when the torn-tail
    /// rule replayed it as charged (already folded into
    /// [`spent`](Self::spent)) — what tail repair re-journals as a
    /// proper record.
    pub torn_charge: Option<(u64, B)>,
    /// How the replay went — for logging and tests.
    pub report: RecoveryReport,
}

/// Summary statistics of a recovery.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Intact records replayed (header and checkpoints included).
    pub records: usize,
    /// Bytes of the log covered by intact frames — everything before the
    /// torn tail, or the whole log when there is none. Tail repair
    /// truncates to this offset.
    pub valid_len: usize,
    /// Whether the journal ended in a torn tail (either variant of the
    /// torn-tail rule).
    pub torn_tail: bool,
    /// Whether a torn tail was conservatively replayed as a charge.
    pub torn_tail_charged: bool,
}

/// One parsed frame, or the reason parsing stopped.
enum Frame<'a> {
    Complete(&'a [u8]),
    /// Complete bytes, checksum mismatch.
    BadCrc,
    /// A complete frame whose length field exceeds [`MAX_PAYLOAD`] — the
    /// writer never emits one, so this is not a crash artefact.
    Oversized,
    /// Ran off the end of the log.
    Truncated,
}

/// Parses the frame at `bytes[at..]`; returns the frame and the offset of
/// the next one (unchanged for `Truncated`).
fn parse_frame(bytes: &[u8], at: usize) -> (Frame<'_>, usize) {
    let rest = &bytes[at..];
    if rest.len() < 4 {
        return (Frame::Truncated, at);
    }
    let len = u32::from_le_bytes(rest[..4].try_into().expect("4 length bytes"));
    let need = 4 + len as usize + 4;
    if len > MAX_PAYLOAD {
        // A length past the write-time cap: if the claimed frame runs off
        // the end of the log it is indistinguishable from a torn length
        // field (tail rule applies); if the log actually contains that
        // many more bytes, something other than this writer produced the
        // frame and replay must refuse rather than silently skip to EOF.
        if rest.len() < need {
            return (Frame::Truncated, at);
        }
        return (Frame::Oversized, at + need);
    }
    if rest.len() < need {
        return (Frame::Truncated, at);
    }
    let payload = &rest[4..4 + len as usize];
    let crc = u32::from_le_bytes(
        rest[4 + len as usize..need]
            .try_into()
            .expect("4 crc bytes"),
    );
    if crc32(payload) != crc {
        return (Frame::BadCrc, at + need);
    }
    (Frame::Complete(payload), at + need)
}

/// How the torn-tail rule reads a tail fragment.
enum TailFragment<B> {
    /// A plausible torn write carrying a complete, decodable `CHARGE`
    /// payload: replay it as charged (the conservative reading).
    Charged(u64, B),
    /// Torn mid-payload, or a complete non-charge payload (e.g. a torn
    /// checkpoint, which only summarizes records still in the log):
    /// drop it — the sync never returned, so nothing was released.
    Dropped,
    /// Provably *not* a torn write: the surviving checksum bytes
    /// contradict the payload. A tear persists a prefix of the true
    /// frame, so an inconsistent prefix is bit rot — refuse rather than
    /// charge whatever principal/amount the rotted bytes decode as.
    Rotted,
}

/// Classifies a tail fragment (an incomplete frame extending to EOF) for
/// the torn-tail rule: the fragment carries the length field, possibly
/// all `len` payload bytes, and fewer than four checksum bytes (four
/// present-and-wrong ones are [`Frame::BadCrc`], refused upstream).
fn classify_tail<B: Budget>(fragment: &[u8]) -> TailFragment<B> {
    if fragment.len() < 4 {
        return TailFragment::Dropped;
    }
    let len = u32::from_le_bytes(fragment[..4].try_into().expect("4 length bytes"));
    if len > MAX_PAYLOAD || fragment.len() < 4 + len as usize {
        return TailFragment::Dropped;
    }
    let payload = &fragment[4..4 + len as usize];
    let crc = crc32(payload).to_le_bytes();
    let survived = &fragment[4 + len as usize..];
    if survived.len() >= 4 || survived != &crc[..survived.len()] {
        return TailFragment::Rotted;
    }
    match decode_charge(payload) {
        Some((principal, charge)) => TailFragment::Charged(principal, charge),
        None => TailFragment::Dropped,
    }
}

/// Replays journal bytes into per-principal spend, applying the torn-tail
/// rule (see the module docs).
///
/// Pure: reads only its argument, writes nothing — recovery is therefore
/// idempotent by construction.
///
/// # Errors
///
/// Returns a [`RecoveryError`] for a missing/malformed header, a carrier
/// mismatch, or damage that is not at the tail.
pub fn replay<D: AbstractDp, B: Budget>(bytes: &[u8]) -> Result<Recovery<B>, RecoveryError> {
    // Header first.
    let (first, mut at) = parse_frame(bytes, 0);
    let header = match first {
        Frame::Complete(payload) => payload,
        Frame::BadCrc | Frame::Oversized | Frame::Truncated => {
            return Err(RecoveryError::BadHeader(
                "missing or damaged header record".into(),
            ));
        }
    };
    if header.len() < 8 || header[0] != KIND_HEADER || &header[1..5] != MAGIC {
        return Err(RecoveryError::BadHeader("bad magic".into()));
    }
    let version = u16::from_le_bytes(header[5..7].try_into().expect("2 version bytes"));
    if version != VERSION {
        return Err(RecoveryError::BadHeader(format!(
            "unsupported version {version}"
        )));
    }
    let name_len = header[7] as usize;
    if header.len() != 8 + name_len {
        return Err(RecoveryError::BadHeader("carrier name truncated".into()));
    }
    let found = String::from_utf8_lossy(&header[8..]).into_owned();
    if found != B::NAME {
        return Err(RecoveryError::CarrierMismatch {
            expected: B::NAME,
            found,
        });
    }

    let mut spent: BTreeMap<u64, B> = BTreeMap::new();
    let mut torn_charge = None;
    let mut report = RecoveryReport {
        records: 1,
        ..RecoveryReport::default()
    };
    while at < bytes.len() {
        let offset = at;
        let (frame, next) = parse_frame(bytes, at);
        match frame {
            Frame::Complete(payload) => {
                match payload.first() {
                    Some(&KIND_CHARGE) => {
                        let (principal, charge) =
                            decode_charge::<B>(payload).ok_or_else(|| RecoveryError::Corrupt {
                                offset,
                                detail: "undecodable charge record".into(),
                            })?;
                        let entry = spent.entry(principal).or_insert_with(B::zero);
                        *entry = B::compose::<D>(entry, &charge);
                    }
                    Some(&KIND_CHECKPOINT) => {
                        let entries = decode_checkpoint::<B>(payload).ok_or_else(|| {
                            RecoveryError::Corrupt {
                                offset,
                                detail: "undecodable checkpoint record".into(),
                            }
                        })?;
                        // Authoritative: replay state resets to the snapshot.
                        spent = entries.into_iter().collect();
                    }
                    kind => {
                        return Err(RecoveryError::Corrupt {
                            offset,
                            detail: format!("unknown record kind {kind:?}"),
                        });
                    }
                }
                report.records += 1;
                at = next;
            }
            Frame::Oversized => {
                // The writer refuses charges and skips checkpoints past
                // MAX_PAYLOAD, so a complete frame claiming more is not
                // this writer's crash artefact — refuse rather than
                // silently skipping to EOF and dropping what follows.
                return Err(RecoveryError::Corrupt {
                    offset,
                    detail: "record length exceeds the maximum payload size".into(),
                });
            }
            Frame::BadCrc => {
                // All four checksum bytes are present and wrong, at the
                // tail or not. A write torn by a crash persists a prefix
                // of the frame, never a complete frame with a mismatched
                // checksum — this is bit rot, and a rotted payload cannot
                // be trusted to name the right principal or amount.
                return Err(RecoveryError::Corrupt {
                    offset,
                    detail: "checksum mismatch".into(),
                });
            }
            Frame::Truncated => {
                // The log ends mid-frame: a torn tail by construction.
                match classify_tail::<B>(&bytes[offset..]) {
                    TailFragment::Charged(principal, charge) => {
                        report.torn_tail = true;
                        let entry = spent.entry(principal).or_insert_with(B::zero);
                        *entry = B::compose::<D>(entry, &charge);
                        report.torn_tail_charged = true;
                        torn_charge = Some((principal, charge));
                    }
                    TailFragment::Dropped => report.torn_tail = true,
                    TailFragment::Rotted => {
                        return Err(RecoveryError::Corrupt {
                            offset,
                            detail: "tail fragment checksum inconsistent with its payload".into(),
                        });
                    }
                }
                break;
            }
        }
    }
    // The loop leaves `at` at the end of the last intact frame: the
    // clean-log exit has consumed every byte, the torn-tail break left
    // `at` at the fragment's first byte.
    report.valid_len = at;
    Ok(Recovery {
        spent: spent.into_iter().collect(),
        torn_charge,
        report,
    })
}

// ---------------------------------------------------------------------------
// DurableRegistry
// ---------------------------------------------------------------------------

struct JournalInner<S> {
    storage: S,
    /// Charges appended since the last checkpoint record.
    since_checkpoint: u64,
    /// Set on the first append/sync failure; while set, every charge is
    /// refused without touching storage (see "Failure latching" in the
    /// module docs). Cleared only by a restart.
    failed: Option<JournalError>,
}

impl<S> JournalInner<S> {
    /// The refusal every charge gets while the journal is latched.
    fn latched_error(err: &JournalError) -> JournalError {
        JournalError::new(
            "latched",
            format!("journal disabled by earlier failure ({err}); reopen to recover"),
        )
    }
}

/// A [`BudgetRegistry`] whose every accepted charge is durably journaled
/// before it is applied.
///
/// See the module docs for the write-ahead ordering, record format,
/// torn-tail rule and checkpoint semantics. All durable mutations
/// serialize on one journal lock (fsync is the bottleneck regardless);
/// reads ([`spent_exact`](Self::spent_exact), …) go straight to the
/// sharded registry.
pub struct DurableRegistry<D: AbstractDp, B: Budget, S: JournalStorage> {
    registry: BudgetRegistry<D, B>,
    journal: Mutex<JournalInner<S>>,
    checkpoint_every: u64,
}

impl<D: AbstractDp, B: Budget, S: JournalStorage> std::fmt::Debug for DurableRegistry<D, B, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableRegistry")
            .field("registry", &self.registry)
            .field("checkpoint_every", &self.checkpoint_every)
            .finish()
    }
}

/// Default charge count between checkpoint snapshots.
const DEFAULT_CHECKPOINT_EVERY: u64 = 1024;

impl<D: AbstractDp, B: Budget, S: JournalStorage> DurableRegistry<D, B, S> {
    /// Creates a fresh durable registry over empty storage, writing and
    /// syncing the journal header.
    ///
    /// # Errors
    ///
    /// Returns a [`JournalError`] if the header cannot be durably
    /// written, or if the storage is not empty (use
    /// [`recover`](Self::recover) or [`open`](Self::open) for existing
    /// journals).
    ///
    /// # Panics
    ///
    /// Panics if `per_principal` is negative or not finite, or `shards`
    /// is zero.
    pub fn create(per_principal: f64, shards: usize, storage: S) -> Result<Self, JournalError> {
        Self::create_with_budget(B::budget_from_f64(per_principal), shards, storage)
    }

    /// [`create`](Self::create) with the per-principal budget already in
    /// the carrier.
    ///
    /// # Errors
    ///
    /// Returns a [`JournalError`] if the header cannot be durably written
    /// or the storage is not empty.
    pub fn create_with_budget(
        per_principal: B,
        shards: usize,
        mut storage: S,
    ) -> Result<Self, JournalError> {
        if !storage.is_empty()? {
            return Err(JournalError::new(
                "create",
                "storage not empty; recover it instead",
            ));
        }
        storage.append(&frame(&header_payload::<B>()))?;
        storage.sync()?;
        Ok(DurableRegistry {
            registry: BudgetRegistry::with_budget(per_principal, shards),
            journal: Mutex::new(JournalInner {
                storage,
                since_checkpoint: 0,
                failed: None,
            }),
            checkpoint_every: DEFAULT_CHECKPOINT_EVERY,
        })
    }

    /// Recovers a durable registry by replaying existing storage; returns
    /// the registry and how the replay went.
    ///
    /// Recovered spend is applied **without** admission checks — a
    /// principal whose replayed (possibly conservatively over-reported)
    /// spend exceeds the allowance simply has nothing left.
    ///
    /// # Errors
    ///
    /// Returns a [`RecoveryError`] if the journal cannot be read or
    /// replayed (see [`replay`]).
    ///
    /// # Panics
    ///
    /// Panics if `per_principal` is negative or not finite, or `shards`
    /// is zero.
    pub fn recover(
        per_principal: f64,
        shards: usize,
        storage: S,
    ) -> Result<(Self, RecoveryReport), RecoveryError> {
        Self::recover_with_budget(B::budget_from_f64(per_principal), shards, storage)
    }

    /// [`recover`](Self::recover) with the budget already in the carrier.
    ///
    /// # Errors
    ///
    /// Returns a [`RecoveryError`] if the journal cannot be read or
    /// replayed.
    pub fn recover_with_budget(
        per_principal: B,
        shards: usize,
        mut storage: S,
    ) -> Result<(Self, RecoveryReport), RecoveryError> {
        let bytes = storage.read_all().map_err(RecoveryError::Io)?;
        let recovery = replay::<D, B>(&bytes)?;
        // Tail repair: a torn fragment must not survive into this
        // generation, or its first append would land after damage and
        // make the whole log unrecoverable at the *next* restart. The
        // fragment is truncated away; one the torn-tail rule replayed as
        // charged is re-journaled as a proper record first, so the
        // conservative charge stays durable. Spend is unchanged either
        // way — repair makes re-recovery agree with this one.
        if recovery.report.torn_tail {
            storage
                .truncate(recovery.report.valid_len as u64)
                .map_err(RecoveryError::Io)?;
            if let Some((principal, charge)) = &recovery.torn_charge {
                storage
                    .append(&frame(&charge_payload(*principal, charge)))
                    .and_then(|()| storage.sync())
                    .map_err(RecoveryError::Io)?;
            }
        }
        let registry = BudgetRegistry::with_budget(per_principal, shards);
        for (principal, spent) in &recovery.spent {
            registry.apply_unchecked(*principal, spent);
        }
        Ok((
            DurableRegistry {
                registry,
                journal: Mutex::new(JournalInner {
                    storage,
                    since_checkpoint: 0,
                    failed: None,
                }),
                checkpoint_every: DEFAULT_CHECKPOINT_EVERY,
            },
            recovery.report,
        ))
    }

    /// Creates over empty storage, recovers otherwise — the restartable
    /// entry point [`Session`](crate::Session)'s `.durable(path)` uses.
    ///
    /// # Errors
    ///
    /// Returns a [`RecoveryError`] on I/O failure or unreplayable
    /// contents.
    pub fn open(
        per_principal: f64,
        shards: usize,
        storage: S,
    ) -> Result<(Self, RecoveryReport), RecoveryError> {
        Self::open_with_budget(B::budget_from_f64(per_principal), shards, storage)
    }

    /// [`open`](Self::open) with the budget already in the carrier.
    ///
    /// # Errors
    ///
    /// Returns a [`RecoveryError`] on I/O failure or unreplayable
    /// contents.
    pub fn open_with_budget(
        per_principal: B,
        shards: usize,
        mut storage: S,
    ) -> Result<(Self, RecoveryReport), RecoveryError> {
        if storage.is_empty().map_err(RecoveryError::Io)? {
            let created = Self::create_with_budget(per_principal, shards, storage)
                .map_err(RecoveryError::Io)?;
            Ok((created, RecoveryReport::default()))
        } else {
            Self::recover_with_budget(per_principal, shards, storage)
        }
    }

    /// Returns this registry with a different checkpoint cadence (a
    /// snapshot record every `every` charges; `u64::MAX` effectively
    /// disables them).
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn with_checkpoint_every(mut self, every: u64) -> Self {
        assert!(every > 0, "checkpoint cadence must be positive");
        self.checkpoint_every = every;
        self
    }

    /// A read-only view of the underlying in-memory registry (reads are
    /// lock-free of the journal). The view exposes no mutation: every
    /// durable charge must go through [`charge`](Self::charge) and
    /// friends so that it hits the write-ahead journal — spend recorded
    /// behind the journal's back would vanish on recovery.
    pub fn registry(&self) -> RegistryView<'_, D, B> {
        RegistryView::new(&self.registry)
    }

    /// The failure that latched the journal closed, if any. While this is
    /// `Some`, every charge is refused without touching storage (see
    /// "Failure latching" in the module docs); recovery is a restart over
    /// the surviving bytes ([`open`](Self::open)).
    pub fn journal_error(&self) -> Option<JournalError> {
        self.journal
            .lock()
            .expect("journal poisoned")
            .failed
            .clone()
    }

    /// Total spent by `principal`, in the carrier.
    pub fn spent_exact(&self, principal: u64) -> B {
        self.registry.spent_exact(principal)
    }

    /// Remaining allowance of `principal`, in the carrier.
    pub fn remaining_exact(&self, principal: u64) -> B {
        self.registry.remaining_exact(principal)
    }

    /// Durably records a release by `principal` costing `gamma`
    /// (converted **upward** into the carrier): check, append + fsync,
    /// then apply.
    ///
    /// # Errors
    ///
    /// [`DurableChargeError::Budget`] if the allowance refuses;
    /// [`DurableChargeError::Journal`] if the write-ahead record cannot
    /// be durably written — the charge is then **not** applied and no
    /// answer may be released (degrade-to-reject).
    pub fn charge(&self, principal: u64, gamma: f64) -> Result<(), DurableChargeError<B>> {
        assert!(gamma.is_finite() && gamma >= 0.0, "invalid charge");
        self.charge_exact(principal, B::charge_from_f64(gamma))
    }

    /// Durably records a batch of `count` releases of `gamma_each` as a
    /// single composed journal record; all-or-nothing.
    ///
    /// # Errors
    ///
    /// As for [`charge`](Self::charge).
    pub fn charge_batch(
        &self,
        principal: u64,
        gamma_each: f64,
        count: u64,
    ) -> Result<(), DurableChargeError<B>> {
        assert!(
            gamma_each.is_finite() && gamma_each >= 0.0,
            "invalid charge"
        );
        let total = B::compose_n::<D>(&B::charge_from_f64(gamma_each), count);
        if !total.is_valid() {
            let remaining = self.registry.remaining_exact(principal);
            return Err(DurableChargeError::Budget(
                BudgetExceeded::new(total, remaining).for_principal(principal),
            ));
        }
        self.charge_exact(principal, total)
    }

    /// Durably records a charge already in the carrier.
    ///
    /// # Errors
    ///
    /// As for [`charge`](Self::charge).
    pub fn charge_exact(&self, principal: u64, gamma: B) -> Result<(), DurableChargeError<B>> {
        assert!(gamma.is_valid(), "invalid charge");
        let mut inner = self.journal.lock().expect("journal poisoned");
        // 0. Latched journals refuse everything without touching storage:
        //    appending past a torn fragment would make the log
        //    unrecoverable.
        if let Some(err) = &inner.failed {
            return Err(DurableChargeError::Journal(
                JournalInner::<S>::latched_error(err),
            ));
        }
        // 1. Check: refusals write nothing.
        self.registry
            .check_exact(principal, &gamma)
            .map_err(DurableChargeError::Budget)?;
        let payload = charge_payload(principal, &gamma);
        if payload.len() > MAX_PAYLOAD as usize {
            // Nothing was written, so no latch — but the record cannot be
            // framed within the cap replay enforces.
            return Err(DurableChargeError::Journal(JournalError::new(
                "append",
                "charge record exceeds the maximum payload size",
            )));
        }
        // 2. Append + sync: failure rejects without applying AND latches
        //    the journal (the append may have left a torn fragment; the
        //    sync leaves the tail's durability unknown).
        let record = frame(&payload);
        if let Err(e) = inner
            .storage
            .append(&record)
            .and_then(|()| inner.storage.sync())
        {
            inner.failed = Some(e.clone());
            return Err(DurableChargeError::Journal(e));
        }
        // 3. Apply: the charge is durable; release the answer.
        self.registry.apply_unchecked(principal, &gamma);
        inner.since_checkpoint += 1;
        if inner.since_checkpoint >= self.checkpoint_every {
            match Self::write_checkpoint(&self.registry, &mut inner.storage) {
                // Written, or skipped as oversized (the charges a
                // checkpoint summarizes are already journaled, so a skip
                // loses nothing); either way the cadence restarts.
                Ok(_) => inner.since_checkpoint = 0,
                // A failed checkpoint append can tear the log just like a
                // failed charge append — latch. The charge itself is
                // already durable, so it still succeeds.
                Err(e) => inner.failed = Some(e),
            }
        }
        Ok(())
    }

    /// Appends a checkpoint snapshot immediately.
    ///
    /// # Errors
    ///
    /// Returns a [`JournalError`] if the journal is latched, if the
    /// snapshot is too large to fit one record (nothing is written; the
    /// charges it would summarize are already individually journaled), or
    /// if the write fails — the last case latches the journal, since the
    /// failed append may have torn the log.
    pub fn checkpoint_now(&self) -> Result<(), JournalError> {
        let mut inner = self.journal.lock().expect("journal poisoned");
        if let Some(err) = &inner.failed {
            return Err(JournalInner::<S>::latched_error(err));
        }
        match Self::write_checkpoint(&self.registry, &mut inner.storage) {
            Ok(true) => {
                inner.since_checkpoint = 0;
                Ok(())
            }
            Ok(false) => Err(JournalError::new(
                "checkpoint",
                "snapshot exceeds the maximum record size; skipped \
                 (charges remain individually journaled)",
            )),
            Err(e) => {
                inner.failed = Some(e.clone());
                Err(e)
            }
        }
    }

    /// Appends a checkpoint if it fits the record size cap; `Ok(false)`
    /// means the snapshot was too large and nothing was written.
    fn write_checkpoint(
        registry: &BudgetRegistry<D, B>,
        storage: &mut S,
    ) -> Result<bool, JournalError> {
        let snapshot = registry.snapshot();
        let payload = checkpoint_payload(&snapshot);
        if payload.len() > MAX_PAYLOAD as usize {
            return Ok(false);
        }
        storage.append(&frame(&payload))?;
        storage.sync()?;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstract_dp::PureDp;
    use sampcert_arith::Dyadic;

    type Exact = DurableRegistry<PureDp, Dyadic, MemStorage>;

    #[test]
    fn create_charge_recover_is_exact() {
        let storage = MemStorage::new();
        let reg = Exact::create(1.0, 4, storage.clone()).unwrap();
        reg.charge(1, 0.25).unwrap();
        reg.charge(2, 0.5).unwrap();
        reg.charge(1, 0.125).unwrap();
        drop(reg);
        let (back, report) = Exact::recover(1.0, 4, storage.reopen()).unwrap();
        assert_eq!(back.spent_exact(1), Dyadic::from_f64_ceil(0.375));
        assert_eq!(back.spent_exact(2), Dyadic::from_f64_ceil(0.5));
        assert_eq!(report.records, 4, "header + 3 charges");
        assert!(!report.torn_tail);
    }

    #[test]
    fn recovery_is_idempotent() {
        let storage = MemStorage::new();
        let reg = Exact::create(1.0, 2, storage.clone()).unwrap();
        for p in 0..10 {
            reg.charge(p, 0.0625).unwrap();
        }
        let bytes = storage.contents();
        let once = replay::<PureDp, Dyadic>(&bytes).unwrap();
        let twice = replay::<PureDp, Dyadic>(&bytes).unwrap();
        assert_eq!(once, twice);
    }

    #[test]
    fn fsync_failure_rejects_without_applying() {
        let storage = MemStorage::new();
        // Header sync (1) succeeds; the first charge's sync fails.
        let faulty = storage.clone().with_plan(FaultPlan::fail_sync_after(1));
        let reg = Exact::create(1.0, 2, faulty).unwrap();
        let err = reg.charge(7, 0.25).unwrap_err();
        assert!(matches!(err, DurableChargeError::Journal(_)));
        // Degrade-to-reject: the in-memory ledger did not move.
        assert_eq!(reg.spent_exact(7), Dyadic::zero());
        // And whatever bytes were buffered, recovery only over-reports:
        let (back, _) = Exact::recover(1.0, 2, storage.reopen()).unwrap();
        assert!(back.spent_exact(7) >= Dyadic::zero());
    }

    #[test]
    fn torn_tail_with_decodable_charge_replays_as_charged() {
        let storage = MemStorage::new();
        let reg = Exact::create(1.0, 2, storage.clone()).unwrap();
        reg.charge(1, 0.25).unwrap();
        reg.charge(2, 0.5).unwrap();
        drop(reg);
        // Chop the last record's checksum off: payload intact, crc gone.
        let bytes = storage.contents();
        storage.truncate(bytes.len() - 4);
        let (back, report) = Exact::recover(1.0, 2, storage.reopen()).unwrap();
        assert!(report.torn_tail);
        assert!(report.torn_tail_charged);
        assert_eq!(back.spent_exact(2), Dyadic::from_f64_ceil(0.5));
        // Tail repair re-journaled the fragment as a proper record: a
        // second recovery sees a clean log with the same spend.
        drop(back);
        let (again, report) = Exact::recover(1.0, 2, storage.reopen()).unwrap();
        assert!(!report.torn_tail, "repair left a torn tail");
        assert_eq!(again.spent_exact(1), Dyadic::from_f64_ceil(0.25));
        assert_eq!(again.spent_exact(2), Dyadic::from_f64_ceil(0.5));
    }

    #[test]
    fn torn_tail_fragment_is_dropped_soundly() {
        let storage = MemStorage::new();
        let reg = Exact::create(1.0, 2, storage.clone()).unwrap();
        reg.charge(1, 0.25).unwrap();
        let full = storage.contents().len();
        reg.charge(2, 0.5).unwrap();
        drop(reg);
        // Keep only 3 bytes of the second charge record: undecodable.
        storage.truncate(full + 3);
        let (back, report) = Exact::recover(1.0, 2, storage.reopen()).unwrap();
        assert!(report.torn_tail);
        assert!(!report.torn_tail_charged);
        assert_eq!(back.spent_exact(1), Dyadic::from_f64_ceil(0.25));
        assert_eq!(back.spent_exact(2), Dyadic::zero());
        // Tail repair truncated the fragment, so the recovered registry's
        // own appends do not land after damage: charge, crash, recover.
        back.charge(2, 0.125).unwrap();
        drop(back);
        let (again, report) = Exact::recover(1.0, 2, storage.reopen()).unwrap();
        assert!(!report.torn_tail);
        assert_eq!(again.spent_exact(1), Dyadic::from_f64_ceil(0.25));
        assert_eq!(again.spent_exact(2), Dyadic::from_f64_ceil(0.125));
    }

    #[test]
    fn tail_checksum_mismatch_is_bit_rot_and_refused() {
        let storage = MemStorage::new();
        let reg = Exact::create(1.0, 2, storage.clone()).unwrap();
        reg.charge(1, 0.25).unwrap();
        reg.charge(2, 0.5).unwrap();
        drop(reg);
        // Flip a payload byte of the LAST record: all four checksum bytes
        // are present and now wrong. A torn write cannot produce that —
        // refusing beats charging whatever the rotted bytes decode to.
        let len = storage.contents().len();
        storage.corrupt_byte(len - 6);
        let err = Exact::recover(1.0, 2, storage.reopen()).unwrap_err();
        assert!(matches!(err, RecoveryError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn torn_tail_with_inconsistent_crc_prefix_is_refused() {
        let storage = MemStorage::new();
        let reg = Exact::create(1.0, 2, storage.clone()).unwrap();
        reg.charge(1, 0.25).unwrap();
        reg.charge(2, 0.5).unwrap();
        drop(reg);
        // Keep two checksum bytes of the last record but flip one: a tear
        // persists a prefix of the true frame, so the fragment is
        // provably rot — refused, like a full checksum mismatch, rather
        // than charged off untrusted bytes.
        let bytes = storage.contents();
        storage.truncate(bytes.len() - 2);
        storage.corrupt_byte(bytes.len() - 3);
        let err = Exact::recover(1.0, 2, storage.reopen()).unwrap_err();
        assert!(matches!(err, RecoveryError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn append_failure_latches_the_journal() {
        let storage = MemStorage::new();
        // Appends: 0 = header, 1 = first charge, torn after 3 bytes.
        let faulty = storage.clone().with_plan(FaultPlan::torn_append(1, 3));
        let reg = Exact::create(1.0, 2, faulty).unwrap();
        let err = reg.charge(1, 0.25).unwrap_err();
        assert!(matches!(err, DurableChargeError::Journal(_)));
        // The tear latches the journal: the next charge is refused
        // without touching storage, even though storage would accept it.
        let before = storage.contents().len();
        match reg.charge(2, 0.25).unwrap_err() {
            DurableChargeError::Journal(e) => {
                assert_eq!(e.op, "latched");
                assert!(e.detail.contains("torn write"), "{e}");
            }
            other => panic!("expected a latched journal error, got {other:?}"),
        }
        assert_eq!(
            storage.contents().len(),
            before,
            "a latched journal wrote bytes"
        );
        assert_eq!(reg.spent_exact(1), Dyadic::zero());
        assert_eq!(reg.spent_exact(2), Dyadic::zero());
        assert_eq!(reg.journal_error().map(|e| e.op), Some("append"));
        assert!(reg.checkpoint_now().is_err(), "latched checkpoint allowed");
        drop(reg);
        // Nothing was written past the fragment, so the log is exactly
        // header + a 3-byte tail fragment: recoverable, fragment dropped.
        let (back, report) = Exact::recover(1.0, 2, storage.reopen()).unwrap();
        assert!(report.torn_tail);
        assert!(!report.torn_tail_charged);
        assert!(back.journal_error().is_none(), "restart clears the latch");
        back.charge(1, 0.25).unwrap();
        drop(back);
        let (again, report) = Exact::recover(1.0, 2, storage.reopen()).unwrap();
        assert!(!report.torn_tail);
        assert_eq!(again.spent_exact(1), Dyadic::from_f64_ceil(0.25));
    }

    #[test]
    fn complete_oversized_frame_is_refused_truncated_one_is_a_tail() {
        let storage = MemStorage::new();
        let reg = Exact::create(1.0, 2, storage.clone()).unwrap();
        reg.charge(1, 0.25).unwrap();
        drop(reg);
        // A complete frame claiming more than MAX_PAYLOAD: the writer
        // never emits one, so replay must refuse rather than silently
        // treating it (and everything after it) as a torn tail.
        let big = vec![KIND_CHARGE; (MAX_PAYLOAD + 1) as usize];
        let mut raw = storage.reopen();
        raw.append(&frame(&big)).unwrap();
        let err = replay::<PureDp, Dyadic>(&storage.contents()).unwrap_err();
        assert!(matches!(err, RecoveryError::Corrupt { .. }), "{err}");
        // The same frame cut short runs off the end of the log — that is
        // indistinguishable from a torn length field, so the tail rule
        // applies and the intact prefix still replays.
        let full = storage.contents().len();
        storage.truncate(full - 1000);
        let recovery = replay::<PureDp, Dyadic>(&storage.contents()).unwrap();
        assert!(recovery.report.torn_tail);
        assert!(!recovery.report.torn_tail_charged);
        assert_eq!(
            recovery.spent,
            vec![(1, Dyadic::from_f64_ceil(0.25))],
            "intact prefix lost"
        );
    }

    #[test]
    fn oversized_checkpoint_is_skipped_never_written() {
        // ~53k f64 entries push the checkpoint payload past MAX_PAYLOAD
        // (1 + 4 + n * 20 bytes). The snapshot must be skipped, not
        // written: an oversized frame would refuse recovery outright.
        let storage = MemStorage::new();
        let reg: DurableRegistry<PureDp, f64, _> = DurableRegistry::create(1.0, 8, storage.clone())
            .unwrap()
            .with_checkpoint_every(u64::MAX);
        let n = (MAX_PAYLOAD as u64 / 20) + 2;
        for p in 0..n {
            reg.charge(p, 0.5).unwrap();
        }
        let err = reg.checkpoint_now().unwrap_err();
        assert_eq!(err.op, "checkpoint");
        // Skipping is not a storage failure: the journal is not latched
        // and keeps accepting charges.
        assert!(reg.journal_error().is_none());
        reg.charge(0, 0.25).unwrap();
        drop(reg);
        let (back, report) =
            DurableRegistry::<PureDp, f64, _>::recover(1.0, 8, storage.reopen()).unwrap();
        assert!(!report.torn_tail, "skipped checkpoint damaged the log");
        assert_eq!(report.records as u64, 1 + n + 1);
        assert_eq!(back.spent_exact(0), 0.75);
        assert_eq!(back.spent_exact(n - 1), 0.5);
    }

    #[test]
    fn mid_log_corruption_is_refused() {
        let storage = MemStorage::new();
        let reg = Exact::create(1.0, 2, storage.clone()).unwrap();
        reg.charge(1, 0.25).unwrap();
        let first_end = storage.contents().len();
        reg.charge(2, 0.5).unwrap();
        drop(reg);
        // Flip a payload byte of the FIRST charge: its crc now fails while
        // a valid record follows — not a crash artefact.
        storage.corrupt_byte(first_end - 6);
        let err = Exact::recover(1.0, 2, storage.reopen()).unwrap_err();
        assert!(matches!(err, RecoveryError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn carrier_mismatch_is_refused() {
        let storage = MemStorage::new();
        let reg: DurableRegistry<PureDp, f64, _> =
            DurableRegistry::create(1.0, 2, storage.clone()).unwrap();
        reg.charge(1, 0.25).unwrap();
        drop(reg);
        let err = Exact::recover(1.0, 2, storage.reopen()).unwrap_err();
        assert_eq!(
            err,
            RecoveryError::CarrierMismatch {
                expected: "dyadic",
                found: "f64".into()
            }
        );
    }

    #[test]
    fn checkpoints_are_authoritative_and_replay_equal() {
        let storage = MemStorage::new();
        let reg = Exact::create(10.0, 4, storage.clone())
            .unwrap()
            .with_checkpoint_every(3);
        for i in 0..10u64 {
            reg.charge(i % 4, 0.25).unwrap();
        }
        let live: Vec<_> = (0..4u64).map(|p| reg.spent_exact(p)).collect();
        drop(reg);
        let (back, report) = Exact::recover(10.0, 4, storage.reopen()).unwrap();
        for p in 0..4u64 {
            assert_eq!(back.spent_exact(p), live[p as usize], "principal {p}");
        }
        // 1 header + 10 charges + 3 checkpoints (after charges 3, 6, 9).
        assert_eq!(report.records, 14);
    }

    #[test]
    fn open_creates_then_recovers() {
        let storage = MemStorage::new();
        let (reg, report) = Exact::open(1.0, 2, storage.clone()).unwrap();
        assert_eq!(report, RecoveryReport::default());
        reg.charge(5, 0.5).unwrap();
        drop(reg);
        let (back, report) = Exact::open(1.0, 2, storage.reopen()).unwrap();
        assert_eq!(report.records, 2);
        assert_eq!(back.spent_exact(5), Dyadic::from_f64_ceil(0.5));
        // A third generation keeps appending to the same log.
        back.charge(5, 0.25).unwrap();
        drop(back);
        let (last, _) = Exact::open(1.0, 2, storage.reopen()).unwrap();
        assert_eq!(last.spent_exact(5), Dyadic::from_f64_ceil(0.75));
    }

    #[test]
    fn create_refuses_nonempty_storage() {
        let storage = MemStorage::new();
        let _ = Exact::create(1.0, 2, storage.clone()).unwrap();
        let err = Exact::create(1.0, 2, storage.reopen()).unwrap_err();
        assert_eq!(err.op, "create");
    }

    #[test]
    fn refusals_and_journal_failures_render_distinctly() {
        let storage = MemStorage::new();
        let reg = Exact::create(1.0, 2, storage).unwrap();
        reg.charge(3, 1.0).unwrap();
        let err = reg.charge(3, 0.5).unwrap_err();
        assert!(err.to_string().contains("principal: 3"), "{err}");
        let io = DurableChargeError::<Dyadic>::Journal(JournalError::new("sync", "disk gone"));
        assert_eq!(
            io.to_string(),
            "charge rejected: journal sync failed: disk gone"
        );
        use std::error::Error;
        assert!(io.source().is_some());
    }

    #[test]
    fn empty_and_headerless_logs_are_bad_headers() {
        assert!(matches!(
            replay::<PureDp, Dyadic>(&[]),
            Err(RecoveryError::BadHeader(_))
        ));
        assert!(matches!(
            replay::<PureDp, Dyadic>(b"not a journal at all"),
            Err(RecoveryError::BadHeader(_))
        ));
    }

    #[test]
    fn file_storage_roundtrips() {
        let dir =
            std::env::temp_dir().join(format!("sampcert-journal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("charges.wal");
        let _ = std::fs::remove_file(&path);
        {
            let storage = FileStorage::open(&path).unwrap();
            let reg: DurableRegistry<PureDp, Dyadic, _> =
                DurableRegistry::create(1.0, 2, storage).unwrap();
            reg.charge(11, 0.375).unwrap();
        }
        let storage = FileStorage::open(&path).unwrap();
        let (back, report) =
            DurableRegistry::<PureDp, Dyadic, _>::recover(1.0, 2, storage).unwrap();
        assert_eq!(back.spent_exact(11), Dyadic::from_f64_ceil(0.375));
        assert!(!report.torn_tail);
        let _ = std::fs::remove_file(&path);
    }
}
